#include "nn/layers.h"

#include <gtest/gtest.h>

#include "nn/optimizer.h"
#include "tensor/ops.h"

namespace nlidb {
namespace nn {
namespace {

TEST(LinearTest, ShapesAndBias) {
  Rng rng(1);
  Linear layer(4, 3, rng);
  Var x = MakeVar(Tensor::Ones({2, 4}));
  Var y = layer.Forward(x);
  EXPECT_EQ(y->value.rows(), 2);
  EXPECT_EQ(y->value.cols(), 3);
  EXPECT_EQ(layer.Parameters().size(), 2u);
}

TEST(LinearTest, NoBiasVariant) {
  Rng rng(1);
  Linear layer(4, 3, rng, /*use_bias=*/false);
  EXPECT_EQ(layer.Parameters().size(), 1u);
  // Zero input -> zero output without a bias.
  Var y = layer.Forward(MakeVar(Tensor::Zeros({1, 4})));
  for (float v : y->value.vec()) EXPECT_FLOAT_EQ(v, 0.0f);
}

TEST(LinearTest, LearnsLinearMap) {
  // y = 2*x0 - x1; a single linear layer must fit it.
  Rng rng(2);
  Linear layer(2, 1, rng);
  Adam opt(layer.Parameters(), 5e-2f);
  float last_loss = 0.0f;
  for (int step = 0; step < 300; ++step) {
    const float x0 = rng.NextFloat(-1, 1), x1 = rng.NextFloat(-1, 1);
    const float target = 2 * x0 - x1;
    Var x = MakeVar(Tensor({1, 2}, {x0, x1}));
    Var diff = ops::Add(layer.Forward(x),
                        MakeVar(Tensor({1, 1}, {-target})));
    Var loss = ops::SumAll(ops::Mul(diff, diff));
    opt.ZeroGrad();
    Backward(loss);
    opt.Step();
    last_loss = loss->value(0);
  }
  EXPECT_LT(last_loss, 1e-3f);
}

TEST(EmbeddingTest, LookupReturnsSetRows) {
  Rng rng(3);
  Embedding emb(10, 4, rng);
  emb.SetRow(7, {1, 2, 3, 4});
  Var out = emb.Forward({7, 7, 0});
  EXPECT_EQ(out->value.rows(), 3);
  EXPECT_FLOAT_EQ(out->value(0, 2), 3.0f);
  EXPECT_FLOAT_EQ(out->value(1, 3), 4.0f);
}

TEST(EmbeddingTest, SparseGradientScattersToRows) {
  Rng rng(4);
  Embedding emb(10, 2, rng);
  Var out = emb.Forward({3, 3, 5});
  Backward(ops::SumAll(out));
  const Var& table = emb.table();
  // Row 3 used twice, row 5 once, row 0 never.
  EXPECT_FLOAT_EQ(table->grad(3, 0), 2.0f);
  EXPECT_FLOAT_EQ(table->grad(5, 0), 1.0f);
  EXPECT_FLOAT_EQ(table->grad(0, 0), 0.0f);
}

TEST(MlpTest, ParameterCountAndShape) {
  Rng rng(5);
  Mlp mlp({6, 8, 3}, rng);
  EXPECT_EQ(mlp.Parameters().size(), 4u);  // two Linear layers
  Var y = mlp.Forward(MakeVar(Tensor::Ones({1, 6})));
  EXPECT_EQ(y->value.cols(), 3);
}

TEST(MlpTest, LearnsXor) {
  Rng rng(6);
  Mlp mlp({2, 8, 1}, rng);
  Adam opt(mlp.Parameters(), 2e-2f);
  const float xs[4][2] = {{0, 0}, {0, 1}, {1, 0}, {1, 1}};
  const float ys[4] = {0, 1, 1, 0};
  for (int epoch = 0; epoch < 400; ++epoch) {
    for (int i = 0; i < 4; ++i) {
      Var x = MakeVar(Tensor({1, 2}, {xs[i][0], xs[i][1]}));
      Var loss = ops::BceWithLogits(mlp.Forward(x), ys[i]);
      opt.ZeroGrad();
      Backward(loss);
      opt.Step();
    }
  }
  for (int i = 0; i < 4; ++i) {
    Var x = MakeVar(Tensor({1, 2}, {xs[i][0], xs[i][1]}));
    const float logit = mlp.Forward(x)->value(0, 0);
    EXPECT_EQ(logit > 0.0f, ys[i] > 0.5f) << "xor case " << i;
  }
}

TEST(ModuleTest, NumParametersCountsScalars) {
  Rng rng(7);
  Linear layer(3, 2, rng);
  EXPECT_EQ(layer.NumParameters(), 3u * 2u + 2u);
}

}  // namespace
}  // namespace nn
}  // namespace nlidb
