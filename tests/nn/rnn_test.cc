#include "nn/rnn.h"

#include <gtest/gtest.h>

#include <cmath>

#include "nn/optimizer.h"
#include "tensor/ops.h"

namespace nlidb {
namespace nn {
namespace {

TEST(LstmCellTest, StepShapesAndBoundedOutputs) {
  Rng rng(1);
  LstmCell cell(3, 5, rng);
  auto state = cell.InitialState();
  EXPECT_EQ(state.h->value.cols(), 5);
  Var x = MakeVar(Tensor::Ones({1, 3}));
  for (int t = 0; t < 4; ++t) {
    state = cell.Step(x, state);
    for (float v : state.h->value.vec()) {
      EXPECT_GE(v, -1.0f);
      EXPECT_LE(v, 1.0f);  // h = o * tanh(c) is bounded
    }
  }
}

TEST(LstmCellTest, GradientFlowsThroughTime) {
  Rng rng(2);
  LstmCell cell(2, 3, rng);
  Var x = MakeVar(Tensor::Gaussian({1, 2}, 1.0f, rng), /*requires_grad=*/true);
  auto state = cell.InitialState();
  for (int t = 0; t < 6; ++t) state = cell.Step(x, state);
  Backward(ops::SumAll(state.h));
  ASSERT_FALSE(x->grad.empty());
  EXPECT_GT(x->grad.Norm2(), 0.0f);
}

TEST(GruCellTest, InterpolatesTowardCandidate) {
  Rng rng(3);
  GruCell cell(2, 4, rng);
  Var h = cell.InitialState();
  Var x = MakeVar(Tensor::Ones({1, 2}));
  Var h1 = cell.Step(x, h);
  for (float v : h1->value.vec()) {
    EXPECT_GE(v, -1.0f);
    EXPECT_LE(v, 1.0f);
  }
}

TEST(GruCellTest, LearnsToRememberFirstInput) {
  // Sequence classification: output sign of the first input element,
  // fed 4 distractor steps later — requires carrying state.
  Rng rng(4);
  GruCell cell(1, 8, rng);
  Linear head(8, 1, rng);
  std::vector<Var> params = cell.Parameters();
  for (Var& p : head.Parameters()) params.push_back(p);
  Adam opt(params, 1e-2f);
  for (int step = 0; step < 600; ++step) {
    const float first = rng.NextBool() ? 1.0f : -1.0f;
    Var h = cell.InitialState();
    h = cell.Step(MakeVar(Tensor({1, 1}, {first})), h);
    for (int t = 0; t < 4; ++t) {
      h = cell.Step(MakeVar(Tensor({1, 1}, {rng.NextFloat(-0.2f, 0.2f)})), h);
    }
    Var loss = ops::BceWithLogits(head.Forward(h), first > 0 ? 1.0f : 0.0f);
    opt.ZeroGrad();
    Backward(loss);
    opt.Step();
  }
  int correct = 0;
  for (int trial = 0; trial < 40; ++trial) {
    const float first = rng.NextBool() ? 1.0f : -1.0f;
    Var h = cell.InitialState();
    h = cell.Step(MakeVar(Tensor({1, 1}, {first})), h);
    for (int t = 0; t < 4; ++t) {
      h = cell.Step(MakeVar(Tensor({1, 1}, {rng.NextFloat(-0.2f, 0.2f)})), h);
    }
    const float logit = head.Forward(h)->value(0, 0);
    correct += (logit > 0) == (first > 0);
  }
  EXPECT_GE(correct, 36);
}

TEST(StackedLstmTest, OutputShape) {
  Rng rng(5);
  StackedLstm lstm(6, 4, 2, rng);
  Var seq = MakeVar(Tensor::Gaussian({7, 6}, 1.0f, rng));
  Var out = lstm.Forward(seq);
  EXPECT_EQ(out->value.rows(), 7);
  EXPECT_EQ(out->value.cols(), 4);
}

TEST(StackedBiGruTest, OutputShapeAndFinals) {
  Rng rng(6);
  StackedBiGru gru(5, 3, 1, rng);
  Var seq = MakeVar(Tensor::Gaussian({4, 5}, 1.0f, rng));
  auto out = gru.Forward(seq);
  EXPECT_EQ(out.states->value.rows(), 4);
  EXPECT_EQ(out.states->value.cols(), 6);  // fw+bw concat
  EXPECT_EQ(out.final_forward->value.cols(), 3);
  EXPECT_EQ(out.final_backward->value.cols(), 3);
  // Forward state at last position equals final_forward.
  for (int j = 0; j < 3; ++j) {
    EXPECT_FLOAT_EQ(out.states->value(3, j), out.final_forward->value(0, j));
    EXPECT_FLOAT_EQ(out.states->value(0, 3 + j),
                    out.final_backward->value(0, j));
  }
}

TEST(StackedBiGruTest, BackwardDirectionSeesFuture) {
  // Flip the last element of the sequence: the backward state at
  // position 0 must change, proving right-to-left information flow.
  Rng rng(7);
  StackedBiGru gru(2, 3, 1, rng);
  Tensor base = Tensor::Gaussian({5, 2}, 1.0f, rng);
  Tensor flipped = base;
  flipped(4, 0) += 2.0f;
  auto out1 = gru.Forward(MakeVar(base));
  auto out2 = gru.Forward(MakeVar(flipped));
  float diff = 0.0f;
  for (int j = 0; j < 3; ++j) {
    diff += std::fabs(out1.states->value(0, 3 + j) -
                      out2.states->value(0, 3 + j));
  }
  EXPECT_GT(diff, 1e-4f);
}

TEST(StackedBiGruTest, MultiLayerStacks) {
  Rng rng(8);
  StackedBiGru gru(4, 3, 3, rng);
  EXPECT_EQ(gru.num_layers(), 3);
  auto out = gru.Forward(MakeVar(Tensor::Gaussian({2, 4}, 1.0f, rng)));
  EXPECT_EQ(out.states->value.cols(), 6);
}

}  // namespace
}  // namespace nn
}  // namespace nlidb
