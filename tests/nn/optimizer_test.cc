#include "nn/optimizer.h"

#include <gtest/gtest.h>

#include <cmath>

#include "tensor/ops.h"

namespace nlidb {
namespace nn {
namespace {

Var QuadLoss(const Var& w) {
  // loss = sum((w - 3)^2)
  Var shifted = ops::Add(w, MakeVar(Tensor::Full(w->value.shape(), -3.0f)));
  return ops::SumAll(ops::Mul(shifted, shifted));
}

TEST(SgdTest, ConvergesOnQuadratic) {
  Var w = MakeVar(Tensor::Zeros({1, 4}), /*requires_grad=*/true);
  Sgd opt({w}, 0.1f);
  for (int i = 0; i < 100; ++i) {
    Var loss = QuadLoss(w);
    opt.ZeroGrad();
    Backward(loss);
    opt.Step();
  }
  for (float v : w->value.vec()) EXPECT_NEAR(v, 3.0f, 1e-3f);
}

TEST(SgdTest, MomentumAcceleratesDescent) {
  Var w1 = MakeVar(Tensor::Zeros({1, 2}), true);
  Var w2 = MakeVar(Tensor::Zeros({1, 2}), true);
  Sgd plain({w1}, 0.01f);
  Sgd momentum({w2}, 0.01f, 0.9f);
  for (int i = 0; i < 30; ++i) {
    plain.ZeroGrad();
    Backward(QuadLoss(w1));
    plain.Step();
    momentum.ZeroGrad();
    Backward(QuadLoss(w2));
    momentum.Step();
  }
  // With momentum, w2 should be closer to the optimum of 3.
  EXPECT_GT(w2->value(0, 0), w1->value(0, 0));
}

TEST(AdamTest, ConvergesOnQuadratic) {
  Var w = MakeVar(Tensor::Full({1, 4}, -5.0f), true);
  Adam opt({w}, 0.2f);
  for (int i = 0; i < 200; ++i) {
    opt.ZeroGrad();
    Backward(QuadLoss(w));
    opt.Step();
  }
  for (float v : w->value.vec()) EXPECT_NEAR(v, 3.0f, 1e-2f);
}

TEST(AdamTest, SkipsParamsWithoutGrads) {
  Var used = MakeVar(Tensor::Zeros({1, 1}), true);
  Var unused = MakeVar(Tensor::Full({1, 1}, 7.0f), true);
  Adam opt({used, unused}, 0.1f);
  opt.ZeroGrad();
  Backward(QuadLoss(used));
  opt.Step();
  EXPECT_FLOAT_EQ(unused->value(0, 0), 7.0f);
  EXPECT_NE(used->value(0, 0), 0.0f);
}

TEST(ClipGradNormTest, RescalesLargeGradients) {
  Var a = MakeVar(Tensor::Zeros({1, 3}), true);
  a->EnsureGrad() = Tensor({1, 3}, {3.0f, 4.0f, 0.0f});
  Var b = MakeVar(Tensor::Zeros({1, 1}), true);
  b->EnsureGrad() = Tensor({1, 1}, {12.0f});
  // Global norm = sqrt(9 + 16 + 144) = 13.
  const float pre = ClipGradNorm({a, b}, 5.0f);
  EXPECT_NEAR(pre, 13.0f, 1e-4f);
  float total = 0.0f;
  for (float g : a->grad.vec()) total += g * g;
  for (float g : b->grad.vec()) total += g * g;
  EXPECT_NEAR(std::sqrt(total), 5.0f, 1e-4f);
}

TEST(ClipGradNormTest, LeavesSmallGradientsAlone) {
  Var a = MakeVar(Tensor::Zeros({1, 2}), true);
  a->EnsureGrad() = Tensor({1, 2}, {0.3f, 0.4f});
  ClipGradNorm({a}, 5.0f);
  EXPECT_FLOAT_EQ(a->grad(0, 0), 0.3f);
  EXPECT_FLOAT_EQ(a->grad(0, 1), 0.4f);
}

TEST(OptimizerTest, ZeroGradResets) {
  Var w = MakeVar(Tensor::Zeros({1, 2}), true);
  Adam opt({w}, 0.1f);
  Backward(QuadLoss(w));
  EXPECT_GT(w->grad.Norm2(), 0.0f);
  opt.ZeroGrad();
  EXPECT_FLOAT_EQ(w->grad.Norm2(), 0.0f);
}

}  // namespace
}  // namespace nn
}  // namespace nlidb
