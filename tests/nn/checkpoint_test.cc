#include "nn/checkpoint.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "nn/layers.h"
#include "tensor/autograd.h"

namespace nlidb {
namespace nn {
namespace {

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

// Committed corruption corpus: hand-built v1/v2 images plus truncated,
// bit-flipped, and torn variants (tests/corpus/checkpoints/README-free
// binary fixtures; shapes are one [2,3] and one [4] tensor).
std::string CorpusPath(const char* name) {
  return std::string(NLIDB_TEST_SOURCE_DIR) + "/corpus/checkpoints/" + name;
}

std::vector<Var> CorpusShapedParams() {
  std::vector<Var> params;
  params.push_back(MakeVar(Tensor::Zeros({2, 3})));
  params.push_back(MakeVar(Tensor::Zeros({4})));
  return params;
}

TEST(CheckpointTest, SaveLoadRoundTrip) {
  Rng rng(1);
  Linear a(4, 3, rng);
  Linear b(4, 3, rng);  // different init
  const std::string path = TempPath("ckpt_roundtrip.bin");
  ASSERT_TRUE(Checkpoint::Save(path, a.Parameters()).ok());
  ASSERT_TRUE(Checkpoint::Load(path, b.Parameters()).ok());
  auto pa = a.Parameters();
  auto pb = b.Parameters();
  for (size_t i = 0; i < pa.size(); ++i) {
    EXPECT_TRUE(pa[i]->value.AllClose(pb[i]->value, 0.0f));
  }
  std::remove(path.c_str());
}

TEST(CheckpointTest, RejectsCountMismatch) {
  Rng rng(2);
  Linear a(4, 3, rng);
  Mlp b({4, 3, 2}, rng);
  const std::string path = TempPath("ckpt_count.bin");
  ASSERT_TRUE(Checkpoint::Save(path, a.Parameters()).ok());
  Status s = Checkpoint::Load(path, b.Parameters());
  EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition);
  std::remove(path.c_str());
}

TEST(CheckpointTest, RejectsShapeMismatch) {
  Rng rng(3);
  Linear a(4, 3, rng);
  Linear b(3, 4, rng);  // same tensor count, different shapes
  const std::string path = TempPath("ckpt_shape.bin");
  ASSERT_TRUE(Checkpoint::Save(path, a.Parameters()).ok());
  Status s = Checkpoint::Load(path, b.Parameters());
  EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition);
  std::remove(path.c_str());
}

TEST(CheckpointTest, MissingFileIsIoError) {
  Rng rng(4);
  Linear a(2, 2, rng);
  Status s = Checkpoint::Load(TempPath("does_not_exist.bin"), a.Parameters());
  EXPECT_EQ(s.code(), StatusCode::kIoError);
}

TEST(CheckpointTest, RejectsGarbageMagic) {
  const std::string path = TempPath("ckpt_garbage.bin");
  {
    FILE* f = fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    fputs("not a checkpoint at all", f);
    fclose(f);
  }
  Rng rng(5);
  Linear a(2, 2, rng);
  Status s = Checkpoint::Load(path, a.Parameters());
  EXPECT_EQ(s.code(), StatusCode::kParseError);
  std::remove(path.c_str());
}

TEST(CheckpointCorpusTest, ValidV2VerifiesAndLoads) {
  EXPECT_TRUE(Checkpoint::Verify(CorpusPath("valid_v2.ckpt")).ok());
  std::vector<Var> params = CorpusShapedParams();
  ASSERT_TRUE(Checkpoint::Load(CorpusPath("valid_v2.ckpt"), params).ok());
  EXPECT_EQ(params[0]->value.vec(), std::vector<float>(6, 1.0f));
  EXPECT_EQ(params[1]->value.vec(), std::vector<float>(4, 0.0f));
}

TEST(CheckpointCorpusTest, V1ReadCompat) {
  // v1 files (no CRC footer) written by earlier releases still load.
  EXPECT_TRUE(Checkpoint::Verify(CorpusPath("valid_v1.ckpt")).ok());
  std::vector<Var> params = CorpusShapedParams();
  EXPECT_TRUE(Checkpoint::Load(CorpusPath("valid_v1.ckpt"), params).ok());
}

TEST(CheckpointCorpusTest, TruncatedIsParseError) {
  Status s = Checkpoint::Verify(CorpusPath("truncated.ckpt"));
  EXPECT_EQ(s.code(), StatusCode::kParseError);
}

TEST(CheckpointCorpusTest, BitFlipFailsCrc) {
  Status s = Checkpoint::Verify(CorpusPath("bitflip.ckpt"));
  EXPECT_EQ(s.code(), StatusCode::kParseError);
  EXPECT_NE(s.message().find("CRC"), std::string::npos);
}

TEST(CheckpointCorpusTest, TornWriteIsParseError) {
  EXPECT_EQ(Checkpoint::Verify(CorpusPath("torn.ckpt")).code(),
            StatusCode::kParseError);
}

TEST(CheckpointCorpusTest, TrailingBytesRejected) {
  // v1 has no CRC; the exact-end-of-payload check still catches junk.
  EXPECT_EQ(Checkpoint::Verify(CorpusPath("trailing_v1.ckpt")).code(),
            StatusCode::kParseError);
}

TEST(CheckpointCorpusTest, CorruptLoadNeverHalfWritesTheModel) {
  // The staged parse promises all-or-nothing: after a failed load the
  // receiving parameters are bitwise what they were before.
  std::vector<Var> params = CorpusShapedParams();
  params[0]->value.vec().assign(6, 7.5f);
  for (const char* bad : {"truncated.ckpt", "bitflip.ckpt", "torn.ckpt"}) {
    EXPECT_FALSE(Checkpoint::Load(CorpusPath(bad), params).ok()) << bad;
    EXPECT_EQ(params[0]->value.vec(), std::vector<float>(6, 7.5f)) << bad;
  }
}

}  // namespace
}  // namespace nn
}  // namespace nlidb
