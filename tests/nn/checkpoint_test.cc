#include "nn/checkpoint.h"

#include <gtest/gtest.h>

#include <cstdio>

#include "nn/layers.h"

namespace nlidb {
namespace nn {
namespace {

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

TEST(CheckpointTest, SaveLoadRoundTrip) {
  Rng rng(1);
  Linear a(4, 3, rng);
  Linear b(4, 3, rng);  // different init
  const std::string path = TempPath("ckpt_roundtrip.bin");
  ASSERT_TRUE(Checkpoint::Save(path, a.Parameters()).ok());
  ASSERT_TRUE(Checkpoint::Load(path, b.Parameters()).ok());
  auto pa = a.Parameters();
  auto pb = b.Parameters();
  for (size_t i = 0; i < pa.size(); ++i) {
    EXPECT_TRUE(pa[i]->value.AllClose(pb[i]->value, 0.0f));
  }
  std::remove(path.c_str());
}

TEST(CheckpointTest, RejectsCountMismatch) {
  Rng rng(2);
  Linear a(4, 3, rng);
  Mlp b({4, 3, 2}, rng);
  const std::string path = TempPath("ckpt_count.bin");
  ASSERT_TRUE(Checkpoint::Save(path, a.Parameters()).ok());
  Status s = Checkpoint::Load(path, b.Parameters());
  EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition);
  std::remove(path.c_str());
}

TEST(CheckpointTest, RejectsShapeMismatch) {
  Rng rng(3);
  Linear a(4, 3, rng);
  Linear b(3, 4, rng);  // same tensor count, different shapes
  const std::string path = TempPath("ckpt_shape.bin");
  ASSERT_TRUE(Checkpoint::Save(path, a.Parameters()).ok());
  Status s = Checkpoint::Load(path, b.Parameters());
  EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition);
  std::remove(path.c_str());
}

TEST(CheckpointTest, MissingFileIsIoError) {
  Rng rng(4);
  Linear a(2, 2, rng);
  Status s = Checkpoint::Load(TempPath("does_not_exist.bin"), a.Parameters());
  EXPECT_EQ(s.code(), StatusCode::kIoError);
}

TEST(CheckpointTest, RejectsGarbageMagic) {
  const std::string path = TempPath("ckpt_garbage.bin");
  {
    FILE* f = fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    fputs("not a checkpoint at all", f);
    fclose(f);
  }
  Rng rng(5);
  Linear a(2, 2, rng);
  Status s = Checkpoint::Load(path, a.Parameters());
  EXPECT_EQ(s.code(), StatusCode::kParseError);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace nn
}  // namespace nlidb
