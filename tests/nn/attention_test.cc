#include "nn/attention.h"

#include <gtest/gtest.h>

#include "nn/optimizer.h"
#include "tensor/ops.h"

namespace nlidb {
namespace nn {
namespace {

TEST(AttentionTest, WeightsAreDistribution) {
  Rng rng(1);
  AdditiveAttention attn(4, 3, rng);
  Var memory = MakeVar(Tensor::Gaussian({5, 4}, 1.0f, rng));
  Var proj = attn.ProjectMemory(memory);
  EXPECT_EQ(proj->value.rows(), 5);
  EXPECT_EQ(proj->value.cols(), 3);
  Var query = MakeVar(Tensor::Gaussian({1, 3}, 1.0f, rng));
  Var energies = attn.Energies(proj, query);
  EXPECT_EQ(energies->value.rows(), 1);
  EXPECT_EQ(energies->value.cols(), 5);
  Var weights = attn.Weights(energies);
  float sum = 0.0f;
  for (int j = 0; j < 5; ++j) {
    EXPECT_GT(weights->value(0, j), 0.0f);
    sum += weights->value(0, j);
  }
  EXPECT_NEAR(sum, 1.0f, 1e-5f);
}

TEST(AttentionTest, ContextIsConvexCombination) {
  Rng rng(2);
  AdditiveAttention attn(2, 3, rng);
  // Memory rows are the standard basis scaled: context entries must lie
  // within [min, max] of each coordinate.
  Var memory = MakeVar(Tensor({3, 2}, {1, 0, 0, 1, 0.5f, 0.5f}));
  Var proj = attn.ProjectMemory(memory);
  Var query = MakeVar(Tensor::Gaussian({1, 3}, 1.0f, rng));
  Var weights = attn.Weights(attn.Energies(proj, query));
  Var ctx = attn.Context(weights, memory);
  for (int j = 0; j < 2; ++j) {
    EXPECT_GE(ctx->value(0, j), 0.0f);
    EXPECT_LE(ctx->value(0, j), 1.0f);
  }
}

TEST(AttentionTest, QueryShiftsWeights) {
  Rng rng(3);
  AdditiveAttention attn(3, 4, rng);
  Var memory = MakeVar(Tensor::Gaussian({6, 3}, 1.0f, rng));
  Var proj = attn.ProjectMemory(memory);
  Var q1 = MakeVar(Tensor::Gaussian({1, 4}, 1.0f, rng));
  Var q2 = MakeVar(Tensor::Gaussian({1, 4}, 1.0f, rng));
  Var w1 = attn.Weights(attn.Energies(proj, q1));
  Var w2 = attn.Weights(attn.Energies(proj, q2));
  EXPECT_FALSE(w1->value.AllClose(w2->value, 1e-6f));
}

TEST(AttentionTest, GradientsReachMemoryAndQuery) {
  Rng rng(4);
  AdditiveAttention attn(3, 3, rng);
  Var memory = MakeVar(Tensor::Gaussian({4, 3}, 1.0f, rng), true);
  Var query = MakeVar(Tensor::Gaussian({1, 3}, 1.0f, rng), true);
  Var proj = attn.ProjectMemory(memory);
  Var ctx = attn.Context(attn.Weights(attn.Energies(proj, query)), memory);
  Backward(ops::SumAll(ctx));
  EXPECT_GT(memory->grad.Norm2(), 0.0f);
  EXPECT_GT(query->grad.Norm2(), 0.0f);
}

TEST(AttentionTest, LearnsToSelectMarkedRow) {
  // Task: memory rows carry a marker feature; attention must learn to put
  // its weight on the marked row so the context reproduces its payload.
  Rng rng(5);
  AdditiveAttention attn(3, 8, rng);
  nn::Linear query_proj(1, 8, rng);
  std::vector<Var> params = attn.Parameters();
  for (Var& p : query_proj.Parameters()) params.push_back(p);
  Adam opt(params, 1e-2f);
  for (int step = 0; step < 500; ++step) {
    const int marked = static_cast<int>(rng.NextUint64(4));
    Tensor mem({4, 3});
    for (int i = 0; i < 4; ++i) {
      mem(i, 0) = i == marked ? 1.0f : 0.0f;          // marker
      mem(i, 1) = rng.NextFloat(-1, 1);               // payload
      mem(i, 2) = rng.NextFloat(-1, 1);               // noise
    }
    const float payload = mem(marked, 1);
    Var memory = MakeVar(std::move(mem));
    Var proj = attn.ProjectMemory(memory);
    Var query = query_proj.Forward(MakeVar(Tensor::Ones({1, 1})));
    Var ctx = attn.Context(attn.Weights(attn.Energies(proj, query)), memory);
    Var diff = ops::Add(ops::SliceCols(ctx, 1, 1),
                        MakeVar(Tensor({1, 1}, {-payload})));
    Var loss = ops::SumAll(ops::Mul(diff, diff));
    opt.ZeroGrad();
    Backward(loss);
    opt.Step();
  }
  // Evaluate: weight on the marked row should dominate.
  float avg_marked_weight = 0.0f;
  for (int trial = 0; trial < 20; ++trial) {
    const int marked = static_cast<int>(rng.NextUint64(4));
    Tensor mem({4, 3});
    for (int i = 0; i < 4; ++i) {
      mem(i, 0) = i == marked ? 1.0f : 0.0f;
      mem(i, 1) = rng.NextFloat(-1, 1);
      mem(i, 2) = rng.NextFloat(-1, 1);
    }
    Var memory = MakeVar(std::move(mem));
    Var proj = attn.ProjectMemory(memory);
    Var query = query_proj.Forward(MakeVar(Tensor::Ones({1, 1})));
    Var w = attn.Weights(attn.Energies(proj, query));
    avg_marked_weight += w->value(0, marked);
  }
  EXPECT_GT(avg_marked_weight / 20.0f, 0.6f);
}

}  // namespace
}  // namespace nn
}  // namespace nlidb
