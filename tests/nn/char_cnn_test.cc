#include "nn/char_cnn.h"

#include <gtest/gtest.h>

#include "nn/optimizer.h"
#include "tensor/ops.h"
#include "text/vocab.h"

namespace nlidb {
namespace nn {
namespace {

TEST(CharCnnTest, OutputDimIsWidthsTimesPerWidth) {
  Rng rng(1);
  CharCnnEmbedder emb(40, 6, 5, {3, 4, 5}, rng);
  EXPECT_EQ(emb.output_dim(), 15);
  Var out = emb.Forward({1, 2, 3, 4, 5, 6});
  EXPECT_EQ(out->value.rows(), 1);
  EXPECT_EQ(out->value.cols(), 15);
}

TEST(CharCnnTest, HandlesWordShorterThanKernel) {
  Rng rng(2);
  CharCnnEmbedder emb(40, 6, 4, {5}, rng);
  // Word of 2 characters with width-5 convolution: zero padding keeps
  // exactly one slice (the paper pads "so that at least one slice is
  // available").
  Var out = emb.Forward({1, 2});
  EXPECT_EQ(out->value.cols(), 4);
}

TEST(CharCnnTest, SimilarSpellingsProduceSimilarVectors) {
  Rng rng(3);
  text::CharVocab vocab;
  CharCnnEmbedder emb(vocab.size(), 8, 6, {3, 4}, rng);
  auto vec = [&](const std::string& w) {
    return emb.Forward(vocab.Encode(w))->value;
  };
  Tensor a = vec("director");
  Tensor b = vec("directors");  // one char away
  Tensor c = vec("population");
  float dist_ab = 0, dist_ac = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    dist_ab += (a.vec()[i] - b.vec()[i]) * (a.vec()[i] - b.vec()[i]);
    dist_ac += (a.vec()[i] - c.vec()[i]) * (a.vec()[i] - c.vec()[i]);
  }
  EXPECT_LT(dist_ab, dist_ac);
}

TEST(CharCnnTest, SharedCharEmbeddingAcrossWidths) {
  // The character table appears once in the parameter list even with
  // multiple widths (Fig. 4: "the character embedding is shared among
  // convolutions").
  Rng rng(4);
  CharCnnEmbedder emb(30, 4, 3, {3, 4, 5}, rng);
  // 1 char table + 3 x (weight + bias).
  EXPECT_EQ(emb.Parameters().size(), 1u + 3u * 2u);
}

TEST(CharCnnTest, GradientsFlowToCharEmbedding) {
  Rng rng(5);
  CharCnnEmbedder emb(30, 4, 3, {3}, rng);
  Var out = emb.Forward({1, 2, 3, 4});
  Backward(ops::SumAll(out));
  const std::vector<Var> params = emb.Parameters();
  EXPECT_GT(params[0]->grad.Norm2(), 0.0f);
}

TEST(CharCnnTest, LearnsCharacterPatternDetection) {
  // Binary task: does the word contain the character id 5?
  Rng rng(6);
  CharCnnEmbedder emb(10, 6, 8, {3}, rng);
  Linear head(8, 1, rng);
  std::vector<Var> params = emb.Parameters();
  for (Var& p : head.Parameters()) params.push_back(p);
  Adam opt(params, 1e-2f);
  auto make_word = [&](bool with_five) {
    std::vector<int> chars;
    const int len = rng.NextInt(3, 7);
    for (int i = 0; i < len; ++i) {
      int c = rng.NextInt(1, 4);
      chars.push_back(c);
    }
    if (with_five) chars[rng.NextUint64(chars.size())] = 5;
    return chars;
  };
  for (int step = 0; step < 500; ++step) {
    const bool label = rng.NextBool();
    Var logit = head.Forward(emb.Forward(make_word(label)));
    Var loss = ops::BceWithLogits(logit, label ? 1.0f : 0.0f);
    opt.ZeroGrad();
    Backward(loss);
    opt.Step();
  }
  int correct = 0;
  for (int trial = 0; trial < 50; ++trial) {
    const bool label = rng.NextBool();
    const float logit = head.Forward(emb.Forward(make_word(label)))->value(0, 0);
    correct += (logit > 0) == label;
  }
  EXPECT_GE(correct, 45);
}

}  // namespace
}  // namespace nn
}  // namespace nlidb
