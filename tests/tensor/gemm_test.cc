// Bitwise-equality tests for the tiled GEMM kernels against the
// seed-equivalent reference loops (gemm_reference.cc). The substrate's
// determinism contract is exact: for every kernel, every output element
// must receive its k partial products in increasing-k order, so tiled,
// sparse-path, parallel and reference execution all produce the same
// bits. These tests enforce that contract over shapes that exercise all
// tile tails and both density branches.

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "tensor/gemm_kernels.h"
#include "tensor/tensor.h"

namespace nlidb {
namespace {

using GemmFn = void (*)(const Tensor&, const Tensor&, Tensor&);

void ExpectBitwiseEqual(const Tensor& got, const Tensor& want,
                        const std::string& context) {
  ASSERT_EQ(got.size(), want.size()) << context;
  EXPECT_EQ(std::memcmp(got.data(), want.data(),
                        got.size() * sizeof(float)),
            0)
      << context;
}

// Shapes chosen to hit: single row/col, every residue mod the 4-row
// micro-panel, residues around the 8- and 16-wide column panels, and a
// couple of larger blocks.
struct Shape {
  int m, k, n;
};

const Shape kShapes[] = {
    {1, 1, 1},   {1, 5, 1},   {2, 3, 7},   {3, 17, 9},  {4, 8, 16},
    {5, 7, 33},  {6, 33, 17}, {7, 16, 31}, {8, 20, 24}, {9, 1, 40},
    {13, 19, 5}, {16, 32, 48}, {31, 33, 35}, {40, 24, 8}, {64, 48, 72},
};

void CheckKernel(GemmFn tiled, GemmFn reference, bool transpose_a,
                 bool transpose_b, float zero_fraction) {
  Rng rng(12345);
  for (const Shape& s : kShapes) {
    // a carries the contraction on rows when transposed: AtB contracts
    // a's rows with b's rows; ABt contracts a's cols with b's cols.
    const std::vector<int> a_shape =
        transpose_a ? std::vector<int>{s.k, s.m} : std::vector<int>{s.m, s.k};
    const std::vector<int> b_shape =
        transpose_b ? std::vector<int>{s.n, s.k} : std::vector<int>{s.k, s.n};
    Tensor a = Tensor::Gaussian(a_shape, 1.0f, rng);
    Tensor b = Tensor::Gaussian(b_shape, 1.0f, rng);
    if (zero_fraction > 0.0f) {
      for (size_t i = 0; i < a.size(); ++i) {
        if (rng.NextFloat() < zero_fraction) a.data()[i] = 0.0f;
      }
    }
    // Accumulate semantics: start from a non-trivial out and make sure
    // both kernels add onto it identically.
    Tensor out_ref = Tensor::Gaussian({s.m, s.n}, 0.5f, rng);
    Tensor out_tiled = out_ref;
    reference(a, b, out_ref);
    tiled(a, b, out_tiled);
    ExpectBitwiseEqual(
        out_tiled, out_ref,
        "m=" + std::to_string(s.m) + " k=" + std::to_string(s.k) +
            " n=" + std::to_string(s.n) +
            " zero_frac=" + std::to_string(zero_fraction));
  }
}

TEST(GemmTest, MatMulAccumulateMatchesReferenceBitwise) {
  CheckKernel(&MatMulAccumulate, &MatMulAccumulateReference,
              /*transpose_a=*/false, /*transpose_b=*/false, 0.0f);
}

TEST(GemmTest, MatMulAccumulateZeroHeavyInputs) {
  // The tiled path dropped the reference's `aik == 0` skip; zero-heavy
  // inputs must still match bitwise (adding 0.0f*x to a finite
  // accumulator is an exact no-op).
  CheckKernel(&MatMulAccumulate, &MatMulAccumulateReference, false, false,
              0.7f);
}

TEST(GemmTest, TransposeBMatchesReferenceBitwise) {
  CheckKernel(&MatMulTransposeBAccumulate,
              &MatMulTransposeBAccumulateReference, false, true, 0.0f);
  CheckKernel(&MatMulTransposeBAccumulate,
              &MatMulTransposeBAccumulateReference, false, true, 0.6f);
}

TEST(GemmTest, TransposeADenseAndSparsePathsMatchReferenceBitwise) {
  // zero_fraction 0 exercises the dense tiles; >= 0.5 flips the density
  // probe onto the seed-style skip-on-zero path. Both must be bitwise
  // equal to the reference.
  CheckKernel(&MatMulTransposeAAccumulate,
              &MatMulTransposeAAccumulateReference, true, false, 0.0f);
  CheckKernel(&MatMulTransposeAAccumulate,
              &MatMulTransposeAAccumulateReference, true, false, 0.55f);
  CheckKernel(&MatMulTransposeAAccumulate,
              &MatMulTransposeAAccumulateReference, true, false, 0.95f);
}

TEST(GemmTest, ParallelMatchesSerialBitwise) {
  // 192^3 crosses kGemmParallelFlops, so with a multi-thread global pool
  // the row-partitioned path engages. Row partitioning must not change a
  // single bit relative to the serial tiled path.
  const int n = 192;
  ASSERT_GE(2LL * n * n * n, kGemmParallelFlops);
  Rng rng(7);
  Tensor a = Tensor::Gaussian({n, n}, 1.0f, rng);
  Tensor b = Tensor::Gaussian({n, n}, 1.0f, rng);

  auto run_all = [&](int parallelism) {
    ThreadPool::SetGlobalParallelism(parallelism);
    std::vector<Tensor> outs(3, Tensor::Zeros({n, n}));
    MatMulAccumulate(a, b, outs[0]);
    MatMulTransposeBAccumulate(a, b, outs[1]);
    MatMulTransposeAAccumulate(a, b, outs[2]);
    return outs;
  };
  const std::vector<Tensor> serial = run_all(1);
  const std::vector<Tensor> parallel = run_all(4);
  ThreadPool::SetGlobalParallelism(ThreadPool::DefaultParallelism());
  const char* names[] = {"ab", "abt", "atb"};
  for (int i = 0; i < 3; ++i) {
    ExpectBitwiseEqual(parallel[i], serial[i],
                       std::string("parallel vs serial ") + names[i]);
  }
}

TEST(GemmTest, BothIsaTiersMatchReferenceBitwise) {
  // MatMulAccumulate dispatches to whichever tier this machine supports;
  // exercise base and avx2 row kernels directly so the tier NOT chosen
  // by the dispatcher is still covered (on non-AVX2 builds the avx2
  // symbols forward to base, which is fine — the assertion still holds).
  Rng rng(4242);
  for (const Shape& s : kShapes) {
    Tensor a = Tensor::Gaussian({s.m, s.k}, 1.0f, rng);
    Tensor b = Tensor::Gaussian({s.k, s.n}, 1.0f, rng);
    Tensor want = Tensor::Gaussian({s.m, s.n}, 0.5f, rng);
    Tensor got_base = want;
    Tensor got_avx2 = want;
    MatMulAccumulateReference(a, b, want);
    gemm::base::RowsAB(a.data(), b.data(), got_base.data(), 0, s.m, s.k, s.n);
    gemm::avx2::RowsAB(a.data(), b.data(), got_avx2.data(), 0, s.m, s.k, s.n);
    const std::string ctx = "m=" + std::to_string(s.m) +
                            " k=" + std::to_string(s.k) +
                            " n=" + std::to_string(s.n);
    ExpectBitwiseEqual(got_base, want, "base " + ctx);
    ExpectBitwiseEqual(got_avx2, want, "avx2 " + ctx);
  }
}

TEST(GemmTest, ReferenceKernelsAgreeWithNaiveDot) {
  // Anchor the reference kernels themselves against a freshly written
  // naive dot product (guards against the reference drifting).
  Rng rng(99);
  const int m = 6, k = 11, n = 9;
  Tensor a = Tensor::Gaussian({m, k}, 1.0f, rng);
  Tensor b = Tensor::Gaussian({k, n}, 1.0f, rng);
  Tensor out = Tensor::Zeros({m, n});
  MatMulAccumulateReference(a, b, out);
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) {
      float acc = 0.0f;
      for (int kk = 0; kk < k; ++kk) {
        acc += a.data()[i * k + kk] * b.data()[kk * n + j];
      }
      EXPECT_NEAR(out.data()[i * n + j], acc, 1e-4f);
    }
  }
}

}  // namespace
}  // namespace nlidb
