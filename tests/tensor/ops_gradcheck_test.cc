// Finite-difference gradient checks for every differentiable op,
// parameterized so each op is an independently reported case.

#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <string>

#include "common/strings.h"
#include "tensor/ops.h"

namespace nlidb {
namespace {

/// Builds a scalar-valued graph from two leaf variables.
using GraphBuilder = std::function<Var(const Var&, const Var&)>;

struct OpCase {
  std::string name;
  std::vector<int> a_shape;
  std::vector<int> b_shape;  // empty: single-input op
  GraphBuilder build;
};

class OpsGradCheckTest : public ::testing::TestWithParam<OpCase> {};

float Eval(const OpCase& c, const Var& a, const Var& b) {
  return c.build(a, b)->value(0);
}

TEST_P(OpsGradCheckTest, MatchesFiniteDifference) {
  const OpCase& c = GetParam();
  Rng rng(Fnv1aHash(c.name));
  Var a = MakeVar(Tensor::Uniform(c.a_shape, -0.9f, 0.9f, rng),
                  /*requires_grad=*/true);
  Var b = c.b_shape.empty()
              ? MakeVar(Tensor({1}), false)
              : MakeVar(Tensor::Uniform(c.b_shape, -0.9f, 0.9f, rng),
                        /*requires_grad=*/true);
  Var loss = c.build(a, b);
  ASSERT_EQ(loss->value.size(), 1u) << "builder must produce a scalar";
  Backward(loss);

  const float eps = 5e-3f;
  auto check_leaf = [&](const Var& leaf) {
    ASSERT_FALSE(leaf->grad.empty());
    for (size_t i = 0; i < leaf->value.size(); i += 3) {
      const float orig = leaf->value.vec()[i];
      leaf->value.vec()[i] = orig + eps;
      const float up = Eval(c, a, b);
      leaf->value.vec()[i] = orig - eps;
      const float down = Eval(c, a, b);
      leaf->value.vec()[i] = orig;
      const float fd = (up - down) / (2 * eps);
      const float an = leaf->grad.vec()[i];
      EXPECT_NEAR(an, fd, 2e-2f + 0.05f * std::fabs(fd))
          << c.name << " entry " << i;
    }
  };
  check_leaf(a);
  if (!c.b_shape.empty()) check_leaf(b);
}

std::vector<OpCase> AllCases() {
  std::vector<OpCase> cases;
  auto scalar = [](const Var& v) { return ops::SumAll(v); };
  cases.push_back({"matmul", {3, 4}, {4, 2}, [scalar](const Var& a, const Var& b) {
                     return scalar(ops::MatMul(a, b));
                   }});
  cases.push_back({"add", {2, 3}, {2, 3}, [scalar](const Var& a, const Var& b) {
                     return scalar(ops::Tanh(ops::Add(a, b)));
                   }});
  cases.push_back({"sub", {2, 3}, {2, 3}, [scalar](const Var& a, const Var& b) {
                     return scalar(ops::Sigmoid(ops::Sub(a, b)));
                   }});
  cases.push_back({"mul", {2, 3}, {2, 3}, [scalar](const Var& a, const Var& b) {
                     return scalar(ops::Mul(a, b));
                   }});
  cases.push_back({"add_row_broadcast", {3, 4}, {4}, [scalar](const Var& a, const Var& b) {
                     return scalar(ops::Tanh(ops::AddRowBroadcast(a, b)));
                   }});
  cases.push_back({"scalar_mul", {2, 2}, {}, [scalar](const Var& a, const Var&) {
                     return scalar(ops::ScalarMul(a, -1.7f));
                   }});
  cases.push_back({"sigmoid", {2, 3}, {}, [scalar](const Var& a, const Var&) {
                     return scalar(ops::Sigmoid(a));
                   }});
  cases.push_back({"tanh", {2, 3}, {}, [scalar](const Var& a, const Var&) {
                     return scalar(ops::Tanh(a));
                   }});
  cases.push_back({"relu", {2, 5}, {}, [scalar](const Var& a, const Var&) {
                     return scalar(ops::Relu(a));
                   }});
  cases.push_back({"exp", {2, 3}, {}, [scalar](const Var& a, const Var&) {
                     return scalar(ops::Exp(a));
                   }});
  cases.push_back({"softmax_rows", {2, 4}, {2, 4}, [scalar](const Var& a, const Var& b) {
                     return scalar(ops::Mul(ops::SoftmaxRows(a), b));
                   }});
  cases.push_back({"transpose", {2, 3}, {3, 2}, [scalar](const Var& a, const Var& b) {
                     return scalar(ops::Mul(ops::Transpose(a), b));
                   }});
  cases.push_back({"concat_cols", {2, 3}, {2, 2}, [scalar](const Var& a, const Var& b) {
                     return scalar(ops::Tanh(ops::ConcatCols({a, b})));
                   }});
  cases.push_back({"concat_rows", {2, 3}, {1, 3}, [scalar](const Var& a, const Var& b) {
                     return scalar(ops::Tanh(ops::ConcatRows({a, b})));
                   }});
  cases.push_back({"pick_row", {3, 4}, {}, [scalar](const Var& a, const Var&) {
                     return scalar(ops::Tanh(ops::PickRow(a, 1)));
                   }});
  cases.push_back({"slice_cols", {2, 6}, {}, [scalar](const Var& a, const Var&) {
                     return scalar(ops::Tanh(ops::SliceCols(a, 1, 3)));
                   }});
  cases.push_back({"mean_rows", {4, 3}, {}, [scalar](const Var& a, const Var&) {
                     return scalar(ops::Tanh(ops::MeanRows(a)));
                   }});
  cases.push_back({"row_max", {3, 4}, {}, [scalar](const Var& a, const Var&) {
                     return scalar(ops::RowMax(a));
                   }});
  cases.push_back({"row_mean", {3, 4}, {}, [scalar](const Var& a, const Var&) {
                     return scalar(ops::RowMean(a));
                   }});
  cases.push_back({"mean_all", {3, 4}, {}, [](const Var& a, const Var&) {
                     return ops::MeanAll(ops::Tanh(a));
                   }});
  cases.push_back({"embedding_lookup", {5, 3}, {}, [scalar](const Var& a, const Var&) {
                     return scalar(
                         ops::Tanh(ops::EmbeddingLookup(a, {0, 2, 2, 4})));
                   }});
  cases.push_back({"conv1d_mean", {6, 3}, {9, 2}, [scalar](const Var& a, const Var& b) {
                     Var bias = MakeVar(Tensor({2}, {0.1f, -0.2f}), true);
                     return scalar(ops::Tanh(ops::Conv1dMean(a, b, bias, 3)));
                   }});
  cases.push_back({"conv1d_mean_short_input", {2, 3}, {9, 2},
                   [scalar](const Var& a, const Var& b) {
                     // input shorter than kernel: zero-padding path.
                     Var bias = MakeVar(Tensor({2}), true);
                     return scalar(ops::Tanh(ops::Conv1dMean(a, b, bias, 3)));
                   }});
  cases.push_back({"scatter_sum_cols", {1, 4}, {}, [scalar](const Var& a, const Var&) {
                     return scalar(
                         ops::Tanh(ops::ScatterSumCols(a, {0, 2, 2, 5}, 6)));
                   }});
  cases.push_back({"bce_with_logits", {1, 1}, {}, [](const Var& a, const Var&) {
                     return ops::BceWithLogits(a, 1.0f);
                   }});
  cases.push_back({"cross_entropy", {1, 5}, {}, [](const Var& a, const Var&) {
                     return ops::CrossEntropyWithLogits(a, 2);
                   }});
  cases.push_back({"neg_log_normalized", {1, 4}, {}, [](const Var& a, const Var&) {
                     // scores must be positive.
                     return ops::NegLogNormalized(ops::Exp(a), 1);
                   }});
  cases.push_back({"layer_norm", {3, 6}, {6}, [scalar](const Var& a, const Var& b) {
                     Var bias = MakeVar(Tensor({6}), true);
                     return scalar(ops::LayerNormRows(a, b, bias));
                   }});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllOps, OpsGradCheckTest,
                         ::testing::ValuesIn(AllCases()),
                         [](const ::testing::TestParamInfo<OpCase>& info) {
                           return info.param.name;
                         });

TEST(OpsTest, SoftmaxRowsSumToOne) {
  Var a = MakeVar(Tensor({2, 5}, {1, 2, 3, 4, 5, -1, 0, 1, 0, -1}));
  Var s = ops::SoftmaxRows(a);
  for (int i = 0; i < 2; ++i) {
    float sum = 0.0f;
    for (int j = 0; j < 5; ++j) {
      sum += s->value(i, j);
      EXPECT_GT(s->value(i, j), 0.0f);
    }
    EXPECT_NEAR(sum, 1.0f, 1e-5f);
  }
}

TEST(OpsTest, DropoutTrainFalseIsIdentity) {
  Rng rng(1);
  Var a = MakeVar(Tensor({2, 4}, {1, 2, 3, 4, 5, 6, 7, 8}));
  Var d = ops::Dropout(a, 0.5f, rng, /*train=*/false);
  EXPECT_EQ(d.get(), a.get());
}

TEST(OpsTest, DropoutPreservesExpectation) {
  Rng rng(2);
  Var a = MakeVar(Tensor::Ones({1, 10000}));
  Var d = ops::Dropout(a, 0.3f, rng, /*train=*/true);
  EXPECT_NEAR(d->value.Sum() / 10000.0f, 1.0f, 0.05f);
}

TEST(OpsTest, ExpClampsLargeInputs) {
  Var a = MakeVar(Tensor({1, 2}, {100.0f, 0.0f}));
  Var e = ops::Exp(a);
  EXPECT_FLOAT_EQ(e->value(0, 0), std::exp(20.0f));
  EXPECT_FLOAT_EQ(e->value(0, 1), 1.0f);
}

TEST(OpsTest, ScatterSumColsAccumulatesDuplicates) {
  Var v = MakeVar(Tensor({1, 3}, {1, 2, 3}));
  Var s = ops::ScatterSumCols(v, {1, 1, 0}, 4);
  EXPECT_FLOAT_EQ(s->value(0, 0), 3.0f);
  EXPECT_FLOAT_EQ(s->value(0, 1), 3.0f);
  EXPECT_FLOAT_EQ(s->value(0, 2), 0.0f);
}

}  // namespace
}  // namespace nlidb
