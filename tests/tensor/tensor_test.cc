#include "tensor/tensor.h"

#include <gtest/gtest.h>

#include <cmath>

namespace nlidb {
namespace {

TEST(TensorTest, ZeroInitialized) {
  Tensor t({2, 3});
  EXPECT_EQ(t.rank(), 2);
  EXPECT_EQ(t.rows(), 2);
  EXPECT_EQ(t.cols(), 3);
  EXPECT_EQ(t.size(), 6u);
  for (size_t i = 0; i < t.size(); ++i) EXPECT_EQ(t.vec()[i], 0.0f);
}

TEST(TensorTest, ExplicitData) {
  Tensor t({2, 2}, {1, 2, 3, 4});
  EXPECT_EQ(t(0, 0), 1);
  EXPECT_EQ(t(0, 1), 2);
  EXPECT_EQ(t(1, 0), 3);
  EXPECT_EQ(t(1, 1), 4);
}

TEST(TensorTest, FillScaleAddAxpy) {
  Tensor a = Tensor::Full({2, 2}, 2.0f);
  Tensor b = Tensor::Ones({2, 2});
  a.Scale(3.0f);
  a.Add(b);
  EXPECT_EQ(a(0, 0), 7.0f);
  a.Axpy(-2.0f, b);
  EXPECT_EQ(a(1, 1), 5.0f);
}

TEST(TensorTest, Reductions) {
  Tensor t({3}, {3, -4, 1});
  EXPECT_FLOAT_EQ(t.Sum(), 0.0f);
  EXPECT_FLOAT_EQ(t.Max(), 3.0f);
  EXPECT_FLOAT_EQ(t.AbsMax(), 4.0f);
  EXPECT_FLOAT_EQ(t.Norm2(), std::sqrt(26.0f));
  EXPECT_FLOAT_EQ(t.NormP(1.0f), 8.0f);
  EXPECT_NEAR(t.NormP(2.0f), t.Norm2(), 1e-5f);
}

TEST(TensorTest, RowAccess) {
  Tensor t({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor row = t.Row(1);
  EXPECT_EQ(row.shape(), std::vector<int>{3});
  EXPECT_EQ(row(2), 6);
  t.SetRow(0, Tensor::FromVector({7, 8, 9}));
  EXPECT_EQ(t(0, 1), 8);
}

TEST(TensorTest, ReshapeSharesValues) {
  Tensor t({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor r = t.Reshaped({3, 2});
  EXPECT_EQ(r(2, 1), 6);
}

TEST(TensorTest, Transpose) {
  Tensor t({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor tt = t.Transposed();
  EXPECT_EQ(tt.rows(), 3);
  EXPECT_EQ(tt.cols(), 2);
  EXPECT_EQ(tt(2, 0), 3);
  EXPECT_EQ(tt(0, 1), 4);
}

TEST(TensorTest, AllClose) {
  Tensor a({2}, {1.0f, 2.0f});
  Tensor b({2}, {1.0f + 1e-7f, 2.0f});
  Tensor c({2}, {1.1f, 2.0f});
  EXPECT_TRUE(a.AllClose(b));
  EXPECT_FALSE(a.AllClose(c));
  EXPECT_FALSE(a.AllClose(Tensor({3})));
}

TEST(TensorTest, GaussianStatistics) {
  Rng rng(3);
  Tensor t = Tensor::Gaussian({100, 100}, 2.0f, rng);
  double sum = 0, sq = 0;
  for (float x : t.vec()) {
    sum += x;
    sq += x * x;
  }
  const double n = t.size();
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(std::sqrt(sq / n), 2.0, 0.05);
}

TEST(TensorTest, XavierBound) {
  Rng rng(4);
  Tensor t = Tensor::Xavier(30, 10, rng);
  const float bound = std::sqrt(6.0f / 40.0f);
  for (float x : t.vec()) {
    EXPECT_GE(x, -bound);
    EXPECT_LE(x, bound);
  }
}

TEST(MatMulTest, SmallKnownProduct) {
  Tensor a({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor b({3, 2}, {7, 8, 9, 10, 11, 12});
  Tensor c = MatMul(a, b);
  EXPECT_EQ(c(0, 0), 58);
  EXPECT_EQ(c(0, 1), 64);
  EXPECT_EQ(c(1, 0), 139);
  EXPECT_EQ(c(1, 1), 154);
}

TEST(MatMulTest, TransposeVariantsAgree) {
  Rng rng(5);
  Tensor a = Tensor::Gaussian({4, 3}, 1.0f, rng);
  Tensor b = Tensor::Gaussian({3, 5}, 1.0f, rng);
  Tensor ref = MatMul(a, b);
  // a^T^T * b via MatMulTransposeAAccumulate with a^T.
  Tensor at = a.Transposed();
  Tensor out1({4, 5});
  MatMulTransposeAAccumulate(at, b, out1);
  EXPECT_TRUE(out1.AllClose(ref, 1e-4f));
  // a * b^T^T via MatMulTransposeBAccumulate with b^T.
  Tensor bt = b.Transposed();
  Tensor out2({4, 5});
  MatMulTransposeBAccumulate(a, bt, out2);
  EXPECT_TRUE(out2.AllClose(ref, 1e-4f));
}

}  // namespace
}  // namespace nlidb
