#include "tensor/autograd.h"

#include <gtest/gtest.h>

#include "tensor/ops.h"

namespace nlidb {
namespace {

TEST(AutogradTest, LeafWithoutGradStaysEmpty) {
  Var x = MakeVar(Tensor({1, 2}, {1, 2}), /*requires_grad=*/false);
  Var y = ops::SumAll(x);
  Backward(y);
  EXPECT_TRUE(x->grad.empty());
}

TEST(AutogradTest, SimpleChainGradient) {
  Var x = MakeVar(Tensor({1, 3}, {1, 2, 3}), /*requires_grad=*/true);
  Var y = ops::SumAll(ops::ScalarMul(x, 2.0f));
  Backward(y);
  ASSERT_FALSE(x->grad.empty());
  for (int j = 0; j < 3; ++j) EXPECT_FLOAT_EQ(x->grad(0, j), 2.0f);
}

TEST(AutogradTest, GradAccumulatesAcrossFanOut) {
  Var x = MakeVar(Tensor({1, 2}, {1, 1}), /*requires_grad=*/true);
  // y = sum(x) + sum(x): gradient should be 2 for every entry.
  Var y = ops::Add(ops::SumAll(x), ops::SumAll(x));
  Backward(y);
  EXPECT_FLOAT_EQ(x->grad(0, 0), 2.0f);
  EXPECT_FLOAT_EQ(x->grad(0, 1), 2.0f);
}

TEST(AutogradTest, DiamondGraph) {
  Var x = MakeVar(Tensor({1, 1}, {3.0f}), /*requires_grad=*/true);
  Var a = ops::ScalarMul(x, 2.0f);  // 6
  Var b = ops::ScalarMul(x, 5.0f);  // 15
  Var y = ops::SumAll(ops::Mul(a, b));  // 10 x^2 = 90; dy/dx = 20x = 60
  Backward(y);
  EXPECT_FLOAT_EQ(y->value(0), 90.0f);
  EXPECT_FLOAT_EQ(x->grad(0, 0), 60.0f);
}

TEST(AutogradTest, LongChainDoesNotOverflowStack) {
  // 5000 chained ops exercises the iterative topological sort.
  Var x = MakeVar(Tensor({1, 4}, {1, 1, 1, 1}), /*requires_grad=*/true);
  Var h = x;
  for (int i = 0; i < 5000; ++i) h = ops::ScalarMul(h, 1.0001f);
  Var y = ops::SumAll(h);
  Backward(y);
  EXPECT_GT(x->grad(0, 0), 1.0f);
  EXPECT_LT(x->grad(0, 0), 3.0f);
}

TEST(AutogradTest, ZeroGradClears) {
  Var x = MakeVar(Tensor({1, 2}, {1, 2}), /*requires_grad=*/true);
  Backward(ops::SumAll(x));
  EXPECT_FLOAT_EQ(x->grad(0, 0), 1.0f);
  ZeroGrad({x});
  EXPECT_FLOAT_EQ(x->grad(0, 0), 0.0f);
}

TEST(AutogradTest, BackwardTwiceAccumulates) {
  Var x = MakeVar(Tensor({1, 1}, {2.0f}), /*requires_grad=*/true);
  Var y = ops::SumAll(x);
  Backward(y);
  // Fresh graph over the same leaf: gradients accumulate (optimizer is
  // responsible for zeroing between steps).
  Var y2 = ops::SumAll(x);
  Backward(y2);
  EXPECT_FLOAT_EQ(x->grad(0, 0), 2.0f);
}

}  // namespace
}  // namespace nlidb
