#include "data/serialization.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "data/generator.h"
#include "sql/query.h"

namespace nlidb {
namespace data {
namespace {

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

TEST(SerializationTest, RoundTripPreservesEverything) {
  GeneratorConfig config;
  config.num_tables = 5;
  config.questions_per_table = 4;
  config.seed = 11;
  WikiSqlGenerator gen(config, TrainDomains());
  Dataset original = gen.Generate();

  const std::string path = TempPath("dataset_roundtrip.txt");
  ASSERT_TRUE(SaveDataset(original, path).ok());
  auto loaded = LoadDataset(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();

  ASSERT_EQ(loaded->tables.size(), original.tables.size());
  for (size_t t = 0; t < original.tables.size(); ++t) {
    const sql::Table& a = *original.tables[t];
    const sql::Table& b = *loaded->tables[t];
    EXPECT_EQ(a.name(), b.name());
    ASSERT_TRUE(a.schema() == b.schema());
    ASSERT_EQ(a.num_rows(), b.num_rows());
    for (int r = 0; r < a.num_rows(); ++r) {
      for (int c = 0; c < a.num_columns(); ++c) {
        EXPECT_TRUE(a.Cell(r, c) == b.Cell(r, c));
      }
    }
  }
  ASSERT_EQ(loaded->examples.size(), original.examples.size());
  for (size_t e = 0; e < original.examples.size(); ++e) {
    const Example& a = original.examples[e];
    const Example& b = loaded->examples[e];
    EXPECT_EQ(a.question, b.question);
    EXPECT_EQ(a.tokens, b.tokens);
    EXPECT_TRUE(a.query == b.query)
        << sql::ToSql(a.query, a.schema()) << " vs "
        << sql::ToSql(b.query, b.schema());
    EXPECT_EQ(a.select_mention, b.select_mention);
    EXPECT_EQ(a.select_explicit, b.select_explicit);
    ASSERT_EQ(a.where_mentions.size(), b.where_mentions.size());
    for (size_t m = 0; m < a.where_mentions.size(); ++m) {
      EXPECT_EQ(a.where_mentions[m].column, b.where_mentions[m].column);
      EXPECT_EQ(a.where_mentions[m].column_span, b.where_mentions[m].column_span);
      EXPECT_EQ(a.where_mentions[m].value_span, b.where_mentions[m].value_span);
      EXPECT_EQ(a.where_mentions[m].column_explicit,
                b.where_mentions[m].column_explicit);
    }
  }
  std::remove(path.c_str());
}

TEST(SerializationTest, MissingFileIsIoError) {
  auto loaded = LoadDataset(TempPath("nope.txt"));
  EXPECT_EQ(loaded.status().code(), StatusCode::kIoError);
}

TEST(SerializationTest, CrlfLineEndingsLoadIdentically) {
  // A dataset file that passed through a Windows checkout (every \n
  // rewritten to \r\n) must load exactly like the original.
  GeneratorConfig config;
  config.num_tables = 3;
  config.questions_per_table = 2;
  config.seed = 12;
  WikiSqlGenerator gen(config, TrainDomains());
  Dataset original = gen.Generate();
  const std::string path = TempPath("dataset_crlf.txt");
  ASSERT_TRUE(SaveDataset(original, path).ok());
  std::string content;
  {
    std::ifstream in(path, std::ios::binary);
    std::string line;
    while (std::getline(in, line)) content += line + "\r\n";
  }
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << content;
  }
  auto loaded = LoadDataset(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  ASSERT_EQ(loaded->examples.size(), original.examples.size());
  for (size_t e = 0; e < original.examples.size(); ++e) {
    EXPECT_EQ(loaded->examples[e].question, original.examples[e].question);
    EXPECT_EQ(loaded->examples[e].tokens, original.examples[e].tokens);
  }
  ASSERT_EQ(loaded->tables.size(), original.tables.size());
  for (size_t t = 0; t < original.tables.size(); ++t) {
    EXPECT_TRUE(loaded->tables[t]->schema() == original.tables[t]->schema());
  }
  std::remove(path.c_str());
}

TEST(SerializationTest, GarbageFileIsParseError) {
  const std::string path = TempPath("garbage.txt");
  {
    std::ofstream out(path);
    out << "this is not a dataset\n";
  }
  auto loaded = LoadDataset(path);
  EXPECT_EQ(loaded.status().code(), StatusCode::kParseError);
  std::remove(path.c_str());
}

TEST(SerializationTest, TruncatedFileIsParseError) {
  GeneratorConfig config;
  config.num_tables = 2;
  WikiSqlGenerator gen(config, TrainDomains());
  Dataset ds = gen.Generate();
  const std::string full = TempPath("full.txt");
  ASSERT_TRUE(SaveDataset(ds, full).ok());
  // Truncate to half.
  std::string content;
  {
    std::ifstream in(full);
    std::string line;
    int keep = 0;
    while (std::getline(in, line) && keep++ < 10) content += line + "\n";
  }
  const std::string cut = TempPath("cut.txt");
  {
    std::ofstream out(cut);
    out << content;
  }
  EXPECT_FALSE(LoadDataset(cut).ok());
  std::remove(full.c_str());
  std::remove(cut.c_str());
}

TEST(SerializationTest, EmptyDatasetRoundTrips) {
  Dataset empty;
  const std::string path = TempPath("empty.txt");
  ASSERT_TRUE(SaveDataset(empty, path).ok());
  auto loaded = LoadDataset(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded->tables.empty());
  EXPECT_TRUE(loaded->examples.empty());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace data
}  // namespace nlidb
