#include "data/domain.h"

#include <gtest/gtest.h>

#include <set>

namespace nlidb {
namespace data {
namespace {

TEST(DomainsTest, PoolsAreNonEmptyAndNamed) {
  std::set<std::string> names;
  for (const ValuePool& pool : ValuePools()) {
    EXPECT_FALSE(pool.name.empty());
    EXPECT_FALSE(pool.items.empty()) << pool.name;
    EXPECT_TRUE(names.insert(pool.name).second) << "duplicate " << pool.name;
  }
}

TEST(DomainsTest, GetPoolFindsEveryPool) {
  for (const ValuePool& pool : ValuePools()) {
    EXPECT_EQ(&GetPool(pool.name), &pool);
  }
}

TEST(DomainsTest, TrainDomainsWellFormed) {
  EXPECT_GE(TrainDomains().size(), 5u);
  for (const DomainSpec& d : TrainDomains()) {
    EXPECT_GE(d.columns.size(), 4u) << d.name;
    std::set<std::string> cols;
    for (const ColumnSpec& c : d.columns) {
      EXPECT_TRUE(cols.insert(c.name).second)
          << "duplicate column " << c.name << " in " << d.name;
      EXPECT_FALSE(c.mention_phrases.empty()) << c.name;
      if (c.type == sql::DataType::kText) {
        EXPECT_FALSE(c.values.compose_pools.empty()) << c.name;
        for (const auto& pool : c.values.compose_pools) {
          EXPECT_FALSE(GetPool(pool).items.empty());
        }
      } else {
        EXPECT_LT(c.values.num_lo, c.values.num_hi) << c.name;
      }
      for (const auto& tmpl : c.verb_templates) {
        EXPECT_NE(tmpl.find("{v}"), std::string::npos)
            << "verb template without {v}: " << tmpl;
      }
      for (const auto& tmpl : c.implicit_templates) {
        EXPECT_NE(tmpl.find("{v}"), std::string::npos);
        EXPECT_EQ(tmpl.find("{c}"), std::string::npos)
            << "implicit template mentions the column: " << tmpl;
      }
    }
  }
}

TEST(DomainsTest, OvernightHasFiveSubdomains) {
  const auto& domains = OvernightDomains();
  ASSERT_EQ(domains.size(), 5u);
  std::set<std::string> names;
  for (const auto& d : domains) names.insert(d.name);
  EXPECT_TRUE(names.count("basketball"));
  EXPECT_TRUE(names.count("calendar"));
  EXPECT_TRUE(names.count("housing"));
  EXPECT_TRUE(names.count("recipes"));
  EXPECT_TRUE(names.count("restaurants"));
}

TEST(DomainsTest, PatientsDomainForParaphraseBench) {
  const DomainSpec& d = PatientsDomain();
  EXPECT_EQ(d.name, "patients");
  EXPECT_GE(d.columns.size(), 5u);
}

TEST(DomainsTest, EveryColumnWhWordIsKnown) {
  const std::set<std::string> known = {"what", "which", "who", "when",
                                       "where", "how many"};
  for (const auto* domains : {&TrainDomains(), &OvernightDomains()}) {
    for (const DomainSpec& d : *domains) {
      for (const ColumnSpec& c : d.columns) {
        EXPECT_TRUE(known.count(c.wh_word)) << c.name << ": " << c.wh_word;
      }
    }
  }
}

TEST(DomainsTest, RegisterDomainClustersIsIdempotent) {
  text::EmbeddingProvider p(32);
  RegisterDomainClusters(p);
  auto v1 = p.Vector("piotr");
  RegisterDomainClusters(p);
  EXPECT_EQ(p.Vector("piotr"), v1);
}

}  // namespace
}  // namespace data
}  // namespace nlidb
