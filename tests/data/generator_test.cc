// Property tests over the synthetic corpus generator: every generated
// example must be internally consistent (spans in range, SQL valid and
// parseable, annotations pointing at real values).

#include "data/generator.h"

#include <gtest/gtest.h>

#include "common/strings.h"
#include "sql/executor.h"
#include "sql/parser.h"
#include "text/tokenizer.h"

namespace nlidb {
namespace data {
namespace {

struct GenCase {
  uint64_t seed;
  QuestionStyle style;
};

class GeneratorPropertyTest : public ::testing::TestWithParam<GenCase> {};

TEST_P(GeneratorPropertyTest, AllInvariantsHold) {
  GeneratorConfig config;
  config.num_tables = 8;
  config.questions_per_table = 6;
  config.seed = GetParam().seed;
  config.style = GetParam().style;
  WikiSqlGenerator gen(config, TrainDomains());
  Dataset ds = gen.Generate();
  ASSERT_EQ(ds.tables.size(), 8u);
  ASSERT_EQ(ds.examples.size(), 48u);

  for (const Example& ex : ds.examples) {
    const int n = static_cast<int>(ex.tokens.size());
    ASSERT_GT(n, 0);
    EXPECT_EQ(ex.tokens.back(), "?");
    // Question text round-trips its tokens.
    EXPECT_EQ(SplitWhitespace(ex.question), ex.tokens);

    // Query is well-formed against the schema.
    const sql::Schema& schema = ex.schema();
    ASSERT_GE(ex.query.select_column, 0);
    ASSERT_LT(ex.query.select_column, schema.num_columns());
    ASSERT_GE(ex.query.conditions.size(), 1u);
    ASSERT_LE(static_cast<int>(ex.query.conditions.size()),
              config.max_conditions);
    for (const auto& cond : ex.query.conditions) {
      ASSERT_GE(cond.column, 0);
      ASSERT_LT(cond.column, schema.num_columns());
      EXPECT_NE(cond.column, ex.query.select_column);
      // Value type matches column type.
      EXPECT_EQ(cond.value.type(), schema.column(cond.column).type);
    }

    // The printed SQL parses back to the same query.
    auto parsed = sql::ParseSql(sql::ToSql(ex.query, schema), schema);
    ASSERT_TRUE(parsed.ok()) << parsed.status();
    EXPECT_TRUE(*parsed == ex.query);

    // The query executes.
    EXPECT_TRUE(sql::Execute(ex.query, *ex.table).ok());

    // Mention annotations: one per condition, spans in range, value span
    // text matches the condition value.
    ASSERT_EQ(ex.where_mentions.size(), ex.query.conditions.size());
    for (size_t i = 0; i < ex.where_mentions.size(); ++i) {
      const MentionInfo& m = ex.where_mentions[i];
      EXPECT_EQ(m.column, ex.query.conditions[i].column);
      ASSERT_FALSE(m.value_span.empty());
      ASSERT_GE(m.value_span.begin, 0);
      ASSERT_LE(m.value_span.end, n);
      const std::string span_text = text::SpanText(ex.tokens, m.value_span);
      EXPECT_EQ(span_text,
                ToLower(ex.query.conditions[i].value.ToString()));
      if (m.column_explicit) {
        ASSERT_FALSE(m.column_span.empty());
        ASSERT_LE(m.column_span.end, n);
        EXPECT_FALSE(m.column_span.Overlaps(m.value_span));
      }
    }
    if (!ex.select_mention.empty()) {
      EXPECT_LE(ex.select_mention.end, n);
    }
  }
}

std::vector<GenCase> GenCases() {
  std::vector<GenCase> cases;
  for (uint64_t seed : {1u, 7u, 99u}) {
    cases.push_back({seed, QuestionStyle::kMixed});
  }
  for (QuestionStyle style :
       {QuestionStyle::kNaive, QuestionStyle::kSyntactic,
        QuestionStyle::kLexical, QuestionStyle::kMorphological,
        QuestionStyle::kSemantic, QuestionStyle::kMissing}) {
    cases.push_back({3u, style});
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndStyles, GeneratorPropertyTest, ::testing::ValuesIn(GenCases()),
    [](const ::testing::TestParamInfo<GenCase>& info) {
      return std::string(QuestionStyleName(info.param.style)) + "_seed" +
             std::to_string(info.param.seed);
    });

TEST(GeneratorTest, DeterministicForSeed) {
  GeneratorConfig config;
  config.num_tables = 4;
  config.seed = 5;
  WikiSqlGenerator g1(config, TrainDomains());
  WikiSqlGenerator g2(config, TrainDomains());
  Dataset a = g1.Generate();
  Dataset b = g2.Generate();
  ASSERT_EQ(a.examples.size(), b.examples.size());
  for (size_t i = 0; i < a.examples.size(); ++i) {
    EXPECT_EQ(a.examples[i].question, b.examples[i].question);
  }
}

TEST(GeneratorTest, MissingStyleHasNoExplicitConditionMentions) {
  GeneratorConfig config;
  config.num_tables = 6;
  config.style = QuestionStyle::kMissing;
  WikiSqlGenerator gen(config, TrainDomains());
  Dataset ds = gen.Generate();
  for (const Example& ex : ds.examples) {
    for (const MentionInfo& m : ex.where_mentions) {
      EXPECT_FALSE(m.column_explicit);
      EXPECT_TRUE(m.column_span.empty());
    }
  }
}

TEST(GeneratorTest, SplitsHaveDisjointTables) {
  GeneratorConfig config;
  config.num_tables = 20;
  config.seed = 2;
  Splits splits = GenerateWikiSqlSplits(config);
  EXPECT_GT(splits.train.tables.size(), 0u);
  EXPECT_GT(splits.dev.tables.size(), 0u);
  EXPECT_GT(splits.test.tables.size(), 0u);
  EXPECT_EQ(splits.train.tables.size() + splits.dev.tables.size() +
                splits.test.tables.size(),
            20u);
  for (const auto& t : splits.train.tables) {
    for (const auto& d : splits.dev.tables) EXPECT_NE(t.get(), d.get());
    for (const auto& s : splits.test.tables) EXPECT_NE(t.get(), s.get());
  }
  // Examples reference tables of their own split.
  for (const Example& ex : splits.test.examples) {
    bool found = false;
    for (const auto& t : splits.test.tables) found |= t == ex.table;
    EXPECT_TRUE(found);
  }
  EXPECT_EQ(splits.train.size() + splits.dev.size() + splits.test.size(),
            20u * config.questions_per_table);
}

TEST(GeneratorTest, CounterfactualValuesAppear) {
  GeneratorConfig config;
  config.num_tables = 10;
  config.counterfactual_probability = 1.0f;
  config.seed = 3;
  WikiSqlGenerator gen(config, TrainDomains());
  Dataset ds = gen.Generate();
  int counterfactual = 0, total = 0;
  for (const Example& ex : ds.examples) {
    for (const auto& cond : ex.query.conditions) {
      ++total;
      counterfactual += !ex.table->ColumnContains(cond.column, cond.value);
    }
  }
  // With probability 1.0 nearly all condition values should be absent
  // from the table (random collisions allowed).
  EXPECT_GT(counterfactual, total / 2);
}

}  // namespace
}  // namespace data
}  // namespace nlidb
