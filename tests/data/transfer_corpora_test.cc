#include <gtest/gtest.h>

#include <set>

#include "data/overnight.h"
#include "attack/paraphrase_bench.h"

namespace nlidb {
namespace data {
namespace {

TEST(OvernightTest, FiveSubdomainsWithTrainTestSplits) {
  GeneratorConfig config;
  config.num_tables = 6;
  config.questions_per_table = 4;
  config.seed = 1;
  OvernightCorpus corpus = GenerateOvernight(config);
  ASSERT_EQ(corpus.subdomains.size(), 5u);
  std::set<std::string> names;
  for (const auto& sub : corpus.subdomains) {
    names.insert(sub.name);
    EXPECT_GT(sub.train.size(), 0u) << sub.name;
    EXPECT_GT(sub.test.size(), 0u) << sub.name;
    // Tables disjoint between the sub-domain's train and test.
    for (const auto& t : sub.train.tables) {
      for (const auto& u : sub.test.tables) EXPECT_NE(t.get(), u.get());
    }
    // Every example's schema belongs to the sub-domain (columns come
    // from its domain spec).
    for (const Example& ex : sub.test.examples) {
      EXPECT_GE(ex.schema().num_columns(), 2);
    }
  }
  EXPECT_EQ(names.size(), 5u);
}

TEST(OvernightTest, SubdomainsAreTopicallyDistinct) {
  GeneratorConfig config;
  config.num_tables = 4;
  config.seed = 2;
  OvernightCorpus corpus = GenerateOvernight(config);
  // basketball tables should contain a "player"-ish column; recipes a
  // "recipe"-ish column; they must not leak into each other.
  for (const auto& sub : corpus.subdomains) {
    for (const auto& table : sub.test.tables) {
      if (sub.name == "basketball") {
        EXPECT_EQ(table->schema().ColumnIndex("recipe"), -1);
      }
      if (sub.name == "recipes") {
        EXPECT_EQ(table->schema().ColumnIndex("player"), -1);
      }
    }
  }
}

TEST(ParaphraseBenchTest, SixCategoriesInPaperOrder) {
  GeneratorConfig config;
  config.num_tables = 3;
  config.questions_per_table = 4;
  config.seed = 3;
  attack::ParaphraseBenchCorpus corpus =
      attack::GenerateParaphraseBench(config);
  ASSERT_EQ(corpus.categories.size(), 6u);
  EXPECT_EQ(corpus.categories[0].style, QuestionStyle::kNaive);
  EXPECT_EQ(corpus.categories[1].style, QuestionStyle::kSyntactic);
  EXPECT_EQ(corpus.categories[2].style, QuestionStyle::kLexical);
  EXPECT_EQ(corpus.categories[3].style, QuestionStyle::kMorphological);
  EXPECT_EQ(corpus.categories[4].style, QuestionStyle::kSemantic);
  EXPECT_EQ(corpus.categories[5].style, QuestionStyle::kMissing);
  for (const auto& cat : corpus.categories) {
    EXPECT_EQ(cat.dataset.size(), 12u);
  }
}

TEST(ParaphraseBenchTest, AllCategoriesUsePatientsDomain) {
  GeneratorConfig config;
  config.num_tables = 2;
  config.seed = 4;
  attack::ParaphraseBenchCorpus corpus =
      attack::GenerateParaphraseBench(config);
  const std::set<std::string> patient_columns = {
      "patient", "age", "diagnosis", "doctor", "length_of_stay"};
  for (const auto& cat : corpus.categories) {
    for (const auto& table : cat.dataset.tables) {
      for (const auto& col : table->schema().columns()) {
        EXPECT_TRUE(patient_columns.count(col.name)) << col.name;
      }
    }
  }
}

TEST(ParaphraseBenchTest, StylesProduceDifferentSurfaceForms) {
  GeneratorConfig config;
  config.num_tables = 2;
  config.questions_per_table = 6;
  config.seed = 5;
  attack::ParaphraseBenchCorpus corpus =
      attack::GenerateParaphraseBench(config);
  // Syntactic category fronts conditions with "for the entry".
  bool fronted = false;
  for (const Example& ex : corpus.categories[1].dataset.examples) {
    fronted |= ex.question.rfind("for the entry", 0) == 0;
  }
  EXPECT_TRUE(fronted);
}

}  // namespace
}  // namespace data
}  // namespace nlidb
