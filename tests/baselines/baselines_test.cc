#include <gtest/gtest.h>

#include "baselines/pointer_seq2sql.h"
#include <cmath>
#include "baselines/sketch_slot_filler.h"
#include "baselines/transformer.h"
#include "data/generator.h"
#include "nn/optimizer.h"
#include "sql/query.h"

namespace nlidb {
namespace baselines {
namespace {

core::ModelConfig Config() {
  core::ModelConfig c = core::ModelConfig::Tiny();
  c.word_dim = 24;
  c.seq2seq_hidden = 24;
  c.max_decode_length = 16;
  return c;
}

TEST(PointerSeq2SqlTest, SourceAndTargetFormats) {
  sql::Schema schema({{"county", sql::DataType::kText},
                      {"population", sql::DataType::kReal}});
  auto source =
      PointerSeq2Sql::BuildSource({"how", "many", "people", "?"}, schema);
  // question | county , population
  ASSERT_GE(source.size(), 8u);
  EXPECT_EQ(source[4], "|");
  EXPECT_EQ(source[5], "county");

  sql::SelectQuery q;
  q.select_column = 1;
  q.conditions.push_back({0, sql::CondOp::kEq, sql::Value::Text("mayo")});
  auto target = PointerSeq2Sql::BuildTarget(q, schema);
  EXPECT_EQ(target, (std::vector<std::string>{"SELECT", "population", "WHERE",
                                              "county", "=", "mayo"}));
}

TEST(PointerSeq2SqlTest, TrainsAndTranslates) {
  data::GeneratorConfig gc;
  gc.num_tables = 5;
  gc.questions_per_table = 4;
  gc.seed = 31;
  data::WikiSqlGenerator gen(gc, data::TrainDomains());
  data::Dataset ds = gen.Generate();
  PointerSeq2Sql model(Config());
  const float loss = model.Train(ds);
  EXPECT_GT(loss, 0.0f);
  EXPECT_LT(loss, 3.0f);
  // Translation returns a parseable query or a clean error.
  const data::Example& ex = ds.examples.front();
  auto pred = model.Translate(ex.tokens, *ex.table);
  if (pred.ok()) {
    EXPECT_GE(pred->select_column, 0);
    EXPECT_LT(pred->select_column, ex.schema().num_columns());
  }
}

TEST(SketchSlotFillerTest, AggregateKeywordRules) {
  using S = SketchSlotFiller;
  EXPECT_EQ(S::PredictAggregate({"what", "is", "the", "highest", "score"}),
            sql::Aggregate::kMax);
  EXPECT_EQ(S::PredictAggregate({"the", "lowest", "rank"}),
            sql::Aggregate::kMin);
  EXPECT_EQ(S::PredictAggregate({"the", "average", "age"}),
            sql::Aggregate::kAvg);
  EXPECT_EQ(S::PredictAggregate({"the", "total", "points"}),
            sql::Aggregate::kSum);
  EXPECT_EQ(S::PredictAggregate({"how", "many", "entries", "are", "there"}),
            sql::Aggregate::kCount);
  EXPECT_EQ(S::PredictAggregate({"who", "won", "the", "race"}),
            sql::Aggregate::kNone);
}

TEST(SketchSlotFillerTest, FillsSketchOnSimpleQuestion) {
  auto provider = std::make_shared<text::EmbeddingProvider>(24);
  data::RegisterDomainClusters(*provider);
  data::GeneratorConfig gc;
  gc.num_tables = 8;
  gc.questions_per_table = 5;
  gc.seed = 32;
  data::WikiSqlGenerator gen(gc, data::TrainDomains());
  data::Dataset ds = gen.Generate();
  core::ModelConfig config = Config();
  SketchSlotFiller filler(config, provider);
  filler.Train(ds);
  int parsed_ok = 0;
  for (size_t i = 0; i < 10 && i < ds.examples.size(); ++i) {
    const data::Example& ex = ds.examples[i];
    auto pred = filler.Translate(ex.tokens, *ex.table);
    parsed_ok += pred.ok();
  }
  EXPECT_GT(parsed_ok, 5);
}

TEST(TransformerTest, LossAndGreedyDecodeWork) {
  TransformerTranslator t(Config(), /*num_layers=*/1, /*num_heads=*/2);
  t.AddVocabulary({"a", "b", "c", "x", "y"});
  Var loss = t.Loss({"a", "b", "c"}, {"x", "y"});
  EXPECT_TRUE(std::isfinite(loss->value(0)));
  EXPECT_GT(loss->value(0), 0.0f);
  auto out = t.Translate({"a", "b"});
  EXPECT_LE(static_cast<int>(out.size()), Config().max_decode_length);
}

TEST(TransformerTest, GradientsReachParameters) {
  TransformerTranslator t(Config(), 1, 2);
  t.AddVocabulary({"a", "b", "x"});
  Var loss = t.Loss({"a", "b"}, {"x"});
  Backward(loss);
  int with_grad = 0;
  for (const auto& p : t.Parameters()) {
    with_grad += !p->grad.empty() && p->grad.Norm2() > 0.0f;
  }
  EXPECT_GT(with_grad, static_cast<int>(t.Parameters().size()) / 2);
}

TEST(TransformerTest, LearnsTinyMapping) {
  TransformerTranslator t(Config(), 1, 2);
  const std::vector<std::string> src = {"ping"};
  const std::vector<std::string> tgt = {"pong"};
  t.AddVocabulary(src);
  t.AddVocabulary(tgt);
  nn::Adam opt(t.Parameters(), 3e-3f);
  for (int step = 0; step < 150; ++step) {
    Var loss = t.Loss(src, tgt);
    opt.ZeroGrad();
    Backward(loss);
    nn::ClipGradNorm(opt.params(), 5.0f);
    opt.Step();
  }
  EXPECT_EQ(t.Translate(src), tgt);
}

TEST(TransformerTest, CausalMaskBlocksFuture) {
  // Changing a LATER target token must not affect the loss contribution
  // of an earlier step. We verify indirectly: per-prefix decoder outputs
  // at step 0 are identical regardless of what follows.
  TransformerTranslator t(Config(), 1, 2);
  t.AddVocabulary({"a", "x", "y"});
  // Two losses with identical first target token but different second.
  Var l1 = t.Loss({"a"}, {"x", "x"});
  Var l2 = t.Loss({"a"}, {"x", "y"});
  // The losses differ (different second token)...
  EXPECT_NE(l1->value(0), l2->value(0));
  // ...but both are finite and the model decodes deterministically.
  EXPECT_EQ(t.Translate({"a"}), t.Translate({"a"}));
}

}  // namespace
}  // namespace baselines
}  // namespace nlidb
