// Mutation-engine contract tests (DESIGN.md "Adversarial robustness
// architecture"): the determinism guarantee (byte-identical mutant
// streams from the same seed, independent of thread count and call
// order), the answer-preservation tagging (preserving mutators never
// touch the gold query; the counterfactual one must), and the span
// consistency that makes a mutant a valid training example.

#include "attack/mutator.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/strings.h"
#include "common/thread_pool.h"
#include "data/generator.h"
#include "sql/executor.h"
#include "sql/query.h"
#include "text/tokenizer.h"

namespace nlidb {
namespace attack {
namespace {

data::Dataset SeedCorpus(uint64_t seed = 91, int tables = 4,
                         int questions = 4) {
  data::GeneratorConfig gc;
  gc.num_tables = tables;
  gc.questions_per_table = questions;
  gc.seed = seed;
  return data::GenerateWikiSqlSplits(gc).train;
}

/// Byte-exact serialization of a mutant stream: every field a consumer
/// could observe (tokens, question, spans, gold SQL, flags).
std::string Fingerprint(const std::vector<Mutant>& mutants) {
  std::string out;
  for (const Mutant& m : mutants) {
    const data::Example& ex = m.example;
    out += MutatorName(m.kind);
    out += '|';
    out += std::to_string(m.source_index);
    out += m.applied ? "|1|" : "|0|";
    out += ex.question;
    out += '|';
    out += sql::CanonicalSql(ex.query, ex.schema());
    out += '|';
    out += std::to_string(ex.select_mention.begin) + ":" +
           std::to_string(ex.select_mention.end);
    for (const data::MentionInfo& mm : ex.where_mentions) {
      out += '|';
      out += std::to_string(mm.column) + "," +
             std::to_string(mm.column_span.begin) + ":" +
             std::to_string(mm.column_span.end) + "," +
             std::to_string(mm.value_span.begin) + ":" +
             std::to_string(mm.value_span.end) + "," +
             (mm.column_explicit ? "e" : "i");
    }
    out += '\n';
  }
  return out;
}

void ExpectSpansConsistent(const Mutant& m) {
  const data::Example& ex = m.example;
  const int n = static_cast<int>(ex.tokens.size());
  auto check_span = [&](const text::Span& s, const char* what) {
    ASSERT_GE(s.begin, 0) << what;
    ASSERT_LE(s.end, n) << what;
    if (!s.empty()) {
      EXPECT_FALSE(text::SpanText(ex.tokens, s).empty()) << what;
    }
  };
  check_span(ex.select_mention, "select_mention");
  ASSERT_EQ(ex.where_mentions.size(), ex.query.conditions.size());
  for (const data::MentionInfo& mm : ex.where_mentions) {
    check_span(mm.column_span, "column_span");
    check_span(mm.value_span, "value_span");
    // An implicit mention must have surrendered its column span.
    if (!mm.column_explicit) {
      EXPECT_TRUE(mm.column_span.empty());
    }
  }
  // The question text is always the joined token stream.
  EXPECT_EQ(ex.question, Join(ex.tokens, " "));
}

TEST(MutatorTest, NamesAndPreservationTags) {
  EXPECT_EQ(static_cast<int>(AllMutators().size()), kNumMutators);
  for (MutatorKind kind : AllMutators()) {
    EXPECT_STRNE(MutatorName(kind), "?");
  }
  for (MutatorKind kind : AllMutators()) {
    EXPECT_EQ(IsAnswerPreserving(kind),
              kind != MutatorKind::kCounterfactualValue);
  }
}

TEST(MutatorTest, MutateCorpusIsDeterministicAcrossCallsAndThreadCounts) {
  const data::Dataset corpus = SeedCorpus();
  const MutationEngine engine(MutationConfig{17});

  const std::string first =
      Fingerprint(engine.MutateCorpus(corpus, AllMutators(), /*salt=*/3));

  // Same engine, repeated call: identical stream (no hidden state).
  EXPECT_EQ(first,
            Fingerprint(engine.MutateCorpus(corpus, AllMutators(), 3)));

  // A fresh engine with the same seed: identical stream.
  const MutationEngine twin(MutationConfig{17});
  EXPECT_EQ(first, Fingerprint(twin.MutateCorpus(corpus, AllMutators(), 3)));

  // The determinism contract is thread-count independence: re-run under
  // different global pool shapes and require byte equality.
  for (int threads : {1, 8}) {
    ThreadPool::SetGlobalParallelism(threads);
    EXPECT_EQ(first,
              Fingerprint(engine.MutateCorpus(corpus, AllMutators(), 3)))
        << "threads=" << threads;
  }
  ThreadPool::SetGlobalParallelism(ThreadPool::DefaultParallelism());
}

TEST(MutatorTest, SeedAndSaltChangeTheStream) {
  const data::Dataset corpus = SeedCorpus();
  const MutationEngine engine(MutationConfig{17});
  const std::string base =
      Fingerprint(engine.MutateCorpus(corpus, AllMutators(), 0));
  // Independent streams: another salt and another seed must both diverge
  // somewhere in a full all-mutator expansion (filler choice alone has
  // 5 x 2 outcomes per example).
  EXPECT_NE(base, Fingerprint(engine.MutateCorpus(corpus, AllMutators(), 1)));
  const MutationEngine other(MutationConfig{18});
  EXPECT_NE(base, Fingerprint(other.MutateCorpus(corpus, AllMutators(), 0)));
}

TEST(MutatorTest, AnswerPreservingMutatorsKeepTheGoldAnswer) {
  const data::Dataset corpus = SeedCorpus();
  const MutationEngine engine(MutationConfig{5});
  const std::vector<Mutant> mutants =
      engine.MutateCorpus(corpus, AllMutators(), /*salt=*/0);
  ASSERT_EQ(mutants.size(), corpus.size() * AllMutators().size());

  int counterfactuals_applied = 0;
  for (const Mutant& m : mutants) {
    const data::Example& original = corpus.examples[m.source_index];
    if (IsAnswerPreserving(m.kind)) {
      // The gold query is untouched, so its executed rows are too.
      EXPECT_EQ(m.example.query, original.query) << MutatorName(m.kind);
      StatusOr<std::vector<sql::Value>> before =
          sql::Execute(original.query, *original.table);
      StatusOr<std::vector<sql::Value>> after =
          sql::Execute(m.example.query, *m.example.table);
      ASSERT_TRUE(before.ok());
      ASSERT_TRUE(after.ok());
      EXPECT_TRUE(sql::ResultsEqual(before.value(), after.value()))
          << MutatorName(m.kind);
    } else if (m.applied) {
      // The counterfactual mutator must have rewritten a condition.
      EXPECT_FALSE(m.example.query == original.query);
      ++counterfactuals_applied;
      // The new value still executes against the same table.
      EXPECT_TRUE(sql::Execute(m.example.query, *m.example.table).ok());
    }
  }
  // The generated corpus always offers alternative cell values.
  EXPECT_GT(counterfactuals_applied, 0);
}

TEST(MutatorTest, MutantsKeepSpansConsistent) {
  const data::Dataset corpus = SeedCorpus();
  const MutationEngine engine(MutationConfig{23});
  int applied = 0;
  for (const Mutant& m : engine.MutateCorpus(corpus, AllMutators(), 0)) {
    ExpectSpansConsistent(m);
    if (m.applied) {
      ++applied;
      EXPECT_NE(m.example.question,
                corpus.examples[m.source_index].question)
          << MutatorName(m.kind);
    } else {
      EXPECT_EQ(m.example.question,
                corpus.examples[m.source_index].question);
    }
  }
  // The bulk of the expansion must actually perturb something.
  EXPECT_GT(applied,
            static_cast<int>(corpus.size() * AllMutators().size()) / 2);
}

TEST(MutatorTest, FillerNoiseAlwaysAppliesAndKeepsTrailingQuestionMark) {
  const data::Dataset corpus = SeedCorpus();
  const MutationEngine engine(MutationConfig{7});
  for (const Mutant& m :
       engine.MutateCorpus(corpus, {MutatorKind::kFillerNoise}, 0)) {
    EXPECT_TRUE(m.applied);
    const data::Example& original = corpus.examples[m.source_index];
    EXPECT_GT(m.example.tokens.size(), original.tokens.size());
    if (!original.tokens.empty() && original.tokens.back() == "?") {
      ASSERT_FALSE(m.example.tokens.empty());
      EXPECT_EQ(m.example.tokens.back(), "?");
    }
  }
}

TEST(MutatorTest, MutateDatasetPreservesShapeAndTables) {
  const data::Dataset corpus = SeedCorpus();
  const MutationEngine engine(MutationConfig{11});
  for (MutatorKind kind : AllMutators()) {
    const data::Dataset out = MutateDataset(engine, corpus, kind, /*salt=*/2);
    ASSERT_EQ(out.size(), corpus.size()) << MutatorName(kind);
    ASSERT_EQ(out.tables.size(), corpus.tables.size());
    for (size_t i = 0; i < out.examples.size(); ++i) {
      // Tables are shared, never copied: hardening augmentation must not
      // duplicate table storage.
      EXPECT_EQ(out.examples[i].table.get(), corpus.examples[i].table.get());
    }
  }
}

TEST(MutatorTest, ImplicitColumnMutantsDropExplicitWording) {
  const data::Dataset corpus = SeedCorpus();
  const MutationEngine engine(MutationConfig{13});
  int applied = 0;
  for (const Mutant& m :
       engine.MutateCorpus(corpus, {MutatorKind::kImplicitColumn}, 0)) {
    if (!m.applied) continue;
    ++applied;
    const data::Example& original = corpus.examples[m.source_index];
    EXPECT_LT(m.example.tokens.size(), original.tokens.size());
    bool has_implicit = false;
    for (const data::MentionInfo& mm : m.example.where_mentions) {
      if (!mm.column_explicit) has_implicit = true;
    }
    EXPECT_TRUE(has_implicit);
  }
  EXPECT_GT(applied, 0);
}

}  // namespace
}  // namespace attack
}  // namespace nlidb
