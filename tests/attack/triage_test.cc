// Triage-layer tests: TriageOutcome must land every (status, result)
// combination in exactly one FailStage, and the AttackMatrix accounting
// (answered/accuracy/worst-row/merge/export) must be exact — the
// hardening loop and the bench gate both consume these numbers.

#include "attack/triage.h"

#include <gtest/gtest.h>

#include <memory>

#include "common/metrics.h"
#include "common/status.h"
#include "sql/table.h"
#include "sql/value.h"

namespace nlidb {
namespace attack {
namespace {

/// A three-column table where `name` and `alias` hold identical values,
/// so a select-column confusion between them is execution-equivalent.
std::shared_ptr<const sql::Table> MakeTable() {
  sql::Schema schema({{"name", sql::DataType::kText},
                      {"alias", sql::DataType::kText},
                      {"age", sql::DataType::kReal}});
  auto table = std::make_shared<sql::Table>("people", schema);
  auto add = [&](const char* n, double age) {
    EXPECT_TRUE(table
                    ->AddRow({sql::Value::Text(n), sql::Value::Text(n),
                              sql::Value::Real(age)})
                    .ok());
  };
  add("ann", 30);
  add("bob", 30);
  add("cara", 41);
  return table;
}

class TriageTest : public ::testing::Test {
 protected:
  void SetUp() override {
    gold_.table = MakeTable();
    // SELECT name WHERE age = 30
    gold_.query.select_column = 0;
    gold_.query.conditions.push_back(
        {2, sql::CondOp::kEq, sql::Value::Real(30)});
  }

  core::QueryResult ResultWith(const sql::SelectQuery& query) const {
    core::QueryResult result;
    result.query = query;
    return result;
  }

  data::Example gold_;
};

TEST_F(TriageTest, StatusLevelFailuresBucketByCode) {
  const core::QueryResult empty;
  EXPECT_EQ(TriageOutcome(gold_,
                          Status(StatusCode::kDeadlineExceeded, "shed"),
                          empty),
            FailStage::kShedDeadline);
  EXPECT_EQ(
      TriageOutcome(gold_, Status(StatusCode::kUnavailable, "full"), empty),
      FailStage::kRejected);
  EXPECT_EQ(TriageOutcome(gold_, Status::Internal("boom"), empty),
            FailStage::kOtherError);
}

TEST_F(TriageTest, RecoveryFailureBuckets) {
  core::QueryResult result;
  result.recovery_status = Status::ParseError("unrecoverable s^a");
  EXPECT_EQ(TriageOutcome(gold_, Status::Ok(), result),
            FailStage::kRecoveryError);

  // No recovered query at all (even with an ok status) is the same bucket.
  core::QueryResult no_query;
  EXPECT_EQ(TriageOutcome(gold_, Status::Ok(), no_query),
            FailStage::kRecoveryError);
}

TEST_F(TriageTest, ExactAndCanonicalMatchesAreOk) {
  EXPECT_EQ(TriageOutcome(gold_, Status::Ok(), ResultWith(gold_.query)),
            FailStage::kOk);

  // Query match is canonical: a reordered-but-equal condition list and
  // the same select still counts as kOk.
  sql::SelectQuery reordered = gold_.query;
  reordered.conditions.push_back({0, sql::CondOp::kEq,
                                  sql::Value::Text("ann")});
  sql::SelectQuery gold2 = gold_.query;
  gold2.conditions.insert(gold2.conditions.begin(),
                          {0, sql::CondOp::kEq, sql::Value::Text("ann")});
  data::Example gold = gold_;
  gold.query = gold2;
  EXPECT_EQ(TriageOutcome(gold, Status::Ok(), ResultWith(reordered)),
            FailStage::kOk);
}

TEST_F(TriageTest, WrongConditionsAreMentionMiss) {
  sql::SelectQuery wrong_value = gold_.query;
  wrong_value.conditions[0].value = sql::Value::Real(41);
  EXPECT_EQ(TriageOutcome(gold_, Status::Ok(), ResultWith(wrong_value)),
            FailStage::kMentionMiss);

  sql::SelectQuery wrong_column = gold_.query;
  wrong_column.conditions[0].column = 0;
  wrong_column.conditions[0].value = sql::Value::Text("ann");
  EXPECT_EQ(TriageOutcome(gold_, Status::Ok(), ResultWith(wrong_column)),
            FailStage::kMentionMiss);

  sql::SelectQuery extra = gold_.query;
  extra.conditions.push_back({0, sql::CondOp::kEq, sql::Value::Text("ann")});
  EXPECT_EQ(TriageOutcome(gold_, Status::Ok(), ResultWith(extra)),
            FailStage::kMentionMiss);
}

TEST_F(TriageTest, ExecutionEquivalentSelectIsOk) {
  // Conditions right, select decoded onto the alias column that holds
  // identical values: not a query match, but an execution match.
  sql::SelectQuery alias_select = gold_.query;
  alias_select.select_column = 1;
  EXPECT_EQ(TriageOutcome(gold_, Status::Ok(), ResultWith(alias_select)),
            FailStage::kOk);
}

TEST_F(TriageTest, WrongSelectIsTranslateError) {
  // Conditions right, select decoded onto a value-differing column:
  // neither query match nor execution match, execution itself fine.
  sql::SelectQuery wrong_select = gold_.query;
  wrong_select.select_column = 2;
  EXPECT_EQ(TriageOutcome(gold_, Status::Ok(), ResultWith(wrong_select)),
            FailStage::kTranslateError);
}

TEST_F(TriageTest, ExecutionFailureBucketsAsExecutionMismatch) {
  // Conditions right but the predicted query cannot execute (SUM over a
  // text column): execution cannot vouch for the answer and the result
  // records the executor error.
  sql::SelectQuery broken = gold_.query;
  broken.agg = sql::Aggregate::kSum;
  core::QueryResult result = ResultWith(broken);
  result.execution_status = Status::OutOfRange("bad column");
  EXPECT_EQ(TriageOutcome(gold_, Status::Ok(), result),
            FailStage::kExecutionMismatch);
}

TEST(AttackMatrixTest, AccountingIsExact) {
  AttackMatrix m;
  m.Add(MutatorKind::kSynonymSwap, FailStage::kOk);
  m.Add(MutatorKind::kSynonymSwap, FailStage::kOk);
  m.Add(MutatorKind::kSynonymSwap, FailStage::kMentionMiss);
  m.Add(MutatorKind::kSynonymSwap, FailStage::kShedDeadline);
  m.Add(MutatorKind::kTokenDrop, FailStage::kOk);
  m.Add(MutatorKind::kTokenDrop, FailStage::kMentionMiss);
  m.Add(MutatorKind::kTokenDrop, FailStage::kMentionMiss);
  m.Add(MutatorKind::kTokenDrop, FailStage::kRejected);
  m.AddClean(FailStage::kOk);

  const int swap = static_cast<int>(MutatorKind::kSynonymSwap);
  const int drop = static_cast<int>(MutatorKind::kTokenDrop);
  EXPECT_EQ(m.RowTotal(swap), 4u);
  // Shed/rejected say nothing about the models: excluded from answered.
  EXPECT_EQ(m.RowAnswered(swap), 3u);
  EXPECT_DOUBLE_EQ(m.RowAccuracy(swap), 2.0 / 3.0);
  EXPECT_EQ(m.RowAnswered(drop), 3u);
  EXPECT_DOUBLE_EQ(m.Accuracy(MutatorKind::kTokenDrop), 1.0 / 3.0);
  EXPECT_EQ(m.RowTotal(AttackMatrix::kCleanRow), 1u);
  EXPECT_DOUBLE_EQ(m.RowAccuracy(AttackMatrix::kCleanRow), 1.0);

  // Empty rows have no accuracy.
  EXPECT_LT(m.RowAccuracy(static_cast<int>(MutatorKind::kTypoCasing)), 0.0);

  // token_drop (33%) is worse than synonym_swap (67%); the clean row is
  // never a candidate.
  EXPECT_EQ(m.WorstRow(), drop);
  // With a floor above both rows' samples nothing qualifies.
  EXPECT_EQ(m.WorstRow(100), -1);

  AttackMatrix other;
  other.Add(MutatorKind::kSynonymSwap, FailStage::kOk);
  other.AddClean(FailStage::kTranslateError);
  m.Merge(other);
  EXPECT_EQ(m.RowTotal(swap), 5u);
  EXPECT_EQ(m.RowTotal(AttackMatrix::kCleanRow), 2u);
  EXPECT_DOUBLE_EQ(m.RowAccuracy(AttackMatrix::kCleanRow), 0.5);
}

TEST(AttackMatrixTest, RowNamesAndRender) {
  EXPECT_STREQ(RowName(static_cast<int>(MutatorKind::kSynonymSwap)),
               "synonym_swap");
  EXPECT_STREQ(RowName(AttackMatrix::kCleanRow), "clean");

  AttackMatrix m;
  m.Add(MutatorKind::kFillerNoise, FailStage::kOk);
  const std::string table = m.Render();
  EXPECT_NE(table.find("filler_noise"), std::string::npos);
  EXPECT_NE(table.find("100.00%"), std::string::npos);
  // Untouched rows are elided.
  EXPECT_EQ(table.find("typo_casing"), std::string::npos);
}

TEST(AttackMatrixTest, ExportMetricsPublishesCountsAndAccuracy) {
  metrics::MetricsRegistry::Global().ResetAll();
  AttackMatrix m;
  m.Add(MutatorKind::kSynonymSwap, FailStage::kOk);
  m.Add(MutatorKind::kSynonymSwap, FailStage::kOk);
  m.Add(MutatorKind::kSynonymSwap, FailStage::kMentionMiss);
  m.Add(MutatorKind::kSynonymSwap, FailStage::kShedDeadline);
  m.ExportMetrics();

  auto& registry = metrics::MetricsRegistry::Global();
  EXPECT_EQ(registry.GetCounter("attack.synonym_swap.ok").Value(), 2);
  EXPECT_EQ(registry.GetCounter("attack.synonym_swap.mention_miss").Value(),
            1);
  EXPECT_EQ(registry.GetCounter("attack.synonym_swap.shed_deadline").Value(),
            1);
  // 2 ok / 3 answered.
  EXPECT_EQ(registry.GetGauge("attack.synonym_swap.accuracy_permille").Value(),
            666);
  metrics::MetricsRegistry::Global().ResetAll();
}

}  // namespace
}  // namespace attack
}  // namespace nlidb
