// Adversarial soak acceptance test: a scaled-down version of the
// bench_attack soak — mutated traffic, Poisson pacing, mixed deadline
// tiers, random-delay failpoint schedule — with the full correctness
// gate asserted: every submitted query triaged exactly once, the
// serving counter decomposition exactly balanced, and (under the
// attack_soak_lockdep ctest variant, which re-runs this binary with
// NLIDB_DEADLOCK=on) zero lock-order inversion reports.

#include "attack/soak.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>

#include "common/lockdep.h"
#include "common/thread_pool.h"
#include "core/pipeline.h"
#include "data/generator.h"

namespace nlidb {
namespace attack {
namespace {

#if defined(NLIDB_SANITIZER_BUILD)
constexpr uint64_t kQueries = 600;
#else
constexpr uint64_t kQueries = 2000;
#endif

class SoakTest : public ::testing::Test {
 protected:
  void SetUp() override {
    provider_ = std::make_shared<text::EmbeddingProvider>();
    data::RegisterDomainClusters(*provider_);
    data::GeneratorConfig gc;
    gc.num_tables = 2;
    gc.questions_per_table = 3;
    gc.seed = 41;
    splits_ = std::make_unique<data::Splits>(data::GenerateWikiSqlSplits(gc));
    core::ModelConfig config = core::ModelConfig::Tiny();
    config.word_dim = provider_->dim();
    pipeline_ = std::make_unique<core::NlidbPipeline>(config, provider_);
    pipeline_->Train(splits_->train);
  }

  std::shared_ptr<text::EmbeddingProvider> provider_;
  std::unique_ptr<data::Splits> splits_;
  std::unique_ptr<core::NlidbPipeline> pipeline_;
};

TEST_F(SoakTest, SoakBalancesCountersAndTriagesEveryQuery) {
  const MutationEngine engine(MutationConfig{3});
  const std::vector<Mutant> corpus =
      engine.MutateCorpus(splits_->train, AllMutators(), /*salt=*/0);
  ASSERT_FALSE(corpus.empty());

  SoakOptions options;
  options.queries = kQueries;
  options.workers = 4;
  options.queue_capacity = 64;
  options.seed = 19;
  options.random_delay_seed = 11;

  // The engine's worker pool is the concurrency under test; the shared
  // compute pool must not multiply it.
  ThreadPool::SetGlobalParallelism(1);
  const SoakReport report = RunSoak(*pipeline_, corpus, options);
  ThreadPool::SetGlobalParallelism(ThreadPool::DefaultParallelism());

  // Open-loop accounting: every planned arrival was submitted, and the
  // serving decomposition identities hold exactly.
  EXPECT_EQ(report.submitted, static_cast<int64_t>(kQueries));
  EXPECT_TRUE(report.counters_balanced) << report.ToString();
  EXPECT_EQ(report.submitted, report.admitted + report.rejected_queue_full +
                                  report.rejected_shutdown);
  EXPECT_EQ(report.admitted,
            report.completed + report.shed + report.cancelled);
  EXPECT_GT(report.completed, 0) << report.ToString();

  // Every submitted query was triaged into exactly one matrix cell; the
  // clean row stays empty (this run replays only mutants).
  uint64_t triaged = 0;
  for (int r = 0; r < kNumMutators; ++r) triaged += report.matrix.RowTotal(r);
  EXPECT_EQ(triaged, kQueries);
  EXPECT_EQ(report.matrix.RowTotal(AttackMatrix::kCleanRow), 0u);

  // The calibration pilot ran and the pacing plan was real.
  EXPECT_GT(report.service_ns, 0u);
  EXPECT_GT(report.offered_qps, 0.0);
  EXPECT_GT(report.wall_s, 0.0);

  // The random-delay schedule perturbed at least one failpoint site
  // over thousands of site hits (p=1/8 per hit).
  EXPECT_GT(report.failpoints_fired, 0) << report.ToString();

  // Under the lockdep ctest variant the run must be inversion-free;
  // without the detector the report says so explicitly.
  if (lockdep::Enabled()) {
    EXPECT_EQ(report.lockdep_reports, 0) << lockdep::RenderReports();
  } else {
    EXPECT_EQ(report.lockdep_reports, -1);
  }
}

TEST_F(SoakTest, EmptyInputsYieldEmptyReport) {
  const SoakReport no_corpus = RunSoak(*pipeline_, {}, SoakOptions());
  EXPECT_EQ(no_corpus.submitted, 0);
  EXPECT_FALSE(no_corpus.counters_balanced);

  const MutationEngine engine(MutationConfig{3});
  const std::vector<Mutant> corpus =
      engine.MutateCorpus(splits_->train, {MutatorKind::kFillerNoise}, 0);
  SoakOptions zero;
  zero.queries = 0;
  EXPECT_EQ(RunSoak(*pipeline_, corpus, zero).submitted, 0);
}

TEST(SoakOptionsTest, FromEnvOverridesKnobs) {
  ::setenv("NLIDB_ATTACK_QUERIES", "123456", 1);
  ::setenv("NLIDB_ATTACK_WORKERS", "3", 1);
  ::setenv("NLIDB_ATTACK_QUEUE_CAP", "99", 1);
  ::setenv("NLIDB_ATTACK_QPS", "250.5", 1);
  ::setenv("NLIDB_ATTACK_SEED", "77", 1);
  ::setenv("NLIDB_ATTACK_DELAY_SEED", "13", 1);
  const SoakOptions options = SoakOptions::FromEnv();
  EXPECT_EQ(options.queries, 123456u);
  EXPECT_EQ(options.workers, 3);
  EXPECT_EQ(options.queue_capacity, 99);
  EXPECT_DOUBLE_EQ(options.offered_qps, 250.5);
  EXPECT_EQ(options.seed, 77u);
  EXPECT_EQ(options.random_delay_seed, 13u);
  ::unsetenv("NLIDB_ATTACK_QUERIES");
  ::unsetenv("NLIDB_ATTACK_WORKERS");
  ::unsetenv("NLIDB_ATTACK_QUEUE_CAP");
  ::unsetenv("NLIDB_ATTACK_QPS");
  ::unsetenv("NLIDB_ATTACK_SEED");
  ::unsetenv("NLIDB_ATTACK_DELAY_SEED");

  // Defaults survive with the environment clear.
  const SoakOptions defaults = SoakOptions::FromEnv();
  EXPECT_EQ(defaults.queries, SoakOptions().queries);
  EXPECT_DOUBLE_EQ(defaults.offered_qps, 0.0);
}

}  // namespace
}  // namespace attack
}  // namespace nlidb
