#include "core/mention_resolver.h"

#include <gtest/gtest.h>

#include "text/tokenizer.h"

namespace nlidb {
namespace core {
namespace {

ValueDetector::Detection MakeDetection(
    text::Span span, std::vector<std::pair<int, float>> scores) {
  ValueDetector::Detection det;
  det.span = span;
  det.column_scores = std::move(scores);
  return det;
}

TEST(MentionResolverTest, PairsValueWithStructurallyClosestColumn) {
  // The paper's Sec. IV-E example: both names could be director or actor;
  // the dependency tree disambiguates.
  const auto tokens = text::Tokenize(
      "which film directed by jerzy antczak did piotr adamczyk star in ?");
  // indices: which0 film1 directed2 by3 jerzy4 antczak5 did6 piotr7
  //          adamczyk8 star9 in10 ?11
  std::vector<ColumnMentionCandidate> columns = {
      {0, {1, 2}, 1.0f},   // film_name <- "film"
      {1, {2, 4}, 1.0f},   // director <- "directed by"
      {2, {9, 11}, 1.0f},  // actor <- "star in"
  };
  std::vector<ValueDetector::Detection> values = {
      MakeDetection({4, 6}, {{1, 0.8f}, {2, 0.8f}}),  // jerzy antczak
      MakeDetection({7, 9}, {{1, 0.8f}, {2, 0.8f}}),  // piotr adamczyk
  };
  MentionResolver resolver;
  Annotation ann = resolver.Resolve(tokens, columns, values);
  ASSERT_EQ(ann.pairs.size(), 3u);
  // Find pairs by column.
  const int director_pair = ann.PairForColumn(1);
  const int actor_pair = ann.PairForColumn(2);
  ASSERT_GE(director_pair, 0);
  ASSERT_GE(actor_pair, 0);
  EXPECT_EQ(ann.pairs[director_pair].value_text, "jerzy antczak");
  EXPECT_EQ(ann.pairs[actor_pair].value_text, "piotr adamczyk");
}

TEST(MentionResolverTest, PairsOrderedByAppearance) {
  const auto tokens = text::Tokenize("what is the points won by sofia garcia ?");
  std::vector<ColumnMentionCandidate> columns = {
      {2, {6, 7}, 1.0f},  // a later mention
      {0, {3, 4}, 1.0f},  // an earlier mention
  };
  MentionResolver resolver;
  Annotation ann = resolver.Resolve(tokens, columns, {});
  ASSERT_EQ(ann.pairs.size(), 2u);
  EXPECT_EQ(ann.pairs[0].column, 0);
  EXPECT_EQ(ann.pairs[1].column, 2);
}

TEST(MentionResolverTest, ImplicitColumnPairCreatedFromValue) {
  const auto tokens = text::Tokenize("how many people live in mayo ?");
  std::vector<ColumnMentionCandidate> columns;  // nothing explicit
  std::vector<ValueDetector::Detection> values = {
      MakeDetection({5, 6}, {{0, 0.9f}}),  // mayo -> county column
  };
  MentionResolver resolver;
  Annotation ann = resolver.Resolve(tokens, columns, values);
  ASSERT_EQ(ann.pairs.size(), 1u);
  EXPECT_EQ(ann.pairs[0].column, 0);
  EXPECT_TRUE(ann.pairs[0].column_span.empty());
  EXPECT_EQ(ann.pairs[0].value_text, "mayo");
}

TEST(MentionResolverTest, OverlappingValueSpansPreferLonger) {
  const auto tokens = text::Tokenize("at the monaco grand prix today ?");
  std::vector<ValueDetector::Detection> values = {
      MakeDetection({2, 3}, {{0, 0.99f}}),  // "monaco"
      MakeDetection({2, 5}, {{0, 0.8f}}),   // "monaco grand prix"
  };
  MentionResolver resolver;
  Annotation ann = resolver.Resolve(tokens, {}, values);
  ASSERT_EQ(ann.pairs.size(), 1u);
  EXPECT_EQ(ann.pairs[0].value_text, "monaco grand prix");
}

TEST(MentionResolverTest, ValueCannotOverlapColumnMention) {
  const auto tokens = text::Tokenize("with the race monaco grand prix ?");
  std::vector<ColumnMentionCandidate> columns = {{0, {2, 3}, 1.0f}};
  std::vector<ValueDetector::Detection> values = {
      MakeDetection({2, 4}, {{0, 0.9f}}),  // overlaps the column mention
      MakeDetection({3, 6}, {{0, 0.85f}}),
  };
  MentionResolver resolver;
  Annotation ann = resolver.Resolve(tokens, columns, values);
  const int pair = ann.PairForColumn(0);
  ASSERT_GE(pair, 0);
  EXPECT_EQ(ann.pairs[pair].value_text, "monaco grand prix");
}

TEST(MentionResolverTest, TwoValuesNeverShareColumn) {
  const auto tokens = text::Tokenize("alpha beta gamma delta");
  std::vector<ValueDetector::Detection> values = {
      MakeDetection({0, 1}, {{0, 0.9f}, {1, 0.6f}}),
      MakeDetection({2, 3}, {{0, 0.8f}, {1, 0.7f}}),
  };
  MentionResolver resolver;
  Annotation ann = resolver.Resolve(tokens, {}, values);
  ASSERT_EQ(ann.pairs.size(), 2u);
  EXPECT_NE(ann.pairs[0].column, ann.pairs[1].column);
}

TEST(MentionResolverTest, EmptyInputsGiveEmptyAnnotation) {
  MentionResolver resolver;
  Annotation ann = resolver.Resolve({"hello"}, {}, {});
  EXPECT_TRUE(ann.pairs.empty());
}

}  // namespace
}  // namespace core
}  // namespace nlidb
