#include "core/seq2seq.h"

#include <gtest/gtest.h>
#include <cmath>
#include <cstdlib>
#include <cstring>

#include "common/metrics.h"
#include "nn/optimizer.h"
#include "tensor/ops.h"

namespace nlidb {
namespace core {
namespace {

ModelConfig Config() {
  ModelConfig c = ModelConfig::Tiny();
  c.word_dim = 24;
  c.seq2seq_hidden = 24;
  c.max_decode_length = 12;
  return c;
}

TEST(Seq2SeqTest, VocabularyGrowsAndFreezes) {
  Seq2SeqTranslator t(Config());
  t.AddVocabulary({"select", "where", "c1", "v1"});
  EXPECT_TRUE(t.vocab().Contains("c1"));
  t.FreezeVocabulary();
  t.AddVocabulary({"newword"});
  EXPECT_FALSE(t.vocab().Contains("newword"));
}

TEST(Seq2SeqTest, LossIsFinitePositive) {
  Seq2SeqTranslator t(Config());
  t.AddVocabulary({"a", "b", "c", "x", "y"});
  Var loss = t.Loss({"a", "b", "c"}, {"x", "y"});
  EXPECT_EQ(loss->value.size(), 1u);
  EXPECT_GT(loss->value(0), 0.0f);
  EXPECT_TRUE(std::isfinite(loss->value(0)));
}

TEST(Seq2SeqTest, GradientsReachAllParameters) {
  Seq2SeqTranslator t(Config());
  t.AddVocabulary({"a", "b", "x"});
  Var loss = t.Loss({"a", "b"}, {"x"});
  Backward(loss);
  int with_grad = 0;
  for (const auto& p : t.Parameters()) {
    with_grad += !p->grad.empty() && p->grad.Norm2() > 0.0f;
  }
  // Nearly all parameters participate (embedding rows are sparse).
  EXPECT_GT(with_grad, static_cast<int>(t.Parameters().size()) - 3);
}

TEST(Seq2SeqTest, LearnsCopyTask) {
  // Identity translation: the copy mechanism should let the model learn
  // to reproduce short sequences after a handful of epochs.
  ModelConfig config = Config();
  Seq2SeqTranslator t(config);
  Rng rng(3);
  const std::vector<std::string> alphabet = {"red",  "blue", "green",
                                             "gold", "pink", "gray"};
  t.AddVocabulary(alphabet);
  nn::Adam opt(t.Parameters(), 5e-3f);
  for (int step = 0; step < 700; ++step) {
    std::vector<std::string> seq;
    const int len = rng.NextInt(1, 4);
    for (int i = 0; i < len; ++i) seq.push_back(rng.Choice(alphabet));
    Var loss = t.Loss(seq, seq);
    opt.ZeroGrad();
    Backward(loss);
    nn::ClipGradNorm(opt.params(), 5.0f);
    opt.Step();
  }
  int exact = 0;
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<std::string> seq;
    const int len = rng.NextInt(1, 4);
    for (int i = 0; i < len; ++i) seq.push_back(rng.Choice(alphabet));
    exact += t.TranslateGreedy(seq) == seq;
  }
  EXPECT_GE(exact, 15);
}

TEST(Seq2SeqTest, TranslateTerminates) {
  Seq2SeqTranslator t(Config());
  t.AddVocabulary({"a", "b", "c"});
  auto out = t.Translate({"a", "b", "c"});
  EXPECT_LE(static_cast<int>(out.size()), Config().max_decode_length);
}

TEST(Seq2SeqTest, BeamNotWorseThanGreedyOnTrainedModel) {
  ModelConfig config = Config();
  config.beam_width = 3;
  Seq2SeqTranslator t(config);
  Rng rng(5);
  const std::vector<std::string> alphabet = {"aa", "bb", "cc"};
  t.AddVocabulary(alphabet);
  nn::Adam opt(t.Parameters(), 5e-3f);
  for (int step = 0; step < 300; ++step) {
    std::vector<std::string> seq = {rng.Choice(alphabet), rng.Choice(alphabet)};
    Var loss = t.Loss(seq, seq);
    opt.ZeroGrad();
    Backward(loss);
    opt.Step();
  }
  int greedy_ok = 0, beam_ok = 0;
  for (int trial = 0; trial < 15; ++trial) {
    std::vector<std::string> seq = {rng.Choice(alphabet), rng.Choice(alphabet)};
    greedy_ok += t.TranslateGreedy(seq) == seq;
    beam_ok += t.Translate(seq) == seq;
  }
  EXPECT_GE(beam_ok, greedy_ok - 1);
}

TEST(Seq2SeqTest, CopyDisabledStillDecodes) {
  ModelConfig config = Config();
  config.use_copy_mechanism = false;
  Seq2SeqTranslator t(config);
  t.AddVocabulary({"a", "b"});
  Var loss = t.Loss({"a"}, {"b"});
  EXPECT_TRUE(std::isfinite(loss->value(0)));
  auto out = t.Translate({"a", "b"});
  EXPECT_LE(static_cast<int>(out.size()), config.max_decode_length);
}

TEST(TopKTest, PinsTieSelectionToLowerIndex) {
  // Equal scores must always resolve to the lower index — the property
  // that makes nth_element selection reproducible across the reference
  // and fast decoders regardless of libstdc++'s partition order.
  const float scores[] = {0.5f, 0.9f, 0.5f, 0.9f, 0.1f, 0.9f};
  std::vector<int> top = TopKScoreIndices(scores, 6, 4);
  EXPECT_EQ(top, (std::vector<int>{1, 3, 5, 0}));

  // Same contract on an explicit (non-identity) candidate domain.
  std::vector<int> ids = {5, 3, 2, 0};
  TopKByScore(&ids, scores, 3);
  EXPECT_EQ(ids, (std::vector<int>{3, 5, 0}));
}

TEST(TopKTest, KLargerThanDomainSortsEverything) {
  const float scores[] = {0.2f, 0.8f, 0.2f};
  std::vector<int> top = TopKScoreIndices(scores, 3, 10);
  EXPECT_EQ(top, (std::vector<int>{1, 0, 2}));
}

TEST(Seq2SeqTest, DecodeModeFromEnvParsesEveryName) {
  const char* saved = std::getenv("NLIDB_DECODE");
  const std::string restore = saved ? saved : "";
  setenv("NLIDB_DECODE", "reference", 1);
  EXPECT_EQ(Seq2SeqTranslator::DecodeModeFromEnv(), DecodeMode::kReference);
  setenv("NLIDB_DECODE", "reference_masked", 1);
  EXPECT_EQ(Seq2SeqTranslator::DecodeModeFromEnv(),
            DecodeMode::kReferenceMasked);
  setenv("NLIDB_DECODE", "fast_unmasked", 1);
  EXPECT_EQ(Seq2SeqTranslator::DecodeModeFromEnv(), DecodeMode::kFastUnmasked);
  setenv("NLIDB_DECODE", "fast", 1);
  EXPECT_EQ(Seq2SeqTranslator::DecodeModeFromEnv(), DecodeMode::kFast);
  unsetenv("NLIDB_DECODE");
  EXPECT_EQ(Seq2SeqTranslator::DecodeModeFromEnv(), DecodeMode::kFast);
  if (saved) setenv("NLIDB_DECODE", restore.c_str(), 1);
}

/// Vocabulary that makes the grammar mask applicable: structural SQL
/// tokens plus annotation symbols and literals.
std::vector<std::string> SqlishVocab() {
  return {"SELECT", "WHERE", "AND", "MAX", "COUNT", "=",    ">",
          "<",      "c1",    "c2",  "v1",  "g1",    "what", "is",
          "the",    "revenue", "1996"};
}

TEST(Seq2SeqTest, FastUnmaskedBitwiseEqualsReference) {
  // The fast path's core contract: for any model state (here: untrained,
  // so scores are near-uniform and ties matter), kFastUnmasked decodes
  // the same tokens with the same score bits as kReference.
  ModelConfig config = Config();
  Seq2SeqTranslator t(config);
  t.AddVocabulary(SqlishVocab());
  const std::vector<std::string> source = {"what", "is",  "the", "c1",
                                           "revenue", "v1", "1996"};
  for (int width : {1, 2, 4}) {
    t.set_decode_mode(DecodeMode::kReference);
    auto ref = t.DecodeWithBeamWidth(source, width);
    t.set_decode_mode(DecodeMode::kFastUnmasked);
    auto fast = t.DecodeWithBeamWidth(source, width);
    ASSERT_TRUE(ref.ok() && fast.ok()) << "width " << width;
    EXPECT_EQ(ref.value().tokens, fast.value().tokens) << "width " << width;
    EXPECT_EQ(0, std::memcmp(&ref.value().score, &fast.value().score,
                             sizeof(float)))
        << "width " << width << ": score bits diverge";
    EXPECT_FALSE(ref.value().used_fast_path);
    EXPECT_TRUE(fast.value().used_fast_path);
  }
}

TEST(Seq2SeqTest, FastMaskedBitwiseEqualsReferenceMasked) {
  ModelConfig config = Config();
  Seq2SeqTranslator t(config);
  t.AddVocabulary(SqlishVocab());
  const std::vector<std::string> source = {"SELECT", "c1", "WHERE",
                                           "c2",     "=",  "v1"};
  for (int width : {1, 3}) {
    t.set_decode_mode(DecodeMode::kReferenceMasked);
    auto ref = t.DecodeWithBeamWidth(source, width);
    t.set_decode_mode(DecodeMode::kFast);
    auto fast = t.DecodeWithBeamWidth(source, width);
    ASSERT_TRUE(ref.ok() && fast.ok()) << "width " << width;
    EXPECT_EQ(ref.value().tokens, fast.value().tokens) << "width " << width;
    EXPECT_EQ(0, std::memcmp(&ref.value().score, &fast.value().score,
                             sizeof(float)))
        << "width " << width << ": score bits diverge";
  }
}

TEST(Seq2SeqTest, MaskedDecodeEmitsGrammaticalPrefix) {
  // Even an untrained model must emit a SELECT-led, grammatical s^a when
  // the mask is on: that is the whole point of constrained decoding.
  Seq2SeqTranslator t(Config());
  t.AddVocabulary(SqlishVocab());
  t.set_decode_mode(DecodeMode::kFast);
  auto out = t.DecodeWithBeamWidth({"what", "is", "c1", "revenue"}, 2);
  ASSERT_TRUE(out.ok());
  ASSERT_FALSE(out.value().tokens.empty());
  EXPECT_EQ(out.value().tokens[0], "SELECT");
}

TEST(Seq2SeqTest, FastPathCountersIncrement) {
  Seq2SeqTranslator t(Config());
  t.AddVocabulary(SqlishVocab());
  metrics::Counter& fast_queries =
      metrics::MetricsRegistry::Global().GetCounter(
          "seq2seq.fast_path_queries");
  metrics::Counter& masked_tokens =
      metrics::MetricsRegistry::Global().GetCounter(
          "seq2seq.grammar_masked_tokens");

  t.set_decode_mode(DecodeMode::kReference);
  const int64_t fast_before = fast_queries.Value();
  ASSERT_TRUE(t.DecodeWithBeamWidth({"c1", "revenue"}, 1).ok());
  EXPECT_EQ(fast_queries.Value(), fast_before)
      << "reference decode must not count as a fast-path query";

  t.set_decode_mode(DecodeMode::kFast);
  const int64_t masked_before = masked_tokens.Value();
  ASSERT_TRUE(t.DecodeWithBeamWidth({"c1", "revenue"}, 1).ok());
  EXPECT_EQ(fast_queries.Value(), fast_before + 1);
  EXPECT_GT(masked_tokens.Value(), masked_before)
      << "grammar mask vetoed no tokens on a mostly-illegal vocabulary";
}

TEST(Seq2SeqTest, SymbolEmbeddingsShareTypeHalf) {
  // c1 and c2 share the type half of their structured embedding; c1 and
  // v1 share the index half (Sec. VII-A2 representation).
  ModelConfig config = Config();
  Seq2SeqTranslator t(config);
  t.AddVocabulary({"c1", "c2", "v1"});
  const auto& params = t.Parameters();
  const Var& table = params[0];  // embedding table is first
  const int c1 = t.vocab().GetId("c1");
  const int c2 = t.vocab().GetId("c2");
  const int v1 = t.vocab().GetId("v1");
  const int half = config.word_dim / 2;
  for (int j = 0; j < half; ++j) {
    EXPECT_FLOAT_EQ(table->value(c1, j), table->value(c2, j));
  }
  for (int j = half; j < config.word_dim; ++j) {
    EXPECT_FLOAT_EQ(table->value(c1, j), table->value(v1, j));
  }
}

}  // namespace
}  // namespace core
}  // namespace nlidb
