#include "core/seq2seq.h"

#include <gtest/gtest.h>
#include <cmath>

#include "nn/optimizer.h"
#include "tensor/ops.h"

namespace nlidb {
namespace core {
namespace {

ModelConfig Config() {
  ModelConfig c = ModelConfig::Tiny();
  c.word_dim = 24;
  c.seq2seq_hidden = 24;
  c.max_decode_length = 12;
  return c;
}

TEST(Seq2SeqTest, VocabularyGrowsAndFreezes) {
  Seq2SeqTranslator t(Config());
  t.AddVocabulary({"select", "where", "c1", "v1"});
  EXPECT_TRUE(t.vocab().Contains("c1"));
  t.FreezeVocabulary();
  t.AddVocabulary({"newword"});
  EXPECT_FALSE(t.vocab().Contains("newword"));
}

TEST(Seq2SeqTest, LossIsFinitePositive) {
  Seq2SeqTranslator t(Config());
  t.AddVocabulary({"a", "b", "c", "x", "y"});
  Var loss = t.Loss({"a", "b", "c"}, {"x", "y"});
  EXPECT_EQ(loss->value.size(), 1u);
  EXPECT_GT(loss->value(0), 0.0f);
  EXPECT_TRUE(std::isfinite(loss->value(0)));
}

TEST(Seq2SeqTest, GradientsReachAllParameters) {
  Seq2SeqTranslator t(Config());
  t.AddVocabulary({"a", "b", "x"});
  Var loss = t.Loss({"a", "b"}, {"x"});
  Backward(loss);
  int with_grad = 0;
  for (const auto& p : t.Parameters()) {
    with_grad += !p->grad.empty() && p->grad.Norm2() > 0.0f;
  }
  // Nearly all parameters participate (embedding rows are sparse).
  EXPECT_GT(with_grad, static_cast<int>(t.Parameters().size()) - 3);
}

TEST(Seq2SeqTest, LearnsCopyTask) {
  // Identity translation: the copy mechanism should let the model learn
  // to reproduce short sequences after a handful of epochs.
  ModelConfig config = Config();
  Seq2SeqTranslator t(config);
  Rng rng(3);
  const std::vector<std::string> alphabet = {"red",  "blue", "green",
                                             "gold", "pink", "gray"};
  t.AddVocabulary(alphabet);
  nn::Adam opt(t.Parameters(), 5e-3f);
  for (int step = 0; step < 700; ++step) {
    std::vector<std::string> seq;
    const int len = rng.NextInt(1, 4);
    for (int i = 0; i < len; ++i) seq.push_back(rng.Choice(alphabet));
    Var loss = t.Loss(seq, seq);
    opt.ZeroGrad();
    Backward(loss);
    nn::ClipGradNorm(opt.params(), 5.0f);
    opt.Step();
  }
  int exact = 0;
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<std::string> seq;
    const int len = rng.NextInt(1, 4);
    for (int i = 0; i < len; ++i) seq.push_back(rng.Choice(alphabet));
    exact += t.TranslateGreedy(seq) == seq;
  }
  EXPECT_GE(exact, 15);
}

TEST(Seq2SeqTest, TranslateTerminates) {
  Seq2SeqTranslator t(Config());
  t.AddVocabulary({"a", "b", "c"});
  auto out = t.Translate({"a", "b", "c"});
  EXPECT_LE(static_cast<int>(out.size()), Config().max_decode_length);
}

TEST(Seq2SeqTest, BeamNotWorseThanGreedyOnTrainedModel) {
  ModelConfig config = Config();
  config.beam_width = 3;
  Seq2SeqTranslator t(config);
  Rng rng(5);
  const std::vector<std::string> alphabet = {"aa", "bb", "cc"};
  t.AddVocabulary(alphabet);
  nn::Adam opt(t.Parameters(), 5e-3f);
  for (int step = 0; step < 300; ++step) {
    std::vector<std::string> seq = {rng.Choice(alphabet), rng.Choice(alphabet)};
    Var loss = t.Loss(seq, seq);
    opt.ZeroGrad();
    Backward(loss);
    opt.Step();
  }
  int greedy_ok = 0, beam_ok = 0;
  for (int trial = 0; trial < 15; ++trial) {
    std::vector<std::string> seq = {rng.Choice(alphabet), rng.Choice(alphabet)};
    greedy_ok += t.TranslateGreedy(seq) == seq;
    beam_ok += t.Translate(seq) == seq;
  }
  EXPECT_GE(beam_ok, greedy_ok - 1);
}

TEST(Seq2SeqTest, CopyDisabledStillDecodes) {
  ModelConfig config = Config();
  config.use_copy_mechanism = false;
  Seq2SeqTranslator t(config);
  t.AddVocabulary({"a", "b"});
  Var loss = t.Loss({"a"}, {"b"});
  EXPECT_TRUE(std::isfinite(loss->value(0)));
  auto out = t.Translate({"a", "b"});
  EXPECT_LE(static_cast<int>(out.size()), config.max_decode_length);
}

TEST(Seq2SeqTest, SymbolEmbeddingsShareTypeHalf) {
  // c1 and c2 share the type half of their structured embedding; c1 and
  // v1 share the index half (Sec. VII-A2 representation).
  ModelConfig config = Config();
  Seq2SeqTranslator t(config);
  t.AddVocabulary({"c1", "c2", "v1"});
  const auto& params = t.Parameters();
  const Var& table = params[0];  // embedding table is first
  const int c1 = t.vocab().GetId("c1");
  const int c2 = t.vocab().GetId("c2");
  const int v1 = t.vocab().GetId("v1");
  const int half = config.word_dim / 2;
  for (int j = 0; j < half; ++j) {
    EXPECT_FLOAT_EQ(table->value(c1, j), table->value(c2, j));
  }
  for (int j = half; j < config.word_dim; ++j) {
    EXPECT_FLOAT_EQ(table->value(c1, j), table->value(v1, j));
  }
}

}  // namespace
}  // namespace core
}  // namespace nlidb
