#include "core/decode_grammar.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace nlidb {
namespace core {
namespace {

using TC = DecodeGrammar::TokenClass;

/// A vocabulary covering every token class: structural SQL, annotation
/// symbols, and plain literals.
text::Vocab MakeVocab() {
  text::Vocab v;
  for (const char* t :
       {"SELECT", "WHERE", "AND", "MAX", "COUNT", "=", ">", "<", "c1", "c2",
        "v1", "g1", "revenue", "1996", "alice"}) {
    v.AddToken(t);
  }
  return v;
}

std::vector<uint8_t> AllInSource(const text::Vocab& v) {
  return std::vector<uint8_t>(v.size(), 1);
}

TEST(DecodeGrammarTest, ClassifiesEveryTokenClass) {
  text::Vocab v = MakeVocab();
  DecodeGrammar g(v);
  EXPECT_TRUE(g.usable());
  EXPECT_EQ(g.Classify(text::Vocab::kPad), TC::kSpecial);
  EXPECT_EQ(g.Classify(text::Vocab::kBos), TC::kSpecial);
  EXPECT_EQ(g.Classify(text::Vocab::kUnk), TC::kUnk);
  EXPECT_EQ(g.Classify(text::Vocab::kEos), TC::kEos);
  EXPECT_EQ(g.Classify(v.GetId("SELECT")), TC::kSelect);
  EXPECT_EQ(g.Classify(v.GetId("WHERE")), TC::kWhere);
  EXPECT_EQ(g.Classify(v.GetId("AND")), TC::kAnd);
  EXPECT_EQ(g.Classify(v.GetId("MAX")), TC::kAgg);
  EXPECT_EQ(g.Classify(v.GetId("COUNT")), TC::kAgg);
  EXPECT_EQ(g.Classify(v.GetId("=")), TC::kOp);
  EXPECT_EQ(g.Classify(v.GetId("c1")), TC::kColSym);
  EXPECT_EQ(g.Classify(v.GetId("v1")), TC::kValSym);
  EXPECT_EQ(g.Classify(v.GetId("g1")), TC::kHeaderSym);
  EXPECT_EQ(g.Classify(v.GetId("revenue")), TC::kLiteral);
  EXPECT_EQ(g.Classify(v.GetId("1996")), TC::kLiteral);
}

TEST(DecodeGrammarTest, UnusableWithoutSelect) {
  text::Vocab v;
  v.AddToken("revenue");
  v.AddToken("WHERE");
  DecodeGrammar g(v);
  EXPECT_FALSE(g.usable());
}

TEST(DecodeGrammarTest, AcceptsCanonicalSentence) {
  // SELECT MAX c1 WHERE c2 = v1 AND g1 > 1996 <eos> walks the automaton
  // to kDone without ever visiting kFree.
  text::Vocab v = MakeVocab();
  DecodeGrammar g(v);
  int s = DecodeGrammar::Start();
  for (const char* tok :
       {"SELECT", "MAX", "c1", "WHERE", "c2", "=", "v1", "AND", "g1", ">",
        "1996"}) {
    const int id = v.GetId(tok);
    EXPECT_TRUE(g.IsLegal(s, id, AllInSource(v))) << "illegal: " << tok;
    s = g.Advance(s, id);
    EXPECT_NE(s, DecodeGrammar::kFree) << "lost track at: " << tok;
  }
  EXPECT_TRUE(g.IsLegal(s, text::Vocab::kEos, AllInSource(v)));
  EXPECT_EQ(g.Advance(s, text::Vocab::kEos), DecodeGrammar::kDone);
}

TEST(DecodeGrammarTest, NoAggregateNoWhereAlsoAccepted) {
  // Minimal sentence: SELECT col <eos>.
  text::Vocab v = MakeVocab();
  DecodeGrammar g(v);
  int s = DecodeGrammar::Start();
  s = g.Advance(s, v.GetId("SELECT"));
  s = g.Advance(s, v.GetId("c1"));
  EXPECT_TRUE(g.IsLegal(s, text::Vocab::kEos, AllInSource(v)));
  EXPECT_FALSE(g.IsLegal(s, v.GetId("="), AllInSource(v)));
  EXPECT_EQ(g.Advance(s, text::Vocab::kEos), DecodeGrammar::kDone);
}

TEST(DecodeGrammarTest, LiteralValueRunsSpanMultipleTokens) {
  // WHERE c1 = alice 1996 AND ...: literal values may run until AND/eos.
  text::Vocab v = MakeVocab();
  DecodeGrammar g(v);
  int s = DecodeGrammar::Start();
  for (const char* tok : {"SELECT", "c1", "WHERE", "c2", "="}) {
    s = g.Advance(s, v.GetId(tok));
  }
  EXPECT_EQ(s, DecodeGrammar::kCondVal);
  s = g.Advance(s, v.GetId("alice"));
  EXPECT_EQ(s, DecodeGrammar::kValLit);
  EXPECT_TRUE(g.IsLegal(s, v.GetId("1996"), AllInSource(v)));
  s = g.Advance(s, v.GetId("1996"));
  EXPECT_EQ(s, DecodeGrammar::kValLit);
  EXPECT_TRUE(g.IsLegal(s, v.GetId("AND"), AllInSource(v)));
  EXPECT_TRUE(g.IsLegal(s, text::Vocab::kEos, AllInSource(v)));
  EXPECT_FALSE(g.IsLegal(s, v.GetId("WHERE"), AllInSource(v)));
}

TEST(DecodeGrammarTest, SourceGatingBlocksUncopiedSymbols) {
  // Symbols and literals are copied from q^a: with an empty source
  // bitmap they are illegal everywhere, while structural tokens and
  // <unk> stay legal by state.
  text::Vocab v = MakeVocab();
  DecodeGrammar g(v);
  std::vector<uint8_t> none(v.size(), 0);
  int s = g.Advance(DecodeGrammar::Start(), v.GetId("SELECT"));
  EXPECT_FALSE(g.IsLegal(s, v.GetId("c1"), none));
  EXPECT_FALSE(g.IsLegal(s, v.GetId("revenue"), none));
  EXPECT_TRUE(g.IsLegal(s, v.GetId("MAX"), none));  // structural
  EXPECT_TRUE(g.IsLegal(s, text::Vocab::kUnk, none));
  std::vector<uint8_t> c1_only(v.size(), 0);
  c1_only[v.GetId("c1")] = 1;
  EXPECT_TRUE(g.IsLegal(s, v.GetId("c1"), c1_only));
}

TEST(DecodeGrammarTest, SpecialTokensNeverLegal) {
  text::Vocab v = MakeVocab();
  DecodeGrammar g(v);
  for (int s = 0; s < DecodeGrammar::kNumStates; ++s) {
    EXPECT_FALSE(g.IsLegal(s, text::Vocab::kPad, AllInSource(v)));
    EXPECT_FALSE(g.IsLegal(s, text::Vocab::kBos, AllInSource(v)));
  }
}

TEST(DecodeGrammarTest, UndefinedTransitionFallsToFreeAndStaysLegal) {
  // A history the grammar does not recognize must never dead-end the
  // beam: it falls to kFree where every non-special token is legal.
  text::Vocab v = MakeVocab();
  DecodeGrammar g(v);
  int s = g.Advance(DecodeGrammar::Start(), v.GetId("WHERE"));  // not SELECT
  EXPECT_EQ(s, DecodeGrammar::kFree);
  EXPECT_TRUE(g.IsLegal(s, v.GetId("revenue"), AllInSource(v)));
  EXPECT_TRUE(g.IsLegal(s, text::Vocab::kEos, AllInSource(v)));
  EXPECT_FALSE(g.IsLegal(s, text::Vocab::kPad, AllInSource(v)));
  EXPECT_EQ(g.Advance(s, v.GetId("AND")), DecodeGrammar::kFree);
}

TEST(DecodeGrammarTest, DoneOnlyAcceptsEos) {
  text::Vocab v = MakeVocab();
  DecodeGrammar g(v);
  int s = DecodeGrammar::Start();
  for (const char* tok : {"SELECT", "c1"}) s = g.Advance(s, v.GetId(tok));
  s = g.Advance(s, text::Vocab::kEos);
  EXPECT_EQ(s, DecodeGrammar::kDone);
  EXPECT_TRUE(g.IsLegal(s, text::Vocab::kEos, AllInSource(v)));
  EXPECT_FALSE(g.IsLegal(s, v.GetId("SELECT"), AllInSource(v)));
  EXPECT_EQ(g.Advance(s, text::Vocab::kEos), DecodeGrammar::kDone);
}

}  // namespace
}  // namespace core
}  // namespace nlidb
