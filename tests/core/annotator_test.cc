#include "core/annotator.h"

#include <gtest/gtest.h>

#include "data/generator.h"
#include "text/tokenizer.h"

namespace nlidb {
namespace core {
namespace {

class AnnotatorTest : public ::testing::Test {
 protected:
  AnnotatorTest() : provider_(48) {
    data::RegisterDomainClusters(provider_);
    config_ = ModelConfig::Tiny();
    config_.word_dim = 48;
  }

  /// Annotator with context-free matching only (no learned models).
  Annotator MatchOnlyAnnotator() {
    return Annotator(config_, provider_, nullptr, nullptr);
  }

  sql::Table FilmTable() {
    sql::Schema schema({{"film_name", sql::DataType::kText},
                        {"director", sql::DataType::kText},
                        {"year", sql::DataType::kReal}});
    sql::Table t("films", schema);
    EXPECT_TRUE(t.AddRow({sql::Value::Text("aurora crown"),
                          sql::Value::Text("jerzy antczak"),
                          sql::Value::Real(1971)})
                    .ok());
    EXPECT_TRUE(t.AddRow({sql::Value::Text("winter echo"),
                          sql::Value::Text("sofia garcia"),
                          sql::Value::Real(1999)})
                    .ok());
    return t;
  }

  text::EmbeddingProvider provider_;
  ModelConfig config_;
};

TEST_F(AnnotatorTest, ContextFreeExactMatch) {
  Annotator ann = MatchOnlyAnnotator();
  const auto tokens = text::Tokenize("what is the director of aurora crown");
  auto span = ann.ContextFreeMatch(tokens, {"director"});
  ASSERT_TRUE(span.has_value());
  EXPECT_EQ(*span, (text::Span{3, 4}));
}

TEST_F(AnnotatorTest, ContextFreeFuzzyMatch) {
  // "directors" (morphological variant) must still match "director".
  Annotator ann = MatchOnlyAnnotator();
  const auto tokens = text::Tokenize("who are the directors here");
  auto span = ann.ContextFreeMatch(tokens, {"director"});
  ASSERT_TRUE(span.has_value());
  EXPECT_TRUE(span->Contains(3));
}

TEST_F(AnnotatorTest, ContextFreeSemanticMatch) {
  // "filmmaker" shares the director cluster: semantic (cosine) match.
  Annotator ann = MatchOnlyAnnotator();
  const auto tokens = text::Tokenize("who is the filmmaker of winter echo");
  auto span = ann.ContextFreeMatch(tokens, {"director"});
  ASSERT_TRUE(span.has_value());
  EXPECT_TRUE(span->Contains(3));
}

TEST_F(AnnotatorTest, ContextFreeRejectsUnrelated) {
  Annotator ann = MatchOnlyAnnotator();
  const auto tokens = text::Tokenize("how many people live in mayo");
  EXPECT_FALSE(ann.ContextFreeMatch(tokens, {"director"}).has_value());
}

TEST_F(AnnotatorTest, ContextFreeNeverMatchesPureStopWords) {
  Annotator ann = MatchOnlyAnnotator();
  const auto tokens = text::Tokenize("how many are there ?");
  // "total" is cluster-related to "how many" but a pure stop-word window
  // must never be a column mention.
  EXPECT_FALSE(ann.ContextFreeMatch(tokens, {"total"}).has_value());
}

TEST_F(AnnotatorTest, ExactCellValueMatches) {
  sql::Table t = FilmTable();
  const auto tokens =
      text::Tokenize("which film directed by jerzy antczak in 1971 ?");
  auto detections = ExactCellValueMatches(tokens, t);
  // "jerzy antczak" (director) and "1971" (year) occur verbatim.
  bool found_name = false, found_year = false;
  for (const auto& d : detections) {
    const std::string span_text = text::SpanText(tokens, d.span);
    if (span_text == "jerzy antczak") {
      found_name = true;
      EXPECT_EQ(d.column_scores[0].first, 1);
    }
    if (span_text == "1971") {
      found_year = true;
      EXPECT_EQ(d.column_scores[0].first, 2);
    }
  }
  EXPECT_TRUE(found_name);
  EXPECT_TRUE(found_year);
}

TEST_F(AnnotatorTest, ExactCellMatchSubsumesSubSpans) {
  sql::Schema schema({{"date", sql::DataType::kText},
                      {"laps", sql::DataType::kReal}});
  sql::Table t("races", schema);
  ASSERT_TRUE(t.AddRow({sql::Value::Text("july 17"), sql::Value::Real(17)}).ok());
  const auto tokens = text::Tokenize("races on july 17 please");
  auto detections = ExactCellValueMatches(tokens, t);
  // "17" alone is inside "july 17": only the maximal span remains.
  for (const auto& d : detections) {
    EXPECT_EQ(text::SpanText(tokens, d.span), "july 17");
  }
  ASSERT_EQ(detections.size(), 1u);
}

TEST_F(AnnotatorTest, AnnotateWithoutModelsUsesExactEvidence) {
  sql::Table t = FilmTable();
  Annotator ann = MatchOnlyAnnotator();
  auto stats = sql::ComputeTableStatistics(t, provider_);
  const auto tokens =
      text::Tokenize("what is the film name directed by jerzy antczak ?");
  StatusOr<Annotation> a = ann.Annotate(tokens, t, stats);
  ASSERT_TRUE(a.ok()) << a.status();
  // film_name matched context-free; "jerzy antczak" matched exactly.
  const int film_pair = a->PairForColumn(0);
  const int director_pair = a->PairForColumn(1);
  ASSERT_GE(film_pair, 0);
  ASSERT_GE(director_pair, 0);
  EXPECT_EQ(a->pairs[director_pair].value_text, "jerzy antczak");
}

TEST_F(AnnotatorTest, MetadataPhrasesProvideExtraCandidates) {
  // Sec. II: P_c metadata ("how many people live in" for population).
  sql::Schema schema({{"population", sql::DataType::kReal},
                      {"county", sql::DataType::kText}});
  sql::Table t("gaeltacht", schema);
  NlMetadata metadata;
  metadata.column_phrases = {{"number of residents"}, {}};
  Annotator ann = MatchOnlyAnnotator();
  const auto tokens = text::Tokenize("what is the number of residents here");
  auto candidates = ann.DetectColumnMentions(tokens, t, &metadata).value();
  bool population_found = false;
  for (const auto& c : candidates) {
    population_found |= c.column == 0 && !c.span.empty();
  }
  EXPECT_TRUE(population_found);
}

}  // namespace
}  // namespace core
}  // namespace nlidb
