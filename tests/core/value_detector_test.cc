#include "core/value_detector.h"

#include <gtest/gtest.h>

#include "core/trainer.h"
#include "data/generator.h"

namespace nlidb {
namespace core {
namespace {

ModelConfig Config(int dim) {
  ModelConfig c = ModelConfig::Tiny();
  c.word_dim = dim;
  return c;
}

TEST(ValueDetectorTest, CandidateSpansExcludeStopWords) {
  text::EmbeddingProvider provider(16);
  ValueDetector det(Config(16), provider);
  auto spans = det.CandidateSpans(
      {"which", "film", "directed", "by", "jerzy", "antczak", "?"});
  for (const auto& span : spans) {
    EXPECT_FALSE(span.Contains(0)) << "'which' is a stop word";
    EXPECT_FALSE(span.Contains(3)) << "'by' is a stop word";
    EXPECT_FALSE(span.Contains(6)) << "'?' is a stop word";
  }
  // "jerzy antczak" must be among the candidates.
  bool found = false;
  for (const auto& span : spans) found |= span == text::Span{4, 6};
  EXPECT_TRUE(found);
}

TEST(ValueDetectorTest, CandidateSpansRespectMaxLength) {
  text::EmbeddingProvider provider(16);
  ModelConfig config = Config(16);
  config.max_value_span = 2;
  ValueDetector det(config, provider);
  for (const auto& span : det.CandidateSpans({"a1", "b2", "c3", "d4"})) {
    EXPECT_LE(span.length(), 2);
  }
}

TEST(ValueDetectorTest, MismatchedInputDimsAreInvalidArgument) {
  // Dim mismatches used to be an NLIDB_CHECK abort; on the query path
  // they must surface as a recoverable Status instead.
  text::EmbeddingProvider provider(16);
  ValueDetector det(Config(16), provider);
  const std::vector<float> good(16, 0.1f);
  const std::vector<float> bad(8, 0.1f);
  EXPECT_EQ(det.ForwardFromVectors(bad, good).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(det.ForwardFromVectors(good, bad).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(det.ForwardFromVectors({}, {}).status().code(),
            StatusCode::kInvalidArgument);
  // The message names both dims so the caller can log something useful.
  Status s = det.ForwardFromVectors(bad, good).status();
  EXPECT_NE(s.message().find("span=8"), std::string::npos) << s;
  EXPECT_TRUE(det.ForwardFromVectors(good, good).ok());
}

TEST(ValueDetectorTest, ScoreWithMismatchedStatsEmbeddingIsStatusNotAbort) {
  text::EmbeddingProvider provider(16);
  ValueDetector det(Config(16), provider);
  sql::ColumnStatistics stats;
  stats.embedding.assign(4, 0.1f);  // wrong dim: provider is 16-wide
  StatusOr<float> s = det.Score({"word"}, stats);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.status().code(), StatusCode::kInvalidArgument);
}

TEST(ValueDetectorTest, ScoreIsProbability) {
  text::EmbeddingProvider provider(16);
  ValueDetector det(Config(16), provider);
  sql::ColumnStatistics stats;
  stats.embedding.assign(16, 0.1f);
  const float s = det.Score({"word"}, stats).value();
  EXPECT_GT(s, 0.0f);
  EXPECT_LT(s, 1.0f);
}

TEST(ValueDetectorTest, TypeFilterBlocksTextSpansOnRealColumns) {
  text::EmbeddingProvider provider(16);
  ValueDetector det(Config(16), provider);
  sql::ColumnStatistics real_col;
  real_col.type = sql::DataType::kReal;
  real_col.embedding = provider.PhraseVector({"42", "17"});
  // "june 23" is not all-numeric: never admissible for a real column.
  auto detections = det.Detect({"june", "23"}, {real_col}).value();
  for (const auto& d : detections) {
    EXPECT_EQ(d.span.length(), 1);
    EXPECT_EQ(d.span.begin, 1);  // only the bare number can match
  }
}

TEST(ValueDetectorTest, LearnsCounterfactualDetection) {
  // Train on a corpus, then test that a NAME NOT IN ANY TABLE still
  // scores high against a person column and low against a number column
  // (challenge 4: counterfactual values).
  auto provider = std::make_shared<text::EmbeddingProvider>(32);
  data::RegisterDomainClusters(*provider);
  data::GeneratorConfig gc;
  gc.num_tables = 12;
  gc.questions_per_table = 6;
  gc.seed = 9;
  data::Splits splits = data::GenerateWikiSqlSplits(gc);
  ModelConfig config = Config(32);
  ValueDetector det(config, *provider);
  schema::SchemaRegistry registry(provider);
  const float loss = TrainValueDetector(det, splits.train, registry, config);
  EXPECT_LT(loss, 0.5f);

  // Build a fresh films table; ask about a person who is NOT in it.
  sql::Schema schema({{"director", sql::DataType::kText},
                      {"year", sql::DataType::kReal}});
  sql::Table table("films", schema);
  ASSERT_TRUE(table
                  .AddRow({sql::Value::Text("sofia garcia"),
                           sql::Value::Real(1999)})
                  .ok());
  ASSERT_TRUE(table
                  .AddRow({sql::Value::Text("liam murphy"),
                           sql::Value::Real(2004)})
                  .ok());
  auto stats = sql::ComputeTableStatistics(table, *provider);
  // "hugo novak" never occurs in the table but is made of name-pool words.
  const float person_score = det.Score({"hugo", "novak"}, stats[0]).value();
  EXPECT_GT(person_score, 0.5f) << "counterfactual name not detected";
}

TEST(ValueDetectorTest, DetectReturnsSortedScores) {
  auto provider = std::make_shared<text::EmbeddingProvider>(16);
  ValueDetector det(Config(16), *provider);
  sql::ColumnStatistics a, b;
  a.embedding = provider->PhraseVector({"alpha"});
  b.embedding = provider->PhraseVector({"beta"});
  auto detections = det.Detect({"alpha", "beta"}, {a, b}).value();
  for (const auto& d : detections) {
    for (size_t i = 1; i < d.column_scores.size(); ++i) {
      EXPECT_GE(d.column_scores[i - 1].second, d.column_scores[i].second);
    }
    for (const auto& [col, score] : d.column_scores) {
      EXPECT_GT(score, 0.5f);
    }
  }
}

}  // namespace
}  // namespace core
}  // namespace nlidb
