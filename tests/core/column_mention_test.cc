#include "core/column_mention_classifier.h"

#include <gtest/gtest.h>

#include "core/trainer.h"
#include "data/generator.h"
#include "nn/optimizer.h"
#include "tensor/ops.h"

namespace nlidb {
namespace core {
namespace {

ModelConfig TinyConfig(int word_dim) {
  ModelConfig c = ModelConfig::Tiny();
  c.word_dim = word_dim;
  return c;
}

TEST(ColumnMentionClassifierTest, ForwardShapes) {
  text::EmbeddingProvider provider(24);
  ColumnMentionClassifier clf(TinyConfig(24), provider);
  clf.AddVocabulary({"who", "won", "the", "race", "winning", "driver"});
  auto fr =
      clf.Forward({"who", "won", "the", "race"}, {"winning", "driver"}).value();
  EXPECT_EQ(fr.logit->value.rows(), 1);
  EXPECT_EQ(fr.logit->value.cols(), 1);
  EXPECT_EQ(fr.question_word_embeddings->value.rows(), 4);
  EXPECT_EQ(fr.question_char_embeddings.size(), 4u);
}

TEST(ColumnMentionClassifierTest, PredictIsProbability) {
  text::EmbeddingProvider provider(24);
  ColumnMentionClassifier clf(TinyConfig(24), provider);
  clf.AddVocabulary({"a", "b"});
  const float p = clf.Predict({"a", "b"}, {"b"}).value();
  EXPECT_GT(p, 0.0f);
  EXPECT_LT(p, 1.0f);
}

TEST(ColumnMentionClassifierTest, EmptyWordSequenceIsInvalidArgument) {
  // Empty inputs used to trip an NLIDB_CHECK abort inside Embed; the
  // query path needs a Status it can propagate instead.
  text::EmbeddingProvider provider(24);
  ColumnMentionClassifier clf(TinyConfig(24), provider);
  clf.AddVocabulary({"a", "b"});
  StatusOr<float> no_question = clf.Predict({}, {"a"});
  ASSERT_FALSE(no_question.ok());
  EXPECT_EQ(no_question.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(no_question.status().message().find("empty word sequence"),
            std::string::npos);
  // An empty column display name is the other arm of the same check.
  StatusOr<float> no_column = clf.Predict({"a"}, {});
  ASSERT_FALSE(no_column.ok());
  EXPECT_EQ(no_column.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(clf.Forward({}, {"a"}).status().code(),
            StatusCode::kInvalidArgument);
  // And the batched entry point reports rather than aborts too.
  EXPECT_EQ(clf.PredictBatch({}, {{"a"}}).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(ColumnMentionClassifierTest, HandlesLongColumnNamesByCapping) {
  text::EmbeddingProvider provider(24);
  ModelConfig config = TinyConfig(24);
  config.max_column_words = 2;
  ColumnMentionClassifier clf(config, provider);
  clf.AddVocabulary({"x"});
  // Column longer than max_column_words must not crash.
  const float p = clf.Predict({"x"}, {"a", "b", "c", "d", "e"}).value();
  EXPECT_GT(p, 0.0f);
  EXPECT_LT(p, 1.0f);
}

TEST(ColumnMentionClassifierTest, UnseenWordsFallBackToUnk) {
  text::EmbeddingProvider provider(24);
  ColumnMentionClassifier clf(TinyConfig(24), provider);
  clf.AddVocabulary({"known"});
  const float p =
      clf.Predict({"totally", "novel", "words"}, {"known"}).value();
  EXPECT_GT(p, 0.0f);
  EXPECT_LT(p, 1.0f);
}

TEST(ColumnMentionClassifierTest, LearnsMentionDetectionOnCorpus) {
  auto provider = std::make_shared<text::EmbeddingProvider>(48);
  data::RegisterDomainClusters(*provider);
  data::GeneratorConfig gc;
  gc.num_tables = 22;
  gc.questions_per_table = 6;
  gc.seed = 21;
  data::Splits splits = data::GenerateWikiSqlSplits(gc);
  ModelConfig config = TinyConfig(48);
  config.classifier_epochs = 3;
  ColumnMentionClassifier clf(config, *provider);
  const float loss =
      TrainColumnMentionClassifier(clf, splits.train, config);
  EXPECT_LT(loss, 0.35f) << "classifier failed to fit training corpus";

  // Accuracy on unseen tables must beat chance comfortably.
  int correct = 0, total = 0;
  for (const data::Example& ex : splits.test.examples) {
    std::vector<bool> referenced(ex.schema().num_columns(), false);
    referenced[ex.query.select_column] = true;
    for (const auto& c : ex.query.conditions) referenced[c.column] = true;
    for (int c = 0; c < ex.schema().num_columns(); ++c) {
      const float p =
          clf.Predict(ex.tokens, ex.schema().column(c).DisplayTokens()).value();
      correct += (p > 0.5f) == referenced[c];
      ++total;
    }
  }
  EXPECT_GT(static_cast<float>(correct) / total, 0.62f);
}

TEST(ColumnMentionClassifierTest, PredictBatchMatchesSerialPredictBitwise) {
  // The batched scorer stacks every column into shared GEMMs; because
  // each column occupies its own row throughout, the per-column result
  // must equal the serial Predict to the last bit (the annotator's
  // eval-metric stability depends on this).
  text::EmbeddingProvider provider(24);
  ColumnMentionClassifier clf(TinyConfig(24), provider);
  clf.AddVocabulary({"who", "won", "the", "race", "winning", "driver",
                     "points", "season", "year"});
  const std::vector<std::string> q = {"who", "won", "the", "race"};
  const std::vector<std::vector<std::string>> cols = {
      {"winning", "driver"},
      {"race"},
      {"points"},
      // Longer than max_column_words: exercises the capping + the
      // mixed-length grouping inside the batch.
      {"season", "year", "race", "points", "driver", "won"},
      {"race", "points", "season"},
      {"unseen", "tokens", "here"},
  };
  const std::vector<float> batch = clf.PredictBatch(q, cols).value();
  ASSERT_EQ(batch.size(), cols.size());
  for (size_t c = 0; c < cols.size(); ++c) {
    const float serial = clf.Predict(q, cols[c]).value();
    EXPECT_EQ(batch[c], serial) << "column " << c;  // exact, not NEAR
  }
}

TEST(ColumnMentionClassifierTest, PredictBatchEdgeSizes) {
  text::EmbeddingProvider provider(24);
  ColumnMentionClassifier clf(TinyConfig(24), provider);
  clf.AddVocabulary({"a", "b", "c"});
  EXPECT_TRUE(clf.PredictBatch({"a", "b"}, {}).value().empty());
  const std::vector<float> one =
      clf.PredictBatch({"a", "b"}, {{"c"}}).value();
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0], clf.Predict({"a", "b"}, {"c"}).value());
}

TEST(ColumnMentionClassifierTest, GradientsReachEmbeddingLookups) {
  text::EmbeddingProvider provider(24);
  ColumnMentionClassifier clf(TinyConfig(24), provider);
  clf.AddVocabulary({"which", "film", "director"});
  auto fr = clf.Forward({"which", "film"}, {"director"}).value();
  Var loss = ops::BceWithLogits(fr.logit, 1.0f);
  Backward(loss);
  EXPECT_FALSE(fr.question_word_embeddings->grad.empty());
  EXPECT_GT(fr.question_word_embeddings->grad.Norm2(), 0.0f);
  for (const auto& ch : fr.question_char_embeddings) {
    EXPECT_FALSE(ch->grad.empty());
  }
}

}  // namespace
}  // namespace core
}  // namespace nlidb
