#include "core/pipeline.h"

#include <gtest/gtest.h>

#include "data/generator.h"
#include "text/tokenizer.h"

namespace nlidb {
namespace core {
namespace {

class PipelineTest : public ::testing::Test {
 protected:
  PipelineTest() {
    provider_ = std::make_shared<text::EmbeddingProvider>();
    data::RegisterDomainClusters(*provider_);
    config_ = ModelConfig::Tiny();
    config_.word_dim = provider_->dim();
  }

  sql::Table FilmTable() {
    sql::Schema schema({{"film_name", sql::DataType::kText},
                        {"director", sql::DataType::kText}});
    sql::Table t("films", schema);
    EXPECT_TRUE(t.AddRow({sql::Value::Text("winter echo"),
                          sql::Value::Text("sofia garcia")})
                    .ok());
    return t;
  }

  std::shared_ptr<text::EmbeddingProvider> provider_;
  ModelConfig config_;
};

TEST_F(PipelineTest, AnnotationOptionsMirrorConfig) {
  config_.column_name_appending = false;
  config_.table_header_encoding = true;
  NlidbPipeline pipeline(config_, provider_);
  AnnotationOptions options = pipeline.annotation_options();
  EXPECT_FALSE(options.column_name_appending);
  EXPECT_TRUE(options.table_header_encoding);
}

TEST_F(PipelineTest, EmptyInputsRejectedCleanly) {
  NlidbPipeline pipeline(config_, provider_);
  sql::Table table = FilmTable();
  QueryRequest empty_question;
  empty_question.schema_ref = SchemaRef::Table(&table);
  empty_question.question = "";
  auto r1 = pipeline.Query(empty_question);
  EXPECT_FALSE(r1.ok());
  EXPECT_EQ(r1.status().code(), StatusCode::kInvalidArgument);
  sql::Table empty("empty", sql::Schema{});
  QueryRequest empty_schema;
  empty_schema.schema_ref = SchemaRef::Table(&empty);
  empty_schema.tokens = {"hello"};
  auto r2 = pipeline.Query(empty_schema);
  EXPECT_FALSE(r2.ok());
  EXPECT_EQ(r2.status().code(), StatusCode::kInvalidArgument);
  QueryRequest null_table;
  null_table.question = "hello ?";
  auto r3 = pipeline.Query(null_table);
  EXPECT_FALSE(r3.ok());
  EXPECT_EQ(r3.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(PipelineTest, UntrainedPipelineDoesNotCrash) {
  NlidbPipeline pipeline(config_, provider_);
  sql::Table table = FilmTable();
  // Untrained models produce garbage, but the pipeline must return a
  // clean result either way: Query succeeds and reports any recovery
  // failure in-band instead of crashing.
  QueryRequest request;
  request.schema_ref = SchemaRef::Table(&table);
  request.question = "which film by sofia garcia ?";
  auto result = pipeline.Query(request);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->query.has_value(), result->recovery_status.ok());
}

TEST_F(PipelineTest, QueryReturnsEveryStage) {
  NlidbPipeline pipeline(config_, provider_);
  sql::Table table = FilmTable();
  QueryRequest request;
  request.schema_ref = SchemaRef::Table(&table);
  request.question = "which film name directed by sofia garcia ?";
  auto result = pipeline.Query(request);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_FALSE(result->tokens.empty());
  EXPECT_FALSE(result->annotated_question.empty());
  EXPECT_FALSE(result->annotated_sql.empty());
  // Stage timings cover the whole pipeline, in order.
  ASSERT_FALSE(result->stages.children.empty());
  EXPECT_EQ(result->stages.name, "query");
  EXPECT_NE(result->stages.Child("annotate"), nullptr);
  EXPECT_NE(result->stages.Child("translate"), nullptr);
  EXPECT_EQ(result->stages.Child("no_such_stage"), nullptr);
  if (result->query.has_value()) {
    // execute=true by default: rows or an execution error, never neither.
    EXPECT_NE(result->rows.has_value(), !result->execution_status.ok());
  }
}

TEST_F(PipelineTest, QueryTimingsCanBeDisabled) {
  NlidbPipeline pipeline(config_, provider_);
  sql::Table table = FilmTable();
  QueryRequest request;
  request.schema_ref = SchemaRef::Table(&table);
  request.question = "which film name directed by sofia garcia ?";
  request.collect_timings = false;
  request.execute = false;
  auto result = pipeline.Query(request);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->stages.children.empty());
  EXPECT_FALSE(result->rows.has_value());
}

TEST_F(PipelineTest, AnnotateUsesExactEvidenceWithoutTraining) {
  NlidbPipeline pipeline(config_, provider_);
  sql::Table table = FilmTable();
  const auto tokens =
      text::Tokenize("which film name directed by sofia garcia ?");
  StatusOr<Annotation> ann = pipeline.Annotate(tokens, table);
  ASSERT_TRUE(ann.ok()) << ann.status();
  // "sofia garcia" occurs verbatim in the director column.
  const int pair = ann->PairForColumn(1);
  ASSERT_GE(pair, 0);
  EXPECT_EQ(ann->pairs[pair].value_text, "sofia garcia");
}

TEST_F(PipelineTest, AnnotateRejectsEmptyTokens) {
  NlidbPipeline pipeline(config_, provider_);
  sql::Table table = FilmTable();
  StatusOr<Annotation> ann = pipeline.Annotate({}, table);
  EXPECT_FALSE(ann.ok());
  EXPECT_EQ(ann.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(PipelineTest, RegistryStatsSharedAcrossCalls) {
  NlidbPipeline pipeline(config_, provider_);
  sql::Table table = FilmTable();
  const auto& s1 = pipeline.registry().StatsFor(table);
  const auto& s2 = pipeline.registry().StatsFor(table);
  EXPECT_EQ(&s1, &s2);
  // Content-keyed, not address-keyed: an identical copy elsewhere in
  // memory shares the same entry.
  sql::Table copy = FilmTable();
  EXPECT_EQ(&pipeline.registry().StatsFor(copy), &s1);
}

TEST_F(PipelineTest, QueryResolvesRegisteredTableByName) {
  NlidbPipeline pipeline(config_, provider_);
  auto table = std::make_shared<sql::Table>(FilmTable());
  auto id = pipeline.mutable_registry().Register(table);
  ASSERT_TRUE(id.ok()) << id.status();

  QueryRequest request;
  request.schema_ref = SchemaRef::Name("films");
  request.question = "which film name directed by sofia garcia ?";
  auto result = pipeline.Query(request);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->table_name, "films");
  EXPECT_EQ(result->table_id, id.value());
  EXPECT_NE(result->stages.Child("resolve"), nullptr);

  QueryRequest by_id;
  by_id.schema_ref = SchemaRef::Id(id.value());
  by_id.question = "which film name directed by sofia garcia ?";
  auto result2 = pipeline.Query(by_id);
  ASSERT_TRUE(result2.ok()) << result2.status();
  EXPECT_EQ(result2->table_name, "films");

  QueryRequest unknown;
  unknown.schema_ref = SchemaRef::Name("no_such_table");
  unknown.question = "anything ?";
  auto missing = pipeline.Query(unknown);
  EXPECT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
}

TEST_F(PipelineTest, QueryRoutesWhenNoTableGiven) {
  NlidbPipeline pipeline(config_, provider_);
  auto films = std::make_shared<sql::Table>(FilmTable());
  sql::Schema schema({{"county", sql::DataType::kText},
                      {"population", sql::DataType::kReal}});
  auto counties = std::make_shared<sql::Table>("counties", schema);
  ASSERT_TRUE(
      counties->AddRow({sql::Value::Text("mayo"), sql::Value::Real(130507)})
          .ok());
  ASSERT_TRUE(pipeline.mutable_registry().Register(films).ok());
  ASSERT_TRUE(pipeline.mutable_registry().Register(counties).ok());

  QueryRequest request;
  request.schema_ref = SchemaRef::Route();
  request.question = "what is the population of mayo ?";
  auto result = pipeline.Query(request);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->table_name, "counties");
  ASSERT_FALSE(result->routing.empty());
  EXPECT_EQ(result->routing.front().name, "counties");
}

TEST_F(PipelineTest, MetadataInjectionImprovesAnnotation) {
  // The Sec. II mechanism: with P_c metadata, a paraphrase mention
  // becomes a context-free match even for an untrained pipeline.
  NlidbPipeline pipeline(config_, provider_);
  sql::Schema schema({{"population", sql::DataType::kReal},
                      {"county", sql::DataType::kText}});
  sql::Table table("gaeltacht", schema);
  ASSERT_TRUE(
      table.AddRow({sql::Value::Real(356), sql::Value::Text("mayo")}).ok());
  NlMetadata metadata;
  metadata.column_phrases = {{"headcount figure"}, {}};
  const auto tokens = text::Tokenize("what is the headcount figure of mayo ?");

  StatusOr<Annotation> without = pipeline.Annotate(tokens, table);
  pipeline.set_metadata(&metadata);
  StatusOr<Annotation> with = pipeline.Annotate(tokens, table);
  pipeline.set_metadata(nullptr);

  ASSERT_TRUE(without.ok()) << without.status();
  ASSERT_TRUE(with.ok()) << with.status();
  auto has_population_span = [](const Annotation& a) {
    const int p = a.PairForColumn(0);
    return p >= 0 && !a.pairs[p].column_span.empty();
  };
  EXPECT_TRUE(has_population_span(*with));
  EXPECT_FALSE(has_population_span(*without));
}

TEST_F(PipelineTest, TrainReturnsPairCounts) {
  data::GeneratorConfig gc;
  gc.num_tables = 4;
  gc.questions_per_table = 3;
  gc.seed = 66;
  data::WikiSqlGenerator gen(gc, data::TrainDomains());
  data::Dataset ds = gen.Generate();
  NlidbPipeline pipeline(config_, provider_);
  TrainReport report = pipeline.Train(ds);
  EXPECT_GT(report.classifier_pairs, 0);
  EXPECT_GT(report.value_pairs, 0);
  EXPECT_EQ(report.seq2seq_pairs, static_cast<int>(ds.size()));
}

}  // namespace
}  // namespace core
}  // namespace nlidb
