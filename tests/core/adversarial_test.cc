#include "core/adversarial.h"

#include <gtest/gtest.h>

#include "core/trainer.h"
#include "data/generator.h"

namespace nlidb {
namespace core {
namespace {

TEST(AdversarialTest, InfluenceProfileShapes) {
  text::EmbeddingProvider provider(24);
  ModelConfig config = ModelConfig::Tiny();
  config.word_dim = 24;
  ColumnMentionClassifier clf(config, provider);
  clf.AddVocabulary({"who", "won", "driver"});
  AdversarialLocator locator(config);
  InfluenceProfile profile =
      locator.ComputeInfluence(clf, {"who", "won", "?"}, {"driver"}).value();
  EXPECT_EQ(profile.total.size(), 3u);
  EXPECT_EQ(profile.word_level.size(), 3u);
  EXPECT_EQ(profile.char_level.size(), 3u);
  for (float v : profile.total) EXPECT_GE(v, 0.0f);
}

TEST(AdversarialTest, AlphaBetaWeighting) {
  text::EmbeddingProvider provider(24);
  ModelConfig config = ModelConfig::Tiny();
  config.word_dim = 24;
  config.influence_alpha = 1.0f;
  config.influence_beta = 0.0f;
  ColumnMentionClassifier clf(config, provider);
  clf.AddVocabulary({"a", "b", "c"});
  AdversarialLocator locator(config);
  InfluenceProfile p =
      locator.ComputeInfluence(clf, {"a", "b"}, {"c"}).value();
  // With beta = 0, total must equal the word-level norm exactly.
  for (size_t i = 0; i < p.total.size(); ++i) {
    EXPECT_FLOAT_EQ(p.total[i], p.word_level[i]);
  }
}

TEST(AdversarialTest, LocateSpanPicksPeak) {
  ModelConfig config;
  config.max_mention_length = 3;
  AdversarialLocator locator(config);
  InfluenceProfile profile;
  profile.total = {0.1f, 0.1f, 5.0f, 4.0f, 0.1f, 0.1f};
  text::Span span = locator.LocateSpan(profile);
  EXPECT_TRUE(span.Contains(2));
  EXPECT_TRUE(span.Contains(3));
  EXPECT_LE(span.length(), 3);
}

TEST(AdversarialTest, LocateSpanRespectsMaxLength) {
  ModelConfig config;
  config.max_mention_length = 2;
  AdversarialLocator locator(config);
  InfluenceProfile profile;
  profile.total = {3.0f, 3.0f, 3.0f, 3.0f};
  text::Span span = locator.LocateSpan(profile);
  EXPECT_EQ(span.length(), 2);
}

TEST(AdversarialTest, LocateSpanSingletonOnIsolatedPeak) {
  ModelConfig config;
  AdversarialLocator locator(config);
  InfluenceProfile profile;
  profile.total = {0.0f, 10.0f, 0.1f};
  text::Span span = locator.LocateSpan(profile);
  EXPECT_EQ(span, (text::Span{1, 2}));
}

TEST(AdversarialTest, EmptyProfileGivesEmptySpan) {
  ModelConfig config;
  AdversarialLocator locator(config);
  EXPECT_TRUE(locator.LocateSpan(InfluenceProfile{}).empty());
}

TEST(AdversarialTest, TrainedClassifierLocalizesExplicitMentions) {
  // Fig. 5 / Fig. 7 behaviour: after training, the influence peak for a
  // column should coincide with (or overlap) the gold mention span in a
  // clear majority of explicit-mention cases.
  auto provider = std::make_shared<text::EmbeddingProvider>(32);
  data::RegisterDomainClusters(*provider);
  data::GeneratorConfig gc;
  gc.num_tables = 12;
  gc.questions_per_table = 6;
  gc.seed = 5;
  data::Splits splits = data::GenerateWikiSqlSplits(gc);
  ModelConfig config = ModelConfig::Tiny();
  config.word_dim = 32;
  config.classifier_epochs = 3;
  ColumnMentionClassifier clf(config, *provider);
  TrainColumnMentionClassifier(clf, splits.train, config);
  AdversarialLocator locator(config);
  int overlapping = 0, total = 0;
  for (const data::Example& ex : splits.dev.examples) {
    for (const data::MentionInfo& m : ex.where_mentions) {
      if (!m.column_explicit || m.column_span.empty()) continue;
      const text::Span located =
          locator
              .LocateMention(clf, ex.tokens,
                             ex.schema().column(m.column).DisplayTokens())
              .value();
      ++total;
      // Count as localized when the located span overlaps the gold
      // column mention or the paired value (implicit localization).
      overlapping += located.Overlaps(m.column_span) ||
                     located.Overlaps(m.value_span);
    }
    if (total >= 40) break;
  }
  ASSERT_GT(total, 5);
  EXPECT_GT(static_cast<float>(overlapping) / total, 0.5f);
}

}  // namespace
}  // namespace core
}  // namespace nlidb
