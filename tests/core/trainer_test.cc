#include "core/trainer.h"

#include <gtest/gtest.h>

#include "data/generator.h"

namespace nlidb {
namespace core {
namespace {

data::Dataset SmallCorpus(uint64_t seed) {
  data::GeneratorConfig gc;
  gc.num_tables = 6;
  gc.questions_per_table = 5;
  gc.seed = seed;
  data::WikiSqlGenerator gen(gc, data::TrainDomains());
  return gen.Generate();
}

TEST(GoldAnnotationTest, SelectPairComesWithConditionPairs) {
  data::Dataset ds = SmallCorpus(1);
  for (const data::Example& ex : ds.examples) {
    const Annotation ann = GoldAnnotation(ex);
    // Every condition column has a pair with the right value text.
    for (size_t i = 0; i < ex.query.conditions.size(); ++i) {
      const int pair = ann.PairForColumn(ex.query.conditions[i].column);
      ASSERT_GE(pair, 0) << ex.question;
      EXPECT_FALSE(ann.pairs[pair].value_text.empty());
    }
    // The select column has a pair too (value-less unless shared).
    EXPECT_GE(ann.PairForColumn(ex.query.select_column), -1);
    // Pairs are ordered by appearance.
    int last_pos = -1;
    for (const auto& p : ann.pairs) {
      const int pos = !p.column_span.empty() ? p.column_span.begin
                      : !p.value_span.empty() ? p.value_span.begin
                                              : (1 << 20);
      EXPECT_GE(pos, last_pos == (1 << 20) ? -1 : 0);
      if (pos != (1 << 20)) {
        EXPECT_GE(pos, last_pos) << ex.question;
        last_pos = pos;
      }
    }
  }
}

TEST(RegistryStatsTest, CachesByContent) {
  auto provider = std::make_shared<text::EmbeddingProvider>(16);
  schema::SchemaRegistry registry(provider);
  sql::Schema schema({{"x", sql::DataType::kText}});
  sql::Table t("t", schema);
  ASSERT_TRUE(t.AddRow({sql::Value::Text("hello")}).ok());
  const auto& s1 = registry.StatsFor(t);
  const auto& s2 = registry.StatsFor(t);
  EXPECT_EQ(&s1, &s2);
}

TEST(TrainerTest, ClassifierLossDecreases) {
  auto provider = std::make_shared<text::EmbeddingProvider>(24);
  data::RegisterDomainClusters(*provider);
  data::Dataset ds = SmallCorpus(2);
  ModelConfig config = ModelConfig::Tiny();
  config.word_dim = 24;
  config.classifier_epochs = 1;
  ColumnMentionClassifier clf(config, *provider);
  int pairs = 0;
  const float loss1 = TrainColumnMentionClassifier(clf, ds, config, &pairs);
  EXPECT_GT(pairs, 0);
  config.classifier_epochs = 3;
  ColumnMentionClassifier clf2(config, *provider);
  const float loss3 = TrainColumnMentionClassifier(clf2, ds, config);
  EXPECT_LT(loss3, loss1);
}

TEST(TrainerTest, ValueDetectorProducesPairsAndLearns) {
  auto provider = std::make_shared<text::EmbeddingProvider>(48);
  data::RegisterDomainClusters(*provider);
  data::Dataset ds = SmallCorpus(3);
  ModelConfig config = ModelConfig::Tiny();
  config.word_dim = 48;
  config.value_epochs = 4;
  ValueDetector det(config, *provider);
  schema::SchemaRegistry registry(provider);
  int pairs = 0;
  const float loss = TrainValueDetector(det, ds, registry, config, &pairs);
  EXPECT_GT(pairs, ds.examples.size());
  EXPECT_LT(loss, 0.6f);
}

TEST(TrainerTest, Seq2SeqTrainsOnGoldAnnotations) {
  data::Dataset ds = SmallCorpus(4);
  ModelConfig config = ModelConfig::Tiny();
  config.word_dim = 24;
  config.seq2seq_hidden = 24;
  config.seq2seq_epochs = 2;
  Seq2SeqTranslator translator(config);
  AnnotationOptions options;
  int pairs = 0;
  const float loss = TrainSeq2Seq(translator, ds, options, config, &pairs);
  EXPECT_EQ(pairs, static_cast<int>(ds.examples.size()));
  EXPECT_GT(loss, 0.0f);
  EXPECT_LT(loss, 3.0f);  // sanity: trains without diverging
}

TEST(TrainerTest, EmptyDatasetIsNoOp) {
  auto provider = std::make_shared<text::EmbeddingProvider>(24);
  ModelConfig config = ModelConfig::Tiny();
  config.word_dim = 24;
  data::Dataset empty;
  ColumnMentionClassifier clf(config, *provider);
  EXPECT_EQ(TrainColumnMentionClassifier(clf, empty, config), 0.0f);
  ValueDetector det(config, *provider);
  schema::SchemaRegistry registry(provider);
  EXPECT_EQ(TrainValueDetector(det, empty, registry, config), 0.0f);
  Seq2SeqTranslator tr(config);
  EXPECT_EQ(TrainSeq2Seq(tr, empty, AnnotationOptions{}, config), 0.0f);
}

}  // namespace
}  // namespace core
}  // namespace nlidb
