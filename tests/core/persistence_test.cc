#include "core/persistence.h"

#include <gtest/gtest.h>

#include <filesystem>

#include "data/generator.h"
#include "eval/metrics.h"

namespace nlidb {
namespace core {
namespace {

std::string TempDirFor(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

TEST(VocabPersistenceTest, SaveLoadRoundTrip) {
  text::Vocab vocab;
  vocab.AddToken("which");
  vocab.AddToken("film");
  vocab.AddToken("c1");
  const std::string path = TempDirFor("vocab.txt");
  ASSERT_TRUE(SaveVocab(vocab, path).ok());
  auto tokens = LoadVocabTokens(path);
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ(*tokens, (std::vector<std::string>{"which", "film", "c1"}));
  std::remove(path.c_str());
}

TEST(PipelinePersistenceTest, SaveLoadPreservesBehavior) {
  auto provider = std::make_shared<text::EmbeddingProvider>();
  data::RegisterDomainClusters(*provider);
  data::GeneratorConfig gc;
  gc.num_tables = 10;
  gc.questions_per_table = 5;
  gc.seed = 55;
  data::Splits splits = data::GenerateWikiSqlSplits(gc);
  ModelConfig config = ModelConfig::Tiny();
  config.word_dim = provider->dim();

  NlidbPipeline trained(config, provider);
  trained.Train(splits.train);
  const std::string dir = TempDirFor("pipeline_save");
  ASSERT_TRUE(SavePipeline(trained, dir).ok());

  // A fresh, untrained pipeline restored from disk must reproduce the
  // trained pipeline's predictions exactly.
  NlidbPipeline restored(config, provider);
  ASSERT_TRUE(LoadPipeline(restored, dir).ok());
  auto translate = [](const NlidbPipeline& pipeline, const data::Example& ex)
      -> StatusOr<sql::SelectQuery> {
    QueryRequest request;
    request.schema_ref = SchemaRef::Table(ex.table.get());
    request.tokens = ex.tokens;
    request.execute = false;
    request.collect_timings = false;
    StatusOr<QueryResult> result = pipeline.Query(request);
    if (!result.ok()) return result.status();
    QueryResult out = std::move(result).value();
    if (!out.recovery_status.ok()) return out.recovery_status;
    return std::move(*out.query);
  };
  int compared = 0;
  for (const auto& ex : splits.dev.examples) {
    auto a = translate(trained, ex);
    auto b = translate(restored, ex);
    ASSERT_EQ(a.ok(), b.ok());
    if (a.ok()) {
      EXPECT_TRUE(*a == *b) << ex.question;
    }
    if (++compared >= 8) break;
  }
  std::filesystem::remove_all(dir);
}

TEST(PipelinePersistenceTest, LoadIntoMismatchedConfigFails) {
  auto provider = std::make_shared<text::EmbeddingProvider>();
  data::RegisterDomainClusters(*provider);
  data::GeneratorConfig gc;
  gc.num_tables = 4;
  gc.seed = 56;
  data::Splits splits = data::GenerateWikiSqlSplits(gc);
  ModelConfig config = ModelConfig::Tiny();
  config.word_dim = provider->dim();
  NlidbPipeline trained(config, provider);
  trained.Train(splits.train);
  const std::string dir = TempDirFor("pipeline_mismatch");
  ASSERT_TRUE(SavePipeline(trained, dir).ok());

  ModelConfig bigger = config;
  bigger.seq2seq_hidden *= 2;
  NlidbPipeline other(bigger, provider);
  Status s = LoadPipeline(other, dir);
  EXPECT_FALSE(s.ok());
  std::filesystem::remove_all(dir);
}

TEST(PipelinePersistenceTest, MissingDirectoryFails) {
  auto provider = std::make_shared<text::EmbeddingProvider>();
  ModelConfig config = ModelConfig::Tiny();
  config.word_dim = provider->dim();
  NlidbPipeline pipeline(config, provider);
  EXPECT_FALSE(LoadPipeline(pipeline, TempDirFor("does_not_exist_xyz")).ok());
}

}  // namespace
}  // namespace core
}  // namespace nlidb
