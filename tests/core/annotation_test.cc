#include "core/annotation.h"

#include <gtest/gtest.h>

#include "common/strings.h"
#include "core/trainer.h"
#include "data/generator.h"
#include "sql/query.h"

namespace nlidb {
namespace core {
namespace {

sql::Schema FilmSchema() {
  return sql::Schema({{"film_name", sql::DataType::kText},
                      {"director", sql::DataType::kText},
                      {"actor", sql::DataType::kText},
                      {"year", sql::DataType::kReal}});
}

/// The Fig. 1(c) example annotation.
Annotation FilmAnnotation() {
  Annotation ann;
  // "which film directed by jerzy antczak did piotr adamczyk star in ?"
  //   0     1    2        3  4     5       6   7     8        9   10 11
  MentionPair film;
  film.column = 0;
  film.column_span = {1, 2};
  MentionPair director;
  director.column = 1;
  director.column_span = {2, 4};
  director.value_span = {4, 6};
  director.value_text = "jerzy antczak";
  MentionPair actor;
  actor.column = 2;
  actor.column_span = {9, 10};
  actor.value_span = {7, 9};
  actor.value_text = "piotr adamczyk";
  ann.pairs = {film, director, actor};
  return ann;
}

std::vector<std::string> FilmTokens() {
  return {"which", "film", "directed", "by",   "jerzy", "antczak",
          "did",   "piotr", "adamczyk", "star", "in",    "?"};
}

TEST(SymbolTest, IsAnnotationSymbol) {
  EXPECT_TRUE(IsAnnotationSymbol("c1"));
  EXPECT_TRUE(IsAnnotationSymbol("v12"));
  EXPECT_TRUE(IsAnnotationSymbol("g3"));
  EXPECT_FALSE(IsAnnotationSymbol("c"));
  EXPECT_FALSE(IsAnnotationSymbol("c0"));
  EXPECT_FALSE(IsAnnotationSymbol("cx"));
  EXPECT_FALSE(IsAnnotationSymbol("x1"));
  EXPECT_FALSE(IsAnnotationSymbol("county"));
}

TEST(AnnotationTest, PairForColumn) {
  Annotation ann = FilmAnnotation();
  EXPECT_EQ(ann.PairForColumn(1), 1);
  EXPECT_EQ(ann.PairForColumn(3), -1);
}

TEST(AnnotatedQuestionTest, ColumnNameAppendingKeepsWords) {
  AnnotationOptions options;
  options.column_name_appending = true;
  options.table_header_encoding = false;
  auto qa = BuildAnnotatedQuestion(FilmTokens(), FilmAnnotation(),
                                   FilmSchema(), options);
  EXPECT_EQ(Join(qa, " "),
            "which c1 film c2 directed by v2 jerzy antczak did v3 piotr "
            "adamczyk c3 star in ?");
}

TEST(AnnotatedQuestionTest, SymbolSubstitutionDropsWords) {
  AnnotationOptions options;
  options.column_name_appending = false;
  options.table_header_encoding = false;
  auto qa = BuildAnnotatedQuestion(FilmTokens(), FilmAnnotation(),
                                   FilmSchema(), options);
  EXPECT_EQ(Join(qa, " "), "which c1 c2 v2 did v3 c3 in ?");
}

TEST(AnnotatedQuestionTest, HeaderEncodingAppendsAllColumns) {
  AnnotationOptions options;
  options.table_header_encoding = true;
  auto qa = BuildAnnotatedQuestion(FilmTokens(), FilmAnnotation(),
                                   FilmSchema(), options);
  const std::string joined = Join(qa, " ");
  EXPECT_NE(joined.find("g1 film name"), std::string::npos);
  EXPECT_NE(joined.find("g2 director"), std::string::npos);
  EXPECT_NE(joined.find("g4 year"), std::string::npos);
}

TEST(AnnotatedSqlTest, SymbolsForAnnotatedColumnsAndValues) {
  sql::SelectQuery query;
  query.select_column = 0;
  query.conditions.push_back({1, sql::CondOp::kEq, sql::Value::Text("jerzy antczak")});
  query.conditions.push_back({2, sql::CondOp::kEq, sql::Value::Text("piotr adamczyk")});
  AnnotationOptions options;
  auto sa = BuildAnnotatedSql(query, FilmAnnotation(), FilmSchema(), options);
  EXPECT_EQ(Join(sa, " "), "SELECT c1 WHERE c2 = v2 AND c3 = v3");
}

TEST(AnnotatedSqlTest, UnannotatedColumnUsesHeaderSymbol) {
  sql::SelectQuery query;
  query.select_column = 3;  // year: not in the annotation
  AnnotationOptions options;
  options.table_header_encoding = true;
  auto sa = BuildAnnotatedSql(query, FilmAnnotation(), FilmSchema(), options);
  EXPECT_EQ(Join(sa, " "), "SELECT g4");
  options.table_header_encoding = false;
  sa = BuildAnnotatedSql(query, FilmAnnotation(), FilmSchema(), options);
  EXPECT_EQ(Join(sa, " "), "SELECT year");
}

TEST(AnnotatedSqlTest, MissingValueGoesLiteral) {
  sql::SelectQuery query;
  query.select_column = 0;
  query.conditions.push_back({3, sql::CondOp::kGt, sql::Value::Real(1999)});
  AnnotationOptions options;
  auto sa = BuildAnnotatedSql(query, FilmAnnotation(), FilmSchema(), options);
  EXPECT_EQ(Join(sa, " "), "SELECT c1 WHERE g4 > 1999");
}

TEST(RecoverSqlTest, RecoverFigureOneExample) {
  auto recovered = RecoverSql({"SELECT", "c1", "WHERE", "c2", "=", "v2",
                               "AND", "c3", "=", "v3"},
                              FilmAnnotation(), FilmSchema());
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  EXPECT_EQ(recovered->select_column, 0);
  ASSERT_EQ(recovered->conditions.size(), 2u);
  EXPECT_EQ(recovered->conditions[0].column, 1);
  EXPECT_EQ(recovered->conditions[0].value.text(), "jerzy antczak");
  EXPECT_EQ(recovered->conditions[1].column, 2);
}

TEST(RecoverSqlTest, HandlesHeaderSymbolsAndLiterals) {
  auto recovered = RecoverSql(
      {"SELECT", "MAX", "g4", "WHERE", "director", "=", "jerzy", "antczak"},
      FilmAnnotation(), FilmSchema());
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  EXPECT_EQ(recovered->agg, sql::Aggregate::kMax);
  EXPECT_EQ(recovered->select_column, 3);
  EXPECT_EQ(recovered->conditions[0].value.text(), "jerzy antczak");
}

TEST(RecoverSqlTest, NumericLiteralTypedByColumn) {
  auto recovered = RecoverSql({"SELECT", "c1", "WHERE", "g4", "<", "1984"},
                              FilmAnnotation(), FilmSchema());
  ASSERT_TRUE(recovered.ok());
  EXPECT_TRUE(recovered->conditions[0].value.is_real());
  EXPECT_EQ(recovered->conditions[0].value.number(), 1984);
}

TEST(RecoverSqlTest, ErrorsOnDanglingSymbols) {
  EXPECT_FALSE(RecoverSql({"SELECT", "c9"}, FilmAnnotation(), FilmSchema()).ok());
  EXPECT_FALSE(RecoverSql({"SELECT", "g9"}, FilmAnnotation(), FilmSchema()).ok());
  EXPECT_FALSE(
      RecoverSql({"SELECT", "c1", "WHERE", "c2", "=", "v9"}, FilmAnnotation(),
                 FilmSchema())
          .ok());
  EXPECT_FALSE(RecoverSql({"WHERE"}, FilmAnnotation(), FilmSchema()).ok());
  EXPECT_FALSE(RecoverSql({}, FilmAnnotation(), FilmSchema()).ok());
}

// Property: for generated examples, rendering the gold query under the
// gold annotation and recovering it yields the gold query back.
class AnnotationRoundTripTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(AnnotationRoundTripTest, BuildThenRecoverIsIdentity) {
  data::GeneratorConfig config;
  config.num_tables = 6;
  config.questions_per_table = 5;
  config.seed = GetParam();
  data::WikiSqlGenerator gen(config, data::TrainDomains());
  data::Dataset ds = gen.Generate();
  AnnotationOptions options;
  for (const data::Example& ex : ds.examples) {
    const Annotation gold = GoldAnnotation(ex);
    const auto sa = BuildAnnotatedSql(ex.query, gold, ex.schema(), options);
    auto recovered = RecoverSql(sa, gold, ex.schema());
    ASSERT_TRUE(recovered.ok())
        << recovered.status() << " for " << ex.question;
    EXPECT_EQ(sql::CanonicalSql(*recovered, ex.schema()),
              sql::CanonicalSql(ex.query, ex.schema()))
        << ex.question;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AnnotationRoundTripTest,
                         ::testing::Values(1, 17, 42, 1234));

}  // namespace
}  // namespace core
}  // namespace nlidb
