#include "core/config.h"

#include <gtest/gtest.h>

namespace nlidb {
namespace core {
namespace {

TEST(ConfigTest, SmallIsTheDefault) {
  ModelConfig d;
  ModelConfig s = ModelConfig::Small();
  EXPECT_EQ(d.word_dim, s.word_dim);
  EXPECT_EQ(d.seq2seq_hidden, s.seq2seq_hidden);
  EXPECT_EQ(d.beam_width, s.beam_width);
}

TEST(ConfigTest, TinyIsSmallerThanSmall) {
  ModelConfig t = ModelConfig::Tiny();
  ModelConfig s = ModelConfig::Small();
  EXPECT_LT(t.word_dim, s.word_dim);
  EXPECT_LT(t.classifier_hidden, s.classifier_hidden);
  EXPECT_LE(t.seq2seq_hidden, s.seq2seq_hidden);
}

TEST(ConfigTest, PaperMatchesSectionSevenA2) {
  ModelConfig p = ModelConfig::Paper();
  EXPECT_EQ(p.word_dim, 300);             // GloVe D = 300
  EXPECT_EQ(p.seq2seq_hidden, 400);       // GRU hidden 400 / decoder 800
  EXPECT_EQ(p.beam_width, 5);             // beam search width 5
  EXPECT_FLOAT_EQ(p.grad_clip, 5.0f);     // gradient clipping 5.0
  EXPECT_EQ(p.char_widths,
            (std::vector<int>{3, 4, 5, 6, 7}));  // conv widths (Fig. 4)
}

TEST(ConfigTest, PaperTogglesMatchFullModel) {
  ModelConfig p = ModelConfig::Paper();
  EXPECT_TRUE(p.use_copy_mechanism);
  EXPECT_TRUE(p.column_name_appending);
  EXPECT_TRUE(p.table_header_encoding);
  EXPECT_TRUE(p.use_dependency_resolution);
}

TEST(ConfigTest, InfluenceDefaultsMatchExperiments) {
  // Sec. VII-A1 uses l2-norm with alpha = 1 (word); the library default
  // also enables the char level (beta) as Figs. 5/7 plot both.
  ModelConfig s = ModelConfig::Small();
  EXPECT_FLOAT_EQ(s.influence_norm_p, 2.0f);
  EXPECT_FLOAT_EQ(s.influence_alpha, 1.0f);
  EXPECT_GE(s.influence_beta, 0.0f);
  EXPECT_GE(s.max_mention_length, 3);
}

}  // namespace
}  // namespace core
}  // namespace nlidb
