// Serving concurrency battery, aimed at the TSan CI leg: racing
// submits, cancels and shutdowns against the ServingEngine's admission
// queue and worker pool. The engine promise under test: EVERY ticket
// resolves exactly once — completed, shed, cancelled, rejected or
// drained — no matter how submits interleave with shutdown, and the
// serving.* counter invariant holds afterwards.
//
// The pipeline here is deliberately untrained: queries resolve fast
// (ok, with any recovery failure reported in-band), which maximizes
// scheduler churn per second and keeps the suite cheap under
// sanitizers. Result correctness is the equivalence test's job.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
// Raw threads (not common/thread_pool) so submitter threads may block
// in Ticket::Take() without starving the shared compute pool.
#include <thread>
#include <vector>

#include "common/deadline.h"
#include "common/lockdep.h"
#include "common/metrics.h"
#include "core/pipeline.h"
#include "data/generator.h"
#include "serving/serving.h"

namespace nlidb {
namespace {

#if defined(NLIDB_SANITIZER_BUILD)
constexpr int kScale = 2;
#else
constexpr int kScale = 8;
#endif

class ServingStressTest : public ::testing::Test {
 protected:
  void SetUp() override {
    metrics::MetricsRegistry::Global().ResetAll();
    provider_ = std::make_shared<text::EmbeddingProvider>();
    data::RegisterDomainClusters(*provider_);
    data::GeneratorConfig gc;
    gc.num_tables = 2;
    gc.questions_per_table = 2;
    gc.seed = 77;
    splits_ = std::make_unique<data::Splits>(data::GenerateWikiSqlSplits(gc));
    core::ModelConfig config = core::ModelConfig::Tiny();
    config.word_dim = provider_->dim();
    pipeline_ =
        std::make_unique<core::NlidbPipeline>(config, provider_);
  }

  core::QueryRequest Request() const {
    const data::Example& ex = splits_->train.examples.front();
    core::QueryRequest request;
    request.schema_ref = core::SchemaRef::Table(ex.table.get());
    request.tokens = ex.tokens;
    return request;
  }

  static uint64_t Count(const char* name) {
    return metrics::MetricsRegistry::Global().GetCounter(name).Value();
  }

  /// serving.submitted == admitted + rejected_queue_full +
  /// rejected_shutdown, and admitted == completed + shed + cancelled.
  /// Valid whenever no submit is in flight (all tickets resolved).
  static void ExpectCountersConsistent() {
    EXPECT_EQ(Count("serving.submitted"),
              Count("serving.admitted") + Count("serving.rejected_queue_full") +
                  Count("serving.rejected_shutdown"));
    EXPECT_EQ(Count("serving.admitted"),
              Count("serving.completed") + Count("serving.shed") +
                  Count("serving.cancelled"));
  }

  std::shared_ptr<text::EmbeddingProvider> provider_;
  std::unique_ptr<data::Splits> splits_;
  std::unique_ptr<core::NlidbPipeline> pipeline_;
};

TEST_F(ServingStressTest, RacingSubmitsAndCancelsAllResolve) {
  serving::ServingOptions options;
  options.num_workers = 4;
  options.queue_capacity = 1024;
  serving::ServingEngine engine(*pipeline_, options);

  const int kThreads = kScale;
  const int kPerThread = 16;
  std::atomic<bool> cancel{false};
  std::atomic<int> resolved{0};
  std::vector<std::thread> clients;  // nlidb-lint: disable(raw-thread)
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        core::QueryRequest request = Request();
        // Odd submissions share a cancel flag that flips mid-run, so
        // dequeue-time cancellation races live traffic.
        if ((t + i) % 2 == 1) request.cancel = &cancel;
        serving::ServedResult served = engine.Query(std::move(request));
        // Any in-band resolution is legal under the race; what must
        // never happen is a hang (test timeout) or a crash.
        resolved.fetch_add(1, std::memory_order_relaxed);
        if (i == kPerThread / 2 && t == 0) {
          cancel.store(true, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& c : clients) c.join();
  EXPECT_EQ(resolved.load(), kThreads * kPerThread);
  engine.Shutdown();
  ExpectCountersConsistent();
  EXPECT_EQ(Count("serving.submitted"),
            static_cast<uint64_t>(kThreads * kPerThread));
}

TEST_F(ServingStressTest, ZeroWorkersQueueFillsThenDrainsOnShutdown) {
  serving::ServingOptions options;
  options.num_workers = 0;  // nothing dequeues; pure admission testing
  options.queue_capacity = 4;
  serving::ServingEngine engine(*pipeline_, options);

  std::vector<std::shared_ptr<serving::ServingEngine::Ticket>> tickets;
  for (int i = 0; i < 6; ++i) tickets.push_back(engine.Submit(Request()));

  // Capacity 4: the last two submits bounce with queue-full.
  EXPECT_EQ(Count("serving.rejected_queue_full"), 2u);
  serving::ServedResult fifth = tickets[4]->Take();
  EXPECT_EQ(fifth.status.code(), StatusCode::kUnavailable);
  EXPECT_EQ(fifth.status.message(), "serving queue is full");

  // Shutdown must drain the four queued requests as cancelled, in-band.
  engine.Shutdown();
  for (int i = 0; i < 4; ++i) {
    serving::ServedResult drained = tickets[i]->Take();
    EXPECT_EQ(drained.status.code(), StatusCode::kUnavailable) << i;
    EXPECT_EQ(drained.status.message(),
              "serving engine shut down with request queued")
        << i;
  }
  EXPECT_EQ(Count("serving.cancelled"), 4u);
  EXPECT_EQ(Count("serving.completed"), 0u);
  ExpectCountersConsistent();
}

TEST_F(ServingStressTest, SubmitAfterShutdownRejectsInBand) {
  serving::ServingEngine engine(*pipeline_, serving::ServingOptions());
  engine.Shutdown();
  serving::ServedResult served = engine.Query(Request());
  EXPECT_EQ(served.status.code(), StatusCode::kUnavailable);
  EXPECT_EQ(served.status.message(), "serving engine is shut down");
  EXPECT_EQ(Count("serving.rejected_shutdown"), 1u);
  ExpectCountersConsistent();
}

TEST_F(ServingStressTest, ShutdownMidFlightResolvesEveryTicket) {
  serving::ServingOptions options;
  options.num_workers = 2;
  options.queue_capacity = 1024;
  auto engine =
      std::make_unique<serving::ServingEngine>(*pipeline_, options);

  const int kInFlight = 32 * kScale;
  std::vector<std::shared_ptr<serving::ServingEngine::Ticket>> tickets;
  for (int i = 0; i < kInFlight; ++i) {
    tickets.push_back(engine->Submit(Request()));
  }
  // Shut down while workers are still chewing through the queue; some
  // requests complete, the rest drain — every ticket must resolve.
  engine->Shutdown();
  for (auto& ticket : tickets) {
    const Status status = ticket->Take().status;
    EXPECT_TRUE(status.ok() ||
                status.code() == StatusCode::kUnavailable ||
                status.code() == StatusCode::kFailedPrecondition)
        << status.message();
  }
  engine.reset();  // destructor path: second Shutdown is a no-op
  ExpectCountersConsistent();
}

TEST_F(ServingStressTest, ConcurrentShutdownIsIdempotent) {
  serving::ServingOptions options;
  options.num_workers = 2;
  serving::ServingEngine engine(*pipeline_, options);
  for (int i = 0; i < 8; ++i) engine.Submit(Request());

  std::vector<std::thread> shutters;  // nlidb-lint: disable(raw-thread)
  for (int i = 0; i < 4; ++i) {
    shutters.emplace_back([&engine] { engine.Shutdown(); });
  }
  for (auto& s : shutters) s.join();
  ExpectCountersConsistent();
}

TEST_F(ServingStressTest, ExpiredDeadlineShedsAtAdmission) {
  serving::ServingOptions options;
  options.num_workers = 1;
  serving::ServingEngine engine(*pipeline_, options);

  core::QueryRequest request = Request();
  request.deadline = Deadline::AfterNanos(1);
  std::this_thread::sleep_for(std::chrono::milliseconds(1));
  serving::ServedResult served = engine.Query(std::move(request));
  EXPECT_EQ(served.status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(served.status.message(),
            "request shed at admission: deadline cannot be met");
  EXPECT_EQ(Count("serving.shed"), 1u);
  EXPECT_EQ(Count("serving.deadline_misses"), 1u);
  engine.Shutdown();
  ExpectCountersConsistent();
}

TEST_F(ServingStressTest, TightDeadlinesUnderLoadStayInBand) {
  serving::ServingOptions options;
  options.num_workers = 1;
  options.queue_capacity = 1024;
  serving::ServingEngine engine(*pipeline_, options);

  // One worker, a burst of short-deadline requests: some get served,
  // stragglers expire while queued and must be shed at dequeue — all
  // in-band, never a crash or a stuck ticket.
  const int kBurst = 16 * kScale;
  std::vector<std::shared_ptr<serving::ServingEngine::Ticket>> tickets;
  for (int i = 0; i < kBurst; ++i) {
    core::QueryRequest request = Request();
    request.deadline = Deadline::AfterMillis(2);
    tickets.push_back(engine.Submit(std::move(request)));
  }
  for (auto& ticket : tickets) {
    const Status status = ticket->Take().status;
    EXPECT_TRUE(status.ok() ||
                status.code() == StatusCode::kDeadlineExceeded ||
                status.code() == StatusCode::kFailedPrecondition)
        << status.message();
  }
  engine.Shutdown();
  ExpectCountersConsistent();
}

// Runs last: when the suite executes with NLIDB_DEADLOCK=on (the
// serving_stress_lockdep ctest entry and the TSan/fault CI legs), the
// whole battery above fed the lock-order graph — serving.queue,
// serving.batch, serving.ticket, pool.*, metrics.registry — and none of
// it may have produced an order-inversion report. Guards against
// detector false positives on the real locking discipline as much as
// against real inversions sneaking into serving.
TEST(ServingLockDiscipline, NoInversionReportsAcrossSuite) {
  if (!lockdep::Enabled()) {
    GTEST_SKIP() << "lock-discipline analyzer disabled";
  }
  for (const lockdep::Report& r : lockdep::Reports()) {
    EXPECT_NE(r.kind, lockdep::Report::Kind::kOrderInversion)
        << r.message << "\n" << r.cycle << "\n" << r.first_stack << "\n"
        << r.second_stack;
  }
}

}  // namespace
}  // namespace nlidb
