// Serving bitwise-equivalence battery (DESIGN.md §13): a query served
// through the ServingEngine — admission queue, worker pool, cross-
// request batched decoding — must return exactly what a sequential
// `pipeline.Query()` call returns: same annotated question and SQL
// tokens, same translate_score float BITS, same statuses and degraded
// flags, same executed rows. Swept over concurrent client counts
// {1, 4, 32}, every DecodeMode, batching on/off, and (at the
// FastDecodeState level) mixed beam widths {1, 4} sharing one tick.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "common/workspace.h"
#include "core/pipeline.h"
#include "core/seq2seq.h"
#include "core/seq2seq_fast.h"
#include "data/generator.h"
#include "serving/serving.h"

namespace nlidb {
namespace {

uint32_t FloatBits(float f) {
  uint32_t bits = 0;
  std::memcpy(&bits, &f, sizeof(bits));
  return bits;
}

class ServingEquivalenceTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    provider_ = new std::shared_ptr<text::EmbeddingProvider>(
        std::make_shared<text::EmbeddingProvider>());
    data::RegisterDomainClusters(**provider_);

    data::GeneratorConfig gc;
    gc.num_tables = 8;
    gc.questions_per_table = 4;
    gc.seed = 1234;
    splits_ = new data::Splits(data::GenerateWikiSqlSplits(gc));

    core::ModelConfig config = core::ModelConfig::Tiny();
    config.word_dim = (*provider_)->dim();
    config.classifier_epochs = 2;
    config.value_epochs = 2;
    config.seq2seq_epochs = 3;
    pipeline_ = new core::NlidbPipeline(config, *provider_);
    pipeline_->Train(splits_->train);
  }

  static void TearDownTestSuite() {
    delete pipeline_;
    delete splits_;
    delete provider_;
  }

  /// The held-out examples the sweeps cycle through.
  static std::vector<const data::Example*> Corpus(size_t limit) {
    std::vector<const data::Example*> out;
    for (const data::Example& ex : splits_->test.examples) {
      out.push_back(&ex);
      if (out.size() >= limit) break;
    }
    return out;
  }

  static core::QueryRequest RequestFor(const data::Example& ex) {
    core::QueryRequest request;
    request.schema_ref = core::SchemaRef::Table(ex.table.get());
    request.tokens = ex.tokens;
    return request;
  }

  /// Asserts `served` equals the sequential `expected` result bit for
  /// bit in every caller-visible field.
  static void ExpectSame(const serving::ServedResult& served,
                         const StatusOr<core::QueryResult>& expected,
                         const std::string& label) {
    ASSERT_EQ(served.status.ok(), expected.ok()) << label;
    if (!expected.ok()) {
      EXPECT_EQ(served.status.code(), expected.status().code()) << label;
      EXPECT_EQ(served.status.message(), expected.status().message()) << label;
      return;
    }
    const core::QueryResult& a = served.result;
    const core::QueryResult& b = expected.value();
    EXPECT_EQ(a.tokens, b.tokens) << label;
    EXPECT_EQ(a.annotated_question, b.annotated_question) << label;
    EXPECT_EQ(a.annotated_sql, b.annotated_sql) << label;
    EXPECT_EQ(FloatBits(a.translate_score), FloatBits(b.translate_score))
        << label;
    EXPECT_EQ(a.degraded_linear_resolution, b.degraded_linear_resolution)
        << label;
    EXPECT_EQ(a.degraded_greedy_decode, b.degraded_greedy_decode) << label;
    EXPECT_EQ(a.recovery_status.code(), b.recovery_status.code()) << label;
    EXPECT_EQ(a.execution_status.code(), b.execution_status.code()) << label;
    EXPECT_EQ(a.rows.has_value(), b.rows.has_value()) << label;
    if (a.rows.has_value() && b.rows.has_value()) {
      EXPECT_EQ(*a.rows, *b.rows) << label;
    }
  }

  static std::shared_ptr<text::EmbeddingProvider>* provider_;
  static data::Splits* splits_;
  static core::NlidbPipeline* pipeline_;
};

std::shared_ptr<text::EmbeddingProvider>* ServingEquivalenceTest::provider_ =
    nullptr;
data::Splits* ServingEquivalenceTest::splits_ = nullptr;
core::NlidbPipeline* ServingEquivalenceTest::pipeline_ = nullptr;

/// Pins the pipeline's decode mode for one scope, restoring on exit.
class ScopedDecodeMode {
 public:
  ScopedDecodeMode(core::NlidbPipeline* pipeline, core::DecodeMode mode)
      : translator_(pipeline->MutableForTraining().translator),
        saved_(translator_->decode_mode()) {
    translator_->set_decode_mode(mode);
  }
  ~ScopedDecodeMode() { translator_->set_decode_mode(saved_); }

 private:
  core::Seq2SeqTranslator* translator_;
  core::DecodeMode saved_;
};

const char* ModeName(core::DecodeMode mode) {
  switch (mode) {
    case core::DecodeMode::kReference: return "reference";
    case core::DecodeMode::kReferenceMasked: return "reference_masked";
    case core::DecodeMode::kFastUnmasked: return "fast_unmasked";
    case core::DecodeMode::kFast: return "fast";
  }
  return "?";
}

TEST_F(ServingEquivalenceTest, EngineMatchesSequentialAcrossClientsAndModes) {
  const std::vector<const data::Example*> corpus = Corpus(8);
  ASSERT_FALSE(corpus.empty());
  for (const core::DecodeMode mode :
       {core::DecodeMode::kFast, core::DecodeMode::kFastUnmasked,
        core::DecodeMode::kReference, core::DecodeMode::kReferenceMasked}) {
    ScopedDecodeMode pin(pipeline_, mode);
    std::vector<StatusOr<core::QueryResult>> sequential;
    for (const data::Example* ex : corpus) {
      sequential.push_back(pipeline_->Query(RequestFor(*ex)));
    }
    for (const int clients : {1, 4, 32}) {
      serving::ServingOptions options;
      options.num_workers = 4;
      options.max_batch = 8;
      options.cross_request_batching = true;
      serving::ServingEngine engine(*pipeline_, options);
      std::vector<std::shared_ptr<serving::ServingEngine::Ticket>> tickets;
      for (int i = 0; i < clients; ++i) {
        tickets.push_back(
            engine.Submit(RequestFor(*corpus[i % corpus.size()])));
      }
      for (int i = 0; i < clients; ++i) {
        ExpectSame(tickets[i]->Take(), sequential[i % corpus.size()],
                   std::string(ModeName(mode)) + " clients=" +
                       std::to_string(clients) + " i=" + std::to_string(i));
      }
    }
  }
}

TEST_F(ServingEquivalenceTest, BatchingDisabledAlsoMatchesSequential) {
  const std::vector<const data::Example*> corpus = Corpus(8);
  ASSERT_FALSE(corpus.empty());
  std::vector<StatusOr<core::QueryResult>> sequential;
  for (const data::Example* ex : corpus) {
    sequential.push_back(pipeline_->Query(RequestFor(*ex)));
  }
  serving::ServingOptions options;
  options.num_workers = 4;
  options.cross_request_batching = false;
  serving::ServingEngine engine(*pipeline_, options);
  std::vector<std::shared_ptr<serving::ServingEngine::Ticket>> tickets;
  for (size_t i = 0; i < 2 * corpus.size(); ++i) {
    tickets.push_back(engine.Submit(RequestFor(*corpus[i % corpus.size()])));
  }
  for (size_t i = 0; i < tickets.size(); ++i) {
    ExpectSame(tickets[i]->Take(), sequential[i % corpus.size()],
               "nobatch i=" + std::to_string(i));
  }
}

// Mixed beam widths in ONE gate-GEMM tick: a beam-1 query and a beam-4
// query advance together through the shared [ΣB, 3H] GEMMs, and each
// must reproduce its sequential DecodeWithBeamWidth answer bit for bit.
// This drives the FastDecodeState staging protocol directly — the same
// calls BatchedDecoder::RunTick makes — because the engine itself
// always decodes at the configured beam width.
TEST_F(ServingEquivalenceTest, MixedBeamWidthsShareTicksBitwise) {
  const std::vector<const data::Example*> corpus = Corpus(4);
  ASSERT_GE(corpus.size(), 2u);
  const core::Seq2SeqTranslator& translator = pipeline_->translator();
  ScopedDecodeMode pin(pipeline_, core::DecodeMode::kFast);
  const bool mask = core::FastDecodeState::WantsMask(
      translator, core::DecodeMode::kFast);

  // Sequential answers straight from the translator entry point.
  std::vector<std::vector<std::string>> sources;
  for (const data::Example* ex : corpus) {
    StatusOr<core::QueryResult> r = pipeline_->Query(RequestFor(*ex));
    ASSERT_TRUE(r.ok());
    sources.push_back(r->annotated_question);
  }

  const int beams[2] = {1, 4};
  for (size_t first = 0; first + 1 < sources.size(); ++first) {
    StatusOr<core::Seq2SeqTranslator::Decoded> seq[2] = {
        translator.DecodeWithBeamWidth(sources[first], beams[0]),
        translator.DecodeWithBeamWidth(sources[first + 1], beams[1])};

    Workspace& ws = Workspace::ThreadLocal();
    Workspace::Scope scope(ws);
    core::FastDecodeState a(translator, sources[first], beams[0], mask, ws);
    core::FastDecodeState b(translator, sources[first + 1], beams[1], mask,
                            ws);
    ASSERT_TRUE(a.Admit().ok());
    ASSERT_TRUE(b.Admit().ok());
    a.BuildEncoderCache();
    b.BuildEncoderCache();

    StatusOr<core::FastDecodeState::Result> batched[2] = {
        Status::Internal("unfinished"), Status::Internal("unfinished")};
    core::FastDecodeState* states[2] = {&a, &b};
    bool finished[2] = {false, false};
    while (!finished[0] || !finished[1]) {
      std::vector<core::FastDecodeState*> active;
      for (int i = 0; i < 2; ++i) {
        if (finished[i]) continue;
        ASSERT_TRUE(states[i]->BeginStep(nullptr).ok());
        if (states[i]->done()) {
          batched[i] = states[i]->TakeResult();
          finished[i] = true;
        } else {
          active.push_back(states[i]);
        }
      }
      if (active.empty()) continue;
      Workspace::Scope tick(ws);
      const int xin = active[0]->x_width();
      const int h2 = active[0]->h_width();
      int total = 0;
      for (core::FastDecodeState* s : active) total += s->frontier_rows();
      float* x = ws.Floats(static_cast<size_t>(total) * xin);
      float* d_gather = ws.Floats(static_cast<size_t>(total) * h2);
      float* gi = ws.Floats(static_cast<size_t>(total) * 3 * h2);
      float* gh = ws.Floats(static_cast<size_t>(total) * 3 * h2);
      int offset = 0;
      for (core::FastDecodeState* s : active) {
        s->StageFrontier(x + static_cast<size_t>(offset) * xin,
                         d_gather + static_cast<size_t>(offset) * h2);
        offset += s->frontier_rows();
      }
      core::FastDecodeState::ComputeGates(translator, x, d_gather, total, gi,
                                          gh);
      offset = 0;
      for (core::FastDecodeState* s : active) {
        s->FinishStep(gi + static_cast<size_t>(offset) * 3 * h2,
                      gh + static_cast<size_t>(offset) * 3 * h2,
                      d_gather + static_cast<size_t>(offset) * h2);
        offset += s->frontier_rows();
      }
    }

    for (int i = 0; i < 2; ++i) {
      const std::string label = "pair=" + std::to_string(first) +
                                " beam=" + std::to_string(beams[i]);
      ASSERT_EQ(batched[i].ok(), seq[i].ok()) << label;
      if (!seq[i].ok()) continue;
      EXPECT_EQ(batched[i]->tokens, seq[i]->tokens) << label;
      EXPECT_EQ(FloatBits(batched[i]->score), FloatBits(seq[i]->score))
          << label;
    }
  }
}

}  // namespace
}  // namespace nlidb
