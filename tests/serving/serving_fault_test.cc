// Serving fault-injection suite: failpoints and schedule perturbation
// against the ServingEngine. Demonstrates that under injected beam
// exhaustion, injected decode delays, racing cancels and expired
// deadlines, the engine never aborts — every fault surfaces in-band
// (shed / degraded / Status) — and the serving.* counters stay
// consistent:
//   serving.submitted == admitted + rejected_queue_full
//                        + rejected_shutdown
//   serving.admitted  == completed + shed + cancelled
//
// Like failpoint_test, this suite manages failpoints explicitly and
// starts from a clean registry so its exact-count assertions hold under
// the randomized-delay CI leg with any seed. (That leg's random-delay
// schedule still soaks the OTHER serving binaries — the equivalence and
// stress suites do not deactivate it.)

#include "common/failpoint.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
// Raw threads so submitters can block in Take() without starving the
// shared compute pool.
#include <thread>
#include <vector>

#include "common/deadline.h"
#include "common/metrics.h"
#include "common/rng.h"
#include "core/pipeline.h"
#include "data/generator.h"
#include "serving/serving.h"

namespace nlidb {
namespace {

#if defined(NLIDB_SANITIZER_BUILD)
constexpr int kScale = 2;
#else
constexpr int kScale = 8;
#endif

class CleanFailpointEnv : public ::testing::Environment {
 public:
  void SetUp() override {
    failpoint::InitFromEnv();
    failpoint::DeactivateAll();
  }
};
const auto* const kCleanEnv =
    ::testing::AddGlobalTestEnvironment(new CleanFailpointEnv);

class ServingFaultTest : public ::testing::Test {
 protected:
  void SetUp() override {
    metrics::MetricsRegistry::Global().ResetAll();
    provider_ = std::make_shared<text::EmbeddingProvider>();
    data::RegisterDomainClusters(*provider_);
    data::GeneratorConfig gc;
    gc.num_tables = 2;
    gc.questions_per_table = 2;
    gc.seed = 55;
    splits_ = std::make_unique<data::Splits>(data::GenerateWikiSqlSplits(gc));
    core::ModelConfig config = core::ModelConfig::Tiny();
    config.word_dim = provider_->dim();
    pipeline_ = std::make_unique<core::NlidbPipeline>(config, provider_);
  }

  void TearDown() override { failpoint::DeactivateAll(); }

  core::QueryRequest Request() const {
    const data::Example& ex = splits_->train.examples.front();
    core::QueryRequest request;
    request.schema_ref = core::SchemaRef::Table(ex.table.get());
    request.tokens = ex.tokens;
    return request;
  }

  static uint64_t Count(const char* name) {
    return metrics::MetricsRegistry::Global().GetCounter(name).Value();
  }

  static void ExpectCountersConsistent() {
    EXPECT_EQ(Count("serving.submitted"),
              Count("serving.admitted") + Count("serving.rejected_queue_full") +
                  Count("serving.rejected_shutdown"));
    EXPECT_EQ(Count("serving.admitted"),
              Count("serving.completed") + Count("serving.shed") +
                  Count("serving.cancelled"));
  }

  std::shared_ptr<text::EmbeddingProvider> provider_;
  std::unique_ptr<data::Splits> splits_;
  std::unique_ptr<core::NlidbPipeline> pipeline_;
};

TEST_F(ServingFaultTest, BeamExhaustionDegradesInBandThroughEngine) {
  ASSERT_GT(pipeline_->config().beam_width, 1);
  failpoint::ScopedFailpoint fp("seq2seq/beam_exhausted", "error");

  for (const bool batching : {true, false}) {
    serving::ServingOptions options;
    options.num_workers = 2;
    options.cross_request_batching = batching;
    serving::ServingEngine engine(*pipeline_, options);
    const uint64_t fallbacks_before = Count("seq2seq.greedy_fallbacks");
    std::vector<std::shared_ptr<serving::ServingEngine::Ticket>> tickets;
    for (int i = 0; i < 4; ++i) tickets.push_back(engine.Submit(Request()));
    for (auto& ticket : tickets) {
      serving::ServedResult served = ticket->Take();
      // Exhausted beams degrade to greedy decode — an answer, flagged,
      // never an error out of the engine.
      ASSERT_TRUE(served.status.ok())
          << "batching=" << batching << ": " << served.status.message();
      EXPECT_TRUE(served.result.degraded_greedy_decode)
          << "batching=" << batching;
    }
    EXPECT_GE(Count("seq2seq.greedy_fallbacks"), fallbacks_before + 4)
        << "batching=" << batching;
    EXPECT_GE(Count("failpoint.seq2seq/beam_exhausted"), 4u);
    engine.Shutdown();
  }
  ExpectCountersConsistent();
}

TEST_F(ServingFaultTest, DelaySoakWithRacingCancelsStaysInBand) {
  // Perturb the decode schedule at the admission site (every beamed
  // decode hits it) while submitters race cancels and tight deadlines:
  // the serving analogue of the CI random-delay leg, with the injected
  // delay pinned so the test is seed-independent.
  ASSERT_TRUE(
      failpoint::Activate("seq2seq/beam_exhausted", "delay:1").ok());

  serving::ServingOptions options;
  options.num_workers = 4;
  options.queue_capacity = 1024;
  serving::ServingEngine engine(*pipeline_, options);

  const int kThreads = kScale;
  const int kPerThread = 12;
  std::atomic<bool> cancel{false};
  std::atomic<int> in_band{0};
  std::vector<std::thread> clients;  // nlidb-lint: disable(raw-thread)
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, t] {
      Rng rng(900 + static_cast<uint64_t>(t));
      for (int i = 0; i < kPerThread; ++i) {
        core::QueryRequest request = Request();
        const float roll = rng.NextFloat();
        if (roll < 0.25f) {
          request.deadline = Deadline::AfterMillis(1 + (i % 3));
        } else if (roll < 0.5f) {
          request.cancel = &cancel;
        }
        serving::ServedResult served = engine.Query(std::move(request));
        const StatusCode code = served.status.code();
        if (served.status.ok() || code == StatusCode::kDeadlineExceeded ||
            code == StatusCode::kUnavailable) {
          in_band.fetch_add(1, std::memory_order_relaxed);
        } else {
          ADD_FAILURE() << "out-of-band status: " << served.status.message();
        }
        if (t == 0 && i == kPerThread / 2) {
          cancel.store(true, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& c : clients) c.join();
  engine.Shutdown();

  EXPECT_EQ(in_band.load(), kThreads * kPerThread);
  EXPECT_GT(Count("failpoint.seq2seq/beam_exhausted"), 0u);
  ExpectCountersConsistent();
}

TEST_F(ServingFaultTest, CountersDecomposeExactlyOverMixedOutcomes) {
  serving::ServingOptions options;
  options.num_workers = 0;  // manual control over every outcome class
  options.queue_capacity = 3;
  auto engine =
      std::make_unique<serving::ServingEngine>(*pipeline_, options);

  // One shed at admission (expired deadline).
  core::QueryRequest expired = Request();
  expired.deadline = Deadline::AfterNanos(1);
  std::this_thread::sleep_for(std::chrono::milliseconds(1));
  EXPECT_EQ(engine->Query(std::move(expired)).status.code(),
            StatusCode::kDeadlineExceeded);

  // Three queued, one bounced off the full queue.
  std::vector<std::shared_ptr<serving::ServingEngine::Ticket>> queued;
  for (int i = 0; i < 3; ++i) queued.push_back(engine->Submit(Request()));
  EXPECT_EQ(engine->Query(Request()).status.code(), StatusCode::kUnavailable);

  // Shutdown drains the three as cancelled; one more bounces off the
  // shut-down engine.
  engine->Shutdown();
  for (auto& ticket : queued) {
    EXPECT_EQ(ticket->Take().status.code(), StatusCode::kUnavailable);
  }
  EXPECT_EQ(engine->Query(Request()).status.code(), StatusCode::kUnavailable);
  engine.reset();

  EXPECT_EQ(Count("serving.submitted"), 6u);
  EXPECT_EQ(Count("serving.admitted"), 4u);  // 1 shed + 3 queued
  EXPECT_EQ(Count("serving.rejected_queue_full"), 1u);
  EXPECT_EQ(Count("serving.rejected_shutdown"), 1u);
  EXPECT_EQ(Count("serving.completed"), 0u);
  EXPECT_EQ(Count("serving.shed"), 1u);
  EXPECT_EQ(Count("serving.cancelled"), 3u);
  EXPECT_EQ(Count("serving.deadline_misses"), 1u);
  ExpectCountersConsistent();
}

}  // namespace
}  // namespace nlidb
