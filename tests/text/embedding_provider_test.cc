#include "text/embedding_provider.h"

#include <gtest/gtest.h>
#include <cmath>

#include "data/domain.h"

namespace nlidb {
namespace text {
namespace {

TEST(EmbeddingProviderTest, DeterministicAcrossInstances) {
  EmbeddingProvider a(32, 7), b(32, 7);
  EXPECT_EQ(a.Vector("director"), b.Vector("director"));
}

TEST(EmbeddingProviderTest, DifferentSeedsGiveDifferentSpaces) {
  EmbeddingProvider a(32, 7), b(32, 8);
  EXPECT_NE(a.Vector("director"), b.Vector("director"));
}

TEST(EmbeddingProviderTest, UnitNormVectors) {
  EmbeddingProvider p(48);
  float n = 0.0f;
  for (float x : p.Vector("anything")) n += x * x;
  EXPECT_NEAR(n, 1.0f, 1e-4f);
}

TEST(EmbeddingProviderTest, ClusterMembersAreClose) {
  EmbeddingProvider p(48);
  p.AddCluster("film", {"film", "movie", "picture"});
  const float related = p.WordSimilarity("film", "movie");
  const float unrelated = p.WordSimilarity("film", "penguin");
  EXPECT_GT(related, 0.75f);
  EXPECT_LT(unrelated, 0.4f);
  EXPECT_GT(related, unrelated + 0.3f);
}

TEST(EmbeddingProviderTest, MultiClusterMembership) {
  EmbeddingProvider p(48);
  p.AddCluster("a", {"shared", "aa"});
  p.AddCluster("b", {"shared", "bb"});
  // "shared" sits between both clusters: similar to members of each.
  EXPECT_GT(p.WordSimilarity("shared", "aa"), 0.4f);
  EXPECT_GT(p.WordSimilarity("shared", "bb"), 0.4f);
}

TEST(EmbeddingProviderTest, NumbersClusterTogether) {
  EmbeddingProvider p(48);
  const float close_mag = p.WordSimilarity("1225", "4100");  // same magnitude
  const float far_mag = p.WordSimilarity("1225", "3");
  const float num_vs_word = p.WordSimilarity("1225", "giraffe");
  EXPECT_GT(close_mag, far_mag);
  EXPECT_GT(far_mag, num_vs_word);
  EXPECT_GT(close_mag, 0.7f);
}

TEST(EmbeddingProviderTest, PhraseVectorIsMeanOfWords) {
  EmbeddingProvider p(8);
  auto a = p.Vector("alpha");
  auto b = p.Vector("beta");
  auto phrase = p.PhraseVector({"alpha", "beta"});
  for (int j = 0; j < 8; ++j) {
    EXPECT_NEAR(phrase[j], 0.5f * (a[j] + b[j]), 1e-5f);
  }
  EXPECT_EQ(p.PhraseVector({}), std::vector<float>(8, 0.0f));
}

TEST(EmbeddingProviderTest, CosineAndL2Basics) {
  std::vector<float> x = {1, 0}, y = {0, 1}, z = {2, 0};
  EXPECT_NEAR(EmbeddingProvider::Cosine(x, y), 0.0f, 1e-6f);
  EXPECT_NEAR(EmbeddingProvider::Cosine(x, z), 1.0f, 1e-6f);
  EXPECT_NEAR(EmbeddingProvider::L2Distance(x, y), std::sqrt(2.0f), 1e-5f);
  std::vector<float> zero = {0, 0};
  EXPECT_EQ(EmbeddingProvider::Cosine(x, zero), 0.0f);
}

TEST(DefaultLexiconTest, CoversQuestionWordBridges) {
  EmbeddingProvider p(48);
  p.AddClusters(DefaultLexicon());
  // "when" should be close to "date"; "population" close to "live".
  EXPECT_GT(p.WordSimilarity("when", "date"), 0.6f);
  EXPECT_GT(p.WordSimilarity("population", "live"), 0.6f);
  EXPECT_GT(p.WordSimilarity("directed", "director"), 0.6f);
  EXPECT_GT(p.WordSimilarity("golfer", "athlete"), 0.6f);
  // Medal colors must stay separable.
  EXPECT_LT(p.WordSimilarity("gold", "bronze"), 0.75f);
}

TEST(DomainClustersTest, ValuePoolsBecomeClusters) {
  EmbeddingProvider p(48);
  data::RegisterDomainClusters(p);
  // Two first names should be close; a first name and a cuisine far.
  EXPECT_GT(p.WordSimilarity("piotr", "sofia"), 0.6f);
  EXPECT_LT(p.WordSimilarity("piotr", "thai"), 0.5f);
}

}  // namespace
}  // namespace text
}  // namespace nlidb
