#include "text/distance.h"

#include <gtest/gtest.h>

#include "text/stopwords.h"

namespace nlidb {
namespace text {
namespace {

TEST(EditDistanceTest, KnownValues) {
  EXPECT_EQ(EditDistance("", ""), 0);
  EXPECT_EQ(EditDistance("abc", ""), 3);
  EXPECT_EQ(EditDistance("", "ab"), 2);
  EXPECT_EQ(EditDistance("kitten", "sitting"), 3);
  EXPECT_EQ(EditDistance("actor", "actress"), 4);
  EXPECT_EQ(EditDistance("same", "same"), 0);
}

TEST(EditDistanceTest, Symmetric) {
  EXPECT_EQ(EditDistance("director", "directed"),
            EditDistance("directed", "director"));
}

TEST(EditSimilarityTest, Range) {
  EXPECT_FLOAT_EQ(EditSimilarity("abc", "abc"), 1.0f);
  EXPECT_FLOAT_EQ(EditSimilarity("", ""), 1.0f);
  EXPECT_FLOAT_EQ(EditSimilarity("abc", "xyz"), 0.0f);
  // "best actor 2011" vs "best actress of year 2011" style fuzziness.
  EXPECT_GT(EditSimilarity("best actor 2011", "best actor in 2011"), 0.7f);
}

TEST(SemanticDistanceTest, SynonymsCloserThanStrangers) {
  EmbeddingProvider p(48);
  p.AddCluster("actor", {"actor", "actress", "star"});
  EXPECT_LT(SemanticDistance(p, "actor", "actress"),
            SemanticDistance(p, "actor", "hammer"));
}

TEST(PhraseDistanceTest, ParaphraseCloserThanUnrelated) {
  EmbeddingProvider p(48);
  p.AddCluster("population",
               {"population", "people", "live", "inhabitants"});
  const std::vector<std::string> column = {"population"};
  const std::vector<std::string> paraphrase = {"people", "live"};
  const std::vector<std::string> unrelated = {"banana", "bread"};
  EXPECT_LT(PhraseSemanticDistance(p, column, paraphrase),
            PhraseSemanticDistance(p, column, unrelated));
  EXPECT_GT(PhraseCosine(p, column, paraphrase),
            PhraseCosine(p, column, unrelated));
}

TEST(StopWordsTest, FunctionWordsAreStops) {
  for (const char* w : {"the", "a", "of", "in", "did", "who", "how", "many",
                        "?", "more", "than", "fewer"}) {
    EXPECT_TRUE(IsStopWord(w)) << w;
  }
}

TEST(StopWordsTest, ContentWordsAreNot) {
  for (const char* w : {"film", "director", "mayo", "1225", "population",
                        "total", "gold"}) {
    EXPECT_FALSE(IsStopWord(w)) << w;
  }
}

}  // namespace
}  // namespace text
}  // namespace nlidb
