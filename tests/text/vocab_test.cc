#include "text/vocab.h"

#include <gtest/gtest.h>

namespace nlidb {
namespace text {
namespace {

TEST(VocabTest, SpecialTokensPreRegistered) {
  Vocab v;
  EXPECT_EQ(v.size(), 4);
  EXPECT_EQ(v.GetId("<pad>"), Vocab::kPad);
  EXPECT_EQ(v.GetId("<unk>"), Vocab::kUnk);
  EXPECT_EQ(v.GetId("<s>"), Vocab::kBos);
  EXPECT_EQ(v.GetId("</s>"), Vocab::kEos);
}

TEST(VocabTest, AddAndLookup) {
  Vocab v;
  const int id = v.AddToken("director");
  EXPECT_EQ(v.GetId("director"), id);
  EXPECT_EQ(v.GetToken(id), "director");
  EXPECT_EQ(v.AddToken("director"), id);  // idempotent
  EXPECT_TRUE(v.Contains("director"));
  EXPECT_FALSE(v.Contains("actor"));
}

TEST(VocabTest, UnknownMapsToUnk) {
  Vocab v;
  EXPECT_EQ(v.GetId("never-seen"), Vocab::kUnk);
}

TEST(VocabTest, FrozenVocabRejectsNewTokens) {
  Vocab v;
  v.AddToken("a");
  v.Freeze();
  EXPECT_EQ(v.AddToken("b"), Vocab::kUnk);
  EXPECT_FALSE(v.Contains("b"));
  EXPECT_TRUE(v.Contains("a"));
}

TEST(VocabTest, EncodeDecodeRoundTrip) {
  Vocab v;
  for (const char* t : {"who", "won", "the", "race"}) v.AddToken(t);
  const std::vector<std::string> tokens = {"who", "won", "the", "race"};
  EXPECT_EQ(v.Decode(v.Encode(tokens)), tokens);
}

TEST(VocabTest, EncodeUnknownsAsUnk) {
  Vocab v;
  v.AddToken("known");
  auto ids = v.Encode({"known", "unknown"});
  EXPECT_EQ(ids[1], Vocab::kUnk);
}

TEST(CharVocabTest, StableIdsForAlphabet) {
  CharVocab v;
  EXPECT_EQ(v.GetId('a'), 1);
  EXPECT_EQ(v.GetId('z'), 26);
  EXPECT_EQ(v.GetId('0'), 27);
  EXPECT_EQ(v.GetId('9'), 36);
  EXPECT_GT(v.size(), 36);
}

TEST(CharVocabTest, UnknownCharsShareBucketZero) {
  CharVocab v;
  EXPECT_EQ(v.GetId('!'), 0);
  EXPECT_EQ(v.GetId('%'), 0);
}

TEST(CharVocabTest, EncodeNeverEmpty) {
  CharVocab v;
  EXPECT_EQ(v.Encode("").size(), 1u);
  EXPECT_EQ(v.Encode("ab"), (std::vector<int>{1, 2}));
}

}  // namespace
}  // namespace text
}  // namespace nlidb
