#include "text/tokenizer.h"

#include <gtest/gtest.h>

namespace nlidb {
namespace text {
namespace {

TEST(TokenizerTest, LowercasesAndSplitsPunctuation) {
  EXPECT_EQ(Tokenize("Which film did Piotr star in?"),
            (std::vector<std::string>{"which", "film", "did", "piotr", "star",
                                      "in", "?"}));
}

TEST(TokenizerTest, KeepsHyphenatedSpans) {
  auto tokens = Tokenize("toronto team in 2006-07");
  EXPECT_EQ(tokens.back(), "2006-07");
}

TEST(TokenizerTest, DropsApostrophes) {
  EXPECT_EQ(Tokenize("what's the director's name"),
            (std::vector<std::string>{"whats", "the", "directors", "name"}));
}

TEST(TokenizerTest, KeepsDecimalNumbers) {
  auto tokens = Tokenize("rated 4.5 stars");
  EXPECT_EQ(tokens[1], "4.5");
}

TEST(TokenizerTest, StripsSentenceFinalPeriod) {
  auto tokens = Tokenize("lives in mayo.");
  EXPECT_EQ(tokens.back(), "mayo");
}

TEST(TokenizerTest, EmptyAndWhitespaceOnly) {
  EXPECT_TRUE(Tokenize("").empty());
  EXPECT_TRUE(Tokenize("   \t\n ").empty());
}

TEST(TokenizerTest, CommaSeparation) {
  EXPECT_EQ(Tokenize("a, b"),
            (std::vector<std::string>{"a", ",", "b"}));
}

TEST(DetokenizeTest, JoinsWithSpaces) {
  EXPECT_EQ(Detokenize({"who", "won", "?"}), "who won ?");
}

TEST(SpanTest, BasicPredicates) {
  Span s{2, 5};
  EXPECT_EQ(s.length(), 3);
  EXPECT_FALSE(s.empty());
  EXPECT_TRUE(s.Contains(2));
  EXPECT_TRUE(s.Contains(4));
  EXPECT_FALSE(s.Contains(5));
  EXPECT_TRUE((Span{0, 3}).Overlaps(s));
  EXPECT_FALSE((Span{0, 2}).Overlaps(s));
  EXPECT_TRUE((Span{4, 9}).Overlaps(s));
  EXPECT_FALSE((Span{5, 9}).Overlaps(s));
  EXPECT_TRUE((Span{3, 3}).empty());
}

TEST(SpanTest, SpanText) {
  std::vector<std::string> tokens = {"a", "b", "c", "d"};
  EXPECT_EQ(SpanText(tokens, Span{1, 3}), "b c");
  EXPECT_EQ(SpanText(tokens, Span{0, 0}), "");
}

}  // namespace
}  // namespace text
}  // namespace nlidb
