#include "text/dependency.h"

#include <gtest/gtest.h>

#include "text/tokenizer.h"

namespace nlidb {
namespace text {
namespace {

TEST(PosTest, TagClasses) {
  EXPECT_EQ(TagToken("the"), Pos::kDet);
  EXPECT_EQ(TagToken("which"), Pos::kWh);
  EXPECT_EQ(TagToken("did"), Pos::kAux);
  EXPECT_EQ(TagToken("by"), Pos::kPrep);
  EXPECT_EQ(TagToken("directed"), Pos::kVerb);
  EXPECT_EQ(TagToken("42"), Pos::kNum);
  EXPECT_EQ(TagToken("?"), Pos::kPunct);
  EXPECT_EQ(TagToken("film"), Pos::kNoun);
}

TEST(DependencyTest, EmptyAndSingleton) {
  DependencyTree empty = DependencyTree::Parse({});
  EXPECT_EQ(empty.size(), 0);
  DependencyTree one = DependencyTree::Parse({"film"});
  EXPECT_EQ(one.size(), 1);
  EXPECT_EQ(one.root(), 0);
  EXPECT_EQ(one.Distance(0, 0), 0);
}

TEST(DependencyTest, RootIsMainVerb) {
  const auto tokens = Tokenize("which film directed by jerzy antczak");
  DependencyTree tree = DependencyTree::Parse(tokens);
  EXPECT_EQ(tree.root(), 2);  // "directed"
}

TEST(DependencyTest, HeadChainsReachRoot) {
  const auto tokens =
      Tokenize("which film directed by jerzy antczak did piotr adamczyk star in ?");
  DependencyTree tree = DependencyTree::Parse(tokens);
  for (int i = 0; i < tree.size(); ++i) {
    int cur = i;
    int steps = 0;
    while (cur != tree.root() && steps <= tree.size()) {
      cur = tree.head(cur);
      ++steps;
    }
    EXPECT_EQ(cur, tree.root()) << "token " << i << " detached";
  }
}

TEST(DependencyTest, ResolutionLocality) {
  // The paper's running example (Sec. IV-E): "Jerzy Antczak" must be
  // structurally closer to "directed" than "Piotr Adamczyk" is, and
  // "Piotr Adamczyk" closer to "star".
  const auto tokens =
      Tokenize("which film directed by jerzy antczak did piotr adamczyk star in ?");
  // indices: which0 film1 directed2 by3 jerzy4 antczak5 did6 piotr7
  //          adamczyk8 star9 in10 ?11
  DependencyTree tree = DependencyTree::Parse(tokens);
  const Span directed_by{2, 4}, star{9, 10};
  const Span jerzy{4, 6}, piotr{7, 9};
  EXPECT_LT(tree.SpanDistance(jerzy, directed_by),
            tree.SpanDistance(piotr, directed_by));
  EXPECT_LT(tree.SpanDistance(piotr, star), tree.SpanDistance(jerzy, star));
}

TEST(DependencyTest, DistanceIsMetricLike) {
  const auto tokens = Tokenize("who won the race on june 23 ?");
  DependencyTree tree = DependencyTree::Parse(tokens);
  for (int i = 0; i < tree.size(); ++i) {
    EXPECT_EQ(tree.Distance(i, i), 0);
    for (int j = 0; j < tree.size(); ++j) {
      EXPECT_EQ(tree.Distance(i, j), tree.Distance(j, i));
      if (i != j) {
        EXPECT_GT(tree.Distance(i, j), 0);
      }
    }
  }
}

TEST(DependencyTest, NounCompoundChains) {
  const auto tokens = Tokenize("the winning driver barack popov");
  DependencyTree tree = DependencyTree::Parse(tokens);
  // Adjacent members of the noun compound should be 1 edge apart.
  EXPECT_LE(tree.Distance(3, 4), 2);
}

TEST(DependencyTest, SpanDistanceIsMinPairwise) {
  const auto tokens = Tokenize("a b c d e");
  DependencyTree tree = DependencyTree::Parse(tokens);
  const Span left{0, 2}, right{3, 5};
  int expected = 1 << 20;
  for (int i = 0; i < 2; ++i) {
    for (int j = 3; j < 5; ++j) {
      expected = std::min(expected, tree.Distance(i, j));
    }
  }
  EXPECT_EQ(tree.SpanDistance(left, right), expected);
}

}  // namespace
}  // namespace text
}  // namespace nlidb
