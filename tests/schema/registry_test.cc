#include "schema/registry.h"

#include <gtest/gtest.h>

#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "common/file_io.h"
#include "common/metrics.h"
#include "common/thread_pool.h"
#include "sql/value.h"

namespace nlidb {
namespace schema {
namespace {

std::shared_ptr<text::EmbeddingProvider> Provider() {
  return std::make_shared<text::EmbeddingProvider>(32);
}

sql::Table FilmTable(const std::string& name = "films") {
  sql::Schema schema({{"film_name", sql::DataType::kText},
                      {"director", sql::DataType::kText}});
  sql::Table t(name, schema);
  EXPECT_TRUE(t.AddRow({sql::Value::Text("winter echo"),
                        sql::Value::Text("sofia garcia")})
                  .ok());
  return t;
}

sql::Table CountyTable() {
  sql::Schema schema({{"county", sql::DataType::kText},
                      {"population", sql::DataType::kReal}});
  sql::Table t("counties", schema);
  EXPECT_TRUE(
      t.AddRow({sql::Value::Text("mayo"), sql::Value::Real(130507)}).ok());
  return t;
}

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

void ExpectStatsEqual(const std::vector<sql::ColumnStatistics>& a,
                      const std::vector<sql::ColumnStatistics>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t c = 0; c < a.size(); ++c) {
    EXPECT_EQ(a[c].column_name, b[c].column_name);
    EXPECT_EQ(a[c].type, b[c].type);
    EXPECT_EQ(a[c].distinct_count, b[c].distinct_count);
    EXPECT_EQ(a[c].avg_tokens_per_cell, b[c].avg_tokens_per_cell);
    EXPECT_EQ(a[c].min_value, b[c].min_value);
    EXPECT_EQ(a[c].max_value, b[c].max_value);
    EXPECT_EQ(a[c].mean_value, b[c].mean_value);
    EXPECT_EQ(a[c].embedding, b[c].embedding);
  }
}

TEST(SchemaRegistryTest, StatsAreContentKeyed) {
  SchemaRegistry registry(Provider());
  sql::Table t = FilmTable();
  const TableStatsEntry& e1 = registry.EntryFor(t);
  EXPECT_EQ(&e1, &registry.EntryFor(t));
  // An identical table elsewhere in memory — even under another name —
  // shares the entry; different content does not.
  sql::Table copy = FilmTable("films_mirror");
  EXPECT_EQ(&registry.EntryFor(copy), &e1);
  sql::Table other = CountyTable();
  EXPECT_NE(&registry.EntryFor(other), &e1);
}

TEST(SchemaRegistryTest, MutatedTableGetsFreshStats) {
  // Regression for the address-keyed TableStatsCache bug: statistics
  // must never silently diverge from the table content they describe.
  SchemaRegistry registry(Provider());
  sql::Table t = FilmTable();
  const TableStatsEntry& before = registry.EntryFor(t);
  EXPECT_EQ(before.stats[1].distinct_count, 1);
  ASSERT_TRUE(t.AddRow({sql::Value::Text("silent river"),
                        sql::Value::Text("liam murphy")})
                  .ok());
  const TableStatsEntry& after = registry.EntryFor(t);
  EXPECT_NE(&after, &before);
  EXPECT_EQ(after.stats[1].distinct_count, 2);
  // The pre-mutation entry is retained, not overwritten: references
  // handed out earlier stay valid and correct for the old content.
  EXPECT_EQ(before.stats[1].distinct_count, 1);
}

TEST(SchemaRegistryTest, EntriesCarryDerivedEmbeddings) {
  auto provider = Provider();
  SchemaRegistry registry(provider);
  sql::Table t = FilmTable();
  const TableStatsEntry& entry = registry.EntryFor(t);
  ASSERT_EQ(entry.name_embeddings.size(), 2u);
  for (const auto& vec : entry.name_embeddings) {
    EXPECT_EQ(static_cast<int>(vec.size()), provider->dim());
  }
  EXPECT_EQ(static_cast<int>(entry.centroid.size()), provider->dim());
}

TEST(SchemaRegistryTest, RegisterAssignsDenseIdsAndRejectsDuplicates) {
  SchemaRegistry registry(Provider());
  EXPECT_EQ(registry.num_tables(), 0);
  auto films = std::make_shared<sql::Table>(FilmTable());
  auto counties = std::make_shared<sql::Table>(CountyTable());
  StatusOr<TableId> id1 = registry.Register(films);
  StatusOr<TableId> id2 = registry.Register(counties);
  ASSERT_TRUE(id1.ok());
  ASSERT_TRUE(id2.ok());
  EXPECT_EQ(id1.value(), 0);
  EXPECT_EQ(id2.value(), 1);
  EXPECT_EQ(registry.num_tables(), 2);
  EXPECT_EQ(registry.Find("films"), id1.value());
  EXPECT_EQ(registry.Find("nowhere"), kInvalidTableId);
  EXPECT_EQ(registry.table(id2.value()), counties.get());
  EXPECT_EQ(registry.table(99), nullptr);

  auto duplicate = std::make_shared<sql::Table>(FilmTable());
  EXPECT_EQ(registry.Register(duplicate).status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(registry.Register(nullptr).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(SchemaRegistryTest, ResolveCoversEveryRefKind) {
  SchemaRegistry registry(Provider());
  auto films = std::make_shared<sql::Table>(FilmTable());
  const std::vector<std::string> tokens = {"which", "film", "?"};

  // Empty registry: routed refs cannot resolve, named refs are absent.
  EXPECT_EQ(registry.Resolve(SchemaRef::Route(), tokens).status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(registry.CheckResolvable(SchemaRef::Route()).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(registry.Resolve(SchemaRef(), tokens).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(registry.Resolve(SchemaRef::Table(nullptr), tokens)
                .status()
                .code(),
            StatusCode::kInvalidArgument);

  const TableId id = registry.Register(films).value();

  // Ad-hoc table ref: resolves to the pointer; picks up the handle
  // because this exact table happens to be registered.
  auto by_table = registry.Resolve(SchemaRef::Table(films.get()), tokens);
  ASSERT_TRUE(by_table.ok());
  EXPECT_EQ(by_table->table, films.get());
  EXPECT_EQ(by_table->id, id);
  // An unregistered ad-hoc table resolves with no handle.
  sql::Table adhoc = CountyTable();
  auto by_adhoc = registry.Resolve(SchemaRef::Table(&adhoc), tokens);
  ASSERT_TRUE(by_adhoc.ok());
  EXPECT_EQ(by_adhoc->id, kInvalidTableId);

  auto by_name = registry.Resolve(SchemaRef::Name("films"), tokens);
  ASSERT_TRUE(by_name.ok());
  EXPECT_EQ(by_name->table, films.get());
  EXPECT_EQ(registry.Resolve(SchemaRef::Name("nope"), tokens).status().code(),
            StatusCode::kNotFound);

  auto by_id = registry.Resolve(SchemaRef::Id(id), tokens);
  ASSERT_TRUE(by_id.ok());
  EXPECT_EQ(by_id->table, films.get());
  EXPECT_EQ(registry.Resolve(SchemaRef::Id(7), tokens).status().code(),
            StatusCode::kNotFound);

  auto routed = registry.Resolve(SchemaRef::Route(), tokens);
  ASSERT_TRUE(routed.ok());
  EXPECT_EQ(routed->table, films.get());
  ASSERT_FALSE(routed->candidates.empty());
  EXPECT_EQ(routed->candidates.front().id, id);
  EXPECT_EQ(registry.Resolve(SchemaRef::Route(), {}).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(SchemaRegistryTest, PersistenceRoundTrip) {
  const std::string path = TempPath("schema_store.nlsr");
  auto provider = Provider();
  sql::Table films = FilmTable();
  sql::Table counties = CountyTable();
  {
    SchemaRegistry writer(provider);
    (void)writer.StatsFor(films);
    (void)writer.StatsFor(counties);
    ASSERT_TRUE(writer.Save(path).ok());
  }

  auto& computed =
      metrics::MetricsRegistry::Global().GetCounter("schema.stats_computed");
  auto& loaded =
      metrics::MetricsRegistry::Global().GetCounter("schema.stats_loaded");
  SchemaRegistry reader(provider);
  ASSERT_TRUE(reader.Load(path).ok());
  const int64_t computed_before = computed.Value();
  const int64_t loaded_before = loaded.Value();
  // Cold start is a load, not a recompute: the cell-scan statistics come
  // from disk bit-for-bit; only the cheap embedding half is rebuilt.
  SchemaRegistry fresh(provider);
  ExpectStatsEqual(reader.StatsFor(films), fresh.StatsFor(films));
  ExpectStatsEqual(reader.StatsFor(counties), fresh.StatsFor(counties));
  EXPECT_EQ(computed.Value() - computed_before, 2);  // `fresh` only
  EXPECT_EQ(loaded.Value() - loaded_before, 2);      // `reader` warm hits
}

TEST(SchemaRegistryTest, SaveCarriesLoadedEntriesForward) {
  // Load-then-Save must not drop entries whose tables were never touched
  // this process: a registry acting as a pass-through keeps the store.
  const std::string path = TempPath("schema_store_fwd.nlsr");
  const std::string path2 = TempPath("schema_store_fwd2.nlsr");
  auto provider = Provider();
  sql::Table films = FilmTable();
  {
    SchemaRegistry writer(provider);
    (void)writer.StatsFor(films);
    ASSERT_TRUE(writer.Save(path).ok());
  }
  {
    SchemaRegistry relay(provider);
    ASSERT_TRUE(relay.Load(path).ok());
    ASSERT_TRUE(relay.Save(path2).ok());
  }
  SchemaRegistry reader(provider);
  ASSERT_TRUE(reader.Load(path2).ok());
  SchemaRegistry fresh(provider);
  ExpectStatsEqual(reader.StatsFor(films), fresh.StatsFor(films));
}

TEST(SchemaRegistryTest, CorruptStoreIsRejectedAndRecomputeStillWorks) {
  const std::string path = TempPath("schema_store_corrupt.nlsr");
  auto provider = Provider();
  sql::Table films = FilmTable();
  {
    SchemaRegistry writer(provider);
    (void)writer.StatsFor(films);
    ASSERT_TRUE(writer.Save(path).ok());
  }
  StatusOr<std::string> contents = io::ReadFileToString(path);
  ASSERT_TRUE(contents.ok());

  auto write_bytes = [](const std::string& p, const std::string& bytes) {
    std::ofstream out(p, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  };

  // Bit rot in the payload: the CRC32C footer catches it.
  std::string flipped = contents.value();
  flipped[flipped.size() / 2] ^= 0x40;
  write_bytes(path, flipped);
  SchemaRegistry bitrot(provider);
  Status s = bitrot.Load(path);
  EXPECT_EQ(s.code(), StatusCode::kParseError);
  EXPECT_NE(s.message().find("checksum"), std::string::npos) << s;

  // Torn write: truncation also fails the footer check.
  write_bytes(path, contents.value().substr(0, contents.value().size() - 7));
  EXPECT_EQ(bitrot.Load(path).code(), StatusCode::kParseError);

  // Missing file is a plain I/O error.
  EXPECT_FALSE(bitrot.Load(TempPath("no_such_store.nlsr")).ok());

  // The failed loads left the registry untouched; statistics still come
  // from recomputation and match a fresh registry exactly.
  SchemaRegistry fresh(provider);
  ExpectStatsEqual(bitrot.StatsFor(films), fresh.StatsFor(films));
}

TEST(SchemaRegistryTest, ConcurrentReadsShareOneEntryPerContent) {
  auto provider = Provider();
  SchemaRegistry registry(provider);
  auto films = std::make_shared<sql::Table>(FilmTable());
  ASSERT_TRUE(registry.Register(films).ok());
  sql::Table adhoc = CountyTable();
  const std::vector<std::string> question = {"what", "is",   "the",
                                             "population", "of", "mayo"};

  constexpr int kIters = 64;
  std::vector<const TableStatsEntry*> seen(kIters, nullptr);
  std::vector<int> route_winner(kIters, -1);
  ThreadPool pool(8);
  pool.ParallelFor(0, kIters, [&](int begin, int end) {
    for (int i = begin; i < end; ++i) {
      const sql::Table& t = (i % 2 == 0) ? *films : adhoc;
      seen[i] = &registry.EntryFor(t);
      auto ranked = registry.Route(question, 3);
      route_winner[i] = ranked.empty() ? -1 : ranked.front().id;
      EXPECT_EQ(registry.ShortlistColumns(question, t).size(), 2u);
    }
  });
  // Racing first-touch computes converge on one resident entry per
  // distinct content, and every routed read saw a consistent index.
  for (int i = 0; i < kIters; ++i) {
    EXPECT_EQ(seen[i], seen[i % 2]) << i;
    EXPECT_EQ(route_winner[i], 0) << i;
  }
  EXPECT_NE(seen[0], seen[1]);
}

}  // namespace
}  // namespace schema
}  // namespace nlidb
