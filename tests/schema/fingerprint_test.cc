#include "schema/fingerprint.h"

#include <gtest/gtest.h>

#include "sql/value.h"

namespace nlidb {
namespace schema {
namespace {

sql::Table FilmTable(const std::string& name, const std::string& director) {
  sql::Schema schema({{"film_name", sql::DataType::kText},
                      {"director", sql::DataType::kText}});
  sql::Table t(name, schema);
  EXPECT_TRUE(t.AddRow({sql::Value::Text("winter echo"),
                        sql::Value::Text(director)})
                  .ok());
  return t;
}

TEST(FingerprintTest, DeterministicAndAddressIndependent) {
  sql::Table a = FilmTable("films", "sofia garcia");
  sql::Table b = FilmTable("films", "sofia garcia");
  EXPECT_EQ(TableFingerprint(a), TableFingerprint(a));
  EXPECT_EQ(TableFingerprint(a), TableFingerprint(b));
}

TEST(FingerprintTest, TableNameDoesNotAffectFingerprint) {
  // Content-keyed means *content*: the same schema and cells under a
  // different table name share precomputed statistics.
  sql::Table a = FilmTable("films", "sofia garcia");
  sql::Table b = FilmTable("movies", "sofia garcia");
  EXPECT_EQ(TableFingerprint(a), TableFingerprint(b));
}

TEST(FingerprintTest, CellChangeChangesOnlyTheCellWord) {
  sql::Table a = FilmTable("films", "sofia garcia");
  sql::Table b = FilmTable("films", "liam murphy");
  EXPECT_NE(TableFingerprint(a), TableFingerprint(b));
  // Same schema: the high (schema) word agrees, the low (cell) word is
  // what moved.
  EXPECT_EQ(TableFingerprint(a) >> 32, TableFingerprint(b) >> 32);
  EXPECT_EQ(TableFingerprint(a) >> 32, SchemaFingerprint(a.schema()));
}

TEST(FingerprintTest, SchemaChangeChangesTheSchemaWord) {
  sql::Schema named({{"film_name", sql::DataType::kText}});
  sql::Schema renamed({{"movie_title", sql::DataType::kText}});
  sql::Schema retyped({{"film_name", sql::DataType::kReal}});
  EXPECT_NE(SchemaFingerprint(named), SchemaFingerprint(renamed));
  EXPECT_NE(SchemaFingerprint(named), SchemaFingerprint(retyped));
}

TEST(FingerprintTest, AppendedRowChangesFingerprint) {
  // The stale-stats regression this subsystem exists to prevent: a
  // table mutated after its statistics were cached must present a new
  // fingerprint.
  sql::Table t = FilmTable("films", "sofia garcia");
  const uint64_t before = TableFingerprint(t);
  ASSERT_TRUE(t.AddRow({sql::Value::Text("silent river"),
                        sql::Value::Text("liam murphy")})
                  .ok());
  EXPECT_NE(before, TableFingerprint(t));
}

TEST(FingerprintTest, SampledFingerprintStillCoversTheLastRow) {
  sql::Schema schema({{"n", sql::DataType::kReal}});
  sql::Table a("big", schema);
  sql::Table b("big", schema);
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(a.AddRow({sql::Value::Real(i)}).ok());
    // b differs from a only in the final row.
    ASSERT_TRUE(b.AddRow({sql::Value::Real(i == 199 ? -1 : i)}).ok());
  }
  FingerprintOptions options;
  options.max_cells = 16;  // force stride sampling
  EXPECT_EQ(TableFingerprint(a, options), TableFingerprint(a, options));
  EXPECT_NE(TableFingerprint(a, options), TableFingerprint(b, options));
}

}  // namespace
}  // namespace schema
}  // namespace nlidb
