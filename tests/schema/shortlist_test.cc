#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "core/pipeline.h"
#include "data/generator.h"
#include "schema/registry.h"
#include "sql/value.h"
#include "testing/trace.h"

namespace nlidb {
namespace schema {
namespace {

std::shared_ptr<text::EmbeddingProvider> Provider() {
  auto provider = std::make_shared<text::EmbeddingProvider>();
  data::RegisterDomainClusters(*provider);
  return provider;
}

/// A 24-column table — wide enough that a shortlist_k=8 registry must
/// prune — whose column names are ordinary content words.
sql::Table WideTable() {
  const char* kWords[] = {"population", "director", "county",  "film",
                          "year",       "price",    "team",    "city",
                          "color",      "author",   "title",   "length",
                          "weight",     "height",   "speed",   "genre",
                          "artist",     "album",    "country", "capital",
                          "river",      "mountain", "animal",  "flower"};
  std::vector<sql::ColumnDef> cols;
  for (const char* w : kWords) {
    cols.push_back({w, sql::DataType::kText});
  }
  sql::Table t("wide", sql::Schema(cols));
  std::vector<sql::Value> row;
  row.reserve(std::size(kWords));
  for (const char* w : kWords) {
    row.push_back(sql::Value::Text(std::string("sample ") + w));
  }
  EXPECT_TRUE(t.AddRow(std::move(row)).ok());
  return t;
}

TEST(ShortlistTest, NarrowTablesAreNeverPruned) {
  SchemaRegistry registry(Provider());
  sql::Schema schema({{"county", sql::DataType::kText},
                      {"population", sql::DataType::kReal}});
  sql::Table t("counties", schema);
  ASSERT_TRUE(
      t.AddRow({sql::Value::Text("mayo"), sql::Value::Real(130507)}).ok());
  const std::vector<int> shortlist =
      registry.ShortlistColumns({"unrelated", "words"}, t);
  EXPECT_EQ(shortlist, (std::vector<int>{0, 1}));
}

TEST(ShortlistTest, ExplicitNameMentionSurvivesPruning) {
  SchemaRegistryOptions options;
  options.shortlist_k = 8;
  SchemaRegistry registry(Provider(), options);
  sql::Table wide = WideTable();
  const std::vector<std::string> tokens = {"what", "is",     "the", "capital",
                                           "of",   "france", "?"};
  const std::vector<int> shortlist = registry.ShortlistColumns(tokens, wide);
  ASSERT_EQ(shortlist.size(), 8u);
  EXPECT_TRUE(std::is_sorted(shortlist.begin(), shortlist.end()));
  // "capital" is column 19; a literally mentioned column must make the
  // cut no matter what the embedding scores say.
  EXPECT_TRUE(std::find(shortlist.begin(), shortlist.end(), 19) !=
              shortlist.end());
}

class ShortlistEquivalenceTest : public ::testing::Test {
 protected:
  ShortlistEquivalenceTest() {
    provider_ = Provider();
    config_ = core::ModelConfig::Tiny();
    config_.word_dim = provider_->dim();
  }

  std::shared_ptr<text::EmbeddingProvider> provider_;
  core::ModelConfig config_;
};

TEST_F(ShortlistEquivalenceTest, ShortlistModeMatchesFullScanOnSeedCorpus) {
  // The correctness gate: with the default shortlist_k (16, wider than
  // any seed-corpus table), shortlist mode must reproduce full-scan
  // annotations exactly — at 1 thread and at 8.
  core::NlidbPipeline pipeline(config_, provider_);
  data::GeneratorConfig gc;
  gc.num_tables = 6;
  gc.questions_per_table = 4;
  gc.seed = 21;
  data::Splits splits = data::GenerateWikiSqlSplits(gc);
  pipeline.Train(splits.train);

  for (int threads : {1, 8}) {
    ThreadPool::SetGlobalParallelism(threads);
    for (const data::Example& ex : splits.test.examples) {
      pipeline.mutable_registry().set_mode(ScanMode::kFullScan);
      auto full = pipeline.Annotate(ex.tokens, *ex.table);
      pipeline.mutable_registry().set_mode(ScanMode::kShortlist);
      auto shortlisted = pipeline.Annotate(ex.tokens, *ex.table);
      ASSERT_TRUE(full.ok()) << full.status();
      ASSERT_TRUE(shortlisted.ok()) << shortlisted.status();
      EXPECT_EQ(testing::AnnotationToString(*full),
                testing::AnnotationToString(*shortlisted))
          << "threads=" << threads << " q: " << ex.question;
    }
  }
  ThreadPool::SetGlobalParallelism(ThreadPool::DefaultParallelism());
}

TEST_F(ShortlistEquivalenceTest, WideTableShortlistEqualsFullScanWhenCovered) {
  // Actual pruning: a 24-column table against an 8-column shortlist.
  // The registry's contract is equality whenever the shortlist covers
  // every column the full scan annotates; this asserts both halves —
  // the crafted questions are covered, and covered implies equal.
  core::NlidbPipeline pipeline(config_, provider_);
  data::GeneratorConfig gc;
  gc.num_tables = 6;
  gc.questions_per_table = 4;
  gc.seed = 22;
  data::WikiSqlGenerator gen(gc, data::TrainDomains());
  pipeline.Train(gen.Generate());

  SchemaRegistryOptions options;
  options.shortlist_k = 8;
  SchemaRegistry registry(provider_, options);
  sql::Table wide = WideTable();
  const auto& stats = registry.StatsFor(wide);

  std::vector<std::vector<std::string>> displays;
  for (int c = 0; c < wide.num_columns(); ++c) {
    displays.push_back(wide.schema().column(c).DisplayTokens());
  }

  const std::vector<std::vector<std::string>> questions = {
      {"what", "is", "the", "capital", "of", "france", "?"},
      {"which", "film", "has", "the", "director", "sofia", "garcia", "?"},
      {"what", "is", "the", "population", "of", "mayo", "county", "?"},
      {"how", "tall", "is", "the", "mountain", "?"},
  };
  int pruned_questions = 0;
  for (const auto& tokens : questions) {
    auto full = pipeline.annotator().Annotate(tokens, wide, stats);
    ASSERT_TRUE(full.ok()) << full.status();
    // The accept set the contract quantifies over: columns the
    // classifier scores at or above its 0.5 threshold (the same
    // PredictBatch decision the annotator's classifier pass makes).
    auto probs = pipeline.classifier().PredictBatch(tokens, displays);
    ASSERT_TRUE(probs.ok()) << probs.status();
    std::vector<int> shortlist = registry.ShortlistColumns(tokens, wide);
    ASSERT_EQ(shortlist.size(), 8u);
    for (int c = 0; c < wide.num_columns(); ++c) {
      if ((*probs)[static_cast<size_t>(c)] >= 0.5f &&
          std::find(shortlist.begin(), shortlist.end(), c) ==
              shortlist.end()) {
        shortlist.push_back(c);
      }
    }
    std::sort(shortlist.begin(), shortlist.end());
    if (shortlist.size() < static_cast<size_t>(wide.num_columns())) {
      ++pruned_questions;
    }
    auto pruned = pipeline.annotator().Annotate(
        tokens, wide, stats, /*metadata=*/nullptr, /*ctx=*/nullptr,
        /*debug=*/nullptr, &shortlist);
    ASSERT_TRUE(pruned.ok()) << pruned.status();
    EXPECT_EQ(testing::AnnotationToString(*full),
              testing::AnnotationToString(*pruned));
  }
  // Pruning actually happened — the equality assertions above were not
  // all full scans in disguise.
  EXPECT_GE(pruned_questions, 1);
}

}  // namespace
}  // namespace schema
}  // namespace nlidb
