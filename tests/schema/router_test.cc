#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "data/generator.h"
#include "schema/registry.h"
#include "sql/value.h"

namespace nlidb {
namespace schema {
namespace {

std::shared_ptr<text::EmbeddingProvider> Provider() {
  auto provider = std::make_shared<text::EmbeddingProvider>(48);
  data::RegisterDomainClusters(*provider);
  return provider;
}

TEST(RouterTest, LexicalEvidencePicksTheRightTable) {
  SchemaRegistry registry(Provider());
  sql::Schema films_schema({{"film_name", sql::DataType::kText},
                            {"director", sql::DataType::kText}});
  auto films = std::make_shared<sql::Table>("films", films_schema);
  ASSERT_TRUE(films
                  ->AddRow({sql::Value::Text("winter echo"),
                            sql::Value::Text("sofia garcia")})
                  .ok());
  sql::Schema county_schema({{"county", sql::DataType::kText},
                             {"population", sql::DataType::kReal}});
  auto counties = std::make_shared<sql::Table>("counties", county_schema);
  ASSERT_TRUE(
      counties->AddRow({sql::Value::Text("mayo"), sql::Value::Real(130507)})
          .ok());
  ASSERT_TRUE(registry.Register(films).ok());
  ASSERT_TRUE(registry.Register(counties).ok());

  auto ranked = registry.Route(
      {"what", "is", "the", "population", "of", "mayo", "?"}, 5);
  ASSERT_EQ(ranked.size(), 2u);
  EXPECT_EQ(ranked.front().name, "counties");
  EXPECT_GT(ranked[0].score, ranked[1].score);

  // Cell evidence routes too: "sofia garcia" appears only in films' rows.
  ranked = registry.Route({"who", "is", "sofia", "garcia", "?"}, 5);
  ASSERT_FALSE(ranked.empty());
  EXPECT_EQ(ranked.front().name, "films");
}

TEST(RouterTest, LimitAndEmptyRegistryEdges) {
  SchemaRegistry registry(Provider());
  EXPECT_TRUE(registry.Route({"anything"}, 5).empty());

  for (int i = 0; i < 8; ++i) {
    sql::Schema schema({{"col_" + std::to_string(i), sql::DataType::kText}});
    auto t = std::make_shared<sql::Table>("t" + std::to_string(i), schema);
    ASSERT_TRUE(t->AddRow({sql::Value::Text("v" + std::to_string(i))}).ok());
    ASSERT_TRUE(registry.Register(t).ok());
  }
  EXPECT_EQ(registry.Route({"anything"}, 3).size(), 3u);
  EXPECT_EQ(registry.Route({"anything"}, 100).size(), 8u);
  EXPECT_TRUE(registry.Route({"anything"}, 0).empty());
}

TEST(RouterTest, RoutingIsDeterministic) {
  auto provider = Provider();
  data::GeneratorConfig gc;
  gc.num_tables = 20;
  gc.questions_per_table = 2;
  gc.seed = 11;
  data::WikiSqlGenerator gen(gc, data::TrainDomains());
  data::Dataset ds = gen.Generate();

  SchemaRegistry a(provider);
  SchemaRegistry b(provider);
  for (const auto& table : ds.tables) {
    ASSERT_TRUE(a.Register(table).ok());
    ASSERT_TRUE(b.Register(table).ok());
  }
  for (const data::Example& ex : ds.examples) {
    auto ra = a.Route(ex.tokens, 5);
    auto rb = b.Route(ex.tokens, 5);
    ASSERT_EQ(ra.size(), rb.size());
    for (size_t i = 0; i < ra.size(); ++i) {
      EXPECT_EQ(ra[i].id, rb[i].id);
      EXPECT_EQ(ra[i].score, rb[i].score);
    }
  }
}

TEST(RouterTest, RecallOnSeededCorpus) {
  // The scaling-gate metric in miniature: register a generated corpus,
  // route every question, and check the gold table lands in the top
  // candidates. The full sweep (10/100/1000 tables) runs in
  // bench_schema_scale; this pins a floor so routing regressions fail
  // fast in the suite.
  auto provider = Provider();
  data::GeneratorConfig gc;
  gc.num_tables = 30;
  gc.questions_per_table = 4;
  gc.seed = 7;
  data::WikiSqlGenerator gen(gc, data::TrainDomains());
  data::Dataset ds = gen.Generate();

  SchemaRegistry registry(provider);
  for (const auto& table : ds.tables) {
    ASSERT_TRUE(registry.Register(table).ok());
  }
  int hits_at_1 = 0;
  int hits_at_3 = 0;
  int total = 0;
  for (const data::Example& ex : ds.examples) {
    auto ranked = registry.Route(ex.tokens, 3);
    ASSERT_FALSE(ranked.empty());
    ++total;
    if (ranked.front().name == ex.table->name()) ++hits_at_1;
    for (const RouteCandidate& c : ranked) {
      if (c.name == ex.table->name()) {
        ++hits_at_3;
        break;
      }
    }
  }
  ASSERT_GT(total, 0);
  const double recall1 = static_cast<double>(hits_at_1) / total;
  const double recall3 = static_cast<double>(hits_at_3) / total;
  EXPECT_GE(recall3, 0.8) << "recall@3 " << recall3 << " over " << total;
  EXPECT_GE(recall1, 0.5) << "recall@1 " << recall1 << " over " << total;
}

}  // namespace
}  // namespace schema
}  // namespace nlidb
