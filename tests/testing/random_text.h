#ifndef NLIDB_TESTS_TESTING_RANDOM_TEXT_H_
#define NLIDB_TESTS_TESTING_RANDOM_TEXT_H_

#include <string>
#include <vector>

#include "common/rng.h"

namespace nlidb {
namespace testing {

/// Whitespace-joined garbage built from SQL-ish and hostile pieces
/// (keywords, symbols, quotes, escapes, annotation symbols). The input
/// of the parser/recovery/annotator no-crash sweeps; any string this
/// produces must be rejected cleanly or handled, never crash.
std::string RandomText(Rng& rng, int max_len);

/// A string of `n <= max_len` uniformly random bytes (0..255), for
/// tokenizer/byte-level robustness sweeps.
std::string RandomBytes(Rng& rng, int max_len);

/// Loads a seed-regression corpus file from tests/corpus/<name>.
///
/// Format: one case per line. Lines starting with '#' and blank lines
/// are skipped. Escapes \\, \t, \n, \r, and \xNN are decoded so cases
/// can carry bytes that a line-oriented file cannot hold verbatim.
/// Missing files are a test-setup error (process-fatal), not an empty
/// corpus — a typo must not silently skip regression coverage.
std::vector<std::string> LoadCorpus(const std::string& name);

/// Absolute path of `relative` under the source tree's tests/ directory.
std::string TestSourcePath(const std::string& relative);

}  // namespace testing
}  // namespace nlidb

#endif  // NLIDB_TESTS_TESTING_RANDOM_TEXT_H_
