#include "testing/trace.h"

#include <cstdio>
#include <sstream>

#include "core/annotation.h"
#include "sql/executor.h"

namespace nlidb {
namespace testing {

std::string FloatBits(float v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%a", static_cast<double>(v));
  return buf;
}

std::string DoubleBits(double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%a", v);
  return buf;
}

std::string SpanToString(text::Span span) {
  if (span.empty()) return "[)";
  std::ostringstream os;
  os << "[" << span.begin << "," << span.end << ")";
  return os.str();
}

std::string AnnotationToString(const core::Annotation& annotation) {
  std::ostringstream os;
  for (size_t i = 0; i < annotation.pairs.size(); ++i) {
    const core::MentionPair& p = annotation.pairs[i];
    os << "pair " << i << ": column=" << p.column
       << " span=" << SpanToString(p.column_span) << " value=\"" << p.value_text
       << "\" vspan=" << SpanToString(p.value_span) << "\n";
  }
  return os.str();
}

std::string ExecutionToString(const sql::SelectQuery& query,
                              const sql::Table& table) {
  auto result = sql::Execute(query, table);
  if (!result.ok()) return "error " + result.status().ToString();
  std::ostringstream os;
  os << result->size() << " values:";
  for (const sql::Value& v : *result) {
    os << " " << v.ToString();
    if (v.is_real()) os << "(" << DoubleBits(v.number()) << ")";
  }
  return os.str();
}

namespace {

std::string JoinTokens(const std::vector<std::string>& tokens) {
  std::ostringstream os;
  for (size_t i = 0; i < tokens.size(); ++i) {
    if (i > 0) os << " ";
    os << tokens[i];
  }
  return os.str();
}

}  // namespace

std::string TraceExample(const core::NlidbPipeline& pipeline,
                         const data::Example& example) {
  const sql::Table& table = *example.table;
  const sql::Schema& schema = table.schema();
  std::ostringstream os;
  os << "tokens: " << JoinTokens(example.tokens) << "\n";

  // Classifier probabilities over every column — the most drift-sensitive
  // numbers in the pipeline (everything downstream thresholds them).
  std::vector<std::vector<std::string>> displays;
  for (int c = 0; c < schema.num_columns(); ++c) {
    displays.push_back(schema.column(c).DisplayTokens());
  }
  const std::vector<float> probs =
      pipeline.classifier().PredictBatch(example.tokens, displays).value();
  os << "probs:";
  for (float p : probs) os << " " << FloatBits(p);
  os << "\n";

  core::QueryRequest request;
  request.schema_ref = core::SchemaRef::Table(&table);
  request.tokens = example.tokens;
  request.execute = false;
  request.collect_timings = false;
  StatusOr<core::QueryResult> result = pipeline.Query(request);
  if (!result.ok()) {
    os << "query: error " << result.status().ToString() << "\n";
    return os.str();
  }
  const core::QueryResult& r = *result;
  os << AnnotationToString(r.annotation);
  os << "qa: " << JoinTokens(r.annotated_question) << "\n";
  os << "sa: " << JoinTokens(r.annotated_sql) << "\n";

  if (r.query.has_value()) {
    os << "sql: " << sql::ToSql(*r.query, schema) << "\n";
    os << "exec: " << ExecutionToString(*r.query, table) << "\n";
  } else {
    os << "sql: error " << r.recovery_status.ToString() << "\n";
  }
  return os.str();
}

std::string TraceDataset(const core::NlidbPipeline& pipeline,
                         const data::Dataset& dataset) {
  std::ostringstream os;
  os << "# nlidb pipeline trace v1\n";
  for (size_t i = 0; i < dataset.examples.size(); ++i) {
    os << "case " << i << "\n"
       << TraceExample(pipeline, dataset.examples[i]);
  }
  return os.str();
}

}  // namespace testing
}  // namespace nlidb
