#ifndef NLIDB_TESTS_TESTING_TRACE_H_
#define NLIDB_TESTS_TESTING_TRACE_H_

#include <string>

#include "core/pipeline.h"
#include "data/example.h"

namespace nlidb {
namespace testing {

/// Bitwise-exact float rendering (C99 hexfloat, e.g. "0x1.99999ap-4").
/// Two floats serialize equal iff they are the same bits, so a golden
/// trace containing these catches one-ulp numeric drift that a decimal
/// rendering would round away.
std::string FloatBits(float v);
std::string DoubleBits(double v);

/// "[b,e)" for a token span; "[)" for an empty span.
std::string SpanToString(text::Span span);

/// One line per mention pair: column index, column span, value text,
/// value span. The structural-equality currency of the differential
/// fuzzer as well as the golden trace.
std::string AnnotationToString(const core::Annotation& annotation);

/// Executes `query` against `table` and renders the result values
/// (reals additionally in hexfloat), or the error status.
std::string ExecutionToString(const sql::SelectQuery& query,
                              const sql::Table& table);

/// Serializes every pipeline stage for one example:
///   tokens, per-column classifier probabilities (hexfloat), the
///   annotation (mention pairs + spans), the annotated question q^a, the
///   decoded annotated SQL s^a, the recovered SQL, and executor results.
/// Any nondeterminism or silent behavior drift in any stage changes this
/// string and fails the golden comparison loudly.
std::string TraceExample(const core::NlidbPipeline& pipeline,
                         const data::Example& example);

/// TraceExample over a whole dataset, with "case N" headers and a
/// format-version banner so readers of a diff know what they look at.
std::string TraceDataset(const core::NlidbPipeline& pipeline,
                         const data::Dataset& dataset);

}  // namespace testing
}  // namespace nlidb

#endif  // NLIDB_TESTS_TESTING_TRACE_H_
