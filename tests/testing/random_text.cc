#include "testing/random_text.h"

#include <cctype>
#include <fstream>
#include <iterator>

#include "common/logging.h"

namespace nlidb {
namespace testing {

std::string RandomText(Rng& rng, int max_len) {
  static const char* kPieces[] = {"SELECT", "WHERE", "AND",  "=",    ">",
                                  "<",      "alpha", "beta", "c1",   "v1",
                                  "g1",     "g99",   "\"x\"", "42",  "??",
                                  "(",      ")",     "'",    "\\",   "\t"};
  std::string out;
  const int n = rng.NextInt(0, max_len);
  for (int i = 0; i < n; ++i) {
    if (i > 0) out += ' ';
    out += kPieces[rng.NextUint64(std::size(kPieces))];
  }
  return out;
}

std::string RandomBytes(Rng& rng, int max_len) {
  std::string out;
  const int n = rng.NextInt(0, max_len);
  out.reserve(n);
  for (int i = 0; i < n; ++i) {
    out += static_cast<char>(rng.NextUint64(256));
  }
  return out;
}

namespace {

int HexDigit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

std::string DecodeEscapes(const std::string& line) {
  std::string out;
  out.reserve(line.size());
  for (size_t i = 0; i < line.size(); ++i) {
    if (line[i] != '\\' || i + 1 >= line.size()) {
      out += line[i];
      continue;
    }
    const char next = line[i + 1];
    switch (next) {
      case '\\': out += '\\'; ++i; break;
      case 't': out += '\t'; ++i; break;
      case 'n': out += '\n'; ++i; break;
      case 'r': out += '\r'; ++i; break;
      case 'x': {
        if (i + 3 < line.size() && HexDigit(line[i + 2]) >= 0 &&
            HexDigit(line[i + 3]) >= 0) {
          out += static_cast<char>(HexDigit(line[i + 2]) * 16 +
                                   HexDigit(line[i + 3]));
          i += 3;
        } else {
          out += line[i];
        }
        break;
      }
      default: out += line[i]; break;
    }
  }
  return out;
}

}  // namespace

std::string TestSourcePath(const std::string& relative) {
  return std::string(NLIDB_TEST_SOURCE_DIR) + "/" + relative;
}

std::vector<std::string> LoadCorpus(const std::string& name) {
  const std::string path = TestSourcePath("corpus/" + name);
  std::ifstream in(path);
  NLIDB_CHECK(in.good()) << "missing corpus file " << path;
  std::vector<std::string> cases;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    cases.push_back(DecodeEscapes(line));
  }
  NLIDB_CHECK(!cases.empty()) << "empty corpus file " << path;
  return cases;
}

}  // namespace testing
}  // namespace nlidb
