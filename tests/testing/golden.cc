#include "testing/golden.h"

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "testing/random_text.h"

namespace nlidb {
namespace testing {

namespace {

bool ReadFile(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  *out = buf.str();
  return true;
}

bool WriteFile(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out.good()) return false;
  out << content;
  return out.good();
}

/// First line where the two texts diverge (1-based), with both versions,
/// for a readable failure message without dumping the whole trace.
std::string FirstDiff(const std::string& expected, const std::string& actual) {
  std::istringstream es(expected), as(actual);
  std::string el, al;
  int line = 0;
  for (;;) {
    ++line;
    const bool eok = static_cast<bool>(std::getline(es, el));
    const bool aok = static_cast<bool>(std::getline(as, al));
    if (!eok && !aok) return "texts are equal";
    if (eok != aok || el != al) {
      std::ostringstream os;
      os << "first difference at line " << line << ":\n  golden: "
         << (eok ? el : "<end of file>") << "\n  actual: "
         << (aok ? al : "<end of file>");
      return os.str();
    }
  }
}

}  // namespace

bool UpdatingGoldens() {
  const char* env = std::getenv("NLIDB_UPDATE_GOLDENS");
  return env != nullptr && env[0] == '1';
}

::testing::AssertionResult MatchesGolden(const std::string& name,
                                         const std::string& actual) {
  const std::string golden_path = TestSourcePath("goldens/" + name);
  if (UpdatingGoldens()) {
    if (!WriteFile(golden_path, actual)) {
      return ::testing::AssertionFailure()
             << "failed to update golden " << golden_path;
    }
    return ::testing::AssertionSuccess();
  }

  std::string expected;
  if (!ReadFile(golden_path, &expected)) {
    return ::testing::AssertionFailure()
           << "missing golden " << golden_path
           << " — run with NLIDB_UPDATE_GOLDENS=1 to create it";
  }
  if (expected == actual) return ::testing::AssertionSuccess();

  std::error_code ec;
  std::filesystem::create_directories("golden_diffs", ec);
  const std::string diff_path = "golden_diffs/" + name + ".actual";
  WriteFile(diff_path, actual);
  return ::testing::AssertionFailure()
         << "golden mismatch for " << name << "; " << FirstDiff(expected, actual)
         << "\nactual written to " << diff_path
         << "\nrun with NLIDB_UPDATE_GOLDENS=1 to accept the new behavior";
}

}  // namespace testing
}  // namespace nlidb
