#ifndef NLIDB_TESTS_TESTING_GOLDEN_H_
#define NLIDB_TESTS_TESTING_GOLDEN_H_

#include <gtest/gtest.h>

#include <string>

namespace nlidb {
namespace testing {

/// Compares `actual` against the committed golden file
/// tests/goldens/<name> in the source tree.
///
/// On mismatch the result message carries the first differing line, and
/// the full actual text is written to ./golden_diffs/<name>.actual
/// (relative to the test's working directory, i.e. the build tree) so CI
/// can upload it as an artifact and a human can inspect or promote it.
///
/// Running with NLIDB_UPDATE_GOLDENS=1 rewrites the golden in the source
/// tree with `actual` and succeeds — the regeneration path after an
/// intentional behavior change. A missing golden file fails (or is
/// created, under NLIDB_UPDATE_GOLDENS=1).
///
/// Use as: EXPECT_TRUE(MatchesGolden("pipeline_trace.golden", trace));
::testing::AssertionResult MatchesGolden(const std::string& name,
                                         const std::string& actual);

/// True when NLIDB_UPDATE_GOLDENS=1 is set for this run.
bool UpdatingGoldens();

}  // namespace testing
}  // namespace nlidb

#endif  // NLIDB_TESTS_TESTING_GOLDEN_H_
