// Rule-fixture tests for the nlidb_lint checker (tools/lint_rules.cc).
//
// Every rule is exercised three ways against committed fixture files in
// tests/lint/fixtures/: a positive hit, the same violation waived by a
// `nlidb-lint: disable(rule)` comment, and a clean file. The suite ends
// by asserting the real tree lints clean, which is the same gate CI
// applies through the `nlidb_lint_tree` ctest entry.

#include "tools/lint_rules.h"

#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace nlidb {
namespace lint {
namespace {

std::string RepoRoot() { return std::string(NLIDB_TEST_SOURCE_DIR) + "/.."; }

// `rel` is repo-relative ("tests/lint/fixtures/clean.cc"); findings use
// the same relative path the CLI would print.
SourceFile Load(const std::string& rel) {
  SourceFile file;
  const bool ok = LoadSourceFile(RepoRoot() + "/" + rel, rel, &file);
  EXPECT_TRUE(ok) << "cannot read fixture " << rel;
  return file;
}

std::vector<Finding> Lint(const std::vector<std::string>& rels) {
  std::vector<SourceFile> files;
  for (const std::string& rel : rels) files.push_back(Load(rel));
  return LintFiles(files);
}

std::vector<std::string> Rules(const std::vector<Finding>& findings) {
  std::vector<std::string> rules;
  for (const Finding& f : findings) rules.push_back(f.rule);
  return rules;
}

int CountRule(const std::vector<Finding>& findings, const std::string& rule) {
  const std::vector<std::string> rules = Rules(findings);
  return static_cast<int>(std::count(rules.begin(), rules.end(), rule));
}

TEST(LintTest, CleanFileHasNoFindings) {
  // clean.cc names std::thread / rand() / #pragma once in comments and
  // string literals only; the stripper must keep those from firing.
  EXPECT_TRUE(Lint({"tests/lint/fixtures/clean.cc"}).empty());
}

TEST(LintTest, RawThreadHit) {
  const auto findings = Lint({"tests/lint/fixtures/raw_thread_hit.cc"});
  EXPECT_EQ(CountRule(findings, "raw-thread"), 3);  // thread, async, pthread_
  EXPECT_EQ(static_cast<int>(findings.size()),
            CountRule(findings, "raw-thread"));
}

TEST(LintTest, RawThreadSuppressedSameLineAndPrecedingLine) {
  EXPECT_TRUE(Lint({"tests/lint/fixtures/raw_thread_suppressed.cc"}).empty());
}

TEST(LintTest, RawRandomHit) {
  const auto findings = Lint({"tests/lint/fixtures/raw_random_hit.cc"});
  EXPECT_EQ(CountRule(findings, "raw-random"), 3);  // device, srand, rand
}

TEST(LintTest, RawRandomSuppressed) {
  EXPECT_TRUE(Lint({"tests/lint/fixtures/raw_random_suppressed.cc"}).empty());
}

TEST(LintTest, MutexUnguardedHit) {
  const auto findings = Lint({"tests/lint/fixtures/mutex_unguarded_hit.h"});
  ASSERT_EQ(CountRule(findings, "mutex-unguarded"), 1);
  // The same bare field is also a coverage gap of the owning class.
  EXPECT_EQ(CountRule(findings, "mutex-coverage"), 1);
  for (const Finding& f : findings) {
    if (f.rule == "mutex-unguarded") {
      EXPECT_NE(f.message.find("mu_"), std::string::npos);
    }
  }
}

TEST(LintTest, MutexUnguardedSuppressedAndAnnotatedClean) {
  EXPECT_TRUE(
      Lint({"tests/lint/fixtures/mutex_unguarded_suppressed.h"}).empty());
  EXPECT_TRUE(Lint({"tests/lint/fixtures/mutex_guarded_clean.h"}).empty());
}

TEST(LintTest, NakedLockHit) {
  const auto findings = Lint({"tests/lint/fixtures/naked_lock_hit.cc"});
  // Lock(), Unlock(), lock(), unlock() — one finding each.
  EXPECT_EQ(CountRule(findings, "naked-lock"), 4);
  EXPECT_EQ(static_cast<int>(findings.size()),
            CountRule(findings, "naked-lock"));
}

TEST(LintTest, NakedLockSuppressedSameLineAndPrecedingLine) {
  EXPECT_TRUE(Lint({"tests/lint/fixtures/naked_lock_suppressed.cc"}).empty());
}

TEST(LintTest, NakedLockExemptsMutexAndLockdepInternals) {
  const std::string body = "void F(std::mutex& m) { m.lock(); m.unlock(); }\n";
  for (const char* path : {"src/common/mutex.h", "src/common/lockdep.cc",
                           "src/common/lockdep.h"}) {
    EXPECT_EQ(CountRule(LintFiles({LoadSource(path, body)}), "naked-lock"), 0)
        << path;
  }
  EXPECT_EQ(CountRule(LintFiles({LoadSource("src/serving/serving.cc", body)}),
                      "naked-lock"),
            1);
}

TEST(LintTest, MutexCoverageHit) {
  const auto findings = Lint({"tests/lint/fixtures/mutex_coverage_hit.h"});
  // pending_ and label_ lack annotations; total_ is covered.
  ASSERT_EQ(CountRule(findings, "mutex-coverage"), 2);
  EXPECT_EQ(static_cast<int>(findings.size()),
            CountRule(findings, "mutex-coverage"));
  for (const Finding& f : findings) {
    EXPECT_NE(f.message.find("Ledger"), std::string::npos);
  }
}

TEST(LintTest, MutexCoverageSuppressedAndClean) {
  EXPECT_TRUE(
      Lint({"tests/lint/fixtures/mutex_coverage_suppressed.h"}).empty());
  EXPECT_TRUE(Lint({"tests/lint/fixtures/mutex_coverage_clean.h"}).empty());
}

TEST(LintTest, IncludeGuardMissing) {
  const auto findings = Lint({"tests/lint/fixtures/guard_missing.h"});
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "include-guard");
  EXPECT_EQ(findings[0].line, 1);
}

TEST(LintTest, IncludeGuardPragmaOnce) {
  const auto findings = Lint({"tests/lint/fixtures/guard_pragma_once.h"});
  EXPECT_EQ(CountRule(findings, "include-guard"), 2);  // pragma + no guard
}

TEST(LintTest, IncludeGuardWrongName) {
  const auto findings = Lint({"tests/lint/fixtures/guard_wrong_name.h"});
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "include-guard");
  EXPECT_NE(findings[0].message.find("SOME_OTHER_GUARD_H"),
            std::string::npos);
}

TEST(LintTest, IncludeGuardSuppressed) {
  EXPECT_TRUE(Lint({"tests/lint/fixtures/guard_suppressed.h"}).empty());
}

TEST(LintTest, KernelWallClockHit) {
  const auto findings =
      Lint({"tests/lint/fixtures/wallclock_hit/gemm_tiles.h"});
  EXPECT_GE(CountRule(findings, "kernel-wall-clock"), 2);  // chrono + time()
}

TEST(LintTest, KernelWallClockSuppressed) {
  EXPECT_TRUE(
      Lint({"tests/lint/fixtures/wallclock_suppressed/gemm_tiles.h"})
          .empty());
}

TEST(LintTest, RawTimingHit) {
  const auto findings = Lint({"tests/lint/fixtures/raw_timing_hit.cc"});
  // steady_clock, system_clock, high_resolution_clock.
  EXPECT_EQ(CountRule(findings, "raw-timing"), 3);
  EXPECT_EQ(static_cast<int>(findings.size()),
            CountRule(findings, "raw-timing"));
}

TEST(LintTest, RawTimingSuppressed) {
  EXPECT_TRUE(Lint({"tests/lint/fixtures/raw_timing_suppressed.cc"}).empty());
}

TEST(LintTest, RawTimingExemptsTraceBenchAndKernelTus) {
  const std::string clock_read =
      "#include <chrono>\n"
      "long Stamp() {\n"
      "  return std::chrono::steady_clock::now().time_since_epoch().count();\n"
      "}\n";
  // trace.cc hosts NowNs(); bench TUs time themselves deliberately.
  for (const char* path : {"src/common/trace.cc", "bench/bench_foo.cc"}) {
    const auto findings = LintFiles({LoadSource(path, clock_read)});
    EXPECT_EQ(CountRule(findings, "raw-timing"), 0) << path;
  }
  // Kernel TUs report through the stricter kernel-wall-clock rule only.
  const auto findings =
      LintFiles({LoadSource("src/tensor/gemm_tiles.cc", clock_read)});
  EXPECT_EQ(CountRule(findings, "raw-timing"), 0);
  EXPECT_GE(CountRule(findings, "kernel-wall-clock"), 1);
}

// raw-file-write is scoped to src/, so the fixtures are linted under a
// virtual src/core/ path.
SourceFile LoadAs(const std::string& rel, const std::string& virtual_path) {
  SourceFile file;
  EXPECT_TRUE(LoadSourceFile(RepoRoot() + "/" + rel, virtual_path, &file))
      << "cannot read fixture " << rel;
  return file;
}

TEST(LintTest, RawFileWriteHit) {
  const auto findings =
      LintFiles({LoadAs("tests/lint/fixtures/raw_filewrite_hit.cc",
                        "src/core/raw_filewrite_hit.cc")});
  EXPECT_EQ(CountRule(findings, "raw-file-write"), 2);  // ofstream, fopen
  EXPECT_EQ(static_cast<int>(findings.size()),
            CountRule(findings, "raw-file-write"));
}

TEST(LintTest, RawFileWriteSuppressed) {
  EXPECT_TRUE(
      LintFiles({LoadAs("tests/lint/fixtures/raw_filewrite_suppressed.cc",
                        "src/core/raw_filewrite_suppressed.cc")})
          .empty());
}

TEST(LintTest, RawFileWriteScopeAndExemptions) {
  const std::string write =
      "#include <fstream>\n"
      "void F(const char* p) { std::ofstream out(p); }\n";
  // The sanctioned writer, the streaming trace sink, and everything
  // outside src/ may write files directly.
  for (const char* path :
       {"src/common/file_io.cc", "src/common/file_io.h",
        "src/common/trace.cc", "tests/core/foo_test.cc", "tools/gen.cc",
        "bench/bench_foo.cc"}) {
    EXPECT_EQ(CountRule(LintFiles({LoadSource(path, write)}),
                        "raw-file-write"),
              0)
        << path;
  }
  EXPECT_EQ(CountRule(
                LintFiles({LoadSource("src/data/serialization.cc", write)}),
                "raw-file-write"),
            1);
}

TEST(LintTest, GemmLiteralDriftHit) {
  const auto findings =
      Lint({"tests/lint/fixtures/drift_hit/gemm_kernels_base.cc",
            "tests/lint/fixtures/drift_hit/gemm_kernels_avx2.cc"});
  // 1.5f exists only in base, 2.5f only in avx2: one finding per TU.
  EXPECT_EQ(CountRule(findings, "gemm-literal-drift"), 2);
}

TEST(LintTest, GemmLiteralDriftCleanAndSuppressed) {
  EXPECT_TRUE(
      Lint({"tests/lint/fixtures/drift_clean/gemm_kernels_base.cc",
            "tests/lint/fixtures/drift_clean/gemm_kernels_avx2.cc"})
          .empty());
  EXPECT_TRUE(
      Lint({"tests/lint/fixtures/drift_suppressed/gemm_kernels_base.cc",
            "tests/lint/fixtures/drift_suppressed/gemm_kernels_avx2.cc"})
          .empty());
}

TEST(LintTest, ExpectedGuardDerivation) {
  EXPECT_EQ(ExpectedGuard("src/common/status.h"), "NLIDB_COMMON_STATUS_H_");
  EXPECT_EQ(ExpectedGuard("tests/testing/golden.h"),
            "NLIDB_TESTS_TESTING_GOLDEN_H_");
  EXPECT_EQ(ExpectedGuard("bench/bench_json.h"), "NLIDB_BENCH_BENCH_JSON_H_");
}

TEST(LintTest, DefaultTreeSkipsFixturesAndFindsSources) {
  const auto tree = DefaultTree(RepoRoot());
  EXPECT_GT(tree.size(), 150u);
  for (const std::string& path : tree) {
    EXPECT_EQ(path.rfind("tests/lint/fixtures/", 0), std::string::npos)
        << path;
  }
  EXPECT_TRUE(std::count(tree.begin(), tree.end(), "src/common/status.h"));
  EXPECT_TRUE(std::count(tree.begin(), tree.end(), "tools/nlidb_lint.cc"));
}

TEST(LintTest, AuditSuppressionsListsEveryDisableComment) {
  const std::string src =
      "void F() {\n"
      "  int x = 0;  // nlidb-lint: disable(raw-thread)\n"
      "  // nlidb-lint: disable(naked-lock, mutex-coverage)\n"
      "  int y = 0;\n"
      "}\n";
  const auto sups = AuditSuppressions({LoadSource("src/a.cc", src)});
  ASSERT_EQ(sups.size(), 3u);
  EXPECT_EQ(sups[0].line, 2);
  EXPECT_EQ(sups[0].rule, "raw-thread");
  // Line 3 names two rules; entries come out (file, line, rule)-sorted.
  EXPECT_EQ(sups[1].line, 3);
  EXPECT_EQ(sups[1].rule, "mutex-coverage");
  EXPECT_EQ(sups[2].line, 3);
  EXPECT_EQ(sups[2].rule, "naked-lock");
}

TEST(LintTest, ParseAllowlistAcceptsEntriesAndRejectsMalformed) {
  std::vector<std::string> errors;
  const auto budgets = ParseAllowlist(
      "# comment\n"
      "\n"
      "src/a.cc raw-thread 2\n"
      "src/b.cc naked-lock 1\n",
      &errors);
  EXPECT_TRUE(errors.empty());
  ASSERT_EQ(budgets.size(), 2u);
  EXPECT_EQ(budgets[0].file, "src/a.cc");
  EXPECT_EQ(budgets[0].rule, "raw-thread");
  EXPECT_EQ(budgets[0].max_count, 2);

  errors.clear();
  ParseAllowlist("src/a.cc raw-thread\n", &errors);  // missing count
  EXPECT_EQ(errors.size(), 1u);
  errors.clear();
  ParseAllowlist("src/a.cc raw-thread zero\n", &errors);  // not a number
  EXPECT_EQ(errors.size(), 1u);
  errors.clear();
  ParseAllowlist("src/a.cc raw-thread 0\n", &errors);  // must be positive
  EXPECT_EQ(errors.size(), 1u);
}

TEST(LintTest, SuppressionBudgetFlagsOverBudgetAndStaleEntries) {
  const std::vector<Suppression> sups = {
      {"src/a.cc", 10, "raw-thread"},
      {"src/a.cc", 20, "raw-thread"},
      {"src/b.cc", 5, "naked-lock"},
  };
  std::vector<std::string> errors;
  const auto budgets = ParseAllowlist(
      "src/a.cc raw-thread 2\n"
      "src/b.cc naked-lock 3\n",
      &errors);
  ASSERT_TRUE(errors.empty());

  // Within budget: no violations; the over-granted naked-lock entry is
  // reported as stale.
  std::vector<std::string> stale;
  EXPECT_TRUE(CheckSuppressionBudget(sups, budgets, &stale).empty());
  ASSERT_EQ(stale.size(), 1u);
  EXPECT_NE(stale[0].find("src/b.cc"), std::string::npos);

  // A suppression with no allowlist entry at all is over budget 0.
  std::vector<Suppression> extra = sups;
  extra.push_back({"src/c.cc", 1, "mutex-coverage"});
  const auto violations = CheckSuppressionBudget(extra, budgets, nullptr);
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_NE(violations[0].find("src/c.cc"), std::string::npos);
  EXPECT_NE(violations[0].find("mutex-coverage"), std::string::npos);
}

// The suppression-budget gate CI enforces (also exposed as the
// standalone `nlidb_lint_suppression_audit` ctest entry): every
// `nlidb-lint: disable(...)` in the tree is covered by a reviewed entry
// in tools/lint_suppressions.txt.
TEST(LintTest, RealTreeSuppressionsWithinBudget) {
  const std::string root = RepoRoot();
  std::vector<SourceFile> files;
  for (const std::string& rel : DefaultTree(root)) {
    SourceFile file;
    ASSERT_TRUE(LoadSourceFile(root + "/" + rel, rel, &file)) << rel;
    files.push_back(std::move(file));
  }
  SourceFile allowlist;
  ASSERT_TRUE(LoadSourceFile(root + "/tools/lint_suppressions.txt",
                             "tools/lint_suppressions.txt", &allowlist));
  std::string contents;
  for (const std::string& line : allowlist.raw) contents += line + "\n";
  std::vector<std::string> errors;
  const auto budgets = ParseAllowlist(contents, &errors);
  for (const std::string& e : errors) ADD_FAILURE() << e;
  for (const std::string& v :
       CheckSuppressionBudget(AuditSuppressions(files), budgets, nullptr)) {
    ADD_FAILURE() << v;
  }
}

// The gate CI enforces: the committed tree has zero findings. Any new
// violation fails here (and in the standalone `nlidb_lint_tree` ctest
// run) with the exact file:line: rule: message the CLI prints.
TEST(LintTest, RealTreeLintsClean) {
  const std::string root = RepoRoot();
  std::vector<SourceFile> files;
  for (const std::string& rel : DefaultTree(root)) {
    SourceFile file;
    ASSERT_TRUE(LoadSourceFile(root + "/" + rel, rel, &file)) << rel;
    files.push_back(std::move(file));
  }
  const auto findings = LintFiles(files);
  for (const Finding& f : findings) {
    ADD_FAILURE() << f.file << ":" << f.line << ": " << f.rule << ": "
                  << f.message;
  }
}

}  // namespace
}  // namespace lint
}  // namespace nlidb
