// Rule-fixture tests for the nlidb_lint checker (tools/lint_rules.cc).
//
// Every rule is exercised three ways against committed fixture files in
// tests/lint/fixtures/: a positive hit, the same violation waived by a
// `nlidb-lint: disable(rule)` comment, and a clean file. The suite ends
// by asserting the real tree lints clean, which is the same gate CI
// applies through the `nlidb_lint_tree` ctest entry.

#include "tools/lint_rules.h"

#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace nlidb {
namespace lint {
namespace {

std::string RepoRoot() { return std::string(NLIDB_TEST_SOURCE_DIR) + "/.."; }

// `rel` is repo-relative ("tests/lint/fixtures/clean.cc"); findings use
// the same relative path the CLI would print.
SourceFile Load(const std::string& rel) {
  SourceFile file;
  const bool ok = LoadSourceFile(RepoRoot() + "/" + rel, rel, &file);
  EXPECT_TRUE(ok) << "cannot read fixture " << rel;
  return file;
}

std::vector<Finding> Lint(const std::vector<std::string>& rels) {
  std::vector<SourceFile> files;
  for (const std::string& rel : rels) files.push_back(Load(rel));
  return LintFiles(files);
}

std::vector<std::string> Rules(const std::vector<Finding>& findings) {
  std::vector<std::string> rules;
  for (const Finding& f : findings) rules.push_back(f.rule);
  return rules;
}

int CountRule(const std::vector<Finding>& findings, const std::string& rule) {
  const std::vector<std::string> rules = Rules(findings);
  return static_cast<int>(std::count(rules.begin(), rules.end(), rule));
}

TEST(LintTest, CleanFileHasNoFindings) {
  // clean.cc names std::thread / rand() / #pragma once in comments and
  // string literals only; the stripper must keep those from firing.
  EXPECT_TRUE(Lint({"tests/lint/fixtures/clean.cc"}).empty());
}

TEST(LintTest, RawThreadHit) {
  const auto findings = Lint({"tests/lint/fixtures/raw_thread_hit.cc"});
  EXPECT_EQ(CountRule(findings, "raw-thread"), 3);  // thread, async, pthread_
  EXPECT_EQ(static_cast<int>(findings.size()),
            CountRule(findings, "raw-thread"));
}

TEST(LintTest, RawThreadSuppressedSameLineAndPrecedingLine) {
  EXPECT_TRUE(Lint({"tests/lint/fixtures/raw_thread_suppressed.cc"}).empty());
}

TEST(LintTest, RawRandomHit) {
  const auto findings = Lint({"tests/lint/fixtures/raw_random_hit.cc"});
  EXPECT_EQ(CountRule(findings, "raw-random"), 3);  // device, srand, rand
}

TEST(LintTest, RawRandomSuppressed) {
  EXPECT_TRUE(Lint({"tests/lint/fixtures/raw_random_suppressed.cc"}).empty());
}

TEST(LintTest, MutexUnguardedHit) {
  const auto findings = Lint({"tests/lint/fixtures/mutex_unguarded_hit.h"});
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "mutex-unguarded");
  EXPECT_NE(findings[0].message.find("mu_"), std::string::npos);
}

TEST(LintTest, MutexUnguardedSuppressedAndAnnotatedClean) {
  EXPECT_TRUE(
      Lint({"tests/lint/fixtures/mutex_unguarded_suppressed.h"}).empty());
  EXPECT_TRUE(Lint({"tests/lint/fixtures/mutex_guarded_clean.h"}).empty());
}

TEST(LintTest, IncludeGuardMissing) {
  const auto findings = Lint({"tests/lint/fixtures/guard_missing.h"});
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "include-guard");
  EXPECT_EQ(findings[0].line, 1);
}

TEST(LintTest, IncludeGuardPragmaOnce) {
  const auto findings = Lint({"tests/lint/fixtures/guard_pragma_once.h"});
  EXPECT_EQ(CountRule(findings, "include-guard"), 2);  // pragma + no guard
}

TEST(LintTest, IncludeGuardWrongName) {
  const auto findings = Lint({"tests/lint/fixtures/guard_wrong_name.h"});
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "include-guard");
  EXPECT_NE(findings[0].message.find("SOME_OTHER_GUARD_H"),
            std::string::npos);
}

TEST(LintTest, IncludeGuardSuppressed) {
  EXPECT_TRUE(Lint({"tests/lint/fixtures/guard_suppressed.h"}).empty());
}

TEST(LintTest, KernelWallClockHit) {
  const auto findings =
      Lint({"tests/lint/fixtures/wallclock_hit/gemm_tiles.h"});
  EXPECT_GE(CountRule(findings, "kernel-wall-clock"), 2);  // chrono + time()
}

TEST(LintTest, KernelWallClockSuppressed) {
  EXPECT_TRUE(
      Lint({"tests/lint/fixtures/wallclock_suppressed/gemm_tiles.h"})
          .empty());
}

TEST(LintTest, RawTimingHit) {
  const auto findings = Lint({"tests/lint/fixtures/raw_timing_hit.cc"});
  // steady_clock, system_clock, high_resolution_clock.
  EXPECT_EQ(CountRule(findings, "raw-timing"), 3);
  EXPECT_EQ(static_cast<int>(findings.size()),
            CountRule(findings, "raw-timing"));
}

TEST(LintTest, RawTimingSuppressed) {
  EXPECT_TRUE(Lint({"tests/lint/fixtures/raw_timing_suppressed.cc"}).empty());
}

TEST(LintTest, RawTimingExemptsTraceBenchAndKernelTus) {
  const std::string clock_read =
      "#include <chrono>\n"
      "long Stamp() {\n"
      "  return std::chrono::steady_clock::now().time_since_epoch().count();\n"
      "}\n";
  // trace.cc hosts NowNs(); bench TUs time themselves deliberately.
  for (const char* path : {"src/common/trace.cc", "bench/bench_foo.cc"}) {
    const auto findings = LintFiles({LoadSource(path, clock_read)});
    EXPECT_EQ(CountRule(findings, "raw-timing"), 0) << path;
  }
  // Kernel TUs report through the stricter kernel-wall-clock rule only.
  const auto findings =
      LintFiles({LoadSource("src/tensor/gemm_tiles.cc", clock_read)});
  EXPECT_EQ(CountRule(findings, "raw-timing"), 0);
  EXPECT_GE(CountRule(findings, "kernel-wall-clock"), 1);
}

// raw-file-write is scoped to src/, so the fixtures are linted under a
// virtual src/core/ path.
SourceFile LoadAs(const std::string& rel, const std::string& virtual_path) {
  SourceFile file;
  EXPECT_TRUE(LoadSourceFile(RepoRoot() + "/" + rel, virtual_path, &file))
      << "cannot read fixture " << rel;
  return file;
}

TEST(LintTest, RawFileWriteHit) {
  const auto findings =
      LintFiles({LoadAs("tests/lint/fixtures/raw_filewrite_hit.cc",
                        "src/core/raw_filewrite_hit.cc")});
  EXPECT_EQ(CountRule(findings, "raw-file-write"), 2);  // ofstream, fopen
  EXPECT_EQ(static_cast<int>(findings.size()),
            CountRule(findings, "raw-file-write"));
}

TEST(LintTest, RawFileWriteSuppressed) {
  EXPECT_TRUE(
      LintFiles({LoadAs("tests/lint/fixtures/raw_filewrite_suppressed.cc",
                        "src/core/raw_filewrite_suppressed.cc")})
          .empty());
}

TEST(LintTest, RawFileWriteScopeAndExemptions) {
  const std::string write =
      "#include <fstream>\n"
      "void F(const char* p) { std::ofstream out(p); }\n";
  // The sanctioned writer, the streaming trace sink, and everything
  // outside src/ may write files directly.
  for (const char* path :
       {"src/common/file_io.cc", "src/common/file_io.h",
        "src/common/trace.cc", "tests/core/foo_test.cc", "tools/gen.cc",
        "bench/bench_foo.cc"}) {
    EXPECT_EQ(CountRule(LintFiles({LoadSource(path, write)}),
                        "raw-file-write"),
              0)
        << path;
  }
  EXPECT_EQ(CountRule(
                LintFiles({LoadSource("src/data/serialization.cc", write)}),
                "raw-file-write"),
            1);
}

TEST(LintTest, GemmLiteralDriftHit) {
  const auto findings =
      Lint({"tests/lint/fixtures/drift_hit/gemm_kernels_base.cc",
            "tests/lint/fixtures/drift_hit/gemm_kernels_avx2.cc"});
  // 1.5f exists only in base, 2.5f only in avx2: one finding per TU.
  EXPECT_EQ(CountRule(findings, "gemm-literal-drift"), 2);
}

TEST(LintTest, GemmLiteralDriftCleanAndSuppressed) {
  EXPECT_TRUE(
      Lint({"tests/lint/fixtures/drift_clean/gemm_kernels_base.cc",
            "tests/lint/fixtures/drift_clean/gemm_kernels_avx2.cc"})
          .empty());
  EXPECT_TRUE(
      Lint({"tests/lint/fixtures/drift_suppressed/gemm_kernels_base.cc",
            "tests/lint/fixtures/drift_suppressed/gemm_kernels_avx2.cc"})
          .empty());
}

TEST(LintTest, ExpectedGuardDerivation) {
  EXPECT_EQ(ExpectedGuard("src/common/status.h"), "NLIDB_COMMON_STATUS_H_");
  EXPECT_EQ(ExpectedGuard("tests/testing/golden.h"),
            "NLIDB_TESTS_TESTING_GOLDEN_H_");
  EXPECT_EQ(ExpectedGuard("bench/bench_json.h"), "NLIDB_BENCH_BENCH_JSON_H_");
}

TEST(LintTest, DefaultTreeSkipsFixturesAndFindsSources) {
  const auto tree = DefaultTree(RepoRoot());
  EXPECT_GT(tree.size(), 150u);
  for (const std::string& path : tree) {
    EXPECT_EQ(path.rfind("tests/lint/fixtures/", 0), std::string::npos)
        << path;
  }
  EXPECT_TRUE(std::count(tree.begin(), tree.end(), "src/common/status.h"));
  EXPECT_TRUE(std::count(tree.begin(), tree.end(), "tools/nlidb_lint.cc"));
}

// The gate CI enforces: the committed tree has zero findings. Any new
// violation fails here (and in the standalone `nlidb_lint_tree` ctest
// run) with the exact file:line: rule: message the CLI prints.
TEST(LintTest, RealTreeLintsClean) {
  const std::string root = RepoRoot();
  std::vector<SourceFile> files;
  for (const std::string& rel : DefaultTree(root)) {
    SourceFile file;
    ASSERT_TRUE(LoadSourceFile(root + "/" + rel, rel, &file)) << rel;
    files.push_back(std::move(file));
  }
  const auto findings = LintFiles(files);
  for (const Finding& f : findings) {
    ADD_FAILURE() << f.file << ":" << f.line << ": " << f.rule << ": "
                  << f.message;
  }
}

}  // namespace
}  // namespace lint
}  // namespace nlidb
