#ifndef NLIDB_TESTS_LINT_FIXTURES_WALLCLOCK_HIT_GEMM_TILES_H_
#define NLIDB_TESTS_LINT_FIXTURES_WALLCLOCK_HIT_GEMM_TILES_H_

// Lint fixture: wall-clock reads inside a kernel TU (gemm_ basename).
#include <chrono>
#include <ctime>

namespace nlidb {

inline long KernelNow() {
  auto t = std::chrono::system_clock::now().time_since_epoch().count();
  return t + time(nullptr);
}

}  // namespace nlidb

#endif  // NLIDB_TESTS_LINT_FIXTURES_WALLCLOCK_HIT_GEMM_TILES_H_
