#pragma once

// Lint fixture: #pragma once instead of a named guard.

namespace nlidb {
int PragmaOnce();
}  // namespace nlidb
