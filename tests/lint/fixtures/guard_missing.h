// Lint fixture: header with no include guard at all.

namespace nlidb {
int NoGuard();
}  // namespace nlidb
