// Lint fixture: nondeterministic randomness outside common/rng.
#include <cstdlib>
#include <random>

int Roll() {
  std::random_device rd;
  srand(rd());
  return rand() % 6;
}
