#ifndef NLIDB_TESTS_LINT_FIXTURES_MUTEX_GUARDED_CLEAN_H_
#define NLIDB_TESTS_LINT_FIXTURES_MUTEX_GUARDED_CLEAN_H_

// Lint fixture: a properly annotated mutex member.
#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace nlidb {

class Counter {
 public:
  void Add(int d);

 private:
  Mutex mu_;
  int total_ NLIDB_GUARDED_BY(mu_) = 0;
};

}  // namespace nlidb

#endif  // NLIDB_TESTS_LINT_FIXTURES_MUTEX_GUARDED_CLEAN_H_
