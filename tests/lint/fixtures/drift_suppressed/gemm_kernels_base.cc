// Lint fixture: drifting literals, waived on both sides.
namespace nlidb {
float BaseScale() { return 1.5f; }  // nlidb-lint: disable(gemm-literal-drift)
}  // namespace nlidb
