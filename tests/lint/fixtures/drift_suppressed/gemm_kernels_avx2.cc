// Lint fixture: drifting literals, waived on both sides.
namespace nlidb {
float Avx2Scale() { return 2.5f; }  // nlidb-lint: disable(gemm-literal-drift)
}  // namespace nlidb
