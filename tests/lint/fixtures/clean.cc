// Lint fixture: a file that violates no rule. Mentions of std::thread,
// rand(), and "#pragma once" in comments or strings must NOT fire.
#include <string>

namespace nlidb {

int AddOne(int x) {
  const std::string note = "std::thread rand() #pragma once";
  return x + static_cast<int>(note.empty());
}

}  // namespace nlidb
