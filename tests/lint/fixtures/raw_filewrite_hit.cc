// Fixture: raw-file-write positive hits. The rule is scoped to
// production code, so the test lints this file under a virtual
// src/core/ path.
#include <cstdio>
#include <fstream>

void WriteCheckpointWrong(const char* path) {
  std::ofstream out(path);  // torn on crash: should be AtomicFileWriter
  out << "tensor data";
}

void WriteLogWrong(const char* path) {
  std::FILE* f = std::fopen(path, "w");
  if (f != nullptr) std::fclose(f);
}
