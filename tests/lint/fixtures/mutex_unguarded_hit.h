#ifndef NLIDB_TESTS_LINT_FIXTURES_MUTEX_UNGUARDED_HIT_H_
#define NLIDB_TESTS_LINT_FIXTURES_MUTEX_UNGUARDED_HIT_H_

// Lint fixture: a mutex member with no NLIDB_GUARDED_BY state.
#include <mutex>

namespace nlidb {

class Counter {
 public:
  void Add(int d);

 private:
  std::mutex mu_;
  int total_ = 0;
};

}  // namespace nlidb

#endif  // NLIDB_TESTS_LINT_FIXTURES_MUTEX_UNGUARDED_HIT_H_
