// Lint fixture: tier TUs with identical float literals (clean).
namespace nlidb {
float BaseScale() { return 1.5f; }
}  // namespace nlidb
