// Lint fixture: tier TUs with identical float literals (clean).
namespace nlidb {
float Avx2Scale() { return 1.5f; }
}  // namespace nlidb
