// Lint fixture: direct clock reads outside trace.cc / bench.
#include <chrono>

long Stamp() {
  const auto a = std::chrono::steady_clock::now();
  const auto b = std::chrono::system_clock::now();
  const auto c = std::chrono::high_resolution_clock::now();
  return a.time_since_epoch().count() + b.time_since_epoch().count() +
         c.time_since_epoch().count();
}
