#ifndef SOME_OTHER_GUARD_H
#define SOME_OTHER_GUARD_H

// Lint fixture: guard does not match the path-derived name.

namespace nlidb {
int WrongGuard();
}  // namespace nlidb

#endif  // SOME_OTHER_GUARD_H
