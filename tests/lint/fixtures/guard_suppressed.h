#pragma once  // nlidb-lint: disable(include-guard)

// Lint fixture: pragma once, waived. The missing named guard is also
// anchored at the pragma line via the preceding-line rule.
// nlidb-lint: disable(include-guard)

namespace nlidb {
int Waived();
}  // namespace nlidb
