// Lint fixture: base tier TU whose float literals drift from avx2.
namespace nlidb {
float BaseScale() { return 1.5f; }
}  // namespace nlidb
