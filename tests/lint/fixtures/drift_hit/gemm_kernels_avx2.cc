// Lint fixture: avx2 tier TU whose float literals drift from base.
namespace nlidb {
float Avx2Scale() { return 2.5f; }
}  // namespace nlidb
