#ifndef NLIDB_TESTS_LINT_FIXTURES_MUTEX_COVERAGE_SUPPRESSED_H_
#define NLIDB_TESTS_LINT_FIXTURES_MUTEX_COVERAGE_SUPPRESSED_H_

// Lint fixture: the same coverage gaps, waived with a rationale.
#include <string>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace nlidb {

class Ledger {
 public:
  void Add(int d);

 private:
  Mutex mu_{"fixture.ledger"};
  int total_ NLIDB_GUARDED_BY(mu_) = 0;
  // Written once before threads start.  nlidb-lint: disable(mutex-coverage)
  int pending_ = 0;
  std::string label_;  // nlidb-lint: disable(mutex-coverage)
};

}  // namespace nlidb

#endif  // NLIDB_TESTS_LINT_FIXTURES_MUTEX_COVERAGE_SUPPRESSED_H_
