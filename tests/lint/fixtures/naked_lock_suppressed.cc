// Lint fixture: the same naked acquisitions, waived line by line.
#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace nlidb {

Mutex g_mu{"fixture.naked"};
int g_total NLIDB_GUARDED_BY(g_mu) = 0;

void Manual() {
  g_mu.Lock();  // nlidb-lint: disable(naked-lock)
  // nlidb-lint: disable(naked-lock)
  g_mu.Unlock();
}

}  // namespace nlidb
