// Lint fixture: raw threading primitives outside the pool.
#include <future>
#include <thread>

void Spawn() {
  std::thread t([] {});
  t.join();
  auto f = std::async([] { return 1; });
  (void)f.get();
  pthread_exit(nullptr);
}
