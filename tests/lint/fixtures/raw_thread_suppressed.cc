// Lint fixture: the same primitives, waived line by line.
#include <future>
#include <thread>

void Spawn() {
  std::thread t([] {});  // nlidb-lint: disable(raw-thread)
  t.join();
  // nlidb-lint: disable(raw-thread)
  auto f = std::async([] { return 1; });
  (void)f.get();
}
