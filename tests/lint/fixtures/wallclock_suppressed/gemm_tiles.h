#ifndef NLIDB_TESTS_LINT_FIXTURES_WALLCLOCK_SUPPRESSED_GEMM_TILES_H_
#define NLIDB_TESTS_LINT_FIXTURES_WALLCLOCK_SUPPRESSED_GEMM_TILES_H_

// Lint fixture: the same wall-clock reads, waived.
#include <ctime>

namespace nlidb {

inline long KernelNow() {
  return time(nullptr);  // nlidb-lint: disable(kernel-wall-clock)
}

}  // namespace nlidb

#endif  // NLIDB_TESTS_LINT_FIXTURES_WALLCLOCK_SUPPRESSED_GEMM_TILES_H_
