// Fixture: the same raw-file-write violations waived by disable
// comments (same line and preceding line).
#include <cstdio>
#include <fstream>

void WriteScratch(const char* path) {
  std::ofstream out(path);  // nlidb-lint: disable(raw-file-write)
  out << "scratch";
}

void WriteOther(const char* path) {
  // nlidb-lint: disable(raw-file-write)
  std::FILE* f = std::fopen(path, "w");
  if (f != nullptr) std::fclose(f);
}
