// Lint fixture: direct Lock()/Unlock() calls outside the RAII guards.
#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace nlidb {

Mutex g_mu{"fixture.naked"};
int g_total NLIDB_GUARDED_BY(g_mu) = 0;

void Manual() {
  g_mu.Lock();
  g_mu.Unlock();
}

void ManualLowercase(Mutex* mu) {
  mu->lock();
  mu->unlock();
}

}  // namespace nlidb
