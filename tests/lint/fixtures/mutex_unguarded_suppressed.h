#ifndef NLIDB_TESTS_LINT_FIXTURES_MUTEX_UNGUARDED_SUPPRESSED_H_
#define NLIDB_TESTS_LINT_FIXTURES_MUTEX_UNGUARDED_SUPPRESSED_H_

// Lint fixture: the same mutex, waived.
#include <mutex>

namespace nlidb {

class Counter {
 public:
  void Add(int d);

 private:
  std::mutex mu_;  // nlidb-lint: disable(mutex-unguarded)
  int total_ = 0;  // nlidb-lint: disable(mutex-coverage)
};

}  // namespace nlidb

#endif  // NLIDB_TESTS_LINT_FIXTURES_MUTEX_UNGUARDED_SUPPRESSED_H_
