#ifndef NLIDB_TESTS_LINT_FIXTURES_MUTEX_COVERAGE_HIT_H_
#define NLIDB_TESTS_LINT_FIXTURES_MUTEX_COVERAGE_HIT_H_

// Lint fixture: a mutex-owning class with unannotated mutable fields.
// One field carries NLIDB_GUARDED_BY so mutex-unguarded stays quiet and
// only the coverage gaps are reported.
#include <string>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace nlidb {

class Ledger {
 public:
  void Add(int d);

 private:
  Mutex mu_{"fixture.ledger"};
  int total_ NLIDB_GUARDED_BY(mu_) = 0;
  int pending_ = 0;
  std::string label_;
};

}  // namespace nlidb

#endif  // NLIDB_TESTS_LINT_FIXTURES_MUTEX_COVERAGE_HIT_H_
