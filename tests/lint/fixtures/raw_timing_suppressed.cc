// Lint fixture: waived clock read.
#include <chrono>

long Stamp() {
  // nlidb-lint: disable(raw-timing)
  return std::chrono::steady_clock::now().time_since_epoch().count();
}
