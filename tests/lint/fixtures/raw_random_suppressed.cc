// Lint fixture: waived randomness.
#include <cstdlib>

int Roll() {
  return rand() % 6;  // nlidb-lint: disable(raw-random)
}
