#ifndef NLIDB_TESTS_LINT_FIXTURES_MUTEX_COVERAGE_CLEAN_H_
#define NLIDB_TESTS_LINT_FIXTURES_MUTEX_COVERAGE_CLEAN_H_

// Lint fixture: full coverage — every field of the mutex-owning class
// is annotated, const, atomic, or a reference bound at construction.
#include <atomic>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace nlidb {

class Ledger {
 public:
  explicit Ledger(const std::string& name);

  void Add(int d);
  int Total() const;

 private:
  static constexpr int kShards = 4;

  const std::string name_;
  const int* const limit_;
  std::atomic<long> fast_total_{0};
  mutable Mutex mu_{"fixture.ledger"};
  CondVar cv_;
  std::vector<int> entries_ NLIDB_GUARDED_BY(mu_);
  int total_ NLIDB_GUARDED_BY(mu_) = 0;
};

// A class with no mutex member is outside the rule entirely.
struct PlainConfig {
  int retries = 3;
  std::string endpoint;
};

}  // namespace nlidb

#endif  // NLIDB_TESTS_LINT_FIXTURES_MUTEX_COVERAGE_CLEAN_H_
