#include "eval/metrics.h"

#include <gtest/gtest.h>

#include "data/generator.h"

namespace nlidb {
namespace eval {
namespace {

sql::Schema TestSchema() {
  return sql::Schema({{"name", sql::DataType::kText},
                      {"points", sql::DataType::kReal}});
}

sql::Table TestTable() {
  sql::Table t("t", TestSchema());
  EXPECT_TRUE(t.AddRow({sql::Value::Text("ava"), sql::Value::Real(3)}).ok());
  EXPECT_TRUE(t.AddRow({sql::Value::Text("omar"), sql::Value::Real(7)}).ok());
  return t;
}

TEST(MetricsTest, LogicalFormIsOrderSensitiveQueryMatchIsNot) {
  sql::SelectQuery a;
  a.select_column = 0;
  a.conditions.push_back({1, sql::CondOp::kGt, sql::Value::Real(1)});
  a.conditions.push_back({0, sql::CondOp::kEq, sql::Value::Text("ava")});
  sql::SelectQuery b = a;
  std::swap(b.conditions[0], b.conditions[1]);
  EXPECT_FALSE(LogicalFormMatch(a, b));
  EXPECT_TRUE(QueryMatch(a, b, TestSchema()));
}

TEST(MetricsTest, ExecutionMatchComparesResults) {
  sql::Table t = TestTable();
  sql::SelectQuery gold;
  gold.select_column = 0;
  gold.conditions.push_back({1, sql::CondOp::kGt, sql::Value::Real(5)});
  // A different query with the same result set on this table.
  sql::SelectQuery pred;
  pred.select_column = 0;
  pred.conditions.push_back({0, sql::CondOp::kEq, sql::Value::Text("omar")});
  EXPECT_TRUE(ExecutionMatch(pred, gold, t));
  pred.conditions[0].value = sql::Value::Text("ava");
  EXPECT_FALSE(ExecutionMatch(pred, gold, t));
}

TEST(MetricsTest, EvaluateCountsFailures) {
  data::GeneratorConfig gc;
  gc.num_tables = 3;
  gc.questions_per_table = 3;
  gc.seed = 8;
  data::WikiSqlGenerator gen(gc, data::TrainDomains());
  data::Dataset ds = gen.Generate();
  // Oracle translator: returns gold -> all accuracies are 1.
  AccuracyReport oracle = Evaluate(ds, [](const data::Example& ex) {
    return StatusOr<sql::SelectQuery>(ex.query);
  });
  EXPECT_FLOAT_EQ(oracle.acc_lf, 1.0f);
  EXPECT_FLOAT_EQ(oracle.acc_qm, 1.0f);
  EXPECT_FLOAT_EQ(oracle.acc_ex, 1.0f);
  EXPECT_EQ(oracle.translation_failures, 0);

  // Failing translator: everything fails, accuracy 0.
  AccuracyReport failing = Evaluate(ds, [](const data::Example&) {
    return StatusOr<sql::SelectQuery>(Status::Internal("boom"));
  });
  EXPECT_FLOAT_EQ(failing.acc_qm, 0.0f);
  EXPECT_EQ(failing.translation_failures, static_cast<int>(ds.size()));
}

TEST(MetricsTest, EvaluateOnEmptyDataset) {
  data::Dataset empty;
  AccuracyReport r = Evaluate(empty, [](const data::Example& ex) {
    return StatusOr<sql::SelectQuery>(ex.query);
  });
  EXPECT_EQ(r.count, 0);
  EXPECT_FLOAT_EQ(r.acc_qm, 0.0f);
}

TEST(MetricsTest, MentionAndRecoveryReportsSaneOnUntrainedPipeline) {
  auto provider = std::make_shared<text::EmbeddingProvider>();
  data::RegisterDomainClusters(*provider);
  core::ModelConfig config = core::ModelConfig::Tiny();
  config.word_dim = provider->dim();
  core::NlidbPipeline pipeline(config, provider);
  data::GeneratorConfig gc;
  gc.num_tables = 3;
  gc.questions_per_table = 3;
  gc.seed = 9;
  data::WikiSqlGenerator gen(gc, data::TrainDomains());
  data::Dataset ds = gen.Generate();
  MentionReport mentions = EvaluateMentions(pipeline, ds);
  EXPECT_GE(mentions.span_precision, 0.0f);
  EXPECT_LE(mentions.span_precision, 1.0f);
  EXPECT_GE(mentions.span_recall, 0.0f);
  EXPECT_LE(mentions.span_recall, 1.0f);
  EXPECT_EQ(mentions.count, static_cast<int>(ds.size()));
  RecoveryReport rec = EvaluateRecovery(pipeline, ds);
  EXPECT_GE(rec.acc_before, 0.0f);
  EXPECT_LE(rec.acc_after, 1.0f);
}

TEST(MetricsTest, ReportToStringMentionsAllMetrics) {
  AccuracyReport r;
  r.acc_lf = 0.5f;
  r.acc_qm = 0.625f;
  r.acc_ex = 0.75f;
  r.count = 8;
  const std::string s = r.ToString();
  EXPECT_NE(s.find("Acc_lf 50.0%"), std::string::npos);
  EXPECT_NE(s.find("Acc_qm 62.5%"), std::string::npos);
  EXPECT_NE(s.find("Acc_ex 75.0%"), std::string::npos);
}

}  // namespace
}  // namespace eval
}  // namespace nlidb
