// Lock-discipline analyzer tests (src/common/lockdep.{h,cc}): seeded
// ABBA inversion detection from a single benign execution, CondVar
// stuck-wait watchdog, per-name mutex metrics, and the disabled-path
// contract. Each test toggles the detector explicitly and resets the
// graph so seeded inversions never poison later assertions.

#include "common/lockdep.h"

#include <chrono>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/metrics.h"
#include "common/mutex.h"
#include "common/thread_pool.h"

namespace nlidb {
namespace {

/// RAII detector scope: on at construction, reports/graph wiped and
/// detector returned to its entry state on destruction.
class DetectorScope {
 public:
  DetectorScope() : was_enabled_(lockdep::Enabled()) {
    lockdep::ResetGraphForTest();
    lockdep::ClearReports();
    lockdep::SetEnabled(true);
  }
  ~DetectorScope() {
    lockdep::ResetGraphForTest();
    lockdep::ClearReports();
    lockdep::SetEnabled(was_enabled_);
  }

 private:
  bool was_enabled_;
};

std::vector<lockdep::Report> ReportsOfKind(lockdep::Report::Kind kind) {
  std::vector<lockdep::Report> out;
  for (const lockdep::Report& r : lockdep::Reports()) {
    if (r.kind == kind) out.push_back(r);
  }
  return out;
}

TEST(LockdepTest, DisabledUnlessEnvironmentOptsIn) {
  if (std::getenv("NLIDB_DEADLOCK") == nullptr &&
      !lockdep::Enabled()) {
    // The shipped default: detector off, Mutex::Lock pays one relaxed
    // atomic load. (CI legs that export NLIDB_DEADLOCK=on skip this.)
    EXPECT_FALSE(lockdep::Enabled());
    EXPECT_FALSE(lockdep::FatalReports());
  }
}

TEST(LockdepTest, BenignNestingProducesNoReports) {
  DetectorScope detector;
  Mutex outer{"test.nest_outer"};
  Mutex inner{"test.nest_inner"};
  for (int i = 0; i < 3; ++i) {
    MutexLock hold_outer(outer);
    MutexLock hold_inner(inner);
  }
  EXPECT_TRUE(lockdep::Reports().empty());
}

TEST(LockdepTest, SeededAbbaInversionReportedWithBothStacks) {
  DetectorScope detector;
  Mutex a{"test.abba_a"};
  Mutex b{"test.abba_b"};
  {
    // Teach the detector a -> b.
    MutexLock hold_a(a);
    MutexLock hold_b(b);
  }
  {
    // Invert to b -> a. Timing never deadlocks (single thread), but the
    // order cycle must be reported the moment it closes.
    MutexLock hold_b(b);
    MutexLock hold_a(a);
  }
  const auto inversions =
      ReportsOfKind(lockdep::Report::Kind::kOrderInversion);
  ASSERT_EQ(inversions.size(), 1u);
  const lockdep::Report& r = inversions[0];
  // Both lock classes are named, in the report fields and in the
  // rendered cycle.
  EXPECT_NE(r.message.find("test.abba_a"), std::string::npos) << r.message;
  EXPECT_NE(r.message.find("test.abba_b"), std::string::npos) << r.message;
  EXPECT_NE(r.cycle.find("test.abba_a"), std::string::npos) << r.cycle;
  EXPECT_NE(r.cycle.find("test.abba_b"), std::string::npos) << r.cycle;
  // BOTH acquisition stacks: the recorded a -> b edge and the inverting
  // acquisition.
  EXPECT_FALSE(r.first_stack.empty());
  EXPECT_FALSE(r.second_stack.empty());
  // The artifact rendering carries the whole story.
  const std::string rendered = lockdep::RenderReports();
  EXPECT_NE(rendered.find("test.abba_a"), std::string::npos);
  EXPECT_NE(rendered.find("test.abba_b"), std::string::npos);
}

TEST(LockdepTest, InversionReportedOncePerClassPair) {
  DetectorScope detector;
  Mutex a{"test.once_a"};
  Mutex b{"test.once_b"};
  {
    MutexLock hold_a(a);
    MutexLock hold_b(b);
  }
  for (int i = 0; i < 4; ++i) {
    MutexLock hold_b(b);
    MutexLock hold_a(a);
  }
  EXPECT_EQ(ReportsOfKind(lockdep::Report::Kind::kOrderInversion).size(),
            1u);
}

TEST(LockdepTest, TransitiveCycleDetected) {
  DetectorScope detector;
  Mutex a{"test.tri_a"};
  Mutex b{"test.tri_b"};
  Mutex c{"test.tri_c"};
  {
    MutexLock hold_a(a);
    MutexLock hold_b(b);
  }
  {
    MutexLock hold_b(b);
    MutexLock hold_c(c);
  }
  {
    // c -> a closes a -> b -> c -> a without any direct a/c inversion.
    MutexLock hold_c(c);
    MutexLock hold_a(a);
  }
  const auto inversions =
      ReportsOfKind(lockdep::Report::Kind::kOrderInversion);
  ASSERT_EQ(inversions.size(), 1u);
  EXPECT_NE(inversions[0].cycle.find("test.tri_b"), std::string::npos)
      << inversions[0].cycle;
}

TEST(LockdepTest, TryLockFeedsHeldSetWithoutFalsePositives) {
  DetectorScope detector;
  Mutex a{"test.try_a"};
  Mutex b{"test.try_b"};
  {
    ASSERT_TRUE(a.TryLock());
    MutexLock hold_b(b);
    a.Unlock();  // nlidb-lint: disable(naked-lock)
  }
  {
    MutexLock hold_b(b);
    ASSERT_TRUE(a.TryLock());
    a.Unlock();  // nlidb-lint: disable(naked-lock)
  }
  // try_lock acquisitions may not *wait*, so the b-held -> a acquisition
  // cannot deadlock and must not be reported as an inversion.
  EXPECT_TRUE(
      ReportsOfKind(lockdep::Report::Kind::kOrderInversion).empty());
}

TEST(LockdepTest, CondVarWatchdogReportsStuckWait) {
  DetectorScope detector;
  const int old_timeout = lockdep::WatchdogTimeoutMs();
  lockdep::SetWatchdogTimeoutMs(50);
  Mutex mu{"test.watchdog"};
  CondVar cv;
  {
    MutexLock hold(mu);
    // Nobody notifies: the watchdog round times out, reports, and
    // returns like a spurious wakeup.
    cv.Wait(mu);
  }
  lockdep::SetWatchdogTimeoutMs(old_timeout);
  const auto stuck = ReportsOfKind(lockdep::Report::Kind::kStuckWait);
  ASSERT_EQ(stuck.size(), 1u);
  EXPECT_NE(stuck[0].first_mutex.find("test.watchdog"), std::string::npos);
  EXPECT_NE(stuck[0].message.find("test.watchdog"), std::string::npos);
}

TEST(LockdepTest, NotifiedWaitDoesNotReport) {
  DetectorScope detector;
  const int old_timeout = lockdep::WatchdogTimeoutMs();
  lockdep::SetWatchdogTimeoutMs(5000);
  Mutex mu{"test.notified"};
  CondVar cv;
  bool ready = false;
  // Chunk 0 runs on the calling thread (waiter), chunk 1 on the pool
  // worker (notifier) — a notify well inside the watchdog window.
  ThreadPool pool(2);
  pool.ParallelFor(0, 2, [&](int begin, int end) {
    for (int i = begin; i < end; ++i) {
      if (i == 0) {
        MutexLock hold(mu);
        cv.Wait(mu, [&] { return ready; });
      } else {
        MutexLock hold(mu);
        ready = true;
        cv.NotifyAll();
      }
    }
  });
  lockdep::SetWatchdogTimeoutMs(old_timeout);
  EXPECT_TRUE(ReportsOfKind(lockdep::Report::Kind::kStuckWait).empty());
}

TEST(LockdepTest, IdleWaitIsWatchdogExempt) {
  DetectorScope detector;
  const int old_timeout = lockdep::WatchdogTimeoutMs();
  lockdep::SetWatchdogTimeoutMs(50);
  Mutex mu{"test.idle"};
  CondVar cv;
  bool ready = false;
  // The notify lands well AFTER the 50ms watchdog window: a plain Wait
  // would file a stuck-wait report, an idle park must not (this is the
  // worker-pool / serving-queue steady state).
  ThreadPool pool(2);
  pool.ParallelFor(0, 2, [&](int begin, int end) {
    for (int i = begin; i < end; ++i) {
      if (i == 0) {
        MutexLock hold(mu);
        cv.WaitIdle(mu, [&] { return ready; });
      } else {
        std::this_thread::sleep_for(std::chrono::milliseconds(120));
        MutexLock hold(mu);
        ready = true;
        cv.NotifyAll();
      }
    }
  });
  lockdep::SetWatchdogTimeoutMs(old_timeout);
  EXPECT_TRUE(ReportsOfKind(lockdep::Report::Kind::kStuckWait).empty());
}

TEST(LockdepTest, NamedMutexMetricsRecorded) {
  DetectorScope detector;
  Mutex mu{"test.metrics_probe"};
  for (int i = 0; i < 5; ++i) {
    MutexLock hold(mu);
  }
  auto& held =
      metrics::MetricsRegistry::Global().GetHistogram(
          "mutex.test.metrics_probe.held_ns");
  EXPECT_GE(held.Count(), 5);
  EXPECT_GE(metrics::MetricsRegistry::Global()
                .GetCounter("lockdep.acquisitions")
                .Value(),
            5);
}

TEST(LockdepTest, ClearReportsKeepsLearnedOrder) {
  DetectorScope detector;
  Mutex a{"test.retain_a"};
  Mutex b{"test.retain_b"};
  {
    MutexLock hold_a(a);
    MutexLock hold_b(b);
  }
  lockdep::ClearReports();
  {
    MutexLock hold_b(b);
    MutexLock hold_a(a);
  }
  // The a -> b ordering learned before ClearReports still convicts the
  // inversion: only reports are dropped, not the graph.
  EXPECT_EQ(ReportsOfKind(lockdep::Report::Kind::kOrderInversion).size(),
            1u);
}

TEST(LockdepTest, DisabledSequencesAreInvisible) {
  DetectorScope detector;
  lockdep::SetEnabled(false);
  Mutex a{"test.dark_a"};
  Mutex b{"test.dark_b"};
  {
    MutexLock hold_a(a);
    MutexLock hold_b(b);
  }
  {
    MutexLock hold_b(b);
    MutexLock hold_a(a);
  }
  EXPECT_TRUE(lockdep::Reports().empty());
}

}  // namespace
}  // namespace nlidb
