#include "common/strings.h"

#include <gtest/gtest.h>

namespace nlidb {
namespace {

TEST(StringsTest, SplitBasic) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Split("a,,c", ','), (std::vector<std::string>{"a", "c"}));
  EXPECT_EQ(Split("a,,c", ',', /*keep_empty=*/true),
            (std::vector<std::string>{"a", "", "c"}));
  EXPECT_TRUE(Split("", ',').empty());
}

TEST(StringsTest, SplitTrailingSeparator) {
  EXPECT_EQ(Split("a,b,", ',', true), (std::vector<std::string>{"a", "b", ""}));
}

TEST(StringsTest, SplitWhitespaceCollapsesRuns) {
  EXPECT_EQ(SplitWhitespace("  foo \t bar\nbaz "),
            (std::vector<std::string>{"foo", "bar", "baz"}));
  EXPECT_TRUE(SplitWhitespace("   ").empty());
}

TEST(StringsTest, JoinRoundTripsSplit) {
  const std::vector<std::string> parts = {"x", "y", "z"};
  EXPECT_EQ(Join(parts, ", "), "x, y, z");
  EXPECT_EQ(Split(Join(parts, "|"), '|'), parts);
  EXPECT_EQ(Join({}, ","), "");
}

TEST(StringsTest, Strip) {
  EXPECT_EQ(Strip("  hi  "), "hi");
  EXPECT_EQ(Strip("hi"), "hi");
  EXPECT_EQ(Strip("   "), "");
}

TEST(StringsTest, ToLower) {
  EXPECT_EQ(ToLower("MiXeD 42!"), "mixed 42!");
}

TEST(StringsTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("prefix_rest", "prefix"));
  EXPECT_FALSE(StartsWith("pre", "prefix"));
  EXPECT_TRUE(EndsWith("file.txt", ".txt"));
  EXPECT_FALSE(EndsWith("txt", ".txt"));
}

TEST(StringsTest, LooksNumeric) {
  EXPECT_TRUE(LooksNumeric("42"));
  EXPECT_TRUE(LooksNumeric("-3.5"));
  EXPECT_TRUE(LooksNumeric("0.25"));
  EXPECT_FALSE(LooksNumeric("3.5.1"));
  EXPECT_FALSE(LooksNumeric("12a"));
  EXPECT_FALSE(LooksNumeric("2006-07"));
  EXPECT_FALSE(LooksNumeric(""));
  EXPECT_FALSE(LooksNumeric("-"));
  EXPECT_FALSE(LooksNumeric("."));
}

TEST(StringsTest, ReplaceAll) {
  EXPECT_EQ(ReplaceAll("a_b_c", "_", " "), "a b c");
  EXPECT_EQ(ReplaceAll("aaa", "aa", "b"), "ba");  // non-overlapping greedy
  EXPECT_EQ(ReplaceAll("none", "x", "y"), "none");
}

TEST(StringsTest, Fnv1aHashStableAndSpread) {
  EXPECT_EQ(Fnv1aHash("director"), Fnv1aHash("director"));
  EXPECT_NE(Fnv1aHash("director"), Fnv1aHash("directos"));
  EXPECT_NE(Fnv1aHash(""), Fnv1aHash(" "));
}

}  // namespace
}  // namespace nlidb
