#include "common/status.h"

#include <gtest/gtest.h>

namespace nlidb {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad dims");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad dims");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad dims");
}

TEST(StatusTest, AllFactoriesProduceDistinctCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::IoError("x").code(), StatusCode::kIoError);
  EXPECT_EQ(Status::ParseError("x").code(), StatusCode::kParseError);
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value(), 42);
  EXPECT_EQ(*v, 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = Status::NotFound("nope");
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
}

TEST(StatusOrTest, MoveOutValue) {
  StatusOr<std::string> v = std::string("hello");
  std::string s = std::move(v).value();
  EXPECT_EQ(s, "hello");
}

Status FailsThenPropagates() {
  NLIDB_RETURN_IF_ERROR(Status::Internal("inner"));
  return Status::Ok();
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  Status s = FailsThenPropagates();
  EXPECT_EQ(s.code(), StatusCode::kInternal);
  EXPECT_EQ(s.message(), "inner");
}

}  // namespace
}  // namespace nlidb
