// Tests for the lock-sharded metrics substrate (src/common/metrics.h):
// counter sharding, gauge maxima, histogram bucketing/percentiles, the
// registry's stable-reference contract, and concurrent recording from
// ThreadPool workers (this suite runs under TSan in CI).

#include "common/metrics.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "common/thread_pool.h"

namespace nlidb {
namespace metrics {
namespace {

TEST(DenseThreadIdTest, StableAndNonNegative) {
  const int id = DenseThreadId();
  EXPECT_GE(id, 0);
  EXPECT_EQ(DenseThreadId(), id);  // same thread, same id
}

TEST(CounterTest, IncrementValueReset) {
  Counter c;
  EXPECT_EQ(c.Value(), 0);
  c.Increment();
  c.Increment(41);
  EXPECT_EQ(c.Value(), 42);
  c.Reset();
  EXPECT_EQ(c.Value(), 0);
}

TEST(CounterTest, ConcurrentIncrementsAllLand) {
  ThreadPool::SetGlobalParallelism(8);
  Counter c;
  constexpr int kItems = 10000;
  ThreadPool::Global().ParallelFor(0, kItems, [&](int jb, int je) {
    for (int i = jb; i < je; ++i) c.Increment();
  });
  ThreadPool::SetGlobalParallelism(ThreadPool::DefaultParallelism());
  EXPECT_EQ(c.Value(), kItems);
}

TEST(MaxGaugeTest, TracksMaximum) {
  MaxGauge g;
  EXPECT_EQ(g.Value(), 0);
  g.Update(5);
  g.Update(3);
  EXPECT_EQ(g.Value(), 5);
  g.Update(9);
  EXPECT_EQ(g.Value(), 9);
  g.Reset();
  EXPECT_EQ(g.Value(), 0);
}

TEST(HistogramTest, BucketBoundsArePowersOfTwoMicroseconds) {
  EXPECT_EQ(Histogram::BucketUpperBoundNs(0), 1000u << 0);
  EXPECT_EQ(Histogram::BucketUpperBoundNs(1), 1000u << 1);
  for (int b = 1; b + 1 < Histogram::kNumBuckets - 1; ++b) {
    EXPECT_EQ(Histogram::BucketUpperBoundNs(b + 1),
              2 * Histogram::BucketUpperBoundNs(b));
  }
  EXPECT_EQ(Histogram::BucketUpperBoundNs(Histogram::kNumBuckets - 1),
            UINT64_MAX);
}

TEST(HistogramTest, RecordPlacesSamplesInTheRightBucket) {
  Histogram h;
  h.Record(500);        // < 1µs -> bucket 0
  h.Record(1500);       // [1µs, 2µs) -> bucket 1
  h.Record(3000000);    // 3ms
  EXPECT_EQ(h.Count(), 3);
  EXPECT_EQ(h.SumNs(), 500 + 1500 + 3000000);
  EXPECT_EQ(h.BucketCount(0), 1);
  EXPECT_EQ(h.BucketCount(1), 1);
  int64_t total = 0;
  for (int b = 0; b < Histogram::kNumBuckets; ++b) total += h.BucketCount(b);
  EXPECT_EQ(total, h.Count());
  // The 3ms sample lands in a bucket whose bounds contain it.
  for (int b = 1; b < Histogram::kNumBuckets; ++b) {
    if (h.BucketCount(b) && b != 1) {
      EXPECT_LE(Histogram::BucketUpperBoundNs(b - 1), 3000000u);
      EXPECT_GT(Histogram::BucketUpperBoundNs(b), 3000000u);
    }
  }
}

TEST(HistogramTest, PercentilesAreOrderedAndBracketed) {
  Histogram h;
  EXPECT_EQ(h.ApproxPercentileNs(0.5), 0u);  // empty
  for (int i = 0; i < 1000; ++i) h.Record(10000);   // 10µs
  for (int i = 0; i < 10; ++i) h.Record(50000000);  // 50ms outliers
  const uint64_t p50 = h.ApproxPercentileNs(0.5);
  const uint64_t p99 = h.ApproxPercentileNs(0.99);
  const uint64_t p999 = h.ApproxPercentileNs(0.999);
  EXPECT_LE(p50, p99);
  EXPECT_LE(p99, p999);
  // p50 must sit in the 10µs bucket's range, p99.9 near the outliers.
  EXPECT_GE(p50, 8000u);
  EXPECT_LE(p50, 16000u);
  EXPECT_GT(p999, 16000000u);
}

TEST(HistogramTest, ConcurrentRecordsAllLand) {
  ThreadPool::SetGlobalParallelism(8);
  Histogram h;
  constexpr int kItems = 10000;
  ThreadPool::Global().ParallelFor(0, kItems, [&](int jb, int je) {
    for (int i = jb; i < je; ++i) h.Record(static_cast<uint64_t>(i) * 100);
  });
  ThreadPool::SetGlobalParallelism(ThreadPool::DefaultParallelism());
  EXPECT_EQ(h.Count(), kItems);
  int64_t total = 0;
  for (int b = 0; b < Histogram::kNumBuckets; ++b) total += h.BucketCount(b);
  EXPECT_EQ(total, kItems);
}

TEST(MetricsRegistryTest, SameNameSameInstance) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  Counter& a = reg.GetCounter("test.registry.counter");
  Counter& b = reg.GetCounter("test.registry.counter");
  EXPECT_EQ(&a, &b);
  MaxGauge& g1 = reg.GetGauge("test.registry.gauge");
  MaxGauge& g2 = reg.GetGauge("test.registry.gauge");
  EXPECT_EQ(&g1, &g2);
  Histogram& h1 = reg.GetHistogram("test.registry.hist");
  Histogram& h2 = reg.GetHistogram("test.registry.hist");
  EXPECT_EQ(&h1, &h2);
}

TEST(MetricsRegistryTest, RenderTextShowsNonZeroInstruments) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  Counter& c = reg.GetCounter("test.render.visible");
  c.Increment(3);
  reg.GetCounter("test.render.zero");  // stays zero
  const std::string text = reg.RenderText();
  EXPECT_NE(text.find("test.render.visible"), std::string::npos) << text;
  EXPECT_EQ(text.find("test.render.zero"), std::string::npos) << text;
  const std::string with_zero = reg.RenderText(/*include_zero=*/true);
  EXPECT_NE(with_zero.find("test.render.zero"), std::string::npos);
  c.Reset();
}

TEST(MetricsRegistryTest, ConcurrentGetOrCreateIsSafe) {
  // Registry lookups race against each other from pool workers; every
  // thread must agree on the instrument instance (TSan gate).
  ThreadPool::SetGlobalParallelism(8);
  MetricsRegistry& reg = MetricsRegistry::Global();
  Counter& reference = reg.GetCounter("test.registry.race");
  ThreadPool::Global().ParallelFor(0, 256, [&](int jb, int je) {
    for (int i = jb; i < je; ++i) {
      Counter& c =
          reg.GetCounter("test.registry.race");
      EXPECT_EQ(&c, &reference);
      c.Increment();
    }
  });
  ThreadPool::SetGlobalParallelism(ThreadPool::DefaultParallelism());
  EXPECT_EQ(reference.Value(), 256);
}

}  // namespace
}  // namespace metrics
}  // namespace nlidb
