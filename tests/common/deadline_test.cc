// Unit coverage for the deadline/cancellation value types the serving
// engine builds its shedding decisions on: the 0-sentinel "no deadline"
// encoding, expiry math, the external cancel flag, and the
// null-tolerant helpers.

#include "common/deadline.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

namespace nlidb {
namespace {

TEST(DeadlineTest, DefaultIsUnsetAndNeverExpires) {
  Deadline d;
  EXPECT_FALSE(d.has_deadline());
  EXPECT_EQ(d.at_ns(), 0u);
  EXPECT_FALSE(d.Expired());
}

TEST(DeadlineTest, AfterNanosSetsAbsolutePointInTraceClockDomain) {
  const uint64_t before = trace::NowNs();
  Deadline d = Deadline::AfterNanos(1000000000ull);  // 1s out
  EXPECT_TRUE(d.has_deadline());
  EXPECT_GE(d.at_ns(), before + 1000000000ull);
  EXPECT_FALSE(d.Expired());
}

TEST(DeadlineTest, AfterMillisIsMillionTimesNanos) {
  const uint64_t before = trace::NowNs();
  Deadline d = Deadline::AfterMillis(5);
  EXPECT_GE(d.at_ns(), before + 5000000ull);
  EXPECT_LT(d.at_ns(), trace::NowNs() + 6000000ull);
}

TEST(DeadlineTest, ExpiresOnceTheClockPasses) {
  Deadline d = Deadline::AfterNanos(1);
  std::this_thread::sleep_for(std::chrono::milliseconds(1));
  EXPECT_TRUE(d.Expired());
}

TEST(CancelContextTest, UnsetContextNeverExpires) {
  CancelContext ctx;
  EXPECT_FALSE(ctx.Expired());
  EXPECT_TRUE(ctx.Check("nowhere").ok());
}

TEST(CancelContextTest, CancelFlagTripsIndependentlyOfDeadline) {
  std::atomic<bool> cancel{false};
  CancelContext ctx;
  ctx.cancel = &cancel;
  EXPECT_FALSE(ctx.Expired());
  cancel.store(true);
  EXPECT_TRUE(ctx.Expired());
  // The deadline is still unset; the flag alone trips the context.
  EXPECT_FALSE(ctx.deadline.has_deadline());
}

TEST(CancelContextTest, CheckNamesTheAbandonmentSite) {
  std::atomic<bool> cancel{true};
  CancelContext ctx;
  ctx.cancel = &cancel;
  Status s = ctx.Check("decode step");
  EXPECT_EQ(s.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(s.message(), "deadline exceeded at decode step");
}

TEST(CancelContextTest, NullTolerantHelpersTreatNullAsUnbounded) {
  EXPECT_TRUE(CheckCancel(nullptr, "anywhere").ok());
  EXPECT_FALSE(CancelExpired(nullptr));
  std::atomic<bool> cancel{true};
  CancelContext ctx;
  ctx.cancel = &cancel;
  EXPECT_TRUE(CancelExpired(&ctx));
  EXPECT_FALSE(CheckCancel(&ctx, "loop").ok());
}

TEST(CancelContextTest, ExpiredDeadlineTripsContextWithoutCancelFlag) {
  CancelContext ctx;
  ctx.deadline = Deadline::AfterNanos(1);
  std::this_thread::sleep_for(std::chrono::milliseconds(1));
  EXPECT_TRUE(ctx.Expired());
  EXPECT_EQ(ctx.Check("annotate").code(), StatusCode::kDeadlineExceeded);
}

}  // namespace
}  // namespace nlidb
