// Tests for the RAII tracing substrate (src/common/trace.h): disabled
// no-op behavior, span nesting on one thread and across ThreadPool
// workers, sink swapping, and the JSON-lines sink's output format.

#include "common/trace.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/thread_pool.h"

namespace nlidb {
namespace trace {
namespace {

// Every test restores the no-sink default so suites compose.
class TraceTest : public ::testing::Test {
 protected:
  void TearDown() override { SetSink(nullptr); }
};

TEST_F(TraceTest, DisabledSpansAreInertAndFree) {
  ASSERT_EQ(CurrentSink(), nullptr);
  EXPECT_FALSE(Enabled());
  TraceSpan span("test.disabled");
  EXPECT_FALSE(span.active());
  EXPECT_EQ(CurrentSpanId(), 0);  // disabled spans never become parent
  span.Annotate("key", std::string("value"));
  span.Annotate("count", int64_t{7});
}

TEST_F(TraceTest, EnabledWhenSinkInstalled) {
  auto sink = std::make_shared<InMemorySink>();
  SetSink(sink);
  EXPECT_TRUE(Enabled());
  { TraceSpan span("test.enabled"); EXPECT_TRUE(span.active()); }
  SetSink(nullptr);
  EXPECT_FALSE(Enabled());
  ASSERT_EQ(sink->Records().size(), 1u);
  EXPECT_EQ(sink->Records()[0].name, "test.enabled");
}

TEST_F(TraceTest, NestedSpansFormATree) {
  auto sink = std::make_shared<InMemorySink>();
  SetSink(sink);
  int outer_id = 0;
  {
    TraceSpan outer("test.outer");
    outer_id = CurrentSpanId();
    EXPECT_GT(outer_id, 0);
    {
      TraceSpan inner("test.inner");
      EXPECT_NE(CurrentSpanId(), outer_id);
      inner.Annotate("depth", int64_t{2});
    }
    EXPECT_EQ(CurrentSpanId(), outer_id);  // parent restored
  }
  EXPECT_EQ(CurrentSpanId(), 0);
  const auto records = sink->Records();
  ASSERT_EQ(records.size(), 2u);  // completion order: inner first
  EXPECT_EQ(records[0].name, "test.inner");
  EXPECT_EQ(records[0].parent_id, outer_id);
  ASSERT_EQ(records[0].annotations.size(), 1u);
  EXPECT_EQ(records[0].annotations[0].first, "depth");
  EXPECT_EQ(records[0].annotations[0].second, "2");
  EXPECT_EQ(records[1].name, "test.outer");
  EXPECT_EQ(records[1].span_id, outer_id);
  EXPECT_EQ(records[1].parent_id, 0);
  EXPECT_GT(records[1].span_id, 0);
  EXPECT_NE(records[0].span_id, records[1].span_id);
  // The outer span covers the inner one.
  EXPECT_LE(records[1].start_ns, records[0].start_ns);
  EXPECT_GE(records[1].start_ns + records[1].duration_ns,
            records[0].start_ns + records[0].duration_ns);
}

TEST_F(TraceTest, WorkerSpansParentUnderTheEnqueuingSpan) {
  // ThreadPool::RunJob re-installs the enqueuing span id on workers via
  // ScopedParent, so spans opened inside ParallelFor bodies stitch into
  // the request tree instead of floating as roots.
  ThreadPool::SetGlobalParallelism(4);
  auto sink = std::make_shared<InMemorySink>();
  SetSink(sink);
  int outer_id = 0;
  {
    TraceSpan outer("test.fanout");
    outer_id = CurrentSpanId();
    ThreadPool::Global().ParallelFor(0, 64, [](int jb, int je) {
      TraceSpan chunk("test.worker_chunk");
      chunk.Annotate("items", int64_t{je - jb});
    });
  }
  ThreadPool::SetGlobalParallelism(ThreadPool::DefaultParallelism());
  int worker_spans = 0;
  for (const SpanRecord& r : sink->Records()) {
    if (r.name != "test.worker_chunk") continue;
    ++worker_spans;
    EXPECT_EQ(r.parent_id, outer_id) << "worker span not stitched";
  }
  EXPECT_GT(worker_spans, 0);
}

TEST_F(TraceTest, ScopedParentInstallsAndRestores) {
  EXPECT_EQ(CurrentSpanId(), 0);
  {
    ScopedParent parent(42);
    EXPECT_EQ(CurrentSpanId(), 42);
    {
      ScopedParent nested(7);
      EXPECT_EQ(CurrentSpanId(), 7);
    }
    EXPECT_EQ(CurrentSpanId(), 42);
  }
  EXPECT_EQ(CurrentSpanId(), 0);
}

TEST_F(TraceTest, SetSinkReturnsPreviousSink) {
  auto first = std::make_shared<InMemorySink>();
  auto second = std::make_shared<InMemorySink>();
  EXPECT_EQ(SetSink(first), nullptr);
  EXPECT_EQ(SetSink(second), first);
  { TraceSpan span("test.second"); }
  EXPECT_EQ(SetSink(nullptr), second);
  EXPECT_TRUE(first->Records().empty());
  ASSERT_EQ(second->Records().size(), 1u);
}

TEST_F(TraceTest, InMemorySinkClear) {
  auto sink = std::make_shared<InMemorySink>();
  SetSink(sink);
  { TraceSpan span("test.one"); }
  ASSERT_EQ(sink->Records().size(), 1u);
  sink->Clear();
  EXPECT_TRUE(sink->Records().empty());
}

TEST_F(TraceTest, JsonLinesSinkWritesOneObjectPerSpan) {
  const std::string path =
      std::string(::testing::TempDir()) + "/trace_test_spans.jsonl";
  {
    auto sink = std::make_shared<JsonLinesSink>(path);
    ASSERT_TRUE(sink->ok());
    SetSink(sink);
    {
      TraceSpan span("test.json");
      span.Annotate("quoted", std::string("a \"b\" c"));
    }
    SetSink(nullptr);  // drops the last reference: flush + close
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_NE(line.find("\"name\":\"test.json\""), std::string::npos) << line;
  EXPECT_NE(line.find("\"duration_ns\":"), std::string::npos) << line;
  EXPECT_NE(line.find("\"quoted\":\"a \\\"b\\\" c\""), std::string::npos)
      << line;
  EXPECT_FALSE(std::getline(in, line)) << "expected exactly one span line";
  std::remove(path.c_str());
}

TEST_F(TraceTest, JsonLinesSinkReportsUnopenableFile) {
  JsonLinesSink sink("/nonexistent_dir_xyz/trace.jsonl");
  EXPECT_FALSE(sink.ok());
  SpanRecord record;
  record.name = "dropped";
  sink.OnSpanEnd(record);  // must not crash
}

TEST_F(TraceTest, NowNsIsMonotonic) {
  const uint64_t a = NowNs();
  const uint64_t b = NowNs();
  EXPECT_GE(b, a);
}

}  // namespace
}  // namespace trace
}  // namespace nlidb
