// Fault-injection acceptance suite (DESIGN.md "Fault-tolerance
// architecture"). Demonstrates, under the same sanitizer matrix as every
// other test:
//   (a) a crash injected between temp-file write and rename leaves the
//       previous snapshot loadable,
//   (b) a disk-full/write error during checkpoint save surfaces as a
//       Status instead of Ok,
//   (c) a query under an expired deadline returns DeadlineExceeded with
//       partial stage timings — and never aborts.

#include "common/failpoint.h"

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/deadline.h"
#include "common/file_io.h"
#include "common/metrics.h"
#include "core/persistence.h"
#include "core/pipeline.h"
#include "data/generator.h"
#include "nn/checkpoint.h"
#include "tensor/autograd.h"

namespace nlidb {
namespace {

namespace fs = std::filesystem;

int64_t CounterValue(const std::string& name) {
  return metrics::MetricsRegistry::Global().GetCounter(name).Value();
}

std::string TempDirFor(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

// This suite manages failpoints explicitly; start from a clean registry
// even when the binary runs under an NLIDB_FAILPOINTS schedule (the
// randomized-delay CI leg), so the exact-count assertions below hold
// under any seed and any test filter.
class CleanFailpointEnv : public ::testing::Environment {
 public:
  void SetUp() override {
    // Consume the env parse first so a later library-entry-point call
    // to InitFromEnv (a once-only no-op afterwards) cannot re-arm it.
    failpoint::InitFromEnv();
    failpoint::DeactivateAll();
  }
};
const auto* const kCleanEnv =
    ::testing::AddGlobalTestEnvironment(new CleanFailpointEnv);

std::string ReadAll(const std::string& path) {
  return io::ReadFileToString(path).value();
}

// Direct byte surgery on committed files; tests are outside the
// raw-file-write rule's src/ scope on purpose.
void WriteRaw(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

void FlipByte(const std::string& path, size_t offset) {
  std::string bytes = ReadAll(path);
  ASSERT_LT(offset, bytes.size());
  bytes[offset] = static_cast<char>(bytes[offset] ^ 0x40);
  WriteRaw(path, bytes);
}

std::vector<Var> MakeParams() {
  std::vector<Var> params;
  params.push_back(MakeVar(Tensor::Ones({2, 3})));
  params.push_back(MakeVar(Tensor::Zeros({4})));
  return params;
}

// ---------------------------------------------------------------------------
// Framework semantics.

TEST(FailpointTest, InactiveSiteCostsNothingAndReturnsOk) {
  failpoint::DeactivateAll();
  EXPECT_FALSE(failpoint::AnyActive());
  EXPECT_TRUE(NLIDB_FAILPOINT("nonexistent/site").ok());
  EXPECT_EQ(failpoint::Fire("nonexistent/site").kind,
            failpoint::ActionKind::kNone);
}

TEST(FailpointTest, ErrorActionInjectsIoErrorAndCounts) {
  const int64_t fired_before = CounterValue("failpoint.fired");
  failpoint::ScopedFailpoint fp("test/site", "error");
  Status s = NLIDB_FAILPOINT("test/site");
  EXPECT_EQ(s.code(), StatusCode::kIoError);
  EXPECT_NE(s.message().find("test/site"), std::string::npos);
  EXPECT_EQ(CounterValue("failpoint.fired"), fired_before + 1);
  EXPECT_GE(CounterValue("failpoint.test/site"), 1);
  // Unrelated sites stay inert while another is active.
  EXPECT_TRUE(NLIDB_FAILPOINT("test/other_site").ok());
}

TEST(FailpointTest, ScopedFailpointDeactivatesOnExit) {
  {
    failpoint::ScopedFailpoint fp("test/scoped", "error");
    EXPECT_FALSE(NLIDB_FAILPOINT("test/scoped").ok());
  }
  EXPECT_TRUE(NLIDB_FAILPOINT("test/scoped").ok());
  EXPECT_FALSE(failpoint::AnyActive());
}

TEST(FailpointTest, DelayActionProceedsOk) {
  failpoint::ScopedFailpoint fp("test/delay", "delay:1");
  EXPECT_TRUE(NLIDB_FAILPOINT("test/delay").ok());
}

TEST(FailpointTest, MalformedSpecsRejected) {
  EXPECT_EQ(failpoint::Activate("s", "explode").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(failpoint::Activate("s", "delay:-5").code(),
            StatusCode::kInvalidArgument);
  EXPECT_FALSE(failpoint::AnyActive());
}

// ---------------------------------------------------------------------------
// Crash-safe checkpoint writes.

TEST(FailpointTest, WriteErrorDuringSaveIsStatusAndKeepsOldFile) {
  // Acceptance (b): a failed write (disk full, injected here at the
  // commit site) surfaces as a Status and never tears the previous file.
  const std::string path = TempDirFor("ckpt_diskfull.ckpt");
  std::vector<Var> params = MakeParams();
  ASSERT_TRUE(nn::Checkpoint::Save(path, params).ok());
  const std::string before = ReadAll(path);

  failpoint::ScopedFailpoint fp("checkpoint/commit", "error");
  Status s = nn::Checkpoint::Save(path, params);
  EXPECT_EQ(s.code(), StatusCode::kIoError);
  EXPECT_EQ(ReadAll(path), before);
  EXPECT_TRUE(nn::Checkpoint::Verify(path).ok());
  fs::remove(path);
}

TEST(FailpointTest, DeathBeforeRenameLeavesPreviousFileLoadable) {
  // Acceptance (a), file level: dying between temp-write and rename
  // leaves the destination exactly as it was. `error` at before_rename
  // reproduces the post-crash disk state (durable temp, no rename)
  // without killing the process.
  const std::string path = TempDirFor("ckpt_prerename.ckpt");
  std::vector<Var> params = MakeParams();
  ASSERT_TRUE(nn::Checkpoint::Save(path, params).ok());
  const std::string before = ReadAll(path);

  {
    failpoint::ScopedFailpoint fp("checkpoint/before_rename", "error");
    EXPECT_FALSE(nn::Checkpoint::Save(path, params).ok());
  }
  EXPECT_EQ(ReadAll(path), before);
  ASSERT_TRUE(nn::Checkpoint::Load(path, params).ok());
  fs::remove(path);
  fs::remove(path + ".tmp");
}

TEST(FailpointDeathTest, CrashBeforeRenameIsAHardDeath) {
  // The genuine kCrash action: the process dies at the site with no
  // destructors. The destination file must survive untouched.
  // The live ThreadPool makes a plain fork unsafe; threadsafe style
  // re-executes the binary so the dying statement runs in a fresh
  // process.
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  const std::string path = TempDirFor("ckpt_crash.ckpt");
  std::vector<Var> params = MakeParams();
  ASSERT_TRUE(nn::Checkpoint::Save(path, params).ok());
  const std::string before = ReadAll(path);

  EXPECT_EXIT(
      {
        Status s = failpoint::Activate("checkpoint/before_rename", "crash");
        Status::IgnoreError(s);
        s = nn::Checkpoint::Save(path, MakeParams());
        Status::IgnoreError(s);
      },
      ::testing::ExitedWithCode(134), "failpoint crash");
  EXPECT_EQ(ReadAll(path), before);
  EXPECT_TRUE(nn::Checkpoint::Verify(path).ok());
  fs::remove(path);
  fs::remove(path + ".tmp");
}

TEST(FailpointTest, TornWriteIsDetectedOnLoad) {
  // A torn write that survived rename (power loss after an unsynced
  // rename) commits a truncated file; the CRC footer catches it and the
  // staged parse leaves the receiving model untouched.
  const std::string path = TempDirFor("ckpt_torn.ckpt");
  std::vector<Var> params = MakeParams();
  {
    failpoint::ScopedFailpoint fp("checkpoint/commit", "torn_write");
    Status s = nn::Checkpoint::Save(path, params);
    Status::IgnoreError(s);  // a real torn write reports nothing
  }
  ASSERT_TRUE(fs::exists(path));
  EXPECT_FALSE(nn::Checkpoint::Verify(path).ok());
  const Tensor before = params[0]->value;
  EXPECT_FALSE(nn::Checkpoint::Load(path, params).ok());
  EXPECT_EQ(params[0]->value.vec(), before.vec());
  fs::remove(path);
}

// ---------------------------------------------------------------------------
// Snapshot-directory fallback (MANIFEST layer).

class SnapshotFixture : public ::testing::Test {
 protected:
  SnapshotFixture() {
    provider_ = std::make_shared<text::EmbeddingProvider>();
    data::RegisterDomainClusters(*provider_);
    config_ = core::ModelConfig::Tiny();
    config_.word_dim = provider_->dim();
  }

  std::shared_ptr<text::EmbeddingProvider> provider_;
  core::ModelConfig config_;
};

TEST_F(SnapshotFixture, FailedSaveBeforeManifestKeepsPreviousLoadable) {
  // Acceptance (a), snapshot level: dying after the new snapshot's
  // artifacts are on disk but before the MANIFEST points at them must
  // leave the previous snapshot the active one.
  const std::string dir = TempDirFor("snap_premanifest");
  fs::remove_all(dir);
  core::NlidbPipeline pipeline(config_, provider_);
  ASSERT_TRUE(core::SavePipeline(pipeline, dir).ok());

  {
    failpoint::ScopedFailpoint fp("persistence/before_manifest", "error");
    EXPECT_FALSE(core::SavePipeline(pipeline, dir).ok());
  }
  core::NlidbPipeline restored(config_, provider_);
  EXPECT_TRUE(core::LoadPipeline(restored, dir).ok());
  fs::remove_all(dir);
}

TEST_F(SnapshotFixture, CorruptNewestSnapshotFallsBackToPrevious) {
  const std::string dir = TempDirFor("snap_fallback");
  fs::remove_all(dir);
  core::NlidbPipeline pipeline(config_, provider_);
  ASSERT_TRUE(core::SavePipeline(pipeline, dir).ok());
  ASSERT_TRUE(core::SavePipeline(pipeline, dir).ok());
  // Bit-flip inside the newest snapshot's translator weights.
  const std::string newest = dir + "/snapshot-000002/translator.ckpt";
  ASSERT_TRUE(fs::exists(newest));
  FlipByte(newest, fs::file_size(newest) / 2);

  const int64_t fallbacks_before = CounterValue("persistence.fallback_loads");
  core::NlidbPipeline restored(config_, provider_);
  EXPECT_TRUE(core::LoadPipeline(restored, dir).ok());
  EXPECT_EQ(CounterValue("persistence.fallback_loads"), fallbacks_before + 1);
  fs::remove_all(dir);
}

TEST_F(SnapshotFixture, AllSnapshotsCorruptFailsWithIoError) {
  const std::string dir = TempDirFor("snap_all_corrupt");
  fs::remove_all(dir);
  core::NlidbPipeline pipeline(config_, provider_);
  ASSERT_TRUE(core::SavePipeline(pipeline, dir).ok());
  ASSERT_TRUE(core::SavePipeline(pipeline, dir).ok());
  for (const char* snap : {"snapshot-000001", "snapshot-000002"}) {
    const std::string ckpt = dir + "/" + snap + "/classifier.ckpt";
    ASSERT_TRUE(fs::exists(ckpt)) << ckpt;
    FlipByte(ckpt, fs::file_size(ckpt) / 2);
  }
  core::NlidbPipeline restored(config_, provider_);
  Status s = core::LoadPipeline(restored, dir);
  EXPECT_EQ(s.code(), StatusCode::kIoError);
  EXPECT_NE(s.message().find("no complete snapshot"), std::string::npos);
  fs::remove_all(dir);
}

// ---------------------------------------------------------------------------
// Abort-free, deadline-aware queries.

class DeadlineFixture : public SnapshotFixture {
 protected:
  sql::Table FilmTable() {
    sql::Schema schema({{"film_name", sql::DataType::kText},
                        {"director", sql::DataType::kText}});
    sql::Table t("films", schema);
    EXPECT_TRUE(t.AddRow({sql::Value::Text("winter echo"),
                          sql::Value::Text("sofia garcia")})
                    .ok());
    return t;
  }
};

TEST_F(DeadlineFixture, ExpiredDeadlineReturnsDeadlineExceededWithPartial) {
  // Acceptance (c): the deadline surfaces as a Status — no abort, no
  // exception — and the partial result shows where the time went.
  core::NlidbPipeline pipeline(config_, provider_);
  sql::Table table = FilmTable();
  core::QueryRequest request;
  request.schema_ref = core::SchemaRef::Table(&table);
  request.question = "which film was directed by sofia garcia ?";
  request.deadline = Deadline::AfterNanos(1);  // expired at first poll
  core::QueryResult partial;
  request.partial_result = &partial;

  const int64_t exceeded_before = CounterValue("pipeline.deadline_exceeded");
  auto result = pipeline.Query(request);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(CounterValue("pipeline.deadline_exceeded"), exceeded_before + 1);
  // Tokenize completed before the first poll point; its timing is in
  // the partial result along with the tokens themselves.
  EXPECT_FALSE(partial.tokens.empty());
  ASSERT_FALSE(partial.stages.children.empty());
  EXPECT_EQ(partial.stages.children[0].name, "tokenize");
  EXPECT_GT(partial.stages.wall_ns, 0u);
}

TEST_F(DeadlineFixture, MillisecondDeadlineNeverAborts) {
  // A 1ms budget on a real question either finishes or comes back as
  // DeadlineExceeded — never a crash or NLIDB_CHECK abort.
  core::NlidbPipeline pipeline(config_, provider_);
  sql::Table table = FilmTable();
  for (int i = 0; i < 8; ++i) {
    core::QueryRequest request;
    request.schema_ref = core::SchemaRef::Table(&table);
    request.question = "which film was directed by sofia garcia ?";
    request.deadline = Deadline::AfterMillis(1);
    auto result = pipeline.Query(request);
    if (!result.ok()) {
      EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
    }
  }
}

TEST_F(DeadlineFixture, ExternalCancellationStopsTheQuery) {
  core::NlidbPipeline pipeline(config_, provider_);
  sql::Table table = FilmTable();
  std::atomic<bool> cancelled{true};  // cancelled before it starts
  core::QueryRequest request;
  request.schema_ref = core::SchemaRef::Table(&table);
  request.question = "which film was directed by sofia garcia ?";
  request.cancel = &cancelled;
  auto result = pipeline.Query(request);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
}

// ---------------------------------------------------------------------------
// Graceful degradation (in-band fallback flags).

TEST_F(DeadlineFixture, DependencyParseFailureDegradesToLinearResolution) {
  core::NlidbPipeline pipeline(config_, provider_);
  sql::Table table = FilmTable();
  failpoint::ScopedFailpoint fp("resolver/dependency_parse", "error");
  const int64_t fallbacks_before = CounterValue("resolver.linear_fallbacks");
  core::QueryRequest request;
  request.schema_ref = core::SchemaRef::Table(&table);
  request.question = "which film was directed by sofia garcia ?";
  auto result = pipeline.Query(request);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->degraded_linear_resolution);
  EXPECT_GT(CounterValue("resolver.linear_fallbacks"), fallbacks_before);
}

TEST_F(DeadlineFixture, BeamExhaustionDegradesToGreedyDecode) {
  core::NlidbPipeline pipeline(config_, provider_);
  sql::Table table = FilmTable();
  ASSERT_GT(pipeline.config().beam_width, 1);
  failpoint::ScopedFailpoint fp("seq2seq/beam_exhausted", "error");
  const int64_t fallbacks_before = CounterValue("seq2seq.greedy_fallbacks");
  core::QueryRequest request;
  request.schema_ref = core::SchemaRef::Table(&table);
  request.question = "which film was directed by sofia garcia ?";
  auto result = pipeline.Query(request);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->degraded_greedy_decode);
  EXPECT_GT(CounterValue("seq2seq.greedy_fallbacks"), fallbacks_before);
}

}  // namespace
}  // namespace nlidb
