#include "common/workspace.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <thread>

#include "common/thread_pool.h"

namespace nlidb {
namespace {

TEST(WorkspaceTest, FloatsAreZeroInitialized) {
  Workspace ws;
  float* a = ws.Floats(100);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a[i], 0.0f);
  // Dirty the buffer, release it, re-acquire: must come back zeroed.
  for (int i = 0; i < 100; ++i) a[i] = 3.5f;
  ws.Reset();
  float* b = ws.Floats(100);
  EXPECT_EQ(b, a) << "reset should reuse the retained block";
  for (int i = 0; i < 100; ++i) EXPECT_EQ(b[i], 0.0f);
}

TEST(WorkspaceTest, BuffersDoNotOverlapAndStayAligned) {
  Workspace ws;
  float* a = ws.Floats(17);  // deliberately not a multiple of 16
  float* b = ws.Floats(5);
  // Bump distance is rounded up to 16 floats (64 bytes), so consecutive
  // buffers never share a cache line.
  EXPECT_GE(b - a, 17);
  EXPECT_EQ((b - a) % 16, 0);
  EXPECT_EQ(ws.live_buffers(), 2);
}

TEST(WorkspaceTest, ResetRetainsCapacity) {
  Workspace ws;
  (void)ws.Floats(1000);
  (void)ws.Floats(200000);  // forces a second (oversized) block
  const size_t reserved = ws.reserved();
  EXPECT_GE(reserved, 201000u);
  ws.Reset();
  EXPECT_EQ(ws.reserved(), reserved);
  EXPECT_EQ(ws.live_buffers(), 0);
}

TEST(WorkspaceTest, ScopeRewindsToSnapshot) {
  Workspace ws;
  float* outer = ws.Floats(32);
  outer[0] = 7.0f;
  float* inner_first = nullptr;
  {
    Workspace::Scope scope(ws);
    inner_first = ws.Floats(64);
    (void)ws.Floats(128);
    EXPECT_EQ(ws.live_buffers(), 3);
  }
  // Scope end releases only the inner buffers; the outer one survives.
  EXPECT_EQ(ws.live_buffers(), 1);
  EXPECT_EQ(outer[0], 7.0f);
  float* reused = ws.Floats(64);
  EXPECT_EQ(reused, inner_first) << "scope must rewind the bump pointer";
}

TEST(WorkspaceTest, NestedScopes) {
  Workspace ws;
  Workspace::Scope a(ws);
  float* x = ws.Floats(16);
  {
    Workspace::Scope b(ws);
    float* y = ws.Floats(16);
    EXPECT_NE(x, y);
    {
      Workspace::Scope c(ws);
      (void)ws.Floats(300000);  // spills into a fresh block inside c
      EXPECT_GT(ws.live_buffers(), 2);
    }
    EXPECT_EQ(ws.live_buffers(), 2);
    float* y2 = ws.Floats(8);
    EXPECT_NE(y2, nullptr);
  }
  EXPECT_EQ(ws.live_buffers(), 1);
}

TEST(WorkspaceTest, ScopeOnFreshWorkspace) {
  // A scope opened before the first allocation must rewind to empty.
  Workspace ws;
  {
    Workspace::Scope scope(ws);
    (void)ws.Floats(10);
    (void)ws.Floats(10);
  }
  EXPECT_EQ(ws.live_buffers(), 0);
}

TEST(WorkspaceTest, ScopeRewindsOnException) {
  // Stack unwinding through a throwing region must rewind the arena
  // exactly as a clean scope exit does — the kernels-in-fan-out failure
  // mode, where an exception mid-request would otherwise leak bump space
  // on every retry.
  Workspace ws;
  float* outer = ws.Floats(32);
  outer[0] = 5.0f;
  const size_t reserved_before = ws.reserved();
  for (int attempt = 0; attempt < 50; ++attempt) {
    try {
      Workspace::Scope scope(ws);
      (void)ws.Floats(64);
      (void)ws.Floats(128);
      throw std::runtime_error("mid-request failure");
    } catch (const std::runtime_error&) {
    }
    EXPECT_EQ(ws.live_buffers(), 1);
  }
  EXPECT_EQ(ws.reserved(), reserved_before)
      << "repeated rewind-on-exception must not grow the arena";
  EXPECT_EQ(outer[0], 5.0f);
}

TEST(WorkspaceStressTest, InterleavedScopesAcrossPoolThreads) {
  // The fan-out pattern of the annotator under load: every pool thread
  // hammers its own thread-local arena with nested scopes, interleaved
  // rewinds, and occasional exceptions, while checking its buffers are
  // never shared or corrupted. After a warmup pass, steady-state requests
  // must not allocate — per-thread reserved() stays flat.
#if defined(NLIDB_SANITIZER_BUILD)
  const int kRounds = 30;
#else
  const int kRounds = 300;
#endif
  ThreadPool pool(8);

  // One simulated request. Returns false on any correctness violation:
  // corrupted outer buffer after inner rewinds, or arena growth on a
  // thread whose arena already reached its high-water mark (which chunk
  // lands on which worker is scheduler-dependent, so the steady-state
  // check is per-thread, against that thread's own previous watermark).
  auto hammer = [](int item) {
    Workspace& ws = Workspace::ThreadLocal();
    const size_t reserved_before = ws.reserved();
    const bool warmed = reserved_before > 0;
    {
      Workspace::Scope request_scope(ws);
      float* a = ws.Floats(64);
      const float tag = static_cast<float>(item + 1);
      for (int i = 0; i < 64; ++i) a[i] = tag;
      for (int inner = 0; inner < 4; ++inner) {
        try {
          Workspace::Scope scope(ws);
          float* b = ws.Floats(257);  // odd size: exercises align rounding
          for (int i = 0; i < 257; ++i) b[i] = -tag;
          if (inner == 2) throw std::runtime_error("simulated kernel failure");
        } catch (const std::runtime_error&) {
        }
        // The outer buffer must be untouched by inner scopes rewinding.
        for (int i = 0; i < 64; ++i) {
          if (a[i] != tag) return false;
        }
      }
    }
    return !warmed || ws.reserved() == reserved_before;
  };

  std::atomic<bool> ok{true};
  for (int round = 0; round < kRounds; ++round) {
    pool.ParallelFor(0, 64, [&](int b, int e) {
      for (int i = b; i < e; ++i) {
        if (!hammer(i)) ok.store(false);
      }
    });
    ASSERT_TRUE(ok.load()) << "round " << round;
  }

  // The calling thread ran chunk 0 of every round: its arena must have
  // settled at exactly one retained block despite kRounds * interleaved
  // scope rewinds and exceptions.
  EXPECT_GT(Workspace::ThreadLocal().reserved(), 0u);
  EXPECT_EQ(Workspace::ThreadLocal().live_buffers(), 0);
}

TEST(WorkspaceTest, ThreadLocalIsPerThread) {
  Workspace* main_ws = &Workspace::ThreadLocal();
  Workspace* other_ws = nullptr;
  // A raw thread on purpose: the test needs a thread that is NOT a pool
  // worker to prove ThreadLocal() hands out distinct arenas.
  std::thread t([&] { other_ws = &Workspace::ThreadLocal(); });  // nlidb-lint: disable(raw-thread)
  t.join();
  EXPECT_NE(main_ws, other_ws);
  EXPECT_EQ(main_ws, &Workspace::ThreadLocal());
}

}  // namespace
}  // namespace nlidb
