#include "common/workspace.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>

namespace nlidb {
namespace {

TEST(WorkspaceTest, FloatsAreZeroInitialized) {
  Workspace ws;
  float* a = ws.Floats(100);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a[i], 0.0f);
  // Dirty the buffer, release it, re-acquire: must come back zeroed.
  for (int i = 0; i < 100; ++i) a[i] = 3.5f;
  ws.Reset();
  float* b = ws.Floats(100);
  EXPECT_EQ(b, a) << "reset should reuse the retained block";
  for (int i = 0; i < 100; ++i) EXPECT_EQ(b[i], 0.0f);
}

TEST(WorkspaceTest, BuffersDoNotOverlapAndStayAligned) {
  Workspace ws;
  float* a = ws.Floats(17);  // deliberately not a multiple of 16
  float* b = ws.Floats(5);
  // Bump distance is rounded up to 16 floats (64 bytes), so consecutive
  // buffers never share a cache line.
  EXPECT_GE(b - a, 17);
  EXPECT_EQ((b - a) % 16, 0);
  EXPECT_EQ(ws.live_buffers(), 2);
}

TEST(WorkspaceTest, ResetRetainsCapacity) {
  Workspace ws;
  (void)ws.Floats(1000);
  (void)ws.Floats(200000);  // forces a second (oversized) block
  const size_t reserved = ws.reserved();
  EXPECT_GE(reserved, 201000u);
  ws.Reset();
  EXPECT_EQ(ws.reserved(), reserved);
  EXPECT_EQ(ws.live_buffers(), 0);
}

TEST(WorkspaceTest, ScopeRewindsToSnapshot) {
  Workspace ws;
  float* outer = ws.Floats(32);
  outer[0] = 7.0f;
  float* inner_first = nullptr;
  {
    Workspace::Scope scope(ws);
    inner_first = ws.Floats(64);
    (void)ws.Floats(128);
    EXPECT_EQ(ws.live_buffers(), 3);
  }
  // Scope end releases only the inner buffers; the outer one survives.
  EXPECT_EQ(ws.live_buffers(), 1);
  EXPECT_EQ(outer[0], 7.0f);
  float* reused = ws.Floats(64);
  EXPECT_EQ(reused, inner_first) << "scope must rewind the bump pointer";
}

TEST(WorkspaceTest, NestedScopes) {
  Workspace ws;
  Workspace::Scope a(ws);
  float* x = ws.Floats(16);
  {
    Workspace::Scope b(ws);
    float* y = ws.Floats(16);
    EXPECT_NE(x, y);
    {
      Workspace::Scope c(ws);
      (void)ws.Floats(300000);  // spills into a fresh block inside c
      EXPECT_GT(ws.live_buffers(), 2);
    }
    EXPECT_EQ(ws.live_buffers(), 2);
    float* y2 = ws.Floats(8);
    EXPECT_NE(y2, nullptr);
  }
  EXPECT_EQ(ws.live_buffers(), 1);
}

TEST(WorkspaceTest, ScopeOnFreshWorkspace) {
  // A scope opened before the first allocation must rewind to empty.
  Workspace ws;
  {
    Workspace::Scope scope(ws);
    (void)ws.Floats(10);
    (void)ws.Floats(10);
  }
  EXPECT_EQ(ws.live_buffers(), 0);
}

TEST(WorkspaceTest, ThreadLocalIsPerThread) {
  Workspace* main_ws = &Workspace::ThreadLocal();
  Workspace* other_ws = nullptr;
  std::thread t([&] { other_ws = &Workspace::ThreadLocal(); });
  t.join();
  EXPECT_NE(main_ws, other_ws);
  EXPECT_EQ(main_ws, &Workspace::ThreadLocal());
}

}  // namespace
}  // namespace nlidb
