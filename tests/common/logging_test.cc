#include "common/logging.h"

#include <gtest/gtest.h>

namespace nlidb {
namespace {

TEST(LoggingTest, LevelGateDropsBelowThreshold) {
  const LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  // These must compile and be cheap no-ops below the threshold; the
  // streamed expression still type-checks.
  NLIDB_LOG(Debug) << "dropped " << 42;
  NLIDB_LOG(Info) << "dropped " << 3.14;
  SetLogLevel(original);
}

TEST(LoggingTest, SetGetRoundTrip) {
  const LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
  SetLogLevel(LogLevel::kWarning);
  EXPECT_EQ(GetLogLevel(), LogLevel::kWarning);
  SetLogLevel(original);
}

TEST(LoggingTest, CheckPassesOnTrueCondition) {
  NLIDB_CHECK(1 + 1 == 2) << "never shown";
  SUCCEED();
}

TEST(LoggingDeathTest, CheckAbortsOnFalseCondition) {
  EXPECT_DEATH({ NLIDB_CHECK(false) << "boom"; }, "Check failed");
}

TEST(LoggingDeathTest, FatalLogAborts) {
  EXPECT_DEATH(
      {
        internal_logging::LogMessage(LogLevel::kFatal, "f.cc", 1).stream()
            << "fatal";
      },
      "fatal");
}

}  // namespace
}  // namespace nlidb
