#include "common/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <set>

namespace nlidb {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    same += a.NextUint64() == b.NextUint64();
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, BoundedUniformStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextUint64(17), 17u);
    const int v = rng.NextInt(-3, 5);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 5);
    const float f = rng.NextFloat();
    EXPECT_GE(f, 0.0f);
    EXPECT_LT(f, 1.0f);
  }
}

TEST(RngTest, BoundedUniformCoversAllResidues) {
  Rng rng(11);
  std::set<uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.NextUint64(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RngTest, GaussianHasRoughlyUnitMoments) {
  Rng rng(42);
  const int n = 20000;
  double sum = 0, sum_sq = 0;
  for (int i = 0; i < n; ++i) {
    const float x = rng.NextGaussian();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.05);
}

TEST(RngTest, WeightedPickFollowsWeights) {
  Rng rng(5);
  std::vector<float> weights = {1.0f, 3.0f};
  int count1 = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    count1 += rng.NextWeighted(weights) == 1;
  }
  EXPECT_NEAR(static_cast<double>(count1) / n, 0.75, 0.03);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(9);
  std::vector<int> v(50);
  std::iota(v.begin(), v.end(), 0);
  std::vector<int> shuffled = v;
  rng.Shuffle(shuffled);
  EXPECT_NE(shuffled, v);  // astronomically unlikely to be identity
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(RngTest, BernoulliProbability) {
  Rng rng(13);
  int heads = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) heads += rng.NextBool(0.2f);
  EXPECT_NEAR(static_cast<double>(heads) / n, 0.2, 0.02);
}

}  // namespace
}  // namespace nlidb
