// Unit coverage for bench/bench_json.h, the flat JSON store every bench
// binary (substrate, observability, decoder, serving) writes its
// machine-readable report through. The load-bearing behaviors: merge
// semantics (several benches contribute to one file), round-tripping of
// raw value tokens, tolerance of missing/malformed input, string
// escaping, and the env-overridable output paths.

#include "bench/bench_json.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

namespace nlidb {
namespace {

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

std::string ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

TEST(FlatJsonTest, MissingFileLoadsEmpty) {
  bench::FlatJson json =
      bench::FlatJson::Load(TempPath("does_not_exist.json"));
  EXPECT_EQ(json.size(), 0u);
}

TEST(FlatJsonTest, SaveThenLoadRoundTripsExactly) {
  const std::string path = TempPath("roundtrip.json");
  bench::FlatJson json;
  json.Set("qps", 533.735);
  json.Set("clients", 1600);
  json.Set("wall_ns", 123456789LL);
  json.SetString("mode", "batch");
  ASSERT_TRUE(json.Save(path));

  const std::string first = ReadAll(path);
  bench::FlatJson reloaded = bench::FlatJson::Load(path);
  EXPECT_EQ(reloaded.size(), 4u);
  ASSERT_TRUE(reloaded.Save(path));
  // Raw value tokens are preserved verbatim, so a load/save cycle is
  // byte-identical — the property the multi-bench merge relies on.
  EXPECT_EQ(ReadAll(path), first);
}

TEST(FlatJsonTest, LoadMergeSetPreservesOtherBenchesKeys) {
  const std::string path = TempPath("merge.json");
  {
    bench::FlatJson first;
    first.Set("decoder_qps", 100.0);
    ASSERT_TRUE(first.Save(path));
  }
  {
    // A second bench contributes to the same file: existing keys
    // survive, same-named keys are overwritten.
    bench::FlatJson second = bench::FlatJson::Load(path);
    second.Set("serving_qps", 500.0);
    second.Set("decoder_qps", 250.0);
    ASSERT_TRUE(second.Save(path));
  }
  const std::string text = ReadAll(path);
  EXPECT_NE(text.find("\"decoder_qps\": 250"), std::string::npos);
  EXPECT_NE(text.find("\"serving_qps\": 500"), std::string::npos);
  EXPECT_EQ(bench::FlatJson::Load(path).size(), 2u);
}

TEST(FlatJsonTest, MalformedInputYieldsWhatCanBeScavenged) {
  const std::string path = TempPath("malformed.json");
  {
    std::ofstream out(path, std::ios::binary);
    out << "{ \"ok_key\": 1, garbage without structure \"dangling";
  }
  // Tolerant scan: the well-formed pair parses, the trailing junk does
  // not abort the load.
  bench::FlatJson json = bench::FlatJson::Load(path);
  EXPECT_GE(json.size(), 1u);
  EXPECT_TRUE(json.Save(path));
}

TEST(FlatJsonTest, StringValuesEscapeQuotesAndBackslashes) {
  const std::string path = TempPath("escape.json");
  bench::FlatJson json;
  json.SetString("label", "a \"quoted\" \\ thing");
  ASSERT_TRUE(json.Save(path));
  const std::string text = ReadAll(path);
  EXPECT_NE(text.find("\\\"quoted\\\""), std::string::npos);
  EXPECT_NE(text.find("\\\\"), std::string::npos);
  // And the escaped form survives a reload unmangled.
  bench::FlatJson reloaded = bench::FlatJson::Load(path);
  ASSERT_EQ(reloaded.size(), 1u);
  ASSERT_TRUE(reloaded.Save(path));
  EXPECT_EQ(ReadAll(path), text);
}

TEST(FlatJsonTest, NumberFormattingUsesCompactPrecision) {
  const std::string path = TempPath("numbers.json");
  bench::FlatJson json;
  json.Set("small", 0.18125);
  json.Set("large", 4.70421e+08);
  json.Set("integral", 42);
  ASSERT_TRUE(json.Save(path));
  const std::string text = ReadAll(path);
  EXPECT_NE(text.find("\"small\": 0.18125"), std::string::npos);
  EXPECT_NE(text.find("\"large\": 4.70421e+08"), std::string::npos);
  EXPECT_NE(text.find("\"integral\": 42"), std::string::npos);
}

TEST(BenchJsonPathsTest, EveryBenchPathHonorsItsEnvOverride) {
  struct Case {
    const char* env;
    const char* (*path)();
    const char* fallback;
  };
  const Case cases[] = {
      {"NLIDB_BENCH_JSON", &bench::SubstrateJsonPath,
       "BENCH_substrate.json"},
      {"NLIDB_BENCH_OBS_JSON", &bench::ObservabilityJsonPath,
       "BENCH_observability.json"},
      {"NLIDB_BENCH_DECODER_JSON", &bench::DecoderJsonPath,
       "BENCH_decoder.json"},
      {"NLIDB_BENCH_SERVING_JSON", &bench::ServingJsonPath,
       "BENCH_serving.json"},
  };
  for (const Case& c : cases) {
    ASSERT_EQ(unsetenv(c.env), 0);
    EXPECT_STREQ(c.path(), c.fallback) << c.env;
    ASSERT_EQ(setenv(c.env, "/tmp/override.json", 1), 0);
    EXPECT_STREQ(c.path(), "/tmp/override.json") << c.env;
    ASSERT_EQ(unsetenv(c.env), 0);
  }
}

}  // namespace
}  // namespace nlidb
