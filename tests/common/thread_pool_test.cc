#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace nlidb {
namespace {

TEST(ThreadPoolTest, StartupShutdownRepeated) {
  // Construction/destruction must not leak threads or deadlock, including
  // the degenerate serial pool.
  for (int p : {1, 2, 4, 7}) {
    ThreadPool pool(p);
    EXPECT_EQ(pool.parallelism(), p);
  }
  // Clamped to >= 1.
  ThreadPool clamped(0);
  EXPECT_EQ(clamped.parallelism(), 1);
  ThreadPool negative(-3);
  EXPECT_EQ(negative.parallelism(), 1);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  for (int p : {1, 3, 8}) {
    ThreadPool pool(p);
    for (int n : {0, 1, 2, 5, 64, 1000}) {
      std::vector<std::atomic<int>> hits(n);
      pool.ParallelFor(0, n, [&](int b, int e) {
        for (int i = b; i < e; ++i) hits[i].fetch_add(1);
      });
      for (int i = 0; i < n; ++i) {
        EXPECT_EQ(hits[i].load(), 1) << "index " << i << " pool " << p;
      }
    }
  }
}

TEST(ThreadPoolTest, ChunksAreContiguousAndOrderedByIndex) {
  // The static partition contract: each chunk is a contiguous [b, e)
  // range, and writing results by index reproduces the serial order.
  ThreadPool pool(4);
  const int n = 103;  // deliberately not a multiple of the parallelism
  std::vector<int> out(n, -1);
  pool.ParallelFor(0, n, [&](int b, int e) {
    ASSERT_LE(b, e);
    for (int i = b; i < e; ++i) out[i] = i * i;
  });
  for (int i = 0; i < n; ++i) EXPECT_EQ(out[i], i * i);
}

TEST(ThreadPoolTest, DeterministicResultOrdering) {
  // Index-addressed writes give identical results on every run and at
  // every parallelism — the property GEMM row partitioning relies on.
  auto run = [](int parallelism) {
    ThreadPool pool(parallelism);
    std::vector<double> out(257, 0.0);
    pool.ParallelFor(0, static_cast<int>(out.size()), [&](int b, int e) {
      for (int i = b; i < e; ++i) out[i] = 1.0 / (1.0 + i);
    });
    return out;
  };
  const std::vector<double> serial = run(1);
  EXPECT_EQ(serial, run(2));
  EXPECT_EQ(serial, run(5));
  EXPECT_EQ(serial, run(16));
}

TEST(ThreadPoolTest, ExceptionPropagatesAndPoolStaysUsable) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.ParallelFor(0, 100,
                       [&](int b, int /*e*/) {
                         if (b <= 42) throw std::runtime_error("boom");
                       }),
      std::runtime_error);
  // The pool must remain reusable after a throwing loop.
  std::atomic<int> sum{0};
  pool.ParallelFor(0, 10, [&](int b, int e) {
    for (int i = b; i < e; ++i) sum.fetch_add(i);
  });
  EXPECT_EQ(sum.load(), 45);
}

TEST(ThreadPoolTest, LowestChunkExceptionWins) {
  // When several chunks throw, the rethrown error is the lowest chunk's,
  // so failures are reproducible at any parallelism.
  ThreadPool pool(4);
  try {
    pool.ParallelFor(0, 400, [&](int b, int /*e*/) {
      throw std::runtime_error("chunk@" + std::to_string(b));
    });
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "chunk@0");
  }
}

TEST(ThreadPoolTest, NestedParallelForRunsInline) {
  // A ParallelFor issued from inside a worker must not deadlock (workers
  // never wait on the queue they service); the nested loop runs inline.
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(64);
  pool.ParallelFor(0, 8, [&](int ob, int oe) {
    for (int o = ob; o < oe; ++o) {
      pool.ParallelFor(0, 8, [&](int ib, int ie) {
        for (int i = ib; i < ie; ++i) hits[o * 8 + i].fetch_add(1);
      });
    }
  });
  for (int i = 0; i < 64; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(ThreadPoolTest, EmptyAndReversedRangesAreNoOps) {
  ThreadPool pool(4);
  int calls = 0;
  pool.ParallelFor(5, 5, [&](int, int) { ++calls; });
  pool.ParallelFor(7, 3, [&](int, int) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ThreadPoolTest, GlobalPoolResize) {
  ThreadPool::SetGlobalParallelism(3);
  EXPECT_EQ(ThreadPool::Global().parallelism(), 3);
  ThreadPool::SetGlobalParallelism(1);
  EXPECT_EQ(ThreadPool::Global().parallelism(), 1);
  // Leave the global pool at the environment default for other tests in
  // this binary (none currently, but keep the invariant).
  ThreadPool::SetGlobalParallelism(ThreadPool::DefaultParallelism());
}

TEST(ThreadPoolTest, DefaultParallelismIsPositive) {
  EXPECT_GE(ThreadPool::DefaultParallelism(), 1);
}

}  // namespace
}  // namespace nlidb
