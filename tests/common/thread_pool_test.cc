#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace nlidb {
namespace {

TEST(ThreadPoolTest, StartupShutdownRepeated) {
  // Construction/destruction must not leak threads or deadlock, including
  // the degenerate serial pool.
  for (int p : {1, 2, 4, 7}) {
    ThreadPool pool(p);
    EXPECT_EQ(pool.parallelism(), p);
  }
  // Clamped to >= 1.
  ThreadPool clamped(0);
  EXPECT_EQ(clamped.parallelism(), 1);
  ThreadPool negative(-3);
  EXPECT_EQ(negative.parallelism(), 1);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  for (int p : {1, 3, 8}) {
    ThreadPool pool(p);
    for (int n : {0, 1, 2, 5, 64, 1000}) {
      std::vector<std::atomic<int>> hits(n);
      pool.ParallelFor(0, n, [&](int b, int e) {
        for (int i = b; i < e; ++i) hits[i].fetch_add(1);
      });
      for (int i = 0; i < n; ++i) {
        EXPECT_EQ(hits[i].load(), 1) << "index " << i << " pool " << p;
      }
    }
  }
}

TEST(ThreadPoolTest, ChunksAreContiguousAndOrderedByIndex) {
  // The static partition contract: each chunk is a contiguous [b, e)
  // range, and writing results by index reproduces the serial order.
  ThreadPool pool(4);
  const int n = 103;  // deliberately not a multiple of the parallelism
  std::vector<int> out(n, -1);
  pool.ParallelFor(0, n, [&](int b, int e) {
    ASSERT_LE(b, e);
    for (int i = b; i < e; ++i) out[i] = i * i;
  });
  for (int i = 0; i < n; ++i) EXPECT_EQ(out[i], i * i);
}

TEST(ThreadPoolTest, DeterministicResultOrdering) {
  // Index-addressed writes give identical results on every run and at
  // every parallelism — the property GEMM row partitioning relies on.
  auto run = [](int parallelism) {
    ThreadPool pool(parallelism);
    std::vector<double> out(257, 0.0);
    pool.ParallelFor(0, static_cast<int>(out.size()), [&](int b, int e) {
      for (int i = b; i < e; ++i) out[i] = 1.0 / (1.0 + i);
    });
    return out;
  };
  const std::vector<double> serial = run(1);
  EXPECT_EQ(serial, run(2));
  EXPECT_EQ(serial, run(5));
  EXPECT_EQ(serial, run(16));
}

TEST(ThreadPoolTest, ExceptionPropagatesAndPoolStaysUsable) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.ParallelFor(0, 100,
                       [&](int b, int /*e*/) {
                         if (b <= 42) throw std::runtime_error("boom");
                       }),
      std::runtime_error);
  // The pool must remain reusable after a throwing loop.
  std::atomic<int> sum{0};
  pool.ParallelFor(0, 10, [&](int b, int e) {
    for (int i = b; i < e; ++i) sum.fetch_add(i);
  });
  EXPECT_EQ(sum.load(), 45);
}

TEST(ThreadPoolTest, LowestChunkExceptionWins) {
  // When several chunks throw, the rethrown error is the lowest chunk's,
  // so failures are reproducible at any parallelism.
  ThreadPool pool(4);
  try {
    pool.ParallelFor(0, 400, [&](int b, int /*e*/) {
      throw std::runtime_error("chunk@" + std::to_string(b));
    });
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "chunk@0");
  }
}

TEST(ThreadPoolTest, NestedParallelForRunsInline) {
  // A ParallelFor issued from inside a worker must not deadlock (workers
  // never wait on the queue they service); the nested loop runs inline.
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(64);
  pool.ParallelFor(0, 8, [&](int ob, int oe) {
    for (int o = ob; o < oe; ++o) {
      pool.ParallelFor(0, 8, [&](int ib, int ie) {
        for (int i = ib; i < ie; ++i) hits[o * 8 + i].fetch_add(1);
      });
    }
  });
  for (int i = 0; i < 64; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(ThreadPoolTest, ZeroTasksNeverInvokeTheBody) {
  // The degenerate "no work" call must not touch the queue, wake workers,
  // or invoke the body — at any pool size, repeatedly.
  for (int p : {1, 2, 16}) {
    ThreadPool pool(p);
    std::atomic<int> calls{0};
    for (int rep = 0; rep < 100; ++rep) {
      pool.ParallelFor(0, 0, [&](int, int) { calls.fetch_add(1); });
    }
    EXPECT_EQ(calls.load(), 0) << "pool " << p;
  }
}

TEST(ThreadPoolTest, MoreThreadsThanWorkItems) {
  // With parallelism > len the partition must produce at most len chunks,
  // all non-empty — never an empty chunk that would call body(b, b).
  ThreadPool pool(16);
  for (int n : {1, 2, 3, 7}) {
    std::atomic<int> chunks{0};
    std::vector<std::atomic<int>> hits(n);
    pool.ParallelFor(0, n, [&](int b, int e) {
      EXPECT_LT(b, e) << "empty chunk";
      chunks.fetch_add(1);
      for (int i = b; i < e; ++i) hits[i].fetch_add(1);
    });
    EXPECT_LE(chunks.load(), n);
    EXPECT_GE(chunks.load(), 1);
    for (int i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1);
  }
}

TEST(ThreadPoolTest, NestedParallelForAcrossDistinctPoolsRunsInline) {
  // The inline-when-in-worker rule is process-wide, not per-pool: a
  // worker of pool A issuing a ParallelFor on pool B must run it inline,
  // otherwise two pools could deadlock each other. The inner loop
  // therefore executes as exactly one serial chunk.
  ThreadPool outer(4);
  ThreadPool inner(4);
  std::atomic<int> inner_chunks{0};
  std::vector<std::atomic<int>> hits(64);
  outer.ParallelFor(0, 8, [&](int ob, int oe) {
    for (int o = ob; o < oe; ++o) {
      inner.ParallelFor(0, 8, [&](int ib, int ie) {
        inner_chunks.fetch_add(1);
        for (int i = ib; i < ie; ++i) hits[o * 8 + i].fetch_add(1);
      });
    }
  });
  for (int i = 0; i < 64; ++i) EXPECT_EQ(hits[i].load(), 1);
  // 8 outer iterations, each inner loop one serial chunk.
  EXPECT_EQ(inner_chunks.load(), 8);
}

TEST(ThreadPoolTest, ExceptionFromWorkerMidChunk) {
  // A worker (not the calling thread — chunk 0 stays on the caller, all
  // later chunks are queued to workers) throws halfway through its chunk.
  // The error must surface on the caller, writes made before the throw
  // must be visible (the completion latch orders them), and the pool must
  // stay usable.
  ThreadPool pool(4);
  std::vector<int> out(400, -1);
  try {
    pool.ParallelFor(0, 400, [&](int b, int e) {
      for (int i = b; i < e; ++i) {
        if (b != 0 && i == b + (e - b) / 2) {
          throw std::runtime_error("mid-chunk@" + std::to_string(b));
        }
        out[i] = i;
      }
    });
    FAIL() << "expected throw";
  } catch (const std::runtime_error& err) {
    EXPECT_NE(std::string(err.what()).find("mid-chunk@"), std::string::npos);
  }
  // Chunk 0 ran on the calling thread and never threw: fully written.
  for (int i = 0; i < 100; ++i) EXPECT_EQ(out[i], i);
  // Every thrown chunk stopped exactly at its midpoint — the first half
  // of each chunk is visible to the caller after ParallelFor returns.
  for (int c = 1; c < 4; ++c) {
    const int b = c * 100;
    for (int i = b; i < b + 50; ++i) EXPECT_EQ(out[i], i);
    for (int i = b + 50; i < b + 100; ++i) EXPECT_EQ(out[i], -1);
  }
  std::atomic<int> sum{0};
  pool.ParallelFor(0, 10, [&](int b, int e) {
    for (int i = b; i < e; ++i) sum.fetch_add(i);
  });
  EXPECT_EQ(sum.load(), 45);
}

TEST(ThreadPoolTest, ExceptionInsideNestedParallelForPropagates) {
  // A nested (inline) ParallelFor that throws must unwind through the
  // outer chunk and be rethrown by the outer call, leaving both loops'
  // state consistent.
  ThreadPool pool(3);
  EXPECT_THROW(
      pool.ParallelFor(0, 6,
                       [&](int b, int /*e*/) {
                         pool.ParallelFor(0, 4, [&](int ib, int /*ie*/) {
                           if (b == 0 && ib == 0) {
                             throw std::runtime_error("nested");
                           }
                         });
                       }),
      std::runtime_error);
  std::atomic<int> sum{0};
  pool.ParallelFor(0, 10, [&](int b, int e) {
    for (int i = b; i < e; ++i) sum.fetch_add(i);
  });
  EXPECT_EQ(sum.load(), 45);
}

TEST(ThreadPoolTest, EmptyAndReversedRangesAreNoOps) {
  ThreadPool pool(4);
  int calls = 0;
  pool.ParallelFor(5, 5, [&](int, int) { ++calls; });
  pool.ParallelFor(7, 3, [&](int, int) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ThreadPoolTest, GlobalPoolResize) {
  ThreadPool::SetGlobalParallelism(3);
  EXPECT_EQ(ThreadPool::Global().parallelism(), 3);
  ThreadPool::SetGlobalParallelism(1);
  EXPECT_EQ(ThreadPool::Global().parallelism(), 1);
  // Leave the global pool at the environment default for other tests in
  // this binary (none currently, but keep the invariant).
  ThreadPool::SetGlobalParallelism(ThreadPool::DefaultParallelism());
}

TEST(ThreadPoolTest, DefaultParallelismIsPositive) {
  EXPECT_GE(ThreadPool::DefaultParallelism(), 1);
}

}  // namespace
}  // namespace nlidb
