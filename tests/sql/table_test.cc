#include "sql/table.h"

#include <gtest/gtest.h>

namespace nlidb {
namespace sql {
namespace {

Schema FilmSchema() {
  return Schema({{"film_name", DataType::kText},
                 {"director", DataType::kText},
                 {"year", DataType::kReal}});
}

TEST(SchemaTest, ColumnIndexCaseInsensitive) {
  Schema s = FilmSchema();
  EXPECT_EQ(s.ColumnIndex("director"), 1);
  EXPECT_EQ(s.ColumnIndex("DIRECTOR"), 1);
  EXPECT_EQ(s.ColumnIndex("unknown"), -1);
}

TEST(SchemaTest, DisplayForms) {
  ColumnDef c{"film_name", DataType::kText};
  EXPECT_EQ(c.Display(), "film name");
  EXPECT_EQ(c.DisplayTokens(), (std::vector<std::string>{"film", "name"}));
}

TEST(SchemaTest, Equality) {
  EXPECT_EQ(FilmSchema(), FilmSchema());
  Schema other({{"film_name", DataType::kText}});
  EXPECT_FALSE(FilmSchema() == other);
}

TEST(TableTest, AddRowValidatesArity) {
  Table t("films", FilmSchema());
  Status s = t.AddRow({Value::Text("a"), Value::Text("b")});
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(t.num_rows(), 0);
}

TEST(TableTest, AddRowValidatesTypes) {
  Table t("films", FilmSchema());
  Status s = t.AddRow(
      {Value::Text("a"), Value::Text("b"), Value::Text("not a year")});
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST(TableTest, CellAndColumnAccess) {
  Table t("films", FilmSchema());
  ASSERT_TRUE(t.AddRow({Value::Text("chopin"), Value::Text("antczak"),
                        Value::Real(2002)})
                  .ok());
  ASSERT_TRUE(t.AddRow({Value::Text("kisses"), Value::Text("djordjadze"),
                        Value::Real(2000)})
                  .ok());
  EXPECT_EQ(t.num_rows(), 2);
  EXPECT_EQ(t.Cell(1, 0).text(), "kisses");
  auto years = t.ColumnValues(2);
  EXPECT_EQ(years.size(), 2u);
  EXPECT_EQ(years[0].number(), 2002);
  EXPECT_TRUE(t.ColumnContains(1, Value::Text("ANTCZAK")));
  EXPECT_FALSE(t.ColumnContains(1, Value::Text("spielberg")));
}

}  // namespace
}  // namespace sql
}  // namespace nlidb
