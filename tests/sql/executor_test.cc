#include "sql/executor.h"

#include <gtest/gtest.h>

namespace nlidb {
namespace sql {
namespace {

Table MedalsTable() {
  Schema schema({{"athlete", DataType::kText},
                 {"nation", DataType::kText},
                 {"gold", DataType::kReal}});
  Table t("medals", schema);
  auto add = [&t](const char* a, const char* n, double g) {
    ASSERT_TRUE(
        t.AddRow({Value::Text(a), Value::Text(n), Value::Real(g)}).ok());
  };
  add("sofia silva", "brazil", 3);
  add("liam murphy", "ireland", 1);
  add("yuki tanaka", "japan", 5);
  add("nora walsh", "ireland", 2);
  return t;
}

SelectQuery Select(int col) {
  SelectQuery q;
  q.select_column = col;
  return q;
}

TEST(ExecutorTest, SelectAllNoConditions) {
  Table t = MedalsTable();
  auto r = Execute(Select(0), t);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size(), 4u);
}

TEST(ExecutorTest, EqualityFilter) {
  Table t = MedalsTable();
  SelectQuery q = Select(0);
  q.conditions.push_back({1, CondOp::kEq, Value::Text("IRELAND")});
  auto r = Execute(q, t);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->size(), 2u);
}

TEST(ExecutorTest, GreaterLessFilters) {
  Table t = MedalsTable();
  SelectQuery q = Select(0);
  q.conditions.push_back({2, CondOp::kGt, Value::Real(2)});
  auto r = Execute(q, t);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size(), 2u);  // 3 and 5
  q.conditions[0].op = CondOp::kLt;
  q.conditions[0].value = Value::Real(3);
  r = Execute(q, t);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size(), 2u);  // 1 and 2 are below 3
}

TEST(ExecutorTest, ConjunctionOfConditions) {
  Table t = MedalsTable();
  SelectQuery q = Select(0);
  q.conditions.push_back({1, CondOp::kEq, Value::Text("ireland")});
  q.conditions.push_back({2, CondOp::kGt, Value::Real(1)});
  auto r = Execute(q, t);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->size(), 1u);
  EXPECT_EQ((*r)[0].text(), "nora walsh");
}

TEST(ExecutorTest, Aggregates) {
  Table t = MedalsTable();
  SelectQuery q = Select(2);
  q.agg = Aggregate::kMax;
  EXPECT_EQ(Execute(q, t)->at(0).number(), 5);
  q.agg = Aggregate::kMin;
  EXPECT_EQ(Execute(q, t)->at(0).number(), 1);
  q.agg = Aggregate::kSum;
  EXPECT_EQ(Execute(q, t)->at(0).number(), 11);
  q.agg = Aggregate::kAvg;
  EXPECT_DOUBLE_EQ(Execute(q, t)->at(0).number(), 11.0 / 4);
  q.agg = Aggregate::kCount;
  EXPECT_EQ(Execute(q, t)->at(0).number(), 4);
}

TEST(ExecutorTest, AggregatesOverEmptyMatch) {
  Table t = MedalsTable();
  SelectQuery q = Select(2);
  q.conditions.push_back({1, CondOp::kEq, Value::Text("atlantis")});
  q.agg = Aggregate::kCount;
  EXPECT_EQ(Execute(q, t)->at(0).number(), 0);
  q.agg = Aggregate::kMax;
  EXPECT_TRUE(Execute(q, t)->empty());
  q.agg = Aggregate::kAvg;
  EXPECT_TRUE(Execute(q, t)->empty());
  q.agg = Aggregate::kSum;
  EXPECT_EQ(Execute(q, t)->at(0).number(), 0);
}

TEST(ExecutorTest, SumOverTextIsError) {
  Table t = MedalsTable();
  SelectQuery q = Select(0);
  q.agg = Aggregate::kSum;
  EXPECT_FALSE(Execute(q, t).ok());
}

TEST(ExecutorTest, OutOfRangeColumnsRejected) {
  Table t = MedalsTable();
  SelectQuery q = Select(9);
  EXPECT_FALSE(Execute(q, t).ok());
  q = Select(0);
  q.conditions.push_back({-1, CondOp::kEq, Value::Text("x")});
  EXPECT_FALSE(Execute(q, t).ok());
}

TEST(ExecutorTest, CrossTypeEqualityComparesDisplayForms) {
  Schema schema({{"code", DataType::kText}});
  Table t("codes", schema);
  ASSERT_TRUE(t.AddRow({Value::Text("57")}).ok());
  SelectQuery q = Select(0);
  q.conditions.push_back({0, CondOp::kEq, Value::Real(57)});
  auto r = Execute(q, t);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size(), 1u);
}

TEST(ResultsEqualTest, MultisetSemantics) {
  std::vector<Value> a = {Value::Text("x"), Value::Text("y")};
  std::vector<Value> b = {Value::Text("Y"), Value::Text("X")};
  EXPECT_TRUE(ResultsEqual(a, b));
  std::vector<Value> c = {Value::Text("x"), Value::Text("x")};
  EXPECT_FALSE(ResultsEqual(a, c));
  EXPECT_FALSE(ResultsEqual(a, {Value::Text("x")}));
  EXPECT_TRUE(ResultsEqual({}, {}));
}

}  // namespace
}  // namespace sql
}  // namespace nlidb
