#include "sql/query.h"

#include <gtest/gtest.h>

namespace nlidb {
namespace sql {
namespace {

Schema TestSchema() {
  return Schema({{"race", DataType::kText},
                 {"winning_driver", DataType::kText},
                 {"points", DataType::kReal}});
}

SelectQuery TwoCondQuery() {
  SelectQuery q;
  q.select_column = 1;
  q.conditions.push_back({0, CondOp::kEq, Value::Text("monaco grand prix")});
  q.conditions.push_back({2, CondOp::kGt, Value::Real(10)});
  return q;
}

TEST(QueryTest, ToSqlRendering) {
  EXPECT_EQ(ToSql(TwoCondQuery(), TestSchema()),
            "SELECT winning_driver WHERE race = \"monaco grand prix\" "
            "AND points > 10");
}

TEST(QueryTest, AggregateRendering) {
  SelectQuery q;
  q.agg = Aggregate::kMax;
  q.select_column = 2;
  EXPECT_EQ(ToSql(q, TestSchema()), "SELECT MAX points");
}

TEST(QueryTest, TokensMatchStringRendering) {
  auto tokens = ToSqlTokens(TwoCondQuery(), TestSchema());
  EXPECT_EQ(tokens[0], "SELECT");
  EXPECT_EQ(tokens[1], "winning_driver");
  EXPECT_EQ(tokens[2], "WHERE");
}

TEST(QueryTest, LogicalFormEqualityIsOrderSensitive) {
  SelectQuery a = TwoCondQuery();
  SelectQuery b = a;
  std::swap(b.conditions[0], b.conditions[1]);
  EXPECT_FALSE(a == b);
  EXPECT_TRUE(a == TwoCondQuery());
}

TEST(QueryTest, CanonicalizeSortsConditions) {
  SelectQuery a = TwoCondQuery();
  SelectQuery b = a;
  std::swap(b.conditions[0], b.conditions[1]);
  EXPECT_EQ(CanonicalSql(a, TestSchema()), CanonicalSql(b, TestSchema()));
}

TEST(QueryTest, CanonicalLowercasesValues) {
  SelectQuery a;
  a.select_column = 0;
  a.conditions.push_back({1, CondOp::kEq, Value::Text("Noah Murphy")});
  SelectQuery b = a;
  b.conditions[0].value = Value::Text("noah murphy");
  EXPECT_EQ(CanonicalSql(a, TestSchema()), CanonicalSql(b, TestSchema()));
}

TEST(QueryTest, CanonicalDistinguishesOps) {
  SelectQuery a;
  a.select_column = 0;
  a.conditions.push_back({2, CondOp::kGt, Value::Real(5)});
  SelectQuery b = a;
  b.conditions[0].op = CondOp::kLt;
  EXPECT_NE(CanonicalSql(a, TestSchema()), CanonicalSql(b, TestSchema()));
}

TEST(QueryTest, AggregateNames) {
  EXPECT_STREQ(AggregateName(Aggregate::kNone), "");
  EXPECT_STREQ(AggregateName(Aggregate::kCount), "COUNT");
  EXPECT_STREQ(CondOpName(CondOp::kEq), "=");
  EXPECT_STREQ(CondOpName(CondOp::kGt), ">");
  EXPECT_STREQ(CondOpName(CondOp::kLt), "<");
}

}  // namespace
}  // namespace sql
}  // namespace nlidb
