#include "sql/csv.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

namespace nlidb {
namespace sql {
namespace {

TEST(CsvTest, ParsesHeaderAndTypes) {
  auto table = ParseCsv(
      "name,age,city\n"
      "ada lovelace,36,london\n"
      "alan turing,41,wilmslow\n",
      "people");
  ASSERT_TRUE(table.ok()) << table.status();
  EXPECT_EQ(table->name(), "people");
  EXPECT_EQ(table->num_rows(), 2);
  EXPECT_EQ(table->schema().column(0).type, DataType::kText);
  EXPECT_EQ(table->schema().column(1).type, DataType::kReal);
  EXPECT_EQ(table->Cell(0, 1).number(), 36);
  EXPECT_EQ(table->Cell(1, 0).text(), "alan turing");
}

TEST(CsvTest, CrlfLineEndingsStripped) {
  // CRLF input must parse exactly like LF input: no "\r" glued onto the
  // last field, and numeric type inference still sees a clean number.
  auto table = ParseCsv("name,age\r\nada,36\r\nalan,41\r\n", "t");
  ASSERT_TRUE(table.ok()) << table.status();
  EXPECT_EQ(table->num_rows(), 2);
  EXPECT_EQ(table->schema().column(1).type, DataType::kReal);
  EXPECT_EQ(table->Cell(0, 1).number(), 36);
  EXPECT_EQ(table->Cell(1, 0).text(), "alan");
}

TEST(CsvTest, CrlfWithoutFinalNewline) {
  auto table = ParseCsv("a,b\r\n1,2", "t");
  ASSERT_TRUE(table.ok()) << table.status();
  EXPECT_EQ(table->num_rows(), 1);
  EXPECT_EQ(table->Cell(0, 1).number(), 2);
}

TEST(CsvTest, QuotedFieldsKeepCommas) {
  auto table = ParseCsv(
      "title,year\n"
      "\"hello, world\",1999\n",
      "t");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->Cell(0, 0).text(), "hello, world");
}

TEST(CsvTest, EscapedQuotes) {
  auto table = ParseCsv(
      "quote,n\n"
      "\"she said \"\"hi\"\"\",1\n",
      "t");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->Cell(0, 0).text(), "she said \"hi\"");
}

TEST(CsvTest, HeaderNormalizedToSnakeCase) {
  auto table = ParseCsv("Film Name,Box Office\nx,3\n", "t");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->schema().column(0).name, "film_name");
  EXPECT_EQ(table->schema().column(1).name, "box_office");
}

TEST(CsvTest, MixedColumnFallsBackToText) {
  auto table = ParseCsv("code\n42\nx17\n", "t");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->schema().column(0).type, DataType::kText);
}

TEST(CsvTest, AllEmptyColumnIsText) {
  auto table = ParseCsv("a,b\n,\n,\n", "t");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->schema().column(0).type, DataType::kText);
}

TEST(CsvTest, ArityMismatchRejected) {
  auto table = ParseCsv("a,b\n1,2,3\n", "t");
  EXPECT_FALSE(table.ok());
  EXPECT_EQ(table.status().code(), StatusCode::kParseError);
}

TEST(CsvTest, EmptyInputRejected) {
  EXPECT_FALSE(ParseCsv("", "t").ok());
  EXPECT_FALSE(ParseCsv("\n", "t").ok());
}

TEST(CsvTest, BlankLinesSkipped) {
  auto table = ParseCsv("a\n1\n\n2\n\n", "t");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->num_rows(), 2);
}

TEST(CsvTest, LoadFromFile) {
  const std::string path =
      std::string(::testing::TempDir()) + "/csv_test_table.csv";
  {
    std::ofstream out(path);
    out << "city,population\nmayo,356\ngalway,1225\n";
  }
  auto table = LoadCsvTable(path);
  ASSERT_TRUE(table.ok()) << table.status();
  EXPECT_EQ(table->name(), "csv_test_table");
  EXPECT_EQ(table->num_rows(), 2);
  std::remove(path.c_str());
  EXPECT_FALSE(LoadCsvTable(path).ok());
}

}  // namespace
}  // namespace sql
}  // namespace nlidb
