#include "sql/value.h"

#include <gtest/gtest.h>

namespace nlidb {
namespace sql {
namespace {

TEST(ValueTest, TextBasics) {
  Value v = Value::Text("Mayo");
  EXPECT_TRUE(v.is_text());
  EXPECT_FALSE(v.is_real());
  EXPECT_EQ(v.text(), "Mayo");
  EXPECT_EQ(v.ToString(), "Mayo");
}

TEST(ValueTest, RealFormatting) {
  EXPECT_EQ(Value::Real(3).ToString(), "3");
  EXPECT_EQ(Value::Real(-17).ToString(), "-17");
  EXPECT_EQ(Value::Real(2.5).ToString(), "2.5");
  EXPECT_EQ(Value::Real(1971).ToString(), "1971");
}

TEST(ValueTest, EqualityCaseInsensitiveForText) {
  EXPECT_EQ(Value::Text("Mayo"), Value::Text("mayo"));
  EXPECT_NE(Value::Text("Mayo"), Value::Text("Galway"));
  EXPECT_EQ(Value::Real(4), Value::Real(4.0));
  EXPECT_NE(Value::Real(4), Value::Real(5));
  EXPECT_NE(Value::Text("4"), Value::Real(4));  // type-strict equality
}

TEST(ValueTest, Ordering) {
  EXPECT_TRUE(Value::Real(1).LessThan(Value::Real(2)));
  EXPECT_FALSE(Value::Real(2).LessThan(Value::Real(1)));
  EXPECT_TRUE(Value::Text("Apple").LessThan(Value::Text("banana")));
}

TEST(ValueTest, DefaultIsEmptyText) {
  Value v;
  EXPECT_TRUE(v.is_text());
  EXPECT_EQ(v.text(), "");
}

TEST(FormatNumberTest, TrimsIntegers) {
  EXPECT_EQ(FormatNumber(100.0), "100");
  EXPECT_EQ(FormatNumber(0.0), "0");
  EXPECT_EQ(FormatNumber(0.5), "0.5");
}

}  // namespace
}  // namespace sql
}  // namespace nlidb
