// Differential test: the executor is checked against an independent
// brute-force oracle on thousands of random queries over random tables.

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "common/strings.h"
#include "sql/executor.h"

namespace nlidb {
namespace sql {
namespace {

/// Straight-line re-implementation of WikiSQL-class semantics used as the
/// oracle. Intentionally written differently from the production code.
std::vector<Value> OracleExecute(const SelectQuery& q, const Table& t) {
  std::vector<Value> picked;
  for (int r = 0; r < t.num_rows(); ++r) {
    bool all = true;
    for (const auto& c : q.conditions) {
      const Value& cell = t.Cell(r, c.column);
      bool holds = false;
      if (c.op == CondOp::kEq) {
        holds = ToLower(cell.ToString()) == ToLower(c.value.ToString());
      } else if (cell.type() == c.value.type()) {
        if (cell.is_real()) {
          holds = c.op == CondOp::kGt ? cell.number() > c.value.number()
                                      : cell.number() < c.value.number();
        } else {
          const std::string a = ToLower(cell.text());
          const std::string b = ToLower(c.value.text());
          holds = c.op == CondOp::kGt ? a > b : a < b;
        }
      }
      if (!holds) {
        all = false;
        break;
      }
    }
    if (all) picked.push_back(t.Cell(r, q.select_column));
  }
  switch (q.agg) {
    case Aggregate::kNone:
      return picked;
    case Aggregate::kCount:
      return {Value::Real(static_cast<double>(picked.size()))};
    case Aggregate::kMax:
    case Aggregate::kMin: {
      if (picked.empty()) return {};
      size_t best = 0;
      for (size_t i = 1; i < picked.size(); ++i) {
        const bool less = picked[i].LessThan(picked[best]);
        if ((q.agg == Aggregate::kMin && less) ||
            (q.agg == Aggregate::kMax && !less &&
             !(picked[i] == picked[best]))) {
          best = i;
        }
      }
      return {picked[best]};
    }
    case Aggregate::kSum:
    case Aggregate::kAvg: {
      double sum = 0;
      for (const auto& v : picked) sum += v.number();
      if (q.agg == Aggregate::kSum) return {Value::Real(sum)};
      if (picked.empty()) return {};
      return {Value::Real(sum / picked.size())};
    }
  }
  return {};
}

class ExecutorDifferentialTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ExecutorDifferentialTest, MatchesOracle) {
  Rng rng(GetParam());
  for (int table_trial = 0; table_trial < 10; ++table_trial) {
    // Random table: 1 text + 1-2 real columns, small value alphabet so
    // conditions actually match rows.
    const int ncols = rng.NextInt(2, 3);
    Schema schema;
    schema.AddColumn({"t0", DataType::kText});
    for (int c = 1; c < ncols; ++c) {
      schema.AddColumn({"r" + std::to_string(c), DataType::kReal});
    }
    Table table("diff", schema);
    static const char* kWords[] = {"alpha", "beta", "gamma", "delta"};
    const int nrows = rng.NextInt(0, 20);
    for (int r = 0; r < nrows; ++r) {
      std::vector<Value> row;
      row.push_back(Value::Text(kWords[rng.NextUint64(4)]));
      for (int c = 1; c < ncols; ++c) {
        row.push_back(Value::Real(rng.NextInt(0, 5)));
      }
      ASSERT_TRUE(table.AddRow(std::move(row)).ok());
    }
    for (int query_trial = 0; query_trial < 60; ++query_trial) {
      SelectQuery q;
      q.select_column = static_cast<int>(rng.NextUint64(ncols));
      // Aggregates that need numerics only on numeric select columns.
      const int agg_roll = rng.NextInt(0, 5);
      q.agg = static_cast<Aggregate>(agg_roll);
      if ((q.agg == Aggregate::kSum || q.agg == Aggregate::kAvg) &&
          schema.column(q.select_column).type != DataType::kReal) {
        q.agg = Aggregate::kNone;
      }
      const int nconds = rng.NextInt(0, 2);
      for (int i = 0; i < nconds; ++i) {
        Condition cond;
        cond.column = static_cast<int>(rng.NextUint64(ncols));
        if (schema.column(cond.column).type == DataType::kReal) {
          cond.op = static_cast<CondOp>(rng.NextInt(0, 2));
          cond.value = Value::Real(rng.NextInt(0, 5));
        } else {
          cond.op = CondOp::kEq;
          cond.value = Value::Text(kWords[rng.NextUint64(4)]);
        }
        q.conditions.push_back(std::move(cond));
      }
      auto got = Execute(q, table);
      ASSERT_TRUE(got.ok()) << got.status();
      const auto expected = OracleExecute(q, table);
      EXPECT_TRUE(ResultsEqual(*got, expected))
          << ToSql(q, schema) << " rows=" << nrows;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExecutorDifferentialTest,
                         ::testing::Values(11, 22, 33, 44, 55));

}  // namespace
}  // namespace sql
}  // namespace nlidb
