#include "sql/statistics.h"

#include <gtest/gtest.h>

namespace nlidb {
namespace sql {
namespace {

Table PeopleTable() {
  Schema schema({{"name", DataType::kText}, {"age", DataType::kReal}});
  Table t("people", schema);
  EXPECT_TRUE(t.AddRow({Value::Text("piotr adamczyk"), Value::Real(30)}).ok());
  EXPECT_TRUE(t.AddRow({Value::Text("sofia garcia"), Value::Real(50)}).ok());
  EXPECT_TRUE(t.AddRow({Value::Text("piotr adamczyk"), Value::Real(40)}).ok());
  return t;
}

TEST(StatisticsTest, NumericProfile) {
  text::EmbeddingProvider provider(16);
  Table t = PeopleTable();
  ColumnStatistics stats = ComputeColumnStatistics(t, 1, provider);
  EXPECT_EQ(stats.type, DataType::kReal);
  EXPECT_EQ(stats.min_value, 30);
  EXPECT_EQ(stats.max_value, 50);
  EXPECT_EQ(stats.mean_value, 40);
  EXPECT_EQ(stats.distinct_count, 3);
}

TEST(StatisticsTest, DistinctCountAndTokens) {
  text::EmbeddingProvider provider(16);
  Table t = PeopleTable();
  ColumnStatistics stats = ComputeColumnStatistics(t, 0, provider);
  EXPECT_EQ(stats.distinct_count, 2);
  EXPECT_FLOAT_EQ(stats.avg_tokens_per_cell, 2.0f);
}

TEST(StatisticsTest, EmbeddingIsMeanOfCellEmbeddings) {
  text::EmbeddingProvider provider(16);
  Table t = PeopleTable();
  ColumnStatistics stats = ComputeColumnStatistics(t, 0, provider);
  ASSERT_EQ(stats.embedding.size(), 16u);
  // Mean of three cell vectors (two identical).
  auto v1 = provider.PhraseVector({"piotr", "adamczyk"});
  auto v2 = provider.PhraseVector({"sofia", "garcia"});
  for (int j = 0; j < 16; ++j) {
    EXPECT_NEAR(stats.embedding[j], (2 * v1[j] + v2[j]) / 3.0f, 1e-5f);
  }
}

TEST(StatisticsTest, EmptyTableGivesZeroEmbedding) {
  text::EmbeddingProvider provider(8);
  Schema schema({{"x", DataType::kText}});
  Table t("empty", schema);
  ColumnStatistics stats = ComputeColumnStatistics(t, 0, provider);
  for (float v : stats.embedding) EXPECT_EQ(v, 0.0f);
  EXPECT_EQ(stats.distinct_count, 0);
}

TEST(StatisticsTest, SameKindColumnsHaveSimilarStats) {
  // The property the value detector relies on: two person-name columns
  // have near-identical statistics vectors, a name column and a number
  // column do not.
  text::EmbeddingProvider provider(32);
  provider.AddCluster("firstname", {"piotr", "sofia", "liam"});
  provider.AddCluster("surname", {"adamczyk", "garcia", "murphy"});
  Schema schema({{"actor", DataType::kText},
                 {"director", DataType::kText},
                 {"year", DataType::kReal}});
  Table t("films", schema);
  ASSERT_TRUE(t.AddRow({Value::Text("piotr adamczyk"),
                        Value::Text("sofia garcia"), Value::Real(1999)})
                  .ok());
  ASSERT_TRUE(t.AddRow({Value::Text("liam murphy"),
                        Value::Text("piotr garcia"), Value::Real(2004)})
                  .ok());
  auto stats = ComputeTableStatistics(t, provider);
  const float same_kind = text::EmbeddingProvider::Cosine(stats[0].embedding,
                                                          stats[1].embedding);
  const float diff_kind = text::EmbeddingProvider::Cosine(stats[0].embedding,
                                                          stats[2].embedding);
  EXPECT_GT(same_kind, 0.8f);
  EXPECT_GT(same_kind, diff_kind + 0.2f);
}

}  // namespace
}  // namespace sql
}  // namespace nlidb
