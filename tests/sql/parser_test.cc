#include "sql/parser.h"

#include <gtest/gtest.h>

namespace nlidb {
namespace sql {
namespace {

Schema TestSchema() {
  return Schema({{"county", DataType::kText},
                 {"english_name", DataType::kText},
                 {"population", DataType::kReal}});
}

TEST(ParserTest, RoundTripsPrinterOutput) {
  SelectQuery q;
  q.select_column = 2;
  q.conditions.push_back({0, CondOp::kEq, Value::Text("Mayo")});
  q.conditions.push_back({1, CondOp::kEq, Value::Text("Carrowteige")});
  const std::string sql = ToSql(q, TestSchema());
  auto parsed = ParseSql(sql, TestSchema());
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_TRUE(*parsed == q);
}

TEST(ParserTest, ParsesAggregates) {
  auto parsed = ParseSql("SELECT MAX population WHERE county = \"Mayo\"",
                         TestSchema());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->agg, Aggregate::kMax);
  EXPECT_EQ(parsed->select_column, 2);
}

TEST(ParserTest, ParsesParenthesizedAggregates) {
  auto parsed = ParseSql("SELECT COUNT(county)", TestSchema());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->agg, Aggregate::kCount);
  EXPECT_EQ(parsed->select_column, 0);
}

TEST(ParserTest, ToleratesFromClause) {
  auto parsed = ParseSql("SELECT county FROM gaeltacht", TestSchema());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->select_column, 0);
}

TEST(ParserTest, NumericValuesTyped) {
  auto parsed = ParseSql("SELECT county WHERE population > 1000", TestSchema());
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed->conditions[0].value.is_real());
  EXPECT_EQ(parsed->conditions[0].value.number(), 1000);
}

TEST(ParserTest, QuotedNumericAgainstRealColumnCoerces) {
  auto parsed =
      ParseSql("SELECT county WHERE population = \"356\"", TestSchema());
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed->conditions[0].value.is_real());
}

TEST(ParserTest, CaseInsensitiveKeywordsAndColumns) {
  auto parsed =
      ParseSql("select County where POPULATION < 500", TestSchema());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->conditions[0].op, CondOp::kLt);
}

TEST(ParserTest, ErrorOnUnknownColumn) {
  auto parsed = ParseSql("SELECT nonexistent", TestSchema());
  EXPECT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kParseError);
}

TEST(ParserTest, ErrorOnMissingOperator) {
  auto parsed = ParseSql("SELECT county WHERE population", TestSchema());
  EXPECT_FALSE(parsed.ok());
}

TEST(ParserTest, ErrorOnGarbage) {
  EXPECT_FALSE(ParseSql("", TestSchema()).ok());
  EXPECT_FALSE(ParseSql("DELETE FROM x", TestSchema()).ok());
  EXPECT_FALSE(ParseSql("SELECT county WHERE county = \"a\" OR", TestSchema()).ok());
}

TEST(TokenizeSqlTest, QuotedStringsStayWhole) {
  auto tokens = TokenizeSql("a = \"two words\" AND b");
  EXPECT_EQ(tokens[2], "\"two words\"");
  EXPECT_EQ(tokens.size(), 5u);
}

TEST(TokenizeSqlTest, OperatorsSeparate) {
  auto tokens = TokenizeSql("population>1000");
  EXPECT_EQ(tokens, (std::vector<std::string>{"population", ">", "1000"}));
}

}  // namespace
}  // namespace sql
}  // namespace nlidb
