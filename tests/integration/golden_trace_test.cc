// Golden-trace harness: trains one tiny pipeline on a fixed generator
// corpus, serializes every pipeline stage (classifier probabilities,
// mention pairs, q^a, decoded s^a, recovered SQL, executor results) for a
// held-out corpus, and asserts that the trace is (a) bitwise identical
// across thread counts {1, 2, 8} and both GEMM ISA tiers, and (b) equal
// to the committed golden file. Regenerate with NLIDB_UPDATE_GOLDENS=1
// after an intentional behavior change (DESIGN.md "Correctness
// architecture").

#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "common/thread_pool.h"
#include "common/trace.h"
#include "core/pipeline.h"
#include "data/generator.h"
#include "tensor/gemm_kernels.h"
#include "testing/golden.h"
#include "testing/trace.h"

namespace nlidb {
namespace {

class GoldenTraceTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    provider_ = new std::shared_ptr<text::EmbeddingProvider>(
        std::make_shared<text::EmbeddingProvider>());
    data::RegisterDomainClusters(**provider_);

    // Training corpus: small but non-trivial, fixed seed.
    data::GeneratorConfig train_gc;
    train_gc.num_tables = 8;
    train_gc.questions_per_table = 4;
    train_gc.seed = 1234;
    data::Splits splits = data::GenerateWikiSqlSplits(train_gc);

    core::ModelConfig config = core::ModelConfig::Tiny();
    config.word_dim = (*provider_)->dim();
    config.classifier_epochs = 2;
    config.value_epochs = 2;
    config.seq2seq_epochs = 3;
    pipeline_ = new core::NlidbPipeline(config, *provider_);
    pipeline_->Train(splits.train);

    // Trace corpus: tables the model never saw, fixed seed, covering the
    // generator's mixed question styles.
    data::GeneratorConfig trace_gc;
    trace_gc.num_tables = 4;
    trace_gc.questions_per_table = 3;
    trace_gc.seed = 4321;
    data::WikiSqlGenerator gen(trace_gc, data::TrainDomains());
    trace_corpus_ = new data::Dataset(gen.Generate());
  }

  static void TearDownTestSuite() {
    delete trace_corpus_;
    delete pipeline_;
    delete provider_;
    ThreadPool::SetGlobalParallelism(ThreadPool::DefaultParallelism());
    gemm::SetTier(gemm::Tier::kAuto);
  }

  static std::shared_ptr<text::EmbeddingProvider>* provider_;
  static core::NlidbPipeline* pipeline_;
  static data::Dataset* trace_corpus_;
};

/// Pins the pipeline's decode mode for one test, restoring on exit.
class ScopedDecodeMode {
 public:
  ScopedDecodeMode(core::NlidbPipeline* pipeline, core::DecodeMode mode)
      : translator_(pipeline->MutableForTraining().translator),
        saved_(translator_->decode_mode()) {
    translator_->set_decode_mode(mode);
  }
  ~ScopedDecodeMode() { translator_->set_decode_mode(saved_); }

 private:
  core::Seq2SeqTranslator* translator_;
  core::DecodeMode saved_;
};

std::shared_ptr<text::EmbeddingProvider>* GoldenTraceTest::provider_ = nullptr;
core::NlidbPipeline* GoldenTraceTest::pipeline_ = nullptr;
data::Dataset* GoldenTraceTest::trace_corpus_ = nullptr;

TEST_F(GoldenTraceTest, BitwiseIdenticalAcrossThreadCountsAndTiers) {
  // Every (tier, thread count) combination must produce the same bytes:
  // the substrate's determinism contract, end to end through the real
  // pipeline rather than kernel microtests.
  std::map<std::string, std::string> traces;
  for (gemm::Tier tier : {gemm::Tier::kBase, gemm::Tier::kAuto}) {
    gemm::SetTier(tier);
    const std::string tier_name =
        gemm::ActiveTier() == gemm::Tier::kAvx2 ? "avx2" : "base";
    for (int threads : {1, 2, 8}) {
      ThreadPool::SetGlobalParallelism(threads);
      traces[tier_name + "/" + std::to_string(threads) + "t"] =
          testing::TraceDataset(*pipeline_, *trace_corpus_);
    }
  }
  gemm::SetTier(gemm::Tier::kAuto);
  ThreadPool::SetGlobalParallelism(ThreadPool::DefaultParallelism());

  const auto& reference = *traces.begin();
  for (const auto& [key, trace] : traces) {
    EXPECT_EQ(trace, reference.second)
        << "pipeline trace diverges between " << reference.first << " and "
        << key;
  }
}

TEST_F(GoldenTraceTest, MatchesCommittedGolden) {
  // The reference decoder is the behavior baseline: its trace is the
  // committed golden, byte for byte.
  ScopedDecodeMode mode(pipeline_, core::DecodeMode::kReference);
  ThreadPool::SetGlobalParallelism(8);
  const std::string trace = testing::TraceDataset(*pipeline_, *trace_corpus_);
  ThreadPool::SetGlobalParallelism(ThreadPool::DefaultParallelism());
  EXPECT_TRUE(testing::MatchesGolden("pipeline_trace.golden", trace));
}

TEST_F(GoldenTraceTest, FastUnmaskedMatchesReferenceGolden) {
  // The bitwise-equivalence gate for the graph-free fast path: decoding
  // with kFastUnmasked must reproduce the *reference* golden exactly —
  // same bytes, not just same answers (DESIGN.md §12).
  ScopedDecodeMode mode(pipeline_, core::DecodeMode::kFastUnmasked);
  ThreadPool::SetGlobalParallelism(8);
  const std::string trace = testing::TraceDataset(*pipeline_, *trace_corpus_);
  ThreadPool::SetGlobalParallelism(ThreadPool::DefaultParallelism());
  EXPECT_TRUE(testing::MatchesGolden("pipeline_trace.golden", trace));
}

TEST_F(GoldenTraceTest, MaskedDefaultMatchesCommittedGolden) {
  // The serving default (kFast = fast path + grammar mask) has its own
  // golden: the mask legitimately restricts decoding to well-formed s^a,
  // so its trace differs from the reference, but it must still be pinned.
  ScopedDecodeMode mode(pipeline_, core::DecodeMode::kFast);
  ThreadPool::SetGlobalParallelism(8);
  const std::string trace = testing::TraceDataset(*pipeline_, *trace_corpus_);
  ThreadPool::SetGlobalParallelism(ThreadPool::DefaultParallelism());
  EXPECT_TRUE(testing::MatchesGolden("pipeline_trace_masked.golden", trace));
}

TEST_F(GoldenTraceTest, MaskedFastMatchesMaskedReference) {
  // Pairwise equivalence under the mask: kFast and kReferenceMasked are
  // two implementations of the same search and must agree byte for byte.
  ThreadPool::SetGlobalParallelism(8);
  std::string fast, reference_masked;
  {
    ScopedDecodeMode mode(pipeline_, core::DecodeMode::kFast);
    fast = testing::TraceDataset(*pipeline_, *trace_corpus_);
  }
  {
    ScopedDecodeMode mode(pipeline_, core::DecodeMode::kReferenceMasked);
    reference_masked = testing::TraceDataset(*pipeline_, *trace_corpus_);
  }
  ThreadPool::SetGlobalParallelism(ThreadPool::DefaultParallelism());
  EXPECT_EQ(fast, reference_masked)
      << "masked fast path diverges from the masked reference";
}

TEST_F(GoldenTraceTest, InstrumentationDoesNotPerturbNumerics) {
  // The observability layer must be purely observational: running the
  // exact same corpus with tracing enabled (spans recorded to an
  // in-memory sink) must produce byte-identical pipeline traces at both
  // ends of the thread sweep, matching the untraced bytes.
  ThreadPool::SetGlobalParallelism(1);
  const std::string untraced = testing::TraceDataset(*pipeline_, *trace_corpus_);

  auto sink = std::make_shared<trace::InMemorySink>();
  std::map<int, std::string> traced;
  for (int threads : {1, 8}) {
    ThreadPool::SetGlobalParallelism(threads);
    trace::SetSink(sink);
    traced[threads] = testing::TraceDataset(*pipeline_, *trace_corpus_);
    trace::SetSink(nullptr);
  }
  ThreadPool::SetGlobalParallelism(ThreadPool::DefaultParallelism());

  EXPECT_EQ(traced[1], untraced) << "tracing changed pipeline numerics";
  EXPECT_EQ(traced[8], untraced) << "tracing changed pipeline numerics";
  // And the instrumentation actually fired: the hot path emitted spans
  // for every pipeline stage while the sink was installed.
  std::map<std::string, int> by_name;
  for (const trace::SpanRecord& r : sink->Records()) ++by_name[r.name];
  for (const char* stage :
       {"pipeline.query", "pipeline.annotate", "pipeline.translate",
        "annotator.annotate", "annotator.classifier", "seq2seq.encode",
        "seq2seq.decode"}) {
    EXPECT_GT(by_name[stage], 0) << "no spans for " << stage;
  }
}

TEST_F(GoldenTraceTest, TraceCoversEveryStage) {
  // Self-check of the harness: a trace that silently dropped a stage
  // would make the golden comparison vacuous for that stage.
  ThreadPool::SetGlobalParallelism(1);
  const std::string trace = testing::TraceDataset(*pipeline_, *trace_corpus_);
  ThreadPool::SetGlobalParallelism(ThreadPool::DefaultParallelism());
  for (const char* marker :
       {"# nlidb pipeline trace v1", "case 0", "tokens: ", "probs: ",
        "qa: ", "sa: ", "sql: "}) {
    EXPECT_NE(trace.find(marker), std::string::npos)
        << "trace is missing stage marker '" << marker << "'";
  }
  // The fixed corpus must exercise recovery + execution on at least one
  // example (not every decode recovers, but a corpus where none does
  // would hide executor drift).
  EXPECT_NE(trace.find("exec: "), std::string::npos)
      << "no example in the trace corpus reached execution";
}

}  // namespace
}  // namespace nlidb
