// Failure-injection / fuzz tests: the parsing and recovery layers must
// reject arbitrary garbage with a clean Status — never crash — and the
// annotator must survive adversarial questions (empty, enormous, symbol
// soup, unicode-ish bytes).

#include <gtest/gtest.h>

#include "common/strings.h"
#include "core/annotation.h"
#include "core/annotator.h"
#include "core/trainer.h"
#include "data/generator.h"
#include "sql/csv.h"
#include "sql/executor.h"
#include "sql/parser.h"
#include "text/dependency.h"
#include "text/tokenizer.h"

namespace nlidb {
namespace {

sql::Schema FuzzSchema() {
  return sql::Schema({{"alpha", sql::DataType::kText},
                      {"beta", sql::DataType::kReal}});
}

std::string RandomText(Rng& rng, int max_len) {
  static const char* kPieces[] = {"SELECT", "WHERE", "AND",  "=",    ">",
                                  "<",      "alpha", "beta", "c1",   "v1",
                                  "g1",     "g99",   "\"x\"", "42",  "??",
                                  "(",      ")",     "'",    "\\",   "\t"};
  std::string out;
  const int n = rng.NextInt(0, max_len);
  for (int i = 0; i < n; ++i) {
    if (i > 0) out += ' ';
    out += kPieces[rng.NextUint64(std::size(kPieces))];
  }
  return out;
}

TEST(FuzzTest, SqlParserNeverCrashes) {
  Rng rng(101);
  int ok = 0;
  for (int trial = 0; trial < 3000; ++trial) {
    auto q = sql::ParseSql(RandomText(rng, 12), FuzzSchema());
    ok += q.ok();
    if (q.ok()) {
      // Whatever parsed must be executable against a matching table.
      sql::Table t("t", FuzzSchema());
      ASSERT_TRUE(t.AddRow({sql::Value::Text("x"), sql::Value::Real(1)}).ok());
      auto r = sql::Execute(*q, t);
      (void)r;
    }
  }
  // Some random strings do form valid queries.
  EXPECT_GT(ok, 0);
}

TEST(FuzzTest, RecoverSqlNeverCrashes) {
  Rng rng(102);
  core::Annotation annotation;
  core::MentionPair pair;
  pair.column = 0;
  pair.value_text = "x";
  annotation.pairs.push_back(pair);
  for (int trial = 0; trial < 3000; ++trial) {
    const auto tokens = SplitWhitespace(RandomText(rng, 10));
    auto q = core::RecoverSql(tokens, annotation, FuzzSchema());
    (void)q;
  }
}

TEST(FuzzTest, CsvParserNeverCrashes) {
  Rng rng(103);
  static const char* kCsvPieces[] = {"a,b", "\"", ",", "\n", "1", "x",
                                     "\"\"", ",,,", "a b c"};
  for (int trial = 0; trial < 2000; ++trial) {
    std::string csv;
    const int n = rng.NextInt(0, 8);
    for (int i = 0; i < n; ++i) {
      csv += kCsvPieces[rng.NextUint64(std::size(kCsvPieces))];
    }
    auto t = sql::ParseCsv(csv, "fuzz");
    (void)t;
  }
}

TEST(FuzzTest, TokenizerHandlesArbitraryBytes) {
  Rng rng(104);
  for (int trial = 0; trial < 500; ++trial) {
    std::string text;
    const int n = rng.NextInt(0, 64);
    for (int i = 0; i < n; ++i) {
      text += static_cast<char>(rng.NextUint64(256));
    }
    auto tokens = text::Tokenize(text);
    for (const auto& t : tokens) EXPECT_FALSE(t.empty());
    // The dependency parser must accept whatever the tokenizer emits.
    auto tree = text::DependencyTree::Parse(tokens);
    EXPECT_EQ(tree.size(), static_cast<int>(tokens.size()));
  }
}

TEST(FuzzTest, AnnotatorSurvivesAdversarialQuestions) {
  text::EmbeddingProvider provider;
  data::RegisterDomainClusters(provider);
  core::ModelConfig config = core::ModelConfig::Tiny();
  config.word_dim = provider.dim();
  core::Annotator annotator(config, provider, nullptr, nullptr);
  sql::Table table("t", FuzzSchema());
  ASSERT_TRUE(table.AddRow({sql::Value::Text("hello"), sql::Value::Real(3)}).ok());
  auto stats = sql::ComputeTableStatistics(table, provider);

  const char* nasty[] = {
      "",
      "?",
      "c1 v1 g1 c2 v2 g2",
      "alpha alpha alpha alpha alpha alpha alpha alpha alpha",
      "the the the the of of of",
      "hello hello hello 3 3 3",
  };
  for (const char* q : nasty) {
    auto tokens = text::Tokenize(q);
    if (tokens.empty()) continue;
    core::Annotation a = annotator.Annotate(tokens, table, stats);
    for (const auto& p : a.pairs) {
      EXPECT_GE(p.column, 0);
      EXPECT_LT(p.column, table.num_columns());
    }
  }
}

TEST(FuzzTest, GeneratedExamplesAlwaysRecoverable) {
  // Property: for any generated example, gold annotation -> s^a -> SQL
  // never fails across many seeds (complements annotation_test's
  // canonical-equality property with a pure no-crash sweep).
  for (uint64_t seed = 500; seed < 510; ++seed) {
    data::GeneratorConfig gc;
    gc.num_tables = 3;
    gc.questions_per_table = 4;
    gc.seed = seed;
    data::WikiSqlGenerator gen(gc, data::TrainDomains());
    data::Dataset ds = gen.Generate();
    for (const auto& ex : ds.examples) {
      auto gold = core::GoldAnnotation(ex);
      core::AnnotationOptions options;
      auto sa = core::BuildAnnotatedSql(ex.query, gold, ex.schema(), options);
      auto rec = core::RecoverSql(sa, gold, ex.schema());
      ASSERT_TRUE(rec.ok()) << ex.question << ": " << rec.status();
    }
  }
}

}  // namespace
}  // namespace nlidb
