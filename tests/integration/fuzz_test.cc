// Failure-injection / fuzz tests: the parsing and recovery layers must
// reject arbitrary garbage with a clean Status — never crash — and the
// annotator must survive adversarial questions (empty, enormous, symbol
// soup, unicode-ish bytes).
//
// Two layers: seeded random sweeps (nlidb::testing::RandomText /
// RandomBytes) for breadth, and committed seed-regression corpora under
// tests/corpus/ replayed verbatim so inputs that once broke a layer stay
// fixed forever. Add a line to the matching corpus file whenever a fuzz
// failure is minimized.

#include <gtest/gtest.h>

#include "common/strings.h"
#include "core/annotation.h"
#include "core/annotator.h"
#include "core/trainer.h"
#include "data/generator.h"
#include "sql/csv.h"
#include "sql/executor.h"
#include "sql/parser.h"
#include "testing/random_text.h"
#include "text/dependency.h"
#include "text/tokenizer.h"

namespace nlidb {
namespace {

#if defined(NLIDB_SANITIZER_BUILD)
constexpr int kSweepScale = 10;  // sanitizer builds: same paths, fewer reps
#else
constexpr int kSweepScale = 1;
#endif

sql::Schema FuzzSchema() {
  return sql::Schema({{"alpha", sql::DataType::kText},
                      {"beta", sql::DataType::kReal}});
}

void ParseAndMaybeExecute(const std::string& text) {
  auto q = sql::ParseSql(text, FuzzSchema());
  if (q.ok()) {
    // Whatever parsed must be executable against a matching table.
    sql::Table t("t", FuzzSchema());
    ASSERT_TRUE(t.AddRow({sql::Value::Text("x"), sql::Value::Real(1)}).ok());
    auto r = sql::Execute(*q, t);
    (void)r;
  }
}

TEST(FuzzTest, SqlParserNeverCrashes) {
  Rng rng(101);
  int ok = 0;
  // Not scaled down under sanitizers: parsing is cheap, and the ok > 0
  // check below needs the full sweep before a random string happens to
  // form a valid query.
  for (int trial = 0; trial < 3000; ++trial) {
    auto q = sql::ParseSql(testing::RandomText(rng, 12), FuzzSchema());
    ok += q.ok();
    if (q.ok()) {
      sql::Table t("t", FuzzSchema());
      ASSERT_TRUE(t.AddRow({sql::Value::Text("x"), sql::Value::Real(1)}).ok());
      auto r = sql::Execute(*q, t);
      (void)r;
    }
  }
  // Some random strings do form valid queries.
  EXPECT_GT(ok, 0);
}

TEST(FuzzTest, SqlParserCorpusRegression) {
  for (const std::string& text : testing::LoadCorpus("sql_parser.txt")) {
    SCOPED_TRACE(text);
    ParseAndMaybeExecute(text);
  }
}

TEST(FuzzTest, RecoverSqlNeverCrashes) {
  Rng rng(102);
  core::Annotation annotation;
  core::MentionPair pair;
  pair.column = 0;
  pair.value_text = "x";
  annotation.pairs.push_back(pair);
  for (int trial = 0; trial < 3000 / kSweepScale; ++trial) {
    const auto tokens = SplitWhitespace(testing::RandomText(rng, 10));
    auto q = core::RecoverSql(tokens, annotation, FuzzSchema());
    (void)q;
  }
}

TEST(FuzzTest, RecoverSqlCorpusRegression) {
  core::Annotation annotation;
  core::MentionPair pair;
  pair.column = 0;
  pair.value_text = "x";
  annotation.pairs.push_back(pair);
  for (const std::string& text : testing::LoadCorpus("recover_sql.txt")) {
    SCOPED_TRACE(text);
    auto q = core::RecoverSql(SplitWhitespace(text), annotation, FuzzSchema());
    (void)q;
  }
}

TEST(FuzzTest, CsvParserNeverCrashes) {
  Rng rng(103);
  static const char* kCsvPieces[] = {"a,b", "\"", ",", "\n", "1", "x",
                                     "\"\"", ",,,", "a b c"};
  for (int trial = 0; trial < 2000 / kSweepScale; ++trial) {
    std::string csv;
    const int n = rng.NextInt(0, 8);
    for (int i = 0; i < n; ++i) {
      csv += kCsvPieces[rng.NextUint64(std::size(kCsvPieces))];
    }
    auto t = sql::ParseCsv(csv, "fuzz");
    (void)t;
  }
}

TEST(FuzzTest, CsvParserCorpusRegression) {
  for (const std::string& text : testing::LoadCorpus("csv.txt")) {
    SCOPED_TRACE(text);
    auto t = sql::ParseCsv(text, "fuzz");
    (void)t;
  }
}

void TokenizeAndParseTree(const std::string& text) {
  auto tokens = text::Tokenize(text);
  for (const auto& t : tokens) EXPECT_FALSE(t.empty());
  // The dependency parser must accept whatever the tokenizer emits.
  auto tree = text::DependencyTree::Parse(tokens);
  EXPECT_EQ(tree.size(), static_cast<int>(tokens.size()));
}

TEST(FuzzTest, TokenizerHandlesArbitraryBytes) {
  Rng rng(104);
  for (int trial = 0; trial < 500 / kSweepScale; ++trial) {
    TokenizeAndParseTree(testing::RandomBytes(rng, 64));
  }
}

TEST(FuzzTest, TokenizerCorpusRegression) {
  for (const std::string& text : testing::LoadCorpus("tokenizer_bytes.txt")) {
    SCOPED_TRACE(::testing::PrintToString(text));
    TokenizeAndParseTree(text);
  }
}

class AnnotatorFuzz : public ::testing::Test {
 protected:
  AnnotatorFuzz()
      : config_(core::ModelConfig::Tiny()),
        table_("t", FuzzSchema()) {
    data::RegisterDomainClusters(provider_);
    config_.word_dim = provider_.dim();
    EXPECT_TRUE(
        table_.AddRow({sql::Value::Text("hello"), sql::Value::Real(3)}).ok());
    stats_ = sql::ComputeTableStatistics(table_, provider_);
  }

  void Annotate(const std::string& question) {
    core::Annotator annotator(config_, provider_, nullptr, nullptr);
    auto tokens = text::Tokenize(question);
    if (tokens.empty()) return;
    StatusOr<core::Annotation> annotated =
        annotator.Annotate(tokens, table_, stats_);
    ASSERT_TRUE(annotated.ok()) << annotated.status();
    const core::Annotation& a = *annotated;
    for (const auto& p : a.pairs) {
      EXPECT_GE(p.column, 0);
      EXPECT_LT(p.column, table_.num_columns());
    }
  }

  text::EmbeddingProvider provider_;
  core::ModelConfig config_;
  sql::Table table_;
  std::vector<sql::ColumnStatistics> stats_;
};

TEST_F(AnnotatorFuzz, SurvivesAdversarialQuestions) {
  const char* nasty[] = {
      "",
      "?",
      "c1 v1 g1 c2 v2 g2",
      "alpha alpha alpha alpha alpha alpha alpha alpha alpha",
      "the the the the of of of",
      "hello hello hello 3 3 3",
  };
  for (const char* q : nasty) Annotate(q);
}

TEST_F(AnnotatorFuzz, CorpusRegression) {
  for (const std::string& q : testing::LoadCorpus("annotator_questions.txt")) {
    SCOPED_TRACE(q);
    Annotate(q);
  }
}

TEST(FuzzTest, GeneratedExamplesAlwaysRecoverable) {
  // Property: for any generated example, gold annotation -> s^a -> SQL
  // never fails across many seeds (complements annotation_test's
  // canonical-equality property with a pure no-crash sweep).
  for (uint64_t seed = 500; seed < 510; ++seed) {
    data::GeneratorConfig gc;
    gc.num_tables = 3;
    gc.questions_per_table = 4;
    gc.seed = seed;
    data::WikiSqlGenerator gen(gc, data::TrainDomains());
    data::Dataset ds = gen.Generate();
    for (const auto& ex : ds.examples) {
      auto gold = core::GoldAnnotation(ex);
      core::AnnotationOptions options;
      auto sa = core::BuildAnnotatedSql(ex.query, gold, ex.schema(), options);
      auto rec = core::RecoverSql(sa, gold, ex.schema());
      ASSERT_TRUE(rec.ok()) << ex.question << ": " << rec.status();
    }
  }
}

}  // namespace
}  // namespace nlidb
