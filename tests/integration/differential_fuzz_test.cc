// Property-based differential fuzzing (seeded, deterministic): random
// schemas/tables/questions from data/generator drive cross-implementation
// invariants of the concurrent inference substrate:
//
//   1. tiled GEMM kernels (both ISA tiers, serial and row-partitioned)
//      are bitwise equal to the *Reference loops;
//   2. PredictBatch is bitwise equal to per-column Predict;
//   3. parallel Annotate equals serial Annotate structurally;
//   4. executor results are stable under row shuffling.
//
// Every case derives from a fixed seed, so a failure reproduces exactly.
// Release runs >= 200 cases; sanitizer builds scale the counts down
// (they run the same paths 5-20x slower).

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "core/annotator.h"
#include "core/seq2seq.h"
#include "data/generator.h"
#include "sql/executor.h"
#include "sql/statistics.h"
#include "tensor/gemm_kernels.h"
#include "tensor/tensor.h"
#include "testing/trace.h"

namespace nlidb {
namespace {

#if defined(NLIDB_SANITIZER_BUILD)
constexpr int kScale = 4;  // divide iteration counts under sanitizers
#else
constexpr int kScale = 1;
#endif

bool BitwiseEqual(const Tensor& a, const Tensor& b) {
  return a.shape() == b.shape() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0;
}

Tensor RandomTensor(Rng& rng, int rows, int cols, float zero_probability) {
  Tensor t({rows, cols});
  float* p = t.data();
  for (size_t i = 0; i < t.size(); ++i) {
    p[i] = rng.NextBool(zero_probability) ? 0.0f : rng.NextGaussian();
  }
  return t;
}

class DifferentialFuzzTest : public ::testing::Test {
 protected:
  void TearDown() override {
    gemm::SetTier(gemm::Tier::kAuto);
    ThreadPool::SetGlobalParallelism(ThreadPool::DefaultParallelism());
  }
};

TEST_F(DifferentialFuzzTest, TiledGemmMatchesReferenceBitwise) {
  Rng rng(2026);
  int cases = 0;
  const int shapes = 40 / kScale;
  for (int trial = 0; trial < shapes; ++trial) {
    // Mostly small odd shapes (tile-remainder coverage); every 10th trial
    // is large enough to cross the kGemmParallelFlops row-partition
    // threshold so the pooled path is exercised too.
    int m, k, n;
    if (trial % 10 == 9) {
      m = k = n = rng.NextInt(160, 176);
      ThreadPool::SetGlobalParallelism(8);
    } else {
      m = rng.NextInt(1, 40);
      k = rng.NextInt(1, 40);
      n = rng.NextInt(1, 40);
      ThreadPool::SetGlobalParallelism(rng.NextBool() ? 1 : 8);
    }
    // The sparse probe in MatMulTransposeAAccumulate flips implementation
    // at >= 50% zeros; cover both sides.
    const float zero_p = rng.NextBool() ? 0.0f : 0.7f;
    const Tensor a = RandomTensor(rng, m, k, zero_p);
    const Tensor at = a.Transposed();
    const Tensor b = RandomTensor(rng, k, n, 0.0f);
    const Tensor bt = b.Transposed();
    const Tensor seed_out = RandomTensor(rng, m, n, 0.0f);

    Tensor want_ab = seed_out, want_atb = seed_out, want_abt = seed_out;
    MatMulAccumulateReference(a, b, want_ab);
    MatMulTransposeAAccumulateReference(at, b, want_atb);
    MatMulTransposeBAccumulateReference(a, bt, want_abt);

    for (gemm::Tier tier : {gemm::Tier::kBase, gemm::Tier::kAuto}) {
      gemm::SetTier(tier);
      Tensor got_ab = seed_out, got_atb = seed_out, got_abt = seed_out;
      MatMulAccumulate(a, b, got_ab);
      MatMulTransposeAAccumulate(at, b, got_atb);
      MatMulTransposeBAccumulate(a, bt, got_abt);
      EXPECT_TRUE(BitwiseEqual(got_ab, want_ab))
          << "AB " << m << "x" << k << "x" << n << " trial " << trial;
      EXPECT_TRUE(BitwiseEqual(got_atb, want_atb))
          << "AtB " << m << "x" << k << "x" << n << " trial " << trial;
      EXPECT_TRUE(BitwiseEqual(got_abt, want_abt))
          << "ABt " << m << "x" << k << "x" << n << " trial " << trial;
      cases += 3;
    }
  }
  RecordProperty("cases", cases);
#if !defined(NLIDB_SANITIZER_BUILD)
  EXPECT_GE(cases, 200);
#endif
}

class ClassifierFuzz : public DifferentialFuzzTest {
 protected:
  static void SetUpTestSuite() {
    provider_ = new text::EmbeddingProvider();
    data::RegisterDomainClusters(*provider_);
    config_ = new core::ModelConfig(core::ModelConfig::Tiny());
    config_->word_dim = provider_->dim();
    classifier_ = new core::ColumnMentionClassifier(*config_, *provider_);

    data::GeneratorConfig gc;
    gc.num_tables = 8;
    gc.questions_per_table = 4;
    gc.seed = 99;
    data::WikiSqlGenerator gen(gc, data::TrainDomains());
    corpus_ = new data::Dataset(gen.Generate());
    for (const auto& ex : corpus_->examples) {
      classifier_->AddVocabulary(ex.tokens);
    }
  }

  static void TearDownTestSuite() {
    delete corpus_;
    delete classifier_;
    delete config_;
    delete provider_;
  }

  static text::EmbeddingProvider* provider_;
  static core::ModelConfig* config_;
  static core::ColumnMentionClassifier* classifier_;
  static data::Dataset* corpus_;
};

text::EmbeddingProvider* ClassifierFuzz::provider_ = nullptr;
core::ModelConfig* ClassifierFuzz::config_ = nullptr;
core::ColumnMentionClassifier* ClassifierFuzz::classifier_ = nullptr;
data::Dataset* ClassifierFuzz::corpus_ = nullptr;

TEST_F(ClassifierFuzz, PredictBatchMatchesPredictBitwise) {
  const int limit =
      std::min<int>(16 / kScale + 4, corpus_->examples.size());
  int cases = 0;
  for (int i = 0; i < limit; ++i) {
    const data::Example& ex = corpus_->examples[i];
    const sql::Schema& schema = ex.schema();
    std::vector<std::vector<std::string>> columns;
    for (int c = 0; c < schema.num_columns(); ++c) {
      columns.push_back(schema.column(c).DisplayTokens());
    }
    const std::vector<float> batch =
        classifier_->PredictBatch(ex.tokens, columns).value();
    ASSERT_EQ(batch.size(), columns.size());
    for (size_t c = 0; c < columns.size(); ++c) {
      const float single =
          classifier_->Predict(ex.tokens, columns[c]).value();
      EXPECT_EQ(testing::FloatBits(batch[c]), testing::FloatBits(single))
          << "example " << i << " column " << c << " (" << ex.question << ")";
      ++cases;
    }
  }
  RecordProperty("cases", cases);
  EXPECT_GT(cases, 0);
}

TEST_F(ClassifierFuzz, ParallelAnnotateMatchesSerialAnnotate) {
  core::Annotator annotator(*config_, *provider_, classifier_, nullptr);
  const int limit =
      std::min<int>(16 / kScale + 4, corpus_->examples.size());
  int cases = 0;
  for (int i = 0; i < limit; ++i) {
    const data::Example& ex = corpus_->examples[i];
    const auto stats = sql::ComputeTableStatistics(*ex.table, *provider_);

    ThreadPool::SetGlobalParallelism(1);
    const StatusOr<core::Annotation> serial =
        annotator.Annotate(ex.tokens, *ex.table, stats);
    ThreadPool::SetGlobalParallelism(8);
    const StatusOr<core::Annotation> parallel =
        annotator.Annotate(ex.tokens, *ex.table, stats);

    ASSERT_TRUE(serial.ok()) << serial.status();
    ASSERT_TRUE(parallel.ok()) << parallel.status();
    EXPECT_EQ(testing::AnnotationToString(*serial),
              testing::AnnotationToString(*parallel))
        << "question: " << ex.question;
    ++cases;
  }
  RecordProperty("cases", cases);
  EXPECT_GT(cases, 0);
}

TEST_F(DifferentialFuzzTest, DecoderFastPathMatchesReferenceBitwise) {
  // Differential oracle for the graph-free decode fast path: over seeded
  // random (untrained — maximally tie-heavy) models, kFastUnmasked must
  // reproduce kReference and kFast must reproduce kReferenceMasked, byte
  // for byte: same tokens, same score bits, same statuses. Sweeps beam
  // width, max decode length, copy mechanism, grammar-mask eligibility
  // (config flags and SELECT-less vocabularies), GEMM tiers and thread
  // counts.
  const std::vector<std::string> structural = {
      "SELECT", "WHERE", "AND", "MAX", "MIN", "COUNT",
      "SUM",    "AVG",   "=",   ">",   "<"};
  const std::vector<std::string> symbols = {"c1", "c2", "c3", "v1",
                                            "v2", "g1", "g2"};
  const std::vector<std::string> words = {
      "what", "is",  "the",   "revenue", "industry", "ceo",  "1996",
      "864",  "ada", "grace", "highest", "name",     "city", "year"};
  Rng rng(60218);
  int cases = 0;
  const int models = 6 / kScale + 2;
  for (int mi = 0; mi < models; ++mi) {
    core::ModelConfig config = core::ModelConfig::Tiny();
    config.word_dim = 24;
    config.seq2seq_hidden = rng.NextBool() ? 16 : 24;
    config.max_decode_length = rng.NextInt(6, 14);
    config.seed = 1000 + mi * 17;  // a fresh random model per iteration
    config.use_copy_mechanism = (mi % 3) != 2;
    config.column_name_appending = (mi % 4) != 3;  // mask-ineligible leg
    core::Seq2SeqTranslator t(config);
    std::vector<std::string> vocab_tokens;
    if (mi % 5 != 4) {  // every 5th model: no SELECT -> grammar unusable
      vocab_tokens.insert(vocab_tokens.end(), structural.begin(),
                          structural.end());
    }
    vocab_tokens.insert(vocab_tokens.end(), symbols.begin(), symbols.end());
    vocab_tokens.insert(vocab_tokens.end(), words.begin(), words.end());
    t.AddVocabulary(vocab_tokens);

    for (int si = 0; si < 3; ++si) {
      std::vector<std::string> source;
      const int len = rng.NextInt(2, 9);
      for (int i = 0; i < len; ++i) {
        source.push_back(rng.NextBool(0.1f)
                             ? "oov" + std::to_string(rng.NextInt(0, 5))
                             : rng.Choice(vocab_tokens));
      }
      gemm::SetTier(rng.NextBool() ? gemm::Tier::kBase : gemm::Tier::kAuto);
      ThreadPool::SetGlobalParallelism(rng.NextBool() ? 1 : 8);

      const std::pair<core::DecodeMode, core::DecodeMode> pairings[] = {
          {core::DecodeMode::kReference, core::DecodeMode::kFastUnmasked},
          {core::DecodeMode::kReferenceMasked, core::DecodeMode::kFast}};
      for (int width : {1, 2, 4}) {
        for (const auto& [ref_mode, fast_mode] : pairings) {
          t.set_decode_mode(ref_mode);
          const auto ref = t.DecodeWithBeamWidth(source, width);
          t.set_decode_mode(fast_mode);
          const auto fast = t.DecodeWithBeamWidth(source, width);
          const std::string where = "model " + std::to_string(mi) +
                                    " source " + std::to_string(si) +
                                    " width " + std::to_string(width) +
                                    (ref_mode == core::DecodeMode::kReference
                                         ? " (unmasked pairing)"
                                         : " (masked pairing)");
          ASSERT_EQ(ref.ok(), fast.ok()) << where;
          if (ref.ok()) {
            EXPECT_EQ(ref.value().tokens, fast.value().tokens) << where;
            EXPECT_EQ(testing::FloatBits(ref.value().score),
                      testing::FloatBits(fast.value().score))
                << where;
            EXPECT_EQ(ref.value().used_greedy_fallback,
                      fast.value().used_greedy_fallback)
                << where;
          } else {
            EXPECT_EQ(ref.status().code(), fast.status().code()) << where;
          }
          ++cases;
        }
      }
    }
  }
  RecordProperty("cases", cases);
#if !defined(NLIDB_SANITIZER_BUILD)
  EXPECT_GE(cases, 100);
#endif
}

TEST_F(DifferentialFuzzTest, ExecutorStableUnderRowShuffling) {
  data::GeneratorConfig gc;
  gc.num_tables = 10;
  gc.questions_per_table = 6;
  gc.seed = 777;
  data::WikiSqlGenerator gen(gc, data::TrainDomains());
  const data::Dataset ds = gen.Generate();

  Rng rng(31337);
  int cases = 0;
  const int limit =
      std::min<int>(static_cast<int>(ds.examples.size()), 60 / kScale + 10);
  for (int i = 0; i < limit; ++i) {
    const data::Example& ex = ds.examples[i];
    const sql::Table& table = *ex.table;

    std::vector<int> order(table.num_rows());
    for (int r = 0; r < table.num_rows(); ++r) order[r] = r;
    rng.Shuffle(order);
    sql::Table shuffled(table.name(), table.schema());
    for (int r : order) {
      ASSERT_TRUE(shuffled.AddRow(table.Row(r)).ok());
    }

    const auto base = sql::Execute(ex.query, table);
    const auto perm = sql::Execute(ex.query, shuffled);
    ASSERT_EQ(base.ok(), perm.ok()) << ex.question;
    if (!base.ok()) continue;
    ++cases;

    if (ex.query.agg == sql::Aggregate::kSum ||
        ex.query.agg == sql::Aggregate::kAvg) {
      // Float accumulation order changes under row permutation; demand
      // agreement to rounding, not bitwise.
      ASSERT_EQ(base->size(), perm->size()) << ex.question;
      for (size_t v = 0; v < base->size(); ++v) {
        ASSERT_TRUE((*base)[v].is_real() && (*perm)[v].is_real());
        EXPECT_NEAR((*base)[v].number(), (*perm)[v].number(),
                    1e-9 * (1.0 + std::fabs((*base)[v].number())))
            << ex.question;
      }
    } else {
      // Multiset equality — the Acc_ex comparison itself.
      EXPECT_TRUE(sql::ResultsEqual(*base, *perm)) << ex.question;
    }
  }
  RecordProperty("cases", cases);
  EXPECT_GT(cases, 0);
}

}  // namespace
}  // namespace nlidb
