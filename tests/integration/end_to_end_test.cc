// End-to-end integration: train the full pipeline on a small corpus and
// verify it beats trivial baselines on unseen tables, transfers
// zero-shot, and round-trips through checkpointing.

#include <gtest/gtest.h>

#include "core/pipeline.h"
#include "data/overnight.h"
#include "eval/metrics.h"
#include "nn/checkpoint.h"

namespace nlidb {
namespace {

// Old Translate* contract expressed through the structured Query API:
// recovered SQL on success, the first failing status otherwise.
StatusOr<sql::SelectQuery> TranslateExample(const core::NlidbPipeline& pipeline,
                                            const sql::Table& table,
                                            const std::vector<std::string>& tokens,
                                            const std::string& question = "") {
  core::QueryRequest request;
  request.schema_ref = core::SchemaRef::Table(&table);
  request.question = question;
  request.tokens = tokens;
  request.execute = false;
  request.collect_timings = false;
  StatusOr<core::QueryResult> result = pipeline.Query(request);
  if (!result.ok()) return result.status();
  core::QueryResult out = std::move(result).value();
  if (!out.recovery_status.ok()) return out.recovery_status;
  return std::move(*out.query);
}

class EndToEndTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    provider_ = new std::shared_ptr<text::EmbeddingProvider>(
        std::make_shared<text::EmbeddingProvider>());
    data::RegisterDomainClusters(**provider_);
    data::GeneratorConfig gc;
    gc.num_tables = 24;
    gc.questions_per_table = 6;
    gc.seed = 77;
    splits_ = new data::Splits(data::GenerateWikiSqlSplits(gc));
    core::ModelConfig config = core::ModelConfig::Tiny();
    config.word_dim = (*provider_)->dim();
    config.classifier_epochs = 3;
    config.seq2seq_epochs = 5;
    pipeline_ = new core::NlidbPipeline(config, *provider_);
    report_ = new core::TrainReport(pipeline_->Train(splits_->train));
  }

  static void TearDownTestSuite() {
    delete report_;
    delete pipeline_;
    delete splits_;
    delete provider_;
  }

  static std::shared_ptr<text::EmbeddingProvider>* provider_;
  static data::Splits* splits_;
  static core::NlidbPipeline* pipeline_;
  static core::TrainReport* report_;
};

std::shared_ptr<text::EmbeddingProvider>* EndToEndTest::provider_ = nullptr;
data::Splits* EndToEndTest::splits_ = nullptr;
core::NlidbPipeline* EndToEndTest::pipeline_ = nullptr;
core::TrainReport* EndToEndTest::report_ = nullptr;

TEST_F(EndToEndTest, TrainingConverges) {
  EXPECT_LT(report_->classifier_loss, 0.4f);
  EXPECT_LT(report_->value_loss, 0.5f);
  EXPECT_LT(report_->seq2seq_loss, 1.0f);
  EXPECT_GT(report_->classifier_pairs, 0);
  EXPECT_GT(report_->seq2seq_pairs, 0);
}

TEST_F(EndToEndTest, BeatsChanceOnUnseenTables) {
  eval::AccuracyReport acc = eval::EvaluatePipeline(*pipeline_, splits_->test);
  // Tiny config on a tiny corpus: demand meaningful signal, not SOTA.
  EXPECT_GT(acc.acc_qm, 0.15f) << acc.ToString();
  EXPECT_GT(acc.acc_ex, 0.25f) << acc.ToString();
  EXPECT_GE(acc.acc_ex, acc.acc_qm) << "execution cannot lag query match";
}

TEST_F(EndToEndTest, RecoveryTracksPreRecoveryAccuracy) {
  // Paper Table III: recovery slightly improves Acc_qm. With noisy
  // predicted annotations the pre-recovery metric is lenient (it cannot
  // see inside a v_i symbol), so we assert recovery stays within a small
  // band of it rather than strictly above.
  eval::RecoveryReport rec =
      eval::EvaluateRecovery(*pipeline_, splits_->dev);
  EXPECT_GE(rec.acc_after + 0.15f, rec.acc_before);
  EXPECT_GE(rec.acc_before, 0.0f);
  EXPECT_LE(rec.acc_after, 1.0f);
}

TEST_F(EndToEndTest, ZeroShotTransferProducesQueries) {
  data::GeneratorConfig gc;
  gc.num_tables = 3;
  gc.questions_per_table = 4;
  gc.seed = 9;
  data::OvernightCorpus overnight = data::GenerateOvernight(gc);
  int attempted = 0, succeeded = 0;
  for (const auto& sub : overnight.subdomains) {
    for (const auto& ex : sub.test.examples) {
      ++attempted;
      auto pred = TranslateExample(*pipeline_, *ex.table, ex.tokens);
      succeeded += pred.ok();
    }
  }
  // Zero-shot: the model has never seen these domains; it must still
  // produce recoverable SQL for a large majority of questions.
  EXPECT_GT(static_cast<float>(succeeded) / attempted, 0.7f);
}

TEST_F(EndToEndTest, TranslateFromRawStringWorks) {
  const data::Example& ex = splits_->test.examples.front();
  auto pred = TranslateExample(*pipeline_, *ex.table, {}, ex.question);
  ASSERT_TRUE(pred.ok()) << pred.status();
  EXPECT_GE(pred->select_column, 0);
}

TEST_F(EndToEndTest, CheckpointRoundTripPreservesPredictions) {
  const std::string path =
      std::string(::testing::TempDir()) + "/pipeline_ckpt.bin";
  auto params = pipeline_->MutableForTraining().translator->Parameters();
  ASSERT_TRUE(nn::Checkpoint::Save(path, params).ok());
  const data::Example& ex = splits_->test.examples.front();
  auto before = TranslateExample(*pipeline_, *ex.table, ex.tokens);
  ASSERT_TRUE(nn::Checkpoint::Load(path, params).ok());
  auto after = TranslateExample(*pipeline_, *ex.table, ex.tokens);
  ASSERT_EQ(before.ok(), after.ok());
  if (before.ok()) {
    EXPECT_TRUE(*before == *after);
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace nlidb
