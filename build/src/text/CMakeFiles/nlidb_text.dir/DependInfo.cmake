
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/text/dependency.cc" "src/text/CMakeFiles/nlidb_text.dir/dependency.cc.o" "gcc" "src/text/CMakeFiles/nlidb_text.dir/dependency.cc.o.d"
  "/root/repo/src/text/distance.cc" "src/text/CMakeFiles/nlidb_text.dir/distance.cc.o" "gcc" "src/text/CMakeFiles/nlidb_text.dir/distance.cc.o.d"
  "/root/repo/src/text/embedding_provider.cc" "src/text/CMakeFiles/nlidb_text.dir/embedding_provider.cc.o" "gcc" "src/text/CMakeFiles/nlidb_text.dir/embedding_provider.cc.o.d"
  "/root/repo/src/text/lexicon.cc" "src/text/CMakeFiles/nlidb_text.dir/lexicon.cc.o" "gcc" "src/text/CMakeFiles/nlidb_text.dir/lexicon.cc.o.d"
  "/root/repo/src/text/stopwords.cc" "src/text/CMakeFiles/nlidb_text.dir/stopwords.cc.o" "gcc" "src/text/CMakeFiles/nlidb_text.dir/stopwords.cc.o.d"
  "/root/repo/src/text/tokenizer.cc" "src/text/CMakeFiles/nlidb_text.dir/tokenizer.cc.o" "gcc" "src/text/CMakeFiles/nlidb_text.dir/tokenizer.cc.o.d"
  "/root/repo/src/text/vocab.cc" "src/text/CMakeFiles/nlidb_text.dir/vocab.cc.o" "gcc" "src/text/CMakeFiles/nlidb_text.dir/vocab.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/nlidb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
