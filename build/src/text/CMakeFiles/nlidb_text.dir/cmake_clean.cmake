file(REMOVE_RECURSE
  "CMakeFiles/nlidb_text.dir/dependency.cc.o"
  "CMakeFiles/nlidb_text.dir/dependency.cc.o.d"
  "CMakeFiles/nlidb_text.dir/distance.cc.o"
  "CMakeFiles/nlidb_text.dir/distance.cc.o.d"
  "CMakeFiles/nlidb_text.dir/embedding_provider.cc.o"
  "CMakeFiles/nlidb_text.dir/embedding_provider.cc.o.d"
  "CMakeFiles/nlidb_text.dir/lexicon.cc.o"
  "CMakeFiles/nlidb_text.dir/lexicon.cc.o.d"
  "CMakeFiles/nlidb_text.dir/stopwords.cc.o"
  "CMakeFiles/nlidb_text.dir/stopwords.cc.o.d"
  "CMakeFiles/nlidb_text.dir/tokenizer.cc.o"
  "CMakeFiles/nlidb_text.dir/tokenizer.cc.o.d"
  "CMakeFiles/nlidb_text.dir/vocab.cc.o"
  "CMakeFiles/nlidb_text.dir/vocab.cc.o.d"
  "libnlidb_text.a"
  "libnlidb_text.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nlidb_text.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
