# Empty dependencies file for nlidb_text.
# This may be replaced when dependencies are built.
