file(REMOVE_RECURSE
  "libnlidb_text.a"
)
