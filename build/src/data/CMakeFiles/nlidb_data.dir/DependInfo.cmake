
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/domains.cc" "src/data/CMakeFiles/nlidb_data.dir/domains.cc.o" "gcc" "src/data/CMakeFiles/nlidb_data.dir/domains.cc.o.d"
  "/root/repo/src/data/generator.cc" "src/data/CMakeFiles/nlidb_data.dir/generator.cc.o" "gcc" "src/data/CMakeFiles/nlidb_data.dir/generator.cc.o.d"
  "/root/repo/src/data/overnight.cc" "src/data/CMakeFiles/nlidb_data.dir/overnight.cc.o" "gcc" "src/data/CMakeFiles/nlidb_data.dir/overnight.cc.o.d"
  "/root/repo/src/data/paraphrase_bench.cc" "src/data/CMakeFiles/nlidb_data.dir/paraphrase_bench.cc.o" "gcc" "src/data/CMakeFiles/nlidb_data.dir/paraphrase_bench.cc.o.d"
  "/root/repo/src/data/serialization.cc" "src/data/CMakeFiles/nlidb_data.dir/serialization.cc.o" "gcc" "src/data/CMakeFiles/nlidb_data.dir/serialization.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sql/CMakeFiles/nlidb_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/nlidb_text.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/nlidb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
