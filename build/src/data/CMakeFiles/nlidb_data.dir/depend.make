# Empty dependencies file for nlidb_data.
# This may be replaced when dependencies are built.
