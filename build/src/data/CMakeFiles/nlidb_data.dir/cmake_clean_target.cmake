file(REMOVE_RECURSE
  "libnlidb_data.a"
)
