file(REMOVE_RECURSE
  "CMakeFiles/nlidb_data.dir/domains.cc.o"
  "CMakeFiles/nlidb_data.dir/domains.cc.o.d"
  "CMakeFiles/nlidb_data.dir/generator.cc.o"
  "CMakeFiles/nlidb_data.dir/generator.cc.o.d"
  "CMakeFiles/nlidb_data.dir/overnight.cc.o"
  "CMakeFiles/nlidb_data.dir/overnight.cc.o.d"
  "CMakeFiles/nlidb_data.dir/paraphrase_bench.cc.o"
  "CMakeFiles/nlidb_data.dir/paraphrase_bench.cc.o.d"
  "CMakeFiles/nlidb_data.dir/serialization.cc.o"
  "CMakeFiles/nlidb_data.dir/serialization.cc.o.d"
  "libnlidb_data.a"
  "libnlidb_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nlidb_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
