file(REMOVE_RECURSE
  "libnlidb_tensor.a"
)
