file(REMOVE_RECURSE
  "CMakeFiles/nlidb_tensor.dir/autograd.cc.o"
  "CMakeFiles/nlidb_tensor.dir/autograd.cc.o.d"
  "CMakeFiles/nlidb_tensor.dir/ops.cc.o"
  "CMakeFiles/nlidb_tensor.dir/ops.cc.o.d"
  "CMakeFiles/nlidb_tensor.dir/tensor.cc.o"
  "CMakeFiles/nlidb_tensor.dir/tensor.cc.o.d"
  "libnlidb_tensor.a"
  "libnlidb_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nlidb_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
