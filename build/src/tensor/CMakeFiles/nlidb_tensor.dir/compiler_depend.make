# Empty compiler generated dependencies file for nlidb_tensor.
# This may be replaced when dependencies are built.
