file(REMOVE_RECURSE
  "CMakeFiles/nlidb_nn.dir/attention.cc.o"
  "CMakeFiles/nlidb_nn.dir/attention.cc.o.d"
  "CMakeFiles/nlidb_nn.dir/char_cnn.cc.o"
  "CMakeFiles/nlidb_nn.dir/char_cnn.cc.o.d"
  "CMakeFiles/nlidb_nn.dir/checkpoint.cc.o"
  "CMakeFiles/nlidb_nn.dir/checkpoint.cc.o.d"
  "CMakeFiles/nlidb_nn.dir/layers.cc.o"
  "CMakeFiles/nlidb_nn.dir/layers.cc.o.d"
  "CMakeFiles/nlidb_nn.dir/optimizer.cc.o"
  "CMakeFiles/nlidb_nn.dir/optimizer.cc.o.d"
  "CMakeFiles/nlidb_nn.dir/rnn.cc.o"
  "CMakeFiles/nlidb_nn.dir/rnn.cc.o.d"
  "libnlidb_nn.a"
  "libnlidb_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nlidb_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
