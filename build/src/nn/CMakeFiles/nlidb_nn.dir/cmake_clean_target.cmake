file(REMOVE_RECURSE
  "libnlidb_nn.a"
)
