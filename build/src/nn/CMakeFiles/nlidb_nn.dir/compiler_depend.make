# Empty compiler generated dependencies file for nlidb_nn.
# This may be replaced when dependencies are built.
