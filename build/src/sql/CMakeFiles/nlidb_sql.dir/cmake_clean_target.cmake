file(REMOVE_RECURSE
  "libnlidb_sql.a"
)
