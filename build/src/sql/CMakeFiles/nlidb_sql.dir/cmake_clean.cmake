file(REMOVE_RECURSE
  "CMakeFiles/nlidb_sql.dir/csv.cc.o"
  "CMakeFiles/nlidb_sql.dir/csv.cc.o.d"
  "CMakeFiles/nlidb_sql.dir/executor.cc.o"
  "CMakeFiles/nlidb_sql.dir/executor.cc.o.d"
  "CMakeFiles/nlidb_sql.dir/parser.cc.o"
  "CMakeFiles/nlidb_sql.dir/parser.cc.o.d"
  "CMakeFiles/nlidb_sql.dir/query.cc.o"
  "CMakeFiles/nlidb_sql.dir/query.cc.o.d"
  "CMakeFiles/nlidb_sql.dir/schema.cc.o"
  "CMakeFiles/nlidb_sql.dir/schema.cc.o.d"
  "CMakeFiles/nlidb_sql.dir/statistics.cc.o"
  "CMakeFiles/nlidb_sql.dir/statistics.cc.o.d"
  "CMakeFiles/nlidb_sql.dir/table.cc.o"
  "CMakeFiles/nlidb_sql.dir/table.cc.o.d"
  "CMakeFiles/nlidb_sql.dir/value.cc.o"
  "CMakeFiles/nlidb_sql.dir/value.cc.o.d"
  "libnlidb_sql.a"
  "libnlidb_sql.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nlidb_sql.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
