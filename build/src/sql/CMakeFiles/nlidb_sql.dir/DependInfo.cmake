
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sql/csv.cc" "src/sql/CMakeFiles/nlidb_sql.dir/csv.cc.o" "gcc" "src/sql/CMakeFiles/nlidb_sql.dir/csv.cc.o.d"
  "/root/repo/src/sql/executor.cc" "src/sql/CMakeFiles/nlidb_sql.dir/executor.cc.o" "gcc" "src/sql/CMakeFiles/nlidb_sql.dir/executor.cc.o.d"
  "/root/repo/src/sql/parser.cc" "src/sql/CMakeFiles/nlidb_sql.dir/parser.cc.o" "gcc" "src/sql/CMakeFiles/nlidb_sql.dir/parser.cc.o.d"
  "/root/repo/src/sql/query.cc" "src/sql/CMakeFiles/nlidb_sql.dir/query.cc.o" "gcc" "src/sql/CMakeFiles/nlidb_sql.dir/query.cc.o.d"
  "/root/repo/src/sql/schema.cc" "src/sql/CMakeFiles/nlidb_sql.dir/schema.cc.o" "gcc" "src/sql/CMakeFiles/nlidb_sql.dir/schema.cc.o.d"
  "/root/repo/src/sql/statistics.cc" "src/sql/CMakeFiles/nlidb_sql.dir/statistics.cc.o" "gcc" "src/sql/CMakeFiles/nlidb_sql.dir/statistics.cc.o.d"
  "/root/repo/src/sql/table.cc" "src/sql/CMakeFiles/nlidb_sql.dir/table.cc.o" "gcc" "src/sql/CMakeFiles/nlidb_sql.dir/table.cc.o.d"
  "/root/repo/src/sql/value.cc" "src/sql/CMakeFiles/nlidb_sql.dir/value.cc.o" "gcc" "src/sql/CMakeFiles/nlidb_sql.dir/value.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/nlidb_common.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/nlidb_text.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
