# Empty compiler generated dependencies file for nlidb_sql.
# This may be replaced when dependencies are built.
