file(REMOVE_RECURSE
  "CMakeFiles/nlidb_eval.dir/metrics.cc.o"
  "CMakeFiles/nlidb_eval.dir/metrics.cc.o.d"
  "libnlidb_eval.a"
  "libnlidb_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nlidb_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
