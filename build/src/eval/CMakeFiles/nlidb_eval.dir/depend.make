# Empty dependencies file for nlidb_eval.
# This may be replaced when dependencies are built.
