file(REMOVE_RECURSE
  "libnlidb_eval.a"
)
