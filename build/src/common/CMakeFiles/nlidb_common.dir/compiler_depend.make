# Empty compiler generated dependencies file for nlidb_common.
# This may be replaced when dependencies are built.
