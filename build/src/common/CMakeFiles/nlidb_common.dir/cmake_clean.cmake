file(REMOVE_RECURSE
  "CMakeFiles/nlidb_common.dir/logging.cc.o"
  "CMakeFiles/nlidb_common.dir/logging.cc.o.d"
  "CMakeFiles/nlidb_common.dir/rng.cc.o"
  "CMakeFiles/nlidb_common.dir/rng.cc.o.d"
  "CMakeFiles/nlidb_common.dir/status.cc.o"
  "CMakeFiles/nlidb_common.dir/status.cc.o.d"
  "CMakeFiles/nlidb_common.dir/strings.cc.o"
  "CMakeFiles/nlidb_common.dir/strings.cc.o.d"
  "libnlidb_common.a"
  "libnlidb_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nlidb_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
