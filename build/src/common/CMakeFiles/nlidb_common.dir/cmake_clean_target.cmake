file(REMOVE_RECURSE
  "libnlidb_common.a"
)
