
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/pointer_seq2sql.cc" "src/baselines/CMakeFiles/nlidb_baselines.dir/pointer_seq2sql.cc.o" "gcc" "src/baselines/CMakeFiles/nlidb_baselines.dir/pointer_seq2sql.cc.o.d"
  "/root/repo/src/baselines/sketch_slot_filler.cc" "src/baselines/CMakeFiles/nlidb_baselines.dir/sketch_slot_filler.cc.o" "gcc" "src/baselines/CMakeFiles/nlidb_baselines.dir/sketch_slot_filler.cc.o.d"
  "/root/repo/src/baselines/transformer.cc" "src/baselines/CMakeFiles/nlidb_baselines.dir/transformer.cc.o" "gcc" "src/baselines/CMakeFiles/nlidb_baselines.dir/transformer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/nlidb_core.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/nlidb_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/nlidb_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/nlidb_data.dir/DependInfo.cmake"
  "/root/repo/build/src/sql/CMakeFiles/nlidb_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/nlidb_text.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/nlidb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
