file(REMOVE_RECURSE
  "CMakeFiles/nlidb_baselines.dir/pointer_seq2sql.cc.o"
  "CMakeFiles/nlidb_baselines.dir/pointer_seq2sql.cc.o.d"
  "CMakeFiles/nlidb_baselines.dir/sketch_slot_filler.cc.o"
  "CMakeFiles/nlidb_baselines.dir/sketch_slot_filler.cc.o.d"
  "CMakeFiles/nlidb_baselines.dir/transformer.cc.o"
  "CMakeFiles/nlidb_baselines.dir/transformer.cc.o.d"
  "libnlidb_baselines.a"
  "libnlidb_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nlidb_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
