file(REMOVE_RECURSE
  "libnlidb_baselines.a"
)
