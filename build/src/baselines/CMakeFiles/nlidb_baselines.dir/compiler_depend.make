# Empty compiler generated dependencies file for nlidb_baselines.
# This may be replaced when dependencies are built.
