# Empty dependencies file for nlidb_core.
# This may be replaced when dependencies are built.
