file(REMOVE_RECURSE
  "CMakeFiles/nlidb_core.dir/adversarial.cc.o"
  "CMakeFiles/nlidb_core.dir/adversarial.cc.o.d"
  "CMakeFiles/nlidb_core.dir/annotation.cc.o"
  "CMakeFiles/nlidb_core.dir/annotation.cc.o.d"
  "CMakeFiles/nlidb_core.dir/annotator.cc.o"
  "CMakeFiles/nlidb_core.dir/annotator.cc.o.d"
  "CMakeFiles/nlidb_core.dir/column_mention_classifier.cc.o"
  "CMakeFiles/nlidb_core.dir/column_mention_classifier.cc.o.d"
  "CMakeFiles/nlidb_core.dir/config.cc.o"
  "CMakeFiles/nlidb_core.dir/config.cc.o.d"
  "CMakeFiles/nlidb_core.dir/mention_resolver.cc.o"
  "CMakeFiles/nlidb_core.dir/mention_resolver.cc.o.d"
  "CMakeFiles/nlidb_core.dir/persistence.cc.o"
  "CMakeFiles/nlidb_core.dir/persistence.cc.o.d"
  "CMakeFiles/nlidb_core.dir/pipeline.cc.o"
  "CMakeFiles/nlidb_core.dir/pipeline.cc.o.d"
  "CMakeFiles/nlidb_core.dir/seq2seq.cc.o"
  "CMakeFiles/nlidb_core.dir/seq2seq.cc.o.d"
  "CMakeFiles/nlidb_core.dir/trainer.cc.o"
  "CMakeFiles/nlidb_core.dir/trainer.cc.o.d"
  "CMakeFiles/nlidb_core.dir/value_detector.cc.o"
  "CMakeFiles/nlidb_core.dir/value_detector.cc.o.d"
  "libnlidb_core.a"
  "libnlidb_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nlidb_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
