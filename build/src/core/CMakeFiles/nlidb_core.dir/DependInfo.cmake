
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/adversarial.cc" "src/core/CMakeFiles/nlidb_core.dir/adversarial.cc.o" "gcc" "src/core/CMakeFiles/nlidb_core.dir/adversarial.cc.o.d"
  "/root/repo/src/core/annotation.cc" "src/core/CMakeFiles/nlidb_core.dir/annotation.cc.o" "gcc" "src/core/CMakeFiles/nlidb_core.dir/annotation.cc.o.d"
  "/root/repo/src/core/annotator.cc" "src/core/CMakeFiles/nlidb_core.dir/annotator.cc.o" "gcc" "src/core/CMakeFiles/nlidb_core.dir/annotator.cc.o.d"
  "/root/repo/src/core/column_mention_classifier.cc" "src/core/CMakeFiles/nlidb_core.dir/column_mention_classifier.cc.o" "gcc" "src/core/CMakeFiles/nlidb_core.dir/column_mention_classifier.cc.o.d"
  "/root/repo/src/core/config.cc" "src/core/CMakeFiles/nlidb_core.dir/config.cc.o" "gcc" "src/core/CMakeFiles/nlidb_core.dir/config.cc.o.d"
  "/root/repo/src/core/mention_resolver.cc" "src/core/CMakeFiles/nlidb_core.dir/mention_resolver.cc.o" "gcc" "src/core/CMakeFiles/nlidb_core.dir/mention_resolver.cc.o.d"
  "/root/repo/src/core/persistence.cc" "src/core/CMakeFiles/nlidb_core.dir/persistence.cc.o" "gcc" "src/core/CMakeFiles/nlidb_core.dir/persistence.cc.o.d"
  "/root/repo/src/core/pipeline.cc" "src/core/CMakeFiles/nlidb_core.dir/pipeline.cc.o" "gcc" "src/core/CMakeFiles/nlidb_core.dir/pipeline.cc.o.d"
  "/root/repo/src/core/seq2seq.cc" "src/core/CMakeFiles/nlidb_core.dir/seq2seq.cc.o" "gcc" "src/core/CMakeFiles/nlidb_core.dir/seq2seq.cc.o.d"
  "/root/repo/src/core/trainer.cc" "src/core/CMakeFiles/nlidb_core.dir/trainer.cc.o" "gcc" "src/core/CMakeFiles/nlidb_core.dir/trainer.cc.o.d"
  "/root/repo/src/core/value_detector.cc" "src/core/CMakeFiles/nlidb_core.dir/value_detector.cc.o" "gcc" "src/core/CMakeFiles/nlidb_core.dir/value_detector.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nn/CMakeFiles/nlidb_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/sql/CMakeFiles/nlidb_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/nlidb_text.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/nlidb_data.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/nlidb_common.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/nlidb_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
