file(REMOVE_RECURSE
  "libnlidb_core.a"
)
