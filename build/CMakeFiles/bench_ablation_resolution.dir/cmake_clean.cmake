file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_resolution.dir/bench/bench_ablation_resolution.cc.o"
  "CMakeFiles/bench_ablation_resolution.dir/bench/bench_ablation_resolution.cc.o.d"
  "bench/bench_ablation_resolution"
  "bench/bench_ablation_resolution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_resolution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
