# Empty compiler generated dependencies file for bench_ablation_resolution.
# This may be replaced when dependencies are built.
