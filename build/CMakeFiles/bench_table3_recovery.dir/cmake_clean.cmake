file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_recovery.dir/bench/bench_table3_recovery.cc.o"
  "CMakeFiles/bench_table3_recovery.dir/bench/bench_table3_recovery.cc.o.d"
  "bench/bench_table3_recovery"
  "bench/bench_table3_recovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
