file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_paraphrase.dir/bench/bench_table4_paraphrase.cc.o"
  "CMakeFiles/bench_table4_paraphrase.dir/bench/bench_table4_paraphrase.cc.o.d"
  "bench/bench_table4_paraphrase"
  "bench/bench_table4_paraphrase.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_paraphrase.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
