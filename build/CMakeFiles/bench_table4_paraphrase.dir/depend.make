# Empty dependencies file for bench_table4_paraphrase.
# This may be replaced when dependencies are built.
