file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_mention_cases.dir/bench/bench_table1_mention_cases.cc.o"
  "CMakeFiles/bench_table1_mention_cases.dir/bench/bench_table1_mention_cases.cc.o.d"
  "bench/bench_table1_mention_cases"
  "bench/bench_table1_mention_cases.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_mention_cases.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
