# Empty dependencies file for bench_table1_mention_cases.
# This may be replaced when dependencies are built.
