file(REMOVE_RECURSE
  "CMakeFiles/bench_mention_detection.dir/bench/bench_mention_detection.cc.o"
  "CMakeFiles/bench_mention_detection.dir/bench/bench_mention_detection.cc.o.d"
  "bench/bench_mention_detection"
  "bench/bench_mention_detection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mention_detection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
