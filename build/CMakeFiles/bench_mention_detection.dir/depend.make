# Empty dependencies file for bench_mention_detection.
# This may be replaced when dependencies are built.
