file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_overnight.dir/bench/bench_table4_overnight.cc.o"
  "CMakeFiles/bench_table4_overnight.dir/bench/bench_table4_overnight.cc.o.d"
  "bench/bench_table4_overnight"
  "bench/bench_table4_overnight.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_overnight.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
