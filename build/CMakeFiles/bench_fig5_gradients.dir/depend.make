# Empty dependencies file for bench_fig5_gradients.
# This may be replaced when dependencies are built.
