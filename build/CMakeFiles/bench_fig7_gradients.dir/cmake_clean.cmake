file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_gradients.dir/bench/bench_fig7_gradients.cc.o"
  "CMakeFiles/bench_fig7_gradients.dir/bench/bench_fig7_gradients.cc.o.d"
  "bench/bench_fig7_gradients"
  "bench/bench_fig7_gradients.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_gradients.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
