# Empty dependencies file for bench_fig7_gradients.
# This may be replaced when dependencies are built.
