file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_main.dir/bench/bench_table2_main.cc.o"
  "CMakeFiles/bench_table2_main.dir/bench/bench_table2_main.cc.o.d"
  "bench/bench_table2_main"
  "bench/bench_table2_main.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_main.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
