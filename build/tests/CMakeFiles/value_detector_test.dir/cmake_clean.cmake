file(REMOVE_RECURSE
  "CMakeFiles/value_detector_test.dir/core/value_detector_test.cc.o"
  "CMakeFiles/value_detector_test.dir/core/value_detector_test.cc.o.d"
  "value_detector_test"
  "value_detector_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/value_detector_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
