# Empty dependencies file for vocab_test.
# This may be replaced when dependencies are built.
