file(REMOVE_RECURSE
  "CMakeFiles/ops_gradcheck_test.dir/tensor/ops_gradcheck_test.cc.o"
  "CMakeFiles/ops_gradcheck_test.dir/tensor/ops_gradcheck_test.cc.o.d"
  "ops_gradcheck_test"
  "ops_gradcheck_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ops_gradcheck_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
