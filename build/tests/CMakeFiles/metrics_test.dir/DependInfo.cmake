
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/eval/metrics_test.cc" "tests/CMakeFiles/metrics_test.dir/eval/metrics_test.cc.o" "gcc" "tests/CMakeFiles/metrics_test.dir/eval/metrics_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/eval/CMakeFiles/nlidb_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/nlidb_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/nlidb_core.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/nlidb_data.dir/DependInfo.cmake"
  "/root/repo/build/src/sql/CMakeFiles/nlidb_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/nlidb_text.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/nlidb_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/nlidb_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/nlidb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
