# Empty compiler generated dependencies file for executor_differential_test.
# This may be replaced when dependencies are built.
