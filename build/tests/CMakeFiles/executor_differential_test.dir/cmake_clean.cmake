file(REMOVE_RECURSE
  "CMakeFiles/executor_differential_test.dir/sql/executor_differential_test.cc.o"
  "CMakeFiles/executor_differential_test.dir/sql/executor_differential_test.cc.o.d"
  "executor_differential_test"
  "executor_differential_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/executor_differential_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
