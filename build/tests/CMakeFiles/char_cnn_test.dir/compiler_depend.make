# Empty compiler generated dependencies file for char_cnn_test.
# This may be replaced when dependencies are built.
