file(REMOVE_RECURSE
  "CMakeFiles/char_cnn_test.dir/nn/char_cnn_test.cc.o"
  "CMakeFiles/char_cnn_test.dir/nn/char_cnn_test.cc.o.d"
  "char_cnn_test"
  "char_cnn_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/char_cnn_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
