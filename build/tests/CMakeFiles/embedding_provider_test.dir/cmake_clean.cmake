file(REMOVE_RECURSE
  "CMakeFiles/embedding_provider_test.dir/text/embedding_provider_test.cc.o"
  "CMakeFiles/embedding_provider_test.dir/text/embedding_provider_test.cc.o.d"
  "embedding_provider_test"
  "embedding_provider_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/embedding_provider_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
