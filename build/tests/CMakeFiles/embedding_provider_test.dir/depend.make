# Empty dependencies file for embedding_provider_test.
# This may be replaced when dependencies are built.
