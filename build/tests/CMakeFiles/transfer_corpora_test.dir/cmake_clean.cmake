file(REMOVE_RECURSE
  "CMakeFiles/transfer_corpora_test.dir/data/transfer_corpora_test.cc.o"
  "CMakeFiles/transfer_corpora_test.dir/data/transfer_corpora_test.cc.o.d"
  "transfer_corpora_test"
  "transfer_corpora_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/transfer_corpora_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
