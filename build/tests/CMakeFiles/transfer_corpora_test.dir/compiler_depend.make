# Empty compiler generated dependencies file for transfer_corpora_test.
# This may be replaced when dependencies are built.
