# Empty compiler generated dependencies file for mention_resolver_test.
# This may be replaced when dependencies are built.
