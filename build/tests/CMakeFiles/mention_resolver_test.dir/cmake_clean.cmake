file(REMOVE_RECURSE
  "CMakeFiles/mention_resolver_test.dir/core/mention_resolver_test.cc.o"
  "CMakeFiles/mention_resolver_test.dir/core/mention_resolver_test.cc.o.d"
  "mention_resolver_test"
  "mention_resolver_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mention_resolver_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
