# Empty dependencies file for column_mention_test.
# This may be replaced when dependencies are built.
