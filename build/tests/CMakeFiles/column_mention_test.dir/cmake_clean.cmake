file(REMOVE_RECURSE
  "CMakeFiles/column_mention_test.dir/core/column_mention_test.cc.o"
  "CMakeFiles/column_mention_test.dir/core/column_mention_test.cc.o.d"
  "column_mention_test"
  "column_mention_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/column_mention_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
