file(REMOVE_RECURSE
  "CMakeFiles/transfer_demo.dir/transfer_demo.cpp.o"
  "CMakeFiles/transfer_demo.dir/transfer_demo.cpp.o.d"
  "transfer_demo"
  "transfer_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/transfer_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
