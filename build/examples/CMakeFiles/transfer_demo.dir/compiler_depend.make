# Empty compiler generated dependencies file for transfer_demo.
# This may be replaced when dependencies are built.
