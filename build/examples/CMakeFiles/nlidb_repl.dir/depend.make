# Empty dependencies file for nlidb_repl.
# This may be replaced when dependencies are built.
