file(REMOVE_RECURSE
  "CMakeFiles/nlidb_repl.dir/nlidb_repl.cpp.o"
  "CMakeFiles/nlidb_repl.dir/nlidb_repl.cpp.o.d"
  "nlidb_repl"
  "nlidb_repl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nlidb_repl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
