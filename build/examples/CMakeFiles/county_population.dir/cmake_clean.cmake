file(REMOVE_RECURSE
  "CMakeFiles/county_population.dir/county_population.cpp.o"
  "CMakeFiles/county_population.dir/county_population.cpp.o.d"
  "county_population"
  "county_population.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/county_population.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
