# Empty compiler generated dependencies file for county_population.
# This may be replaced when dependencies are built.
