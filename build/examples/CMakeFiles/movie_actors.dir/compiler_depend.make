# Empty compiler generated dependencies file for movie_actors.
# This may be replaced when dependencies are built.
