file(REMOVE_RECURSE
  "CMakeFiles/movie_actors.dir/movie_actors.cpp.o"
  "CMakeFiles/movie_actors.dir/movie_actors.cpp.o.d"
  "movie_actors"
  "movie_actors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/movie_actors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
