# Empty compiler generated dependencies file for generate_corpus.
# This may be replaced when dependencies are built.
