file(REMOVE_RECURSE
  "CMakeFiles/generate_corpus.dir/generate_corpus.cpp.o"
  "CMakeFiles/generate_corpus.dir/generate_corpus.cpp.o.d"
  "generate_corpus"
  "generate_corpus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/generate_corpus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
