#ifndef NLIDB_BENCH_BENCH_UTIL_H_
#define NLIDB_BENCH_BENCH_UTIL_H_

// Shared setup for the paper-table benchmark binaries. Each binary
// regenerates one table/figure of the paper (see DESIGN.md's
// per-experiment index); they train scaled-down models from scratch on
// the synthetic WikiSQL-style corpus, so absolute numbers differ from
// the paper while orderings and trends are the reproduction target.

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include "core/pipeline.h"
#include "data/generator.h"
#include "eval/metrics.h"

namespace nlidb {
namespace bench {

/// Corpus + provider + config shared by the benches. Sizes can be scaled
/// with the NLIDB_BENCH_TABLES environment variable (default 60 tables).
struct BenchEnv {
  std::shared_ptr<text::EmbeddingProvider> provider;
  data::Splits splits;
  core::ModelConfig config;
};

inline int EnvTables(int fallback = 60) {
  const char* v = std::getenv("NLIDB_BENCH_TABLES");
  return v != nullptr ? std::atoi(v) : fallback;
}

inline BenchEnv MakeEnv(uint64_t seed = 1) {
  BenchEnv env;
  env.provider = std::make_shared<text::EmbeddingProvider>();
  data::RegisterDomainClusters(*env.provider);
  data::GeneratorConfig gc;
  gc.num_tables = EnvTables();
  gc.questions_per_table = 8;
  gc.seed = seed;
  env.splits = data::GenerateWikiSqlSplits(gc);
  env.config = core::ModelConfig::Small();
  env.config.word_dim = env.provider->dim();
  return env;
}

inline std::unique_ptr<core::NlidbPipeline> TrainPipeline(BenchEnv& env) {
  auto pipeline =
      std::make_unique<core::NlidbPipeline>(env.config, env.provider);
  std::printf("[setup] training on %zu examples (%zu tables)...\n",
              env.splits.train.size(), env.splits.train.tables.size());
  core::TrainReport report = pipeline->Train(env.splits.train);
  std::printf(
      "[setup] losses: classifier %.3f | values %.3f | seq2seq %.3f\n\n",
      report.classifier_loss, report.value_loss, report.seq2seq_loss);
  return pipeline;
}

inline void PrintHeader(const char* title) {
  std::printf("=====================================================\n");
  std::printf("%s\n", title);
  std::printf("=====================================================\n");
}

inline void PrintAccuracyRow(const char* name,
                             const eval::AccuracyReport& dev,
                             const eval::AccuracyReport& test) {
  std::printf("%-28s | %5.1f%% %5.1f%% %5.1f%% | %5.1f%% %5.1f%% %5.1f%%\n",
              name, 100 * dev.acc_lf, 100 * dev.acc_qm, 100 * dev.acc_ex,
              100 * test.acc_lf, 100 * test.acc_qm, 100 * test.acc_ex);
}

/// ASCII bar for influence plots (Figs. 5 and 7).
inline std::string Bar(float value, float max_value, int width = 40) {
  if (max_value <= 0.0f) return "";
  int n = static_cast<int>(value / max_value * width + 0.5f);
  if (n < 0) n = 0;
  if (n > width) n = width;
  return std::string(n, '#');
}

}  // namespace bench
}  // namespace nlidb

#endif  // NLIDB_BENCH_BENCH_UTIL_H_
