// Reproduces Table II (ablation rows): starting from the full annotated
// seq2seq, each row removes one component — half hidden size, column name
// appending (replaced by symbol substitution), copy mechanism, table
// header encoding — or swaps the GRU seq2seq for a transformer.
//
// The annotation stage (classifier, value detector, resolver) is trained
// once and shared: ablations only differ in the translation model or the
// annotated-sequence representation, exactly as in the paper.
//
// Expected shape: every ablation row scores below the full model.

#include "bench/bench_util.h"

#include "baselines/transformer.h"
#include "core/trainer.h"

namespace nlidb {
namespace bench {
namespace {

eval::AccuracyReport EvalVariant(const core::NlidbPipeline& pipeline,
                                 const core::TranslatorInterface& translator,
                                 const core::AnnotationOptions& options,
                                 const data::Dataset& dataset) {
  return eval::Evaluate(dataset, [&](const data::Example& ex)
                                     -> StatusOr<sql::SelectQuery> {
    StatusOr<core::Annotation> ann = pipeline.Annotate(ex.tokens, *ex.table);
    if (!ann.ok()) return ann.status();
    const auto qa =
        core::BuildAnnotatedQuestion(ex.tokens, *ann, ex.schema(), options);
    const auto sa = translator.Translate(qa);
    return core::RecoverSql(sa, *ann, ex.schema());
  });
}

int Run() {
  PrintHeader(
      "Table II (ablation rows): removing components of the full model\n"
      "columns: dev Acc_lf Acc_qm Acc_ex | test Acc_lf Acc_qm Acc_ex");
  BenchEnv env = MakeEnv();
  auto pipeline = TrainPipeline(env);

  PrintAccuracyRow("Annotated Seq2seq (ours)",
                   eval::EvaluatePipeline(*pipeline, env.splits.dev),
                   eval::EvaluatePipeline(*pipeline, env.splits.test));

  struct Ablation {
    const char* name;
    core::ModelConfig config;
  };
  std::vector<Ablation> ablations;
  {
    Ablation a{"- Half Hidden Size", env.config};
    a.config.seq2seq_hidden = env.config.seq2seq_hidden / 2;
    ablations.push_back(a);
  }
  {
    Ablation a{"- Column Name Appending", env.config};
    a.config.column_name_appending = false;  // symbol substitution
    ablations.push_back(a);
  }
  {
    Ablation a{"- Copy Mechanism", env.config};
    a.config.use_copy_mechanism = false;
    ablations.push_back(a);
  }
  {
    Ablation a{"- Table Header Encoding", env.config};
    a.config.table_header_encoding = false;
    ablations.push_back(a);
  }

  for (const Ablation& ab : ablations) {
    std::printf("[train] %s\n", ab.name);
    core::AnnotationOptions options;
    options.column_name_appending = ab.config.column_name_appending;
    options.table_header_encoding = ab.config.table_header_encoding;
    core::Seq2SeqTranslator variant(ab.config);
    core::TrainSeq2Seq(variant, env.splits.train, options, ab.config);
    PrintAccuracyRow(ab.name,
                     EvalVariant(*pipeline, variant, options, env.splits.dev),
                     EvalVariant(*pipeline, variant, options, env.splits.test));
  }

  {
    std::printf("[train] - seq2seq + Transformer\n");
    core::AnnotationOptions options;
    baselines::TransformerTranslator transformer(env.config);
    core::TrainSeq2Seq(transformer, env.splits.train, options, env.config);
    PrintAccuracyRow(
        "- seq2seq + Transformer",
        EvalVariant(*pipeline, transformer, options, env.splits.dev),
        EvalVariant(*pipeline, transformer, options, env.splits.test));
  }

  std::printf(
      "\npaper Table II: each ablation drops 0.6-1.2 points below the full\n"
      "model's 75.6%% test Acc_qm; the transformer swap drops ~6 points.\n"
      "Reproduction target: full model on top, transformer lowest.\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace nlidb

int main() { return nlidb::bench::Run(); }
