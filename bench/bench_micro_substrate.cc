// Google-benchmark micro benchmarks for the substrates: tensor math,
// autograd, RNN cells, SQL parsing/execution, statistics, generation and
// the annotation fast paths. Not a paper table — supports the ablation
// discussion in DESIGN.md and guards against performance regressions.

#include <benchmark/benchmark.h>

#include "core/annotation.h"
#include "data/generator.h"
#include "nn/rnn.h"
#include "sql/executor.h"
#include "sql/parser.h"
#include "sql/statistics.h"
#include "tensor/ops.h"
#include "text/dependency.h"
#include "text/tokenizer.h"

namespace nlidb {
namespace {

void BM_MatMul(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(1);
  Tensor a = Tensor::Gaussian({n, n}, 1.0f, rng);
  Tensor b = Tensor::Gaussian({n, n}, 1.0f, rng);
  for (auto _ : state) {
    Tensor c = MatMul(a, b);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * int64_t{n} * n * n);
}
BENCHMARK(BM_MatMul)->Arg(32)->Arg(64)->Arg(128);

void BM_AutogradBackward(benchmark::State& state) {
  Rng rng(2);
  Var w = MakeVar(Tensor::Gaussian({64, 64}, 0.1f, rng), true);
  Var x = MakeVar(Tensor::Gaussian({1, 64}, 1.0f, rng));
  for (auto _ : state) {
    Var h = x;
    for (int i = 0; i < 8; ++i) h = ops::Tanh(ops::MatMul(h, w));
    Var loss = ops::SumAll(h);
    Backward(loss);
    w->grad.Fill(0.0f);
  }
}
BENCHMARK(BM_AutogradBackward);

void BM_GruStep(benchmark::State& state) {
  const int h = static_cast<int>(state.range(0));
  Rng rng(3);
  nn::GruCell cell(h, h, rng);
  Var x = MakeVar(Tensor::Gaussian({1, h}, 1.0f, rng));
  Var state_h = cell.InitialState();
  for (auto _ : state) {
    state_h = cell.Step(x, state_h);
    benchmark::DoNotOptimize(state_h->value.data());
    // Keep the graph from growing unboundedly.
    state_h = MakeVar(state_h->value);
  }
}
BENCHMARK(BM_GruStep)->Arg(64)->Arg(128);

void BM_LstmSequence(benchmark::State& state) {
  Rng rng(4);
  nn::StackedLstm lstm(48, 64, 1, rng);
  Var seq = MakeVar(Tensor::Gaussian({20, 48}, 1.0f, rng));
  for (auto _ : state) {
    Var out = lstm.Forward(seq);
    benchmark::DoNotOptimize(out->value.data());
  }
}
BENCHMARK(BM_LstmSequence);

void BM_SqlParse(benchmark::State& state) {
  sql::Schema schema({{"race", sql::DataType::kText},
                      {"winning_driver", sql::DataType::kText},
                      {"points", sql::DataType::kReal}});
  const std::string sql =
      "SELECT winning_driver WHERE race = \"monaco grand prix\" AND "
      "points > 10";
  for (auto _ : state) {
    auto q = sql::ParseSql(sql, schema);
    benchmark::DoNotOptimize(q.ok());
  }
}
BENCHMARK(BM_SqlParse);

void BM_SqlExecute(benchmark::State& state) {
  sql::Schema schema({{"name", sql::DataType::kText},
                      {"points", sql::DataType::kReal}});
  sql::Table table("t", schema);
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    (void)table.AddRow({sql::Value::Text("row" + std::to_string(i)),
                        sql::Value::Real(rng.NextInt(0, 100))});
  }
  sql::SelectQuery q;
  q.select_column = 0;
  q.agg = sql::Aggregate::kCount;
  q.conditions.push_back({1, sql::CondOp::kGt, sql::Value::Real(50)});
  for (auto _ : state) {
    auto r = sql::Execute(q, table);
    benchmark::DoNotOptimize(r.ok());
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_SqlExecute);

void BM_ColumnStatistics(benchmark::State& state) {
  text::EmbeddingProvider provider;
  data::GeneratorConfig gc;
  gc.num_tables = 1;
  gc.rows_per_table = 30;
  data::WikiSqlGenerator gen(gc, data::TrainDomains());
  auto table = gen.GenerateTable(0);
  for (auto _ : state) {
    auto stats = sql::ComputeTableStatistics(*table, provider);
    benchmark::DoNotOptimize(stats.size());
  }
}
BENCHMARK(BM_ColumnStatistics);

void BM_CorpusGeneration(benchmark::State& state) {
  for (auto _ : state) {
    data::GeneratorConfig gc;
    gc.num_tables = 10;
    gc.questions_per_table = 8;
    gc.seed = state.iterations();
    data::WikiSqlGenerator gen(gc, data::TrainDomains());
    data::Dataset ds = gen.Generate();
    benchmark::DoNotOptimize(ds.examples.size());
  }
}
BENCHMARK(BM_CorpusGeneration);

void BM_DependencyParse(benchmark::State& state) {
  const auto tokens = text::Tokenize(
      "which film directed by jerzy antczak did piotr adamczyk star in ?");
  for (auto _ : state) {
    auto tree = text::DependencyTree::Parse(tokens);
    benchmark::DoNotOptimize(tree.root());
  }
}
BENCHMARK(BM_DependencyParse);

void BM_AnnotationRoundTrip(benchmark::State& state) {
  data::GeneratorConfig gc;
  gc.num_tables = 2;
  data::WikiSqlGenerator gen(gc, data::TrainDomains());
  data::Dataset ds = gen.Generate();
  core::AnnotationOptions options;
  for (auto _ : state) {
    for (const auto& ex : ds.examples) {
      core::Annotation gold;  // empty annotation: worst-case literals
      auto sa = core::BuildAnnotatedSql(ex.query, gold, ex.schema(), options);
      auto rec = core::RecoverSql(sa, gold, ex.schema());
      benchmark::DoNotOptimize(rec.ok());
    }
  }
  state.SetItemsProcessed(state.iterations() * ds.examples.size());
}
BENCHMARK(BM_AnnotationRoundTrip);

}  // namespace
}  // namespace nlidb

BENCHMARK_MAIN();
