// Google-benchmark micro benchmarks for the substrates: tensor math,
// autograd, RNN cells, SQL parsing/execution, statistics, generation and
// the annotation fast paths. Not a paper table — supports the ablation
// discussion in DESIGN.md and guards against performance regressions.
//
// Before the google-benchmark suite runs, main() times the tiled GEMM
// kernels against the seed-equivalent reference loops (gemm_reference.cc,
// compiled with the seed's flags) and appends the results to
// BENCH_substrate.json (override the path with NLIDB_BENCH_JSON).

#include <benchmark/benchmark.h>

#include <chrono>

#include "bench/bench_json.h"
#include "common/thread_pool.h"
#include "core/annotation.h"
#include "data/generator.h"
#include "nn/rnn.h"
#include "sql/executor.h"
#include "sql/parser.h"
#include "sql/statistics.h"
#include "tensor/ops.h"
#include "text/dependency.h"
#include "text/tokenizer.h"

namespace nlidb {
namespace {

void BM_MatMul(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(1);
  Tensor a = Tensor::Gaussian({n, n}, 1.0f, rng);
  Tensor b = Tensor::Gaussian({n, n}, 1.0f, rng);
  for (auto _ : state) {
    Tensor c = MatMul(a, b);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * int64_t{n} * n * n);
}
BENCHMARK(BM_MatMul)->Arg(32)->Arg(64)->Arg(128);

void BM_AutogradBackward(benchmark::State& state) {
  Rng rng(2);
  Var w = MakeVar(Tensor::Gaussian({64, 64}, 0.1f, rng), true);
  Var x = MakeVar(Tensor::Gaussian({1, 64}, 1.0f, rng));
  for (auto _ : state) {
    Var h = x;
    for (int i = 0; i < 8; ++i) h = ops::Tanh(ops::MatMul(h, w));
    Var loss = ops::SumAll(h);
    Backward(loss);
    w->grad.Fill(0.0f);
  }
}
BENCHMARK(BM_AutogradBackward);

void BM_GruStep(benchmark::State& state) {
  const int h = static_cast<int>(state.range(0));
  Rng rng(3);
  nn::GruCell cell(h, h, rng);
  Var x = MakeVar(Tensor::Gaussian({1, h}, 1.0f, rng));
  Var state_h = cell.InitialState();
  for (auto _ : state) {
    state_h = cell.Step(x, state_h);
    benchmark::DoNotOptimize(state_h->value.data());
    // Keep the graph from growing unboundedly.
    state_h = MakeVar(state_h->value);
  }
}
BENCHMARK(BM_GruStep)->Arg(64)->Arg(128);

void BM_LstmSequence(benchmark::State& state) {
  Rng rng(4);
  nn::StackedLstm lstm(48, 64, 1, rng);
  Var seq = MakeVar(Tensor::Gaussian({20, 48}, 1.0f, rng));
  for (auto _ : state) {
    Var out = lstm.Forward(seq);
    benchmark::DoNotOptimize(out->value.data());
  }
}
BENCHMARK(BM_LstmSequence);

void BM_SqlParse(benchmark::State& state) {
  sql::Schema schema({{"race", sql::DataType::kText},
                      {"winning_driver", sql::DataType::kText},
                      {"points", sql::DataType::kReal}});
  const std::string sql =
      "SELECT winning_driver WHERE race = \"monaco grand prix\" AND "
      "points > 10";
  for (auto _ : state) {
    auto q = sql::ParseSql(sql, schema);
    benchmark::DoNotOptimize(q.ok());
  }
}
BENCHMARK(BM_SqlParse);

void BM_SqlExecute(benchmark::State& state) {
  sql::Schema schema({{"name", sql::DataType::kText},
                      {"points", sql::DataType::kReal}});
  sql::Table table("t", schema);
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    (void)table.AddRow({sql::Value::Text("row" + std::to_string(i)),
                        sql::Value::Real(rng.NextInt(0, 100))});
  }
  sql::SelectQuery q;
  q.select_column = 0;
  q.agg = sql::Aggregate::kCount;
  q.conditions.push_back({1, sql::CondOp::kGt, sql::Value::Real(50)});
  for (auto _ : state) {
    auto r = sql::Execute(q, table);
    benchmark::DoNotOptimize(r.ok());
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_SqlExecute);

void BM_ColumnStatistics(benchmark::State& state) {
  text::EmbeddingProvider provider;
  data::GeneratorConfig gc;
  gc.num_tables = 1;
  gc.rows_per_table = 30;
  data::WikiSqlGenerator gen(gc, data::TrainDomains());
  auto table = gen.GenerateTable(0);
  for (auto _ : state) {
    auto stats = sql::ComputeTableStatistics(*table, provider);
    benchmark::DoNotOptimize(stats.size());
  }
}
BENCHMARK(BM_ColumnStatistics);

void BM_CorpusGeneration(benchmark::State& state) {
  for (auto _ : state) {
    data::GeneratorConfig gc;
    gc.num_tables = 10;
    gc.questions_per_table = 8;
    gc.seed = state.iterations();
    data::WikiSqlGenerator gen(gc, data::TrainDomains());
    data::Dataset ds = gen.Generate();
    benchmark::DoNotOptimize(ds.examples.size());
  }
}
BENCHMARK(BM_CorpusGeneration);

void BM_DependencyParse(benchmark::State& state) {
  const auto tokens = text::Tokenize(
      "which film directed by jerzy antczak did piotr adamczyk star in ?");
  for (auto _ : state) {
    auto tree = text::DependencyTree::Parse(tokens);
    benchmark::DoNotOptimize(tree.root());
  }
}
BENCHMARK(BM_DependencyParse);

void BM_AnnotationRoundTrip(benchmark::State& state) {
  data::GeneratorConfig gc;
  gc.num_tables = 2;
  data::WikiSqlGenerator gen(gc, data::TrainDomains());
  data::Dataset ds = gen.Generate();
  core::AnnotationOptions options;
  for (auto _ : state) {
    for (const auto& ex : ds.examples) {
      core::Annotation gold;  // empty annotation: worst-case literals
      auto sa = core::BuildAnnotatedSql(ex.query, gold, ex.schema(), options);
      auto rec = core::RecoverSql(sa, gold, ex.schema());
      benchmark::DoNotOptimize(rec.ok());
    }
  }
  state.SetItemsProcessed(state.iterations() * ds.examples.size());
}
BENCHMARK(BM_AnnotationRoundTrip);

// --- Tiled-vs-reference GEMM report (BENCH_substrate.json) ------------

using GemmFn = void (*)(const Tensor&, const Tensor&, Tensor&);

// Runs `fn` until ~80 ms have elapsed (at least 3 iterations) and
// returns ns per call; best of 3 batches. `out` is re-zeroed every call
// on both sides of a comparison, so the Fill cost cancels.
double TimeGemmNs(GemmFn fn, const Tensor& a, const Tensor& b, Tensor& out) {
  using Clock = std::chrono::steady_clock;
  out.Fill(0.0f);
  fn(a, b, out);  // warmup
  double best = 1e30;
  for (int batch = 0; batch < 3; ++batch) {
    int iters = 0;
    const auto start = Clock::now();
    double elapsed_ns = 0.0;
    do {
      out.Fill(0.0f);
      fn(a, b, out);
      ++iters;
      elapsed_ns = std::chrono::duration<double, std::nano>(Clock::now() -
                                                            start)
                       .count();
    } while (elapsed_ns < 8e7 || iters < 3);
    best = std::min(best, elapsed_ns / iters);
  }
  return best;
}

struct GemmCase {
  const char* key;      // JSON key stem, e.g. "gemm_ab"
  GemmFn tiled;
  GemmFn reference;
  bool transpose_a;     // out shape follows the kernel's contraction
};

void RunSubstrateGemmReport(bench::FlatJson& json) {
  const GemmCase cases[] = {
      {"gemm_ab", &MatMulAccumulate, &MatMulAccumulateReference, false},
      {"gemm_abt", &MatMulTransposeBAccumulate,
       &MatMulTransposeBAccumulateReference, false},
      {"gemm_atb", &MatMulTransposeAAccumulate,
       &MatMulTransposeAAccumulateReference, true},
  };
  const int sizes[] = {64, 128, 256, 384};
  std::printf("substrate: tiled GEMM vs seed-equivalent reference "
              "(threads=%d)\n",
              ThreadPool::Global().parallelism());
  std::printf("%-10s %6s %12s %12s %9s\n", "kernel", "n", "ref ns/op",
              "tiled ns/op", "speedup");
  for (const GemmCase& c : cases) {
    for (int n : sizes) {
      Rng rng(static_cast<uint64_t>(n) * 7 + 1);
      // Square shapes: every kernel variant accepts [n,n]x[n,n]->[n,n].
      Tensor a = Tensor::Gaussian({n, n}, 1.0f, rng);
      Tensor b = Tensor::Gaussian({n, n}, 1.0f, rng);
      Tensor out = Tensor::Zeros({n, n});
      const double ref_ns = TimeGemmNs(c.reference, a, b, out);
      const double tiled_ns = TimeGemmNs(c.tiled, a, b, out);
      const double speedup = ref_ns / tiled_ns;
      std::printf("%-10s %6d %12.0f %12.0f %8.2fx\n", c.key, n, ref_ns,
                  tiled_ns, speedup);
      const std::string stem = std::string(c.key) + "_" + std::to_string(n);
      json.Set(stem + "_ref_ns", ref_ns);
      json.Set(stem + "_tiled_ns", tiled_ns);
      json.Set(stem + "_speedup", speedup);
    }
  }
}

}  // namespace
}  // namespace nlidb

int main(int argc, char** argv) {
  {
    nlidb::bench::FlatJson json =
        nlidb::bench::FlatJson::Load(nlidb::bench::SubstrateJsonPath());
    json.Set("threads", nlidb::ThreadPool::Global().parallelism());
    nlidb::RunSubstrateGemmReport(json);
    json.Save(nlidb::bench::SubstrateJsonPath());
    std::printf("wrote %s (%zu keys)\n\n", nlidb::bench::SubstrateJsonPath(),
                json.size());
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
