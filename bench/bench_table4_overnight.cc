// Reproduces Table IV(a): zero-shot transfer to the five OVERNIGHT-style
// sub-domains. The model is trained ONLY on the WikiSQL-style corpus and
// evaluated untouched on basketball / calendar / housing / recipes /
// restaurants, plus the overall accuracy; a second section retrains on
// OVERNIGHT's own train split to reproduce the in-domain 81.4% number
// (Sec. VII-B1).

#include "bench/bench_util.h"

#include "data/overnight.h"

namespace nlidb {
namespace bench {
namespace {

int Run() {
  PrintHeader("Table IV(a): zero-shot transfer to OVERNIGHT sub-domains");
  BenchEnv env = MakeEnv();
  auto pipeline = TrainPipeline(env);

  data::GeneratorConfig oc;
  oc.num_tables = std::max(4, EnvTables() / 6);
  oc.questions_per_table = 8;
  oc.seed = 101;
  data::OvernightCorpus overnight = data::GenerateOvernight(oc);

  std::printf("%-14s | zero-shot Acc_qm\n", "sub-domain");
  int total_correct = 0, total_count = 0;
  for (const auto& sub : overnight.subdomains) {
    // Zero-shot over the whole sub-domain (paper: train and test splits
    // of OVERNIGHT are both evaluation data for the transfer model).
    data::Dataset all = sub.train;
    for (const auto& t : sub.test.tables) all.tables.push_back(t);
    for (const auto& e : sub.test.examples) all.examples.push_back(e);
    eval::AccuracyReport acc = eval::EvaluatePipeline(*pipeline, all);
    std::printf("%-14s | %5.1f%% (n=%d)\n", sub.name.c_str(),
                100 * acc.acc_qm, acc.count);
    total_correct += static_cast<int>(acc.acc_qm * acc.count + 0.5f);
    total_count += acc.count;
  }
  std::printf("%-14s | %5.1f%% (n=%d)\n", "OVERALL",
              total_count > 0 ? 100.0f * total_correct / total_count : 0.0f,
              total_count);

  std::printf(
      "\npaper Table IV(a): basketball 39.7, calendar 76.3, housing 51.5,\n"
      "recipes 81.8, restaurants 79.3, overall 60.6 (%% Acc_qm, zero-shot).\n");

  // --- In-domain control (Sec. VII-B1: 81.4%) ---------------------------
  PrintHeader("OVERNIGHT in-domain control (train on OVERNIGHT train split)");
  data::Dataset overnight_train, overnight_test;
  for (const auto& sub : overnight.subdomains) {
    for (const auto& t : sub.train.tables) overnight_train.tables.push_back(t);
    for (const auto& e : sub.train.examples) {
      overnight_train.examples.push_back(e);
    }
    for (const auto& t : sub.test.tables) overnight_test.tables.push_back(t);
    for (const auto& e : sub.test.examples) overnight_test.examples.push_back(e);
  }
  core::NlidbPipeline in_domain(env.config, env.provider);
  in_domain.Train(overnight_train);
  eval::AccuracyReport acc = eval::EvaluatePipeline(in_domain, overnight_test);
  std::printf("in-domain OVERNIGHT test: %s\n", acc.ToString().c_str());
  std::printf("paper: 81.4%% Acc_qm when trained on OVERNIGHT directly.\n");
  std::printf(
      "Reproduction target: in-domain accuracy well above the zero-shot\n"
      "overall, and zero-shot far above zero (transfer-learnability).\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace nlidb

int main() { return nlidb::bench::Run(); }
