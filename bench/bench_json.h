#ifndef NLIDB_BENCH_BENCH_JSON_H_
#define NLIDB_BENCH_BENCH_JSON_H_

// Minimal flat-object JSON store for machine-readable bench output.
// Several bench binaries contribute to one BENCH_substrate.json, so the
// store reads the existing file (if any), merges the new keys, and
// rewrites the whole object with sorted keys. Values are numbers or
// strings; no nesting — consumers are dashboards/diff scripts, not a
// general JSON reader.

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <sstream>
#include <string>

namespace nlidb {
namespace bench {

class FlatJson {
 public:
  /// Loads a flat JSON object; missing or malformed files yield an empty
  /// store (the bench then just rewrites it from scratch).
  static FlatJson Load(const std::string& path) {
    FlatJson out;
    std::FILE* f = std::fopen(path.c_str(), "rb");
    if (f == nullptr) return out;
    std::string text;
    char buf[4096];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) text.append(buf, n);
    std::fclose(f);
    out.Parse(text);
    return out;
  }

  void Set(const std::string& key, double value) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", value);
    entries_[key] = buf;
  }

  void Set(const std::string& key, long long value) {
    entries_[key] = std::to_string(value);
  }

  void Set(const std::string& key, int value) {
    entries_[key] = std::to_string(value);
  }

  void SetString(const std::string& key, const std::string& value) {
    std::string quoted = "\"";
    for (char c : value) {
      if (c == '"' || c == '\\') quoted.push_back('\\');
      quoted.push_back(c);
    }
    quoted.push_back('"');
    entries_[key] = quoted;
  }

  bool Save(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    if (f == nullptr) return false;
    std::fputs("{\n", f);
    size_t i = 0;
    for (const auto& [key, raw] : entries_) {
      std::fprintf(f, "  \"%s\": %s%s\n", key.c_str(), raw.c_str(),
                   ++i < entries_.size() ? "," : "");
    }
    std::fputs("}\n", f);
    std::fclose(f);
    return true;
  }

  size_t size() const { return entries_.size(); }

 private:
  // Tolerant scan for `"key": value` pairs; values are kept as their raw
  // token text (quoted strings keep the quotes) so a merge round-trips.
  void Parse(const std::string& text) {
    size_t pos = 0;
    while ((pos = text.find('"', pos)) != std::string::npos) {
      const size_t key_end = text.find('"', pos + 1);
      if (key_end == std::string::npos) return;
      const std::string key = text.substr(pos + 1, key_end - pos - 1);
      size_t p = key_end + 1;
      while (p < text.size() && std::isspace(static_cast<unsigned char>(text[p]))) ++p;
      if (p >= text.size() || text[p] != ':') {
        pos = key_end + 1;
        continue;
      }
      ++p;
      while (p < text.size() && std::isspace(static_cast<unsigned char>(text[p]))) ++p;
      if (p >= text.size()) return;
      std::string raw;
      if (text[p] == '"') {
        const size_t start = p;
        ++p;
        while (p < text.size() && text[p] != '"') {
          if (text[p] == '\\' && p + 1 < text.size()) ++p;
          ++p;
        }
        if (p < text.size()) ++p;  // closing quote
        raw = text.substr(start, p - start);
      } else {
        const size_t start = p;
        while (p < text.size() && text[p] != ',' && text[p] != '}' &&
               !std::isspace(static_cast<unsigned char>(text[p]))) {
          ++p;
        }
        raw = text.substr(start, p - start);
      }
      if (!raw.empty()) entries_[key] = raw;
      pos = p;
    }
  }

  std::map<std::string, std::string> entries_;
};

/// Shared output path; benches run from the build tree, the driver picks
/// the file up from the working directory.
inline const char* SubstrateJsonPath() {
  const char* v = std::getenv("NLIDB_BENCH_JSON");
  return v != nullptr ? v : "BENCH_substrate.json";
}

/// Output path for bench_stage_breakdown's per-stage latency report.
inline const char* ObservabilityJsonPath() {
  const char* v = std::getenv("NLIDB_BENCH_OBS_JSON");
  return v != nullptr ? v : "BENCH_observability.json";
}

/// Output path for bench_decoder's fast-path vs reference report.
inline const char* DecoderJsonPath() {
  const char* v = std::getenv("NLIDB_BENCH_DECODER_JSON");
  return v != nullptr ? v : "BENCH_decoder.json";
}

/// Output path for bench_serving's multi-tenant load report.
inline const char* ServingJsonPath() {
  const char* v = std::getenv("NLIDB_BENCH_SERVING_JSON");
  return v != nullptr ? v : "BENCH_serving.json";
}

/// Output path for bench_schema_scale's registry scaling report.
inline const char* SchemaJsonPath() {
  const char* v = std::getenv("NLIDB_BENCH_SCHEMA_JSON");
  return v != nullptr ? v : "BENCH_schema.json";
}

/// Output path for bench_attack's soak + hardening report.
inline const char* AttackJsonPath() {
  const char* v = std::getenv("NLIDB_BENCH_ATTACK_JSON");
  return v != nullptr ? v : "BENCH_attack.json";
}

}  // namespace bench
}  // namespace nlidb

#endif  // NLIDB_BENCH_BENCH_JSON_H_
