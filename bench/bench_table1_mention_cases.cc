// Reproduces Table I: case studies of mention detection by the
// adversarial text method — columns whose question wording has no
// straightforward indicator ("when did" -> date, "where was ... played"
// -> venue/location, "golfer that golfs for" -> nation, implicit
// mentions). For each case the bench prints whether the classifier
// flags the column and which term the adversarial locator pins.

#include "bench/bench_util.h"

#include "common/strings.h"
#include "core/adversarial.h"
#include "core/trainer.h"
#include "text/tokenizer.h"

namespace nlidb {
namespace bench {
namespace {

struct Case {
  const char* column;   // display words, space separated
  const char* question; // Table I question (adapted to corpus vocabulary)
};

int Run() {
  PrintHeader(
      "Table I: mention detection using the adversarial text method\n"
      "(column | detected? | located term | question)");
  BenchEnv env = MakeEnv();
  core::ColumnMentionClassifier classifier(env.config, *env.provider);
  std::printf("[setup] training classifier...\n");
  core::TrainColumnMentionClassifier(classifier, env.splits.train, env.config);
  core::AdversarialLocator locator(env.config);

  const Case cases[] = {
      // Table I rows, phrased over this corpus's vocabulary.
      {"date", "when did the race at the monaco grand prix take place ?"},
      {"location", "where was the meeting held on may 20 ?"},
      {"nation", "who is the golfer that golfs for northern ireland ?"},
      {"points", "what was her final score with the team ferrari ?"},
      // Figure 5's column for good measure.
      {"winning driver", "which driver won the japanese grand prix ?"},
  };
  for (const Case& c : cases) {
    const auto tokens = text::Tokenize(c.question);
    const auto column = SplitWhitespace(c.column);
    const float p = classifier.Predict(tokens, column).value();
    std::string term = "-";
    if (p > 0.5f) {
      const text::Span span =
          locator.LocateMention(classifier, tokens, column).value();
      if (!span.empty()) term = text::SpanText(tokens, span);
    }
    std::printf("%-16s | %s (p=%.2f) | %-24s | %s\n", c.column,
                p > 0.5f ? "yes" : "no ", p, term.c_str(), c.question);
  }
  std::printf(
      "\npaper Table I: 'date' detected from 'when did', 'venue' from\n"
      "'where was ... played', 'player' from 'golfer', and the implicitly\n"
      "mentioned 'competition description' from context. Reproduction\n"
      "target: context-dependent columns flagged and localized sensibly.\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace nlidb

int main() { return nlidb::bench::Run(); }
