// Reproduces Table III: exact query-match accuracy BEFORE annotation
// recovery (decoded s^a must equal the gold query rendered under the
// predicted annotation) vs AFTER recovery (canonical query match of the
// recovered SQL), for the full model and its ablation variants.
//
// Paper finding: "our automatic annotation will not hurt the
// performance; on the contrary, it increases the accuracy" — recovery
// accuracy tracks (and at paper scale slightly exceeds) the raw
// annotated-SQL accuracy.

#include "bench/bench_util.h"

#include "core/trainer.h"

namespace nlidb {
namespace bench {
namespace {

struct RecoveryVariant {
  const char* name;
  core::ModelConfig config;
};

eval::RecoveryReport EvalVariantRecovery(
    const core::NlidbPipeline& pipeline,
    const core::Seq2SeqTranslator& translator,
    const core::AnnotationOptions& options, const data::Dataset& dataset) {
  eval::RecoveryReport report;
  report.count = static_cast<int>(dataset.examples.size());
  if (report.count == 0) return report;
  int before = 0, after = 0;
  for (const data::Example& ex : dataset.examples) {
    StatusOr<core::Annotation> annotated =
        pipeline.Annotate(ex.tokens, *ex.table);
    if (!annotated.ok()) continue;  // invalid example: neither side scores
    const core::Annotation& ann = *annotated;
    const auto qa =
        core::BuildAnnotatedQuestion(ex.tokens, ann, ex.schema(), options);
    const auto sa = translator.Translate(qa);
    const auto gold_sa =
        core::BuildAnnotatedSql(ex.query, ann, ex.schema(), options);
    before += sa == gold_sa;
    auto recovered = core::RecoverSql(sa, ann, ex.schema());
    after += recovered.ok() &&
             eval::QueryMatch(*recovered, ex.query, ex.schema());
  }
  report.acc_before = static_cast<float>(before) / report.count;
  report.acc_after = static_cast<float>(after) / report.count;
  return report;
}

void PrintRecoveryRow(const char* name, const eval::RecoveryReport& dev,
                      const eval::RecoveryReport& test) {
  std::printf("%-28s | %6.1f%% %6.1f%% | %6.1f%% %6.1f%%\n", name,
              100 * dev.acc_before, 100 * dev.acc_after,
              100 * test.acc_before, 100 * test.acc_after);
}

int Run() {
  PrintHeader(
      "Table III: Acc_qm before vs after annotation recovery\n"
      "columns: dev before after | test before after");
  BenchEnv env = MakeEnv();
  auto pipeline = TrainPipeline(env);

  PrintRecoveryRow("Annotated Seq2seq (ours)",
                   eval::EvaluateRecovery(*pipeline, env.splits.dev),
                   eval::EvaluateRecovery(*pipeline, env.splits.test));

  std::vector<RecoveryVariant> variants;
  {
    RecoveryVariant v{"- Half Hidden Size", env.config};
    v.config.seq2seq_hidden = env.config.seq2seq_hidden / 2;
    variants.push_back(v);
  }
  {
    RecoveryVariant v{"- Table Header Encoding", env.config};
    v.config.table_header_encoding = false;
    variants.push_back(v);
  }
  {
    RecoveryVariant v{"- Column Name Appending", env.config};
    v.config.column_name_appending = false;
    variants.push_back(v);
  }
  {
    RecoveryVariant v{"- Copy Mechanism", env.config};
    v.config.use_copy_mechanism = false;
    variants.push_back(v);
  }
  for (const RecoveryVariant& v : variants) {
    std::printf("[train] %s\n", v.name);
    core::AnnotationOptions options;
    options.column_name_appending = v.config.column_name_appending;
    options.table_header_encoding = v.config.table_header_encoding;
    core::Seq2SeqTranslator variant(v.config);
    core::TrainSeq2Seq(variant, env.splits.train, options, v.config);
    PrintRecoveryRow(
        v.name,
        EvalVariantRecovery(*pipeline, variant, options, env.splits.dev),
        EvalVariantRecovery(*pipeline, variant, options, env.splits.test));
  }

  std::printf(
      "\npaper Table III test: 75.0%% before -> 75.6%% after for the full\n"
      "model. Reproduction target: after-recovery accuracy tracks the\n"
      "before-recovery accuracy closely for every variant.\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace nlidb

int main() { return nlidb::bench::Run(); }
