// Reproduces the Sec. VII-A1 mention-detection comparison: accuracy of
// canonical ($COND_COL, $COND_VAL) matches between synthesized and gold
// SQL — ours (annotation + resolution + seq2seq) vs the TypeSQL-style
// sketch slot filler. Paper: ours 91.8% vs TypeSQL 87.9%.
//
// Also reports span-level column mention precision/recall of the
// annotator itself.

#include "bench/bench_util.h"

#include <set>

#include "baselines/sketch_slot_filler.h"
#include "common/strings.h"

namespace nlidb {
namespace bench {
namespace {

float CondColValAccuracy(const data::Dataset& dataset,
                         const eval::TranslateFn& translate) {
  if (dataset.examples.empty()) return 0.0f;
  int ok = 0;
  for (const data::Example& ex : dataset.examples) {
    auto predicted = translate(ex);
    if (!predicted.ok()) continue;
    auto key_set = [](const sql::SelectQuery& q) {
      std::set<std::string> keys;
      for (const auto& c : q.conditions) {
        keys.insert(std::to_string(c.column) + "|" +
                    ToLower(c.value.ToString()));
      }
      return keys;
    };
    ok += key_set(*predicted) == key_set(ex.query);
  }
  return static_cast<float>(ok) / dataset.examples.size();
}

int Run() {
  PrintHeader(
      "Sec. VII-A1: $COND_COL/$COND_VAL accuracy, ours vs sketch filler");
  BenchEnv env = MakeEnv();
  auto pipeline = TrainPipeline(env);

  std::printf("[train] sketch slot filler (TypeSQL-style)\n");
  baselines::SketchSlotFiller sketch(env.config, env.provider);
  sketch.Train(env.splits.train);

  const float ours = CondColValAccuracy(
      env.splits.test, [&](const data::Example& ex) {
        return pipeline->TranslateTokens(ex.tokens, *ex.table);
      });
  const float sketch_acc = CondColValAccuracy(
      env.splits.test, [&](const data::Example& ex) {
        return sketch.Translate(ex.tokens, *ex.table);
      });
  std::printf("ours (adversarial annotation): %5.1f%%\n", 100 * ours);
  std::printf("TypeSQL-style sketch filler:   %5.1f%%\n", 100 * sketch_acc);

  eval::MentionReport mentions =
      eval::EvaluateMentions(*pipeline, env.splits.test);
  std::printf(
      "\nannotator span-level column mention detection: P %.1f%% R %.1f%% "
      "F1 %.1f%%\n",
      100 * mentions.span_precision, 100 * mentions.span_recall,
      100 * mentions.span_f1);
  std::printf(
      "\npaper: ours 91.8%% vs TypeSQL 87.9%% on $COND_COL/$COND_VAL.\n"
      "Reproduction target: ours above the sketch baseline.\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace nlidb

int main() { return nlidb::bench::Run(); }
