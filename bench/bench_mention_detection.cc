// Reproduces the Sec. VII-A1 mention-detection comparison: accuracy of
// canonical ($COND_COL, $COND_VAL) matches between synthesized and gold
// SQL — ours (annotation + resolution + seq2seq) vs the TypeSQL-style
// sketch slot filler. Paper: ours 91.8% vs TypeSQL 87.9%.
//
// Also reports span-level column mention precision/recall of the
// annotator itself.

// In addition to the accuracy table, the binary measures the annotation
// substrate: end-to-end Annotate latency as the schema widens, and the
// batched column-mention pass against a serial per-column emulation of
// the pre-substrate annotator. Results merge into BENCH_substrate.json.

#include "bench/bench_util.h"

#include <chrono>
#include <set>

#include "baselines/sketch_slot_filler.h"
#include "bench/bench_json.h"
#include "common/strings.h"
#include "common/thread_pool.h"
#include "core/adversarial.h"
#include "text/tokenizer.h"

namespace nlidb {
namespace bench {
namespace {

float CondColValAccuracy(const data::Dataset& dataset,
                         const eval::TranslateFn& translate) {
  if (dataset.examples.empty()) return 0.0f;
  int ok = 0;
  for (const data::Example& ex : dataset.examples) {
    auto predicted = translate(ex);
    if (!predicted.ok()) continue;
    auto key_set = [](const sql::SelectQuery& q) {
      std::set<std::string> keys;
      for (const auto& c : q.conditions) {
        keys.insert(std::to_string(c.column) + "|" +
                    ToLower(c.value.ToString()));
      }
      return keys;
    };
    ok += key_set(*predicted) == key_set(ex.query);
  }
  return static_cast<float>(ok) / dataset.examples.size();
}

// Repeats `fn` until ~300 ms elapsed (at least 5 iterations); ns/call.
template <typename Fn>
double TimeNs(Fn&& fn) {
  using Clock = std::chrono::steady_clock;
  fn();  // warmup
  int iters = 0;
  const auto start = Clock::now();
  double elapsed_ns = 0.0;
  do {
    fn();
    ++iters;
    elapsed_ns =
        std::chrono::duration<double, std::nano>(Clock::now() - start).count();
  } while (elapsed_ns < 3e8 || iters < 5);
  return elapsed_ns / iters;
}

sql::Table MakeWideTable(int width) {
  static const char* kNames[] = {
      "race",          "winning_driver", "points",       "season_year",
      "home_team",     "away_team",      "film_name",    "director_name",
      "album_title",   "artist_name",    "release_year", "track_length",
      "city_name",     "country_name",   "population",   "player_name",
      "team_name",     "games_played",   "goal_count",   "match_date"};
  std::vector<sql::ColumnDef> cols;
  for (int i = 0; i < width; ++i) {
    cols.push_back({kNames[i], sql::DataType::kText});
  }
  sql::Table table("bench_wide", sql::Schema(std::move(cols)));
  for (int r = 0; r < 5; ++r) {
    std::vector<sql::Value> row;
    for (int i = 0; i < width; ++i) {
      row.push_back(sql::Value::Text("cell " + std::to_string(r * width + i)));
    }
    (void)table.AddRow(std::move(row));
  }
  return table;
}

// Annotate latency vs schema width, plus the batched column-mention pass
// against a serial per-column emulation of the pre-substrate annotator
// (Predict each column, ComputeInfluence on accepted ones, one at a
// time). Both run on the current tiled kernels, so the speedup isolates
// batching + the pool fan-out, conservatively: the seed additionally ran
// naive GEMM loops.
void SubstrateLatencySection(core::NlidbPipeline& pipeline, BenchEnv& env) {
  std::printf("\n--- annotation substrate latency (threads=%d) ---\n",
              ThreadPool::Global().parallelism());
  bench::FlatJson json = bench::FlatJson::Load(bench::SubstrateJsonPath());
  json.Set("annotate_threads", ThreadPool::Global().parallelism());

  const std::vector<std::vector<std::string>> questions = {
      text::Tokenize("who is the winning driver of the monaco race"),
      text::Tokenize("what is the goal count of the home team this season"),
      text::Tokenize("which film name did the director name release"),
  };
  // Distinct live objects: the pipeline's stats cache keys on table
  // address, so reusing one stack slot across widths would collide.
  std::vector<sql::Table> wide_tables;
  for (int width : {5, 10, 20}) wide_tables.push_back(MakeWideTable(width));
  for (const sql::Table& table : wide_tables) {
    const int width = table.num_columns();
    const double ns = TimeNs([&] {
      for (const auto& q : questions) {
        StatusOr<core::Annotation> a = pipeline.Annotate(q, table);
        Status::IgnoreError(a.status());
      }
    }) / questions.size();
    std::printf("annotate end-to-end, %2d columns: %10.0f ns\n", width, ns);
    json.Set("annotate_ns_cols" + std::to_string(width), ns);
  }

  // Mention-pass comparison at the widest schema.
  const sql::Table table = MakeWideTable(20);
  std::vector<std::vector<std::string>> displays;
  for (const auto& c : table.schema().columns()) {
    displays.push_back(c.DisplayTokens());
  }
  const core::ColumnMentionClassifier& clf = pipeline.classifier();
  const core::AdversarialLocator locator(env.config);
  constexpr float kThreshold = 0.5f;  // annotator's kClassifierThreshold

  const double serial_ns = TimeNs([&] {
    for (const auto& q : questions) {
      for (const auto& d : displays) {
        const float p = clf.Predict(q, d).value();
        if (p >= kThreshold) {
          auto profile = locator.ComputeInfluence(clf, q, d).value();
          (void)profile;
        }
      }
    }
  }) / questions.size();

  const double batched_ns = TimeNs([&] {
    for (const auto& q : questions) {
      const std::vector<float> probs = clf.PredictBatch(q, displays).value();
      std::vector<int> accepted;
      for (int c = 0; c < static_cast<int>(probs.size()); ++c) {
        if (probs[c] >= kThreshold) accepted.push_back(c);
      }
      std::vector<core::InfluenceProfile> profiles(accepted.size());
      ThreadPool::Global().ParallelFor(
          0, static_cast<int>(accepted.size()), [&](int jb, int je) {
            for (int j = jb; j < je; ++j) {
              profiles[j] =
                  locator.ComputeInfluence(clf, q, displays[accepted[j]])
                      .value();
            }
          });
    }
  }) / questions.size();

  const double speedup = serial_ns / batched_ns;
  std::printf("mention pass, 20 columns: serial %10.0f ns | batched %10.0f "
              "ns | %.2fx\n",
              serial_ns, batched_ns, speedup);
  json.Set("mention_pass_serial_ns_cols20", serial_ns);
  json.Set("mention_pass_batched_ns_cols20", batched_ns);
  json.Set("annotate_speedup_cols20", speedup);
  json.Save(bench::SubstrateJsonPath());
  std::printf("merged %s (%zu keys)\n", bench::SubstrateJsonPath(),
              json.size());
}

int Run() {
  PrintHeader(
      "Sec. VII-A1: $COND_COL/$COND_VAL accuracy, ours vs sketch filler");
  BenchEnv env = MakeEnv();
  auto pipeline = TrainPipeline(env);

  std::printf("[train] sketch slot filler (TypeSQL-style)\n");
  baselines::SketchSlotFiller sketch(env.config, env.provider);
  sketch.Train(env.splits.train);

  const float ours = CondColValAccuracy(
      env.splits.test,
      [&](const data::Example& ex) -> StatusOr<sql::SelectQuery> {
        core::QueryRequest request;
        request.schema_ref = core::SchemaRef::Table(ex.table.get());
        request.tokens = ex.tokens;
        request.execute = false;
        request.collect_timings = false;
        StatusOr<core::QueryResult> result = pipeline->Query(request);
        if (!result.ok()) return result.status();
        core::QueryResult out = std::move(result).value();
        if (!out.recovery_status.ok()) return out.recovery_status;
        return std::move(*out.query);
      });
  const float sketch_acc = CondColValAccuracy(
      env.splits.test, [&](const data::Example& ex) {
        return sketch.Translate(ex.tokens, *ex.table);
      });
  std::printf("ours (adversarial annotation): %5.1f%%\n", 100 * ours);
  std::printf("TypeSQL-style sketch filler:   %5.1f%%\n", 100 * sketch_acc);

  eval::MentionReport mentions =
      eval::EvaluateMentions(*pipeline, env.splits.test);
  std::printf(
      "\nannotator span-level column mention detection: P %.1f%% R %.1f%% "
      "F1 %.1f%%\n",
      100 * mentions.span_precision, 100 * mentions.span_recall,
      100 * mentions.span_f1);
  std::printf(
      "\npaper: ours 91.8%% vs TypeSQL 87.9%% on $COND_COL/$COND_VAL.\n"
      "Reproduction target: ours above the sketch baseline.\n");

  SubstrateLatencySection(*pipeline, env);
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace nlidb

int main() { return nlidb::bench::Run(); }
