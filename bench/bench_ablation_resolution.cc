// Design-choice ablation (Sec. IV-E): dependency-tree mention resolution
// vs score-only pairing. The paper motivates structural closeness with
// the director/actor ambiguity; this bench quantifies what the tree buys
// on the full pipeline. A second section ablates the annotation-noise
// augmentation used during seq2seq training (a training-robustness
// choice introduced by this implementation, documented in DESIGN.md).

#include "bench/bench_util.h"

#include "core/trainer.h"

namespace nlidb {
namespace bench {
namespace {

int Run() {
  PrintHeader(
      "Ablation: dependency-tree resolution & annotation-noise training\n"
      "columns: dev Acc_lf Acc_qm Acc_ex | test Acc_lf Acc_qm Acc_ex");
  BenchEnv env = MakeEnv();
  auto pipeline = TrainPipeline(env);
  PrintAccuracyRow("full (tree resolution)",
                   eval::EvaluatePipeline(*pipeline, env.splits.dev),
                   eval::EvaluatePipeline(*pipeline, env.splits.test));

  {
    std::printf("[train] score-only resolution (no dependency tree)\n");
    core::ModelConfig config = env.config;
    config.use_dependency_resolution = false;
    core::NlidbPipeline variant(config, env.provider);
    variant.Train(env.splits.train);
    PrintAccuracyRow("- tree resolution",
                     eval::EvaluatePipeline(variant, env.splits.dev),
                     eval::EvaluatePipeline(variant, env.splits.test));
  }

  {
    std::printf("[train] no annotation-noise augmentation\n");
    core::ModelConfig config = env.config;
    config.annotation_noise_probability = 0.0f;
    core::NlidbPipeline variant(config, env.provider);
    variant.Train(env.splits.train);
    PrintAccuracyRow("- annotation noise",
                     eval::EvaluatePipeline(variant, env.splits.dev),
                     eval::EvaluatePipeline(variant, env.splits.test));
  }

  std::printf(
      "\nExpected shape: both ablations score below the full system —\n"
      "tree resolution matters most for questions with several same-kind\n"
      "columns (director/actor), noise training for the exposure gap\n"
      "between gold and predicted annotations.\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace nlidb

int main() { return nlidb::bench::Run(); }
