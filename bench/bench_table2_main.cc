// Reproduces Table II (main comparison rows): Seq2SQL-style pointer
// baseline, SQLNet/TypeSQL-style sketch baseline, and the annotated
// seq2seq (ours), evaluated on dev and test of the WikiSQL-style corpus
// with logical-form / query-match / execution accuracy.
//
// Expected shape (paper): ours > sketch > pointer-seq2sql on Acc_qm,
// with Acc_ex above Acc_qm for every system.

#include "bench/bench_util.h"

#include "baselines/pointer_seq2sql.h"
#include "baselines/sketch_slot_filler.h"

namespace nlidb {
namespace bench {
namespace {

int Run() {
  PrintHeader(
      "Table II (main rows): model comparison on the WikiSQL-style corpus\n"
      "columns: dev Acc_lf Acc_qm Acc_ex | test Acc_lf Acc_qm Acc_ex");
  BenchEnv env = MakeEnv();

  // --- Seq2SQL-style pointer baseline (no annotation) ------------------
  {
    std::printf("[train] pointer seq2sql (Seq2SQL-style, no annotation)\n");
    baselines::PointerSeq2Sql model(env.config);
    model.Train(env.splits.train);
    auto translate = [&model](const data::Example& ex) {
      return model.Translate(ex.tokens, *ex.table);
    };
    PrintAccuracyRow("Seq2SQL-style (pointer)",
                     eval::Evaluate(env.splits.dev, translate),
                     eval::Evaluate(env.splits.test, translate));
  }

  // --- SQLNet/TypeSQL-style sketch baseline ------------------------------
  {
    std::printf("[train] sketch slot filler (SQLNet/TypeSQL-style)\n");
    baselines::SketchSlotFiller model(env.config, env.provider);
    model.Train(env.splits.train);
    auto translate = [&model](const data::Example& ex) {
      return model.Translate(ex.tokens, *ex.table);
    };
    PrintAccuracyRow("SQLNet-style (sketch)",
                     eval::Evaluate(env.splits.dev, translate),
                     eval::Evaluate(env.splits.test, translate));
  }

  // --- Ours: annotated seq2seq ------------------------------------------
  {
    auto pipeline = TrainPipeline(env);
    PrintAccuracyRow("Annotated Seq2seq (ours)",
                     eval::EvaluatePipeline(*pipeline, env.splits.dev),
                     eval::EvaluatePipeline(*pipeline, env.splits.test));
  }

  std::printf(
      "\npaper Table II test Acc_qm/Acc_ex: Seq2SQL 51.6/60.4, SQLNet\n"
      "61.3/68.0, ours 75.6/83.6 — the reproduction target is the ordering\n"
      "(ours > sketch > pointer) and Acc_ex > Acc_qm per row.\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace nlidb

int main() { return nlidb::bench::Run(); }
