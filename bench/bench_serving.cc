// Multi-tenant serving benchmark: open-loop synthetic clients against
// the ServingEngine (DESIGN.md §13), at 1 and 8 workers with the
// cross-request batcher on and off.
//
// Reports, and merges into BENCH_serving.json:
//   - sustained QPS and e2e p50/p99/p999 per configuration (the
//     acceptance metric: >= 500 QPS sustained at 8 workers);
//   - shed / reject rates under ~1.5x-capacity overload with mixed
//     deadline tiers (none / generous / infeasibly tight);
//   - the batch-occupancy histogram from the cross-request decoder
//     (how many queries actually shared each gate-GEMM tick).
//
//   ./build/bench/bench_serving [--smoke]
//
// --smoke trains a tiny corpus, submits the smoke queries concurrently
// through the engine and asserts every ServedResult is bitwise
// identical (tokens, float score bits, statuses) to the sequential
// pipeline.Query() answer, then skips the JSON merge; CI uses it to
// gate Release builds. The committed BENCH_serving.json comes from a
// full local run.

#include "bench/bench_util.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
// Synthetic clients need to sleep until their arrival time and block in
// Ticket::Take(), which the shared compute pool must never do; the
// bench drives the engine the way external clients would.
#include <thread>
#include <utility>
#include <vector>

#include "bench/bench_json.h"
#include "common/metrics.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "serving/serving.h"

namespace nlidb {
namespace bench {
namespace {

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// q-th percentile (0..1) of `samples`; sorts a copy.
uint64_t PercentileNs(std::vector<uint64_t> samples, double q) {
  if (samples.empty()) return 0;
  std::sort(samples.begin(), samples.end());
  size_t idx = static_cast<size_t>(q * static_cast<double>(samples.size()));
  if (idx >= samples.size()) idx = samples.size() - 1;
  return samples[idx];
}

/// One synthetic client: a question, a Poisson-process arrival offset
/// and a deadline tier.
struct ClientPlan {
  const data::Example* example = nullptr;
  uint64_t arrival_offset_ns = 0;
  uint64_t deadline_ns = 0;  // 0 = no deadline
};

/// Open-loop arrival schedule: exponential interarrivals at
/// `offered_qps`, questions drawn uniformly from `corpus`, deadlines
/// mixed 35% none / 50% generous / 15% infeasibly tight (tight ones
/// exercise admission shedding; generous ones shed only when the queue
/// backs up).
std::vector<ClientPlan> MakePlan(const data::Dataset& corpus, int clients,
                                 double offered_qps, uint64_t generous_ns,
                                 uint64_t tight_ns, uint64_t seed) {
  Rng rng(seed);
  std::vector<ClientPlan> plan;
  plan.reserve(static_cast<size_t>(clients));
  double t_ns = 0.0;
  for (int i = 0; i < clients; ++i) {
    ClientPlan c;
    c.example =
        &corpus.examples[rng.NextUint64(corpus.examples.size())];
    const double u = static_cast<double>(rng.NextFloat());
    t_ns += -std::log(1.0 - u) / offered_qps * 1e9;
    c.arrival_offset_ns = static_cast<uint64_t>(t_ns);
    const float tier = rng.NextFloat();
    if (tier < 0.35f) {
      c.deadline_ns = 0;
    } else if (tier < 0.85f) {
      c.deadline_ns = generous_ns;
    } else {
      c.deadline_ns = tight_ns;
    }
    plan.push_back(c);
  }
  return plan;
}

struct LoadStats {
  double wall_s = 0.0;
  double qps = 0.0;  // successfully answered queries / wall_s
  long long ok = 0;
  uint64_t p50_ns = 0;
  uint64_t p99_ns = 0;
  uint64_t p999_ns = 0;
  long long admitted = 0;
  long long shed = 0;
  long long rejected = 0;
  long long deadline_misses = 0;
  long long batch_ticks = 0;
  long long batch_rows = 0;
  std::vector<int64_t> occupancy;
};

/// Drives `plan` through a fresh engine: 16 submitter threads multiplex
/// the synthetic clients, each sleeping until its client's arrival time
/// (open loop: arrivals never wait for responses), then collect every
/// ticket. Counters are read from a clean registry afterwards.
LoadStats RunLoad(const core::NlidbPipeline& pipeline,
                  const std::vector<ClientPlan>& plan, int workers,
                  bool batching) {
  metrics::MetricsRegistry::Global().ResetAll();
  serving::ServingOptions options;
  options.num_workers = workers;
  options.cross_request_batching = batching;
  options.queue_capacity = 512;
  options.max_batch = 8;
  serving::ServingEngine engine(pipeline, options);

  const int kSubmitters = 8;
  std::vector<std::vector<serving::ServedResult>> results(kSubmitters);
  // nlidb-lint: disable(raw-thread)
  std::vector<std::thread> clients;
  clients.reserve(kSubmitters);
  const uint64_t start = NowNs();
  for (int s = 0; s < kSubmitters; ++s) {
    clients.emplace_back([&, s] {
      std::vector<std::shared_ptr<serving::ServingEngine::Ticket>> tickets;
      for (size_t i = static_cast<size_t>(s); i < plan.size();
           i += kSubmitters) {
        const ClientPlan& c = plan[i];
        const uint64_t at = start + c.arrival_offset_ns;
        const uint64_t now = NowNs();
        if (at > now) {
          std::this_thread::sleep_for(std::chrono::nanoseconds(at - now));
        }
        core::QueryRequest request;
        request.schema_ref = core::SchemaRef::Table(c.example->table.get());
        request.tokens = c.example->tokens;
        request.collect_timings = false;
        if (c.deadline_ns != 0) {
          request.deadline = Deadline::AfterNanos(c.deadline_ns);
        }
        tickets.push_back(engine.Submit(std::move(request)));
      }
      for (auto& ticket : tickets) {
        results[s].push_back(ticket->Take());
      }
    });
  }
  for (auto& client : clients) client.join();
  const uint64_t wall_ns = NowNs() - start;

  LoadStats stats;
  stats.occupancy = engine.decoder().OccupancyCounts();
  engine.Shutdown();

  std::vector<uint64_t> e2e;
  for (const auto& shard : results) {
    for (const serving::ServedResult& served : shard) {
      if (!served.status.ok()) continue;
      ++stats.ok;
      e2e.push_back(served.e2e_ns);
    }
  }
  stats.wall_s = static_cast<double>(wall_ns) / 1e9;
  stats.qps = stats.wall_s > 0
                  ? static_cast<double>(stats.ok) / stats.wall_s
                  : 0.0;
  stats.p50_ns = PercentileNs(e2e, 0.5);
  stats.p99_ns = PercentileNs(e2e, 0.99);
  stats.p999_ns = PercentileNs(e2e, 0.999);

  auto& reg = metrics::MetricsRegistry::Global();
  stats.admitted = reg.GetCounter("serving.admitted").Value();
  stats.shed = reg.GetCounter("serving.shed").Value();
  stats.rejected = reg.GetCounter("serving.rejected_queue_full").Value() +
                   reg.GetCounter("serving.rejected_shutdown").Value();
  stats.deadline_misses = reg.GetCounter("serving.deadline_misses").Value();
  stats.batch_ticks = reg.GetCounter("serving.batch.ticks").Value();
  stats.batch_rows = reg.GetCounter("serving.batch.rows").Value();
  return stats;
}

/// Mean service time of a sequential pipeline.Query over `limit`
/// corpus examples; calibrates the offered load (and warms caches).
uint64_t CalibrateServiceNs(const core::NlidbPipeline& pipeline,
                            const data::Dataset& corpus, int limit) {
  uint64_t total = 0;
  int n = 0;
  for (const data::Example& ex : corpus.examples) {
    core::QueryRequest request;
    request.schema_ref = core::SchemaRef::Table(ex.table.get());
    request.tokens = ex.tokens;
    request.collect_timings = false;
    const uint64_t t0 = NowNs();
    StatusOr<core::QueryResult> result = pipeline.Query(request);
    (void)result;
    total += NowNs() - t0;
    if (++n >= limit) break;
  }
  return n > 0 ? total / static_cast<uint64_t>(n) : 0;
}

/// Smoke gate: submit every smoke query through the engine N times
/// concurrently (so ticks really batch) and require each ServedResult
/// to match the sequential pipeline answer bit for bit: same s^a
/// tokens, same translate_score float bits, same statuses.
bool SmokeEquivalence(const core::NlidbPipeline& pipeline,
                      const data::Dataset& corpus, int limit) {
  struct Expected {
    const data::Example* example;
    StatusOr<core::QueryResult> sequential;
  };
  std::vector<Expected> expected;
  int n = 0;
  for (const data::Example& ex : corpus.examples) {
    core::QueryRequest request;
    request.schema_ref = core::SchemaRef::Table(ex.table.get());
    request.tokens = ex.tokens;
    expected.push_back({&ex, pipeline.Query(request)});
    if (++n >= limit) break;
  }

  serving::ServingOptions options;
  options.num_workers = 4;
  options.cross_request_batching = true;
  options.max_batch = 8;
  serving::ServingEngine engine(pipeline, options);

  const int kRounds = 4;
  std::vector<std::shared_ptr<serving::ServingEngine::Ticket>> tickets;
  std::vector<size_t> which;
  for (int round = 0; round < kRounds; ++round) {
    for (size_t i = 0; i < expected.size(); ++i) {
      core::QueryRequest request;
      request.schema_ref = core::SchemaRef::Table(expected[i].example->table.get());
      request.tokens = expected[i].example->tokens;
      tickets.push_back(engine.Submit(std::move(request)));
      which.push_back(i);
    }
  }
  int compared = 0;
  for (size_t t = 0; t < tickets.size(); ++t) {
    serving::ServedResult served = tickets[t]->Take();
    const Expected& exp = expected[which[t]];
    if (served.status.ok() != exp.sequential.ok()) {
      std::printf("SMOKE FAIL: query %zu status diverged (%s vs %s)\n",
                  which[t], served.status.ToString().c_str(),
                  exp.sequential.status().ToString().c_str());
      return false;
    }
    if (!served.status.ok()) continue;
    const core::QueryResult& seq = exp.sequential.value();
    if (served.result.annotated_sql != seq.annotated_sql) {
      std::printf("SMOKE FAIL: query %zu decoded s^a diverged\n", which[t]);
      return false;
    }
    uint32_t served_bits = 0;
    uint32_t seq_bits = 0;
    std::memcpy(&served_bits, &served.result.translate_score,
                sizeof(served_bits));
    std::memcpy(&seq_bits, &seq.translate_score, sizeof(seq_bits));
    if (served_bits != seq_bits) {
      std::printf(
          "SMOKE FAIL: query %zu score bits diverged (%08x vs %08x)\n",
          which[t], served_bits, seq_bits);
      return false;
    }
    ++compared;
  }
  std::printf("smoke: engine matched sequential on %d served queries\n",
              compared);
  return true;
}

int Run(bool smoke) {
  PrintHeader("Multi-tenant serving: cross-request batching under load");

  BenchEnv env;
  // Tiny in full mode too, with 24-dim embeddings and greedy decode:
  // this bench stresses the scheduler and the cross-request batcher at
  // the high-QPS serving point (beam 1 is also where batching matters
  // most — sequential ticks degenerate to single-row GEMMs), so
  // per-query model cost is kept small enough that throughput reflects
  // harness behavior, not model FLOPs (model latency has its own
  // benches: bench_decoder, bench_stage_breakdown). Smoke keeps the
  // defaults so the equivalence gate covers real beam search.
  env.provider = std::make_shared<text::EmbeddingProvider>(smoke ? 48 : 24);
  data::RegisterDomainClusters(*env.provider);
  data::GeneratorConfig gc;
  gc.num_tables = smoke ? 6 : EnvTables(24);
  gc.questions_per_table = smoke ? 4 : 8;
  gc.seed = 1;
  env.splits = data::GenerateWikiSqlSplits(gc);
  env.config = core::ModelConfig::Tiny();
  if (!smoke) env.config.beam_width = 1;
  env.config.word_dim = env.provider->dim();
  auto pipeline = TrainPipeline(env);

  // Workers are the unit of concurrency under test; the inner compute
  // pool stays at 1 thread so the two parallelism layers do not fight
  // over cores (the kernel contract keeps results identical either way).
  ThreadPool::SetGlobalParallelism(1);

  if (smoke) {
    const bool ok = SmokeEquivalence(*pipeline, env.splits.test, 4);
    ThreadPool::SetGlobalParallelism(ThreadPool::DefaultParallelism());
    return ok ? 0 : 1;
  }

  const uint64_t service_ns =
      CalibrateServiceNs(*pipeline, env.splits.test, 32);
  std::printf("[calibrate] sequential service time %.3f ms/query\n",
              static_cast<double>(service_ns) / 1e6);

  // Deadline tiers scale with the calibrated service time: the tight
  // tier is infeasible by construction (it exercises admission
  // shedding), the generous tier absorbs queueing plus the latency
  // stretch of deep worker interleaving and only sheds when the queue
  // truly backs up.
  const int clients = 1600;
  const uint64_t generous_ns = 400 * service_ns;
  const uint64_t tight_ns = service_ns / 4;
  const int hw = ThreadPool::DefaultParallelism();
  FlatJson json = FlatJson::Load(ServingJsonPath());
  json.Set("serving_clients", clients);
  json.Set("serving_mean_service_ns", static_cast<double>(service_ns));
  json.Set("serving_hw_parallelism", hw);

  double qps_w8_batch = 0.0;
  for (const int workers : {1, 8}) {
    // The sequential calibration misses scheduler overhead (submitters,
    // condvar churn, worker interleaving), so a short deadline-free
    // pilot measures what the full serving stack actually sustains at
    // this worker count; the measured run then offers ~1.1x that —
    // enough overload that the queue backs up and the deadline
    // machinery earns its keep, not so much that sheds dominate.
    const double capacity =
        service_ns > 0
            ? std::min(workers, hw) * 1e9 / static_cast<double>(service_ns)
            : 1000.0;
    const std::vector<ClientPlan> pilot_plan =
        MakePlan(env.splits.test, 300, capacity, 0, 0, /*seed=*/3);
    const LoadStats pilot =
        RunLoad(*pipeline, pilot_plan, workers, /*batching=*/true);
    const double sustained = std::max(pilot.qps, 50.0);
    const double offered_qps = 1.15 * sustained;
    std::printf("[pilot] w%d sustains %.0f qps; offering %.0f qps\n",
                workers, sustained, offered_qps);
    json.Set(std::string("serving_pilot_qps_w") + std::to_string(workers),
             sustained);
    json.Set(std::string("serving_offered_qps_w") + std::to_string(workers),
             offered_qps);
    for (const bool batching : {false, true}) {
      const std::vector<ClientPlan> plan =
          MakePlan(env.splits.test, clients, offered_qps, generous_ns,
                   tight_ns, /*seed=*/7);
      LoadStats stats = RunLoad(*pipeline, plan, workers, batching);
      const double shed_rate =
          stats.admitted > 0
              ? static_cast<double>(stats.shed) / stats.admitted
              : 0.0;
      const std::string sfx = std::string("w") + std::to_string(workers) +
                              (batching ? "_batch" : "_seq");
      std::printf(
          "%-9s  %7.0f qps  ok %4lld/%d  p50 %7.2f ms  p99 %7.2f ms  "
          "p999 %7.2f ms  shed %4.1f%%  rejected %lld\n",
          sfx.c_str(), stats.qps, stats.ok, clients,
          stats.p50_ns / 1e6, stats.p99_ns / 1e6, stats.p999_ns / 1e6,
          100.0 * shed_rate, stats.rejected);
      json.Set("serving_qps_" + sfx, stats.qps);
      json.Set("serving_ok_" + sfx, stats.ok);
      json.Set("serving_p50_ns_" + sfx, static_cast<double>(stats.p50_ns));
      json.Set("serving_p99_ns_" + sfx, static_cast<double>(stats.p99_ns));
      json.Set("serving_p999_ns_" + sfx, static_cast<double>(stats.p999_ns));
      json.Set("serving_shed_rate_" + sfx, shed_rate);
      json.Set("serving_rejected_" + sfx, stats.rejected);
      json.Set("serving_deadline_misses_" + sfx, stats.deadline_misses);
      if (batching) {
        if (workers == 8) qps_w8_batch = stats.qps;
        const double rows_per_tick =
            stats.batch_ticks > 0 ? static_cast<double>(stats.batch_rows) /
                                        static_cast<double>(stats.batch_ticks)
                                  : 0.0;
        json.Set("serving_batch_rows_per_tick_" + sfx, rows_per_tick);
        // Occupancy histogram: how many queries shared each tick's gate
        // GEMMs (bucket 16 = 16 or more).
        int64_t occ_ticks = 0;
        int64_t occ_weighted = 0;
        std::printf("  occupancy:");
        for (size_t b = 1; b < stats.occupancy.size(); ++b) {
          occ_ticks += stats.occupancy[b];
          occ_weighted += static_cast<int64_t>(b) * stats.occupancy[b];
          if (stats.occupancy[b] > 0) {
            std::printf(" %zu:%lld", b,
                        static_cast<long long>(stats.occupancy[b]));
            json.Set("serving_occ_" + std::to_string(b) + "_" + sfx,
                     static_cast<long long>(stats.occupancy[b]));
          }
        }
        const double occ_mean =
            occ_ticks > 0 ? static_cast<double>(occ_weighted) /
                                static_cast<double>(occ_ticks)
                          : 0.0;
        std::printf("  (mean %.2f queries/tick)\n", occ_mean);
        json.Set("serving_occ_mean_" + sfx, occ_mean);
      }
    }
  }
  ThreadPool::SetGlobalParallelism(ThreadPool::DefaultParallelism());

  std::printf("\nacceptance: 8-worker batched QPS %.0f (target >= 500) %s\n",
              qps_w8_batch, qps_w8_batch >= 500.0 ? "PASS" : "FAIL");

  if (!json.Save(ServingJsonPath())) {
    std::printf("cannot write %s\n", ServingJsonPath());
    return 1;
  }
  std::printf("merged %s (%zu keys)\n", ServingJsonPath(), json.size());
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace nlidb

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  return nlidb::bench::Run(smoke);
}
