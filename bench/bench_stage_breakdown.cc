// Per-stage latency breakdown of the structured Query() pipeline, from
// the stage timing tree the observability layer attaches to every
// QueryResult. Runs the held-out corpus end to end (annotate ->
// translate -> recover -> execute) at 1 and 8 pool threads, prints the
// mean wall time per stage, dumps the process metrics registry, and
// merges everything into BENCH_observability.json.
//
//   ./build/bench/bench_stage_breakdown [--smoke]
//
// --smoke trains a tiny corpus and runs a handful of queries; CI uses
// it to assert the instrumented pipeline works in Release builds.

#include "bench/bench_util.h"

#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "bench/bench_json.h"
#include "common/metrics.h"
#include "common/thread_pool.h"

namespace nlidb {
namespace bench {
namespace {

struct StageStats {
  uint64_t total_ns = 0;
  int count = 0;
};

// Runs every test example through Query() and accumulates the per-stage
// wall time the pipeline reports. Returns stage -> stats plus a "total"
// entry for the whole request.
std::map<std::string, StageStats> RunCorpus(
    const core::NlidbPipeline& pipeline, const data::Dataset& dataset,
    int limit) {
  std::map<std::string, StageStats> stats;
  int done = 0;
  for (const data::Example& ex : dataset.examples) {
    core::QueryRequest request;
    request.schema_ref = core::SchemaRef::Table(ex.table.get());
    request.tokens = ex.tokens;
    StatusOr<core::QueryResult> result = pipeline.Query(request);
    if (!result.ok()) continue;
    StageStats& total = stats["total"];
    total.total_ns += result->stages.wall_ns;
    total.count += 1;
    for (const core::StageTiming& stage : result->stages.children) {
      StageStats& s = stats[stage.name];
      s.total_ns += stage.wall_ns;
      s.count += 1;
    }
    if (++done >= limit) break;
  }
  return stats;
}

int Run(bool smoke) {
  PrintHeader("Pipeline stage breakdown (observability layer)");

  BenchEnv env;
  env.provider = std::make_shared<text::EmbeddingProvider>();
  data::RegisterDomainClusters(*env.provider);
  data::GeneratorConfig gc;
  gc.num_tables = smoke ? 6 : EnvTables(36);
  gc.questions_per_table = smoke ? 4 : 8;
  gc.seed = 1;
  env.splits = data::GenerateWikiSqlSplits(gc);
  env.config = smoke ? core::ModelConfig::Tiny() : core::ModelConfig::Small();
  env.config.word_dim = env.provider->dim();
  auto pipeline = TrainPipeline(env);

  const int limit = smoke ? 4 : 64;
  FlatJson json = FlatJson::Load(ObservabilityJsonPath());

  // The stage ordering the pipeline reports; map iteration is sorted by
  // name, so keep an explicit print order.
  const std::vector<std::string> stage_order = {
      "tokenize", "annotate", "build_qa", "translate",
      "recover",  "execute",  "total"};

  for (int threads : {1, 8}) {
    ThreadPool::SetGlobalParallelism(threads);
    const auto stats = RunCorpus(*pipeline, env.splits.test, limit);
    ThreadPool::SetGlobalParallelism(ThreadPool::DefaultParallelism());

    std::printf("\n--- mean wall time per stage, threads=%d (n=%d) ---\n",
                threads, stats.count("total") ? stats.at("total").count : 0);
    for (const std::string& name : stage_order) {
      auto it = stats.find(name);
      if (it == stats.end() || it->second.count == 0) continue;
      const double mean_ns =
          static_cast<double>(it->second.total_ns) / it->second.count;
      std::printf("%-10s %12.0f ns  %8.3f ms\n", name.c_str(), mean_ns,
                  mean_ns / 1e6);
      if (!smoke) {
        json.Set("stage_" + name + "_ns_t" + std::to_string(threads),
                 mean_ns);
      }
    }
  }

  // Process-wide metrics accumulated while the corpus ran: counters from
  // the annotator/seq2seq/executor hot paths plus the request histogram.
  std::printf("\n--- metrics registry ---\n%s",
              metrics::MetricsRegistry::Global().RenderText().c_str());
  metrics::Histogram& latency =
      metrics::MetricsRegistry::Global().GetHistogram("pipeline.latency_ns");
  if (!smoke && latency.Count() > 0) {
    json.Set("query_p50_ns",
             static_cast<double>(latency.ApproxPercentileNs(0.5)));
    json.Set("query_p99_ns",
             static_cast<double>(latency.ApproxPercentileNs(0.99)));
    json.Set("queries_timed", static_cast<long long>(latency.Count()));
    json.Set("bench_threads_swept", 8);
    if (!json.Save(ObservabilityJsonPath())) {
      std::printf("cannot write %s\n", ObservabilityJsonPath());
      return 1;
    }
    std::printf("\nmerged %s (%zu keys)\n", ObservabilityJsonPath(),
                json.size());
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace nlidb

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  return nlidb::bench::Run(smoke);
}
