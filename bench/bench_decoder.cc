// Decoder fast-path benchmark: the graph-free batched-beam inference
// path (DecodeMode::kFast) against the tape-based reference decoder,
// on the same trained model and held-out corpus.
//
// Reports, and merges into BENCH_decoder.json:
//   - translate-stage p50/p99 per query at 1 and 8 pool threads, for
//     the reference and fast decoders (the acceptance metric: fast p50
//     at 1 thread vs the BENCH_observability.json baseline);
//   - per-step decode cost and steps/sec at beam widths 1 and 4, from
//     the seq2seq.decode_steps counter delta around timed decodes;
//   - GEMM dispatch tier counters (gemm.dispatch.{base,avx2}) so a
//     regression in kernel selection is visible next to the latency.
//
//   ./build/bench/bench_decoder [--smoke]
//
// --smoke trains a tiny corpus, checks the fast path produces the same
// s^a as the reference on every smoke query, and skips the JSON merge;
// CI uses it to gate Release builds.

#include "bench/bench_util.h"

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_json.h"
#include "common/metrics.h"
#include "common/thread_pool.h"
#include "core/seq2seq.h"

namespace nlidb {
namespace bench {
namespace {

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// q-th percentile (0..1) of `samples`; sorts a copy.
uint64_t PercentileNs(std::vector<uint64_t> samples, double q) {
  if (samples.empty()) return 0;
  std::sort(samples.begin(), samples.end());
  size_t idx = static_cast<size_t>(q * static_cast<double>(samples.size()));
  if (idx >= samples.size()) idx = samples.size() - 1;
  return samples[idx];
}

struct CorpusRun {
  std::vector<uint64_t> translate_ns;            // per successful query
  std::vector<std::string> decoded_sa;           // joined s^a per query
  std::vector<std::vector<std::string>> sources;  // q^a fed to the decoder
};

/// Runs every test example through Query() under the pipeline's current
/// decode mode and collects the translate-stage wall time plus the
/// decoded s^a (for the smoke-mode agreement check).
CorpusRun RunCorpus(const core::NlidbPipeline& pipeline,
                    const data::Dataset& dataset, int limit) {
  CorpusRun run;
  int done = 0;
  for (const data::Example& ex : dataset.examples) {
    core::QueryRequest request;
    request.schema_ref = core::SchemaRef::Table(ex.table.get());
    request.tokens = ex.tokens;
    StatusOr<core::QueryResult> result = pipeline.Query(request);
    if (!result.ok()) continue;
    const core::StageTiming* translate = result->stages.Child("translate");
    if (translate != nullptr) run.translate_ns.push_back(translate->wall_ns);
    std::string sa;
    for (const std::string& tok : result->annotated_sql) {
      if (!sa.empty()) sa += ' ';
      sa += tok;
    }
    run.decoded_sa.push_back(sa);
    run.sources.push_back(result->annotated_question);
    if (++done >= limit) break;
  }
  return run;
}

const char* ModeName(core::DecodeMode mode) {
  switch (mode) {
    case core::DecodeMode::kReference: return "reference";
    case core::DecodeMode::kReferenceMasked: return "reference_masked";
    case core::DecodeMode::kFastUnmasked: return "fast_unmasked";
    case core::DecodeMode::kFast: return "fast";
  }
  return "?";
}

int Run(bool smoke) {
  PrintHeader("Decoder fast path vs reference (graph-free batched beam)");

  BenchEnv env;
  env.provider = std::make_shared<text::EmbeddingProvider>();
  data::RegisterDomainClusters(*env.provider);
  data::GeneratorConfig gc;
  gc.num_tables = smoke ? 6 : EnvTables(36);
  gc.questions_per_table = smoke ? 4 : 8;
  gc.seed = 1;
  env.splits = data::GenerateWikiSqlSplits(gc);
  env.config = smoke ? core::ModelConfig::Tiny() : core::ModelConfig::Small();
  env.config.word_dim = env.provider->dim();
  auto pipeline = TrainPipeline(env);
  core::Seq2SeqTranslator* translator =
      pipeline->MutableForTraining().translator;

  const int limit = smoke ? 4 : 64;
  FlatJson json = FlatJson::Load(DecoderJsonPath());

  // --- end-to-end translate-stage latency, reference vs fast ---------
  // Same corpus sweep as bench_stage_breakdown, so the reference
  // numbers line up with BENCH_observability.json's stage_translate_*.
  std::vector<CorpusRun> smoke_runs;
  for (const core::DecodeMode mode :
       {core::DecodeMode::kReference, core::DecodeMode::kFastUnmasked,
        core::DecodeMode::kFast}) {
    translator->set_decode_mode(mode);
    for (int threads : {1, 8}) {
      ThreadPool::SetGlobalParallelism(threads);
      CorpusRun run = RunCorpus(*pipeline, env.splits.test, limit);
      ThreadPool::SetGlobalParallelism(ThreadPool::DefaultParallelism());
      const uint64_t p50 = PercentileNs(run.translate_ns, 0.5);
      const uint64_t p99 = PercentileNs(run.translate_ns, 0.99);
      std::printf(
          "translate %-14s t%d  n=%3zu  p50 %8.3f ms  p99 %8.3f ms\n",
          ModeName(mode), threads, run.translate_ns.size(), p50 / 1e6,
          p99 / 1e6);
      if (!smoke) {
        const std::string key = std::string("translate_p50_ns_") +
                                ModeName(mode) + "_t" +
                                std::to_string(threads);
        json.Set(key, static_cast<double>(p50));
        json.Set(std::string("translate_p99_ns_") + ModeName(mode) + "_t" +
                     std::to_string(threads),
                 static_cast<double>(p99));
      }
      if (threads == 1) smoke_runs.push_back(std::move(run));
    }
  }

  // Smoke gate: the unmasked fast path must decode the exact token
  // sequences the reference produced (the bitwise contract, observed
  // through s^a), and every run must cover the smoke corpus.
  if (smoke) {
    const CorpusRun& ref = smoke_runs[0];           // kReference, t1
    const CorpusRun& fast_unmasked = smoke_runs[1];  // kFastUnmasked, t1
    if (ref.decoded_sa.empty() ||
        ref.decoded_sa.size() != fast_unmasked.decoded_sa.size()) {
      std::printf("SMOKE FAIL: corpus coverage mismatch (%zu vs %zu)\n",
                  ref.decoded_sa.size(), fast_unmasked.decoded_sa.size());
      return 1;
    }
    for (size_t i = 0; i < ref.decoded_sa.size(); ++i) {
      if (ref.decoded_sa[i] != fast_unmasked.decoded_sa[i]) {
        std::printf("SMOKE FAIL: query %zu diverged\n  ref:  %s\n  fast: %s\n",
                    i, ref.decoded_sa[i].c_str(),
                    fast_unmasked.decoded_sa[i].c_str());
        return 1;
      }
    }
    std::printf("smoke: fast path matched reference on %zu queries\n",
                ref.decoded_sa.size());
  }

  // --- per-step decode cost at beam widths 1 and 4 --------------------
  // Timed directly on the decoder entry point with the q^a sources the
  // corpus produced; steps come from the seq2seq.decode_steps counter
  // delta, so the cost is per emitted beam-step, not per query.
  metrics::Counter& decode_steps =
      metrics::MetricsRegistry::Global().GetCounter("seq2seq.decode_steps");
  metrics::Counter& gemm_base =
      metrics::MetricsRegistry::Global().GetCounter("gemm.dispatch.base");
  metrics::Counter& gemm_avx2 =
      metrics::MetricsRegistry::Global().GetCounter("gemm.dispatch.avx2");
  const std::vector<std::vector<std::string>>& sources =
      smoke_runs.front().sources;
  const int reps = smoke ? 1 : 4;
  ThreadPool::SetGlobalParallelism(1);
  for (const core::DecodeMode mode :
       {core::DecodeMode::kReference, core::DecodeMode::kFast}) {
    translator->set_decode_mode(mode);
    for (int beam : {1, 4}) {
      const int64_t steps_before = decode_steps.Value();
      const int64_t base_before = gemm_base.Value();
      const int64_t avx2_before = gemm_avx2.Value();
      const uint64_t t0 = NowNs();
      int decoded = 0;
      for (int r = 0; r < reps; ++r) {
        for (const std::vector<std::string>& source : sources) {
          if (translator->DecodeWithBeamWidth(source, beam).ok()) ++decoded;
        }
      }
      const uint64_t elapsed = NowNs() - t0;
      const int64_t steps = decode_steps.Value() - steps_before;
      const double ns_per_step =
          steps > 0 ? static_cast<double>(elapsed) / steps : 0.0;
      const double steps_per_sec =
          elapsed > 0 ? steps * 1e9 / static_cast<double>(elapsed) : 0.0;
      std::printf(
          "decode %-10s beam=%d  %4d decodes  %7lld steps  "
          "%9.0f ns/step  %9.0f steps/s\n",
          ModeName(mode), beam, decoded, static_cast<long long>(steps),
          ns_per_step, steps_per_sec);
      if (!smoke) {
        const std::string suffix =
            std::string(ModeName(mode)) + "_b" + std::to_string(beam);
        json.Set("decode_ns_per_step_" + suffix, ns_per_step);
        json.Set("decode_steps_per_sec_" + suffix, steps_per_sec);
        json.Set("gemm_base_calls_" + suffix,
                 static_cast<long long>(gemm_base.Value() - base_before));
        json.Set("gemm_avx2_calls_" + suffix,
                 static_cast<long long>(gemm_avx2.Value() - avx2_before));
      }
    }
  }
  ThreadPool::SetGlobalParallelism(ThreadPool::DefaultParallelism());

  std::printf("\n--- metrics registry ---\n%s",
              metrics::MetricsRegistry::Global().RenderText().c_str());

  if (!smoke) {
    json.Set("decode_bench_reps", reps);
    json.Set("decode_bench_sources",
             static_cast<long long>(sources.size()));
    if (!json.Save(DecoderJsonPath())) {
      std::printf("cannot write %s\n", DecoderJsonPath());
      return 1;
    }
    std::printf("\nmerged %s (%zu keys)\n", DecoderJsonPath(), json.size());
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace nlidb

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  return nlidb::bench::Run(smoke);
}
