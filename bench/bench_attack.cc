// Adversarial traffic flywheel benchmark (DESIGN.md "Adversarial
// robustness architecture"): mutate a held-out corpus with every
// attack operator, soak the ServingEngine with the mutants as paced
// open-loop traffic (mixed deadline tiers + random-delay failpoint
// schedule), triage every outcome into the per-mutator x per-stage
// matrix, then run one hardening turn and report the before/after
// accuracy-under-attack curve.
//
// Reports, and merges into BENCH_attack.json:
//   - the soak counter decomposition (must balance exactly) plus
//     lockdep findings (must be zero when the detector is on);
//   - the per-mutator x per-stage failure matrix and accuracy under
//     attack per mutator;
//   - the hardening curve: per-mutator accuracy baseline vs hardened,
//     worst-bucket before/after, and the clean-corpus control.
//
//   ./build/bench/bench_attack [--smoke]
//
// --smoke scales everything down (small corpus, short soak, one
// hardening turn with a low sample floor) but keeps every gate: CI's
// fault leg runs it under NLIDB_DEADLOCK=on with the random-delay
// schedule and uploads the JSON artifact. The committed
// BENCH_attack.json comes from a full local run; the full soak scales
// to millions of queries via NLIDB_ATTACK_QUERIES.
//
// Exit status: nonzero when the counter decomposition is imbalanced or
// the run produced lockdep reports (the robustness gates); accuracy
// numbers are reported, not gated, since they move with seeds.

#include "bench/bench_util.h"

#include <cstring>
#include <iterator>
#include <string>
#include <vector>

#include "attack/harden.h"
#include "attack/mutator.h"
#include "attack/soak.h"
#include "attack/triage.h"
#include "bench/bench_json.h"
#include "common/lockdep.h"
#include "common/thread_pool.h"

namespace nlidb {
namespace bench {
namespace {

/// Accuracy-under-attack keys for one offline matrix.
void ExportMatrix(FlatJson& json, const std::string& prefix,
                  const attack::AttackMatrix& matrix) {
  for (int r = 0; r <= attack::AttackMatrix::kCleanRow; ++r) {
    if (matrix.RowTotal(r) == 0) continue;
    const std::string row = attack::RowName(r);
    for (int s = 0; s < attack::kNumStages; ++s) {
      if (matrix.counts[r][s] == 0) continue;
      json.Set(prefix + "_" + row + "_" +
                   attack::StageName(static_cast<attack::FailStage>(s)),
               static_cast<long long>(matrix.counts[r][s]));
    }
    const double acc = matrix.RowAccuracy(r);
    if (acc >= 0.0) json.Set(prefix + "_acc_" + row, acc);
  }
}

int Run(bool smoke) {
  PrintHeader("Adversarial traffic flywheel: soak + hardening");

  BenchEnv env;
  env.provider = std::make_shared<text::EmbeddingProvider>();
  data::RegisterDomainClusters(*env.provider);
  data::GeneratorConfig gc;
  gc.num_tables = smoke ? 8 : EnvTables(24);
  gc.questions_per_table = smoke ? 4 : 8;
  gc.seed = 1;
  env.splits = data::GenerateWikiSqlSplits(gc);
  env.config = core::ModelConfig::Tiny();
  env.config.word_dim = env.provider->dim();
  auto pipeline = TrainPipeline(env);

  const attack::MutationEngine engine(attack::MutationConfig{13});

  // ---- Soak leg: mutated open-loop traffic through the engine. ----
  const std::vector<attack::Mutant> soak_corpus =
      engine.MutateCorpus(env.splits.test, attack::AllMutators(), /*salt=*/0);
  attack::SoakOptions soak_options = attack::SoakOptions::FromEnv();
  if (smoke) soak_options.queries = 2500;
  if (soak_options.random_delay_seed == 0) {
    soak_options.random_delay_seed = 99;  // schedule perturbation on
  }

  std::printf("[soak] %llu queries over %zu mutants (%zu test examples x "
              "%d mutators)\n",
              static_cast<unsigned long long>(soak_options.queries),
              soak_corpus.size(), env.splits.test.size(),
              attack::kNumMutators);
  // The engine's workers are the concurrency under test.
  ThreadPool::SetGlobalParallelism(1);
  const attack::SoakReport soak =
      attack::RunSoak(*pipeline, soak_corpus, soak_options);
  std::printf("%s", soak.ToString().c_str());

  FlatJson json = FlatJson::Load(AttackJsonPath());
  json.Set("attack_soak_queries",
           static_cast<long long>(soak_options.queries));
  json.Set("attack_soak_submitted", static_cast<long long>(soak.submitted));
  json.Set("attack_soak_admitted", static_cast<long long>(soak.admitted));
  json.Set("attack_soak_rejected_queue_full",
           static_cast<long long>(soak.rejected_queue_full));
  json.Set("attack_soak_rejected_shutdown",
           static_cast<long long>(soak.rejected_shutdown));
  json.Set("attack_soak_completed", static_cast<long long>(soak.completed));
  json.Set("attack_soak_shed", static_cast<long long>(soak.shed));
  json.Set("attack_soak_cancelled", static_cast<long long>(soak.cancelled));
  json.Set("attack_soak_deadline_misses",
           static_cast<long long>(soak.deadline_misses));
  json.Set("attack_soak_balanced", soak.counters_balanced ? 1 : 0);
  json.Set("attack_soak_lockdep_reports", soak.lockdep_reports);
  json.Set("attack_soak_failpoints_fired",
           static_cast<long long>(soak.failpoints_fired));
  json.Set("attack_soak_qps", soak.qps);
  json.Set("attack_soak_offered_qps", soak.offered_qps);
  json.Set("attack_soak_service_ns", static_cast<double>(soak.service_ns));
  json.Set("attack_soak_wall_s", soak.wall_s);
  ExportMatrix(json, "attack_soak", soak.matrix);

  // ---- Hardening leg: one flywheel turn on the offline matrices. ----
  attack::HardenOptions harden_options;
  if (smoke) harden_options.min_bucket_samples = 3;
  // Several independently-salted expansions of the held-out split: with
  // ~40 test examples a single pass puts only ~40 samples in each
  // mutator row, far too noisy to resolve a hardening delta.
  std::vector<attack::Mutant> attack_eval;
  for (uint64_t salt = 5; salt < (smoke ? 6u : 9u); ++salt) {
    std::vector<attack::Mutant> pass =
        engine.MutateCorpus(env.splits.test, attack::AllMutators(), salt);
    attack_eval.insert(attack_eval.end(),
                       std::make_move_iterator(pass.begin()),
                       std::make_move_iterator(pass.end()));
  }
  // The clean control pools both held-out splits: the no-regression
  // check needs tighter error bars than either split alone provides.
  data::Dataset clean_control = env.splits.dev;
  clean_control.tables.insert(clean_control.tables.end(),
                              env.splits.test.tables.begin(),
                              env.splits.test.tables.end());
  clean_control.examples.insert(clean_control.examples.end(),
                                env.splits.test.examples.begin(),
                                env.splits.test.examples.end());
  std::printf("\n[harden] baseline vs retrained on worst %d buckets "
              "(augmenting %zu train examples)\n",
              harden_options.buckets, env.splits.train.size());
  const attack::HardenReport harden =
      attack::Harden(*pipeline, env.provider, env.splits.train,
                     clean_control, attack_eval, engine, harden_options);
  ThreadPool::SetGlobalParallelism(ThreadPool::DefaultParallelism());

  std::printf("baseline under attack:\n%s",
              harden.baseline.Render().c_str());
  std::printf("hardened under attack:\n%s", harden.hardened.Render().c_str());
  std::printf("clean control: baseline %s | hardened %s\n",
              harden.clean_baseline.ToString().c_str(),
              harden.clean_hardened.ToString().c_str());

  std::string kinds;
  for (attack::MutatorKind kind : harden.hardened_kinds) {
    if (!kinds.empty()) kinds += ",";
    kinds += attack::MutatorName(kind);
  }
  json.SetString("attack_hardened_kinds", kinds);
  ExportMatrix(json, "attack_baseline", harden.baseline);
  ExportMatrix(json, "attack_hardened", harden.hardened);
  json.Set("attack_acc_clean_qm_baseline",
           static_cast<double>(harden.clean_baseline.acc_qm));
  json.Set("attack_acc_clean_qm_hardened",
           static_cast<double>(harden.clean_hardened.acc_qm));
  json.Set("attack_acc_clean_ex_baseline",
           static_cast<double>(harden.clean_baseline.acc_ex));
  json.Set("attack_acc_clean_ex_hardened",
           static_cast<double>(harden.clean_hardened.acc_ex));

  // The curve the flywheel exists for: the worst baseline bucket's
  // accuracy before vs after retraining, with the clean control.
  bool improved = !harden.hardened_kinds.empty();
  if (!harden.hardened_kinds.empty()) {
    const int worst = static_cast<int>(harden.hardened_kinds.front());
    const double before = harden.baseline.RowAccuracy(worst);
    const double after = harden.hardened.RowAccuracy(worst);
    improved = after >= before;
    std::printf("\nworst bucket %s: %.1f%% -> %.1f%% under attack  [%s]\n",
                attack::RowName(worst), 100.0 * before, 100.0 * after,
                after >= before ? "improved" : "REGRESSED");
    json.SetString("attack_worst_bucket", attack::RowName(worst));
    json.Set("attack_worst_acc_baseline", before);
    json.Set("attack_worst_acc_hardened", after);
  }
  const bool clean_held =
      harden.clean_hardened.acc_qm >= harden.clean_baseline.acc_qm - 0.02f;
  std::printf("clean control %s (qm %.1f%% -> %.1f%%)\n",
              clean_held ? "held" : "REGRESSED",
              100.0 * harden.clean_baseline.acc_qm,
              100.0 * harden.clean_hardened.acc_qm);
  std::printf("flywheel: %s\n",
              improved && clean_held ? "PASS" : "reported (not gated)");

  if (!json.Save(AttackJsonPath())) {
    std::printf("cannot write %s\n", AttackJsonPath());
    return 1;
  }
  std::printf("merged %s (%zu keys)\n", AttackJsonPath(), json.size());

  // Hard gates: accounting and lock discipline, never accuracy.
  if (!soak.counters_balanced) {
    std::printf("GATE FAIL: serving counter decomposition imbalanced\n");
    return 1;
  }
  if (soak.submitted != static_cast<int64_t>(soak_options.queries)) {
    std::printf("GATE FAIL: submitted %lld != planned %llu\n",
                static_cast<long long>(soak.submitted),
                static_cast<unsigned long long>(soak_options.queries));
    return 1;
  }
  if (soak.lockdep_reports > 0) {
    std::printf("GATE FAIL: %d lockdep reports\n%s", soak.lockdep_reports,
                lockdep::RenderReports().c_str());
    return 1;
  }
  std::printf("gates: counters balanced, %s\n",
              soak.lockdep_reports == 0 ? "lockdep clean"
                                        : "lockdep not enabled");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace nlidb

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  return nlidb::bench::Run(smoke);
}
