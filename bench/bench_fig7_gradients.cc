// Reproduces Figure 7: three WikiSQL influence-profile examples —
// column "year" mentioned through a bare year value, column "candidates"
// mentioned by its singular form, and "years in toronto" mentioned by
// "toronto ... 2006-07" — plotted at word and character level.

#include "bench/bench_util.h"

#include "common/strings.h"
#include "core/adversarial.h"
#include "core/trainer.h"
#include "text/tokenizer.h"

namespace nlidb {
namespace bench {
namespace {

void PlotInfluence(const core::ColumnMentionClassifier& classifier,
                   const core::AdversarialLocator& locator,
                   const std::string& question, const char* column) {
  const auto tokens = text::Tokenize(question);
  const auto column_tokens = SplitWhitespace(column);
  core::InfluenceProfile profile =
      locator.ComputeInfluence(classifier, tokens, column_tokens).value();
  float max_total = 0.0f;
  for (float v : profile.total) max_total = std::max(max_total, v);
  const text::Span located = locator.LocateSpan(profile);
  std::printf("\ncolumn [%s] in: \"%s\"\n", column, question.c_str());
  std::printf("%-14s %-8s %-8s %s\n", "token", "word", "char", "I(w)");
  for (size_t i = 0; i < tokens.size(); ++i) {
    std::printf("%-14s %7.4f %7.4f %s%s\n", tokens[i].c_str(),
                profile.word_level[i], profile.char_level[i],
                Bar(profile.total[i], max_total).c_str(),
                located.Contains(static_cast<int>(i)) ? "  <== mention" : "");
  }
}

int Run() {
  PrintHeader("Figure 7: WikiSQL-style adversarial gradient examples");
  BenchEnv env = MakeEnv();
  core::ColumnMentionClassifier classifier(env.config, *env.provider);
  std::printf("[setup] training classifier...\n");
  core::TrainColumnMentionClassifier(classifier, env.splits.train, env.config);
  core::AdversarialLocator locator(env.config);

  // (1) "year" inferred from a bare year token (implicit mention).
  PlotInfluence(classifier, locator,
                "which song was released in 2008 by the label motown ?",
                "year");
  // (2) a column mentioned by its singular form.
  PlotInfluence(classifier, locator,
                "who is the candidate affiliated with the green party ?",
                "candidate");
  // (3) the paper's "years in toronto" example: a season span mention.
  PlotInfluence(classifier, locator,
                "who played for the raptors on the toronto team in 2006-07 ?",
                "years in toronto");
  std::printf(
      "\npaper Fig. 7: gradients pinpoint '2008' for [year], 'candidate'\n"
      "for [candidates], and 'toronto ... 2006-07' for [years in toronto];\n"
      "word- and char-level profiles share the same trend.\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace nlidb

int main() { return nlidb::bench::Run(); }
