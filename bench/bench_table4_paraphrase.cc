// Reproduces Table IV(b): zero-shot robustness on the ParaphraseBench-
// style patients benchmark, one accuracy per linguistic-variation
// category (naive / syntactic / lexical / morphological / semantic /
// missing).
//
// Paper numbers: 96.5 / 93.0 / 57.9 / 87.7 / 56.1 / 3.9 (% Acc_qm).
// Reproduction target: the degradation ordering — naive and syntactic
// stay high, lexical/morphological/semantic degrade, missing collapses.

#include "bench/bench_util.h"

#include "attack/paraphrase_bench.h"

namespace nlidb {
namespace bench {
namespace {

int Run() {
  PrintHeader("Table IV(b): ParaphraseBench-style transfer per category");
  BenchEnv env = MakeEnv();
  auto pipeline = TrainPipeline(env);

  data::GeneratorConfig pc;
  pc.num_tables = std::max(3, EnvTables() / 10);
  pc.questions_per_table = 8;
  pc.seed = 202;
  attack::ParaphraseBenchCorpus corpus =
      attack::GenerateParaphraseBench(pc);

  std::printf("%-15s | zero-shot Acc_qm\n", "category");
  for (const auto& cat : corpus.categories) {
    eval::AccuracyReport acc =
        eval::EvaluatePipeline(*pipeline, cat.dataset);
    std::printf("%-15s | %5.1f%% (n=%d)\n",
                data::QuestionStyleName(cat.style), 100 * acc.acc_qm,
                acc.count);
  }
  std::printf(
      "\npaper Table IV(b): naive 96.5, syntactic 93.0, lexical 57.9,\n"
      "morphological 87.7, semantic 56.1, missing 3.9 (%% Acc_qm).\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace nlidb

int main() { return nlidb::bench::Run(); }
