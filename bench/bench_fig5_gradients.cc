// Reproduces Figure 5: per-word influence profiles I(w) (word-level and
// character-level gradient norms) for the column "winning driver" in two
// differently-phrased questions, rendered as ASCII bars. The mention term
// should carry the largest influence.

#include "bench/bench_util.h"

#include "common/strings.h"
#include "core/adversarial.h"
#include "core/trainer.h"
#include "text/tokenizer.h"

namespace nlidb {
namespace bench {
namespace {

void PlotInfluence(const core::ColumnMentionClassifier& classifier,
                   const core::AdversarialLocator& locator,
                   const std::string& question, const char* column) {
  const auto tokens = text::Tokenize(question);
  const auto column_tokens = SplitWhitespace(column);
  core::InfluenceProfile profile =
      locator.ComputeInfluence(classifier, tokens, column_tokens).value();
  float max_total = 0.0f;
  for (float v : profile.total) max_total = std::max(max_total, v);
  const text::Span located = locator.LocateSpan(profile);
  std::printf("\ncolumn [%s] in: \"%s\"\n", column, question.c_str());
  std::printf("%-14s %-8s %-8s %s\n", "token", "word", "char", "I(w)");
  for (size_t i = 0; i < tokens.size(); ++i) {
    std::printf("%-14s %7.4f %7.4f %s%s\n", tokens[i].c_str(),
                profile.word_level[i], profile.char_level[i],
                Bar(profile.total[i], max_total).c_str(),
                located.Contains(static_cast<int>(i)) ? "  <== mention" : "");
  }
}

int Run() {
  PrintHeader(
      "Figure 5: adversarial gradients locating column 'winning driver'");
  BenchEnv env = MakeEnv();
  core::ColumnMentionClassifier classifier(env.config, *env.provider);
  std::printf("[setup] training classifier...\n");
  core::TrainColumnMentionClassifier(classifier, env.splits.train, env.config);
  core::AdversarialLocator locator(env.config);

  // The paper's two phrasings: an explicit "driver won" mention and a
  // bare "win" paraphrase.
  PlotInfluence(classifier, locator,
                "which driver won the belgian grand prix on june 5 ?",
                "winning driver");
  PlotInfluence(classifier, locator,
                "who is the winner of the race with 52 laps ?",
                "winning driver");
  std::printf(
      "\npaper Fig. 5: the gradient-norm peak coincides with the term a\n"
      "human perceives as the mention ('driver won' / 'win'), at both the\n"
      "word level and the character level.\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace nlidb

int main() { return nlidb::bench::Run(); }
