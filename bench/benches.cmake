# Paper-table benches are plain executables that print the table they
# regenerate; bench_micro_substrate uses google-benchmark.
function(nlidb_bench name src)
  add_executable(${name} bench/${src})
  set_target_properties(${name} PROPERTIES RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)
  target_link_libraries(${name} PRIVATE
    nlidb_attack nlidb_eval nlidb_baselines nlidb_serving nlidb_core
    nlidb_data nlidb_sql nlidb_text nlidb_nn nlidb_tensor nlidb_common)
  target_include_directories(${name} PRIVATE ${CMAKE_SOURCE_DIR})
endfunction()

nlidb_bench(bench_table1_mention_cases bench_table1_mention_cases.cc)
nlidb_bench(bench_table2_main bench_table2_main.cc)
nlidb_bench(bench_table2_ablation bench_table2_ablation.cc)
nlidb_bench(bench_table3_recovery bench_table3_recovery.cc)
nlidb_bench(bench_table4_overnight bench_table4_overnight.cc)
nlidb_bench(bench_table4_paraphrase bench_table4_paraphrase.cc)
nlidb_bench(bench_fig5_gradients bench_fig5_gradients.cc)
nlidb_bench(bench_fig7_gradients bench_fig7_gradients.cc)
nlidb_bench(bench_mention_detection bench_mention_detection.cc)
nlidb_bench(bench_ablation_resolution bench_ablation_resolution.cc)
nlidb_bench(bench_stage_breakdown bench_stage_breakdown.cc)
nlidb_bench(bench_decoder bench_decoder.cc)
nlidb_bench(bench_serving bench_serving.cc)
nlidb_bench(bench_schema_scale bench_schema_scale.cc)
nlidb_bench(bench_attack bench_attack.cc)

add_executable(bench_micro_substrate bench/bench_micro_substrate.cc)
set_target_properties(bench_micro_substrate PROPERTIES RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)
target_link_libraries(bench_micro_substrate PRIVATE
  nlidb_core nlidb_data nlidb_sql nlidb_text nlidb_nn nlidb_tensor
  nlidb_common benchmark::benchmark)
target_include_directories(bench_micro_substrate PRIVATE ${CMAKE_SOURCE_DIR})
