// Schema-registry scaling bench (DESIGN.md §15): does per-question cost
// stay flat as the registry grows 10 -> 100 -> 1000 tables, and what
// does the classifier shortlist buy on wide tables?
//
// Three measurements, merged into BENCH_schema.json:
//   1. Scale sweep: one fixed question set (over the first 10 tables)
//      run end to end at every registry size. Annotate p50 must not
//      drift with registry growth (the paper's annotator only ever sees
//      one table; the registry keeps it that way), and the resolve
//      stage reports what routing over N tables actually costs.
//   2. Routing quality: recall@1 / recall@3 of Route() against the gold
//      table of generated questions, per registry size.
//   3. Shortlist vs full scan on wide (24-column) tables, plus the
//      persisted-store cold-start comparison (compute vs Save/Load).
//
//   ./build/bench/bench_schema_scale [--smoke]
//
// --smoke shrinks the sweep to {10, 50} tables and asserts the
// correctness gate instead of recording timings: shortlist-mode
// annotations must be byte-identical to full-scan on the generated
// corpus. CI runs it in the Release legs.

#include "bench/bench_util.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_json.h"
#include "schema/registry.h"
#include "sql/value.h"

namespace nlidb {
namespace bench {
namespace {

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

double PercentileNs(std::vector<uint64_t> samples, double p) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  const size_t idx = static_cast<size_t>(p * (samples.size() - 1));
  return static_cast<double>(samples[idx]);
}

/// A wide table the default shortlist_k=16 must prune.
sql::Table WideTable(int id) {
  const char* kWords[] = {"population", "director", "county",  "film",
                          "year",       "price",    "team",    "city",
                          "color",      "author",   "title",   "length",
                          "weight",     "height",   "speed",   "genre",
                          "artist",     "album",    "country", "capital",
                          "river",      "mountain", "animal",  "flower"};
  std::vector<sql::ColumnDef> cols;
  for (const char* w : kWords) cols.push_back({w, sql::DataType::kText});
  sql::Table t("wide_" + std::to_string(id), sql::Schema(cols));
  std::vector<sql::Value> row;
  for (const char* w : kWords) {
    row.push_back(sql::Value::Text(std::string(w) + " " +
                                   std::to_string(id)));
  }
  if (!t.AddRow(std::move(row)).ok()) std::abort();
  return t;
}

struct StageSamples {
  std::vector<uint64_t> annotate_ns;
  std::vector<uint64_t> resolve_ns;
  int routed_hits_at_1 = 0;
  int routed_hits_at_3 = 0;
  int routed_total = 0;
};

/// Runs `examples` through Query() with SchemaRef::Route() and collects
/// per-stage wall times plus routing accuracy against the gold table.
StageSamples RunRouted(const core::NlidbPipeline& pipeline,
                       const std::vector<const data::Example*>& examples) {
  StageSamples out;
  for (const data::Example* ex : examples) {
    core::QueryRequest request;
    request.schema_ref = core::SchemaRef::Route();
    request.tokens = ex->tokens;
    request.execute = false;
    StatusOr<core::QueryResult> result = pipeline.Query(request);
    if (!result.ok()) continue;
    ++out.routed_total;
    if (result->table_name == ex->table->name()) ++out.routed_hits_at_1;
    for (const schema::RouteCandidate& c : result->routing) {
      if (c.name == ex->table->name()) {
        ++out.routed_hits_at_3;
        break;
      }
    }
    if (const core::StageTiming* s = result->stages.Child("annotate")) {
      out.annotate_ns.push_back(s->wall_ns);
    }
    if (const core::StageTiming* s = result->stages.Child("resolve")) {
      out.resolve_ns.push_back(s->wall_ns);
    }
  }
  return out;
}

int Run(bool smoke) {
  PrintHeader("Schema registry at scale (content-keyed stats + routing)");

  BenchEnv env;
  env.provider = std::make_shared<text::EmbeddingProvider>();
  data::RegisterDomainClusters(*env.provider);
  data::GeneratorConfig gc;
  gc.num_tables = smoke ? 6 : 20;
  gc.questions_per_table = smoke ? 3 : 6;
  gc.seed = 5;
  env.splits = data::GenerateWikiSqlSplits(gc);
  env.config = smoke ? core::ModelConfig::Tiny() : core::ModelConfig::Small();
  env.config.word_dim = env.provider->dim();
  auto pipeline = TrainPipeline(env);

  const std::vector<int> sizes = smoke ? std::vector<int>{10, 50}
                                       : std::vector<int>{10, 100, 1000};
  const int max_tables = sizes.back();

  // One generated pool of max_tables tables with questions; registry
  // sizes are nested prefixes, so the 10-table question set exists at
  // every size and the sweep measures the same work throughout.
  data::GeneratorConfig pool_gc;
  pool_gc.num_tables = max_tables;
  pool_gc.questions_per_table = 2;
  pool_gc.seed = 17;
  data::WikiSqlGenerator pool_gen(pool_gc, data::TrainDomains());
  data::Dataset pool = pool_gen.Generate();
  std::printf("[setup] table pool: %zu tables, %zu questions\n",
              pool.tables.size(), pool.examples.size());

  // The fixed probe set: every question whose gold table is among the
  // first `sizes.front()` tables.
  std::vector<const data::Example*> probe;
  for (const data::Example& ex : pool.examples) {
    for (int t = 0; t < sizes.front(); ++t) {
      if (ex.table == pool.tables[static_cast<size_t>(t)]) {
        probe.push_back(&ex);
        break;
      }
    }
  }

  FlatJson json = FlatJson::Load(SchemaJsonPath());
  json.Set("schema_tables_max", max_tables);

  double p50_at_min = 0.0;
  double p50_at_max = 0.0;
  int registered = 0;
  for (int size : sizes) {
    for (; registered < size; ++registered) {
      StatusOr<schema::TableId> id = pipeline->mutable_registry().Register(
          pool.tables[static_cast<size_t>(registered)]);
      if (!id.ok()) {
        std::printf("register failed: %s\n", id.status().ToString().c_str());
        return 1;
      }
    }

    // Routing quality over questions spanning the whole registry.
    std::vector<const data::Example*> recall_set;
    for (const data::Example& ex : pool.examples) {
      bool in_registry = false;
      for (int t = 0; t < size && !in_registry; ++t) {
        in_registry = ex.table == pool.tables[static_cast<size_t>(t)];
      }
      if (in_registry) recall_set.push_back(&ex);
      if (recall_set.size() >= 400) break;
    }
    const StageSamples recall = RunRouted(*pipeline, recall_set);

    // Per-question cost on the fixed probe set.
    const StageSamples probe_run = RunRouted(*pipeline, probe);
    const double annotate_p50 = PercentileNs(probe_run.annotate_ns, 0.5);
    const double resolve_p50 = PercentileNs(probe_run.resolve_ns, 0.5);
    if (size == sizes.front()) p50_at_min = annotate_p50;
    if (size == sizes.back()) p50_at_max = annotate_p50;

    const double r1 = recall.routed_total == 0
                          ? 0.0
                          : static_cast<double>(recall.routed_hits_at_1) /
                                recall.routed_total;
    const double r3 = recall.routed_total == 0
                          ? 0.0
                          : static_cast<double>(recall.routed_hits_at_3) /
                                recall.routed_total;
    std::printf(
        "tables=%5d  annotate p50 %9.0f ns  resolve p50 %9.0f ns  "
        "recall@1 %.3f  recall@3 %.3f  (n=%d)\n",
        size, annotate_p50, resolve_p50, r1, r3, recall.routed_total);
    if (!smoke) {
      const std::string suffix = "_" + std::to_string(size) + "t";
      json.Set("annotate_p50_ns" + suffix, annotate_p50);
      json.Set("resolve_p50_ns" + suffix, resolve_p50);
      json.Set("route_recall1" + suffix, r1);
      json.Set("route_recall3" + suffix, r3);
    }
  }
  const double flat_ratio = p50_at_min > 0 ? p50_at_max / p50_at_min : 0.0;
  std::printf("annotate p50 ratio %d -> %d tables: %.3f (gate <= 1.25)\n",
              sizes.front(), sizes.back(), flat_ratio);
  if (!smoke) json.Set("annotate_flat_ratio", flat_ratio);

  // --- Shortlist vs full scan on wide tables -------------------------
  std::vector<sql::Table> wide;
  for (int i = 0; i < 8; ++i) wide.push_back(WideTable(i));
  const std::vector<std::vector<std::string>> wide_questions = {
      {"what", "is", "the", "capital", "of", "france", "?"},
      {"which", "film", "has", "the", "director", "sofia", "garcia", "?"},
      {"what", "is", "the", "population", "of", "mayo", "county", "?"},
      {"how", "tall", "is", "the", "mountain", "?"},
  };
  auto run_mode = [&](schema::ScanMode mode) {
    pipeline->mutable_registry().set_mode(mode);
    std::vector<uint64_t> samples;
    for (const sql::Table& t : wide) {
      for (const auto& tokens : wide_questions) {
        core::QueryRequest request;
        request.schema_ref = core::SchemaRef::Table(&t);
        request.tokens = tokens;
        request.execute = false;
        StatusOr<core::QueryResult> result = pipeline->Query(request);
        if (!result.ok()) continue;
        if (const core::StageTiming* s = result->stages.Child("annotate")) {
          samples.push_back(s->wall_ns);
        }
      }
    }
    return samples;
  };
  const double full_p50 = PercentileNs(run_mode(schema::ScanMode::kFullScan),
                                       0.5);
  const double short_p50 =
      PercentileNs(run_mode(schema::ScanMode::kShortlist), 0.5);
  pipeline->mutable_registry().set_mode(schema::ScanMode::kShortlist);
  std::printf(
      "wide-table annotate p50: full scan %9.0f ns | shortlist %9.0f ns\n",
      full_p50, short_p50);
  if (!smoke) {
    json.Set("wide_fullscan_annotate_p50_ns", full_p50);
    json.Set("wide_shortlist_annotate_p50_ns", short_p50);
  }

  // --- Cold start: recompute vs Save/Load ----------------------------
  {
    const std::string store = "bench_schema_store.tmp.nlsr";
    const uint64_t t0 = NowNs();
    schema::SchemaRegistry cold(env.provider);
    for (int t = 0; t < registered; ++t) {
      (void)cold.StatsFor(*pool.tables[static_cast<size_t>(t)]);
    }
    const uint64_t compute_ns = NowNs() - t0;
    if (!cold.Save(store).ok()) {
      std::printf("schema store save failed\n");
      return 1;
    }
    const uint64_t t1 = NowNs();
    schema::SchemaRegistry warm(env.provider);
    if (!warm.Load(store).ok()) {
      std::printf("schema store load failed\n");
      return 1;
    }
    for (int t = 0; t < registered; ++t) {
      (void)warm.StatsFor(*pool.tables[static_cast<size_t>(t)]);
    }
    const uint64_t load_ns = NowNs() - t1;
    std::remove(store.c_str());
    std::printf("cold start over %d tables: compute %.1f ms | load %.1f ms\n",
                registered, compute_ns / 1e6, load_ns / 1e6);
    if (!smoke) {
      json.Set("cold_compute_ms", compute_ns / 1e6);
      json.Set("cold_load_ms", load_ns / 1e6);
    }
  }

  if (smoke) {
    // Correctness gate instead of timings: shortlist mode reproduces
    // full-scan outputs byte-for-byte on the generated corpus (whose
    // tables sit under shortlist_k, so pruning must be a no-op).
    int checked = 0;
    for (const data::Example& ex : env.splits.test.examples) {
      core::QueryRequest request;
      request.schema_ref = core::SchemaRef::Table(ex.table.get());
      request.tokens = ex.tokens;
      pipeline->mutable_registry().set_mode(schema::ScanMode::kFullScan);
      StatusOr<core::QueryResult> full = pipeline->Query(request);
      pipeline->mutable_registry().set_mode(schema::ScanMode::kShortlist);
      StatusOr<core::QueryResult> shortlisted = pipeline->Query(request);
      if (full.ok() != shortlisted.ok()) {
        std::printf("SMOKE FAIL: mode changed status for: %s\n",
                    ex.question.c_str());
        return 1;
      }
      if (!full.ok()) continue;
      if (full->annotated_question != shortlisted->annotated_question ||
          full->annotated_sql != shortlisted->annotated_sql ||
          full->translate_score != shortlisted->translate_score) {
        std::printf("SMOKE FAIL: shortlist != full scan for: %s\n",
                    ex.question.c_str());
        return 1;
      }
      ++checked;
    }
    // The strict <=1.25 flatness gate belongs to the full run (committed
    // BENCH_schema.json); smoke uses a loose bound that still catches an
    // accidental O(registry) term without flaking on a noisy CI box.
    if (checked == 0 || flat_ratio > 2.0) {
      std::printf("SMOKE FAIL: checked=%d flat_ratio=%.3f\n", checked,
                  flat_ratio);
      return 1;
    }
    std::printf("smoke OK: %d questions shortlist == full scan, "
                "flat ratio %.3f\n",
                checked, flat_ratio);
    return 0;
  }

  if (!json.Save(SchemaJsonPath())) {
    std::printf("cannot write %s\n", SchemaJsonPath());
    return 1;
  }
  std::printf("merged %s (%zu keys)\n", SchemaJsonPath(), json.size());
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace nlidb

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  return nlidb::bench::Run(smoke);
}
