// Interactive NLIDB shell (in the spirit of NaLIR-style interactive
// systems the paper cites): train the pipeline once, load CSV tables,
// then type natural-language questions and watch every pipeline stage.
//
// Usage:
//   ./build/examples/nlidb_repl [table.csv ...]
//
// Commands at the prompt:
//   \t <path.csv>   load a table from CSV and make it current
//   \tables         list loaded tables
//   \use <name>     switch the current table
//   \show           print the current table
//   \save <dir>     save trained models
//   \q              quit
// Anything else is treated as a question against the current table.

#include <cstdio>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "common/strings.h"
#include "core/persistence.h"
#include "core/pipeline.h"
#include "data/generator.h"
#include "sql/csv.h"
#include "sql/executor.h"

using namespace nlidb;

namespace {

void PrintTable(const sql::Table& table) {
  std::printf("table '%s' (%d rows)\n", table.name().c_str(),
              table.num_rows());
  for (int c = 0; c < table.num_columns(); ++c) {
    std::printf("%-20s", table.schema().column(c).name.c_str());
  }
  std::printf("\n");
  for (int r = 0; r < std::min(table.num_rows(), 12); ++r) {
    for (int c = 0; c < table.num_columns(); ++c) {
      std::printf("%-20s", table.Cell(r, c).ToString().c_str());
    }
    std::printf("\n");
  }
  if (table.num_rows() > 12) std::printf("... (%d more)\n", table.num_rows() - 12);
}

void Ask(const core::NlidbPipeline& pipeline, const sql::Table& table,
         const std::string& question) {
  core::QueryRequest request;
  request.schema_ref = core::SchemaRef::Table(&table);
  request.question = question;
  StatusOr<core::QueryResult> response = pipeline.Query(request);
  if (!response.ok()) {
    std::printf("  %s\n", response.status().ToString().c_str());
    return;
  }
  const core::QueryResult& r = *response;
  std::printf("  q^a: %s\n", Join(r.annotated_question, " ").c_str());
  std::printf("  s^a: %s\n", Join(r.annotated_sql, " ").c_str());
  if (!r.query.has_value()) {
    std::printf("  could not recover SQL: %s\n",
                r.recovery_status.ToString().c_str());
    return;
  }
  std::printf("  SQL: %s\n", sql::ToSql(*r.query, table.schema()).c_str());
  if (!r.rows.has_value()) {
    std::printf("  execution error: %s\n",
                r.execution_status.ToString().c_str());
    return;
  }
  std::printf("  result (%zu):", r.rows->size());
  for (size_t i = 0; i < r.rows->size() && i < 10; ++i) {
    std::printf(" [%s]", (*r.rows)[i].ToString().c_str());
  }
  std::printf("\n  stages:");
  for (const auto& stage : r.stages.children) {
    std::printf(" %s=%.2fms", stage.name.c_str(), stage.wall_ns / 1e6);
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  auto provider = std::make_shared<text::EmbeddingProvider>();
  data::RegisterDomainClusters(*provider);

  std::printf("nlidb shell — training the pipeline (about a minute)...\n");
  data::GeneratorConfig gc;
  gc.num_tables = 48;
  gc.questions_per_table = 8;
  gc.seed = 3;
  data::Splits splits = data::GenerateWikiSqlSplits(gc);
  core::ModelConfig config = core::ModelConfig::Small();
  config.word_dim = provider->dim();
  core::NlidbPipeline pipeline(config, provider);
  pipeline.Train(splits.train);
  std::printf("ready.\n\n");

  std::vector<sql::Table> tables;
  int current = -1;
  auto load = [&](const std::string& path) {
    auto table = sql::LoadCsvTable(path);
    if (!table.ok()) {
      std::printf("load failed: %s\n", table.status().ToString().c_str());
      return;
    }
    tables.push_back(std::move(table).value());
    current = static_cast<int>(tables.size()) - 1;
    std::printf("loaded '%s' (%d rows, %d columns)\n",
                tables[current].name().c_str(), tables[current].num_rows(),
                tables[current].num_columns());
  };
  for (int i = 1; i < argc; ++i) load(argv[i]);
  if (tables.empty()) {
    // A built-in demo table so the shell is usable immediately.
    auto demo = sql::ParseCsv(
        "restaurant,cuisine,rating,neighborhood\n"
        "murphy bistro,italian,4,soho\n"
        "tanaka kitchen,japanese,5,tribeca\n"
        "garcia grill,mexican,3,harlem\n",
        "restaurants");
    tables.push_back(std::move(demo).value());
    current = 0;
    std::printf("no CSV given; using a built-in 'restaurants' demo table.\n");
  }

  std::printf("type a question, or \\t <csv>, \\tables, \\use <name>, "
              "\\show, \\save <dir>, \\q\n");
  std::string line;
  while (std::printf("nlidb> "), std::fflush(stdout),
         std::getline(std::cin, line)) {
    const std::string input = Strip(line);
    if (input.empty()) continue;
    if (input == "\\q" || input == "\\quit") break;
    if (input == "\\tables") {
      for (size_t i = 0; i < tables.size(); ++i) {
        std::printf("%s %s\n", static_cast<int>(i) == current ? "*" : " ",
                    tables[i].name().c_str());
      }
      continue;
    }
    if (input == "\\show") {
      if (current >= 0) PrintTable(tables[current]);
      continue;
    }
    if (StartsWith(input, "\\t ")) {
      load(Strip(input.substr(3)));
      continue;
    }
    if (StartsWith(input, "\\use ")) {
      const std::string name = Strip(input.substr(5));
      bool found = false;
      for (size_t i = 0; i < tables.size(); ++i) {
        if (tables[i].name() == name) {
          current = static_cast<int>(i);
          found = true;
        }
      }
      std::printf(found ? "switched to '%s'\n" : "no table named '%s'\n",
                  name.c_str());
      continue;
    }
    if (StartsWith(input, "\\save ")) {
      Status s = core::SavePipeline(pipeline, Strip(input.substr(6)));
      std::printf("%s\n", s.ToString().c_str());
      continue;
    }
    if (current < 0) {
      std::printf("no table loaded; use \\t <csv>\n");
      continue;
    }
    Ask(pipeline, tables[current], input);
  }
  return 0;
}
