// The paper's Figure 1(b)/(d) scenario: Gaeltacht areas of Ireland and
// the question "How many people live in Mayo who have the English name
// Carrowteige?" — a paraphrase select ("how many people live" mentions
// the population column) plus an IMPLICIT county mention ("in Mayo"
// never says "county"). Demonstrates challenges 2 and 3 end to end.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/county_population

#include <cstdio>
#include <memory>

#include "common/strings.h"
#include "core/pipeline.h"
#include "data/generator.h"
#include "sql/executor.h"

using namespace nlidb;

int main() {
  auto provider = std::make_shared<text::EmbeddingProvider>();
  data::RegisterDomainClusters(*provider);

  data::GeneratorConfig gc;
  gc.num_tables = 36;
  gc.questions_per_table = 8;
  gc.seed = 6;
  data::Splits splits = data::GenerateWikiSqlSplits(gc);
  core::ModelConfig config = core::ModelConfig::Small();
  config.word_dim = provider->dim();
  core::NlidbPipeline pipeline(config, provider);
  pipeline.Train(splits.train);

  // --- the Figure 1(b) table -------------------------------------------
  sql::Schema schema({{"county", sql::DataType::kText},
                      {"english_name", sql::DataType::kText},
                      {"irish_name", sql::DataType::kText},
                      {"population", sql::DataType::kReal},
                      {"irish_speakers", sql::DataType::kReal}});
  sql::Table table("gaeltacht", schema);
  auto add = [&table](const char* c, const char* e, const char* i, double p,
                      double s) {
    if (!table
             .AddRow({sql::Value::Text(c), sql::Value::Text(e),
                      sql::Value::Text(i), sql::Value::Real(p),
                      sql::Value::Real(s)})
             .ok()) {
      std::printf("row rejected\n");
    }
  };
  add("mayo", "carrowteige", "ceathru thaidhg", 356, 64);
  add("galway", "aran islands", "oileain arann", 1225, 79);

  const std::string question =
      "how many people live in mayo with the english name carrowteige ?";
  std::printf("Q: %s\n\n", question.c_str());

  core::QueryRequest request;
  request.schema_ref = core::SchemaRef::Table(&table);
  request.question = question;
  StatusOr<core::QueryResult> response = pipeline.Query(request);
  if (!response.ok()) {
    std::printf("query failed: %s\n", response.status().ToString().c_str());
    return 1;
  }
  const core::QueryResult& r = *response;
  std::printf("q^a: %s\n", Join(r.annotated_question, " ").c_str());
  std::printf("s^a: %s\n", Join(r.annotated_sql, " ").c_str());
  if (!r.query.has_value()) {
    std::printf("recovery failed: %s\n", r.recovery_status.ToString().c_str());
    return 1;
  }
  std::printf("s:   %s\n\n", sql::ToSql(*r.query, schema).c_str());
  std::printf("gold: SELECT population WHERE county = \"mayo\" AND "
              "english_name = \"carrowteige\"\n");
  if (r.rows.has_value() && !r.rows->empty()) {
    std::printf("result: %s (expected 356)\n",
                (*r.rows)[0].ToString().c_str());
  }

  // Bonus: the same latent structure, different domain — the paper's
  // central observation is that this question and the movie question of
  // examples/movie_actors share the annotated SQL
  //   SELECT c1 WHERE c2 = v2 AND c3 = v3.
  std::printf(
      "\nNote: the annotated SQL above shares its structure with the\n"
      "movie_actors example — the paper's core 'latent semantic\n"
      "structure' observation (Fig. 1).\n");
  return 0;
}
