// Zero-shot transfer demo: train once on the WikiSQL-style corpus, then
// answer questions against OVERNIGHT-style domains (restaurants,
// calendar) the model has NEVER seen — the transfer-learnability claim
// of the paper, in miniature.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/transfer_demo

#include <cstdio>
#include <memory>

#include "core/pipeline.h"
#include "data/overnight.h"
#include "eval/metrics.h"
#include "sql/executor.h"

using namespace nlidb;

int main() {
  auto provider = std::make_shared<text::EmbeddingProvider>();
  data::RegisterDomainClusters(*provider);

  data::GeneratorConfig gc;
  gc.num_tables = 36;
  gc.questions_per_table = 8;
  gc.seed = 12;
  data::Splits splits = data::GenerateWikiSqlSplits(gc);
  core::ModelConfig config = core::ModelConfig::Small();
  config.word_dim = provider->dim();
  core::NlidbPipeline pipeline(config, provider);
  std::printf("training on domains: films, geography, racing, olympics,\n");
  std::printf("music, space, politics, books, aviation, companies\n");
  std::printf("(%zu examples)...\n\n", splits.train.size());
  pipeline.Train(splits.train);

  // A hand-built restaurants table — an entirely unseen domain.
  sql::Schema schema({{"restaurant", sql::DataType::kText},
                      {"cuisine", sql::DataType::kText},
                      {"rating", sql::DataType::kReal},
                      {"neighborhood", sql::DataType::kText}});
  sql::Table table("restaurants", schema);
  auto add = [&table](const char* r, const char* c, double g, const char* n) {
    if (!table
             .AddRow({sql::Value::Text(r), sql::Value::Text(c),
                      sql::Value::Real(g), sql::Value::Text(n)})
             .ok()) {
      std::printf("row rejected\n");
    }
  };
  add("murphy bistro", "italian", 4, "soho");
  add("tanaka kitchen", "japanese", 5, "tribeca");
  add("garcia grill", "mexican", 3, "harlem");

  const char* questions[] = {
      "which restaurant with the cuisine japanese ?",
      "what is the rating of murphy bistro ?",
      "which restaurant in harlem ?",
      "what is the highest rating with the neighborhood tribeca ?",
  };
  for (const char* q : questions) {
    std::printf("Q: %s\n", q);
    core::QueryRequest request;
    request.schema_ref = core::SchemaRef::Table(&table);
    request.question = q;
    auto response = pipeline.Query(request);
    if (!response.ok() || !response->query.has_value()) {
      const Status& error =
          response.ok() ? response->recovery_status : response.status();
      std::printf("  translation failed: %s\n\n", error.ToString().c_str());
      continue;
    }
    std::printf("  SQL: %s\n", sql::ToSql(*response->query, schema).c_str());
    if (response->rows.has_value()) {
      std::printf("  result:");
      for (const auto& v : *response->rows) {
        std::printf(" [%s]", v.ToString().c_str());
      }
      std::printf("\n");
    }
    std::printf("\n");
  }

  // Quantitative check over a generated OVERNIGHT corpus.
  data::GeneratorConfig oc;
  oc.num_tables = 4;
  oc.questions_per_table = 6;
  oc.seed = 13;
  data::OvernightCorpus overnight = data::GenerateOvernight(oc);
  std::printf("zero-shot accuracy per unseen sub-domain:\n");
  for (const auto& sub : overnight.subdomains) {
    eval::AccuracyReport acc = eval::EvaluatePipeline(pipeline, sub.test);
    std::printf("  %-12s Acc_qm %5.1f%%  Acc_ex %5.1f%% (n=%d)\n",
                sub.name.c_str(), 100 * acc.acc_qm, 100 * acc.acc_ex,
                acc.count);
  }
  return 0;
}
