// The paper's Figure 1(a)/(c) scenario: a film-nominations table and the
// question "Which film directed by Jerzy Antczak did Piotr Adamczyk star
// in?". Shows every stage of the framework explicitly:
//   q -> annotation (mention detection + resolution) -> q^a
//     -> seq2seq -> s^a -> deterministic recovery -> s -> execution.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/movie_actors

#include <cstdio>
#include <memory>

#include "common/strings.h"
#include "core/pipeline.h"
#include "data/generator.h"
#include "sql/executor.h"

using namespace nlidb;

int main() {
  auto provider = std::make_shared<text::EmbeddingProvider>();
  data::RegisterDomainClusters(*provider);

  // Train on the synthetic WikiSQL-style corpus (films is one of its
  // domains, but THIS table and question are new to the model).
  data::GeneratorConfig gc;
  gc.num_tables = 36;
  gc.questions_per_table = 8;
  gc.seed = 4;
  data::Splits splits = data::GenerateWikiSqlSplits(gc);
  core::ModelConfig config = core::ModelConfig::Small();
  config.word_dim = provider->dim();
  core::NlidbPipeline pipeline(config, provider);
  pipeline.Train(splits.train);

  // --- the Figure 1(a) table -------------------------------------------
  sql::Schema schema({{"nomination", sql::DataType::kText},
                      {"actor", sql::DataType::kText},
                      {"film_name", sql::DataType::kText},
                      {"director", sql::DataType::kText}});
  sql::Table table("film_nominations", schema);
  auto add = [&table](const char* n, const char* a, const char* f,
                      const char* d) {
    if (!table
             .AddRow({sql::Value::Text(n), sql::Value::Text(a),
                      sql::Value::Text(f), sql::Value::Text(d)})
             .ok()) {
      std::printf("row rejected\n");
    }
  };
  add("best actor in a leading role", "piotr adamczyk",
      "chopin desire love", "jerzy antczak");
  add("best actor in a supporting role", "levan uchaneishvili",
      "stolen kisses", "nana djordjadze");

  const std::string question =
      "which film directed by jerzy antczak did piotr adamczyk star in ?";
  std::printf("Q: %s\n\n", question.c_str());

  // One structured Query() pass returns every stage: the annotation,
  // q^a, s^a, the recovered SQL, the execution rows, and the timings.
  core::QueryRequest request;
  request.schema_ref = core::SchemaRef::Table(&table);
  request.question = question;
  StatusOr<core::QueryResult> response = pipeline.Query(request);
  if (!response.ok()) {
    std::printf("query failed: %s\n", response.status().ToString().c_str());
    return 1;
  }
  const core::QueryResult& r = *response;

  // Stage 1: annotation.
  std::printf("mention pairs:\n");
  for (size_t i = 0; i < r.annotation.pairs.size(); ++i) {
    const core::MentionPair& p = r.annotation.pairs[i];
    std::printf("  c%zu -> column '%s'%s%s\n", i + 1,
                p.column >= 0 ? schema.column(p.column).name.c_str() : "?",
                p.column_span.empty() ? " (implicit)" : "",
                p.value_text.empty()
                    ? ""
                    : ("  v" + std::to_string(i + 1) + " = '" + p.value_text +
                       "'")
                          .c_str());
  }
  std::printf("q^a: %s\n\n", Join(r.annotated_question, " ").c_str());

  // Stage 2: seq2seq translation to annotated SQL.
  std::printf("s^a: %s\n", Join(r.annotated_sql, " ").c_str());

  // Stage 3: deterministic recovery + execution.
  if (!r.query.has_value()) {
    std::printf("recovery failed: %s\n",
                r.recovery_status.ToString().c_str());
    return 1;
  }
  std::printf("s:   %s\n\n", sql::ToSql(*r.query, schema).c_str());
  if (r.rows.has_value()) {
    std::printf("result:");
    for (const auto& v : *r.rows) std::printf(" %s", v.ToString().c_str());
    std::printf("\n");
    std::printf("expected: chopin desire love\n");
  }
  std::printf("\nper-stage wall time:\n");
  for (const auto& stage : r.stages.children) {
    std::printf("  %-10s %8.2f ms\n", stage.name.c_str(),
                stage.wall_ns / 1e6);
  }
  return 0;
}
