// Quickstart: train the transfer-learnable NLIDB on a synthetic
// WikiSQL-style corpus and translate questions against an unseen table.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>
#include <memory>

#include "core/pipeline.h"
#include "data/generator.h"
#include "eval/metrics.h"
#include "sql/executor.h"

using nlidb::core::ModelConfig;
using nlidb::core::NlidbPipeline;

int main() {
  // 1. Embedding provider with the built-in lexicon and domain clusters
  //    (the offline stand-in for GloVe; see DESIGN.md).
  auto provider = std::make_shared<nlidb::text::EmbeddingProvider>();
  nlidb::data::RegisterDomainClusters(*provider);

  // 2. A small WikiSQL-style corpus. Tables are NOT shared between
  //    train and test: the model must generalize to unseen schemas.
  nlidb::data::GeneratorConfig gen_config;
  gen_config.num_tables = 24;
  gen_config.questions_per_table = 6;
  gen_config.seed = 1;
  nlidb::data::Splits splits = nlidb::data::GenerateWikiSqlSplits(gen_config);
  std::printf("corpus: %zu train / %zu dev / %zu test examples\n",
              splits.train.size(), splits.dev.size(), splits.test.size());

  // 3. Train the three learned components (classifier, value detector,
  //    seq2seq translator).
  ModelConfig config = ModelConfig::Tiny();
  config.word_dim = provider->dim();
  NlidbPipeline pipeline(config, provider);
  nlidb::core::TrainReport report = pipeline.Train(splits.train);
  std::printf("losses: classifier %.3f | values %.3f | seq2seq %.3f\n",
              report.classifier_loss, report.value_loss, report.seq2seq_loss);

  // 4. Evaluate on unseen tables.
  nlidb::eval::AccuracyReport acc =
      nlidb::eval::EvaluatePipeline(pipeline, splits.test);
  std::printf("test: %s\n", acc.ToString().c_str());

  // 5. Translate one question end to end and execute it.
  if (!splits.test.examples.empty()) {
    const nlidb::data::Example& ex = splits.test.examples.front();
    std::printf("\nQ: %s\n", ex.question.c_str());
    std::printf("gold SQL:      %s\n",
                nlidb::sql::ToSql(ex.query, ex.schema()).c_str());
    nlidb::core::QueryRequest request;
    request.schema_ref = nlidb::core::SchemaRef::Table(ex.table.get());
    request.question = ex.question;
    auto response = pipeline.Query(request);
    if (response.ok() && response->query.has_value()) {
      std::printf("predicted SQL: %s\n",
                  nlidb::sql::ToSql(*response->query, ex.schema()).c_str());
      if (response->rows.has_value()) {
        std::printf("result rows: %zu\n", response->rows->size());
      }
    } else {
      const nlidb::Status& error =
          response.ok() ? response->recovery_status : response.status();
      std::printf("translation failed: %s\n", error.ToString().c_str());
    }
  }
  return 0;
}
