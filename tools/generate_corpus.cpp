// CLI: generate a synthetic WikiSQL-style corpus and write its splits to
// disk in the library's dataset text format.
//
//   generate_corpus --out <dir> [--tables N] [--questions N] [--seed S]
//                   [--style mixed|naive|syntactic|lexical|morphological|
//                           semantic|missing]
//
// Writes <dir>/train.txt, <dir>/dev.txt, <dir>/test.txt.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>

#include "data/generator.h"
#include "data/serialization.h"

using namespace nlidb;

namespace {

data::QuestionStyle ParseStyle(const std::string& s) {
  if (s == "naive") return data::QuestionStyle::kNaive;
  if (s == "syntactic") return data::QuestionStyle::kSyntactic;
  if (s == "lexical") return data::QuestionStyle::kLexical;
  if (s == "morphological") return data::QuestionStyle::kMorphological;
  if (s == "semantic") return data::QuestionStyle::kSemantic;
  if (s == "missing") return data::QuestionStyle::kMissing;
  return data::QuestionStyle::kMixed;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_dir;
  data::GeneratorConfig config;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : "";
    };
    if (arg == "--out") out_dir = next();
    else if (arg == "--tables") config.num_tables = std::atoi(next());
    else if (arg == "--questions") config.questions_per_table = std::atoi(next());
    else if (arg == "--seed") config.seed = std::strtoull(next(), nullptr, 10);
    else if (arg == "--style") config.style = ParseStyle(next());
    else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return 2;
    }
  }
  if (out_dir.empty()) {
    std::fprintf(stderr,
                 "usage: generate_corpus --out <dir> [--tables N] "
                 "[--questions N] [--seed S] [--style STYLE]\n");
    return 2;
  }
  std::error_code ec;
  std::filesystem::create_directories(out_dir, ec);
  if (ec) {
    std::fprintf(stderr, "cannot create %s\n", out_dir.c_str());
    return 1;
  }
  data::Splits splits = data::GenerateWikiSqlSplits(config);
  const std::filesystem::path base(out_dir);
  struct Piece {
    const char* name;
    const data::Dataset* ds;
  } pieces[] = {{"train.txt", &splits.train},
                {"dev.txt", &splits.dev},
                {"test.txt", &splits.test}};
  for (const Piece& p : pieces) {
    Status s = data::SaveDataset(*p.ds, (base / p.name).string());
    if (!s.ok()) {
      std::fprintf(stderr, "write %s failed: %s\n", p.name,
                   s.ToString().c_str());
      return 1;
    }
    std::printf("wrote %s: %zu tables, %zu examples\n", p.name,
                p.ds->tables.size(), p.ds->examples.size());
  }
  return 0;
}
