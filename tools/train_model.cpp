// CLI: train the full NLIDB pipeline on a corpus written by
// generate_corpus and save the models.
//
//   train_model --corpus <dir> --model <dir>
//               [--preset tiny|small|paper] [--epochs N]

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>

#include "core/persistence.h"
#include "core/pipeline.h"
#include "data/domain.h"
#include "data/serialization.h"
#include "eval/metrics.h"

using namespace nlidb;

int main(int argc, char** argv) {
  std::string corpus_dir, model_dir, preset = "small";
  int epochs_override = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : "";
    };
    if (arg == "--corpus") corpus_dir = next();
    else if (arg == "--model") model_dir = next();
    else if (arg == "--preset") preset = next();
    else if (arg == "--epochs") epochs_override = std::atoi(next());
    else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return 2;
    }
  }
  if (corpus_dir.empty() || model_dir.empty()) {
    std::fprintf(stderr,
                 "usage: train_model --corpus <dir> --model <dir> "
                 "[--preset tiny|small|paper] [--epochs N]\n");
    return 2;
  }

  auto provider = std::make_shared<text::EmbeddingProvider>();
  data::RegisterDomainClusters(*provider);
  core::ModelConfig config = preset == "tiny"    ? core::ModelConfig::Tiny()
                             : preset == "paper" ? core::ModelConfig::Paper()
                                                 : core::ModelConfig::Small();
  config.word_dim = provider->dim();
  if (preset == "paper") {
    std::fprintf(stderr,
                 "note: --preset paper needs hours of CPU time; the word "
                 "dim is clamped to the provider's %d\n",
                 provider->dim());
  }
  if (epochs_override > 0) {
    config.classifier_epochs = epochs_override;
    config.value_epochs = epochs_override;
    config.seq2seq_epochs = epochs_override;
  }

  const std::filesystem::path base(corpus_dir);
  auto train = data::LoadDataset((base / "train.txt").string());
  if (!train.ok()) {
    std::fprintf(stderr, "load train.txt: %s\n",
                 train.status().ToString().c_str());
    return 1;
  }
  std::printf("training on %zu examples...\n", train->size());
  core::NlidbPipeline pipeline(config, provider);
  core::TrainReport report = pipeline.Train(*train);
  std::printf("losses: classifier %.3f | values %.3f | seq2seq %.3f\n",
              report.classifier_loss, report.value_loss, report.seq2seq_loss);

  auto dev = data::LoadDataset((base / "dev.txt").string());
  if (dev.ok()) {
    std::printf("dev: %s\n",
                eval::EvaluatePipeline(pipeline, *dev).ToString().c_str());
  } else {
    // A missing dev split is allowed (training-only corpora), but never
    // silently: the status says why the dev line is absent.
    std::fprintf(stderr, "warning: skipping dev eval: %s\n",
                 dev.status().ToString().c_str());
  }
  Status s = core::SavePipeline(pipeline, model_dir);
  if (!s.ok()) {
    std::fprintf(stderr, "save failed: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("saved model to %s\n", model_dir.c_str());
  return 0;
}
