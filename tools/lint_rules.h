#ifndef NLIDB_TOOLS_LINT_RULES_H_
#define NLIDB_TOOLS_LINT_RULES_H_

// Project-rule checker behind the `nlidb_lint` CLI (DESIGN.md "Static
// contract architecture").
//
// Enforces the contracts the compiler cannot: all threading goes through
// ThreadPool, all randomness through common/rng, GEMM kernel TUs stay
// wall-clock-free and literal-identical across ISA tiers, every mutex
// member names the state it guards, and headers carry path-derived
// include guards. Token/regex level on comment- and string-stripped
// source — deliberately no libclang dependency so the checker builds
// everywhere the library does.
//
// Suppression: a finding on line L is dropped when line L or L-1
// contains `nlidb-lint: disable(<rule-id>)` in a comment.

#include <string>
#include <vector>

namespace nlidb {
namespace lint {

/// One rule violation, formatted by the CLI as
/// `file:line: rule-id: message`.
struct Finding {
  std::string file;  // repo-relative, '/'-separated
  int line = 0;      // 1-based
  std::string rule;
  std::string message;
};

/// A source file prepared for linting: the raw lines (used for
/// suppression comments and include-guard checks) plus a parallel
/// vector with comments and string/char literals blanked out, so rule
/// patterns never fire on prose or on the rule definitions themselves.
struct SourceFile {
  std::string path;
  std::vector<std::string> raw;
  std::vector<std::string> code;
};

/// Splits `contents` into lines and computes the stripped view.
SourceFile LoadSource(std::string path, const std::string& contents);

/// Reads `abs_path` from disk and prepares it; `rel_path` is the
/// repo-relative name used in findings and path-keyed rules. Returns
/// false when the file cannot be read.
bool LoadSourceFile(const std::string& abs_path, const std::string& rel_path,
                    SourceFile* out);

/// Runs every rule over the file set. Cross-file rules (the GEMM
/// literal-drift check) compare files within the same directory, so a
/// call must include sibling tier TUs together to check them.
std::vector<Finding> LintFiles(const std::vector<SourceFile>& files);

/// Repo-relative paths of the lintable tree under `root`: every
/// .h/.cc/.cpp/.inc file below src/, tests/, tools/ and bench/, except
/// the deliberately-violating rule fixtures under tests/lint/fixtures/
/// (lint those by passing them explicitly). Sorted for stable output.
std::vector<std::string> DefaultTree(const std::string& root);

/// `rule-id: summary` lines for --list-rules.
std::vector<std::string> RuleDescriptions();

/// The include guard mandated for a header at `rel_path`:
/// "common/status.h" (the leading "src/" is dropped first) maps to
/// "NLIDB_COMMON_STATUS_H_".
std::string ExpectedGuard(const std::string& rel_path);

}  // namespace lint
}  // namespace nlidb

#endif  // NLIDB_TOOLS_LINT_RULES_H_
