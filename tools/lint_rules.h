#ifndef NLIDB_TOOLS_LINT_RULES_H_
#define NLIDB_TOOLS_LINT_RULES_H_

// Project-rule checker behind the `nlidb_lint` CLI (DESIGN.md "Static
// contract architecture").
//
// Enforces the contracts the compiler cannot: all threading goes through
// ThreadPool, all randomness through common/rng, GEMM kernel TUs stay
// wall-clock-free and literal-identical across ISA tiers, every mutex
// member names the state it guards, lock acquisition is RAII-only
// (naked-lock), every class owning a mutex annotates its mutable fields
// (mutex-coverage), and headers carry path-derived include guards.
// Token/regex level on comment- and string-stripped source —
// deliberately no libclang dependency so the checker builds everywhere
// the library does.
//
// Suppression: a finding on line L is dropped when line L or L-1
// contains `nlidb-lint: disable(<rule-id>)` in a comment; several rules
// may share one comment as `disable(rule-a, rule-b)`. Every suppression
// in the tree is budgeted: `nlidb_lint --suppression-audit --allowlist
// tools/lint_suppressions.txt` (a ctest gate) fails when a suppression
// appears that the committed allowlist does not cover, so waiving a
// rule is a reviewed, diffable act rather than a drive-by comment.

#include <string>
#include <vector>

namespace nlidb {
namespace lint {

/// One rule violation, formatted by the CLI as
/// `file:line: rule-id: message`.
struct Finding {
  std::string file;  // repo-relative, '/'-separated
  int line = 0;      // 1-based
  std::string rule;
  std::string message;
};

/// A source file prepared for linting: the raw lines (used for
/// suppression comments and include-guard checks) plus a parallel
/// vector with comments and string/char literals blanked out, so rule
/// patterns never fire on prose or on the rule definitions themselves.
struct SourceFile {
  std::string path;
  std::vector<std::string> raw;
  std::vector<std::string> code;
};

/// Splits `contents` into lines and computes the stripped view.
SourceFile LoadSource(std::string path, const std::string& contents);

/// Reads `abs_path` from disk and prepares it; `rel_path` is the
/// repo-relative name used in findings and path-keyed rules. Returns
/// false when the file cannot be read.
bool LoadSourceFile(const std::string& abs_path, const std::string& rel_path,
                    SourceFile* out);

/// Runs every rule over the file set. Cross-file rules (the GEMM
/// literal-drift check) compare files within the same directory, so a
/// call must include sibling tier TUs together to check them.
std::vector<Finding> LintFiles(const std::vector<SourceFile>& files);

/// Repo-relative paths of the lintable tree under `root`: every
/// .h/.cc/.cpp/.inc file below src/, tests/, tools/ and bench/, except
/// the deliberately-violating rule fixtures under tests/lint/fixtures/
/// (lint those by passing them explicitly). Sorted for stable output.
std::vector<std::string> DefaultTree(const std::string& root);

/// `rule-id: summary` lines for --list-rules.
std::vector<std::string> RuleDescriptions();

/// One `nlidb-lint: disable(...)` occurrence in the tree (one entry per
/// rule named in the comment).
struct Suppression {
  std::string file;  // repo-relative
  int line = 0;      // 1-based line of the comment
  std::string rule;
};

/// Every suppression comment in `files`, in (file, line, rule) order.
/// Reads the raw lines, so suppressions inside comments are found (that
/// is where they live).
std::vector<Suppression> AuditSuppressions(
    const std::vector<SourceFile>& files);

/// One allowlist entry: at most `max_count` suppressions of `rule` in
/// `file`. Parsed from tools/lint_suppressions.txt, format
/// `<file> <rule> <max_count>` per line, '#' comments.
struct SuppressionBudget {
  std::string file;
  std::string rule;
  int max_count = 0;
};

/// Parses allowlist text; malformed lines are reported into `errors`
/// (empty vector on clean parse).
std::vector<SuppressionBudget> ParseAllowlist(const std::string& contents,
                                              std::vector<std::string>* errors);

/// Budget check: returns one human-readable violation per (file, rule)
/// whose suppression count exceeds its allowlist budget (missing entry =
/// budget 0), plus a note per allowlist entry that is no longer used at
/// its full budget (stale entries are reported but are not violations —
/// the caller decides). Violations come first; the second vector holds
/// the stale-entry notes.
std::vector<std::string> CheckSuppressionBudget(
    const std::vector<Suppression>& suppressions,
    const std::vector<SuppressionBudget>& budgets,
    std::vector<std::string>* stale_notes);

/// The include guard mandated for a header at `rel_path`:
/// "common/status.h" (the leading "src/" is dropped first) maps to
/// "NLIDB_COMMON_STATUS_H_".
std::string ExpectedGuard(const std::string& rel_path);

}  // namespace lint
}  // namespace nlidb

#endif  // NLIDB_TOOLS_LINT_RULES_H_
