// CLI: load a saved pipeline and evaluate it on a dataset file.
//
//   evaluate_model --model <dir> --data <file> [--preset tiny|small|paper]
//                  [--mentions] [--recovery]

#include <cstdio>
#include <cstring>
#include <string>

#include "core/persistence.h"
#include "core/pipeline.h"
#include "data/domain.h"
#include "data/serialization.h"
#include "eval/metrics.h"

using namespace nlidb;

int main(int argc, char** argv) {
  std::string model_dir, data_file, preset = "small";
  bool mentions = false, recovery = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : "";
    };
    if (arg == "--model") model_dir = next();
    else if (arg == "--data") data_file = next();
    else if (arg == "--preset") preset = next();
    else if (arg == "--mentions") mentions = true;
    else if (arg == "--recovery") recovery = true;
    else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return 2;
    }
  }
  if (model_dir.empty() || data_file.empty()) {
    std::fprintf(stderr,
                 "usage: evaluate_model --model <dir> --data <file> "
                 "[--preset tiny|small|paper] [--mentions] [--recovery]\n");
    return 2;
  }

  auto provider = std::make_shared<text::EmbeddingProvider>();
  data::RegisterDomainClusters(*provider);
  core::ModelConfig config = preset == "tiny"    ? core::ModelConfig::Tiny()
                             : preset == "paper" ? core::ModelConfig::Paper()
                                                 : core::ModelConfig::Small();
  config.word_dim = provider->dim();
  core::NlidbPipeline pipeline(config, provider);
  Status s = core::LoadPipeline(pipeline, model_dir);
  if (!s.ok()) {
    std::fprintf(stderr, "load model: %s\n", s.ToString().c_str());
    return 1;
  }
  auto dataset = data::LoadDataset(data_file);
  if (!dataset.ok()) {
    std::fprintf(stderr, "load data: %s\n",
                 dataset.status().ToString().c_str());
    return 1;
  }
  std::printf("%s\n",
              eval::EvaluatePipeline(pipeline, *dataset).ToString().c_str());
  if (mentions) {
    eval::MentionReport m = eval::EvaluateMentions(pipeline, *dataset);
    std::printf("cond col/val acc %.1f%% | span P %.1f%% R %.1f%% F1 %.1f%%\n",
                100 * m.cond_col_val_acc, 100 * m.span_precision,
                100 * m.span_recall, 100 * m.span_f1);
  }
  if (recovery) {
    eval::RecoveryReport r = eval::EvaluateRecovery(pipeline, *dataset);
    std::printf("Acc_qm before recovery %.1f%% | after %.1f%%\n",
                100 * r.acc_before, 100 * r.acc_after);
  }
  return 0;
}
