#include "tools/lint_rules.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <map>
#include <regex>
#include <sstream>

namespace nlidb {
namespace lint {

namespace {

namespace fs = std::filesystem;

bool StartsWith(const std::string& s, const std::string& prefix) {
  return s.rfind(prefix, 0) == 0;
}

bool EndsWith(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

std::string Basename(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? path : path.substr(slash + 1);
}

std::string Dirname(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? std::string() : path.substr(0, slash);
}

std::string Trimmed(const std::string& s) {
  size_t b = s.find_first_not_of(" \t\r");
  if (b == std::string::npos) return std::string();
  size_t e = s.find_last_not_of(" \t\r");
  return s.substr(b, e - b + 1);
}

/// Blanks comments and string/char literal contents, preserving line
/// structure, so rule regexes only ever see code tokens.
std::string StripCommentsAndStrings(const std::string& src) {
  std::string out;
  out.reserve(src.size());
  enum class State { kCode, kLineComment, kBlockComment, kString, kChar };
  State state = State::kCode;
  for (size_t i = 0; i < src.size(); ++i) {
    const char c = src[i];
    const char next = i + 1 < src.size() ? src[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          out += "  ";
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          out += "  ";
          ++i;
        } else if (c == '"') {
          state = State::kString;
          out += ' ';
        } else if (c == '\'') {
          state = State::kChar;
          out += ' ';
        } else {
          out += c;
        }
        break;
      case State::kLineComment:
        if (c == '\n') {
          state = State::kCode;
          out += '\n';
        } else {
          out += ' ';
        }
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          state = State::kCode;
          out += "  ";
          ++i;
        } else {
          out += c == '\n' ? '\n' : ' ';
        }
        break;
      case State::kString:
      case State::kChar:
        if (c == '\\' && next != '\0') {
          out += "  ";
          ++i;
        } else if ((state == State::kString && c == '"') ||
                   (state == State::kChar && c == '\'')) {
          state = State::kCode;
          out += ' ';
        } else {
          out += c == '\n' ? '\n' : ' ';
        }
        break;
    }
  }
  return out;
}

std::vector<std::string> SplitLines(const std::string& s) {
  std::vector<std::string> lines;
  std::string cur;
  for (char c : s) {
    if (c == '\n') {
      lines.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  lines.push_back(cur);
  return lines;
}

/// True when the finding at `line` (1-based) in `file` is waived by a
/// `nlidb-lint: disable(rule)` comment on the same or preceding line.
bool Suppressed(const SourceFile& file, int line, const std::string& rule) {
  const std::string needle = "nlidb-lint: disable(" + rule + ")";
  for (int l = line - 1; l >= line - 2 && l >= 0; --l) {
    if (static_cast<size_t>(l) < file.raw.size() &&
        file.raw[l].find(needle) != std::string::npos) {
      return true;
    }
  }
  return false;
}

void Report(const SourceFile& file, int line, const std::string& rule,
            const std::string& message, std::vector<Finding>* out) {
  if (Suppressed(file, line, rule)) return;
  out->push_back(Finding{file.path, line, rule, message});
}

// ---------------------------------------------------------------------------
// raw-thread: threading primitives outside the pool.

const char kRawThread[] = "raw-thread";

bool ThreadPoolFile(const std::string& path) {
  return path == "src/common/thread_pool.h" ||
         path == "src/common/thread_pool.cc";
}

void CheckRawThread(const SourceFile& file, std::vector<Finding>* out) {
  if (ThreadPoolFile(file.path)) return;
  static const std::regex re(
      "std::jthread\\b|std::thread\\b|std::async\\b|\\bpthread_[a-z_]+");
  for (size_t i = 0; i < file.code.size(); ++i) {
    if (std::regex_search(file.code[i], re)) {
      Report(file, static_cast<int>(i) + 1, kRawThread,
             "raw threading primitive; all concurrency goes through "
             "ThreadPool (src/common/thread_pool.h)",
             out);
    }
  }
}

// ---------------------------------------------------------------------------
// raw-random: nondeterministic RNG outside common/rng.

const char kRawRandom[] = "raw-random";

void CheckRawRandom(const SourceFile& file, std::vector<Finding>* out) {
  if (file.path == "src/common/rng.h" || file.path == "src/common/rng.cc") {
    return;
  }
  static const std::regex re(
      "std::random_device|\\bsrand\\s*\\(|\\brand\\s*\\(");
  for (size_t i = 0; i < file.code.size(); ++i) {
    if (std::regex_search(file.code[i], re)) {
      Report(file, static_cast<int>(i) + 1, kRawRandom,
             "nondeterministic randomness; use the seeded Rng in "
             "src/common/rng.h so every run reproduces",
             out);
    }
  }
}

// ---------------------------------------------------------------------------
// kernel-wall-clock: GEMM kernel TUs must be time-free.

const char kKernelWallClock[] = "kernel-wall-clock";

bool KernelTu(const std::string& path) {
  const std::string base = Basename(path);
  return StartsWith(base, "gemm_") && !EndsWith(base, "_test.cc");
}

void CheckKernelWallClock(const SourceFile& file, std::vector<Finding>* out) {
  if (!KernelTu(file.path)) return;
  static const std::regex re(
      "std::chrono|\\btime\\s*\\(|\\bclock\\s*\\(|\\bgettimeofday\\b|"
      "\\blocaltime\\b|\\bstrftime\\b|\\bDate\\b");
  for (size_t i = 0; i < file.code.size(); ++i) {
    if (std::regex_search(file.code[i], re)) {
      Report(file, static_cast<int>(i) + 1, kKernelWallClock,
             "wall-clock call inside a GEMM kernel TU; kernels must be "
             "time-free so identical inputs give bitwise-identical outputs",
             out);
    }
  }
}

// ---------------------------------------------------------------------------
// raw-timing: all timing goes through trace::NowNs().

const char kRawTiming[] = "raw-timing";

void CheckRawTiming(const SourceFile& file, std::vector<Finding>* out) {
  // trace.cc hosts the one sanctioned steady_clock read; benches time
  // themselves deliberately; kernel TUs are covered by the stricter
  // kernel-wall-clock rule (no double findings).
  if (file.path == "src/common/trace.cc" || StartsWith(file.path, "bench/") ||
      KernelTu(file.path)) {
    return;
  }
  static const std::regex re(
      "std::chrono::(?:steady_clock|system_clock|high_resolution_clock)\\b");
  for (size_t i = 0; i < file.code.size(); ++i) {
    if (std::regex_search(file.code[i], re)) {
      Report(file, static_cast<int>(i) + 1, kRawTiming,
             "direct std::chrono clock read; time through trace::NowNs() / "
             "TraceSpan (src/common/trace.h) so instrumentation stays "
             "centralized",
             out);
    }
  }
}

// ---------------------------------------------------------------------------
// gemm-literal-drift: float literals must match across ISA-tier TUs.

const char kGemmLiteralDrift[] = "gemm-literal-drift";

struct LiteralInfo {
  int count = 0;
  int first_line = 0;
};

std::map<std::string, LiteralInfo> FloatLiterals(const SourceFile& file) {
  // Decimal floats (1.0f, .5, 2e-3) and C99 hexfloats (0x1.8p-2f).
  static const std::regex re(
      "\\b[0-9]+\\.[0-9]*(?:[eE][+-]?[0-9]+)?[fF]?|"
      "\\.[0-9]+(?:[eE][+-]?[0-9]+)?[fF]?|"
      "\\b[0-9]+[eE][+-]?[0-9]+[fF]?|"
      "\\b0[xX][0-9a-fA-F]*\\.?[0-9a-fA-F]*[pP][+-]?[0-9]+[fF]?");
  std::map<std::string, LiteralInfo> literals;
  for (size_t i = 0; i < file.code.size(); ++i) {
    const std::string& line = file.code[i];
    for (auto it = std::sregex_iterator(line.begin(), line.end(), re);
         it != std::sregex_iterator(); ++it) {
      LiteralInfo& info = literals[it->str()];
      if (info.count == 0) info.first_line = static_cast<int>(i) + 1;
      ++info.count;
    }
  }
  return literals;
}

bool TierTu(const std::string& path) {
  static const std::regex re("^gemm_kernels_[a-z0-9]+\\.cc$");
  return std::regex_match(Basename(path), re);
}

void CheckGemmLiteralDrift(const std::vector<const SourceFile*>& tier_tus,
                           std::vector<Finding>* out) {
  for (size_t a = 0; a < tier_tus.size(); ++a) {
    for (size_t b = a + 1; b < tier_tus.size(); ++b) {
      const SourceFile& fa = *tier_tus[a];
      const SourceFile& fb = *tier_tus[b];
      const auto la = FloatLiterals(fa);
      const auto lb = FloatLiterals(fb);
      auto diff = [&](const SourceFile& present,
                      const std::map<std::string, LiteralInfo>& mine,
                      const SourceFile& other,
                      const std::map<std::string, LiteralInfo>& theirs) {
        for (const auto& [lit, info] : mine) {
          auto it = theirs.find(lit);
          const int there = it == theirs.end() ? 0 : it->second.count;
          if (info.count > there) {
            std::ostringstream msg;
            msg << "float literal " << lit << " appears " << info.count
                << "x here but " << there << "x in " << Basename(other.path)
                << "; ISA tiers must stay numerically identical";
            Report(present, info.first_line, kGemmLiteralDrift, msg.str(),
                   out);
          }
        }
      };
      diff(fa, la, fb, lb);
      diff(fb, lb, fa, la);
    }
  }
}

// ---------------------------------------------------------------------------
// raw-file-write: durable writes go through io::AtomicFileWriter.

const char kRawFileWrite[] = "raw-file-write";

void CheckRawFileWrite(const SourceFile& file, std::vector<Finding>* out) {
  // Only production code: tests, tools and benches write scratch files
  // directly and legitimately. file_io.* is the one sanctioned writer;
  // trace.cc streams spans to an append-only sink that cannot be
  // temp+rename'd (it outlives the process by design).
  if (!StartsWith(file.path, "src/") ||
      StartsWith(file.path, "src/common/file_io.") ||
      file.path == "src/common/trace.cc") {
    return;
  }
  static const std::regex re(
      "std::ofstream\\b|std::fstream\\b|\\bfopen\\s*\\(|\\bcreat\\s*\\(");
  for (size_t i = 0; i < file.code.size(); ++i) {
    if (std::regex_search(file.code[i], re)) {
      Report(file, static_cast<int>(i) + 1, kRawFileWrite,
             "raw file write; durable artifacts go through "
             "io::WriteFileAtomic / io::AtomicFileWriter "
             "(src/common/file_io.h) so a crash or full disk never leaves "
             "a torn file",
             out);
    }
  }
}

// ---------------------------------------------------------------------------
// mutex-unguarded: every mutex member names the state it protects.

const char kMutexUnguarded[] = "mutex-unguarded";

void CheckMutexUnguarded(const SourceFile& file, std::vector<Finding>* out) {
  static const std::regex decl(
      "^\\s*(?:mutable\\s+)?(?:std::mutex|std::recursive_mutex|"
      "std::timed_mutex|std::shared_mutex|(?:nlidb::)?Mutex)\\s+"
      "([A-Za-z_][A-Za-z0-9_]*)\\s*;");
  for (size_t i = 0; i < file.code.size(); ++i) {
    std::smatch m;
    if (!std::regex_search(file.code[i], m, decl)) continue;
    const std::string name = m[1].str();
    const std::string guarded = "NLIDB_GUARDED_BY(" + name + ")";
    const std::string pt_guarded = "NLIDB_PT_GUARDED_BY(" + name + ")";
    bool annotated = false;
    for (const std::string& line : file.code) {
      if (line.find(guarded) != std::string::npos ||
          line.find(pt_guarded) != std::string::npos) {
        annotated = true;
        break;
      }
    }
    if (!annotated) {
      Report(file, static_cast<int>(i) + 1, kMutexUnguarded,
             "mutex '" + name +
                 "' has no NLIDB_GUARDED_BY(" + name +
                 ") state in this file; annotate what it protects "
                 "(common/thread_annotations.h)",
             out);
    }
  }
}

// ---------------------------------------------------------------------------
// include-guard: path-derived guards, no #pragma once.

const char kIncludeGuard[] = "include-guard";

void CheckIncludeGuard(const SourceFile& file, std::vector<Finding>* out) {
  if (!EndsWith(file.path, ".h")) return;
  const std::string expected = ExpectedGuard(file.path);
  int ifndef_line = 0;  // 1-based, 0 = not found
  std::string found_guard;
  bool define_ok = false;
  for (size_t i = 0; i < file.raw.size(); ++i) {
    const std::string t = Trimmed(file.raw[i]);
    if (StartsWith(t, "#pragma once")) {
      Report(file, static_cast<int>(i) + 1, kIncludeGuard,
             "#pragma once; this tree uses named include guards "
             "(expected " + expected + ")",
             out);
    }
    if (ifndef_line == 0 && StartsWith(t, "#ifndef ")) {
      ifndef_line = static_cast<int>(i) + 1;
      found_guard = Trimmed(t.substr(8));
      // The guard define must be the immediately following directive.
      for (size_t j = i + 1; j < file.raw.size(); ++j) {
        const std::string u = Trimmed(file.raw[j]);
        if (u.empty()) continue;
        define_ok = u == "#define " + found_guard;
        break;
      }
    }
  }
  if (ifndef_line == 0) {
    Report(file, 1, kIncludeGuard,
           "missing include guard (expected #ifndef " + expected + ")", out);
  } else if (found_guard != expected || !define_ok) {
    Report(file, ifndef_line, kIncludeGuard,
           "include guard '" + found_guard + "' does not match the "
           "path-derived guard '" + expected + "' (or lacks the matching "
           "#define)",
           out);
  }
}

}  // namespace

std::string ExpectedGuard(const std::string& rel_path) {
  std::string p = rel_path;
  if (StartsWith(p, "src/")) p = p.substr(4);
  std::string guard = "NLIDB_";
  for (char c : p) {
    guard += std::isalnum(static_cast<unsigned char>(c))
                 ? static_cast<char>(
                       std::toupper(static_cast<unsigned char>(c)))
                 : '_';
  }
  guard += '_';
  return guard;
}

SourceFile LoadSource(std::string path, const std::string& contents) {
  SourceFile file;
  file.path = std::move(path);
  file.raw = SplitLines(contents);
  file.code = SplitLines(StripCommentsAndStrings(contents));
  return file;
}

bool LoadSourceFile(const std::string& abs_path, const std::string& rel_path,
                    SourceFile* out) {
  std::ifstream in(abs_path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  *out = LoadSource(rel_path, buf.str());
  return true;
}

std::vector<Finding> LintFiles(const std::vector<SourceFile>& files) {
  std::vector<Finding> findings;
  std::map<std::string, std::vector<const SourceFile*>> tier_tus_by_dir;
  for (const SourceFile& file : files) {
    CheckRawThread(file, &findings);
    CheckRawRandom(file, &findings);
    CheckKernelWallClock(file, &findings);
    CheckRawTiming(file, &findings);
    CheckRawFileWrite(file, &findings);
    CheckMutexUnguarded(file, &findings);
    CheckIncludeGuard(file, &findings);
    if (TierTu(file.path)) {
      tier_tus_by_dir[Dirname(file.path)].push_back(&file);
    }
  }
  for (const auto& [dir, tus] : tier_tus_by_dir) {
    CheckGemmLiteralDrift(tus, &findings);
  }
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              return a.rule < b.rule;
            });
  return findings;
}

std::vector<std::string> DefaultTree(const std::string& root) {
  std::vector<std::string> paths;
  for (const char* top : {"src", "tests", "tools", "bench"}) {
    const fs::path dir = fs::path(root) / top;
    if (!fs::is_directory(dir)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(dir)) {
      if (!entry.is_regular_file()) continue;
      const std::string ext = entry.path().extension().string();
      if (ext != ".h" && ext != ".cc" && ext != ".cpp" && ext != ".inc") {
        continue;
      }
      std::string rel =
          fs::relative(entry.path(), fs::path(root)).generic_string();
      if (StartsWith(rel, "tests/lint/fixtures/")) continue;
      paths.push_back(std::move(rel));
    }
  }
  std::sort(paths.begin(), paths.end());
  return paths;
}

std::vector<std::string> RuleDescriptions() {
  return {
      "raw-thread: no std::thread/std::async/pthread_* outside "
      "src/common/thread_pool.*",
      "raw-random: no rand()/srand()/std::random_device outside "
      "src/common/rng.*",
      "kernel-wall-clock: no clock/time calls inside GEMM kernel TUs",
      "raw-timing: no direct std::chrono clock reads outside "
      "src/common/trace.cc and bench/; use trace::NowNs()",
      "gemm-literal-drift: float literals identical across "
      "gemm_kernels_<tier>.cc TUs in one directory",
      "raw-file-write: no std::ofstream/fopen in src/ outside "
      "src/common/file_io.*; durable writes use io::AtomicFileWriter",
      "mutex-unguarded: every mutex member has NLIDB_GUARDED_BY state "
      "in the same file",
      "include-guard: headers carry the path-derived NLIDB_* include "
      "guard; #pragma once is banned",
  };
}

}  // namespace lint
}  // namespace nlidb
