#include "tools/lint_rules.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <regex>
#include <set>
#include <sstream>

namespace nlidb {
namespace lint {

namespace {

namespace fs = std::filesystem;

bool StartsWith(const std::string& s, const std::string& prefix) {
  return s.rfind(prefix, 0) == 0;
}

bool EndsWith(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

std::string Basename(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? path : path.substr(slash + 1);
}

std::string Dirname(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? std::string() : path.substr(0, slash);
}

std::string Trimmed(const std::string& s) {
  size_t b = s.find_first_not_of(" \t\r");
  if (b == std::string::npos) return std::string();
  size_t e = s.find_last_not_of(" \t\r");
  return s.substr(b, e - b + 1);
}

/// Blanks comments and string/char literal contents, preserving line
/// structure, so rule regexes only ever see code tokens.
std::string StripCommentsAndStrings(const std::string& src) {
  std::string out;
  out.reserve(src.size());
  enum class State { kCode, kLineComment, kBlockComment, kString, kChar };
  State state = State::kCode;
  for (size_t i = 0; i < src.size(); ++i) {
    const char c = src[i];
    const char next = i + 1 < src.size() ? src[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          out += "  ";
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          out += "  ";
          ++i;
        } else if (c == '"') {
          state = State::kString;
          out += ' ';
        } else if (c == '\'') {
          state = State::kChar;
          out += ' ';
        } else {
          out += c;
        }
        break;
      case State::kLineComment:
        if (c == '\n') {
          state = State::kCode;
          out += '\n';
        } else {
          out += ' ';
        }
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          state = State::kCode;
          out += "  ";
          ++i;
        } else {
          out += c == '\n' ? '\n' : ' ';
        }
        break;
      case State::kString:
      case State::kChar:
        if (c == '\\' && next != '\0') {
          out += "  ";
          ++i;
        } else if ((state == State::kString && c == '"') ||
                   (state == State::kChar && c == '\'')) {
          state = State::kCode;
          out += ' ';
        } else {
          out += c == '\n' ? '\n' : ' ';
        }
        break;
    }
  }
  return out;
}

std::vector<std::string> SplitLines(const std::string& s) {
  std::vector<std::string> lines;
  std::string cur;
  for (char c : s) {
    if (c == '\n') {
      lines.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  lines.push_back(cur);
  return lines;
}

/// The rule ids named by `nlidb-lint: disable(a, b, ...)` comments on
/// this raw line (possibly several comments; possibly several rules per
/// comment, comma-separated).
std::vector<std::string> DisabledRulesOn(const std::string& raw_line) {
  static const std::string kMarker = "nlidb-lint: disable(";
  std::vector<std::string> rules;
  size_t pos = 0;
  while ((pos = raw_line.find(kMarker, pos)) != std::string::npos) {
    const size_t open = pos + kMarker.size();
    const size_t close = raw_line.find(')', open);
    if (close == std::string::npos) break;
    std::string inside = raw_line.substr(open, close - open);
    size_t start = 0;
    while (start <= inside.size()) {
      size_t comma = inside.find(',', start);
      if (comma == std::string::npos) comma = inside.size();
      const std::string rule = Trimmed(inside.substr(start, comma - start));
      if (!rule.empty()) rules.push_back(rule);
      start = comma + 1;
    }
    pos = close + 1;
  }
  return rules;
}

/// True when the finding at `line` (1-based) in `file` is waived by a
/// `nlidb-lint: disable(rule)` (or `disable(rule, other, ...)`) comment
/// on the same or preceding line.
bool Suppressed(const SourceFile& file, int line, const std::string& rule) {
  for (int l = line - 1; l >= line - 2 && l >= 0; --l) {
    if (static_cast<size_t>(l) >= file.raw.size()) continue;
    for (const std::string& disabled : DisabledRulesOn(file.raw[l])) {
      if (disabled == rule) return true;
    }
  }
  return false;
}

void Report(const SourceFile& file, int line, const std::string& rule,
            const std::string& message, std::vector<Finding>* out) {
  if (Suppressed(file, line, rule)) return;
  out->push_back(Finding{file.path, line, rule, message});
}

// ---------------------------------------------------------------------------
// raw-thread: threading primitives outside the pool.

const char kRawThread[] = "raw-thread";

bool ThreadPoolFile(const std::string& path) {
  return path == "src/common/thread_pool.h" ||
         path == "src/common/thread_pool.cc";
}

void CheckRawThread(const SourceFile& file, std::vector<Finding>* out) {
  if (ThreadPoolFile(file.path)) return;
  static const std::regex re(
      "std::jthread\\b|std::thread\\b|std::async\\b|\\bpthread_[a-z_]+");
  for (size_t i = 0; i < file.code.size(); ++i) {
    if (std::regex_search(file.code[i], re)) {
      Report(file, static_cast<int>(i) + 1, kRawThread,
             "raw threading primitive; all concurrency goes through "
             "ThreadPool (src/common/thread_pool.h)",
             out);
    }
  }
}

// ---------------------------------------------------------------------------
// raw-random: nondeterministic RNG outside common/rng.

const char kRawRandom[] = "raw-random";

void CheckRawRandom(const SourceFile& file, std::vector<Finding>* out) {
  if (file.path == "src/common/rng.h" || file.path == "src/common/rng.cc") {
    return;
  }
  static const std::regex re(
      "std::random_device|\\bsrand\\s*\\(|\\brand\\s*\\(");
  for (size_t i = 0; i < file.code.size(); ++i) {
    if (std::regex_search(file.code[i], re)) {
      Report(file, static_cast<int>(i) + 1, kRawRandom,
             "nondeterministic randomness; use the seeded Rng in "
             "src/common/rng.h so every run reproduces",
             out);
    }
  }
}

// ---------------------------------------------------------------------------
// kernel-wall-clock: GEMM kernel TUs must be time-free.

const char kKernelWallClock[] = "kernel-wall-clock";

bool KernelTu(const std::string& path) {
  const std::string base = Basename(path);
  return StartsWith(base, "gemm_") && !EndsWith(base, "_test.cc");
}

void CheckKernelWallClock(const SourceFile& file, std::vector<Finding>* out) {
  if (!KernelTu(file.path)) return;
  static const std::regex re(
      "std::chrono|\\btime\\s*\\(|\\bclock\\s*\\(|\\bgettimeofday\\b|"
      "\\blocaltime\\b|\\bstrftime\\b|\\bDate\\b");
  for (size_t i = 0; i < file.code.size(); ++i) {
    if (std::regex_search(file.code[i], re)) {
      Report(file, static_cast<int>(i) + 1, kKernelWallClock,
             "wall-clock call inside a GEMM kernel TU; kernels must be "
             "time-free so identical inputs give bitwise-identical outputs",
             out);
    }
  }
}

// ---------------------------------------------------------------------------
// raw-timing: all timing goes through trace::NowNs().

const char kRawTiming[] = "raw-timing";

void CheckRawTiming(const SourceFile& file, std::vector<Finding>* out) {
  // trace.cc hosts the one sanctioned steady_clock read; benches time
  // themselves deliberately; kernel TUs are covered by the stricter
  // kernel-wall-clock rule (no double findings).
  if (file.path == "src/common/trace.cc" || StartsWith(file.path, "bench/") ||
      KernelTu(file.path)) {
    return;
  }
  static const std::regex re(
      "std::chrono::(?:steady_clock|system_clock|high_resolution_clock)\\b");
  for (size_t i = 0; i < file.code.size(); ++i) {
    if (std::regex_search(file.code[i], re)) {
      Report(file, static_cast<int>(i) + 1, kRawTiming,
             "direct std::chrono clock read; time through trace::NowNs() / "
             "TraceSpan (src/common/trace.h) so instrumentation stays "
             "centralized",
             out);
    }
  }
}

// ---------------------------------------------------------------------------
// gemm-literal-drift: float literals must match across ISA-tier TUs.

const char kGemmLiteralDrift[] = "gemm-literal-drift";

struct LiteralInfo {
  int count = 0;
  int first_line = 0;
};

std::map<std::string, LiteralInfo> FloatLiterals(const SourceFile& file) {
  // Decimal floats (1.0f, .5, 2e-3) and C99 hexfloats (0x1.8p-2f).
  static const std::regex re(
      "\\b[0-9]+\\.[0-9]*(?:[eE][+-]?[0-9]+)?[fF]?|"
      "\\.[0-9]+(?:[eE][+-]?[0-9]+)?[fF]?|"
      "\\b[0-9]+[eE][+-]?[0-9]+[fF]?|"
      "\\b0[xX][0-9a-fA-F]*\\.?[0-9a-fA-F]*[pP][+-]?[0-9]+[fF]?");
  std::map<std::string, LiteralInfo> literals;
  for (size_t i = 0; i < file.code.size(); ++i) {
    const std::string& line = file.code[i];
    for (auto it = std::sregex_iterator(line.begin(), line.end(), re);
         it != std::sregex_iterator(); ++it) {
      LiteralInfo& info = literals[it->str()];
      if (info.count == 0) info.first_line = static_cast<int>(i) + 1;
      ++info.count;
    }
  }
  return literals;
}

bool TierTu(const std::string& path) {
  static const std::regex re("^gemm_kernels_[a-z0-9]+\\.cc$");
  return std::regex_match(Basename(path), re);
}

void CheckGemmLiteralDrift(const std::vector<const SourceFile*>& tier_tus,
                           std::vector<Finding>* out) {
  for (size_t a = 0; a < tier_tus.size(); ++a) {
    for (size_t b = a + 1; b < tier_tus.size(); ++b) {
      const SourceFile& fa = *tier_tus[a];
      const SourceFile& fb = *tier_tus[b];
      const auto la = FloatLiterals(fa);
      const auto lb = FloatLiterals(fb);
      auto diff = [&](const SourceFile& present,
                      const std::map<std::string, LiteralInfo>& mine,
                      const SourceFile& other,
                      const std::map<std::string, LiteralInfo>& theirs) {
        for (const auto& [lit, info] : mine) {
          auto it = theirs.find(lit);
          const int there = it == theirs.end() ? 0 : it->second.count;
          if (info.count > there) {
            std::ostringstream msg;
            msg << "float literal " << lit << " appears " << info.count
                << "x here but " << there << "x in " << Basename(other.path)
                << "; ISA tiers must stay numerically identical";
            Report(present, info.first_line, kGemmLiteralDrift, msg.str(),
                   out);
          }
        }
      };
      diff(fa, la, fb, lb);
      diff(fb, lb, fa, la);
    }
  }
}

// ---------------------------------------------------------------------------
// raw-file-write: durable writes go through io::AtomicFileWriter.

const char kRawFileWrite[] = "raw-file-write";

void CheckRawFileWrite(const SourceFile& file, std::vector<Finding>* out) {
  // Only production code: tests, tools and benches write scratch files
  // directly and legitimately. file_io.* is the one sanctioned writer;
  // trace.cc streams spans to an append-only sink that cannot be
  // temp+rename'd (it outlives the process by design).
  if (!StartsWith(file.path, "src/") ||
      StartsWith(file.path, "src/common/file_io.") ||
      file.path == "src/common/trace.cc") {
    return;
  }
  static const std::regex re(
      "std::ofstream\\b|std::fstream\\b|\\bfopen\\s*\\(|\\bcreat\\s*\\(");
  for (size_t i = 0; i < file.code.size(); ++i) {
    if (std::regex_search(file.code[i], re)) {
      Report(file, static_cast<int>(i) + 1, kRawFileWrite,
             "raw file write; durable artifacts go through "
             "io::WriteFileAtomic / io::AtomicFileWriter "
             "(src/common/file_io.h) so a crash or full disk never leaves "
             "a torn file",
             out);
    }
  }
}

// ---------------------------------------------------------------------------
// mutex-unguarded: every mutex member names the state it protects.

const char kMutexUnguarded[] = "mutex-unguarded";
// CheckMutexUnguarded lives below with the statement scanner it shares
// with mutex-coverage.

// ---------------------------------------------------------------------------
// naked-lock: lock acquisition is RAII-only.

const char kNakedLock[] = "naked-lock";

/// The lock-infrastructure files where direct Lock()/Unlock()/lock()/
/// unlock() calls are the implementation, not a violation: the Mutex
/// wrapper itself and the lockdep detector operating beneath it.
bool LockInternalFile(const std::string& path) {
  return path == "src/common/mutex.h" || path == "src/common/lockdep.h" ||
         path == "src/common/lockdep.cc";
}

void CheckNakedLock(const SourceFile& file, std::vector<Finding>* out) {
  if (LockInternalFile(file.path)) return;
  // Zero-argument Lock/Unlock (and the std-style lowercase aliases)
  // invoked through . or -> — i.e. manual mutex manipulation. try_lock
  // variants are allowed (there is no RAII shape for a conditional
  // acquire); scoped helpers MutexLock/MutexUnlock never appear as
  // member calls.
  static const std::regex re(
      "(?:\\.|->)\\s*(?:Lock|Unlock|lock|unlock)\\s*\\(\\s*\\)");
  for (size_t i = 0; i < file.code.size(); ++i) {
    if (std::regex_search(file.code[i], re)) {
      Report(file, static_cast<int>(i) + 1, kNakedLock,
             "direct Lock()/Unlock() call; hold locks through MutexLock "
             "and drop them through MutexUnlock (src/common/mutex.h) so "
             "every exit path — returns, exceptions — restores the lock "
             "invariant and the lockdep held-set stays balanced",
             out);
    }
  }
}

// ---------------------------------------------------------------------------
// mutex-coverage: a class that owns a mutex annotates its mutable
// fields.

const char kMutexCoverage[] = "mutex-coverage";

/// One member-declaration statement of a parsed class body.
struct MemberStmt {
  std::string text;  // stripped-code text, braces' contents elided
  int line = 0;      // 1-based line where the statement starts
};

struct ParsedClass {
  std::string name;
  int line = 0;  // 1-based line of the head
  std::vector<MemberStmt> members;
};

/// Brace-depth scanner over the stripped code view. Good enough for
/// this tree's style: it recognizes `class`/`struct` heads (ignoring
/// `enum class`), collects the statements at each class's member depth
/// (function bodies and nested types are skipped; brace initializers
/// are elided from the statement text), and returns every class. When
/// `globals` is given, statements at file or namespace scope — the
/// other place a declaration attribute like NLIDB_GUARDED_BY can
/// legally appear — are collected there too.
std::vector<ParsedClass> ParseClasses(const SourceFile& file,
                                      std::vector<MemberStmt>* globals =
                                          nullptr) {
  static const std::regex head_re(
      "(?:^|[^A-Za-z0-9_])(class|struct)\\s+([A-Za-z_][A-Za-z0-9_]*)");
  static const std::regex access_re("\\b(?:public|private|protected)\\s*:");
  static const std::regex namespace_re(
      "(?:^|[^A-Za-z0-9_])namespace(?:$|[^A-Za-z0-9_])");

  struct Frame {
    bool is_class = false;
    bool is_namespace = false;  // file scope counts; bodies/inits do not
    ParsedClass cls;
    std::string stmt;
    int stmt_line = 0;
    // The enclosing statement as of this frame's '{', restored when the
    // brace pair turns out to be an initializer (`Mutex mu_{"name"};`)
    // rather than a body.
    std::string pending_stmt;
    int pending_line = 0;
  };
  std::vector<ParsedClass> classes;
  std::vector<Frame> stack;
  Frame root;
  root.is_namespace = true;  // file scope
  stack.push_back(std::move(root));

  for (size_t li = 0; li < file.code.size(); ++li) {
    const std::string& line = file.code[li];
    for (size_t ci = 0; ci < line.size(); ++ci) {
      const char c = line[ci];
      Frame& top = stack.back();
      if (c == '{') {
        // Class head iff the pending statement ends in a class/struct
        // introduction that was not `enum class` and not a template
        // parameter — token-level approximation.
        std::smatch m;
        std::string head = top.stmt;
        bool is_class = false;
        std::string name;
        for (auto it = std::sregex_iterator(head.begin(), head.end(),
                                            head_re);
             it != std::sregex_iterator(); ++it) {
          const size_t at = static_cast<size_t>(it->position(1));
          const std::string before = head.substr(0, at);
          if (before.size() >= 5 &&
              before.find("enum") != std::string::npos &&
              Trimmed(before.substr(before.rfind("enum"))) == "enum") {
            continue;  // `enum class Kind`
          }
          is_class = true;
          name = (*it)[2].str();
        }
        Frame next;
        next.is_class = is_class;
        next.is_namespace =
            !is_class && std::regex_search(head, namespace_re);
        if (is_class) {
          next.cls.name = name;
          next.cls.line = top.stmt_line > 0 ? top.stmt_line
                                            : static_cast<int>(li) + 1;
        }
        next.pending_stmt = std::move(top.stmt);
        next.pending_line = top.stmt_line;
        top.stmt.clear();
        top.stmt_line = 0;
        stack.push_back(std::move(next));
      } else if (c == '}') {
        if (stack.size() > 1) {
          Frame closed = std::move(stack.back());
          stack.pop_back();
          if (closed.is_class) classes.push_back(std::move(closed.cls));
          // The enclosing statement resumes only if this brace pair was
          // an initializer (next non-space char is ';' / ',' / '}');
          // a function body otherwise ends the statement.
          size_t peek = ci + 1;
          size_t pl = li;
          char nextc = '\0';
          while (pl < file.code.size()) {
            const std::string& pline = file.code[pl];
            while (peek < pline.size() &&
                   std::isspace(static_cast<unsigned char>(pline[peek]))) {
              ++peek;
            }
            if (peek < pline.size()) {
              nextc = pline[peek];
              break;
            }
            ++pl;
            peek = 0;
          }
          if (nextc == ';' || nextc == ',' || nextc == '}') {
            // Initializer (or `class Foo {...};` head): the enclosing
            // statement resumes with the braces' contents elided.
            stack.back().stmt = std::move(closed.pending_stmt);
            stack.back().stmt_line = closed.pending_line;
          } else {
            stack.back().stmt.clear();
            stack.back().stmt_line = 0;
          }
        }
      } else if (c == ';') {
        if (top.is_class) {
          std::string text =
              Trimmed(std::regex_replace(top.stmt, access_re, " "));
          if (!text.empty()) {
            top.cls.members.push_back(MemberStmt{text, top.stmt_line});
          }
        } else if (top.is_namespace && globals != nullptr) {
          std::string text = Trimmed(top.stmt);
          if (!text.empty()) {
            globals->push_back(MemberStmt{text, top.stmt_line});
          }
        }
        top.stmt.clear();
        top.stmt_line = 0;
      } else if (c == ':') {
        // Access labels reset the statement so the next member's line
        // is its own, not the label's. `::` and bitfields fall through.
        const std::string t = Trimmed(top.stmt);
        if (t == "public" || t == "private" || t == "protected") {
          top.stmt.clear();
          top.stmt_line = 0;
        } else {
          top.stmt += c;
        }
      } else {
        if (!std::isspace(static_cast<unsigned char>(c)) &&
            top.stmt_line == 0) {
          top.stmt_line = static_cast<int>(li) + 1;
        }
        top.stmt += c;
      }
    }
    for (Frame& f : stack) {
      if (!f.stmt.empty()) f.stmt += ' ';
    }
  }
  return classes;
}

/// True when `stmt` declares a mutex the class owns (not a reference).
bool DeclaresMutexMember(const std::string& stmt) {
  static const std::regex re(
      "(?:^|[^A-Za-z0-9_:])(?:(?:nlidb::)?Mutex|std::mutex|"
      "std::recursive_mutex|std::timed_mutex|std::shared_mutex)\\s+"
      "[A-Za-z_][A-Za-z0-9_]*\\s*(?:\\[|=|\\{|$)");
  return std::regex_search(stmt, re);
}

/// True when a member statement needs no NLIDB_GUARDED_BY: it is not
/// mutable shared state, or its synchronization story is carried by the
/// type itself.
bool CoverageExempt(const std::string& stmt) {
  // Already annotated (the macro names the guarding capability).
  if (stmt.find("NLIDB_GUARDED_BY") != std::string::npos ||
      stmt.find("NLIDB_PT_GUARDED_BY") != std::string::npos) {
    return true;
  }
  // Not fields: nested types, aliases, friends, functions (any
  // parenthesis at this point — annotated fields were accepted above),
  // statics and constexpr constants.
  static const std::regex non_field(
      "^(?:template\\b|using\\b|typedef\\b|friend\\b|static\\b|"
      "constexpr\\b|enum\\b|class\\b|struct\\b|union\\b)");
  if (std::regex_search(stmt, non_field)) return true;
  if (stmt.find('(') != std::string::npos) return true;
  // The synchronization primitives themselves.
  static const std::regex lock_type(
      "(?:^|[^A-Za-z0-9_:])(?:(?:nlidb::)?Mutex|std::mutex|"
      "std::recursive_mutex|std::timed_mutex|std::shared_mutex|"
      "(?:nlidb::)?CondVar|std::condition_variable(?:_any)?)"
      "(?:$|[^A-Za-z0-9_])");
  if (std::regex_search(stmt, lock_type)) return true;
  // Atomics synchronize themselves.
  static const std::regex atomic_re(
      "^(?:mutable\\s+)?(?:std::)?atomic\\b");
  if (std::regex_search(stmt, atomic_re)) return true;
  // References bind once; const values and const pointers (`* const`)
  // never change after construction. (`const char* p` — a mutable
  // pointer to const data — is NOT exempt.)
  if (stmt.find('&') != std::string::npos) return true;
  static const std::regex const_ptr("\\*\\s*const\\b");
  if (std::regex_search(stmt, const_ptr)) return true;
  static const std::regex const_value("^const\\b");
  if (std::regex_search(stmt, const_value) &&
      stmt.find('*') == std::string::npos) {
    return true;
  }
  return false;
}

void CheckMutexUnguarded(const SourceFile& file, std::vector<Finding>* out) {
  // Fires only where NLIDB_GUARDED_BY can actually be written: class
  // members and file/namespace-scope globals. Function-local mutexes
  // guard locals the declaration attribute cannot name, so they are out
  // of scope for this rule (naked-lock and lockdep still watch them).
  // Statement text arrives with brace initializers elided, so both
  // `Mutex mu_;` and `Mutex mu_{"serving.queue"};` reduce to the same
  // shape.
  static const std::regex decl(
      "^(?:mutable\\s+|static\\s+|inline\\s+)*"
      "(?:std::mutex|std::recursive_mutex|std::timed_mutex|"
      "std::shared_mutex|(?:nlidb::)?Mutex)\\s+"
      "([A-Za-z_][A-Za-z0-9_]*)\\s*=?\\s*$");
  std::vector<MemberStmt> decls;
  for (const ParsedClass& cls : ParseClasses(file, &decls)) {
    decls.insert(decls.end(), cls.members.begin(), cls.members.end());
  }
  for (const MemberStmt& stmt : decls) {
    std::smatch m;
    if (!std::regex_match(stmt.text, m, decl)) continue;
    const std::string name = m[1].str();
    const std::string guarded = "NLIDB_GUARDED_BY(" + name + ")";
    const std::string pt_guarded = "NLIDB_PT_GUARDED_BY(" + name + ")";
    bool annotated = false;
    for (const std::string& line : file.code) {
      if (line.find(guarded) != std::string::npos ||
          line.find(pt_guarded) != std::string::npos) {
        annotated = true;
        break;
      }
    }
    if (!annotated) {
      Report(file, stmt.line, kMutexUnguarded,
             "mutex '" + name +
                 "' has no NLIDB_GUARDED_BY(" + name +
                 ") state in this file; annotate what it protects "
                 "(common/thread_annotations.h)",
             out);
    }
  }
}

void CheckMutexCoverage(const SourceFile& file, std::vector<Finding>* out) {
  // mutex.h's own identity fields (name/site, ctor-set) and the lockdep
  // graph internals (raw std::mutex by necessity — it runs beneath the
  // annotated wrapper) are the two structural exemptions.
  if (LockInternalFile(file.path)) return;
  for (const ParsedClass& cls : ParseClasses(file)) {
    bool owns_mutex = false;
    for (const MemberStmt& m : cls.members) {
      if (DeclaresMutexMember(m.text)) {
        owns_mutex = true;
        break;
      }
    }
    if (!owns_mutex) continue;
    for (const MemberStmt& m : cls.members) {
      if (CoverageExempt(m.text)) continue;
      Report(file, m.line, kMutexCoverage,
             "class '" + cls.name +
                 "' owns a mutex but this field has no NLIDB_GUARDED_BY "
                 "annotation; name its guard, make it const/atomic, or "
                 "suppress with a comment explaining the synchronization",
             out);
    }
  }
}

// ---------------------------------------------------------------------------
// include-guard: path-derived guards, no #pragma once.

const char kIncludeGuard[] = "include-guard";

void CheckIncludeGuard(const SourceFile& file, std::vector<Finding>* out) {
  if (!EndsWith(file.path, ".h")) return;
  const std::string expected = ExpectedGuard(file.path);
  int ifndef_line = 0;  // 1-based, 0 = not found
  std::string found_guard;
  bool define_ok = false;
  for (size_t i = 0; i < file.raw.size(); ++i) {
    const std::string t = Trimmed(file.raw[i]);
    if (StartsWith(t, "#pragma once")) {
      Report(file, static_cast<int>(i) + 1, kIncludeGuard,
             "#pragma once; this tree uses named include guards "
             "(expected " + expected + ")",
             out);
    }
    if (ifndef_line == 0 && StartsWith(t, "#ifndef ")) {
      ifndef_line = static_cast<int>(i) + 1;
      found_guard = Trimmed(t.substr(8));
      // The guard define must be the immediately following directive.
      for (size_t j = i + 1; j < file.raw.size(); ++j) {
        const std::string u = Trimmed(file.raw[j]);
        if (u.empty()) continue;
        define_ok = u == "#define " + found_guard;
        break;
      }
    }
  }
  if (ifndef_line == 0) {
    Report(file, 1, kIncludeGuard,
           "missing include guard (expected #ifndef " + expected + ")", out);
  } else if (found_guard != expected || !define_ok) {
    Report(file, ifndef_line, kIncludeGuard,
           "include guard '" + found_guard + "' does not match the "
           "path-derived guard '" + expected + "' (or lacks the matching "
           "#define)",
           out);
  }
}

}  // namespace

std::string ExpectedGuard(const std::string& rel_path) {
  std::string p = rel_path;
  if (StartsWith(p, "src/")) p = p.substr(4);
  std::string guard = "NLIDB_";
  for (char c : p) {
    guard += std::isalnum(static_cast<unsigned char>(c))
                 ? static_cast<char>(
                       std::toupper(static_cast<unsigned char>(c)))
                 : '_';
  }
  guard += '_';
  return guard;
}

SourceFile LoadSource(std::string path, const std::string& contents) {
  SourceFile file;
  file.path = std::move(path);
  file.raw = SplitLines(contents);
  file.code = SplitLines(StripCommentsAndStrings(contents));
  return file;
}

bool LoadSourceFile(const std::string& abs_path, const std::string& rel_path,
                    SourceFile* out) {
  std::ifstream in(abs_path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  *out = LoadSource(rel_path, buf.str());
  return true;
}

std::vector<Finding> LintFiles(const std::vector<SourceFile>& files) {
  std::vector<Finding> findings;
  std::map<std::string, std::vector<const SourceFile*>> tier_tus_by_dir;
  for (const SourceFile& file : files) {
    CheckRawThread(file, &findings);
    CheckRawRandom(file, &findings);
    CheckKernelWallClock(file, &findings);
    CheckRawTiming(file, &findings);
    CheckRawFileWrite(file, &findings);
    CheckMutexUnguarded(file, &findings);
    CheckNakedLock(file, &findings);
    CheckMutexCoverage(file, &findings);
    CheckIncludeGuard(file, &findings);
    if (TierTu(file.path)) {
      tier_tus_by_dir[Dirname(file.path)].push_back(&file);
    }
  }
  for (const auto& [dir, tus] : tier_tus_by_dir) {
    CheckGemmLiteralDrift(tus, &findings);
  }
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              return a.rule < b.rule;
            });
  return findings;
}

std::vector<std::string> DefaultTree(const std::string& root) {
  std::vector<std::string> paths;
  for (const char* top : {"src", "tests", "tools", "bench"}) {
    const fs::path dir = fs::path(root) / top;
    if (!fs::is_directory(dir)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(dir)) {
      if (!entry.is_regular_file()) continue;
      const std::string ext = entry.path().extension().string();
      if (ext != ".h" && ext != ".cc" && ext != ".cpp" && ext != ".inc") {
        continue;
      }
      std::string rel =
          fs::relative(entry.path(), fs::path(root)).generic_string();
      if (StartsWith(rel, "tests/lint/fixtures/")) continue;
      paths.push_back(std::move(rel));
    }
  }
  std::sort(paths.begin(), paths.end());
  return paths;
}

std::vector<std::string> RuleDescriptions() {
  return {
      "raw-thread: no std::thread/std::async/pthread_* outside "
      "src/common/thread_pool.*",
      "raw-random: no rand()/srand()/std::random_device outside "
      "src/common/rng.*",
      "kernel-wall-clock: no clock/time calls inside GEMM kernel TUs",
      "raw-timing: no direct std::chrono clock reads outside "
      "src/common/trace.cc and bench/; use trace::NowNs()",
      "gemm-literal-drift: float literals identical across "
      "gemm_kernels_<tier>.cc TUs in one directory",
      "raw-file-write: no std::ofstream/fopen in src/ outside "
      "src/common/file_io.*; durable writes use io::AtomicFileWriter",
      "mutex-unguarded: every mutex member has NLIDB_GUARDED_BY state "
      "in the same file",
      "naked-lock: no direct Lock()/Unlock() calls outside the Mutex "
      "wrapper and lockdep internals; use MutexLock / MutexUnlock",
      "mutex-coverage: every field of a mutex-owning class is "
      "NLIDB_GUARDED_BY-annotated, const, atomic, or suppressed with "
      "a rationale",
      "include-guard: headers carry the path-derived NLIDB_* include "
      "guard; #pragma once is banned",
  };
}

std::vector<Suppression> AuditSuppressions(
    const std::vector<SourceFile>& files) {
  // Only real rule ids count: prose like `disable(<rule-id>)` in the
  // checker's own documentation must not consume allowlist budget.
  const std::set<std::string> known = {
      kRawThread,  kRawRandom,      kKernelWallClock, kRawTiming,
      kGemmLiteralDrift, kRawFileWrite, kMutexUnguarded, kNakedLock,
      kMutexCoverage, kIncludeGuard};
  std::vector<Suppression> out;
  for (const SourceFile& file : files) {
    for (size_t i = 0; i < file.raw.size(); ++i) {
      for (const std::string& rule : DisabledRulesOn(file.raw[i])) {
        if (!known.count(rule)) continue;
        out.push_back(Suppression{file.path, static_cast<int>(i) + 1, rule});
      }
    }
  }
  std::sort(out.begin(), out.end(),
            [](const Suppression& a, const Suppression& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              return a.rule < b.rule;
            });
  return out;
}

std::vector<SuppressionBudget> ParseAllowlist(
    const std::string& contents, std::vector<std::string>* errors) {
  std::vector<SuppressionBudget> budgets;
  std::istringstream in(contents);
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const std::string t = Trimmed(line);
    if (t.empty() || t[0] == '#') continue;
    std::istringstream fields(t);
    SuppressionBudget b;
    std::string count;
    if (!(fields >> b.file >> b.rule >> count) ||
        (fields >> std::ws, !fields.eof())) {
      errors->push_back("allowlist line " + std::to_string(lineno) +
                        ": expected '<file> <rule> <max_count>', got: " + t);
      continue;
    }
    char* end = nullptr;
    b.max_count = static_cast<int>(std::strtol(count.c_str(), &end, 10));
    if (end == nullptr || *end != '\0' || b.max_count <= 0) {
      errors->push_back("allowlist line " + std::to_string(lineno) +
                        ": max_count must be a positive integer, got: " +
                        count);
      continue;
    }
    budgets.push_back(std::move(b));
  }
  return budgets;
}

std::vector<std::string> CheckSuppressionBudget(
    const std::vector<Suppression>& suppressions,
    const std::vector<SuppressionBudget>& budgets,
    std::vector<std::string>* stale_notes) {
  std::map<std::pair<std::string, std::string>, int> counts;
  for (const Suppression& s : suppressions) ++counts[{s.file, s.rule}];
  std::map<std::pair<std::string, std::string>, int> allowed;
  for (const SuppressionBudget& b : budgets) {
    allowed[{b.file, b.rule}] += b.max_count;
  }
  std::vector<std::string> violations;
  for (const auto& [key, n] : counts) {
    const auto it = allowed.find(key);
    const int budget = it == allowed.end() ? 0 : it->second;
    if (n > budget) {
      violations.push_back(
          key.first + ": " + std::to_string(n) + " suppression(s) of '" +
          key.second + "' but the allowlist budget is " +
          std::to_string(budget) +
          "; new suppressions need a reviewed entry in "
          "tools/lint_suppressions.txt");
    }
  }
  if (stale_notes != nullptr) {
    for (const auto& [key, budget] : allowed) {
      const auto it = counts.find(key);
      const int n = it == counts.end() ? 0 : it->second;
      if (n < budget) {
        stale_notes->push_back(
            key.first + ": allowlist grants " + std::to_string(budget) +
            " suppression(s) of '" + key.second + "' but only " +
            std::to_string(n) + " exist; shrink the entry");
      }
    }
  }
  return violations;
}

}  // namespace lint
}  // namespace nlidb
