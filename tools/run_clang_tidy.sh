#!/usr/bin/env bash
# Runs clang-tidy with the repo's curated .clang-tidy profile over the
# library and tool sources, using the CMake compile database.
#
#   tools/run_clang_tidy.sh [build-dir] [files...]
#
# With no files, lints every .cc/.cpp under src/ and tools/. Pass
# explicit files (e.g. the changed set from `git diff --name-only`) to
# lint a subset; non-C++ and deleted paths are filtered out, so piping a
# raw diff list in is safe. Exit status is clang-tidy's: nonzero on
# error-level findings (WarningsAsErrors in .clang-tidy decides which).
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"
[ "$#" -gt 0 ] && shift

if ! command -v clang-tidy >/dev/null 2>&1; then
  echo "run_clang_tidy.sh: clang-tidy not found on PATH" >&2
  exit 2
fi
if [ ! -f "$BUILD_DIR/compile_commands.json" ]; then
  echo "run_clang_tidy.sh: $BUILD_DIR/compile_commands.json missing;" \
       "configure cmake first (CMAKE_EXPORT_COMPILE_COMMANDS is on by" \
       "default in this tree)" >&2
  exit 2
fi

FILES=()
if [ "$#" -gt 0 ]; then
  for f in "$@"; do
    case "$f" in
      *.cc|*.cpp) [ -f "$f" ] && FILES+=("$f") ;;
    esac
  done
else
  while IFS= read -r f; do
    FILES+=("$f")
  done < <(find src tools -name '*.cc' -o -name '*.cpp' | sort)
fi

if [ "${#FILES[@]}" -eq 0 ]; then
  echo "run_clang_tidy.sh: nothing to lint" >&2
  exit 0
fi

echo "clang-tidy over ${#FILES[@]} files (profile: .clang-tidy)" >&2
clang-tidy -p "$BUILD_DIR" --quiet "${FILES[@]}"
