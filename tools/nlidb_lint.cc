// CLI: project-rule checker gating CI (DESIGN.md "Static contract
// architecture"). Token/regex level, no libclang.
//
//   nlidb_lint [--root <dir>] [--list-rules] [paths...]
//
// With no paths, lints every .h/.cc/.cpp/.inc under <root>/{src,tests,
// tools,bench}, skipping the deliberately-violating fixtures in
// tests/lint/fixtures/ (pass those explicitly to lint them). Paths are
// taken relative to --root (default: the current directory). Output is
// `file:line: rule-id: message`, one finding per line; exit status is 0
// when clean, 1 when findings were reported, 2 on usage or I/O errors.

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "tools/lint_rules.h"

int main(int argc, char** argv) {
  namespace fs = std::filesystem;
  using nlidb::lint::Finding;
  using nlidb::lint::SourceFile;

  std::string root = ".";
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "nlidb_lint: --root needs a directory\n");
        return 2;
      }
      root = argv[++i];
    } else if (arg == "--list-rules") {
      for (const std::string& desc : nlidb::lint::RuleDescriptions()) {
        std::printf("%s\n", desc.c_str());
      }
      return 0;
    } else if (arg == "--help") {
      std::printf("usage: nlidb_lint [--root <dir>] [--list-rules] "
                  "[paths...]\n");
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "nlidb_lint: unknown flag %s\n", arg.c_str());
      return 2;
    } else {
      paths.push_back(arg);
    }
  }
  if (!fs::is_directory(root)) {
    std::fprintf(stderr, "nlidb_lint: --root %s is not a directory\n",
                 root.c_str());
    return 2;
  }
  if (paths.empty()) paths = nlidb::lint::DefaultTree(root);

  std::vector<SourceFile> files;
  files.reserve(paths.size());
  for (const std::string& rel : paths) {
    const fs::path abs =
        fs::path(rel).is_absolute() ? fs::path(rel) : fs::path(root) / rel;
    SourceFile file;
    if (!nlidb::lint::LoadSourceFile(abs.string(), rel, &file)) {
      std::fprintf(stderr, "nlidb_lint: cannot read %s\n",
                   abs.string().c_str());
      return 2;
    }
    files.push_back(std::move(file));
  }

  const std::vector<Finding> findings = nlidb::lint::LintFiles(files);
  for (const Finding& f : findings) {
    std::printf("%s:%d: %s: %s\n", f.file.c_str(), f.line, f.rule.c_str(),
                f.message.c_str());
  }
  if (findings.empty()) {
    std::fprintf(stderr, "nlidb_lint: %zu files clean\n", files.size());
    return 0;
  }
  std::fprintf(stderr, "nlidb_lint: %zu findings in %zu files\n",
               findings.size(), files.size());
  return 1;
}
