// CLI: project-rule checker gating CI (DESIGN.md "Static contract
// architecture"). Token/regex level, no libclang.
//
//   nlidb_lint [--root <dir>] [--list-rules] [paths...]
//   nlidb_lint --suppression-audit [--allowlist <file>] [--root <dir>]
//              [paths...]
//
// With no paths, lints every .h/.cc/.cpp/.inc under <root>/{src,tests,
// tools,bench}, skipping the deliberately-violating fixtures in
// tests/lint/fixtures/ (pass those explicitly to lint them). Paths are
// taken relative to --root (default: the current directory). Output is
// `file:line: rule-id: message`, one finding per line; exit status is 0
// when clean, 1 when findings were reported, 2 on usage or I/O errors.
//
// --suppression-audit lists every `nlidb-lint: disable(...)` comment in
// the tree as `file:line: rule`. With --allowlist it additionally
// enforces the suppression budget (`<file> <rule> <max_count>` per
// line): exit 1 when a (file, rule) pair has more suppressions than the
// committed allowlist grants, so waiving a rule is a reviewed diff, not
// a drive-by comment. Stale allowlist entries (budget larger than the
// actual count) are reported as warnings but do not fail the audit.

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "tools/lint_rules.h"

int main(int argc, char** argv) {
  namespace fs = std::filesystem;
  using nlidb::lint::Finding;
  using nlidb::lint::SourceFile;
  using nlidb::lint::Suppression;
  using nlidb::lint::SuppressionBudget;

  std::string root = ".";
  std::string allowlist_path;
  bool suppression_audit = false;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "nlidb_lint: --root needs a directory\n");
        return 2;
      }
      root = argv[++i];
    } else if (arg == "--allowlist") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "nlidb_lint: --allowlist needs a file\n");
        return 2;
      }
      allowlist_path = argv[++i];
    } else if (arg == "--suppression-audit") {
      suppression_audit = true;
    } else if (arg == "--list-rules") {
      for (const std::string& desc : nlidb::lint::RuleDescriptions()) {
        std::printf("%s\n", desc.c_str());
      }
      return 0;
    } else if (arg == "--help") {
      std::printf(
          "usage: nlidb_lint [--root <dir>] [--list-rules] [paths...]\n"
          "       nlidb_lint --suppression-audit [--allowlist <file>]\n"
          "                  [--root <dir>] [paths...]\n");
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "nlidb_lint: unknown flag %s\n", arg.c_str());
      return 2;
    } else {
      paths.push_back(arg);
    }
  }
  if (!suppression_audit && !allowlist_path.empty()) {
    std::fprintf(stderr,
                 "nlidb_lint: --allowlist requires --suppression-audit\n");
    return 2;
  }
  if (!fs::is_directory(root)) {
    std::fprintf(stderr, "nlidb_lint: --root %s is not a directory\n",
                 root.c_str());
    return 2;
  }
  if (paths.empty()) paths = nlidb::lint::DefaultTree(root);

  std::vector<SourceFile> files;
  files.reserve(paths.size());
  for (const std::string& rel : paths) {
    const fs::path abs =
        fs::path(rel).is_absolute() ? fs::path(rel) : fs::path(root) / rel;
    SourceFile file;
    if (!nlidb::lint::LoadSourceFile(abs.string(), rel, &file)) {
      std::fprintf(stderr, "nlidb_lint: cannot read %s\n",
                   abs.string().c_str());
      return 2;
    }
    files.push_back(std::move(file));
  }

  if (suppression_audit) {
    const std::vector<Suppression> suppressions =
        nlidb::lint::AuditSuppressions(files);
    for (const Suppression& s : suppressions) {
      std::printf("%s:%d: %s\n", s.file.c_str(), s.line, s.rule.c_str());
    }
    if (allowlist_path.empty()) {
      std::fprintf(stderr, "nlidb_lint: %zu suppression(s) in %zu files\n",
                   suppressions.size(), files.size());
      return 0;
    }
    std::ifstream in(allowlist_path);
    if (!in) {
      std::fprintf(stderr, "nlidb_lint: cannot read allowlist %s\n",
                   allowlist_path.c_str());
      return 2;
    }
    std::ostringstream contents;
    contents << in.rdbuf();
    std::vector<std::string> parse_errors;
    const std::vector<SuppressionBudget> budgets =
        nlidb::lint::ParseAllowlist(contents.str(), &parse_errors);
    for (const std::string& err : parse_errors) {
      std::fprintf(stderr, "nlidb_lint: %s\n", err.c_str());
    }
    if (!parse_errors.empty()) return 2;
    std::vector<std::string> stale;
    const std::vector<std::string> violations =
        nlidb::lint::CheckSuppressionBudget(suppressions, budgets, &stale);
    for (const std::string& note : stale) {
      std::fprintf(stderr, "nlidb_lint: warning: stale allowlist: %s\n",
                   note.c_str());
    }
    for (const std::string& v : violations) {
      std::fprintf(stderr, "nlidb_lint: over budget: %s\n", v.c_str());
    }
    if (violations.empty()) {
      std::fprintf(stderr,
                   "nlidb_lint: %zu suppression(s) within the allowlist "
                   "budget\n",
                   suppressions.size());
      return 0;
    }
    return 1;
  }

  const std::vector<Finding> findings = nlidb::lint::LintFiles(files);
  for (const Finding& f : findings) {
    std::printf("%s:%d: %s: %s\n", f.file.c_str(), f.line, f.rule.c_str(),
                f.message.c_str());
  }
  if (findings.empty()) {
    std::fprintf(stderr, "nlidb_lint: %zu files clean\n", files.size());
    return 0;
  }
  std::fprintf(stderr, "nlidb_lint: %zu findings in %zu files\n",
               findings.size(), files.size());
  return 1;
}
