#ifndef NLIDB_EVAL_METRICS_H_
#define NLIDB_EVAL_METRICS_H_

#include <functional>
#include <string>

#include "core/pipeline.h"
#include "data/example.h"

namespace nlidb {
namespace eval {

/// The three metrics of Sec. VII: logical-form accuracy (token-by-token
/// agreement, condition order included), query-match accuracy (agreement
/// of canonical representations) and execution accuracy (result-set
/// agreement when both queries run against the table).
struct AccuracyReport {
  float acc_lf = 0.0f;
  float acc_qm = 0.0f;
  float acc_ex = 0.0f;
  int count = 0;
  int translation_failures = 0;  // recovery/decode errors (counted wrong)

  std::string ToString() const;
};

/// Per-example comparisons.
bool LogicalFormMatch(const sql::SelectQuery& predicted,
                      const sql::SelectQuery& gold);
bool QueryMatch(const sql::SelectQuery& predicted, const sql::SelectQuery& gold,
                const sql::Schema& schema);
bool ExecutionMatch(const sql::SelectQuery& predicted,
                    const sql::SelectQuery& gold, const sql::Table& table);

/// A model under evaluation: anything that maps an example to a query.
using TranslateFn =
    std::function<StatusOr<sql::SelectQuery>(const data::Example&)>;

/// Evaluates `translate` over a dataset on all three metrics.
AccuracyReport Evaluate(const data::Dataset& dataset,
                        const TranslateFn& translate);

/// Convenience: evaluates a trained pipeline.
AccuracyReport EvaluatePipeline(const core::NlidbPipeline& pipeline,
                                const data::Dataset& dataset);

/// Mention-detection quality (Sec. VII-A1).
struct MentionReport {
  /// Fraction of examples whose predicted ($COND_COL, $COND_VAL) pairs
  /// match the gold conditions exactly (canonical, order-free) — the
  /// 91.8%-vs-87.9% comparison against TypeSQL.
  float cond_col_val_acc = 0.0f;
  /// Span-level column mention detection quality over explicit mentions.
  float span_precision = 0.0f;
  float span_recall = 0.0f;
  float span_f1 = 0.0f;
  int count = 0;
};

/// Evaluates mention detection of `pipeline.annotator()` on a dataset.
/// A predicted span counts as matching a gold span when they overlap
/// (partial-credit criterion used for span case studies).
MentionReport EvaluateMentions(const core::NlidbPipeline& pipeline,
                               const data::Dataset& dataset);

/// Table III support: accuracy of the raw annotated SQL s^a (before
/// recovery) — the decoded tokens must equal the gold query rendered
/// under the *predicted* annotation — and Acc_qm after recovery.
struct RecoveryReport {
  float acc_before = 0.0f;
  float acc_after = 0.0f;
  int count = 0;
};

RecoveryReport EvaluateRecovery(const core::NlidbPipeline& pipeline,
                                const data::Dataset& dataset);

}  // namespace eval
}  // namespace nlidb

#endif  // NLIDB_EVAL_METRICS_H_
