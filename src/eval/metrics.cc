#include "eval/metrics.h"

#include <algorithm>
#include <set>
#include <sstream>

#include "common/strings.h"
#include "sql/executor.h"

namespace nlidb {
namespace eval {

std::string AccuracyReport::ToString() const {
  std::ostringstream os;
  os.precision(1);
  os << std::fixed << "Acc_lf " << 100 * acc_lf << "%  Acc_qm "
     << 100 * acc_qm << "%  Acc_ex " << 100 * acc_ex << "%  (n=" << count
     << ", failures=" << translation_failures << ")";
  return os.str();
}

bool LogicalFormMatch(const sql::SelectQuery& predicted,
                      const sql::SelectQuery& gold) {
  return predicted == gold;
}

bool QueryMatch(const sql::SelectQuery& predicted, const sql::SelectQuery& gold,
                const sql::Schema& schema) {
  return sql::CanonicalSql(predicted, schema) ==
         sql::CanonicalSql(gold, schema);
}

bool ExecutionMatch(const sql::SelectQuery& predicted,
                    const sql::SelectQuery& gold, const sql::Table& table) {
  auto pr = sql::Execute(predicted, table);
  auto gr = sql::Execute(gold, table);
  if (!pr.ok() || !gr.ok()) return false;
  return sql::ResultsEqual(*pr, *gr);
}

AccuracyReport Evaluate(const data::Dataset& dataset,
                        const TranslateFn& translate) {
  AccuracyReport report;
  report.count = static_cast<int>(dataset.examples.size());
  if (report.count == 0) return report;
  int lf = 0, qm = 0, ex_ok = 0;
  for (const data::Example& example : dataset.examples) {
    StatusOr<sql::SelectQuery> predicted = translate(example);
    if (!predicted.ok()) {
      ++report.translation_failures;
      continue;
    }
    if (LogicalFormMatch(*predicted, example.query)) ++lf;
    if (QueryMatch(*predicted, example.query, example.schema())) ++qm;
    if (ExecutionMatch(*predicted, example.query, *example.table)) ++ex_ok;
  }
  report.acc_lf = static_cast<float>(lf) / report.count;
  report.acc_qm = static_cast<float>(qm) / report.count;
  report.acc_ex = static_cast<float>(ex_ok) / report.count;
  return report;
}

namespace {

/// One structured pipeline pass over an example; no execution, no
/// timing collection (evaluation measures accuracy, not latency).
StatusOr<core::QueryResult> RunPipeline(const core::NlidbPipeline& pipeline,
                                        const data::Example& example) {
  core::QueryRequest request;
  request.schema_ref = core::SchemaRef::Table(example.table.get());
  request.tokens = example.tokens;
  request.execute = false;
  request.collect_timings = false;
  return pipeline.Query(request);
}

/// Collapses a QueryResult to the recovered SQL, surfacing the recovery
/// error when step 3 failed.
StatusOr<sql::SelectQuery> RecoveredQuery(
    StatusOr<core::QueryResult> result) {
  if (!result.ok()) return result.status();
  core::QueryResult out = std::move(result).value();
  if (!out.recovery_status.ok()) return out.recovery_status;
  return std::move(*out.query);
}

}  // namespace

AccuracyReport EvaluatePipeline(const core::NlidbPipeline& pipeline,
                                const data::Dataset& dataset) {
  return Evaluate(dataset, [&pipeline](const data::Example& example) {
    return RecoveredQuery(RunPipeline(pipeline, example));
  });
}

MentionReport EvaluateMentions(const core::NlidbPipeline& pipeline,
                               const data::Dataset& dataset) {
  MentionReport report;
  report.count = static_cast<int>(dataset.examples.size());
  if (report.count == 0) return report;
  int cond_ok = 0;
  int span_tp = 0, span_fp = 0, span_fn = 0;
  for (const data::Example& example : dataset.examples) {
    // --- ($COND_COL, $COND_VAL) accuracy through the full pipeline ------
    auto predicted = RecoveredQuery(RunPipeline(pipeline, example));
    if (predicted.ok()) {
      auto key_set = [](const sql::SelectQuery& q) {
        std::set<std::string> keys;
        for (const auto& c : q.conditions) {
          keys.insert(std::to_string(c.column) + "|" +
                      ToLower(c.value.ToString()));
        }
        return keys;
      };
      if (key_set(*predicted) == key_set(example.query)) ++cond_ok;
    }

    // --- span-level column mention detection -----------------------------
    const auto candidates =
        pipeline.annotator()
            .DetectColumnMentions(example.tokens, *example.table)
            .value();
    struct GoldSpan {
      int column;
      text::Span span;
    };
    std::vector<GoldSpan> gold;
    if (!example.select_mention.empty()) {
      gold.push_back({example.query.select_column, example.select_mention});
    }
    for (const auto& m : example.where_mentions) {
      if (m.column_explicit && !m.column_span.empty()) {
        gold.push_back({m.column, m.column_span});
      }
    }
    std::vector<bool> gold_hit(gold.size(), false);
    for (const auto& cand : candidates) {
      if (cand.span.empty()) continue;
      bool matched = false;
      for (size_t g = 0; g < gold.size(); ++g) {
        if (gold[g].column == cand.column &&
            gold[g].span.Overlaps(cand.span)) {
          matched = true;
          gold_hit[g] = true;
        }
      }
      if (matched) {
        ++span_tp;
      } else {
        ++span_fp;
      }
    }
    for (bool hit : gold_hit) {
      if (!hit) ++span_fn;
    }
  }
  report.cond_col_val_acc = static_cast<float>(cond_ok) / report.count;
  const float p_den = static_cast<float>(span_tp + span_fp);
  const float r_den = static_cast<float>(span_tp + span_fn);
  report.span_precision = p_den > 0 ? span_tp / p_den : 0.0f;
  report.span_recall = r_den > 0 ? span_tp / r_den : 0.0f;
  const float pr = report.span_precision + report.span_recall;
  report.span_f1 = pr > 0 ? 2 * report.span_precision * report.span_recall / pr
                          : 0.0f;
  return report;
}

RecoveryReport EvaluateRecovery(const core::NlidbPipeline& pipeline,
                                const data::Dataset& dataset) {
  RecoveryReport report;
  report.count = static_cast<int>(dataset.examples.size());
  if (report.count == 0) return report;
  int before = 0, after = 0;
  for (const data::Example& example : dataset.examples) {
    StatusOr<core::QueryResult> result = RunPipeline(pipeline, example);
    if (!result.ok()) continue;  // invalid example: neither side scores
    const core::Annotation& annotation = result->annotation;
    const std::vector<std::string>& sa = result->annotated_sql;
    // Before recovery: decoded s^a must equal the gold query rendered
    // under the same (predicted) annotation.
    const std::vector<std::string> gold_sa = core::BuildAnnotatedSql(
        example.query, annotation, example.schema(),
        pipeline.annotation_options());
    if (sa == gold_sa) ++before;
    if (result->query.has_value() &&
        QueryMatch(*result->query, example.query, example.schema())) {
      ++after;
    }
  }
  report.acc_before = static_cast<float>(before) / report.count;
  report.acc_after = static_cast<float>(after) / report.count;
  return report;
}

}  // namespace eval
}  // namespace nlidb
