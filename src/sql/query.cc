#include "sql/query.h"

#include <algorithm>

#include "common/logging.h"
#include "common/strings.h"

namespace nlidb {
namespace sql {

const char* AggregateName(Aggregate agg) {
  switch (agg) {
    case Aggregate::kNone:
      return "";
    case Aggregate::kMax:
      return "MAX";
    case Aggregate::kMin:
      return "MIN";
    case Aggregate::kCount:
      return "COUNT";
    case Aggregate::kSum:
      return "SUM";
    case Aggregate::kAvg:
      return "AVG";
  }
  return "?";
}

const char* CondOpName(CondOp op) {
  switch (op) {
    case CondOp::kEq:
      return "=";
    case CondOp::kGt:
      return ">";
    case CondOp::kLt:
      return "<";
  }
  return "?";
}

std::vector<std::string> ToSqlTokens(const SelectQuery& query,
                                     const Schema& schema) {
  NLIDB_CHECK(query.select_column >= 0 &&
              query.select_column < schema.num_columns())
      << "select column out of schema";
  std::vector<std::string> out;
  out.push_back("SELECT");
  if (query.agg != Aggregate::kNone) out.push_back(AggregateName(query.agg));
  out.push_back(schema.column(query.select_column).name);
  if (!query.conditions.empty()) {
    out.push_back("WHERE");
    for (size_t i = 0; i < query.conditions.size(); ++i) {
      const Condition& c = query.conditions[i];
      if (i > 0) out.push_back("AND");
      NLIDB_CHECK(c.column >= 0 && c.column < schema.num_columns())
          << "condition column out of schema";
      out.push_back(schema.column(c.column).name);
      out.push_back(CondOpName(c.op));
      if (c.value.is_text()) {
        out.push_back("\"" + c.value.text() + "\"");
      } else {
        out.push_back(c.value.ToString());
      }
    }
  }
  return out;
}

std::string ToSql(const SelectQuery& query, const Schema& schema) {
  return Join(ToSqlTokens(query, schema), " ");
}

SelectQuery Canonicalize(const SelectQuery& query) {
  SelectQuery out = query;
  std::sort(out.conditions.begin(), out.conditions.end(),
            [](const Condition& a, const Condition& b) {
              if (a.column != b.column) return a.column < b.column;
              if (a.op != b.op) return static_cast<int>(a.op) < static_cast<int>(b.op);
              return ToLower(a.value.ToString()) < ToLower(b.value.ToString());
            });
  return out;
}

std::string CanonicalSql(const SelectQuery& query, const Schema& schema) {
  return ToLower(ToSql(Canonicalize(query), schema));
}

}  // namespace sql
}  // namespace nlidb
