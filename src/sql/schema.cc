#include "sql/schema.h"

#include "common/strings.h"

namespace nlidb {
namespace sql {

std::string ColumnDef::Display() const {
  return ReplaceAll(name, "_", " ");
}

std::vector<std::string> ColumnDef::DisplayTokens() const {
  return Split(Display(), ' ');
}

int Schema::ColumnIndex(const std::string& name) const {
  const std::string needle = ToLower(name);
  for (int i = 0; i < num_columns(); ++i) {
    if (ToLower(columns_[i].name) == needle) return i;
  }
  return -1;
}

bool operator==(const Schema& a, const Schema& b) {
  if (a.columns_.size() != b.columns_.size()) return false;
  for (size_t i = 0; i < a.columns_.size(); ++i) {
    if (a.columns_[i].name != b.columns_[i].name ||
        a.columns_[i].type != b.columns_[i].type) {
      return false;
    }
  }
  return true;
}

}  // namespace sql
}  // namespace nlidb
