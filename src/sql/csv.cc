#include "sql/csv.h"

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/strings.h"

namespace nlidb {
namespace sql {

namespace {

/// Splits one CSV line honoring double-quote quoting.
std::vector<std::string> SplitCsvLine(const std::string& line) {
  std::vector<std::string> fields;
  std::string current;
  bool in_quotes = false;
  for (size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current += '"';
          ++i;  // escaped quote
        } else {
          in_quotes = false;
        }
      } else {
        current += c;
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == ',') {
      fields.push_back(Strip(current));
      current.clear();
    } else {
      current += c;
    }
  }
  fields.push_back(Strip(current));
  return fields;
}

}  // namespace

StatusOr<Table> ParseCsv(const std::string& csv_text,
                         const std::string& table_name) {
  std::istringstream in(csv_text);
  std::string line;
  if (!std::getline(in, line)) {
    return Status::ParseError("CSV has no header line");
  }
  StripTrailingCr(&line);
  if (Strip(line).empty()) {
    return Status::ParseError("CSV has no header line");
  }
  const std::vector<std::string> header = SplitCsvLine(line);
  if (header.empty()) return Status::ParseError("empty CSV header");
  for (const auto& name : header) {
    if (name.empty()) return Status::ParseError("empty column name in header");
  }

  // First pass: collect raw rows and infer per-column types.
  std::vector<std::vector<std::string>> raw_rows;
  while (std::getline(in, line)) {
    StripTrailingCr(&line);
    if (Strip(line).empty()) continue;
    std::vector<std::string> fields = SplitCsvLine(line);
    if (fields.size() != header.size()) {
      return Status::ParseError("row has " + std::to_string(fields.size()) +
                                " fields, header has " +
                                std::to_string(header.size()));
    }
    raw_rows.push_back(std::move(fields));
  }
  std::vector<DataType> types(header.size(), DataType::kReal);
  for (size_t c = 0; c < header.size(); ++c) {
    bool any_value = false;
    for (const auto& row : raw_rows) {
      if (row[c].empty()) continue;
      any_value = true;
      if (!LooksNumeric(row[c])) {
        types[c] = DataType::kText;
        break;
      }
    }
    if (!any_value) types[c] = DataType::kText;
  }

  Schema schema;
  for (size_t c = 0; c < header.size(); ++c) {
    schema.AddColumn({ToLower(ReplaceAll(header[c], " ", "_")), types[c]});
  }
  Table table(table_name, schema);
  for (const auto& row : raw_rows) {
    std::vector<Value> cells;
    cells.reserve(row.size());
    for (size_t c = 0; c < row.size(); ++c) {
      if (types[c] == DataType::kReal) {
        cells.push_back(
            Value::Real(std::strtod(row[c].c_str(), nullptr)));
      } else {
        cells.push_back(Value::Text(ToLower(row[c])));
      }
    }
    NLIDB_RETURN_IF_ERROR(table.AddRow(std::move(cells)));
  }
  return table;
}

StatusOr<Table> LoadCsvTable(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open CSV: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  std::filesystem::path p(path);
  return ParseCsv(buffer.str(), p.stem().string());
}

}  // namespace sql
}  // namespace nlidb
