#ifndef NLIDB_SQL_CSV_H_
#define NLIDB_SQL_CSV_H_

#include <string>

#include "common/status.h"
#include "sql/table.h"

namespace nlidb {
namespace sql {

/// Loads a table from simple CSV text:
///   * first line: column names (snake_case recommended);
///   * remaining lines: rows;
///   * separator is ',' with double-quote quoting ("a, b" stays one cell;
///     "" inside quotes is an escaped quote);
///   * a column whose every non-empty cell parses as a number becomes
///     kReal, everything else kText.
StatusOr<Table> ParseCsv(const std::string& csv_text,
                         const std::string& table_name = "table");

/// ParseCsv over a file's contents.
StatusOr<Table> LoadCsvTable(const std::string& path);

}  // namespace sql
}  // namespace nlidb

#endif  // NLIDB_SQL_CSV_H_
