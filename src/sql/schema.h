#ifndef NLIDB_SQL_SCHEMA_H_
#define NLIDB_SQL_SCHEMA_H_

#include <string>
#include <vector>

#include "sql/value.h"

namespace nlidb {
namespace sql {

/// A column definition. `name` is the canonical snake_case identifier
/// (e.g. "film_name"); `display` is its natural-language surface form
/// ("film name") used when matching column mentions in questions.
struct ColumnDef {
  std::string name;
  DataType type = DataType::kText;

  /// `name` with underscores replaced by spaces.
  std::string Display() const;
  /// The display form split on spaces.
  std::vector<std::string> DisplayTokens() const;
};

/// An ordered set of columns, i.e. the paper's C = {c_1, ..., c_k}.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<ColumnDef> columns)
      : columns_(std::move(columns)) {}

  int num_columns() const { return static_cast<int>(columns_.size()); }
  const ColumnDef& column(int i) const { return columns_[i]; }
  const std::vector<ColumnDef>& columns() const { return columns_; }

  void AddColumn(ColumnDef column) { columns_.push_back(std::move(column)); }

  /// Index of the column with the given canonical name; -1 when absent.
  int ColumnIndex(const std::string& name) const;

  friend bool operator==(const Schema& a, const Schema& b);

 private:
  std::vector<ColumnDef> columns_;
};

}  // namespace sql
}  // namespace nlidb

#endif  // NLIDB_SQL_SCHEMA_H_
