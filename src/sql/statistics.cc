#include "sql/statistics.h"

#include <algorithm>
#include <unordered_set>

#include "common/strings.h"
#include "text/tokenizer.h"

namespace nlidb {
namespace sql {

ColumnStatistics ComputeColumnStatistics(
    const Table& table, int col, const text::EmbeddingProvider& provider) {
  ColumnStatistics stats;
  const ColumnDef& def = table.schema().column(col);
  stats.column_name = def.name;
  stats.type = def.type;
  stats.embedding.assign(provider.dim(), 0.0f);

  std::unordered_set<std::string> distinct;
  double sum = 0.0;
  double mn = 0.0, mx = 0.0;
  bool first_number = true;
  int total_tokens = 0;
  const int rows = table.num_rows();
  for (int r = 0; r < rows; ++r) {
    const Value& cell = table.Cell(r, col);
    const std::string display = cell.ToString();
    distinct.insert(ToLower(display));
    const std::vector<std::string> words = text::Tokenize(display);
    total_tokens += static_cast<int>(words.size());
    const std::vector<float> cell_vec = provider.PhraseVector(words);
    for (int j = 0; j < provider.dim(); ++j) stats.embedding[j] += cell_vec[j];
    if (cell.is_real()) {
      const double x = cell.number();
      sum += x;
      if (first_number) {
        mn = mx = x;
        first_number = false;
      } else {
        mn = std::min(mn, x);
        mx = std::max(mx, x);
      }
    }
  }
  if (rows > 0) {
    const float inv = 1.0f / static_cast<float>(rows);
    for (float& x : stats.embedding) x *= inv;
    stats.avg_tokens_per_cell = static_cast<float>(total_tokens) / rows;
  }
  stats.distinct_count = static_cast<int>(distinct.size());
  if (stats.type == DataType::kReal && rows > 0) {
    stats.min_value = mn;
    stats.max_value = mx;
    stats.mean_value = sum / rows;
  }
  return stats;
}

std::vector<ColumnStatistics> ComputeTableStatistics(
    const Table& table, const text::EmbeddingProvider& provider) {
  std::vector<ColumnStatistics> out;
  out.reserve(table.num_columns());
  for (int c = 0; c < table.num_columns(); ++c) {
    out.push_back(ComputeColumnStatistics(table, c, provider));
  }
  return out;
}

}  // namespace sql
}  // namespace nlidb
