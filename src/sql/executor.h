#ifndef NLIDB_SQL_EXECUTOR_H_
#define NLIDB_SQL_EXECUTOR_H_

#include <vector>

#include "common/status.h"
#include "sql/query.h"
#include "sql/table.h"

namespace nlidb {
namespace sql {

/// Executes a WikiSQL-class query against a table.
///
/// Result is the multiset of selected values (one aggregated value for
/// aggregate queries; COUNT/SUM/AVG over empty matches yield 0/0/NULL-free
/// empty result respectively, MAX/MIN over empty matches yield an empty
/// result).
StatusOr<std::vector<Value>> Execute(const SelectQuery& query,
                                     const Table& table);

/// Execution-accuracy comparison: results agree as multisets (order
/// independent), the comparison used for Acc_ex in [49].
bool ResultsEqual(const std::vector<Value>& a, const std::vector<Value>& b);

}  // namespace sql
}  // namespace nlidb

#endif  // NLIDB_SQL_EXECUTOR_H_
