#ifndef NLIDB_SQL_PARSER_H_
#define NLIDB_SQL_PARSER_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "sql/query.h"

namespace nlidb {
namespace sql {

/// Parses WikiSQL-class SQL text (the exact dialect `ToSql` prints):
///
///   SELECT [AGG] column [WHERE column OP value [AND column OP value]*]
///
/// Column names resolve against `schema` case-insensitively; quoted
/// values become text, bare numerics become reals (coerced to the
/// condition column's type when they disagree).
StatusOr<SelectQuery> ParseSql(const std::string& sql, const Schema& schema);

/// Tokenizes SQL text: identifiers/keywords, operators, quoted strings
/// (quotes kept), numbers.
std::vector<std::string> TokenizeSql(const std::string& sql);

/// Parses a pre-tokenized query; used by the seq2seq decoder whose output
/// is already a token sequence.
StatusOr<SelectQuery> ParseSqlTokens(const std::vector<std::string>& tokens,
                                     const Schema& schema);

}  // namespace sql
}  // namespace nlidb

#endif  // NLIDB_SQL_PARSER_H_
