#include "sql/table.h"

#include "common/logging.h"

namespace nlidb {
namespace sql {

Status Table::AddRow(std::vector<Value> cells) {
  if (static_cast<int>(cells.size()) != schema_.num_columns()) {
    return Status::InvalidArgument("row arity " + std::to_string(cells.size()) +
                                   " != schema arity " +
                                   std::to_string(schema_.num_columns()));
  }
  for (int i = 0; i < schema_.num_columns(); ++i) {
    if (cells[i].type() != schema_.column(i).type) {
      return Status::InvalidArgument("type mismatch in column " +
                                     schema_.column(i).name);
    }
  }
  rows_.push_back(std::move(cells));
  return Status::Ok();
}

const Value& Table::Cell(int row, int col) const {
  NLIDB_CHECK(row >= 0 && row < num_rows() && col >= 0 && col < num_columns())
      << "Cell(" << row << "," << col << ") out of range";
  return rows_[row][col];
}

const std::vector<Value>& Table::Row(int row) const {
  NLIDB_CHECK(row >= 0 && row < num_rows()) << "Row out of range";
  return rows_[row];
}

std::vector<Value> Table::ColumnValues(int col) const {
  NLIDB_CHECK(col >= 0 && col < num_columns()) << "ColumnValues out of range";
  std::vector<Value> out;
  out.reserve(rows_.size());
  for (const auto& row : rows_) out.push_back(row[col]);
  return out;
}

bool Table::ColumnContains(int col, const Value& value) const {
  NLIDB_CHECK(col >= 0 && col < num_columns()) << "ColumnContains range";
  for (const auto& row : rows_) {
    if (row[col] == value) return true;
  }
  return false;
}

}  // namespace sql
}  // namespace nlidb
