#ifndef NLIDB_SQL_VALUE_H_
#define NLIDB_SQL_VALUE_H_

#include <string>

namespace nlidb {
namespace sql {

/// Column data types. WikiSQL tables distinguish exactly text and real.
enum class DataType { kText, kReal };

const char* DataTypeName(DataType type);

/// A single cell value: text or real.
class Value {
 public:
  Value() : type_(DataType::kText) {}

  static Value Text(std::string text);
  static Value Real(double number);

  DataType type() const { return type_; }
  bool is_text() const { return type_ == DataType::kText; }
  bool is_real() const { return type_ == DataType::kReal; }

  /// Requires is_text().
  const std::string& text() const;
  /// Requires is_real().
  double number() const;

  /// Display form: text as-is, reals with trailing zeros trimmed
  /// ("3" not "3.000000").
  std::string ToString() const;

  /// Equality: same type and equal payload (text comparison is
  /// case-insensitive, as WikiSQL execution comparison is).
  friend bool operator==(const Value& a, const Value& b);
  friend bool operator!=(const Value& a, const Value& b) { return !(a == b); }

  /// Ordering for > / < conditions; only defined for two reals or two
  /// texts (lexicographic, case-insensitive).
  bool LessThan(const Value& other) const;

 private:
  DataType type_;
  std::string text_;
  double number_ = 0.0;
};

/// Formats a double the way Value::ToString does.
std::string FormatNumber(double number);

}  // namespace sql
}  // namespace nlidb

#endif  // NLIDB_SQL_VALUE_H_
