#include "sql/parser.h"

#include <cctype>
#include <cstdlib>

#include "common/strings.h"

namespace nlidb {
namespace sql {

namespace {

bool IsAggToken(const std::string& t, Aggregate* agg) {
  const std::string u = ToLower(t);
  if (u == "max") *agg = Aggregate::kMax;
  else if (u == "min") *agg = Aggregate::kMin;
  else if (u == "count") *agg = Aggregate::kCount;
  else if (u == "sum") *agg = Aggregate::kSum;
  else if (u == "avg") *agg = Aggregate::kAvg;
  else return false;
  return true;
}

bool IsOpToken(const std::string& t, CondOp* op) {
  if (t == "=") *op = CondOp::kEq;
  else if (t == ">") *op = CondOp::kGt;
  else if (t == "<") *op = CondOp::kLt;
  else return false;
  return true;
}

Value MakeConditionValue(const std::string& token, DataType column_type) {
  if (token.size() >= 2 && token.front() == '"' && token.back() == '"') {
    const std::string inner = token.substr(1, token.size() - 2);
    if (column_type == DataType::kReal && LooksNumeric(inner)) {
      return Value::Real(std::strtod(inner.c_str(), nullptr));
    }
    return Value::Text(inner);
  }
  if (LooksNumeric(token)) {
    if (column_type == DataType::kText) return Value::Text(token);
    return Value::Real(std::strtod(token.c_str(), nullptr));
  }
  if (column_type == DataType::kReal) {
    // Non-numeric token against a real column: keep as text; execution
    // will simply never match, mirroring a malformed WikiSQL condition.
    return Value::Text(token);
  }
  return Value::Text(token);
}

}  // namespace

std::vector<std::string> TokenizeSql(const std::string& sql) {
  std::vector<std::string> tokens;
  size_t i = 0;
  const size_t n = sql.size();
  while (i < n) {
    const char c = sql[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (c == '"') {
      size_t j = i + 1;
      while (j < n && sql[j] != '"') ++j;
      tokens.push_back(sql.substr(i, j - i + (j < n ? 1 : 0)));
      i = j + 1;
      continue;
    }
    if (c == '=' || c == '>' || c == '<' || c == '(' || c == ')') {
      tokens.push_back(std::string(1, c));
      ++i;
      continue;
    }
    size_t j = i;
    while (j < n && !std::isspace(static_cast<unsigned char>(sql[j])) &&
           sql[j] != '=' && sql[j] != '>' && sql[j] != '<' && sql[j] != '(' &&
           sql[j] != ')' && sql[j] != '"') {
      ++j;
    }
    tokens.push_back(sql.substr(i, j - i));
    i = j;
  }
  return tokens;
}

StatusOr<SelectQuery> ParseSqlTokens(const std::vector<std::string>& tokens,
                                     const Schema& schema) {
  size_t pos = 0;
  auto peek = [&]() -> const std::string* {
    return pos < tokens.size() ? &tokens[pos] : nullptr;
  };
  auto next = [&]() -> const std::string* {
    return pos < tokens.size() ? &tokens[pos++] : nullptr;
  };

  const std::string* tok = next();
  if (tok == nullptr || ToLower(*tok) != "select") {
    return Status::ParseError("expected SELECT");
  }
  SelectQuery query;
  tok = next();
  if (tok == nullptr) return Status::ParseError("truncated after SELECT");
  Aggregate agg = Aggregate::kNone;
  if (IsAggToken(*tok, &agg)) {
    query.agg = agg;
    // Accept both "MAX(col)" written as MAX ( col ) and "MAX col".
    if (peek() != nullptr && *peek() == "(") next();
    tok = next();
    if (tok == nullptr) return Status::ParseError("missing select column");
  }
  const int col = schema.ColumnIndex(*tok);
  if (col < 0) return Status::ParseError("unknown select column: " + *tok);
  query.select_column = col;
  if (peek() != nullptr && *peek() == ")") next();

  // Optional FROM <table>: tolerated and ignored (single-table dialect).
  if (peek() != nullptr && ToLower(*peek()) == "from") {
    next();
    if (next() == nullptr) return Status::ParseError("missing table name");
  }

  if (peek() == nullptr) return query;
  tok = next();
  if (ToLower(*tok) != "where") {
    return Status::ParseError("expected WHERE, got: " + *tok);
  }
  for (;;) {
    const std::string* col_tok = next();
    if (col_tok == nullptr) return Status::ParseError("missing condition column");
    const int ccol = schema.ColumnIndex(*col_tok);
    if (ccol < 0) {
      return Status::ParseError("unknown condition column: " + *col_tok);
    }
    const std::string* op_tok = next();
    CondOp op = CondOp::kEq;
    if (op_tok == nullptr || !IsOpToken(*op_tok, &op)) {
      return Status::ParseError("expected comparison operator");
    }
    const std::string* val_tok = next();
    if (val_tok == nullptr) return Status::ParseError("missing condition value");
    Condition cond;
    cond.column = ccol;
    cond.op = op;
    cond.value = MakeConditionValue(*val_tok, schema.column(ccol).type);
    query.conditions.push_back(std::move(cond));
    if (peek() == nullptr) break;
    tok = next();
    if (ToLower(*tok) != "and") {
      return Status::ParseError("expected AND, got: " + *tok);
    }
  }
  return query;
}

StatusOr<SelectQuery> ParseSql(const std::string& sql, const Schema& schema) {
  return ParseSqlTokens(TokenizeSql(sql), schema);
}

}  // namespace sql
}  // namespace nlidb
