#ifndef NLIDB_SQL_STATISTICS_H_
#define NLIDB_SQL_STATISTICS_H_

#include <string>
#include <vector>

#include "sql/table.h"
#include "text/embedding_provider.h"

namespace nlidb {
namespace sql {

/// Aggregate statistics of one column — the paper's "database statistics"
/// metadata (Sec. II) used by the value detector (Sec. IV-D).
///
/// `embedding` is s_c: the dimension-wise mean over cells of the
/// dimension-wise mean over each cell's word embeddings. By construction
/// it carries O(1) information regardless of column size, so detection
/// works for counterfactual values that never occur in the table.
struct ColumnStatistics {
  std::string column_name;
  DataType type = DataType::kText;
  std::vector<float> embedding;  // s_c
  int distinct_count = 0;
  float avg_tokens_per_cell = 0.0f;
  // Numeric profile (zeroed for text columns).
  double min_value = 0.0;
  double max_value = 0.0;
  double mean_value = 0.0;
};

/// Computes statistics for column `col` of `table` using `provider` for
/// word embeddings. Empty columns produce a zero embedding.
ColumnStatistics ComputeColumnStatistics(
    const Table& table, int col, const text::EmbeddingProvider& provider);

/// Statistics for every column of `table`.
std::vector<ColumnStatistics> ComputeTableStatistics(
    const Table& table, const text::EmbeddingProvider& provider);

}  // namespace sql
}  // namespace nlidb

#endif  // NLIDB_SQL_STATISTICS_H_
