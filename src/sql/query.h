#ifndef NLIDB_SQL_QUERY_H_
#define NLIDB_SQL_QUERY_H_

#include <string>
#include <vector>

#include "sql/schema.h"
#include "sql/value.h"

namespace nlidb {
namespace sql {

/// Aggregation operators of the WikiSQL query class.
enum class Aggregate { kNone, kMax, kMin, kCount, kSum, kAvg };

const char* AggregateName(Aggregate agg);

/// Condition comparison operators of the WikiSQL query class.
enum class CondOp { kEq, kGt, kLt };

const char* CondOpName(CondOp op);

/// One conjunct of the WHERE clause: column <op> value.
struct Condition {
  int column = 0;
  CondOp op = CondOp::kEq;
  Value value;

  friend bool operator==(const Condition& a, const Condition& b) {
    return a.column == b.column && a.op == b.op && a.value == b.value;
  }
};

/// The WikiSQL query class:
///   SELECT <agg>(<column>) FROM t WHERE cond AND cond AND ...
/// Exactly one select column, optional aggregate, conjunctive conditions.
struct SelectQuery {
  Aggregate agg = Aggregate::kNone;
  int select_column = 0;
  std::vector<Condition> conditions;

  /// Token-exact equality (the "logical form" comparison of [49]):
  /// conditions must appear in the same order.
  friend bool operator==(const SelectQuery& a, const SelectQuery& b) {
    return a.agg == b.agg && a.select_column == b.select_column &&
           a.conditions == b.conditions;
  }
};

/// Renders the query as WikiSQL-style SQL text, e.g.
///   SELECT MAX(points) WHERE team = "ferrari" AND laps > 50
std::string ToSql(const SelectQuery& query, const Schema& schema);

/// Renders the query as a token sequence (the seq2seq target alphabet
/// uses the same tokens).
std::vector<std::string> ToSqlTokens(const SelectQuery& query,
                                     const Schema& schema);

/// Canonical form: conditions sorted by (column, op, value string),
/// identifiers lowercased. Two queries are a "query match" (Acc_qm) when
/// their canonical forms are equal.
SelectQuery Canonicalize(const SelectQuery& query);

/// Canonical SQL text of `query` (ToSql of Canonicalize).
std::string CanonicalSql(const SelectQuery& query, const Schema& schema);

}  // namespace sql
}  // namespace nlidb

#endif  // NLIDB_SQL_QUERY_H_
