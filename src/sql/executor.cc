#include "sql/executor.h"

#include <algorithm>

#include "common/metrics.h"
#include "common/strings.h"
#include "common/trace.h"

namespace nlidb {
namespace sql {

namespace {

bool ConditionHolds(const Condition& cond, const Value& cell) {
  switch (cond.op) {
    case CondOp::kEq:
      // Equality across type boundaries (text "57" vs real 57) compares
      // the display forms, matching WikiSQL's lenient execution.
      if (cell.type() != cond.value.type()) {
        return ToLower(cell.ToString()) == ToLower(cond.value.ToString());
      }
      return cell == cond.value;
    case CondOp::kGt:
      if (cell.type() != cond.value.type()) return false;
      return cond.value.LessThan(cell);
    case CondOp::kLt:
      if (cell.type() != cond.value.type()) return false;
      return cell.LessThan(cond.value);
  }
  return false;
}

}  // namespace

StatusOr<std::vector<Value>> Execute(const SelectQuery& query,
                                     const Table& table) {
  static metrics::Counter& executions =
      metrics::MetricsRegistry::Global().GetCounter("sql.executions");
  static metrics::Counter& rows_scanned =
      metrics::MetricsRegistry::Global().GetCounter("sql.rows_scanned");
  trace::TraceSpan span("sql.execute");
  span.Annotate("num_rows", static_cast<int64_t>(table.num_rows()));
  executions.Increment();
  rows_scanned.Increment(table.num_rows());
  const Schema& schema = table.schema();
  if (query.select_column < 0 || query.select_column >= schema.num_columns()) {
    return Status::InvalidArgument("select column out of range");
  }
  for (const auto& c : query.conditions) {
    if (c.column < 0 || c.column >= schema.num_columns()) {
      return Status::InvalidArgument("condition column out of range");
    }
  }
  std::vector<Value> selected;
  for (int r = 0; r < table.num_rows(); ++r) {
    bool keep = true;
    for (const auto& c : query.conditions) {
      if (!ConditionHolds(c, table.Cell(r, c.column))) {
        keep = false;
        break;
      }
    }
    if (keep) selected.push_back(table.Cell(r, query.select_column));
  }

  switch (query.agg) {
    case Aggregate::kNone:
      return selected;
    case Aggregate::kCount:
      return std::vector<Value>{Value::Real(static_cast<double>(selected.size()))};
    case Aggregate::kMax:
    case Aggregate::kMin: {
      if (selected.empty()) return std::vector<Value>{};
      const Value* best = &selected[0];
      for (const auto& v : selected) {
        if (v.type() != best->type()) {
          return Status::InvalidArgument("mixed types under MAX/MIN");
        }
        const bool less = v.LessThan(*best);
        if ((query.agg == Aggregate::kMax && !less && !(v == *best)) ||
            (query.agg == Aggregate::kMin && less)) {
          best = &v;
        }
      }
      return std::vector<Value>{*best};
    }
    case Aggregate::kSum:
    case Aggregate::kAvg: {
      double sum = 0.0;
      int count = 0;
      for (const auto& v : selected) {
        if (!v.is_real()) {
          return Status::InvalidArgument("SUM/AVG over non-numeric column");
        }
        sum += v.number();
        ++count;
      }
      if (query.agg == Aggregate::kSum) {
        return std::vector<Value>{Value::Real(sum)};
      }
      if (count == 0) return std::vector<Value>{};
      return std::vector<Value>{Value::Real(sum / count)};
    }
  }
  return Status::Internal("unreachable aggregate");
}

bool ResultsEqual(const std::vector<Value>& a, const std::vector<Value>& b) {
  if (a.size() != b.size()) return false;
  auto key = [](const Value& v) { return ToLower(v.ToString()); };
  std::vector<std::string> ka, kb;
  ka.reserve(a.size());
  kb.reserve(b.size());
  for (const auto& v : a) ka.push_back(key(v));
  for (const auto& v : b) kb.push_back(key(v));
  std::sort(ka.begin(), ka.end());
  std::sort(kb.begin(), kb.end());
  return ka == kb;
}

}  // namespace sql
}  // namespace nlidb
