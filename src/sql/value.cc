#include "sql/value.h"

#include <cmath>
#include <cstdio>

#include "common/logging.h"
#include "common/strings.h"

namespace nlidb {
namespace sql {

const char* DataTypeName(DataType type) {
  switch (type) {
    case DataType::kText:
      return "text";
    case DataType::kReal:
      return "real";
  }
  return "?";
}

Value Value::Text(std::string text) {
  Value v;
  v.type_ = DataType::kText;
  v.text_ = std::move(text);
  return v;
}

Value Value::Real(double number) {
  Value v;
  v.type_ = DataType::kReal;
  v.number_ = number;
  return v;
}

const std::string& Value::text() const {
  NLIDB_CHECK(is_text()) << "text() on real value";
  return text_;
}

double Value::number() const {
  NLIDB_CHECK(is_real()) << "number() on text value";
  return number_;
}

std::string FormatNumber(double number) {
  if (number == std::floor(number) && std::fabs(number) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", number);
    return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%g", number);
  return buf;
}

std::string Value::ToString() const {
  return is_text() ? text_ : FormatNumber(number_);
}

bool operator==(const Value& a, const Value& b) {
  if (a.type_ != b.type_) return false;
  if (a.is_real()) return a.number_ == b.number_;
  return ToLower(a.text_) == ToLower(b.text_);
}

bool Value::LessThan(const Value& other) const {
  NLIDB_CHECK(type_ == other.type_) << "LessThan across types";
  if (is_real()) return number_ < other.number_;
  return ToLower(text_) < ToLower(other.text_);
}

}  // namespace sql
}  // namespace nlidb
