#ifndef NLIDB_SQL_TABLE_H_
#define NLIDB_SQL_TABLE_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "sql/schema.h"

namespace nlidb {
namespace sql {

/// An in-memory relational table with typed cells.
class Table {
 public:
  Table() = default;
  Table(std::string name, Schema schema)
      : name_(std::move(name)), schema_(std::move(schema)) {}

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }

  int num_rows() const { return static_cast<int>(rows_.size()); }
  int num_columns() const { return schema_.num_columns(); }

  /// Appends a row; cells must match the schema's arity and types.
  Status AddRow(std::vector<Value> cells);

  const Value& Cell(int row, int col) const;
  const std::vector<Value>& Row(int row) const;

  /// All values of one column (copy).
  std::vector<Value> ColumnValues(int col) const;

  /// True if `value` occurs in column `col`.
  bool ColumnContains(int col, const Value& value) const;

 private:
  std::string name_;
  Schema schema_;
  std::vector<std::vector<Value>> rows_;
};

}  // namespace sql
}  // namespace nlidb

#endif  // NLIDB_SQL_TABLE_H_
