#include "schema/fingerprint.h"

#include <string>

#include "common/file_io.h"

namespace nlidb {
namespace schema {

namespace {

/// Length-prefixed append: framing keeps ("ab","c") and ("a","bc") from
/// colliding, and a zero-length field from vanishing.
uint32_t CrcString(uint32_t crc, const std::string& s) {
  const uint32_t len = static_cast<uint32_t>(s.size());
  crc = io::Crc32c(&len, sizeof(len), crc);
  return io::Crc32c(s.data(), s.size(), crc);
}

uint32_t CrcU32(uint32_t crc, uint32_t v) {
  return io::Crc32c(&v, sizeof(v), crc);
}

}  // namespace

uint32_t SchemaFingerprint(const sql::Schema& schema) {
  uint32_t crc = CrcU32(0, static_cast<uint32_t>(schema.num_columns()));
  for (int c = 0; c < schema.num_columns(); ++c) {
    const sql::ColumnDef& def = schema.column(c);
    crc = CrcString(crc, def.name);
    crc = CrcU32(crc, static_cast<uint32_t>(def.type));
  }
  return crc;
}

uint64_t TableFingerprint(const sql::Table& table,
                          const FingerprintOptions& options) {
  const uint32_t schema_crc = SchemaFingerprint(table.schema());

  const int rows = table.num_rows();
  const int cols = table.num_columns();
  const size_t total_cells =
      static_cast<size_t>(rows) * static_cast<size_t>(cols);
  // Stride sampling only past max_cells; stride 1 (every row) otherwise.
  size_t row_stride = 1;
  if (cols > 0 && total_cells > options.max_cells) {
    const size_t max_rows = options.max_cells / static_cast<size_t>(cols);
    row_stride = max_rows > 0 ? (static_cast<size_t>(rows) + max_rows - 1) /
                                    max_rows
                              : static_cast<size_t>(rows);
  }

  uint32_t cell_crc = CrcU32(0, static_cast<uint32_t>(rows));
  for (int r = 0; r < rows; r = static_cast<int>(r + row_stride)) {
    cell_crc = CrcU32(cell_crc, static_cast<uint32_t>(r));
    for (int c = 0; c < cols; ++c) {
      cell_crc = CrcString(cell_crc, table.Cell(r, c).ToString());
    }
  }
  // The last row is the likeliest to change under append-style mutation;
  // make sure sampling never skips it.
  if (rows > 0 && row_stride > 1 && (rows - 1) % row_stride != 0) {
    const int r = rows - 1;
    cell_crc = CrcU32(cell_crc, static_cast<uint32_t>(r));
    for (int c = 0; c < cols; ++c) {
      cell_crc = CrcString(cell_crc, table.Cell(r, c).ToString());
    }
  }
  return (static_cast<uint64_t>(schema_crc) << 32) |
         static_cast<uint64_t>(cell_crc);
}

}  // namespace schema
}  // namespace nlidb
