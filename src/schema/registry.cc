#include "schema/registry.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>

#include "common/file_io.h"
#include "common/metrics.h"
#include "common/trace.h"
#include "text/stopwords.h"
#include "text/tokenizer.h"

namespace nlidb {
namespace schema {

namespace {

struct SchemaCounters {
  metrics::Counter& registered;
  metrics::Counter& stats_hits;
  metrics::Counter& stats_computed;
  metrics::Counter& stats_loaded;
  metrics::Counter& route_queries;
  metrics::Counter& route_fallback_scan;
  metrics::Counter& shortlist_queries;
  metrics::Counter& shortlist_pruned_columns;

  static SchemaCounters& Get() {
    auto& reg = metrics::MetricsRegistry::Global();
    static SchemaCounters c{reg.GetCounter("schema.registered"),
                            reg.GetCounter("schema.stats_hits"),
                            reg.GetCounter("schema.stats_computed"),
                            reg.GetCounter("schema.stats_loaded"),
                            reg.GetCounter("schema.route_queries"),
                            reg.GetCounter("schema.route_fallback_scan"),
                            reg.GetCounter("schema.shortlist_queries"),
                            reg.GetCounter("schema.shortlist_pruned_columns")};
    return c;
  }
};

int EnvInt(const char* name, int fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return std::atoi(v);
}

/// Question tokens that carry content: not stop words (which covers
/// punctuation too). These drive routing and shortlist scoring; function
/// words would only add noise shared by every table.
std::vector<std::string> ContentTokens(const std::vector<std::string>& tokens) {
  std::vector<std::string> content;
  content.reserve(tokens.size());
  for (const std::string& t : tokens) {
    if (!text::IsStopWord(t)) content.push_back(t);
  }
  return content;
}

/// Index tokens of one table: its name, every column's display tokens,
/// and the cell tokens of the first `max_rows` rows — deduplicated,
/// stop words skipped.
std::vector<std::string> IndexTokens(const sql::Table& table, int max_rows) {
  std::vector<std::string> out;
  auto add = [&out](const std::string& token) {
    if (token.empty() || text::IsStopWord(token)) return;
    if (std::find(out.begin(), out.end(), token) == out.end()) {
      out.push_back(token);
    }
  };
  std::string display_name = table.name();
  std::replace(display_name.begin(), display_name.end(), '_', ' ');
  for (const std::string& t : text::Tokenize(display_name)) add(t);
  for (int c = 0; c < table.num_columns(); ++c) {
    for (const std::string& t : table.schema().column(c).DisplayTokens()) {
      add(t);
    }
  }
  const int rows = std::min(table.num_rows(), max_rows);
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < table.num_columns(); ++c) {
      for (const std::string& t : text::Tokenize(table.Cell(r, c).ToString())) {
        add(t);
      }
    }
  }
  return out;
}

// ---- Persistence ("NLSR" v1) ------------------------------------------
//
// [4B magic "NLSR"][u32 version=1][u32 entry count]
//   per entry: [u64 fingerprint][u32 ncols]
//     per column: [u32 name len][name bytes][u8 type][f32 avg_tokens]
//                 [i32 distinct][f64 min][f64 max][f64 mean]
//                 [u32 dim][dim × f32 embedding]
// [u32 CRC32C of everything above]
//
// Fixed-width little-endian fields appended via memcpy; the footer CRC
// (AtomicFileWriter's running CRC) makes truncation and bit rot
// detectable before any parsing is trusted.

constexpr char kMagic[4] = {'N', 'L', 'S', 'R'};
constexpr uint32_t kFormatVersion = 1;

template <typename T>
void AppendPod(std::string& out, T value) {
  static_assert(std::is_trivially_copyable_v<T>);
  const size_t old = out.size();
  out.resize(old + sizeof(T));
  std::memcpy(&out[old], &value, sizeof(T));
}

/// Bounds-checked sequential reader over a loaded byte buffer.
class Reader {
 public:
  explicit Reader(const std::string& data) : data_(data) {}

  template <typename T>
  bool ReadPod(T* out) {
    static_assert(std::is_trivially_copyable_v<T>);
    if (data_.size() - pos_ < sizeof(T)) return false;
    std::memcpy(out, data_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return true;
  }

  bool ReadBytes(std::string* out, size_t n) {
    if (data_.size() - pos_ < n) return false;
    out->assign(data_.data() + pos_, n);
    pos_ += n;
    return true;
  }

  size_t remaining() const { return data_.size() - pos_; }

 private:
  const std::string& data_;
  size_t pos_ = 0;
};

void SerializeEntry(std::string& out, uint64_t fingerprint,
                    const std::vector<sql::ColumnStatistics>& stats) {
  AppendPod(out, fingerprint);
  AppendPod(out, static_cast<uint32_t>(stats.size()));
  for (const sql::ColumnStatistics& col : stats) {
    AppendPod(out, static_cast<uint32_t>(col.column_name.size()));
    out.append(col.column_name);
    AppendPod(out, static_cast<uint8_t>(col.type));
    AppendPod(out, col.avg_tokens_per_cell);
    AppendPod(out, static_cast<int32_t>(col.distinct_count));
    AppendPod(out, col.min_value);
    AppendPod(out, col.max_value);
    AppendPod(out, col.mean_value);
    AppendPod(out, static_cast<uint32_t>(col.embedding.size()));
    for (float v : col.embedding) AppendPod(out, v);
  }
}

bool ParseEntry(Reader& reader, uint64_t* fingerprint,
                std::vector<sql::ColumnStatistics>* stats) {
  uint32_t ncols = 0;
  if (!reader.ReadPod(fingerprint) || !reader.ReadPod(&ncols)) return false;
  // A column record is at least 38 bytes; reject counts the buffer
  // cannot possibly hold before resizing anything.
  if (ncols > reader.remaining() / 38) return false;
  stats->clear();
  stats->reserve(ncols);
  for (uint32_t c = 0; c < ncols; ++c) {
    sql::ColumnStatistics col;
    uint32_t name_len = 0;
    if (!reader.ReadPod(&name_len)) return false;
    if (!reader.ReadBytes(&col.column_name, name_len)) return false;
    uint8_t type = 0;
    int32_t distinct = 0;
    uint32_t dim = 0;
    if (!reader.ReadPod(&type) || !reader.ReadPod(&col.avg_tokens_per_cell) ||
        !reader.ReadPod(&distinct) || !reader.ReadPod(&col.min_value) ||
        !reader.ReadPod(&col.max_value) || !reader.ReadPod(&col.mean_value) ||
        !reader.ReadPod(&dim)) {
      return false;
    }
    if (type > static_cast<uint8_t>(sql::DataType::kReal)) return false;
    if (dim > reader.remaining() / sizeof(float)) return false;
    col.type = static_cast<sql::DataType>(type);
    col.distinct_count = distinct;
    col.embedding.resize(dim);
    for (uint32_t d = 0; d < dim; ++d) {
      if (!reader.ReadPod(&col.embedding[d])) return false;
    }
    stats->push_back(std::move(col));
  }
  return true;
}

}  // namespace

SchemaRegistryOptions SchemaRegistryOptions::FromEnv() {
  SchemaRegistryOptions options;
  const char* mode = std::getenv("NLIDB_SCHEMA_MODE");
  if (mode != nullptr && *mode != '\0') {
    const std::string m(mode);
    if (m == "full" || m == "fullscan" || m == "full_scan") {
      options.mode = ScanMode::kFullScan;
    } else if (m == "shortlist") {
      options.mode = ScanMode::kShortlist;
    }
  }
  options.shortlist_k =
      std::max(1, EnvInt("NLIDB_SCHEMA_SHORTLIST_K", options.shortlist_k));
  options.route_limit =
      std::max(1, EnvInt("NLIDB_SCHEMA_ROUTE_LIMIT", options.route_limit));
  return options;
}

SchemaRegistry::SchemaRegistry(
    std::shared_ptr<const text::EmbeddingProvider> provider,
    const SchemaRegistryOptions& options)
    : provider_(std::move(provider)),
      options_(options),
      mode_(static_cast<int>(options.mode)) {}

void SchemaRegistry::FillDerived(const sql::Table& table,
                                 TableStatsEntry& entry) const {
  const int ncols = table.num_columns();
  entry.name_embeddings.resize(ncols);
  entry.centroid.assign(provider_->dim(), 0.0f);
  int contributing = 0;
  for (int c = 0; c < ncols; ++c) {
    entry.name_embeddings[c] =
        provider_->PhraseVector(table.schema().column(c).DisplayTokens());
    const std::vector<float>* sources[2] = {&entry.name_embeddings[c],
                                            &entry.stats[c].embedding};
    for (const std::vector<float>* vec : sources) {
      if (vec->size() != entry.centroid.size()) continue;
      for (size_t d = 0; d < entry.centroid.size(); ++d) {
        entry.centroid[d] += (*vec)[d];
      }
      ++contributing;
    }
  }
  if (contributing > 0) {
    for (float& v : entry.centroid) v /= static_cast<float>(contributing);
  }
}

const TableStatsEntry& SchemaRegistry::Intern(
    std::unique_ptr<TableStatsEntry> entry) const {
  MutexLock lock(mu_);
  auto [it, inserted] = entries_.emplace(entry->fingerprint, nullptr);
  if (inserted) it->second = std::move(entry);
  // A racing thread may have computed the same content first; both
  // computed identical values (pure function of content), so either
  // entry serves.
  return *it->second;
}

const TableStatsEntry& SchemaRegistry::EntryFor(const sql::Table& table) const {
  SchemaCounters& counters = SchemaCounters::Get();
  const uint64_t fp = TableFingerprint(table);
  std::vector<sql::ColumnStatistics> warm;
  bool have_warm = false;
  {
    MutexLock lock(mu_);
    auto it = entries_.find(fp);
    if (it != entries_.end()) {
      counters.stats_hits.Increment();
      return *it->second;
    }
    auto warm_it = loaded_stats_.find(fp);
    if (warm_it != loaded_stats_.end() &&
        static_cast<int>(warm_it->second.size()) == table.num_columns()) {
      warm = warm_it->second;
      have_warm = true;
    }
  }
  // Miss: build the entry outside the lock — statistics are a pure
  // function of (table content, provider), so concurrent misses on
  // different tables proceed in parallel.
  auto entry = std::make_unique<TableStatsEntry>();
  entry->fingerprint = fp;
  if (have_warm) {
    counters.stats_loaded.Increment();
    entry->stats = std::move(warm);
  } else {
    counters.stats_computed.Increment();
    trace::TraceSpan span("schema.stats_compute");
    entry->stats = sql::ComputeTableStatistics(table, *provider_);
  }
  FillDerived(table, *entry);
  return Intern(std::move(entry));
}

const std::vector<sql::ColumnStatistics>& SchemaRegistry::StatsFor(
    const sql::Table& table) const {
  return EntryFor(table).stats;
}

StatusOr<TableId> SchemaRegistry::Register(
    std::shared_ptr<const sql::Table> table) {
  if (table == nullptr) {
    return Status::InvalidArgument("cannot register a null table");
  }
  // Warm the content-keyed store and grab the centroid before taking
  // mu_ (EntryFor locks internally).
  const TableStatsEntry& entry = EntryFor(*table);
  std::vector<float> centroid = entry.centroid;
  std::vector<std::string> index_tokens =
      IndexTokens(*table, options_.max_index_rows);

  MutexLock lock(mu_);
  if (name_to_id_.count(table->name()) > 0) {
    return Status::FailedPrecondition("table '" + table->name() +
                                      "' is already registered");
  }
  const TableId id = static_cast<TableId>(tables_.size());
  name_to_id_.emplace(table->name(), id);
  tables_.push_back(std::move(table));
  centroids_.push_back(std::move(centroid));
  for (const std::string& token : index_tokens) {
    postings_[token].push_back(id);
  }
  SchemaCounters::Get().registered.Increment();
  return id;
}

TableId SchemaRegistry::Find(const std::string& name) const {
  MutexLock lock(mu_);
  auto it = name_to_id_.find(name);
  return it == name_to_id_.end() ? kInvalidTableId : it->second;
}

const sql::Table* SchemaRegistry::table(TableId id) const {
  MutexLock lock(mu_);
  if (id < 0 || id >= static_cast<TableId>(tables_.size())) return nullptr;
  return tables_[static_cast<size_t>(id)].get();
}

int SchemaRegistry::num_tables() const {
  MutexLock lock(mu_);
  return static_cast<int>(tables_.size());
}

std::vector<RouteCandidate> SchemaRegistry::Route(
    const std::vector<std::string>& tokens, int limit) const {
  SchemaCounters& counters = SchemaCounters::Get();
  counters.route_queries.Increment();
  const std::vector<std::string> content = ContentTokens(tokens);
  // Provider calls (its own lock) stay outside mu_ so the registry
  // never nests lock classes.
  const std::vector<float> question_vec = provider_->PhraseVector(content);

  MutexLock lock(mu_);
  const size_t n = tables_.size();
  if (n == 0 || limit <= 0) return {};
  std::vector<float> lexical(n, 0.0f);
  bool any_hit = false;
  // Each distinct content token contributes its idf weight to every
  // table whose index contains it: rare tokens dominate, tokens shared
  // by most tables contribute little.
  std::vector<std::string> seen;
  for (const std::string& token : content) {
    if (std::find(seen.begin(), seen.end(), token) != seen.end()) continue;
    seen.push_back(token);
    auto it = postings_.find(token);
    if (it == postings_.end()) continue;
    const float idf = std::log(
        1.0f + static_cast<float>(n) / static_cast<float>(it->second.size()));
    for (TableId id : it->second) {
      lexical[static_cast<size_t>(id)] += idf;
      any_hit = true;
    }
  }
  if (!any_hit) counters.route_fallback_scan.Increment();

  std::vector<RouteCandidate> ranked(n);
  const float norm = 1.0f + static_cast<float>(content.size());
  for (size_t i = 0; i < n; ++i) {
    ranked[i].id = static_cast<TableId>(i);
    ranked[i].name = tables_[i]->name();
    // Lexical evidence dominates when present; the centroid cosine
    // breaks ties and carries the no-lexical-hit fallback (a full
    // centroid scan still ranks every table).
    ranked[i].score = lexical[i] / norm +
                      text::EmbeddingProvider::Cosine(question_vec,
                                                      centroids_[i]);
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const RouteCandidate& a, const RouteCandidate& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.id < b.id;
            });
  if (static_cast<int>(ranked.size()) > limit) {
    ranked.resize(static_cast<size_t>(limit));
  }
  return ranked;
}

std::vector<int> SchemaRegistry::ShortlistColumns(
    const std::vector<std::string>& tokens, const sql::Table& table) const {
  SchemaCounters& counters = SchemaCounters::Get();
  counters.shortlist_queries.Increment();
  const int ncols = table.num_columns();
  std::vector<int> all(static_cast<size_t>(ncols));
  for (int c = 0; c < ncols; ++c) all[static_cast<size_t>(c)] = c;
  if (ncols <= options_.shortlist_k) return all;

  const TableStatsEntry& entry = EntryFor(table);
  const std::vector<std::string> content = ContentTokens(tokens);
  std::vector<const std::vector<float>*> token_vecs;
  token_vecs.reserve(content.size());
  for (const std::string& t : content) {
    token_vecs.push_back(&provider_->Vector(t));
  }

  std::vector<std::pair<float, int>> scored(static_cast<size_t>(ncols));
  for (int c = 0; c < ncols; ++c) {
    const sql::ColumnDef& def = table.schema().column(c);
    const std::vector<std::string> name_tokens = def.DisplayTokens();
    float score = 0.0f;
    // Exact lexical hit on a name token outranks any embedding signal:
    // a literally mentioned column must survive the shortlist.
    for (const std::string& t : content) {
      if (std::find(name_tokens.begin(), name_tokens.end(), t) !=
          name_tokens.end()) {
        score += 2.0f;
        break;
      }
    }
    float best_name = 0.0f;
    float best_cell = 0.0f;
    for (const std::vector<float>* vec : token_vecs) {
      best_name = std::max(best_name, text::EmbeddingProvider::Cosine(
                                          *vec, entry.name_embeddings[c]));
      best_cell = std::max(best_cell, text::EmbeddingProvider::Cosine(
                                          *vec, entry.stats[c].embedding));
    }
    score += best_name + 0.5f * best_cell;
    scored[static_cast<size_t>(c)] = {score, c};
  }
  std::sort(scored.begin(), scored.end(),
            [](const std::pair<float, int>& a, const std::pair<float, int>& b) {
              if (a.first != b.first) return a.first > b.first;
              return a.second < b.second;
            });
  scored.resize(static_cast<size_t>(options_.shortlist_k));
  std::vector<int> shortlist;
  shortlist.reserve(scored.size());
  for (const auto& [score, c] : scored) shortlist.push_back(c);
  std::sort(shortlist.begin(), shortlist.end());
  counters.shortlist_pruned_columns.Increment(ncols - options_.shortlist_k);
  return shortlist;
}

StatusOr<Resolution> SchemaRegistry::Resolve(
    const SchemaRef& ref, const std::vector<std::string>& tokens) const {
  Resolution resolution;
  switch (ref.kind()) {
    case SchemaRef::Kind::kUnset:
      return Status::InvalidArgument(
          "QueryRequest has no schema reference: set schema_ref");
    case SchemaRef::Kind::kTable: {
      if (ref.table() == nullptr) {
        return Status::InvalidArgument("SchemaRef::Table is null");
      }
      resolution.table = ref.table();
      // Report the handle when this exact table is also registered.
      MutexLock lock(mu_);
      auto it = name_to_id_.find(ref.table()->name());
      if (it != name_to_id_.end() &&
          tables_[static_cast<size_t>(it->second)].get() == ref.table()) {
        resolution.id = it->second;
      }
      return resolution;
    }
    case SchemaRef::Kind::kName: {
      MutexLock lock(mu_);
      auto it = name_to_id_.find(ref.name());
      if (it == name_to_id_.end()) {
        return Status::NotFound("no registered table named '" + ref.name() +
                                "'");
      }
      resolution.id = it->second;
      resolution.table = tables_[static_cast<size_t>(it->second)].get();
      return resolution;
    }
    case SchemaRef::Kind::kId: {
      MutexLock lock(mu_);
      if (ref.id() < 0 || ref.id() >= static_cast<TableId>(tables_.size())) {
        return Status::NotFound("no registered table with id " +
                                std::to_string(ref.id()));
      }
      resolution.id = ref.id();
      resolution.table = tables_[static_cast<size_t>(ref.id())].get();
      return resolution;
    }
    case SchemaRef::Kind::kRoute: {
      if (tokens.empty()) {
        return Status::InvalidArgument(
            "routing requires a non-empty tokenized question");
      }
      resolution.candidates = Route(tokens, options_.route_limit);
      if (resolution.candidates.empty()) {
        return Status::FailedPrecondition(
            "cannot route: no tables registered");
      }
      resolution.id = resolution.candidates.front().id;
      {
        MutexLock lock(mu_);
        resolution.table = tables_[static_cast<size_t>(resolution.id)].get();
      }
      return resolution;
    }
  }
  return Status::Internal("unhandled SchemaRef kind");
}

Status SchemaRegistry::CheckResolvable(const SchemaRef& ref) const {
  switch (ref.kind()) {
    case SchemaRef::Kind::kUnset:
      return Status::InvalidArgument(
          "QueryRequest has no schema reference: set schema_ref");
    case SchemaRef::Kind::kTable:
      return ref.table() == nullptr
                 ? Status::InvalidArgument("SchemaRef::Table is null")
                 : Status::Ok();
    case SchemaRef::Kind::kName:
      return Find(ref.name()) == kInvalidTableId
                 ? Status::NotFound("no registered table named '" +
                                    ref.name() + "'")
                 : Status::Ok();
    case SchemaRef::Kind::kId:
      return table(ref.id()) == nullptr
                 ? Status::NotFound("no registered table with id " +
                                    std::to_string(ref.id()))
                 : Status::Ok();
    case SchemaRef::Kind::kRoute:
      return num_tables() == 0 ? Status::FailedPrecondition(
                                     "cannot route: no tables registered")
                               : Status::Ok();
  }
  return Status::Internal("unhandled SchemaRef kind");
}

Status SchemaRegistry::Save(const std::string& path) const {
  // Snapshot every known (fingerprint, stats) pair — materialized
  // entries plus warm loaded ones not touched yet — sorted by
  // fingerprint for a deterministic file.
  std::vector<std::pair<uint64_t, std::vector<sql::ColumnStatistics>>> rows;
  {
    MutexLock lock(mu_);
    rows.reserve(entries_.size() + loaded_stats_.size());
    for (const auto& [fp, entry] : entries_) {
      rows.emplace_back(fp, entry->stats);
    }
    for (const auto& [fp, stats] : loaded_stats_) {
      if (entries_.count(fp) == 0) rows.emplace_back(fp, stats);
    }
  }
  std::sort(rows.begin(), rows.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });

  std::string payload;
  payload.append(kMagic, sizeof(kMagic));
  AppendPod(payload, kFormatVersion);
  AppendPod(payload, static_cast<uint32_t>(rows.size()));
  for (const auto& [fp, stats] : rows) {
    SerializeEntry(payload, fp, stats);
  }

  io::AtomicFileWriter writer(path, "schema_registry");
  NLIDB_RETURN_IF_ERROR(writer.Append(payload));
  const uint32_t crc = writer.crc();
  NLIDB_RETURN_IF_ERROR(writer.Append(&crc, sizeof(crc)));
  return writer.Commit();
}

Status SchemaRegistry::Load(const std::string& path) {
  StatusOr<std::string> contents = io::ReadFileToString(path);
  if (!contents.ok()) return contents.status();
  const std::string& data = contents.value();

  // Validate the envelope before trusting a single parsed byte: the
  // footer CRC covers everything, so truncation, bit rot and torn
  // writes all fail here and the registry stays untouched.
  constexpr size_t kHeaderSize = sizeof(kMagic) + 2 * sizeof(uint32_t);
  if (data.size() < kHeaderSize + sizeof(uint32_t)) {
    return Status::ParseError("schema store too short: " + path);
  }
  uint32_t stored_crc = 0;
  std::memcpy(&stored_crc, data.data() + data.size() - sizeof(uint32_t),
              sizeof(uint32_t));
  const uint32_t actual_crc =
      io::Crc32c(data.data(), data.size() - sizeof(uint32_t));
  if (stored_crc != actual_crc) {
    return Status::ParseError("schema store checksum mismatch: " + path);
  }
  if (std::memcmp(data.data(), kMagic, sizeof(kMagic)) != 0) {
    return Status::ParseError("schema store bad magic: " + path);
  }

  const std::string body(data.data(), data.size() - sizeof(uint32_t));
  Reader reader(body);
  std::string magic;
  uint32_t version = 0;
  uint32_t count = 0;
  if (!reader.ReadBytes(&magic, sizeof(kMagic)) || !reader.ReadPod(&version) ||
      !reader.ReadPod(&count)) {
    return Status::ParseError("schema store truncated header: " + path);
  }
  if (version != kFormatVersion) {
    return Status::ParseError("schema store unsupported version " +
                              std::to_string(version) + ": " + path);
  }
  // Staged parse: everything lands in `parsed` first; the registry is
  // only mutated after the whole file decodes.
  std::unordered_map<uint64_t, std::vector<sql::ColumnStatistics>> parsed;
  parsed.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    uint64_t fp = 0;
    std::vector<sql::ColumnStatistics> stats;
    if (!ParseEntry(reader, &fp, &stats)) {
      return Status::ParseError("schema store truncated entry " +
                                std::to_string(i) + ": " + path);
    }
    parsed[fp] = std::move(stats);
  }
  if (reader.remaining() != 0) {
    return Status::ParseError("schema store trailing bytes: " + path);
  }

  MutexLock lock(mu_);
  for (auto& [fp, stats] : parsed) {
    loaded_stats_[fp] = std::move(stats);
  }
  return Status::Ok();
}

}  // namespace schema
}  // namespace nlidb
