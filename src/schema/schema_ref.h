#ifndef NLIDB_SCHEMA_SCHEMA_REF_H_
#define NLIDB_SCHEMA_SCHEMA_REF_H_

#include <string>
#include <utility>

#include "sql/table.h"

namespace nlidb {
namespace schema {

/// Dense registry handle for a registered table. Stable for the
/// registry's lifetime (tables are never unregistered).
using TableId = int;
inline constexpr TableId kInvalidTableId = -1;

/// How a `QueryRequest` names the table it runs against — the schema
/// half of the redesigned resolution API (DESIGN.md "Schema-scale
/// architecture"). Exactly one of four shapes:
///
///   SchemaRef::Table(&t)   ad-hoc table the caller owns; statistics are
///                          served content-keyed from the registry store
///   SchemaRef::Name("x")   registered table, resolved by name
///   SchemaRef::Id(id)      registered table, resolved by handle
///   SchemaRef::Route()     no table at all: the registry's router picks
///                          the best-matching registered table from the
///                          question itself
///
/// A default-constructed ref is unset; the pipeline rejects it (after
/// honoring the deprecated `QueryRequest::table` shim for one release).
class SchemaRef {
 public:
  enum class Kind { kUnset, kTable, kName, kId, kRoute };

  SchemaRef() = default;

  static SchemaRef Table(const sql::Table* table) {
    SchemaRef ref;
    ref.kind_ = Kind::kTable;
    ref.table_ = table;
    return ref;
  }

  static SchemaRef Name(std::string name) {
    SchemaRef ref;
    ref.kind_ = Kind::kName;
    ref.name_ = std::move(name);
    return ref;
  }

  static SchemaRef Id(TableId id) {
    SchemaRef ref;
    ref.kind_ = Kind::kId;
    ref.id_ = id;
    return ref;
  }

  static SchemaRef Route() {
    SchemaRef ref;
    ref.kind_ = Kind::kRoute;
    return ref;
  }

  Kind kind() const { return kind_; }
  bool unset() const { return kind_ == Kind::kUnset; }

  /// Valid only for the matching kind (callers switch on kind() first).
  const sql::Table* table() const { return table_; }
  const std::string& name() const { return name_; }
  TableId id() const { return id_; }

 private:
  Kind kind_ = Kind::kUnset;
  const sql::Table* table_ = nullptr;
  std::string name_;
  TableId id_ = kInvalidTableId;
};

}  // namespace schema
}  // namespace nlidb

#endif  // NLIDB_SCHEMA_SCHEMA_REF_H_
