#ifndef NLIDB_SCHEMA_REGISTRY_H_
#define NLIDB_SCHEMA_REGISTRY_H_

// Schema registry (DESIGN.md §15 "Schema-scale architecture").
//
// `SchemaRegistry` is the single owner of schema-resolution state for a
// pipeline: the set of registered tables, their content-keyed column
// statistics, the token index behind table routing, and the per-table
// column embeddings behind classifier shortlisting. It replaces the
// address-keyed `TableStatsCache` — statistics are keyed by a CRC32C
// content fingerprint (schema/fingerprint.h), so a table that mutates
// in place, or a fresh table allocated at a recycled address, can never
// be served another table's (or its own stale) statistics.
//
// Thread model: all public const methods are safe to call concurrently
// (serving workers share one registry). Registration is also
// thread-safe but is expected at setup time. Statistics are computed
// outside the lock on a miss (they are a pure function of table content
// and the embedding provider), so cache misses of different tables do
// not serialize; returned entry references stay valid for the registry
// lifetime because entries are heap-allocated and never erased.

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "schema/fingerprint.h"
#include "schema/schema_ref.h"
#include "sql/statistics.h"
#include "sql/table.h"
#include "text/embedding_provider.h"

namespace nlidb {
namespace schema {

/// How the annotator consumes column statistics.
enum class ScanMode {
  /// Score every column of the table (the paper's behavior; byte-
  /// identical to the pre-registry pipeline).
  kFullScan,
  /// Score only the registry's top-K candidate columns. Annotations are
  /// identical to full-scan whenever K covers every column the
  /// classifier would accept (guaranteed trivially when K >= table
  /// width; asserted against full-scan by tests and the scale bench).
  kShortlist,
};

struct SchemaRegistryOptions {
  ScanMode mode = ScanMode::kShortlist;

  /// Max candidate columns the shortlist passes to the classifier.
  /// Tables at or under this width are never pruned.
  int shortlist_k = 16;

  /// Max ranked tables `Route` returns (and `Resolution.candidates`
  /// carries) for a table-free request.
  int route_limit = 5;

  /// Rows per table sampled into the routing token index. Bounds index
  /// build cost per registered table.
  int max_index_rows = 32;

  /// Defaults overridden by NLIDB_SCHEMA_MODE ("shortlist" | "full"),
  /// NLIDB_SCHEMA_SHORTLIST_K, NLIDB_SCHEMA_ROUTE_LIMIT (README.md).
  static SchemaRegistryOptions FromEnv();
};

/// Everything the registry precomputes for one table content
/// fingerprint. `stats` is the paper's per-column s_c metadata;
/// `name_embeddings` are phrase vectors of each column's display name
/// (shortlist scoring); `centroid` is the mean column embedding
/// (routing tiebreak).
struct TableStatsEntry {
  uint64_t fingerprint = 0;
  std::vector<sql::ColumnStatistics> stats;
  std::vector<std::vector<float>> name_embeddings;
  std::vector<float> centroid;
};

/// One ranked table from the router.
struct RouteCandidate {
  TableId id = kInvalidTableId;
  std::string name;
  float score = 0.0f;
};

/// The outcome of resolving a `SchemaRef`: the concrete table to run
/// against, its registry handle when registered (ad-hoc `Table` refs
/// may not be), and — for routed requests — the ranked candidate list
/// the winner was drawn from.
struct Resolution {
  const sql::Table* table = nullptr;
  TableId id = kInvalidTableId;
  std::vector<RouteCandidate> candidates;
};

class SchemaRegistry {
 public:
  explicit SchemaRegistry(
      std::shared_ptr<const text::EmbeddingProvider> provider,
      const SchemaRegistryOptions& options = SchemaRegistryOptions());
  SchemaRegistry(const SchemaRegistry&) = delete;
  SchemaRegistry& operator=(const SchemaRegistry&) = delete;

  /// Registers `table` under its name, precomputes its statistics entry
  /// and indexes it for routing. Duplicate names are
  /// FailedPrecondition; a null table is InvalidArgument. Thread-safe.
  StatusOr<TableId> Register(std::shared_ptr<const sql::Table> table);

  /// Handle of the registered table named `name`; kInvalidTableId when
  /// absent.
  TableId Find(const std::string& name) const;

  /// The registered table behind `id`; nullptr when out of range.
  const sql::Table* table(TableId id) const;

  int num_tables() const;

  /// The precomputed entry for `table`'s current content. Content-keyed:
  /// the table is fingerprinted on every call, so a mutated table gets
  /// fresh statistics instead of stale ones. The reference stays valid
  /// for the registry's lifetime. Works for unregistered (ad-hoc)
  /// tables too — the entry is simply computed and retained on first
  /// sight.
  const TableStatsEntry& EntryFor(const sql::Table& table) const;

  /// Shorthand for EntryFor(table).stats.
  const std::vector<sql::ColumnStatistics>& StatsFor(
      const sql::Table& table) const;

  /// Resolves `ref` to a concrete table. `tokens` (the tokenized
  /// question) is only consulted for `SchemaRef::Route()` refs.
  StatusOr<Resolution> Resolve(const SchemaRef& ref,
                               const std::vector<std::string>& tokens) const;

  /// Admission-time resolvability check (serving): validates that `ref`
  /// can resolve without doing the work — named/id refs must be
  /// registered, routed refs need a non-empty registry.
  Status CheckResolvable(const SchemaRef& ref) const;

  /// Ranks registered tables against a tokenized question: inverted-
  /// index token hits (idf-weighted) blended with question/table-
  /// centroid cosine. Deterministic; ties break toward the lower id.
  std::vector<RouteCandidate> Route(const std::vector<std::string>& tokens,
                                    int limit) const;

  /// Candidate columns of `table` for `tokens`, ascending column
  /// indices. Returns all columns when the table is at or under
  /// shortlist_k wide; otherwise the top-K by blended name/content
  /// similarity. Pure ranking — never consults the classifier.
  std::vector<int> ShortlistColumns(const std::vector<std::string>& tokens,
                                    const sql::Table& table) const;

  /// Persists every known statistics entry (format: "NLSR" v1,
  /// CRC32C-footed, written atomically). Cold start then becomes
  /// Load + cheap embedding recompute instead of a full statistics
  /// pass over every table.
  Status Save(const std::string& path) const;

  /// Loads a Save()d store into the warm set consulted before
  /// computing statistics from scratch. Fully validated (magic,
  /// version, footer CRC32C, staged parse) before any state changes; a
  /// corrupt or torn file leaves the registry untouched and returns
  /// the parse error — callers fall back to recomputation.
  Status Load(const std::string& path);

  ScanMode mode() const {
    return static_cast<ScanMode>(mode_.load(std::memory_order_relaxed));
  }
  void set_mode(ScanMode mode) {
    mode_.store(static_cast<int>(mode), std::memory_order_relaxed);
  }

  const SchemaRegistryOptions& options() const { return options_; }
  const text::EmbeddingProvider& provider() const { return *provider_; }

 private:
  /// Builds the embeddings/centroid half of an entry from its stats.
  /// Pure; called outside mu_ (it takes the provider's lock).
  void FillDerived(const sql::Table& table, TableStatsEntry& entry) const;

  /// Inserts `entry` under mu_ unless another thread won the race, and
  /// returns the resident entry either way.
  const TableStatsEntry& Intern(std::unique_ptr<TableStatsEntry> entry) const;

  const std::shared_ptr<const text::EmbeddingProvider> provider_;
  const SchemaRegistryOptions options_;
  /// ScanMode, relaxed: a mode flip mid-flight only changes which
  /// (equivalent) scoring path later queries take.
  std::atomic<int> mode_;

  mutable Mutex mu_{"schema.registry"};
  /// Registered tables by id; ids are dense and never reused.
  std::vector<std::shared_ptr<const sql::Table>> tables_ NLIDB_GUARDED_BY(mu_);
  std::unordered_map<std::string, TableId> name_to_id_ NLIDB_GUARDED_BY(mu_);
  /// Routing inverted index: token -> ids of tables whose name, column
  /// names, or sampled cells contain it (each id at most once).
  std::unordered_map<std::string, std::vector<TableId>> postings_
      NLIDB_GUARDED_BY(mu_);
  /// Per-table centroid, parallel to tables_ (copied out of the stats
  /// entry at registration so routing never re-fingerprints).
  std::vector<std::vector<float>> centroids_ NLIDB_GUARDED_BY(mu_);
  /// Content-keyed statistics store. Entries are heap-allocated and
  /// never erased, so references returned by EntryFor stay valid across
  /// later insertions and rehashes.
  mutable std::unordered_map<uint64_t, std::unique_ptr<TableStatsEntry>>
      entries_ NLIDB_GUARDED_BY(mu_);
  /// Statistics loaded from disk, consulted before recomputing on an
  /// entries_ miss (embeddings/centroids are rebuilt cheaply from the
  /// live table; only the expensive cell scan is persisted).
  std::unordered_map<uint64_t, std::vector<sql::ColumnStatistics>>
      loaded_stats_ NLIDB_GUARDED_BY(mu_);
};

}  // namespace schema
}  // namespace nlidb

#endif  // NLIDB_SCHEMA_REGISTRY_H_
