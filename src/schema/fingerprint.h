#ifndef NLIDB_SCHEMA_FINGERPRINT_H_
#define NLIDB_SCHEMA_FINGERPRINT_H_

#include <cstddef>
#include <cstdint>

#include "sql/table.h"

namespace nlidb {
namespace schema {

/// Fingerprinting knobs. `max_cells` bounds the cell scan for very large
/// tables: beyond it, cells are stride-sampled (first and last rows are
/// always covered). The default covers every cell of any table this
/// system realistically holds, which is what makes fingerprint-keyed
/// statistics safe against in-place mutation (a changed cell changes the
/// fingerprint, so stale stats can never be served — the content-keyed
/// fix for the old address-keyed TableStatsCache collision hack).
struct FingerprintOptions {
  size_t max_cells = size_t{1} << 20;
};

/// Content fingerprint of a table: CRC32C over the schema (column names
/// and types) in the high 32 bits, CRC32C over the cell contents (row
/// and column framed, length-prefixed) in the low 32 bits. Deterministic
/// across processes and runs; independent of the table's address and
/// name, so two tables with identical content share a fingerprint (and
/// may share precomputed statistics — statistics are a pure function of
/// content).
uint64_t TableFingerprint(const sql::Table& table,
                          const FingerprintOptions& options = {});

/// Schema-only CRC32C (the high word of TableFingerprint).
uint32_t SchemaFingerprint(const sql::Schema& schema);

}  // namespace schema
}  // namespace nlidb

#endif  // NLIDB_SCHEMA_FINGERPRINT_H_
