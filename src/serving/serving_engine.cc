#include "serving/serving.h"

#include <algorithm>
#include <cstdlib>
#include <string>
#include <utility>

#include "common/metrics.h"
#include "common/trace.h"
#include "common/workspace.h"

namespace nlidb {
namespace serving {

namespace {

int EnvInt(const char* name, int fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return std::atoi(v);
}

struct ServingCounters {
  metrics::Counter& submitted;
  metrics::Counter& admitted;
  metrics::Counter& completed;
  metrics::Counter& shed;
  metrics::Counter& cancelled;
  metrics::Counter& rejected_queue_full;
  metrics::Counter& rejected_shutdown;
  metrics::Counter& deadline_misses;
  metrics::Counter& schema_unresolvable;
  metrics::MaxGauge& queue_depth_peak;
  metrics::Histogram& queue_wait;
  metrics::Histogram& e2e_latency;

  static ServingCounters& Get() {
    auto& reg = metrics::MetricsRegistry::Global();
    static ServingCounters c{reg.GetCounter("serving.submitted"),
                             reg.GetCounter("serving.admitted"),
                             reg.GetCounter("serving.completed"),
                             reg.GetCounter("serving.shed"),
                             reg.GetCounter("serving.cancelled"),
                             reg.GetCounter("serving.rejected_queue_full"),
                             reg.GetCounter("serving.rejected_shutdown"),
                             reg.GetCounter("serving.deadline_misses"),
                             reg.GetCounter("serving.schema_unresolvable"),
                             reg.GetGauge("serving.queue_depth_peak"),
                             reg.GetHistogram("serving.queue_wait_ns"),
                             reg.GetHistogram("serving.e2e_latency_ns")};
    return c;
  }
};

}  // namespace

ServingOptions ServingOptions::FromEnv() {
  ServingOptions options;
  options.num_workers =
      std::max(0, EnvInt("NLIDB_SERVING_WORKERS", options.num_workers));
  options.queue_capacity =
      std::max(1, EnvInt("NLIDB_SERVING_QUEUE_CAP", options.queue_capacity));
  options.max_batch =
      std::max(1, EnvInt("NLIDB_SERVING_MAX_BATCH", options.max_batch));
  options.cross_request_batching =
      EnvInt("NLIDB_SERVING_BATCHING",
             options.cross_request_batching ? 1 : 0) != 0;
  return options;
}

ServedResult ServingEngine::Ticket::Take() {
  MutexLock lock(mu_);
  while (!done_) cv_.Wait(mu_);
  return std::move(result_);
}

void ServingEngine::Resolve(Ticket& ticket, ServedResult result) {
  {
    MutexLock lock(ticket.mu_);
    ticket.result_ = std::move(result);
    ticket.done_ = true;
  }
  ticket.cv_.NotifyAll();
}

ServingEngine::ServingEngine(const core::NlidbPipeline& pipeline,
                             const ServingOptions& options)
    : pipeline_(pipeline),
      options_(options),
      decoder_(pipeline.translator(), options.max_batch) {
  workers_.reserve(static_cast<size_t>(std::max(0, options_.num_workers)));
  for (int i = 0; i < options_.num_workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ServingEngine::~ServingEngine() { Shutdown(); }

std::shared_ptr<ServingEngine::Ticket> ServingEngine::Submit(
    core::QueryRequest request) {
  ServingCounters& counters = ServingCounters::Get();
  counters.submitted.Increment();
  auto ticket = std::make_shared<Ticket>();
  const uint64_t now = trace::NowNs();

  // Deadline feasibility at admission: a request that already expired,
  // or whose remaining budget is under shed_factor × the recent service
  // time, cannot be served in time — shed it before it occupies a queue
  // slot and delays feasible requests. Shed requests count as admitted
  // (they entered the system and resolved) to keep the counter invariant
  // admission-path independent.
  if (request.deadline.at_ns() != 0) {
    bool infeasible = now >= request.deadline.at_ns();
    if (!infeasible && options_.shed_factor > 0) {
      const uint64_t est =
          ewma_service_ns_.load(std::memory_order_relaxed);
      const uint64_t remaining = request.deadline.at_ns() - now;
      infeasible =
          est > 0 && static_cast<double>(remaining) <
                         static_cast<double>(est) * options_.shed_factor;
    }
    if (infeasible) {
      counters.admitted.Increment();
      counters.shed.Increment();
      counters.deadline_misses.Increment();
      ServedResult shed;
      shed.status = Status::DeadlineExceeded(
          "request shed at admission: deadline cannot be met");
      shed.e2e_ns = trace::NowNs() - now;
      Resolve(*ticket, std::move(shed));
      return ticket;
    }
  }

  // Schema resolvability at admission: a request naming an unknown
  // table or routing against an empty registry can never succeed, so it
  // resolves here instead of burning a queue slot and a worker pipeline
  // pass. It counts as admitted + completed — it entered the system and
  // resolved with the same error the pipeline would have returned —
  // keeping the counter invariant admission-path independent.
  {
    Status resolvable = pipeline_.registry().CheckResolvable(request.schema_ref);
    if (!resolvable.ok()) {
      counters.admitted.Increment();
      counters.completed.Increment();
      counters.schema_unresolvable.Increment();
      ServedResult failed;
      failed.status = std::move(resolvable);
      failed.e2e_ns = trace::NowNs() - now;
      Resolve(*ticket, std::move(failed));
      return ticket;
    }
  }

  Pending pending;
  pending.request = std::move(request);
  pending.ticket = ticket;
  pending.submit_ns = now;
  pending.parent_span = trace::CurrentSpanId();
  {
    MutexLock lock(mu_);
    if (shutdown_) {
      counters.rejected_shutdown.Increment();
      ServedResult rejected;
      rejected.status = Status::Unavailable("serving engine is shut down");
      Resolve(*ticket, std::move(rejected));
      return ticket;
    }
    if (static_cast<int>(queue_.size()) >= options_.queue_capacity) {
      counters.rejected_queue_full.Increment();
      ServedResult rejected;
      rejected.status = Status::Unavailable("serving queue is full");
      Resolve(*ticket, std::move(rejected));
      return ticket;
    }
    counters.admitted.Increment();
    queue_.push_back(std::move(pending));
    counters.queue_depth_peak.Update(static_cast<int64_t>(queue_.size()));
  }
  cv_.NotifyOne();
  return ticket;
}

ServedResult ServingEngine::Query(core::QueryRequest request) {
  return Submit(std::move(request))->Take();
}

void ServingEngine::WorkerLoop() {
  while (true) {
    Pending pending;
    {
      MutexLock lock(mu_);
      // WaitIdle: a serving worker parked on an empty admission queue
      // is idle, not stuck — exempt from the lockdep watchdog.
      while (!shutdown_ && queue_.empty()) cv_.WaitIdle(mu_);
      // Shutdown drains the queue itself, so a woken worker with
      // shutdown_ set has nothing left to pick up.
      if (shutdown_) return;
      pending = std::move(queue_.front());
      queue_.erase(queue_.begin());
    }
    Process(std::move(pending));
  }
}

void ServingEngine::Process(Pending pending) {
  ServingCounters& counters = ServingCounters::Get();
  const uint64_t start = trace::NowNs();
  const uint64_t queue_wait = start - pending.submit_ns;
  counters.queue_wait.Record(queue_wait);

  ServedResult served;
  served.queue_wait_ns = queue_wait;

  // Dequeue-time checks, cheapest first: an externally cancelled request
  // resolves as cancelled; one whose deadline passed while queued is
  // shed without touching the pipeline.
  if (pending.request.cancel != nullptr &&
      pending.request.cancel->load(std::memory_order_relaxed)) {
    counters.cancelled.Increment();
    served.status =
        Status::DeadlineExceeded("request cancelled while queued");
  } else if (pending.request.deadline.Expired()) {
    counters.shed.Increment();
    counters.deadline_misses.Increment();
    served.status =
        Status::DeadlineExceeded("request shed at dequeue: deadline expired");
  } else {
    // Stitch the worker's spans under the submitter's span, so one
    // request's queue-wait / batch / decode phases form one trace tree.
    trace::ScopedParent stitch(pending.parent_span);
    trace::TraceSpan span("serving.request");
    span.Annotate("queue_wait_ns", static_cast<int64_t>(queue_wait));
    core::QueryRequest request = std::move(pending.request);
    if (options_.cross_request_batching && !request.translate_override) {
      request.translate_override = [this](
                                       const std::vector<std::string>& source,
                                       const CancelContext* ctx) {
        return decoder_.Decode(source, ctx, Workspace::ThreadLocal());
      };
    }
    StatusOr<core::QueryResult> result = pipeline_.Query(request);
    counters.completed.Increment();
    if (result.ok()) {
      served.result = std::move(result).value();
    } else {
      served.status = result.status();
    }
    if (served.status.code() == StatusCode::kDeadlineExceeded) {
      counters.deadline_misses.Increment();
    }
    const uint64_t service_ns = trace::NowNs() - start;
    const uint64_t old = ewma_service_ns_.load(std::memory_order_relaxed);
    ewma_service_ns_.store(old == 0 ? service_ns : (7 * old + service_ns) / 8,
                           std::memory_order_relaxed);
  }

  served.e2e_ns = trace::NowNs() - pending.submit_ns;
  counters.e2e_latency.Record(served.e2e_ns);
  Resolve(*pending.ticket, std::move(served));
}

void ServingEngine::Shutdown() {
  // shutdown_mu_ serializes concurrent Shutdown calls (including the
  // destructor): exactly one caller flips the flag, drains and joins;
  // later callers see workers_joined_ and return once it is all done.
  MutexLock shutdown_lock(shutdown_mu_);
  if (workers_joined_) return;
  workers_joined_ = true;

  std::vector<Pending> drained;
  {
    MutexLock lock(mu_);
    shutdown_ = true;
    drained.swap(queue_);
  }
  cv_.NotifyAll();
  for (auto& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  ServingCounters& counters = ServingCounters::Get();
  for (Pending& pending : drained) {
    counters.cancelled.Increment();
    ServedResult dropped;
    dropped.status =
        Status::Unavailable("serving engine shut down with request queued");
    dropped.queue_wait_ns = trace::NowNs() - pending.submit_ns;
    dropped.e2e_ns = dropped.queue_wait_ns;
    Resolve(*pending.ticket, std::move(dropped));
  }
}

}  // namespace serving
}  // namespace nlidb
