#include "serving/batched_decoder.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"
#include "common/metrics.h"
#include "common/trace.h"

namespace nlidb {
namespace serving {

using core::DecodeMode;
using core::FastDecodeState;
using core::Seq2SeqTranslator;

BatchedDecoder::BatchedDecoder(const Seq2SeqTranslator& translator,
                               int max_batch)
    : translator_(translator), max_batch_(std::max(1, max_batch)) {}

StatusOr<Seq2SeqTranslator::Decoded> BatchedDecoder::Decode(
    const std::vector<std::string>& source, const CancelContext* ctx,
    Workspace& ws) {
  const DecodeMode mode = translator_.decode_mode();
  if (mode == DecodeMode::kReference || mode == DecodeMode::kReferenceMasked) {
    // The reference decoders run on the autodiff tape; they exist as
    // equivalence oracles, not serving paths, so they bypass batching.
    return translator_.Decode(source, ctx);
  }

  // From here this mirrors Seq2SeqTranslator::DecodeWithBeamWidth exactly
  // (same counters, same fallback conditions, same log line) with
  // BatchedSearch standing in for Search — so a query served through the
  // batch returns the same Decoded, bit for bit, as the sequential call.
  static metrics::Counter& greedy_fallbacks =
      metrics::MetricsRegistry::Global().GetCounter(
          "seq2seq.greedy_fallbacks");
  static metrics::Counter& fast_path_queries =
      metrics::MetricsRegistry::Global().GetCounter(
          "seq2seq.fast_path_queries");
  const int beam_width = translator_.config().beam_width;
  const bool mask = FastDecodeState::WantsMask(translator_, mode);
  Seq2SeqTranslator::Decoded out;
  out.used_fast_path = true;
  fast_path_queries.Increment();
  StatusOr<FastDecodeState::Result> beam =
      BatchedSearch(source, beam_width, mask, ctx, ws);
  if (beam.ok()) {
    out.tokens = std::move(beam.value().tokens);
    out.score = beam.value().score;
    return out;
  }
  // Deadline expiry and malformed input are the caller's problem; only
  // the search itself failing degrades to greedy.
  if (beam.status().code() == StatusCode::kDeadlineExceeded ||
      beam.status().code() == StatusCode::kInvalidArgument ||
      beam_width <= 1) {
    return beam.status();
  }
  greedy_fallbacks.Increment();
  NLIDB_LOG(Warning) << "beam search failed (" << beam.status().ToString()
                     << "); retrying with greedy decode";
  StatusOr<FastDecodeState::Result> greedy =
      BatchedSearch(source, 1, mask, ctx, ws);
  if (!greedy.ok()) return greedy.status();
  out.tokens = std::move(greedy.value().tokens);
  out.score = greedy.value().score;
  out.used_greedy_fallback = true;
  return out;
}

StatusOr<FastDecodeState::Result> BatchedDecoder::BatchedSearch(
    const std::vector<std::string>& source, int beam_width,
    bool use_grammar_mask, const CancelContext* ctx, Workspace& ws) {
  Workspace::Scope query_scope(ws);
  FastDecodeState state(translator_, source, beam_width, use_grammar_mask, ws);
  NLIDB_RETURN_IF_ERROR(state.Admit());
  trace::TraceSpan span("seq2seq.translate");
  span.Annotate("beam_width", static_cast<int64_t>(beam_width));
  // The encoder runs on the submitting thread, outside the rendezvous:
  // encoder work is per-query (nothing to share) and keeping it out of
  // the leader's tick loop keeps ticks short.
  state.BuildEncoderCache();
  trace::TraceSpan decode_span("seq2seq.decode");

  Participant self;
  self.state = &state;
  self.ctx = ctx;

  {
    MutexLock lock(mu_);
    queue_.push_back(&self);
    while (!self.finished) {
      if (leader_ == nullptr) {
        leader_ = &self;
        while (!self.finished) RunTick(&self);
        leader_ = nullptr;
        // Wake both finished participants and the next leader candidate.
        cv_.NotifyAll();
      } else {
        cv_.Wait(mu_);
      }
    }
  }

  NLIDB_RETURN_IF_ERROR(self.error);
  return std::move(self.result);
}

std::vector<int64_t> BatchedDecoder::OccupancyCounts() const {
  std::vector<int64_t> out(kOccupancyBuckets);
  for (int i = 0; i < kOccupancyBuckets; ++i) {
    out[i] = occupancy_counts_[i].load(std::memory_order_relaxed);
  }
  return out;
}

void BatchedDecoder::RunTick(Participant* self) {
  static metrics::Counter& ticks =
      metrics::MetricsRegistry::Global().GetCounter("serving.batch.ticks");
  static metrics::Counter& rows =
      metrics::MetricsRegistry::Global().GetCounter("serving.batch.rows");

  // Gather this tick's batch: the leader itself plus the oldest waiting
  // participants, FIFO, up to max_batch_. Tick membership only affects
  // which rows share the gate GEMMs, never any query's bits.
  std::vector<Participant*> batch;
  batch.push_back(self);
  for (Participant* p : queue_) {
    if (p == self) continue;
    if (static_cast<int>(batch.size()) >= max_batch_) break;
    batch.push_back(p);
  }

  std::vector<Participant*> completed;
  {
    MutexUnlock unlocked(mu_);
    // ---- Unlocked compute: only the leader touches participant states
    // (waiting owners are blocked in cv_.Wait), and the lock acquisitions
    // around each tick give every state a happens-before chain from its
    // owner through every leader that advanced it.
    trace::TraceSpan tick_span("serving.batch.tick");
    std::vector<Participant*> active;
    active.reserve(batch.size());
    for (Participant* p : batch) {
      Status s = p->state->BeginStep(p->ctx);
      if (!s.ok()) {
        p->error = s;
        completed.push_back(p);
      } else if (p->state->done()) {
        StatusOr<FastDecodeState::Result> result = p->state->TakeResult();
        if (result.ok()) {
          p->result = std::move(result.value());
        } else {
          p->error = result.status();
        }
        completed.push_back(p);
      } else {
        active.push_back(p);
      }
    }

    if (!active.empty()) {
      // Concatenate the live frontiers into one [ΣB, ·] staging block and
      // run the two gate GEMMs once for everyone. Per-row bits are
      // independent of the concatenation (kernel contract), and each
      // FinishStep consumes only its own rows.
      Workspace& tick_ws = Workspace::ThreadLocal();
      Workspace::Scope tick_scope(tick_ws);
      const int xin = active[0]->state->x_width();
      const int h2 = active[0]->state->h_width();
      int total = 0;
      for (Participant* p : active) total += p->state->frontier_rows();
      float* x = tick_ws.Floats(static_cast<size_t>(total) * xin);
      float* d_gather = tick_ws.Floats(static_cast<size_t>(total) * h2);
      float* gi = tick_ws.Floats(static_cast<size_t>(total) * 3 * h2);
      float* gh = tick_ws.Floats(static_cast<size_t>(total) * 3 * h2);
      int offset = 0;
      for (Participant* p : active) {
        p->state->StageFrontier(x + static_cast<size_t>(offset) * xin,
                                d_gather + static_cast<size_t>(offset) * h2);
        offset += p->state->frontier_rows();
      }
      FastDecodeState::ComputeGates(translator_, x, d_gather, total, gi, gh);
      offset = 0;
      for (Participant* p : active) {
        p->state->FinishStep(gi + static_cast<size_t>(offset) * 3 * h2,
                             gh + static_cast<size_t>(offset) * 3 * h2,
                             d_gather + static_cast<size_t>(offset) * h2);
        offset += p->state->frontier_rows();
      }
      ticks.Increment();
      rows.Increment(total);
      const int bucket = std::min(static_cast<int>(active.size()),
                                  kOccupancyBuckets - 1);
      occupancy_counts_[bucket].fetch_add(1, std::memory_order_relaxed);
      tick_span.Annotate("queries", static_cast<int64_t>(active.size()));
      tick_span.Annotate("rows", static_cast<int64_t>(total));
    }
  }  // ---- End unlocked compute: mu_ reacquired here.
  if (!completed.empty()) {
    for (Participant* p : completed) {
      queue_.erase(std::remove(queue_.begin(), queue_.end(), p), queue_.end());
      p->finished = true;
    }
    cv_.NotifyAll();
  }
}

}  // namespace serving
}  // namespace nlidb
