#ifndef NLIDB_SERVING_BATCHED_DECODER_H_
#define NLIDB_SERVING_BATCHED_DECODER_H_

// Cross-request dynamic batching for the decoder fast path (DESIGN.md
// §13). Concurrent serving workers calling Decode() rendezvous here: each
// builds its own FastDecodeState (per-query encoder cache in the calling
// thread's arena), then the first one to find no leader becomes the batch
// leader and repeatedly advances the live frontiers of up to `max_batch`
// queued queries — two [ΣB, 3H] GRU-gate GEMMs per tick via
// FastDecodeState::ComputeGates — until its own query finishes, at which
// point leadership passes to a waiting participant.
//
// Bitwise contract: results are identical to sequential
// Seq2SeqTranslator::Decode on the same source, whatever the batch mix.
// Every per-query computation runs inside that query's FastDecodeState in
// the reference order; the only shared computation is ComputeGates, whose
// per-row output bits are independent of which other rows share the GEMM
// (tensor/tensor.h kernel contract). serving_equivalence_test enforces
// this across client counts, beam widths and decode modes.

#include <atomic>
#include <string>
#include <vector>

#include "common/deadline.h"
#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "common/workspace.h"
#include "core/seq2seq.h"
#include "core/seq2seq_fast.h"

namespace nlidb {
namespace serving {

class BatchedDecoder {
 public:
  /// `translator` must outlive the decoder and stay immutable while any
  /// Decode is in flight. `max_batch` caps how many queries one leader
  /// tick advances together (>= 1).
  BatchedDecoder(const core::Seq2SeqTranslator& translator, int max_batch);
  BatchedDecoder(const BatchedDecoder&) = delete;
  BatchedDecoder& operator=(const BatchedDecoder&) = delete;

  /// Drop-in replacement for `translator.Decode(source, ctx)`: same
  /// results, same statuses, same greedy-fallback semantics and counters.
  /// The reference decode modes pass straight through to the translator
  /// (they are tape-based and not batchable); the fast modes decode
  /// through the shared batch loop. `ws` is the caller's arena (the
  /// per-query state lives there); calls may block while another
  /// request's leader advances this one.
  StatusOr<core::Seq2SeqTranslator::Decoded> Decode(
      const std::vector<std::string>& source, const CancelContext* ctx,
      Workspace& ws);

  /// Batch-occupancy histogram: element i counts leader ticks that
  /// advanced exactly i queries together (i = 0 unused; the last element
  /// aggregates >= kOccupancyBuckets - 1). Relaxed counts, exact only
  /// when decoding is quiesced.
  static constexpr int kOccupancyBuckets = 17;
  std::vector<int64_t> OccupancyCounts() const;

 private:
  /// One in-flight query in the rendezvous. The submitting thread owns
  /// `state` (it lives in that thread's arena); between enqueue and the
  /// finished_ flag flipping, only the current leader touches it, with
  /// the mutex providing the happens-before edge at each handoff. The
  /// result fields are written by the leader before it re-acquires mu_
  /// to set finished_, so the owner's post-wait read is ordered.
  struct Participant {
    core::FastDecodeState* state = nullptr;
    const CancelContext* ctx = nullptr;
    bool finished = false;  // guarded by mu_
    Status error = Status::Ok();
    core::FastDecodeState::Result result;
  };

  /// The full search for one query: build state, enqueue, then lead or
  /// wait until finished.
  StatusOr<core::FastDecodeState::Result> BatchedSearch(
      const std::vector<std::string>& source, int beam_width,
      bool use_grammar_mask, const CancelContext* ctx, Workspace& ws);

  /// One leader tick: gather up to max_batch_ queued participants
  /// (always including `self`), advance each by one decode step with the
  /// gate GEMMs shared, and mark the ones that finished. Drops and
  /// re-acquires mu_ around the compute.
  void RunTick(Participant* self) NLIDB_EXCLUSIVE_LOCKS_REQUIRED(mu_);

  const core::Seq2SeqTranslator& translator_;
  const int max_batch_;

  Mutex mu_{"serving.batch"};
  CondVar cv_;
  std::vector<Participant*> queue_ NLIDB_GUARDED_BY(mu_);
  Participant* leader_ NLIDB_GUARDED_BY(mu_) = nullptr;
  std::atomic<int64_t> occupancy_counts_[kOccupancyBuckets] = {};
};

}  // namespace serving
}  // namespace nlidb

#endif  // NLIDB_SERVING_BATCHED_DECODER_H_
