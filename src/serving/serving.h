#ifndef NLIDB_SERVING_SERVING_H_
#define NLIDB_SERVING_SERVING_H_

// Multi-tenant serving harness over a trained pipeline (DESIGN.md §13).
//
// `ServingEngine` owns a bounded admission queue and a fixed worker pool
// in front of a `const NlidbPipeline&`. Requests are deadline-aware at
// every hop: infeasible ones are shed at submit (before consuming a
// queue slot), expired ones are shed at dequeue (before consuming
// compute), and in-flight ones abort at the pipeline's CancelContext
// poll points. Worker decodes are routed through `BatchedDecoder`, so
// concurrent queries share GRU-gate GEMMs while staying bitwise
// identical to sequential `pipeline.Query()` calls.
//
// Counter invariant (asserted by serving_fault_test):
//   serving.submitted == serving.admitted + serving.rejected_queue_full
//                        + serving.rejected_shutdown
//   serving.admitted  == serving.completed + serving.shed
//                        + serving.cancelled
// A request that runs and misses its deadline in-flight still counts as
// completed (the miss shows up in serving.deadline_misses, which tallies
// both shed-for-deadline and missed-in-flight requests). A request whose
// SchemaRef cannot resolve is failed at admission (admitted + completed,
// plus serving.schema_unresolvable) without consuming a queue slot.

#include <cstdint>
#include <memory>
#include <vector>

#include "common/deadline.h"
#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "core/pipeline.h"
#include "serving/batched_decoder.h"

// The worker pool deliberately bypasses common/thread_pool (lint
// suppression on the member below): serving workers block on condition
// variables — queue waits, batch rendezvous — which the shared compute
// pool's run-to-completion tasks must never do, and the compute pool
// stays reserved for the GEMM substrate beneath the workers.
#include <thread>

namespace nlidb {
namespace serving {

/// Engine knobs. `FromEnv()` starts from the defaults and applies the
/// NLIDB_SERVING_* environment overrides (documented in README.md).
struct ServingOptions {
  /// Worker threads executing queries. 0 is legal (nothing executes
  /// until shutdown; admission and rejection still work) — used by
  /// queue-edge tests.
  int num_workers = 4;

  /// Bounded admission queue capacity; submits beyond it are rejected
  /// with Unavailable rather than queued without bound.
  int queue_capacity = 256;

  /// Max queries one batch-leader tick advances together.
  int max_batch = 8;

  /// Route worker decodes through the cross-request BatchedDecoder.
  /// Off → each worker decodes sequentially (still bitwise identical;
  /// the bench uses this to measure batching's contribution).
  bool cross_request_batching = true;

  /// Shed a request at admission when its remaining deadline budget is
  /// under `shed_factor` × the EWMA service time. 0 disables
  /// feasibility shedding (expired deadlines are still shed).
  double shed_factor = 0.5;

  static ServingOptions FromEnv();
};

/// Everything the engine returns for one request. `status` carries
/// admission/scheduling failures (shed, queue full, shutdown) and
/// pipeline-level errors exactly as `pipeline.Query()` would return
/// them; `result` is only meaningful when `status.ok()`.
struct ServedResult {
  Status status = Status::Ok();
  core::QueryResult result;
  uint64_t queue_wait_ns = 0;  // submit -> worker pickup
  uint64_t e2e_ns = 0;         // submit -> resolution
};

class ServingEngine {
 public:
  /// A one-shot future for a submitted request. Take() blocks until the
  /// request resolves (completed, shed, cancelled or drained) and may be
  /// called once; it is safe to call from any thread, including after
  /// engine shutdown (every ticket resolves before Shutdown returns).
  class Ticket {
   public:
    ServedResult Take();

   private:
    friend class ServingEngine;
    Mutex mu_{"serving.ticket"};
    CondVar cv_;
    bool done_ NLIDB_GUARDED_BY(mu_) = false;
    ServedResult result_ NLIDB_GUARDED_BY(mu_);
  };

  /// `pipeline` must be trained, remain alive and unmutated for the
  /// engine's lifetime (the const reference is the thread-safety
  /// contract: serving never trains).
  explicit ServingEngine(const core::NlidbPipeline& pipeline,
                         const ServingOptions& options = ServingOptions());
  ~ServingEngine();
  ServingEngine(const ServingEngine&) = delete;
  ServingEngine& operator=(const ServingEngine&) = delete;

  /// Admits `request` (or sheds/rejects it — the ticket resolves
  /// immediately in that case) and returns the ticket to wait on.
  /// Thread-safe.
  std::shared_ptr<Ticket> Submit(core::QueryRequest request);

  /// Submit + Take: the synchronous client call.
  ServedResult Query(core::QueryRequest request);

  /// Stops admitting, drains queued requests (their tickets resolve
  /// with Unavailable), and joins the workers. Idempotent; the
  /// destructor calls it.
  void Shutdown();

  /// The cross-request batcher (bench introspection: occupancy counts).
  const BatchedDecoder& decoder() const { return decoder_; }

 private:
  struct Pending {
    core::QueryRequest request;
    std::shared_ptr<Ticket> ticket;
    uint64_t submit_ns = 0;
    int parent_span = 0;  // submitter's span, for cross-thread stitching
  };

  void WorkerLoop();
  void Process(Pending pending);
  static void Resolve(Ticket& ticket, ServedResult result);

  const core::NlidbPipeline& pipeline_;
  const ServingOptions options_;
  // Internally synchronized (its own mu_/cv_ rendezvous).
  BatchedDecoder decoder_;  // nlidb-lint: disable(mutex-coverage)

  Mutex mu_{"serving.queue"};
  CondVar cv_;
  std::vector<Pending> queue_ NLIDB_GUARDED_BY(mu_);
  bool shutdown_ NLIDB_GUARDED_BY(mu_) = false;

  /// Serializes Shutdown against concurrent Shutdown/destruction (join
  /// must happen exactly once).
  Mutex shutdown_mu_{"serving.shutdown"};
  bool workers_joined_ NLIDB_GUARDED_BY(shutdown_mu_) = false;

  /// EWMA of recent service times, feeding admission feasibility.
  /// Relaxed: an approximate estimate is all shedding needs.
  std::atomic<uint64_t> ewma_service_ns_{0};

  // Written once in the constructor, joined under shutdown_mu_'s
  // workers_joined_ latch; never mutated while workers run.
  // nlidb-lint: disable(raw-thread, mutex-coverage)
  std::vector<std::thread> workers_;
};

}  // namespace serving
}  // namespace nlidb

#endif  // NLIDB_SERVING_SERVING_H_
