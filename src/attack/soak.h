#ifndef NLIDB_ATTACK_SOAK_H_
#define NLIDB_ATTACK_SOAK_H_

// Open-loop adversarial soak over the ServingEngine.
//
// RunSoak replays a mutated corpus as paced open-loop traffic — Poisson
// arrivals, mixed deadline tiers, optional random-delay failpoint
// schedule — through a fresh engine, triaging every resolved ticket into
// the per-mutator × per-stage AttackMatrix as it completes. A sliding
// ticket window keeps memory bounded, so `queries` scales from the
// 10k-query acceptance run to millions with the same knobs
// (NLIDB_ATTACK_*, see README.md).
//
// The run doubles as a correctness gate: afterwards the serving counter
// decomposition must balance exactly (submitted == admitted +
// rejected_*; admitted == completed + shed + cancelled) and, when the
// lockdep detector is live, zero inversion reports may have fired.

#include <cstdint>
#include <string>
#include <vector>

#include "attack/mutator.h"
#include "attack/triage.h"
#include "core/pipeline.h"

namespace nlidb {
namespace attack {

struct SoakOptions {
  /// Total queries to replay (the corpus is cycled as needed).
  uint64_t queries = 20000;

  // Engine shape (mirrors ServingOptions).
  int workers = 4;
  int queue_capacity = 256;
  int max_batch = 8;
  bool cross_request_batching = true;

  /// Offered load. 0 auto-calibrates: a short sequential pilot measures
  /// the mean service time and the soak offers ~1.1x the worker pool's
  /// resulting capacity — enough overload that shedding and queue
  /// pressure stay exercised without sheds dominating.
  double offered_qps = 0.0;

  /// Deadline tier mix (fractions of traffic; the remainder is the
  /// infeasibly tight tier). Generous = 400x service, tight = service/4.
  double frac_no_deadline = 0.35;
  double frac_generous = 0.50;

  /// Arrival-schedule / tier-assignment seed.
  uint64_t seed = 7;

  /// When non-zero, activates the failpoint random-delay schedule for
  /// the duration of the run (unless the environment already did).
  uint64_t random_delay_seed = 0;

  /// Defaults overridden by NLIDB_ATTACK_QUERIES / _WORKERS /
  /// _QUEUE_CAP / _QPS / _SEED / _DELAY_SEED.
  static SoakOptions FromEnv();
};

struct SoakReport {
  AttackMatrix matrix;

  // Serving counters after shutdown.
  int64_t submitted = 0;
  int64_t admitted = 0;
  int64_t rejected_queue_full = 0;
  int64_t rejected_shutdown = 0;
  int64_t completed = 0;
  int64_t shed = 0;
  int64_t cancelled = 0;
  int64_t deadline_misses = 0;

  /// Both decomposition identities held exactly.
  bool counters_balanced = false;

  /// Lockdep findings during the run (-1: detector not enabled).
  int lockdep_reports = -1;

  /// Failpoint fires observed during the run (0 when no schedule).
  int64_t failpoints_fired = 0;

  double wall_s = 0.0;
  double qps = 0.0;            // resolved queries / wall_s
  uint64_t service_ns = 0;     // calibrated sequential service time
  double offered_qps = 0.0;    // what the plan actually offered

  std::string ToString() const;
};

/// Replays `corpus` (round-robin) through a fresh engine on `pipeline`.
/// Resets the global metrics registry at entry; exports `attack.*`
/// metrics from the final matrix before returning. The caller should
/// pin ThreadPool::SetGlobalParallelism(1) around serving runs (the
/// engine's workers are the concurrency under test).
SoakReport RunSoak(const core::NlidbPipeline& pipeline,
                   const std::vector<Mutant>& corpus,
                   const SoakOptions& options);

}  // namespace attack
}  // namespace nlidb

#endif  // NLIDB_ATTACK_SOAK_H_
