#include "attack/soak.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <deque>
// The submitter paces open-loop arrivals with sleep_for (no clock reads:
// timestamps come from trace::NowNs()); blocking sleeps must never run
// on the shared compute pool.
#include <thread>
#include <utility>

#include "common/failpoint.h"
#include "common/lockdep.h"
#include "common/metrics.h"
#include "common/trace.h"
#include "serving/serving.h"

namespace nlidb {
namespace attack {

namespace {

uint64_t EnvU64(const char* name, uint64_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || value[0] == '\0') return fallback;
  return std::strtoull(value, nullptr, 10);
}

core::QueryRequest RequestFor(const Mutant& mutant) {
  core::QueryRequest request;
  request.schema_ref = core::SchemaRef::Table(mutant.example.table.get());
  request.tokens = mutant.example.tokens;
  request.collect_timings = false;
  return request;
}

/// Mean sequential service time over a short pilot (also warms caches).
uint64_t CalibrateServiceNs(const core::NlidbPipeline& pipeline,
                            const std::vector<Mutant>& corpus, int limit) {
  uint64_t total = 0;
  int n = 0;
  for (const Mutant& m : corpus) {
    const uint64_t t0 = trace::NowNs();
    StatusOr<core::QueryResult> result = pipeline.Query(RequestFor(m));
    (void)result;
    total += trace::NowNs() - t0;
    if (++n >= limit) break;
  }
  return n > 0 ? total / static_cast<uint64_t>(n) : 0;
}

}  // namespace

SoakOptions SoakOptions::FromEnv() {
  SoakOptions options;
  options.queries = EnvU64("NLIDB_ATTACK_QUERIES", options.queries);
  options.workers = static_cast<int>(
      EnvU64("NLIDB_ATTACK_WORKERS", static_cast<uint64_t>(options.workers)));
  options.queue_capacity = static_cast<int>(EnvU64(
      "NLIDB_ATTACK_QUEUE_CAP", static_cast<uint64_t>(options.queue_capacity)));
  const char* qps = std::getenv("NLIDB_ATTACK_QPS");
  if (qps != nullptr && qps[0] != '\0') options.offered_qps = std::atof(qps);
  options.seed = EnvU64("NLIDB_ATTACK_SEED", options.seed);
  options.random_delay_seed =
      EnvU64("NLIDB_ATTACK_DELAY_SEED", options.random_delay_seed);
  return options;
}

std::string SoakReport::ToString() const {
  char buf[512];
  std::string out = matrix.Render();
  std::snprintf(
      buf, sizeof(buf),
      "soak: %lld submitted = %lld admitted + %lld queue_full + %lld "
      "shutdown; %lld admitted = %lld completed + %lld shed + %lld "
      "cancelled  [%s]\n",
      static_cast<long long>(submitted), static_cast<long long>(admitted),
      static_cast<long long>(rejected_queue_full),
      static_cast<long long>(rejected_shutdown),
      static_cast<long long>(admitted), static_cast<long long>(completed),
      static_cast<long long>(shed), static_cast<long long>(cancelled),
      counters_balanced ? "balanced" : "IMBALANCED");
  out += buf;
  std::snprintf(buf, sizeof(buf),
                "soak: %.1f s wall, %.0f qps resolved (offered %.0f), "
                "service %.3f ms, deadline misses %lld, failpoints %lld, "
                "lockdep reports %d\n",
                wall_s, qps, offered_qps,
                static_cast<double>(service_ns) / 1e6,
                static_cast<long long>(deadline_misses),
                static_cast<long long>(failpoints_fired), lockdep_reports);
  out += buf;
  return out;
}

SoakReport RunSoak(const core::NlidbPipeline& pipeline,
                   const std::vector<Mutant>& corpus,
                   const SoakOptions& options) {
  SoakReport report;
  if (corpus.empty() || options.queries == 0) return report;

  metrics::MetricsRegistry::Global().ResetAll();

  // Optional schedule perturbation for this run only. An env-activated
  // schedule (CI's fault leg) takes precedence and is left untouched.
  failpoint::InitFromEnv();
  bool activated_delay = false;
  if (options.random_delay_seed != 0 && !failpoint::RandomDelayActive()) {
    failpoint::ActivateRandomDelay(options.random_delay_seed);
    activated_delay = true;
  }

  report.service_ns = CalibrateServiceNs(
      pipeline, corpus,
      static_cast<int>(std::min<uint64_t>(32, corpus.size())));
  const uint64_t service_ns = std::max<uint64_t>(report.service_ns, 1);
  double offered_qps = options.offered_qps;
  if (offered_qps <= 0.0) {
    offered_qps = 1.1 * static_cast<double>(options.workers) * 1e9 /
                  static_cast<double>(service_ns);
  }
  report.offered_qps = offered_qps;
  const uint64_t generous_ns = 400 * service_ns;
  const uint64_t tight_ns = service_ns / 4;

  serving::ServingOptions serving_options;
  serving_options.num_workers = options.workers;
  serving_options.queue_capacity = options.queue_capacity;
  serving_options.max_batch = options.max_batch;
  serving_options.cross_request_batching = options.cross_request_batching;
  serving::ServingEngine engine(pipeline, serving_options);

  if (lockdep::Enabled()) lockdep::ClearReports();

  // Open-loop replay with a bounded in-flight window: when the window
  // fills, the oldest ticket is drained and triaged immediately, so
  // memory stays O(window) regardless of `queries`.
  struct InFlight {
    std::shared_ptr<serving::ServingEngine::Ticket> ticket;
    const Mutant* mutant;
  };
  std::deque<InFlight> window;
  const size_t max_window = static_cast<size_t>(
      std::max(512, 2 * options.queue_capacity));

  auto drain_one = [&] {
    InFlight f = std::move(window.front());
    window.pop_front();
    serving::ServedResult served = f.ticket->Take();
    report.matrix.Add(
        f.mutant->kind,
        TriageOutcome(f.mutant->example, served.status, served.result));
  };

  Rng rng(options.seed);
  const uint64_t start_ns = trace::NowNs();
  double t_ns = 0.0;
  for (uint64_t i = 0; i < options.queries; ++i) {
    const Mutant& mutant = corpus[i % corpus.size()];
    const double u = static_cast<double>(rng.NextFloat());
    t_ns += -std::log(1.0 - u) / offered_qps * 1e9;
    const uint64_t at = start_ns + static_cast<uint64_t>(t_ns);
    const uint64_t now = trace::NowNs();
    if (at > now) {
      std::this_thread::sleep_for(std::chrono::nanoseconds(at - now));
    }
    core::QueryRequest request = RequestFor(mutant);
    const float tier = rng.NextFloat();
    if (tier < options.frac_no_deadline) {
      // no deadline
    } else if (tier < options.frac_no_deadline + options.frac_generous) {
      request.deadline = Deadline::AfterNanos(generous_ns);
    } else {
      request.deadline = Deadline::AfterNanos(tight_ns);
    }
    window.push_back({engine.Submit(std::move(request)), &mutant});
    while (window.size() > max_window) drain_one();
  }
  while (!window.empty()) drain_one();
  const uint64_t wall_ns = trace::NowNs() - start_ns;
  engine.Shutdown();

  auto& registry = metrics::MetricsRegistry::Global();
  report.submitted = registry.GetCounter("serving.submitted").Value();
  report.admitted = registry.GetCounter("serving.admitted").Value();
  report.rejected_queue_full =
      registry.GetCounter("serving.rejected_queue_full").Value();
  report.rejected_shutdown =
      registry.GetCounter("serving.rejected_shutdown").Value();
  report.completed = registry.GetCounter("serving.completed").Value();
  report.shed = registry.GetCounter("serving.shed").Value();
  report.cancelled = registry.GetCounter("serving.cancelled").Value();
  report.deadline_misses =
      registry.GetCounter("serving.deadline_misses").Value();
  report.failpoints_fired = registry.GetCounter("failpoint.fired").Value();
  report.counters_balanced =
      report.submitted == report.admitted + report.rejected_queue_full +
                              report.rejected_shutdown &&
      report.admitted ==
          report.completed + report.shed + report.cancelled;

  report.lockdep_reports =
      lockdep::Enabled() ? static_cast<int>(lockdep::Reports().size()) : -1;

  report.wall_s = static_cast<double>(wall_ns) / 1e9;
  report.qps = report.wall_s > 0
                   ? static_cast<double>(options.queries) / report.wall_s
                   : 0.0;

  report.matrix.ExportMetrics();

  if (activated_delay) failpoint::DeactivateAll();
  return report;
}

}  // namespace attack
}  // namespace nlidb
