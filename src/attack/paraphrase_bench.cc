#include "attack/paraphrase_bench.h"

#include <utility>

#include "data/domain.h"

namespace nlidb {
namespace attack {

ParaphraseBenchCorpus GenerateParaphraseBench(
    const data::GeneratorConfig& config) {
  auto generate = [&](data::QuestionStyle style,
                      uint64_t seed) -> data::Dataset {
    data::GeneratorConfig sub = config;
    sub.style = style;
    sub.seed = seed;
    data::WikiSqlGenerator gen(sub, {data::PatientsDomain()});
    return gen.Generate();
  };

  // The generated naive corpus seeds the three mutated categories:
  // lexical, morphological and missing are the engine's synonym-swap,
  // inflection and implicit-column mutators over the same questions.
  const data::Dataset naive = generate(data::QuestionStyle::kNaive,
                                       config.seed);
  const MutationEngine engine(MutationConfig{config.seed});

  ParaphraseBenchCorpus corpus;
  auto add = [&](data::QuestionStyle style, data::Dataset dataset) {
    corpus.categories.push_back(
        ParaphraseBenchCorpus::Category{style, std::move(dataset)});
  };
  // Paper category order.
  add(data::QuestionStyle::kNaive, naive);
  add(data::QuestionStyle::kSyntactic,
      generate(data::QuestionStyle::kSyntactic, config.seed + 1));
  add(data::QuestionStyle::kLexical,
      MutateDataset(engine, naive, MutatorKind::kSynonymSwap, /*salt=*/1));
  add(data::QuestionStyle::kMorphological,
      MutateDataset(engine, naive, MutatorKind::kMorphInflect, /*salt=*/2));
  add(data::QuestionStyle::kSemantic,
      generate(data::QuestionStyle::kSemantic, config.seed + 4));
  add(data::QuestionStyle::kMissing,
      MutateDataset(engine, naive, MutatorKind::kImplicitColumn, /*salt=*/3));
  return corpus;
}

}  // namespace attack
}  // namespace nlidb
