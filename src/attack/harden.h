#ifndef NLIDB_ATTACK_HARDEN_H_
#define NLIDB_ATTACK_HARDEN_H_

// The hardening half of the adversarial flywheel: measure accuracy
// under attack, pick the worst mutator buckets, retrain with those
// mutations applied to the training corpus as augmentation, and
// re-measure — the before/after curve BENCH_attack.json commits.

#include <memory>
#include <vector>

#include "attack/mutator.h"
#include "attack/triage.h"
#include "core/pipeline.h"
#include "eval/metrics.h"

namespace nlidb {
namespace attack {

/// Deterministic offline accuracy-under-attack: sequential
/// pipeline.Query over every mutant, triaged into a matrix. No serving
/// engine, no deadlines — this isolates model robustness from load
/// effects (the soak driver measures those).
AttackMatrix EvaluateUnderAttack(const core::NlidbPipeline& pipeline,
                                 const std::vector<Mutant>& mutants);

struct HardenOptions {
  /// How many of the worst mutator buckets feed back into training.
  int buckets = 2;

  /// A bucket qualifies only with at least this many answered queries.
  uint64_t min_bucket_samples = 20;

  /// Independently-salted mutation passes over the training corpus per
  /// chosen bucket. Each copy perturbs different sites/choices, so more
  /// copies mean more diverse adversarial training signal.
  int augment_copies = 2;

  /// Salt for the augmentation mutation streams, so augmentation
  /// mutants differ from the evaluation mutants even on the same seed.
  uint64_t augment_salt = 0xA06;
};

struct HardenReport {
  /// The buckets chosen for retraining (worst accuracy first).
  std::vector<MutatorKind> hardened_kinds;

  AttackMatrix baseline;          // attack matrix before hardening
  AttackMatrix hardened;          // attack matrix after hardening
  eval::AccuracyReport clean_baseline;  // clean-corpus accuracy before
  eval::AccuracyReport clean_hardened;  // clean-corpus accuracy after

  /// The retrained pipeline (same config/provider as the baseline),
  /// for callers that want to keep attacking it.
  std::unique_ptr<core::NlidbPipeline> hardened_pipeline;
};

/// Runs one flywheel turn. `baseline` must already be trained on
/// `train`; the hardened pipeline is a fresh model trained on `train`
/// plus the worst buckets' mutations of `train` (via
/// core::AugmentDataset). `attack_eval` are the evaluation mutants
/// (typically MutateCorpus over a held-out split) and `eval_clean` the
/// unmutated control split for the no-regression check.
HardenReport Harden(const core::NlidbPipeline& baseline,
                    std::shared_ptr<text::EmbeddingProvider> provider,
                    const data::Dataset& train,
                    const data::Dataset& eval_clean,
                    const std::vector<Mutant>& attack_eval,
                    const MutationEngine& engine,
                    const HardenOptions& options = HardenOptions());

}  // namespace attack
}  // namespace nlidb

#endif  // NLIDB_ATTACK_HARDEN_H_
