#include "attack/harden.h"

#include <algorithm>
#include <iterator>
#include <utility>

#include "common/logging.h"
#include "core/trainer.h"

namespace nlidb {
namespace attack {

AttackMatrix EvaluateUnderAttack(const core::NlidbPipeline& pipeline,
                                 const std::vector<Mutant>& mutants) {
  AttackMatrix matrix;
  for (const Mutant& m : mutants) {
    core::QueryRequest request;
    request.schema_ref = core::SchemaRef::Table(m.example.table.get());
    request.tokens = m.example.tokens;
    request.collect_timings = false;
    StatusOr<core::QueryResult> result = pipeline.Query(request);
    const core::QueryResult empty;
    matrix.Add(m.kind, TriageOutcome(m.example, result.status(),
                                     result.ok() ? result.value() : empty));
  }
  return matrix;
}

HardenReport Harden(const core::NlidbPipeline& baseline,
                    std::shared_ptr<text::EmbeddingProvider> provider,
                    const data::Dataset& train,
                    const data::Dataset& eval_clean,
                    const std::vector<Mutant>& attack_eval,
                    const MutationEngine& engine,
                    const HardenOptions& options) {
  HardenReport report;
  report.baseline = EvaluateUnderAttack(baseline, attack_eval);
  report.clean_baseline = eval::EvaluatePipeline(baseline, eval_clean);

  // Pick the worst buckets by accuracy-under-attack, worst first.
  AttackMatrix remaining = report.baseline;
  for (int b = 0; b < options.buckets; ++b) {
    const int worst = remaining.WorstRow(options.min_bucket_samples);
    if (worst < 0) break;
    report.hardened_kinds.push_back(static_cast<MutatorKind>(worst));
    // Exclude the chosen row from the next WorstRow pass.
    for (int s = 0; s < kNumStages; ++s) remaining.counts[worst][s] = 0;
  }
  if (report.hardened_kinds.empty()) {
    NLIDB_LOG(Warning) << "harden: no bucket met min_bucket_samples; "
                          "nothing to retrain on";
    return report;
  }

  // Augmentation: the worst buckets' mutations applied to the training
  // corpus itself (fresh streams via augment_salt). The gold spans the
  // mutation engine maintains make the mutants full training examples.
  data::Dataset augmentation;
  augmentation.tables = train.tables;
  const int copies = std::max(1, options.augment_copies);
  for (size_t k = 0; k < report.hardened_kinds.size(); ++k) {
    for (int c = 0; c < copies; ++c) {
      data::Dataset mutated = MutateDataset(
          engine, train, report.hardened_kinds[k],
          options.augment_salt + k * static_cast<uint64_t>(copies) +
              static_cast<uint64_t>(c));
      augmentation.examples.insert(
          augmentation.examples.end(),
          std::make_move_iterator(mutated.examples.begin()),
          std::make_move_iterator(mutated.examples.end()));
    }
  }

  report.hardened_pipeline = std::make_unique<core::NlidbPipeline>(
      baseline.config(), std::move(provider));
  report.hardened_pipeline->Train(train, augmentation);

  report.hardened = EvaluateUnderAttack(*report.hardened_pipeline, attack_eval);
  report.clean_hardened =
      eval::EvaluatePipeline(*report.hardened_pipeline, eval_clean);
  return report;
}

}  // namespace attack
}  // namespace nlidb
