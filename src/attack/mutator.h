#ifndef NLIDB_ATTACK_MUTATOR_H_
#define NLIDB_ATTACK_MUTATOR_H_

// Deterministic question-mutation engine (DESIGN.md "Adversarial
// robustness architecture").
//
// Each mutator takes a generated example — whose gold SQL and mention
// spans are known — and produces a perturbed copy whose spans and gold
// query stay consistent, so a mutant is simultaneously (a) adversarial
// serving traffic, (b) an evaluation record scoreable against its gold,
// and (c) a training example for the hardening loop (GoldAnnotation
// works on it unchanged).
//
// Every mutator is tagged with whether it preserves the gold answer:
// an answer-preserving mutation rewrites only the question surface
// (synonyms, dropped tokens, noise, typos), so executing the mutant's
// gold query returns exactly the original rows — the invariant
// mutator_test enforces on the seed corpus. kCounterfactualValue is the
// one non-preserving mutator: it substitutes a different cell value
// into both the question and the gold condition, changing the answer by
// design.
//
// Determinism contract: mutation draws come from per-(example, kind)
// Rng streams derived from the engine seed alone, so MutateCorpus
// yields a byte-identical mutant stream regardless of thread count,
// call order, or how many other corpora were mutated first.

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "data/example.h"

namespace nlidb {
namespace attack {

/// The composable perturbation operators.
enum class MutatorKind : int {
  kSynonymSwap = 0,     // column mention -> non-canonical synonym (P_c)
  kMorphInflect,        // column mention inflected (plural-ish toggle)
  kTokenDrop,           // underspecification: a carrier token removed
  kImplicitColumn,      // explicit column wording deleted entirely
  kCounterfactualValue, // condition value swapped for another cell value
  kFillerNoise,         // filler phrases injected around the question
  kTypoCasing,          // casing flip or adjacent-char typo in a token
  kCount,
};

inline constexpr int kNumMutators = static_cast<int>(MutatorKind::kCount);

const char* MutatorName(MutatorKind kind);

/// True when the mutator leaves the gold query (and therefore its
/// executed rows) untouched. kCounterfactualValue rewrites the gold.
bool IsAnswerPreserving(MutatorKind kind);

/// All mutator kinds in enum order (the default attack surface).
const std::vector<MutatorKind>& AllMutators();

/// One mutated example. `example` is a full deep copy: tokens, question
/// text, mention spans, and (for non-preserving mutators) the gold query
/// are all rewritten consistently. When `applied` is false the mutator
/// found nothing to perturb and `example` equals the source.
struct Mutant {
  data::Example example;
  MutatorKind kind = MutatorKind::kSynonymSwap;
  size_t source_index = 0;  // index of the source example in its corpus
  bool applied = false;
};

struct MutationConfig {
  uint64_t seed = 1;
};

class MutationEngine {
 public:
  /// Builds the synonym lexicon (column name -> mention phrases) from
  /// every in-tree domain, so kSynonymSwap works on any generated table.
  explicit MutationEngine(MutationConfig config = MutationConfig());

  /// Applies one mutator, drawing from `rng`. Pure function of
  /// (example, kind, rng state); never mutates its input.
  Mutant Mutate(const data::Example& example, MutatorKind kind,
                Rng& rng) const;

  /// Expands a corpus into len(examples) x len(kinds) mutants, ordered
  /// example-major. Each mutant draws from an Rng seeded by
  /// (engine seed, salt, kind, example index) only — the stream is
  /// byte-identical across thread counts and call sites. `salt` makes
  /// independent expansions of the same corpus (hardening copies).
  std::vector<Mutant> MutateCorpus(const data::Dataset& dataset,
                                   const std::vector<MutatorKind>& kinds,
                                   uint64_t salt = 0) const;

  const MutationConfig& config() const { return config_; }

 private:
  std::vector<std::string> SynonymsFor(const std::string& column_name) const;

  MutationConfig config_;
  std::unordered_map<std::string, std::vector<std::string>> synonyms_;
};

/// One-kind corpus transform: every example mutated with `kind`
/// (examples the mutator cannot touch are carried over unmodified, so
/// the result has the same size and tables as `dataset`). The
/// paraphrase-bench categories and the hardening augmentation both use
/// this shape.
data::Dataset MutateDataset(const MutationEngine& engine,
                            const data::Dataset& dataset, MutatorKind kind,
                            uint64_t salt = 0);

}  // namespace attack
}  // namespace nlidb

#endif  // NLIDB_ATTACK_MUTATOR_H_
