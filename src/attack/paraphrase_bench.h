#ifndef NLIDB_ATTACK_PARAPHRASE_BENCH_H_
#define NLIDB_ATTACK_PARAPHRASE_BENCH_H_

#include <string>
#include <vector>

#include "attack/mutator.h"
#include "data/generator.h"

namespace nlidb {
namespace attack {

/// A ParaphraseBench-style corpus (Utama et al. [40]): the same patients
/// domain asked in six linguistic-variation categories. The paper
/// evaluates its WikiSQL-trained model zero-shot per category
/// (Table IV(b)); the expected degradation order is
/// naive > syntactic > morphological > lexical > semantic >> missing.
///
/// The naive, syntactic and semantic categories come from the question
/// generator's styles; lexical, morphological and missing are the
/// mutation engine's synonym-swap, inflection and implicit-column
/// mutators applied to the naive corpus — the same operators the
/// adversarial soak replays, so the benchmark and the attack surface
/// cannot drift apart.
struct ParaphraseBenchCorpus {
  struct Category {
    data::QuestionStyle style = data::QuestionStyle::kNaive;
    data::Dataset dataset;
  };
  std::vector<Category> categories;
};

/// Generates all six categories; `config.num_tables` tables and
/// `config.questions_per_table` questions per category.
ParaphraseBenchCorpus GenerateParaphraseBench(
    const data::GeneratorConfig& config);

}  // namespace attack
}  // namespace nlidb

#endif  // NLIDB_ATTACK_PARAPHRASE_BENCH_H_
