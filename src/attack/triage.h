#ifndef NLIDB_ATTACK_TRIAGE_H_
#define NLIDB_ATTACK_TRIAGE_H_

// Stage-bucketed failure triage for adversarial traffic.
//
// Every (gold example, serving outcome) pair is classified into exactly
// one FailStage using the QueryResult's per-stage artifacts, and the
// buckets accumulate into a per-mutator × per-stage accuracy-under-attack
// matrix — the unit the soak driver reports, BENCH_attack.json commits,
// and the hardening loop consumes.

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/pipeline.h"
#include "data/example.h"
#include "attack/mutator.h"

namespace nlidb {
namespace attack {

/// Where a query died (or kOk when its answer survived the attack).
/// Buckets are mutually exclusive; TriageOutcome assigns exactly one.
enum class FailStage : int {
  kOk = 0,           // query match or execution match against the gold
  kMentionMiss,      // predicted condition (column, value) set is wrong
  kTranslateError,   // conditions right, select/agg decoded wrong
  kRecoveryError,    // decoder emitted an unrecoverable s^a
  kExecutionMismatch,// right conditions, executor failed on the result
  kShedDeadline,     // shed, expired, or cancelled (DeadlineExceeded)
  kRejected,         // queue-full / shutdown rejection (Unavailable)
  kOtherError,       // any other status-level failure
  kCount,
};

inline constexpr int kNumStages = static_cast<int>(FailStage::kCount);

const char* StageName(FailStage stage);

/// Buckets one outcome. `status` is what ServingEngine (or
/// pipeline.Query) returned; `result` is only consulted when it is ok.
/// The gold example must be the mutant the query was built from — its
/// query/table are the reference the prediction is scored against.
FailStage TriageOutcome(const data::Example& gold, const Status& status,
                        const core::QueryResult& result);

/// Per-mutator × per-stage outcome counts. Row kNumMutators ("clean")
/// holds unmutated baseline traffic when the caller replays any.
struct AttackMatrix {
  static constexpr int kCleanRow = kNumMutators;

  /// counts[mutator][stage]; row kCleanRow is the unmutated control.
  uint64_t counts[kNumMutators + 1][kNumStages] = {};

  void Add(MutatorKind kind, FailStage stage) {
    ++counts[static_cast<int>(kind)][static_cast<int>(stage)];
  }
  void AddClean(FailStage stage) {
    ++counts[kCleanRow][static_cast<int>(stage)];
  }

  /// Merges another matrix in (per-shard accumulation).
  void Merge(const AttackMatrix& other);

  uint64_t RowTotal(int row) const;

  /// Queries that produced an answer: everything except shed/rejected/
  /// other status-level failures, which say nothing about the models.
  uint64_t RowAnswered(int row) const;

  /// Accuracy under attack: kOk / answered for one mutator row.
  /// Returns -1 when the row has no answered queries.
  double RowAccuracy(int row) const;
  double Accuracy(MutatorKind kind) const {
    return RowAccuracy(static_cast<int>(kind));
  }

  /// The mutator row with the lowest accuracy among rows with at least
  /// `min_samples` answered queries; -1 when none qualifies. This is the
  /// bucket the hardening loop retrains on.
  int WorstRow(uint64_t min_samples = 1) const;

  /// Fixed-width table (rows = mutators + clean, columns = stages).
  std::string Render() const;

  /// Publishes every cell as `attack.<mutator>.<stage>` counters plus
  /// `attack.<mutator>.accuracy_permille` into the global registry.
  void ExportMetrics() const;
};

/// Row label for Render()/ExportMetrics: MutatorName or "clean".
const char* RowName(int row);

}  // namespace attack
}  // namespace nlidb

#endif  // NLIDB_ATTACK_TRIAGE_H_
