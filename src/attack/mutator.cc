#include "attack/mutator.h"

#include <algorithm>
#include <iterator>
#include <utility>

#include "common/logging.h"
#include "common/strings.h"
#include "data/domain.h"
#include "sql/value.h"
#include "text/tokenizer.h"

namespace nlidb {
namespace attack {

namespace {

/// Shifts a gold span after tokens [target.begin, target.end) were
/// replaced by `repl_len` tokens. Spans strictly before the replacement
/// are untouched, spans after slide by the length delta, spans
/// containing the replacement stretch, and spans inside it collapse
/// onto the replacement.
text::Span Shift(text::Span s, text::Span target, int repl_len) {
  const int delta = repl_len - target.length();
  if (s.empty()) return s;
  if (s.end <= target.begin) return s;
  if (s.begin >= target.end) return {s.begin + delta, s.end + delta};
  if (s.begin <= target.begin && s.end >= target.end) {
    return {s.begin, s.end + delta};
  }
  return {target.begin, target.begin + repl_len};
}

/// Every gold span of `ex`, for bulk shifting.
std::vector<text::Span*> AllSpans(data::Example& ex) {
  std::vector<text::Span*> spans;
  spans.push_back(&ex.select_mention);
  for (auto& m : ex.where_mentions) {
    spans.push_back(&m.column_span);
    spans.push_back(&m.value_span);
  }
  return spans;
}

/// Replaces tokens [target.begin, target.end) with `repl`, shifting all
/// gold spans and rebuilding the question text.
void Splice(data::Example& ex, text::Span target,
            const std::vector<std::string>& repl) {
  NLIDB_CHECK(target.begin >= 0 &&
              target.end <= static_cast<int>(ex.tokens.size()))
      << "splice target out of range";
  const int repl_len = static_cast<int>(repl.size());
  for (text::Span* s : AllSpans(ex)) *s = Shift(*s, target, repl_len);
  ex.tokens.erase(ex.tokens.begin() + target.begin,
                  ex.tokens.begin() + target.end);
  ex.tokens.insert(ex.tokens.begin() + target.begin, repl.begin(), repl.end());
  ex.question = Join(ex.tokens, " ");
}

std::vector<std::string> PhraseTokens(const std::string& phrase) {
  std::vector<std::string> words = SplitWhitespace(phrase);
  for (auto& w : words) w = ToLower(w);
  return words;
}

/// Same inflection the generator's morphological style applies: toggle a
/// plural-ish 's' on the last word.
std::string MorphPhrase(const std::string& phrase) {
  std::vector<std::string> words = SplitWhitespace(phrase);
  if (words.empty()) return phrase;
  std::string& last = words.back();
  if (last.size() > 3 && last.back() == 's') {
    last.pop_back();
  } else {
    last += 's';
  }
  return Join(words, " ");
}

/// An explicit column-mention site: the span plus the schema column it
/// names (select mention or an explicit WHERE mention).
struct MentionSite {
  text::Span* span;
  int column;
};

std::vector<MentionSite> ExplicitMentionSites(data::Example& ex) {
  std::vector<MentionSite> sites;
  if (ex.select_explicit && !ex.select_mention.empty()) {
    sites.push_back({&ex.select_mention, ex.query.select_column});
  }
  for (auto& m : ex.where_mentions) {
    if (m.column_explicit && !m.column_span.empty()) {
      sites.push_back({&m.column_span, m.column});
    }
  }
  return sites;
}

bool InsideAnyValueSpan(const data::Example& ex, int index) {
  for (const auto& m : ex.where_mentions) {
    if (m.value_span.Contains(index)) return true;
  }
  return false;
}

uint64_t MixSeed(uint64_t h, uint64_t v) {
  h ^= v + 0x9E3779B97F4A7C15ULL + (h << 12) + (h >> 4);
  h *= 0xBF58476D1CE4E5B9ULL;
  h ^= h >> 31;
  return h;
}

const char* const kFillerPrefixes[] = {
    "hey", "please tell me", "i would like to know", "quick question",
    "by the way"};

}  // namespace

const char* MutatorName(MutatorKind kind) {
  switch (kind) {
    case MutatorKind::kSynonymSwap:
      return "synonym_swap";
    case MutatorKind::kMorphInflect:
      return "morph_inflect";
    case MutatorKind::kTokenDrop:
      return "token_drop";
    case MutatorKind::kImplicitColumn:
      return "implicit_column";
    case MutatorKind::kCounterfactualValue:
      return "counterfactual_value";
    case MutatorKind::kFillerNoise:
      return "filler_noise";
    case MutatorKind::kTypoCasing:
      return "typo_casing";
    case MutatorKind::kCount:
      break;
  }
  return "?";
}

bool IsAnswerPreserving(MutatorKind kind) {
  // Every mutator rewrites only the question surface except the
  // counterfactual one, which rewrites the gold condition value too.
  return kind != MutatorKind::kCounterfactualValue;
}

const std::vector<MutatorKind>& AllMutators() {
  static const std::vector<MutatorKind> kAll = [] {
    std::vector<MutatorKind> all;
    for (int k = 0; k < kNumMutators; ++k) {
      all.push_back(static_cast<MutatorKind>(k));
    }
    return all;
  }();
  return kAll;
}

MutationEngine::MutationEngine(MutationConfig config)
    : config_(config) {
  auto absorb = [&](const data::DomainSpec& domain) {
    for (const auto& col : domain.columns) {
      auto& phrases = synonyms_[col.name];
      for (const auto& p : col.mention_phrases) {
        if (std::find(phrases.begin(), phrases.end(), p) == phrases.end()) {
          phrases.push_back(p);
        }
      }
    }
  };
  for (const auto& d : data::TrainDomains()) absorb(d);
  for (const auto& d : data::OvernightDomains()) absorb(d);
  absorb(data::PatientsDomain());
}

std::vector<std::string> MutationEngine::SynonymsFor(
    const std::string& column_name) const {
  auto it = synonyms_.find(column_name);
  if (it == synonyms_.end()) return {};
  return it->second;
}

Mutant MutationEngine::Mutate(const data::Example& example, MutatorKind kind,
                              Rng& rng) const {
  Mutant mutant;
  mutant.example = example;
  mutant.kind = kind;
  data::Example& ex = mutant.example;

  switch (kind) {
    case MutatorKind::kSynonymSwap: {
      if (ex.table == nullptr) break;
      std::vector<MentionSite> sites = ExplicitMentionSites(ex);
      if (sites.empty()) break;
      // Start from a random site and take the first one with an
      // alternative phrasing.
      const size_t start = rng.NextUint64(sites.size());
      for (size_t off = 0; off < sites.size(); ++off) {
        const MentionSite& site = sites[(start + off) % sites.size()];
        const std::string current = text::SpanText(ex.tokens, *site.span);
        std::vector<std::string> alts;
        for (const auto& p :
             SynonymsFor(ex.schema().column(site.column).name)) {
          if (ToLower(p) != current) alts.push_back(p);
        }
        if (alts.empty()) continue;
        const std::string& pick = alts[rng.NextUint64(alts.size())];
        Splice(ex, *site.span, PhraseTokens(pick));
        mutant.applied = true;
        break;
      }
      break;
    }

    case MutatorKind::kMorphInflect: {
      std::vector<MentionSite> sites = ExplicitMentionSites(ex);
      if (sites.empty()) break;
      const MentionSite& site = sites[rng.NextUint64(sites.size())];
      const std::string current = text::SpanText(ex.tokens, *site.span);
      Splice(ex, *site.span, PhraseTokens(MorphPhrase(current)));
      mutant.applied = true;
      break;
    }

    case MutatorKind::kTokenDrop: {
      // Underspecification: drop one carrier token — never a value token
      // and never the last token of a mention span (the gold annotation
      // must stay non-degenerate).
      std::vector<int> candidates;
      for (int i = 0; i < static_cast<int>(ex.tokens.size()); ++i) {
        if (ex.tokens[i] == "?") continue;
        if (InsideAnyValueSpan(ex, i)) continue;
        bool shrinks_to_empty = false;
        for (text::Span* s : AllSpans(ex)) {
          if (!s->empty() && s->Contains(i) && s->length() < 2) {
            shrinks_to_empty = true;
            break;
          }
        }
        if (!shrinks_to_empty) candidates.push_back(i);
      }
      if (candidates.empty()) break;
      const int drop = candidates[rng.NextUint64(candidates.size())];
      Splice(ex, text::Span{drop, drop + 1}, {});
      mutant.applied = true;
      break;
    }

    case MutatorKind::kImplicitColumn: {
      // Delete the column wording of one WHERE mention entirely
      // (challenge 3 at attack time).
      std::vector<size_t> candidates;
      for (size_t i = 0; i < ex.where_mentions.size(); ++i) {
        const auto& m = ex.where_mentions[i];
        if (m.column_explicit && !m.column_span.empty() &&
            // A column span overlapping a value span (shared template
            // wording) cannot be deleted without corrupting the value.
            !InsideAnyValueSpan(ex, m.column_span.begin)) {
          candidates.push_back(i);
        }
      }
      if (candidates.empty()) break;
      auto& m = ex.where_mentions[candidates[rng.NextUint64(candidates.size())]];
      Splice(ex, m.column_span, {});
      m.column_span = text::Span{};
      m.column_explicit = false;
      mutant.applied = true;
      break;
    }

    case MutatorKind::kCounterfactualValue: {
      // Swap one condition value for a different value from the same
      // column, in both the question and the gold query: the answer
      // changes by design.
      std::vector<size_t> candidates;
      for (size_t i = 0; i < ex.where_mentions.size(); ++i) {
        if (!ex.where_mentions[i].value_span.empty()) candidates.push_back(i);
      }
      if (candidates.empty() || ex.table == nullptr) break;
      const size_t start = rng.NextUint64(candidates.size());
      for (size_t off = 0; off < candidates.size(); ++off) {
        const size_t ci = candidates[(start + off) % candidates.size()];
        auto& mention = ex.where_mentions[ci];
        sql::Condition& cond = ex.query.conditions[ci];
        std::vector<sql::Value> alts;
        for (const sql::Value& v : ex.table->ColumnValues(cond.column)) {
          if (v == cond.value) continue;
          if (std::find(alts.begin(), alts.end(), v) == alts.end()) {
            alts.push_back(v);
          }
        }
        if (alts.empty()) continue;
        const sql::Value& pick = alts[rng.NextUint64(alts.size())];
        Splice(ex, mention.value_span, PhraseTokens(pick.ToString()));
        cond.value = pick;
        mutant.applied = true;
        break;
      }
      break;
    }

    case MutatorKind::kFillerNoise: {
      const char* prefix =
          kFillerPrefixes[rng.NextUint64(std::size(kFillerPrefixes))];
      Splice(ex, text::Span{0, 0}, PhraseTokens(prefix));
      if (rng.NextBool(0.5f)) {
        // Tail filler goes before the trailing "?" when present.
        int at = static_cast<int>(ex.tokens.size());
        if (at > 0 && ex.tokens[at - 1] == "?") --at;
        Splice(ex, text::Span{at, at}, PhraseTokens("if you can"));
      }
      mutant.applied = true;
      break;
    }

    case MutatorKind::kTypoCasing: {
      std::vector<int> candidates;
      for (int i = 0; i < static_cast<int>(ex.tokens.size()); ++i) {
        if (ex.tokens[i].size() < 3) continue;
        if (InsideAnyValueSpan(ex, i)) continue;
        candidates.push_back(i);
      }
      if (candidates.empty()) break;
      const int at = candidates[rng.NextUint64(candidates.size())];
      std::string word = ex.tokens[at];
      if (rng.NextBool(0.5f)) {
        // Casing flip: SHOUT the token.
        for (char& c : word) {
          if (c >= 'a' && c <= 'z') c = static_cast<char>(c - 'a' + 'A');
        }
        if (word == ex.tokens[at]) word += word.back();  // no letters: dup
      } else {
        // Adjacent-character transposition; degrade to a duplicated
        // character when the pair is identical.
        const size_t p = rng.NextUint64(word.size() - 1);
        if (word[p] != word[p + 1]) {
          std::swap(word[p], word[p + 1]);
        } else {
          word.insert(p, 1, word[p]);
        }
      }
      Splice(ex, text::Span{at, at + 1}, {word});
      mutant.applied = true;
      break;
    }

    case MutatorKind::kCount:
      NLIDB_CHECK(false) << "kCount is not a mutator";
      break;
  }
  return mutant;
}

std::vector<Mutant> MutationEngine::MutateCorpus(
    const data::Dataset& dataset, const std::vector<MutatorKind>& kinds,
    uint64_t salt) const {
  std::vector<Mutant> mutants;
  mutants.reserve(dataset.examples.size() * kinds.size());
  for (size_t i = 0; i < dataset.examples.size(); ++i) {
    for (MutatorKind kind : kinds) {
      uint64_t h = MixSeed(config_.seed, salt);
      h = MixSeed(h, static_cast<uint64_t>(kind) + 1);
      h = MixSeed(h, i + 1);
      Rng rng(h);
      Mutant m = Mutate(dataset.examples[i], kind, rng);
      m.source_index = i;
      mutants.push_back(std::move(m));
    }
  }
  return mutants;
}

data::Dataset MutateDataset(const MutationEngine& engine,
                            const data::Dataset& dataset, MutatorKind kind,
                            uint64_t salt) {
  data::Dataset out;
  out.tables = dataset.tables;
  std::vector<Mutant> mutants =
      engine.MutateCorpus(dataset, {kind}, salt);
  out.examples.reserve(mutants.size());
  for (auto& m : mutants) out.examples.push_back(std::move(m.example));
  return out;
}

}  // namespace attack
}  // namespace nlidb
