#include "attack/triage.h"

#include <algorithm>
#include <cstdio>

#include "common/metrics.h"
#include "common/strings.h"
#include "eval/metrics.h"

namespace nlidb {
namespace attack {

namespace {

/// Order-free comparison key for one condition: the canonical triple the
/// mention-detection stage is responsible for producing.
std::string CondKey(const sql::Condition& cond) {
  return std::to_string(cond.column) + "|" + sql::CondOpName(cond.op) + "|" +
         ToLower(cond.value.ToString());
}

bool ConditionsMatch(const sql::SelectQuery& predicted,
                     const sql::SelectQuery& gold) {
  if (predicted.conditions.size() != gold.conditions.size()) return false;
  std::vector<std::string> a, b;
  for (const auto& c : predicted.conditions) a.push_back(CondKey(c));
  for (const auto& c : gold.conditions) b.push_back(CondKey(c));
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  return a == b;
}

}  // namespace

const char* StageName(FailStage stage) {
  switch (stage) {
    case FailStage::kOk:
      return "ok";
    case FailStage::kMentionMiss:
      return "mention_miss";
    case FailStage::kTranslateError:
      return "translate_error";
    case FailStage::kRecoveryError:
      return "recovery_error";
    case FailStage::kExecutionMismatch:
      return "execution_mismatch";
    case FailStage::kShedDeadline:
      return "shed_deadline";
    case FailStage::kRejected:
      return "rejected";
    case FailStage::kOtherError:
      return "other_error";
    case FailStage::kCount:
      break;
  }
  return "?";
}

FailStage TriageOutcome(const data::Example& gold, const Status& status,
                        const core::QueryResult& result) {
  if (!status.ok()) {
    switch (status.code()) {
      case StatusCode::kDeadlineExceeded:
        return FailStage::kShedDeadline;
      case StatusCode::kUnavailable:
        return FailStage::kRejected;
      default:
        return FailStage::kOtherError;
    }
  }
  if (!result.recovery_status.ok() || !result.query.has_value()) {
    return FailStage::kRecoveryError;
  }
  const sql::SelectQuery& predicted = *result.query;
  if (eval::QueryMatch(predicted, gold.query, gold.schema())) {
    return FailStage::kOk;
  }
  if (!ConditionsMatch(predicted, gold.query)) {
    return FailStage::kMentionMiss;
  }
  if (gold.table != nullptr &&
      eval::ExecutionMatch(predicted, gold.query, *gold.table)) {
    return FailStage::kOk;
  }
  if (!result.execution_status.ok()) {
    return FailStage::kExecutionMismatch;
  }
  return FailStage::kTranslateError;
}

void AttackMatrix::Merge(const AttackMatrix& other) {
  for (int r = 0; r <= kCleanRow; ++r) {
    for (int s = 0; s < kNumStages; ++s) counts[r][s] += other.counts[r][s];
  }
}

uint64_t AttackMatrix::RowTotal(int row) const {
  uint64_t total = 0;
  for (int s = 0; s < kNumStages; ++s) total += counts[row][s];
  return total;
}

uint64_t AttackMatrix::RowAnswered(int row) const {
  uint64_t answered = 0;
  for (int s = 0; s < kNumStages; ++s) {
    const auto stage = static_cast<FailStage>(s);
    if (stage == FailStage::kShedDeadline || stage == FailStage::kRejected ||
        stage == FailStage::kOtherError) {
      continue;
    }
    answered += counts[row][s];
  }
  return answered;
}

double AttackMatrix::RowAccuracy(int row) const {
  const uint64_t answered = RowAnswered(row);
  if (answered == 0) return -1.0;
  return static_cast<double>(counts[row][static_cast<int>(FailStage::kOk)]) /
         static_cast<double>(answered);
}

int AttackMatrix::WorstRow(uint64_t min_samples) const {
  int worst = -1;
  double worst_acc = 2.0;
  for (int r = 0; r < kNumMutators; ++r) {
    if (RowAnswered(r) < min_samples) continue;
    const double acc = RowAccuracy(r);
    if (acc >= 0.0 && acc < worst_acc) {
      worst_acc = acc;
      worst = r;
    }
  }
  return worst;
}

const char* RowName(int row) {
  if (row == AttackMatrix::kCleanRow) return "clean";
  return MutatorName(static_cast<MutatorKind>(row));
}

std::string AttackMatrix::Render() const {
  std::string out;
  char line[256];
  std::snprintf(line, sizeof(line), "%-22s", "mutator");
  out += line;
  for (int s = 0; s < kNumStages; ++s) {
    std::snprintf(line, sizeof(line), " %18s",
                  StageName(static_cast<FailStage>(s)));
    out += line;
  }
  out += "   acc_attack\n";
  for (int r = 0; r <= kCleanRow; ++r) {
    if (RowTotal(r) == 0) continue;
    std::snprintf(line, sizeof(line), "%-22s", RowName(r));
    out += line;
    for (int s = 0; s < kNumStages; ++s) {
      std::snprintf(line, sizeof(line), " %18llu",
                    static_cast<unsigned long long>(counts[r][s]));
      out += line;
    }
    const double acc = RowAccuracy(r);
    if (acc < 0.0) {
      out += "          n/a\n";
    } else {
      std::snprintf(line, sizeof(line), "       %6.2f%%\n", 100.0 * acc);
      out += line;
    }
  }
  return out;
}

void AttackMatrix::ExportMetrics() const {
  auto& registry = metrics::MetricsRegistry::Global();
  for (int r = 0; r <= kCleanRow; ++r) {
    if (RowTotal(r) == 0) continue;
    const std::string prefix = std::string("attack.") + RowName(r);
    for (int s = 0; s < kNumStages; ++s) {
      if (counts[r][s] == 0) continue;
      registry
          .GetCounter(prefix + "." + StageName(static_cast<FailStage>(s)))
          .Increment(static_cast<int64_t>(counts[r][s]));
    }
    const double acc = RowAccuracy(r);
    if (acc >= 0.0) {
      registry.GetGauge(prefix + ".accuracy_permille")
          .Update(static_cast<int64_t>(1000.0 * acc));
    }
  }
}

}  // namespace attack
}  // namespace nlidb
