#ifndef NLIDB_TEXT_EMBEDDING_PROVIDER_H_
#define NLIDB_TEXT_EMBEDDING_PROVIDER_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace nlidb {
namespace text {

/// A named cluster of semantically related words ("concept_name").
struct LexiconCluster {
  std::string concept_name;
  std::vector<std::string> members;
};

/// Deterministic pre-trained-style word embeddings.
///
/// The paper initializes its models with GloVe-300 and relies on the
/// property that semantically related words are close in embedding space
/// (its "semantic distance" and the column-statistics vectors both consume
/// this). No embedding files exist offline, so this provider synthesizes
/// the same property deterministically: every word gets a unit-norm
/// hash-seeded vector, and words registered in a concept_name cluster are pulled
/// toward the cluster centroid, making synonyms/co-hyponyms close while
/// unrelated words stay near-orthogonal. Numeric tokens share a "<number>"
/// concept_name with a magnitude-bucket component so that numbers resemble each
/// other more than they resemble words.
class EmbeddingProvider {
 public:
  explicit EmbeddingProvider(int dim = 48, uint64_t seed = 0xA11CE5EEDULL);

  /// Registers `members` as belonging to `concept_name`. A word may belong to
  /// several concepts; its vector is pulled toward the mean of their
  /// centroids. Invalidates the vector cache.
  void AddCluster(const std::string& concept_name,
                  const std::vector<std::string>& members);

  /// Registers every cluster in `clusters`.
  void AddClusters(const std::vector<LexiconCluster>& clusters);

  /// The embedding of `word` (lowercased by the caller). Cached.
  const std::vector<float>& Vector(const std::string& word) const;

  /// Mean of the word vectors of `words` (empty -> zero vector).
  std::vector<float> PhraseVector(const std::vector<std::string>& words) const;

  /// Cosine similarity in [-1, 1]; 0 when either vector is zero.
  static float Cosine(const std::vector<float>& a, const std::vector<float>& b);

  /// Euclidean (L2) distance.
  static float L2Distance(const std::vector<float>& a,
                          const std::vector<float>& b);

  /// Cosine similarity between two single words.
  float WordSimilarity(const std::string& a, const std::string& b) const;

  int dim() const { return dim_; }

 private:
  std::vector<float> HashVector(const std::string& key) const;
  /// Pure function of (word, concepts, dim_, seed_): the caller snapshots
  /// the word's concept list under mu_ and computes outside the lock, so
  /// cache misses of different words do not serialize across workers.
  std::vector<float> ComputeVector(const std::string& word,
                                   std::vector<std::string> concepts) const;

  const int dim_;
  const uint64_t seed_;
  // Vector() lazily fills cache_ from const call sites, so concurrent
  // lookups (serving workers sharing one pipeline) race without a lock.
  // mu_ guards the cache map and the concept registry; the expensive
  // vector computation runs outside the critical section on a snapshot.
  // Returned references stay valid across later insertions because
  // unordered_map never moves its nodes.
  mutable Mutex mu_{"text.embedding_cache"};
  // word -> list of concepts it belongs to. Written by AddCluster
  // (setup/training time; it also clears cache_ under mu_), snapshotted
  // under mu_ by Vector() on a cache miss.
  std::unordered_map<std::string, std::vector<std::string>> word_concepts_
      NLIDB_GUARDED_BY(mu_);
  mutable std::unordered_map<std::string, std::vector<float>> cache_
      NLIDB_GUARDED_BY(mu_);
};

/// Built-in linguistic lexicon: question words, copular/aggregate phrases,
/// and domain-neutral concept_name clusters used by both the embedding provider
/// and the synthetic data generators. Value-word pools (names, cities, ...)
/// are registered separately by the data module.
const std::vector<LexiconCluster>& DefaultLexicon();

}  // namespace text
}  // namespace nlidb

#endif  // NLIDB_TEXT_EMBEDDING_PROVIDER_H_
