#ifndef NLIDB_TEXT_DEPENDENCY_H_
#define NLIDB_TEXT_DEPENDENCY_H_

#include <string>
#include <vector>

#include "text/tokenizer.h"

namespace nlidb {
namespace text {

/// Coarse part-of-speech classes used by the heuristic dependency parser.
enum class Pos { kDet, kWh, kAux, kPrep, kVerb, kNum, kPunct, kNoun };

/// Tags a single token.
Pos TagToken(const std::string& token);

/// A dependency tree over question tokens.
///
/// Mention resolution (paper Sec. IV-E) consumes only *distances* between
/// nodes ("a value is often the closest child node of the paired column"),
/// so instead of a full statistical parser — unavailable offline — this is
/// a deterministic head-finding heuristic that preserves the locality
/// structure of English questions: noun compounds chain to their head
/// noun, objects of prepositions attach to the preposition, prepositions
/// to the nearest previous content word, subjects to their following verb.
class DependencyTree {
 public:
  /// Builds a tree over `tokens`. Never fails; degenerate inputs produce a
  /// flat tree rooted at token 0.
  static DependencyTree Parse(const std::vector<std::string>& tokens);

  int size() const { return static_cast<int>(heads_.size()); }
  int root() const { return root_; }
  /// Head index of token `i`; the root's head is itself.
  int head(int i) const { return heads_[i]; }
  Pos pos(int i) const { return pos_[i]; }

  /// Number of edges on the undirected path between tokens `a` and `b`.
  int Distance(int a, int b) const;

  /// Minimum token-pair distance between two spans.
  int SpanDistance(const Span& a, const Span& b) const;

 private:
  std::vector<int> heads_;
  std::vector<Pos> pos_;
  int root_ = 0;
};

}  // namespace text
}  // namespace nlidb

#endif  // NLIDB_TEXT_DEPENDENCY_H_
