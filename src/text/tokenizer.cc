#include "text/tokenizer.h"

#include <cctype>

#include "common/logging.h"
#include "common/strings.h"

namespace nlidb {
namespace text {

std::vector<std::string> Tokenize(std::string_view question) {
  std::vector<std::string> tokens;
  std::string current;
  auto flush = [&]() {
    if (!current.empty()) {
      tokens.push_back(current);
      current.clear();
    }
  };
  for (char raw : question) {
    const char c = static_cast<char>(std::tolower(static_cast<unsigned char>(raw)));
    if (std::isalnum(static_cast<unsigned char>(c)) || c == '-' || c == '.') {
      // '.' participates in decimals; a bare trailing '.' is stripped below.
      current += c;
    } else if (c == '\'') {
      continue;  // drop apostrophes: "what's" -> "whats"
    } else if (std::isspace(static_cast<unsigned char>(c))) {
      flush();
    } else {
      flush();
      tokens.push_back(std::string(1, c));
    }
  }
  flush();
  // Strip sentence-final periods that glued onto words ("city." -> "city").
  for (auto& t : tokens) {
    while (t.size() > 1 && t.back() == '.' && !LooksNumeric(t)) {
      t.pop_back();
    }
  }
  return tokens;
}

std::string Detokenize(const std::vector<std::string>& tokens) {
  return Join(tokens, " ");
}

std::string SpanText(const std::vector<std::string>& tokens, const Span& span) {
  NLIDB_CHECK(span.begin >= 0 && span.end <= static_cast<int>(tokens.size()) &&
              span.begin <= span.end)
      << "SpanText out of range";
  std::string out;
  for (int i = span.begin; i < span.end; ++i) {
    if (i > span.begin) out += ' ';
    out += tokens[i];
  }
  return out;
}

}  // namespace text
}  // namespace nlidb
