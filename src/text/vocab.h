#ifndef NLIDB_TEXT_VOCAB_H_
#define NLIDB_TEXT_VOCAB_H_

#include <string>
#include <unordered_map>
#include <vector>

namespace nlidb {
namespace text {

/// A token <-> id mapping with reserved special tokens.
///
/// Ids 0..3 are always <pad>, <unk>, <s>, </s>. Unknown tokens map to
/// kUnk on lookup. The vocabulary is mutable until `Freeze()`; afterwards
/// unseen tokens silently map to <unk> (matching the paper's handling of
/// out-of-vocabulary tokens).
class Vocab {
 public:
  static constexpr int kPad = 0;
  static constexpr int kUnk = 1;
  static constexpr int kBos = 2;
  static constexpr int kEos = 3;

  Vocab();

  /// Adds `token` if absent (no-op when frozen) and returns its id
  /// (<unk> for unseen tokens of a frozen vocab).
  int AddToken(const std::string& token);

  /// Id lookup; returns kUnk when absent.
  int GetId(const std::string& token) const;

  /// True if the token is present.
  bool Contains(const std::string& token) const;

  /// Token for id; requires 0 <= id < size().
  const std::string& GetToken(int id) const;

  /// Converts a token sequence to ids (unknowns -> kUnk).
  std::vector<int> Encode(const std::vector<std::string>& tokens) const;

  /// Converts ids back to tokens.
  std::vector<std::string> Decode(const std::vector<int>& ids) const;

  void Freeze() { frozen_ = true; }
  bool frozen() const { return frozen_; }
  int size() const { return static_cast<int>(id_to_token_.size()); }

 private:
  std::unordered_map<std::string, int> token_to_id_;
  std::vector<std::string> id_to_token_;
  bool frozen_ = false;
};

/// Character vocabulary: fixed alphabet (a-z, 0-9, '-', '.', punctuation
/// bucket). Ids are stable across runs.
class CharVocab {
 public:
  CharVocab();

  /// Id for a character; unknown characters map to the shared punctuation
  /// bucket id.
  int GetId(char c) const;

  /// Encodes the characters of `word`.
  std::vector<int> Encode(const std::string& word) const;

  int size() const { return size_; }

 private:
  int ids_[256];
  int size_;
};

}  // namespace text
}  // namespace nlidb

#endif  // NLIDB_TEXT_VOCAB_H_
