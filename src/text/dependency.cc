#include "text/dependency.h"

#include <queue>
#include <unordered_set>

#include "common/logging.h"
#include "common/strings.h"

namespace nlidb {
namespace text {

namespace {

const std::unordered_set<std::string>& VerbLexicon() {
  static const std::unordered_set<std::string>* kVerbs =
      new std::unordered_set<std::string>{
          "directed", "direct",   "directs",   "star",     "starred",
          "starring", "won",      "win",       "wins",     "winning",
          "played",   "play",     "plays",     "live",     "lives",
          "lived",    "living",   "launched",  "launch",   "launches",
          "scheduled","elected",  "ran",       "run",      "runs",
          "running",  "sang",     "sing",      "sings",    "performed",
          "perform",  "released", "release",   "peaked",   "peak",
          "nominated","awarded",  "grossed",   "earned",   "cost",
          "costs",    "rated",    "cooked",    "cook",     "cooks",
          "contains", "contain",  "made",      "make",     "uses",
          "use",      "treated",  "treats",    "diagnosed","admitted",
          "stayed",   "stay",     "attended",  "attend",   "hosted",
          "held",     "golfs",    "golfed",    "drove",    "drives",
          "represents","represented","speak",  "speaks",   "spoken",
          "finished", "scored",   "score",     "recorded", "charted",
          "issued",   "operated", "lasted",    "located",  "priced",
          "belong",   "belongs",  "hospitalized",
      };
  return *kVerbs;
}

bool IsDeterminer(const std::string& t) {
  return t == "the" || t == "a" || t == "an" || t == "this" || t == "that" ||
         t == "these" || t == "those" || t == "their" || t == "his" ||
         t == "her" || t == "its" || t == "each" || t == "every";
}

bool IsWh(const std::string& t) {
  return t == "who" || t == "whom" || t == "whose" || t == "what" ||
         t == "which" || t == "when" || t == "where" || t == "how" ||
         t == "why" || t == "whats";
}

bool IsAux(const std::string& t) {
  return t == "did" || t == "do" || t == "does" || t == "is" || t == "are" ||
         t == "was" || t == "were" || t == "be" || t == "been" ||
         t == "has" || t == "have" || t == "had" || t == "can" ||
         t == "could" || t == "will" || t == "would";
}

bool IsPrep(const std::string& t) {
  return t == "of" || t == "in" || t == "on" || t == "at" || t == "by" ||
         t == "for" || t == "to" || t == "with" || t == "from" ||
         t == "as" || t == "during" || t == "under" || t == "over";
}

bool IsPunct(const std::string& t) {
  return t.size() == 1 && !std::isalnum(static_cast<unsigned char>(t[0]));
}

}  // namespace

Pos TagToken(const std::string& token) {
  if (IsPunct(token)) return Pos::kPunct;
  if (IsDeterminer(token)) return Pos::kDet;
  if (IsWh(token)) return Pos::kWh;
  if (IsAux(token)) return Pos::kAux;
  if (IsPrep(token)) return Pos::kPrep;
  if (LooksNumeric(token)) return Pos::kNum;
  if (VerbLexicon().count(token) > 0) return Pos::kVerb;
  return Pos::kNoun;
}

DependencyTree DependencyTree::Parse(const std::vector<std::string>& tokens) {
  DependencyTree tree;
  const int n = static_cast<int>(tokens.size());
  if (n == 0) return tree;
  tree.pos_.reserve(n);
  for (const auto& t : tokens) tree.pos_.push_back(TagToken(t));
  tree.heads_.assign(n, 0);

  // Root: first main verb, else first noun, else token 0.
  int root = -1;
  for (int i = 0; i < n && root < 0; ++i) {
    if (tree.pos_[i] == Pos::kVerb) root = i;
  }
  for (int i = 0; i < n && root < 0; ++i) {
    if (tree.pos_[i] == Pos::kNoun) root = i;
  }
  if (root < 0) root = 0;
  tree.root_ = root;
  tree.heads_[root] = root;

  auto next_of = [&](int from, Pos want) {
    for (int j = from + 1; j < n; ++j) {
      if (tree.pos_[j] == want) return j;
    }
    return -1;
  };
  auto prev_content = [&](int from) {
    for (int j = from - 1; j >= 0; --j) {
      if (tree.pos_[j] == Pos::kVerb || tree.pos_[j] == Pos::kNoun ||
          tree.pos_[j] == Pos::kNum) {
        return j;
      }
    }
    return -1;
  };

  for (int i = 0; i < n; ++i) {
    if (i == root) continue;
    const Pos p = tree.pos_[i];
    int head = root;
    switch (p) {
      case Pos::kDet: {
        const int noun = next_of(i, Pos::kNoun);
        head = noun >= 0 ? noun : root;
        break;
      }
      case Pos::kPrep: {
        const int content = prev_content(i);
        head = content >= 0 ? content : root;
        break;
      }
      case Pos::kNoun:
      case Pos::kNum: {
        // Noun compounds chain rightward to the chunk head (the last
        // noun/number of the run).
        if (i + 1 < n &&
            (tree.pos_[i + 1] == Pos::kNoun || tree.pos_[i + 1] == Pos::kNum) &&
            i + 1 != root) {
          head = i + 1;
          break;
        }
        // Chunk head: object of a preceding preposition...
        if (i > 0 && tree.pos_[i - 1] == Pos::kPrep) {
          head = i - 1;
          break;
        }
        int j = i - 1;
        while (j >= 0 && (tree.pos_[j] == Pos::kNoun || tree.pos_[j] == Pos::kNum)) {
          --j;
        }
        if (j >= 0 && tree.pos_[j] == Pos::kPrep) {
          head = j;
          break;
        }
        // ... or a subject: attach to the next verb in the clause if any.
        const int verb_after = next_of(i, Pos::kVerb);
        if (verb_after >= 0) {
          head = verb_after;
          break;
        }
        const int content = prev_content(i);
        head = (content >= 0 && content != i) ? content : root;
        break;
      }
      case Pos::kVerb:
      case Pos::kAux:
      case Pos::kWh:
      case Pos::kPunct:
        head = root;
        break;
    }
    if (head == i) head = root;
    tree.heads_[i] = head;
  }

  // Break accidental cycles (possible when heuristics point forward and
  // backward into each other): any node whose head-chain does not reach
  // the root gets re-attached to the root.
  for (int i = 0; i < n; ++i) {
    int cur = i;
    int steps = 0;
    while (cur != root && steps <= n) {
      cur = tree.heads_[cur];
      ++steps;
    }
    if (cur != root) tree.heads_[i] = root;
  }
  return tree;
}

int DependencyTree::Distance(int a, int b) const {
  NLIDB_CHECK(a >= 0 && a < size() && b >= 0 && b < size())
      << "Distance index out of range";
  if (a == b) return 0;
  // Depth of each node, then classic LCA walk over head chains.
  auto depth = [this](int x) {
    int d = 0;
    while (x != root_) {
      x = heads_[x];
      ++d;
    }
    return d;
  };
  int da = depth(a);
  int db = depth(b);
  int dist = 0;
  while (da > db) {
    a = heads_[a];
    --da;
    ++dist;
  }
  while (db > da) {
    b = heads_[b];
    --db;
    ++dist;
  }
  while (a != b) {
    a = heads_[a];
    b = heads_[b];
    dist += 2;
  }
  return dist;
}

int DependencyTree::SpanDistance(const Span& a, const Span& b) const {
  int best = 1 << 20;
  for (int i = a.begin; i < a.end; ++i) {
    for (int j = b.begin; j < b.end; ++j) {
      best = std::min(best, Distance(i, j));
    }
  }
  return best;
}

}  // namespace text
}  // namespace nlidb
