#include "text/stopwords.h"

#include <unordered_set>

namespace nlidb {
namespace text {

bool IsStopWord(const std::string& word) {
  static const std::unordered_set<std::string>* kStopWords =
      new std::unordered_set<std::string>{
          "a",     "an",    "the",   "of",    "in",    "on",    "at",
          "by",    "for",   "to",    "with",  "from",  "as",    "is",
          "are",   "was",   "were",  "be",    "been",  "did",   "do",
          "does",  "has",   "have",  "had",   "who",   "whom",  "what",
          "which", "when",  "where", "whats", "how",   "why",   "whose",
          "many",  "much",  "and",   "or",    "not",   "no",    "that",
          "more",  "less",  "fewer", "greater", "than", "over", "under",
          "this",  "these", "those", "there", "their", "they",  "it",
          "its",   "?",     ",",     ".",     "!",     "\"",    ";",
          ":",     "(",     ")",     "'",     "s",
      };
  return kStopWords->count(word) > 0;
}

}  // namespace text
}  // namespace nlidb
