#ifndef NLIDB_TEXT_STOPWORDS_H_
#define NLIDB_TEXT_STOPWORDS_H_

#include <string>

namespace nlidb {
namespace text {

/// True for function words (determiners, prepositions, auxiliaries,
/// question words, punctuation). The value detector only considers spans
/// containing no stop words (paper Sec. IV-D: a value is "a short
/// multi-word entity" free of stop words).
bool IsStopWord(const std::string& word);

}  // namespace text
}  // namespace nlidb

#endif  // NLIDB_TEXT_STOPWORDS_H_
