#include "text/distance.h"

#include <algorithm>
#include <cmath>

#include "common/workspace.h"

namespace nlidb {
namespace text {

int EditDistance(std::string_view a, std::string_view b) {
  const size_t n = a.size();
  const size_t m = b.size();
  if (n == 0) return static_cast<int>(m);
  if (m == 0) return static_cast<int>(n);
  std::vector<int> prev(m + 1), cur(m + 1);
  for (size_t j = 0; j <= m; ++j) prev[j] = static_cast<int>(j);
  for (size_t i = 1; i <= n; ++i) {
    cur[0] = static_cast<int>(i);
    for (size_t j = 1; j <= m; ++j) {
      const int sub = prev[j - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
      cur[j] = std::min({sub, prev[j] + 1, cur[j - 1] + 1});
    }
    std::swap(prev, cur);
  }
  return prev[m];
}

float EditSimilarity(std::string_view a, std::string_view b) {
  const size_t mx = std::max(a.size(), b.size());
  if (mx == 0) return 1.0f;
  return 1.0f - static_cast<float>(EditDistance(a, b)) /
                    static_cast<float>(mx);
}

float SemanticDistance(const EmbeddingProvider& provider, const std::string& a,
                       const std::string& b) {
  return EmbeddingProvider::L2Distance(provider.Vector(a), provider.Vector(b));
}

float PhraseSemanticDistance(const EmbeddingProvider& provider,
                             const std::vector<std::string>& a,
                             const std::vector<std::string>& b) {
  return EmbeddingProvider::L2Distance(provider.PhraseVector(a),
                                       provider.PhraseVector(b));
}

float PhraseCosine(const EmbeddingProvider& provider,
                   const std::vector<std::string>& a,
                   const std::vector<std::string>& b) {
  // The annotator's context-free pass evaluates this for every
  // (window, column) pair of a request, so the phrase means are staged in
  // the thread-local arena: after the first request no call allocates.
  // Accumulation order matches PhraseVector + Cosine exactly.
  Workspace& ws = Workspace::ThreadLocal();
  Workspace::Scope scope(ws);
  const int dim = provider.dim();
  float* va = ws.Floats(static_cast<size_t>(dim));
  float* vb = ws.Floats(static_cast<size_t>(dim));
  auto mean_into = [&](const std::vector<std::string>& words, float* out) {
    if (words.empty()) return;
    for (const auto& w : words) {
      const std::vector<float>& v = provider.Vector(w);
      for (int j = 0; j < dim; ++j) out[j] += v[j];
    }
    const float inv = 1.0f / static_cast<float>(words.size());
    for (int j = 0; j < dim; ++j) out[j] *= inv;
  };
  mean_into(a, va);
  mean_into(b, vb);
  float dot = 0.0f, na = 0.0f, nb = 0.0f;
  for (int j = 0; j < dim; ++j) {
    dot += va[j] * vb[j];
    na += va[j] * va[j];
    nb += vb[j] * vb[j];
  }
  if (na < 1e-12f || nb < 1e-12f) return 0.0f;
  return dot / (std::sqrt(na) * std::sqrt(nb));
}

}  // namespace text
}  // namespace nlidb
