#include "text/distance.h"

#include <algorithm>

namespace nlidb {
namespace text {

int EditDistance(std::string_view a, std::string_view b) {
  const size_t n = a.size();
  const size_t m = b.size();
  if (n == 0) return static_cast<int>(m);
  if (m == 0) return static_cast<int>(n);
  std::vector<int> prev(m + 1), cur(m + 1);
  for (size_t j = 0; j <= m; ++j) prev[j] = static_cast<int>(j);
  for (size_t i = 1; i <= n; ++i) {
    cur[0] = static_cast<int>(i);
    for (size_t j = 1; j <= m; ++j) {
      const int sub = prev[j - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
      cur[j] = std::min({sub, prev[j] + 1, cur[j - 1] + 1});
    }
    std::swap(prev, cur);
  }
  return prev[m];
}

float EditSimilarity(std::string_view a, std::string_view b) {
  const size_t mx = std::max(a.size(), b.size());
  if (mx == 0) return 1.0f;
  return 1.0f - static_cast<float>(EditDistance(a, b)) /
                    static_cast<float>(mx);
}

float SemanticDistance(const EmbeddingProvider& provider, const std::string& a,
                       const std::string& b) {
  return EmbeddingProvider::L2Distance(provider.Vector(a), provider.Vector(b));
}

float PhraseSemanticDistance(const EmbeddingProvider& provider,
                             const std::vector<std::string>& a,
                             const std::vector<std::string>& b) {
  return EmbeddingProvider::L2Distance(provider.PhraseVector(a),
                                       provider.PhraseVector(b));
}

float PhraseCosine(const EmbeddingProvider& provider,
                   const std::vector<std::string>& a,
                   const std::vector<std::string>& b) {
  return EmbeddingProvider::Cosine(provider.PhraseVector(a),
                                   provider.PhraseVector(b));
}

}  // namespace text
}  // namespace nlidb
