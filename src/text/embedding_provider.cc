#include "text/embedding_provider.h"

#include <cmath>
#include <cstdlib>

#include "common/logging.h"
#include "common/rng.h"
#include "common/strings.h"

namespace nlidb {
namespace text {

namespace {

void Normalize(std::vector<float>& v) {
  float n = 0.0f;
  for (float x : v) n += x * x;
  n = std::sqrt(n);
  if (n > 1e-8f) {
    for (float& x : v) x /= n;
  }
}

/// Buckets a numeric token by order of magnitude so "1225" and "4100" are
/// closer to each other than to "64%"-scale numbers.
std::string MagnitudeBucket(const std::string& word) {
  char* end = nullptr;
  double value = std::strtod(word.c_str(), &end);
  if (end == word.c_str()) return "<number>";
  value = std::fabs(value);
  int bucket = 0;
  while (value >= 10.0 && bucket < 9) {
    value /= 10.0;
    ++bucket;
  }
  return "<number-e" + std::to_string(bucket) + ">";
}

}  // namespace

EmbeddingProvider::EmbeddingProvider(int dim, uint64_t seed)
    : dim_(dim), seed_(seed) {
  NLIDB_CHECK(dim_ > 0) << "EmbeddingProvider dim";
}

void EmbeddingProvider::AddCluster(const std::string& concept_name,
                                   const std::vector<std::string>& members) {
  MutexLock lock(mu_);
  for (const auto& raw : members) {
    const std::string word = ToLower(raw);
    auto& concepts = word_concepts_[word];
    bool present = false;
    for (const auto& c : concepts) present = present || c == concept_name;
    if (!present) concepts.push_back(concept_name);
  }
  cache_.clear();
}

void EmbeddingProvider::AddClusters(const std::vector<LexiconCluster>& clusters) {
  for (const auto& c : clusters) AddCluster(c.concept_name, c.members);
}

std::vector<float> EmbeddingProvider::HashVector(const std::string& key) const {
  Rng rng(Fnv1aHash(key) ^ seed_);
  std::vector<float> v(dim_);
  for (float& x : v) x = rng.NextGaussian();
  Normalize(v);
  return v;
}

std::vector<float> EmbeddingProvider::ComputeVector(
    const std::string& word, std::vector<std::string> concepts) const {
  std::vector<float> base = HashVector(word);
  if (LooksNumeric(word)) {
    concepts.push_back("<number>");
    concepts.push_back(MagnitudeBucket(word));
  }
  if (concepts.empty()) return base;
  std::vector<float> centroid(dim_, 0.0f);
  for (const auto& c : concepts) {
    std::vector<float> cv = HashVector("<concept_name>:" + c);
    for (int j = 0; j < dim_; ++j) centroid[j] += cv[j];
  }
  Normalize(centroid);
  // 0.75 cluster pull / 0.25 word identity keeps cluster members at cosine
  // ~0.8+ with each other while staying distinguishable.
  std::vector<float> out(dim_);
  for (int j = 0; j < dim_; ++j) out[j] = 0.75f * centroid[j] + 0.25f * base[j];
  Normalize(out);
  return out;
}

const std::vector<float>& EmbeddingProvider::Vector(
    const std::string& word) const {
  std::vector<std::string> concepts;
  {
    MutexLock lock(mu_);
    auto it = cache_.find(word);
    if (it != cache_.end()) return it->second;
    // Miss: snapshot the word's concept list under the same lock as the
    // cache probe, so the vector we compute is consistent with the
    // registry state the miss was observed against.
    auto wc = word_concepts_.find(word);
    if (wc != word_concepts_.end()) concepts = wc->second;
  }
  // Compute outside the lock (ComputeVector is pure given the snapshot),
  // then publish. Two threads may compute the same word; the loser's
  // identical copy is discarded by try_emplace.
  std::vector<float> v = ComputeVector(word, std::move(concepts));
  MutexLock lock(mu_);
  return cache_.try_emplace(word, std::move(v)).first->second;
}

std::vector<float> EmbeddingProvider::PhraseVector(
    const std::vector<std::string>& words) const {
  std::vector<float> out(dim_, 0.0f);
  if (words.empty()) return out;
  for (const auto& w : words) {
    const auto& v = Vector(w);
    for (int j = 0; j < dim_; ++j) out[j] += v[j];
  }
  const float inv = 1.0f / static_cast<float>(words.size());
  for (float& x : out) x *= inv;
  return out;
}

float EmbeddingProvider::Cosine(const std::vector<float>& a,
                                const std::vector<float>& b) {
  NLIDB_CHECK(a.size() == b.size()) << "Cosine dim mismatch";
  float dot = 0.0f, na = 0.0f, nb = 0.0f;
  for (size_t i = 0; i < a.size(); ++i) {
    dot += a[i] * b[i];
    na += a[i] * a[i];
    nb += b[i] * b[i];
  }
  if (na < 1e-12f || nb < 1e-12f) return 0.0f;
  return dot / (std::sqrt(na) * std::sqrt(nb));
}

float EmbeddingProvider::L2Distance(const std::vector<float>& a,
                                    const std::vector<float>& b) {
  NLIDB_CHECK(a.size() == b.size()) << "L2Distance dim mismatch";
  float s = 0.0f;
  for (size_t i = 0; i < a.size(); ++i) {
    const float d = a[i] - b[i];
    s += d * d;
  }
  return std::sqrt(s);
}

float EmbeddingProvider::WordSimilarity(const std::string& a,
                                        const std::string& b) const {
  return Cosine(Vector(ToLower(a)), Vector(ToLower(b)));
}

}  // namespace text
}  // namespace nlidb
