#ifndef NLIDB_TEXT_DISTANCE_H_
#define NLIDB_TEXT_DISTANCE_H_

#include <string>
#include <string_view>
#include <vector>

#include "text/embedding_provider.h"

namespace nlidb {
namespace text {

/// Levenshtein edit distance (substitution/insertion/deletion, unit cost).
int EditDistance(std::string_view a, std::string_view b);

/// 1 - EditDistance / max(len): 1 for identical strings, 0 for disjoint.
float EditSimilarity(std::string_view a, std::string_view b);

/// Euclidean distance between single-word embeddings (the paper's
/// "semantic distance", footnote 1).
float SemanticDistance(const EmbeddingProvider& provider,
                       const std::string& a, const std::string& b);

/// Euclidean distance between phrase (mean-of-words) embeddings.
float PhraseSemanticDistance(const EmbeddingProvider& provider,
                             const std::vector<std::string>& a,
                             const std::vector<std::string>& b);

/// Cosine similarity between phrase embeddings; the context-free mention
/// matching in Sec. VII-A1 uses this alongside edit distance.
float PhraseCosine(const EmbeddingProvider& provider,
                   const std::vector<std::string>& a,
                   const std::vector<std::string>& b);

}  // namespace text
}  // namespace nlidb

#endif  // NLIDB_TEXT_DISTANCE_H_
