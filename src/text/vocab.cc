#include "text/vocab.h"

#include "common/logging.h"

namespace nlidb {
namespace text {

Vocab::Vocab() {
  for (const char* tok : {"<pad>", "<unk>", "<s>", "</s>"}) {
    token_to_id_.emplace(tok, static_cast<int>(id_to_token_.size()));
    id_to_token_.emplace_back(tok);
  }
}

int Vocab::AddToken(const std::string& token) {
  auto it = token_to_id_.find(token);
  if (it != token_to_id_.end()) return it->second;
  if (frozen_) return kUnk;
  const int id = static_cast<int>(id_to_token_.size());
  token_to_id_.emplace(token, id);
  id_to_token_.push_back(token);
  return id;
}

int Vocab::GetId(const std::string& token) const {
  auto it = token_to_id_.find(token);
  return it == token_to_id_.end() ? kUnk : it->second;
}

bool Vocab::Contains(const std::string& token) const {
  return token_to_id_.count(token) > 0;
}

const std::string& Vocab::GetToken(int id) const {
  NLIDB_CHECK(id >= 0 && id < size()) << "Vocab id out of range: " << id;
  return id_to_token_[id];
}

std::vector<int> Vocab::Encode(const std::vector<std::string>& tokens) const {
  std::vector<int> ids;
  ids.reserve(tokens.size());
  for (const auto& t : tokens) ids.push_back(GetId(t));
  return ids;
}

std::vector<std::string> Vocab::Decode(const std::vector<int>& ids) const {
  std::vector<std::string> tokens;
  tokens.reserve(ids.size());
  for (int id : ids) tokens.push_back(GetToken(id));
  return tokens;
}

CharVocab::CharVocab() {
  // id 0 reserved as the unknown/punctuation bucket.
  for (int& id : ids_) id = 0;
  int next = 1;
  for (char c = 'a'; c <= 'z'; ++c) ids_[static_cast<unsigned char>(c)] = next++;
  for (char c = '0'; c <= '9'; ++c) ids_[static_cast<unsigned char>(c)] = next++;
  ids_[static_cast<unsigned char>('-')] = next++;
  ids_[static_cast<unsigned char>('.')] = next++;
  ids_[static_cast<unsigned char>('_')] = next++;
  size_ = next;
}

int CharVocab::GetId(char c) const { return ids_[static_cast<unsigned char>(c)]; }

std::vector<int> CharVocab::Encode(const std::string& word) const {
  std::vector<int> out;
  out.reserve(word.size());
  for (char c : word) out.push_back(GetId(c));
  if (out.empty()) out.push_back(0);
  return out;
}

}  // namespace text
}  // namespace nlidb
