#ifndef NLIDB_TEXT_TOKENIZER_H_
#define NLIDB_TEXT_TOKENIZER_H_

#include <string>
#include <string_view>
#include <vector>

namespace nlidb {
namespace text {

/// Splits natural-language text into lowercase word tokens.
///
/// Punctuation characters become their own tokens (the paper's question
/// examples keep the trailing "?"), hyphens inside words are preserved
/// ("2006-07"), and apostrophes are dropped ("what's" -> "whats").
std::vector<std::string> Tokenize(std::string_view question);

/// Joins tokens back into display text with single spaces.
std::string Detokenize(const std::vector<std::string>& tokens);

/// A contiguous token span [begin, end) within a tokenized question.
struct Span {
  int begin = 0;
  int end = 0;  // exclusive

  int length() const { return end - begin; }
  bool empty() const { return end <= begin; }
  bool Contains(int index) const { return index >= begin && index < end; }
  bool Overlaps(const Span& other) const {
    return begin < other.end && other.begin < end;
  }
  friend bool operator==(const Span& a, const Span& b) {
    return a.begin == b.begin && a.end == b.end;
  }
};

/// The tokens covered by `span`, joined with spaces.
std::string SpanText(const std::vector<std::string>& tokens, const Span& span);

}  // namespace text
}  // namespace nlidb

#endif  // NLIDB_TEXT_TOKENIZER_H_
