#include "text/embedding_provider.h"

namespace nlidb {
namespace text {

/// Domain-neutral linguistic clusters. Each cluster approximates a GloVe
/// neighborhood: question words near the concepts they ask about, verbs
/// near the columns they describe (the paper's P_c / D_c metadata, Sec. II),
/// and morphological variants of the same lemma.
const std::vector<LexiconCluster>& DefaultLexicon() {
  static const std::vector<LexiconCluster>* kLexicon =
      new std::vector<LexiconCluster>{
          // --- question-word / column-concept bridges -------------------
          {"date", {"date", "when", "day", "scheduled", "dated", "dates"}},
          {"time", {"time", "start_time", "hour", "oclock", "clock"}},
          {"year", {"year", "years", "season", "seasons", "annual"}},
          {"place", {"where", "venue", "location", "place", "played", "held",
                     "site", "hosted"}},
          {"person", {"who", "whom", "person", "name"}},
          {"count", {"how", "many", "number", "total", "count"}},
          // --- film domain ----------------------------------------------
          {"film", {"film", "movie", "picture", "films", "movies",
                    "film_name", "title"}},
          {"director", {"director", "directed", "directs", "filmmaker",
                        "direction"}},
          {"actor", {"actor", "actress", "star", "starred", "starring",
                     "stars", "cast", "plays"}},
          {"nomination", {"nomination", "nominated", "award", "awarded",
                          "oscar", "prize", "nominations"}},
          {"box_office", {"box_office", "gross", "grossed", "earnings",
                          "revenue", "box", "office"}},
          // --- geography domain -----------------------------------------
          {"county", {"county", "counties", "region", "district",
                      "province"}},
          {"population", {"population", "people", "live", "lives", "living",
                          "inhabitants", "residents", "populous",
                          "density"}},
          {"city", {"city", "town", "cities", "towns", "municipality"}},
          {"area", {"area", "size", "acres", "hectares", "square"}},
          {"speakers", {"speakers", "speak", "speaking", "spoken",
                        "irish_speakers", "language"}},
          {"official_name", {"english_name", "irish_name", "named",
                             "called", "known"}},
          // --- motorsport domain ----------------------------------------
          {"race", {"race", "races", "grand", "prix", "racing",
                    "competition"}},
          {"driver", {"driver", "drivers", "drove", "driving",
                      "winning_driver"}},
          {"win", {"win", "won", "wins", "winner", "winning", "victor",
                   "victory"}},
          {"team", {"team", "teams", "constructor", "squad", "club"}},
          {"laps", {"laps", "lap", "circuits", "rounds"}},
          {"points", {"points", "point", "score", "scored", "scoring"}},
          // --- athletics / olympics -------------------------------------
          {"athlete", {"athlete", "athletes", "player", "players", "golfer",
                       "golfers", "sportsman", "competitor"}},
          {"nation", {"nation", "country", "nationality", "nations",
                      "countries", "represents", "golfs"}},
          // Medal colors get separate clusters (sharing only the generic
          // "medal(s)" word) so gold/silver/bronze stay distinguishable.
          {"gold_medal", {"gold", "medal", "medals"}},
          {"silver_medal", {"silver", "medal", "medals"}},
          {"bronze_medal", {"bronze", "medal", "medals"}},
          {"rank", {"rank", "ranking", "position", "place", "finish",
                    "standings"}},
          // --- music domain ---------------------------------------------
          {"song", {"song", "songs", "single", "track", "tracks", "tune"}},
          {"artist", {"artist", "artists", "singer", "band", "musician",
                      "performer", "performed", "sang", "sings"}},
          {"album", {"album", "albums", "record", "lp"}},
          {"label", {"label", "labels", "released", "release", "issued"}},
          {"chart", {"chart", "peak", "peaked", "peak_position",
                     "charted"}},
          // --- space domain ---------------------------------------------
          {"mission", {"mission", "missions", "flight", "flights",
                       "expedition", "launch", "launched", "launches",
                       "launch_date", "liftoff"}},
          {"crew", {"crew", "astronaut", "astronauts", "cosmonaut",
                    "commander"}},
          {"duration", {"duration", "lasted", "length", "long", "days"}},
          {"agency", {"agency", "nasa", "esa", "operator", "operated"}},
          {"outcome", {"outcome", "result", "results", "status",
                       "success", "successful", "failure"}},
          // --- politics domain ------------------------------------------
          {"candidate", {"candidate", "candidates", "nominee", "ran",
                         "running", "contender"}},
          {"party", {"party", "parties", "affiliation", "affiliated"}},
          {"votes", {"votes", "vote", "voted", "ballots", "elected",
                     "election"}},
          {"incumbent", {"incumbent", "incumbents", "sitting",
                         "officeholder"}},
          // --- basketball (transfer) ------------------------------------
          {"basketball_position", {"position", "guard", "forward", "center",
                                   "played", "plays"}},
          {"rebounds", {"rebounds", "rebound", "boards"}},
          {"toronto", {"years_in_toronto", "toronto", "tenure", "stint"}},
          // --- calendar (transfer) --------------------------------------
          {"meeting", {"meeting", "meetings", "appointment", "event",
                       "session"}},
          {"attendee", {"attendee", "attendees", "attended", "attending",
                        "invitee", "participant"}},
          // --- housing (transfer) ---------------------------------------
          {"housing", {"housing", "house", "home", "apartment", "unit",
                       "listing", "address", "property"}},
          {"price", {"price", "prices", "cost", "costs", "rent", "priced",
                     "soar", "dive", "expensive", "cheap"}},
          {"bedrooms", {"bedrooms", "bedroom", "rooms", "beds"}},
          {"neighborhood", {"neighborhood", "neighbourhood", "located",
                            "area"}},
          // --- recipes (transfer) ---------------------------------------
          {"recipe", {"recipe", "recipes", "dish", "dishes", "meal"}},
          {"ingredient", {"ingredient", "ingredients", "contains",
                          "made", "uses"}},
          {"cuisine", {"cuisine", "cuisines", "style", "cooking",
                       "culinary"}},
          {"cooking_time", {"cooking_time", "cook", "cooked", "preparation",
                            "prepare", "minutes"}},
          // --- restaurants (transfer) -----------------------------------
          {"restaurant", {"restaurant", "restaurants", "eatery", "diner",
                          "cafe", "bistro"}},
          {"rating", {"rating", "ratings", "rated", "stars", "reviews"}},
          // --- patients (ParaphraseBench) -------------------------------
          {"patient", {"patient", "patients", "admitted", "case"}},
          {"age", {"age", "old", "older", "young", "aged"}},
          {"diagnosis", {"diagnosis", "diagnosed", "disease", "condition",
                         "suffering", "illness"}},
          {"doctor", {"doctor", "physician", "treated", "treating",
                      "doctors"}},
          {"stay", {"length_of_stay", "stay", "stayed", "hospitalized",
                    "discharge"}},
          // --- books domain ---------------------------------------------
          {"book", {"book", "books", "novel", "title", "titles"}},
          {"author", {"author", "authors", "writer", "written", "wrote",
                      "authored"}},
          {"publisher", {"publisher", "published", "publishes",
                         "publishing"}},
          {"genre", {"genre", "genres", "category", "kind"}},
          {"pages", {"pages", "page", "length"}},
          // --- aviation domain ------------------------------------------
          {"airline", {"airline", "airlines", "carrier", "flown"}},
          {"destination", {"destination", "airport", "bound", "flying",
                           "arrives"}},
          {"departure", {"departure", "departure_date", "departing",
                         "leaves", "leaving", "depart"}},
          {"passengers", {"passengers", "passenger", "seats", "seat"}},
          // --- companies domain -----------------------------------------
          {"company", {"company", "companies", "firm", "firms",
                       "business"}},
          {"industry", {"industry", "industries", "sector", "sectors"}},
          {"ceo", {"ceo", "chief", "executive", "led", "run", "leads"}},
          {"revenue", {"revenue", "revenues", "sales", "turnover",
                       "earnings"}},
          {"employees", {"employees", "employee", "staff", "headcount",
                         "workforce"}},
          {"founded", {"founded", "established", "founding", "started"}},
          // --- aggregates / comparatives --------------------------------
          {"maximum", {"maximum", "most", "highest", "largest", "biggest",
                       "max", "greatest", "top"}},
          {"minimum", {"minimum", "least", "lowest", "smallest", "min",
                       "fewest", "bottom"}},
          {"average", {"average", "mean", "avg", "typical"}},
      };
  return *kLexicon;
}

}  // namespace text
}  // namespace nlidb
