#include "common/workspace.h"

#include <algorithm>
#include <cstring>

namespace nlidb {

namespace {

// Rounds a float count up so consecutive buffers stay 64-byte aligned
// (16 floats) relative to the block start; std::vector<float> data is
// 16-byte aligned at minimum, which is enough for the unaligned-load
// kernels in tensor/ — the rounding mainly prevents false sharing between
// buffers handed to different loop chunks.
size_t AlignCount(size_t n) { return (n + 15u) & ~size_t{15u}; }

}  // namespace

float* Workspace::Floats(size_t n) {
  const size_t need = AlignCount(std::max<size_t>(n, 1));
  while (active_block_ < blocks_.size()) {
    Block& b = blocks_[active_block_];
    if (b.used + need <= b.data.size()) {
      float* out = b.data.data() + b.used;
      b.used += need;
      ++live_buffers_;
      std::memset(out, 0, n * sizeof(float));
      return out;
    }
    ++active_block_;
  }
  Block fresh;
  fresh.data.resize(std::max(need, kBlockFloats));
  fresh.used = need;
  blocks_.push_back(std::move(fresh));
  active_block_ = blocks_.size() - 1;
  ++live_buffers_;
  float* out = blocks_.back().data.data();
  std::memset(out, 0, n * sizeof(float));
  return out;
}

void Workspace::Reset() {
  for (Block& b : blocks_) b.used = 0;
  active_block_ = 0;
  live_buffers_ = 0;
}

size_t Workspace::reserved() const {
  size_t total = 0;
  for (const Block& b : blocks_) total += b.data.size();
  return total;
}

Workspace::Scope::Scope(Workspace& ws)
    : ws_(&ws),
      block_(ws.active_block_),
      used_(ws.blocks_.empty() ? 0 : ws.blocks_[ws.active_block_].used),
      live_(ws.live_buffers_) {}

Workspace::Scope::~Scope() {
  // Rewind every block past the snapshot point; blocks themselves are
  // retained (same policy as Reset).
  for (size_t b = block_; b < ws_->blocks_.size(); ++b) {
    ws_->blocks_[b].used = b == block_ ? used_ : 0;
  }
  ws_->active_block_ = block_;
  ws_->live_buffers_ = live_;
}

Workspace& Workspace::ThreadLocal() {
  thread_local Workspace ws;
  return ws;
}

}  // namespace nlidb
