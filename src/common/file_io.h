#ifndef NLIDB_COMMON_FILE_IO_H_
#define NLIDB_COMMON_FILE_IO_H_

// Checked, crash-safe file writing (DESIGN.md "Fault-tolerance
// architecture"). Every persistent artifact in src/ goes through this
// layer — the raw-file-write lint rule bans std::ofstream elsewhere —
// so disk-full surfaces as a Status and a crash mid-write can never
// tear a previously-good file: content lands in "<path>.tmp", is
// fsync'd, and only then renamed over the destination.

#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"

namespace nlidb {
namespace io {

/// CRC32C (Castagnoli) of `n` bytes, chainable via `crc` for streaming.
uint32_t Crc32c(const void* data, size_t n, uint32_t crc = 0);

/// Buffered atomic file writer: Append accumulates bytes (and a running
/// CRC32C); Commit writes "<path>.tmp", fsyncs, and renames it over
/// `path`. Nothing touches `path` before Commit, so a crash or error at
/// any point leaves the previous file intact. Failpoint sites
/// "<failpoint_prefix>/commit" (fired before the write; `torn_write`
/// commits a half-truncated, unsynced file to model a torn write that
/// survived rename) and "<failpoint_prefix>/before_rename" (fired after
/// the temp file is durable; `error`/`crash` here model dying between
/// temp-write and rename, leaving only the temp file behind).
class AtomicFileWriter {
 public:
  explicit AtomicFileWriter(std::string path,
                            std::string failpoint_prefix = "io");
  ~AtomicFileWriter();  // removes the temp file if not committed

  AtomicFileWriter(const AtomicFileWriter&) = delete;
  AtomicFileWriter& operator=(const AtomicFileWriter&) = delete;

  Status Append(const void* data, size_t n);
  Status Append(std::string_view s) { return Append(s.data(), s.size()); }

  /// CRC32C / byte count of everything appended so far. Lets formats
  /// embed a footer checksum over their own header+payload.
  uint32_t crc() const { return crc_; }
  uint64_t bytes_written() const { return buffer_.size(); }

  /// Write + fsync + rename. After an error the destination is
  /// untouched (a temp file may remain when the failure was injected
  /// between write and rename, exactly as a real crash would leave it).
  Status Commit();

 private:
  std::string path_;
  std::string temp_path_;
  std::string failpoint_prefix_;
  std::string buffer_;
  uint32_t crc_ = 0;
  bool committed_ = false;
  bool keep_temp_ = false;  // injected pre-rename death: leave the temp
};

/// One-shot convenience over AtomicFileWriter.
Status WriteFileAtomic(const std::string& path, std::string_view contents,
                       const std::string& failpoint_prefix = "io");

/// Reads a whole file; IoError when it cannot be opened or read.
StatusOr<std::string> ReadFileToString(const std::string& path);

}  // namespace io
}  // namespace nlidb

#endif  // NLIDB_COMMON_FILE_IO_H_
