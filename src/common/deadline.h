#ifndef NLIDB_COMMON_DEADLINE_H_
#define NLIDB_COMMON_DEADLINE_H_

// Deadline / cancellation plumbing for the query path (DESIGN.md
// "Fault-tolerance architecture"). A CancelContext rides along a
// request and is polled at stage boundaries and inside the expensive
// inner loops (beam-search decode steps, annotator fan-outs, value-span
// scoring); an expired context surfaces as StatusCode::kDeadlineExceeded
// instead of an unbounded computation.

#include <atomic>
#include <cstdint>
#include <string>

#include "common/status.h"
#include "common/trace.h"

namespace nlidb {

/// An absolute point in the trace::NowNs() clock domain. Default: unset
/// (never expires). Value type, freely copyable.
class Deadline {
 public:
  Deadline() = default;

  static Deadline AfterNanos(uint64_t ns) {
    Deadline d;
    d.at_ns_ = trace::NowNs() + ns;
    return d;
  }
  static Deadline AfterMillis(uint64_t ms) {
    return AfterNanos(ms * 1000000ull);
  }

  bool has_deadline() const { return at_ns_ != 0; }
  bool Expired() const { return has_deadline() && trace::NowNs() >= at_ns_; }
  uint64_t at_ns() const { return at_ns_; }

 private:
  uint64_t at_ns_ = 0;  // 0 = unset
};

/// Why work should stop: a deadline, an external cancel flag, or both.
/// Polling is cheap (one clock read + one relaxed load), so loops check
/// once per iteration rather than batching.
struct CancelContext {
  Deadline deadline;
  /// Optional external cancellation; the owner flips it from any thread.
  const std::atomic<bool>* cancel = nullptr;

  bool Expired() const {
    if (cancel != nullptr && cancel->load(std::memory_order_relaxed)) {
      return true;
    }
    return deadline.Expired();
  }

  /// Ok, or DeadlineExceeded naming the place work was abandoned.
  Status Check(const char* where) const {
    if (!Expired()) return Status::Ok();
    return Status::DeadlineExceeded(std::string("deadline exceeded at ") +
                                    where);
  }
};

/// Null-tolerant Check for the common optional-context parameter.
inline Status CheckCancel(const CancelContext* ctx, const char* where) {
  return ctx == nullptr ? Status::Ok() : ctx->Check(where);
}

/// Null-tolerant Expired.
inline bool CancelExpired(const CancelContext* ctx) {
  return ctx != nullptr && ctx->Expired();
}

}  // namespace nlidb

#endif  // NLIDB_COMMON_DEADLINE_H_
