#include "common/logging.h"

namespace nlidb {

namespace {
LogLevel g_level = LogLevel::kInfo;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
    case LogLevel::kFatal:
      return "F";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) { g_level = level; }
LogLevel GetLogLevel() { return g_level; }

namespace internal_logging {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  stream_ << "[" << LevelName(level) << " " << file << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  stream_ << "\n";
  std::cerr << stream_.str();
  if (level_ == LogLevel::kFatal) {
    std::abort();
  }
}

}  // namespace internal_logging
}  // namespace nlidb
