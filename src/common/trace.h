#ifndef NLIDB_COMMON_TRACE_H_
#define NLIDB_COMMON_TRACE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace nlidb {
namespace trace {

/// Monotonic wall clock in nanoseconds, relative to process start.
///
/// This is the single sanctioned timing source for library code: the
/// raw-timing lint rule forbids std::chrono clocks everywhere outside
/// trace.cc and bench/, so stage timing, histograms and benches that
/// live in src/ all read time through here. Relative-to-epoch keeps the
/// values small enough to subtract without overflow concerns.
uint64_t NowNs();

/// One finished span, as delivered to a `TraceSink`.
///
/// Spans form a tree per request: `parent_id` is the span that was
/// current on the emitting thread (or installed via `ScopedParent` for
/// pool workers) when the span was opened, and 0 means root. Ids are
/// process-unique and monotonically increasing, so sorting by id
/// recovers creation order.
struct SpanRecord {
  std::string name;         // stage name, e.g. "pipeline.annotate"
  uint64_t start_ns = 0;    // NowNs() at construction
  uint64_t duration_ns = 0; // NowNs() delta at destruction
  int span_id = 0;
  int parent_id = 0;        // 0 = root
  int thread_id = 0;        // dense per-thread id (see metrics.h)
  std::vector<std::pair<std::string, std::string>> annotations;
};

/// Receives finished spans. Implementations must be thread-safe:
/// `OnSpanEnd` is called concurrently from pool workers.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void OnSpanEnd(const SpanRecord& record) = 0;
};

/// True when a sink is installed. One relaxed atomic load; this is the
/// entire cost of a disabled `TraceSpan`.
bool Enabled();

/// Installs (or, with nullptr, removes) the process-wide sink. The
/// previous sink is returned so tests can restore it. Spans already in
/// flight when the sink is swapped are delivered to whichever sink is
/// current when they close.
std::shared_ptr<TraceSink> SetSink(std::shared_ptr<TraceSink> sink);

/// The currently installed sink (may be null).
std::shared_ptr<TraceSink> CurrentSink();

/// Reads NLIDB_TRACE once and installs the matching sink if the
/// variable is set and no sink is installed yet: "stderr" installs a
/// `StderrSummarySink`, anything else is treated as a JSON-lines file
/// path. Called lazily from the first `TraceSpan`; safe to call
/// directly (e.g. from tool main()s that want tracing before the first
/// span).
void InitFromEnv();

/// The id of the span currently open on this thread (0 if none).
/// Captured before a ThreadPool fan-out and re-installed on workers via
/// `ScopedParent` so worker spans parent under the enqueuing span.
int CurrentSpanId();

/// RAII: makes `parent_id` the current parent on this thread for the
/// scope's lifetime. Used by ThreadPool::RunJob to stitch worker spans
/// into the enqueuing request's tree.
class ScopedParent {
 public:
  explicit ScopedParent(int parent_id);
  ~ScopedParent();
  ScopedParent(const ScopedParent&) = delete;
  ScopedParent& operator=(const ScopedParent&) = delete;

 private:
  int saved_;
};

/// RAII span. Construction opens the span (when tracing is enabled) and
/// makes it the current parent on this thread; destruction closes it,
/// restores the previous parent, and delivers the record to the sink.
///
/// Disabled cost: one relaxed atomic load in the constructor, one
/// branch in the destructor — cheap enough to leave in hot loops.
class TraceSpan {
 public:
  /// `name` must outlive the span (string literals in practice).
  explicit TraceSpan(const char* name);
  ~TraceSpan();
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// Attaches a key/value pair to the span (no-op when disabled).
  void Annotate(const char* key, std::string value);
  void Annotate(const char* key, int64_t value);

  /// True when this span is live (tracing was enabled at construction).
  bool active() const { return active_; }

 private:
  bool active_;
  const char* name_ = nullptr;
  uint64_t start_ns_ = 0;
  int span_id_ = 0;
  int parent_id_ = 0;
  std::vector<std::pair<std::string, std::string>> annotations_;
};

/// Appends one JSON object per finished span to a file. Thread-safe;
/// flushed and closed on destruction.
class JsonLinesSink : public TraceSink {
 public:
  explicit JsonLinesSink(const std::string& path);
  ~JsonLinesSink() override;
  void OnSpanEnd(const SpanRecord& record) override;

  /// False if the file could not be opened (records are then dropped).
  bool ok() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Aggregates per-name count/total-ns and prints a table to stderr when
/// destroyed (i.e. at process exit for the env-installed sink).
class StderrSummarySink : public TraceSink {
 public:
  StderrSummarySink();
  ~StderrSummarySink() override;
  void OnSpanEnd(const SpanRecord& record) override;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Buffers records in memory for tests.
class InMemorySink : public TraceSink {
 public:
  InMemorySink();
  ~InMemorySink() override;
  void OnSpanEnd(const SpanRecord& record) override;

  /// Snapshot of all records received so far, in completion order.
  std::vector<SpanRecord> Records() const;
  void Clear();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace trace
}  // namespace nlidb

#endif  // NLIDB_COMMON_TRACE_H_
