#ifndef NLIDB_COMMON_MUTEX_H_
#define NLIDB_COMMON_MUTEX_H_

#include <condition_variable>
#include <mutex>

#include "common/thread_annotations.h"

namespace nlidb {

/// An annotated wrapper over std::mutex.
///
/// Clang's thread-safety analysis (common/thread_annotations.h) only
/// tracks lock types that carry capability attributes; std::mutex does
/// not, so locking it through std::lock_guard is invisible to the
/// analyzer. All mutable shared state in the library locks through this
/// wrapper instead, which makes `NLIDB_GUARDED_BY(mu_)` declarations
/// compiler-enforced under the NLIDB_ANALYZE preset.
///
/// The std-style lowercase lock()/unlock() aliases make Mutex satisfy
/// BasicLockable, so `CondVar` (std::condition_variable_any underneath)
/// can wait on it directly.
class NLIDB_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() NLIDB_ACQUIRE() { mu_.lock(); }
  void Unlock() NLIDB_RELEASE() { mu_.unlock(); }
  bool TryLock() NLIDB_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  /// BasicLockable aliases for std::condition_variable_any::wait.
  void lock() NLIDB_ACQUIRE() { mu_.lock(); }
  void unlock() NLIDB_RELEASE() { mu_.unlock(); }

 private:
  // The wrapped lock IS the capability; there is no guarded state here.
  std::mutex mu_;  // nlidb-lint: disable(mutex-unguarded)
};

/// RAII lock for `Mutex`, the annotated equivalent of std::lock_guard.
class NLIDB_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) NLIDB_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() NLIDB_RELEASE() { mu_.Unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable paired with `Mutex`.
///
/// std::condition_variable_any releases/reacquires the mutex inside
/// Wait, which the (intra-procedural) analysis cannot see; the
/// NLIDB_EXCLUSIVE_LOCKS_REQUIRED contract on Wait encodes the part it
/// can check: callers must already hold the lock.
class CondVar {
 public:
  /// Blocks until notified (spurious wakeups possible — callers loop on
  /// their condition, which keeps guarded reads visible to the
  /// analysis). `mu` must be held.
  void Wait(Mutex& mu) NLIDB_EXCLUSIVE_LOCKS_REQUIRED(mu) { cv_.wait(mu); }

  /// Blocks until notified and `pred()` holds. `mu` must be held.
  template <typename Pred>
  void Wait(Mutex& mu, Pred pred) NLIDB_EXCLUSIVE_LOCKS_REQUIRED(mu) {
    cv_.wait(mu, pred);
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

}  // namespace nlidb

#endif  // NLIDB_COMMON_MUTEX_H_
