#ifndef NLIDB_COMMON_MUTEX_H_
#define NLIDB_COMMON_MUTEX_H_

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "common/lockdep.h"
#include "common/thread_annotations.h"

namespace nlidb {

/// An annotated, optionally instrumented wrapper over std::mutex.
///
/// Clang's thread-safety analysis (common/thread_annotations.h) only
/// tracks lock types that carry capability attributes; std::mutex does
/// not, so locking it through std::lock_guard is invisible to the
/// analyzer. All mutable shared state in the library locks through this
/// wrapper instead, which makes `NLIDB_GUARDED_BY(mu_)` declarations
/// compiler-enforced under the NLIDB_ANALYZE preset.
///
/// The wrapper is also the hook point for the lock-discipline analyzer
/// (common/lockdep.h): construct with a name —
///
///   Mutex mu_{"serving.queue"};
///
/// — and under NLIDB_DEADLOCK=on every acquisition feeds the global
/// lock-order graph (ABBA detection) and per-name contention metrics.
/// When the detector is off, each operation pays exactly one relaxed
/// atomic load over the plain std::mutex call. Name every long-lived
/// mutex; unnamed ones collapse into one shared "<unnamed>" lock class,
/// which weakens cycle detection and pools their metrics.
///
/// The std-style lowercase lock()/unlock() aliases make Mutex satisfy
/// BasicLockable, so `CondVar` (std::condition_variable_any underneath)
/// can wait on it directly — and because those aliases are instrumented
/// too, the detector's held-lock sets stay correct across the
/// release/reacquire inside a condition wait.
class NLIDB_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  /// Registers this mutex under `name` (its lock class — instances
  /// sharing a name share ordering history) at the declaration site.
  explicit Mutex(const char* name, const char* file = __builtin_FILE(),
                 int line = __builtin_LINE())
      : name_(name), file_(file), line_(line) {}
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() NLIDB_ACQUIRE() {
    if (lockdep::Enabled()) {
      lockdep::internal::LockSlow(this);
      return;
    }
    mu_.lock();
  }

  void Unlock() NLIDB_RELEASE() {
    if (lockdep::Enabled()) {
      lockdep::internal::UnlockSlow(this);
      return;
    }
    mu_.unlock();
  }

  bool TryLock() NLIDB_TRY_ACQUIRE(true) {
    const bool acquired = mu_.try_lock();
    if (acquired && lockdep::Enabled()) {
      lockdep::internal::OnTryLockAcquired(this);
    }
    return acquired;
  }

  /// BasicLockable aliases for std::condition_variable_any::wait.
  void lock() NLIDB_ACQUIRE() { Lock(); }
  void unlock() NLIDB_RELEASE() { Unlock(); }

  /// The registered lock-class name ("<unnamed>" when default-built).
  const char* name() const { return name_ != nullptr ? name_ : "<unnamed>"; }

 private:
  friend struct lockdep::internal::MutexAccess;

  // The wrapped lock IS the capability; there is no guarded state here.
  std::mutex mu_;  // nlidb-lint: disable(mutex-unguarded)
  const char* name_ = nullptr;
  const char* file_ = nullptr;
  int line_ = 0;
};

/// RAII lock for `Mutex`, the annotated equivalent of std::lock_guard.
class NLIDB_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) NLIDB_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() NLIDB_RELEASE() { mu_.Unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Reverse RAII: releases an already-held `Mutex` for the enclosing
/// scope and reacquires it on exit. The structured replacement for
/// naked Unlock()/Lock() pairs around a compute section that must not
/// run under the lock (the naked-lock lint rule bans the raw pairs):
///
///   MutexLock lock(mu_);
///   ...
///   {
///     MutexUnlock unlock(mu_);
///     ExpensiveComputeWithoutLock();
///   }
///   // mu_ held again; guarded state re-readable.
class NLIDB_SCOPED_CAPABILITY MutexUnlock {
 public:
  explicit MutexUnlock(Mutex& mu) NLIDB_RELEASE(mu) : mu_(mu) { mu_.Unlock(); }
  ~MutexUnlock() NLIDB_ACQUIRE() { mu_.Lock(); }
  MutexUnlock(const MutexUnlock&) = delete;
  MutexUnlock& operator=(const MutexUnlock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable paired with `Mutex`.
///
/// std::condition_variable_any releases/reacquires the mutex inside
/// Wait, which the (intra-procedural) analysis cannot see; the
/// NLIDB_EXCLUSIVE_LOCKS_REQUIRED contract on Wait encodes the part it
/// can check: callers must already hold the lock.
///
/// Under the lock-discipline analyzer, Wait carries a stuck-wait
/// watchdog (lockdep::WatchdogTimeoutMs, default 30s): a wait that
/// exceeds the timeout files an informational report — a lost notify
/// shows up in CI logs instead of as a silent ctest timeout — and then
/// behaves exactly like a spurious wakeup, which is indistinguishable
/// to correctly-written callers (they loop on their condition).
class CondVar {
 public:
  /// Blocks until notified (spurious wakeups possible — callers loop on
  /// their condition, which keeps guarded reads visible to the
  /// analysis). `mu` must be held.
  void Wait(Mutex& mu) NLIDB_EXCLUSIVE_LOCKS_REQUIRED(mu) {
    if (lockdep::Enabled()) {
      WaitWithWatchdog(mu);
      return;
    }
    cv_.wait(mu);
  }

  /// Blocks until notified and `pred()` holds. `mu` must be held.
  template <typename Pred>
  void Wait(Mutex& mu, Pred pred) NLIDB_EXCLUSIVE_LOCKS_REQUIRED(mu) {
    if (lockdep::Enabled()) {
      while (!pred()) WaitWithWatchdog(mu);
      return;
    }
    cv_.wait(mu, pred);
  }

  /// Wait for a consumer parked until work arrives — an idle state
  /// where "no notify for minutes" is legitimate (a worker pool with an
  /// empty queue), so the stuck-wait watchdog does not apply. The
  /// lockdep held-set still stays balanced: condition_variable_any
  /// releases/reacquires through the instrumented lock()/unlock()
  /// aliases. Use Wait for waits bounded by in-flight work, where a
  /// watchdog hit means a lost notify.
  void WaitIdle(Mutex& mu) NLIDB_EXCLUSIVE_LOCKS_REQUIRED(mu) {
    cv_.wait(mu);
  }

  /// Predicate form of WaitIdle. `mu` must be held.
  template <typename Pred>
  void WaitIdle(Mutex& mu, Pred pred) NLIDB_EXCLUSIVE_LOCKS_REQUIRED(mu) {
    cv_.wait(mu, pred);
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  /// One bounded wait round. A watchdog timeout reports and returns —
  /// equivalent to a spurious wakeup from the caller's point of view.
  void WaitWithWatchdog(Mutex& mu) NLIDB_EXCLUSIVE_LOCKS_REQUIRED(mu) {
    const int timeout_ms = lockdep::WatchdogTimeoutMs();
    if (timeout_ms <= 0) {
      cv_.wait(mu);
      return;
    }
    if (cv_.wait_for(mu, std::chrono::milliseconds(timeout_ms)) ==
        std::cv_status::timeout) {
      lockdep::internal::ReportStuckWait(mu.name(), timeout_ms);
    }
  }

  std::condition_variable_any cv_;
};

}  // namespace nlidb

#endif  // NLIDB_COMMON_MUTEX_H_
