#ifndef NLIDB_COMMON_RNG_H_
#define NLIDB_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace nlidb {

/// Deterministic pseudo-random number generator (splitmix64 + xoshiro256**).
///
/// Every stochastic component in the library (weight init, data generation,
/// dropout, sampling) draws from an explicitly seeded `Rng` so that all
/// experiments are bit-for-bit reproducible across runs.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  Rng(const Rng&) = default;
  Rng& operator=(const Rng&) = default;

  /// Next raw 64-bit value.
  uint64_t NextUint64();

  /// Uniform integer in [0, bound). `bound` must be > 0.
  uint64_t NextUint64(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int NextInt(int lo, int hi);

  /// Uniform float in [0, 1).
  float NextFloat();

  /// Uniform float in [lo, hi).
  float NextFloat(float lo, float hi);

  /// Standard normal via Box-Muller.
  float NextGaussian();

  /// Bernoulli draw with probability `p` of true.
  bool NextBool(float p = 0.5f);

  /// Picks an index in [0, weights.size()) proportionally to `weights`.
  /// All weights must be >= 0 with a positive sum.
  size_t NextWeighted(const std::vector<float>& weights);

  /// Fisher-Yates shuffles `items` in place.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    if (items.empty()) return;
    for (size_t i = items.size() - 1; i > 0; --i) {
      size_t j = NextUint64(i + 1);
      std::swap(items[i], items[j]);
    }
  }

  /// Returns a reference to an element chosen uniformly at random.
  template <typename T>
  const T& Choice(const std::vector<T>& items) {
    return items[NextUint64(items.size())];
  }

 private:
  uint64_t s_[4];
  bool has_spare_gaussian_ = false;
  float spare_gaussian_ = 0.0f;
};

}  // namespace nlidb

#endif  // NLIDB_COMMON_RNG_H_
