#include "common/failpoint.h"

#include <chrono>
#include <cstdlib>
#include <map>
#include <mutex>
#include <thread>

#include "common/logging.h"
#include "common/metrics.h"
#include "common/mutex.h"
#include "common/strings.h"
#include "common/thread_annotations.h"

namespace nlidb {
namespace failpoint {

namespace internal {
std::atomic<int> g_active{0};
}  // namespace internal

namespace {

// Leaked (like the trace sink state) so failpoints fired from atexit
// hooks or static destructors never touch a destroyed registry.
struct Registry {
  Mutex mu{"failpoint.registry"};
  std::map<std::string, Action> sites NLIDB_GUARDED_BY(mu);
  bool random_delay NLIDB_GUARDED_BY(mu) = false;
  uint64_t random_seed NLIDB_GUARDED_BY(mu) = 0;
  std::map<std::string, uint64_t> hits NLIDB_GUARDED_BY(mu);
};

Registry& GetRegistry() {
  static Registry* registry = new Registry();
  return *registry;
}

// The count of activation sources (explicit sites + random-delay mode),
// kept in sync with the registry under its mutex.
void PublishActive(int n) {
  internal::g_active.store(n, std::memory_order_relaxed);
}

int ActiveCount(const Registry& r) NLIDB_EXCLUSIVE_LOCKS_REQUIRED(r.mu) {
  return static_cast<int>(r.sites.size()) + (r.random_delay ? 1 : 0);
}

StatusOr<Action> ParseSpec(const std::string& spec) {
  Action action;
  if (spec == "error") {
    action.kind = ActionKind::kError;
  } else if (spec == "torn_write") {
    action.kind = ActionKind::kTornWrite;
  } else if (spec == "crash") {
    action.kind = ActionKind::kCrash;
  } else if (StartsWith(spec, "delay:")) {
    action.kind = ActionKind::kDelay;
    action.delay_ms = std::atoi(spec.c_str() + 6);
    if (action.delay_ms < 0) {
      return Status::InvalidArgument("negative failpoint delay: " + spec);
    }
  } else {
    return Status::InvalidArgument("unknown failpoint action: " + spec);
  }
  return action;
}

void SleepMs(int ms) {
  if (ms > 0) std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

// splitmix64: decorrelates (seed, site, hit) into a uniform draw.
uint64_t Mix(uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

}  // namespace

Action Fire(const char* site) {
  if (!AnyActive()) return Action{};
  Registry& r = GetRegistry();
  Action action;
  {
    MutexLock lock(r.mu);
    auto it = r.sites.find(site);
    if (it != r.sites.end()) {
      action = it->second;
    } else if (r.random_delay) {
      const uint64_t hit = r.hits[site]++;
      const uint64_t h = Mix(r.random_seed ^ Mix(Fnv1aHash(site) + hit));
      if (h % 8 == 0) {
        action.kind = ActionKind::kDelay;
        action.delay_ms = static_cast<int>((h >> 8) % 3);
      }
    }
  }
  if (action.kind == ActionKind::kNone) return action;
  metrics::MetricsRegistry::Global().GetCounter("failpoint.fired").Increment();
  metrics::MetricsRegistry::Global()
      .GetCounter(std::string("failpoint.") + site)
      .Increment();
  if (action.kind == ActionKind::kDelay) SleepMs(action.delay_ms);
  return action;
}

namespace internal {

Status Evaluate(const char* site) {
  const Action action = Fire(site);
  switch (action.kind) {
    case ActionKind::kNone:
    case ActionKind::kDelay:  // Fire already slept
      return Status::Ok();
    case ActionKind::kError:
    case ActionKind::kTornWrite:
      return Status::IoError(std::string("injected failpoint error at ") +
                             site);
    case ActionKind::kCrash:
      NLIDB_LOG(Error) << "failpoint crash at " << site;
      std::_Exit(134);  // hard death: no destructors, no atexit flush
  }
  return Status::Ok();
}

}  // namespace internal

Status Activate(const std::string& site, const std::string& spec) {
  StatusOr<Action> action = ParseSpec(spec);
  if (!action.ok()) return action.status();
  Registry& r = GetRegistry();
  MutexLock lock(r.mu);
  r.sites[site] = *action;
  PublishActive(ActiveCount(r));
  return Status::Ok();
}

void ActivateRandomDelay(uint64_t seed) {
  Registry& r = GetRegistry();
  MutexLock lock(r.mu);
  r.random_delay = true;
  r.random_seed = seed;
  r.hits.clear();
  PublishActive(ActiveCount(r));
}

bool RandomDelayActive() {
  Registry& r = GetRegistry();
  MutexLock lock(r.mu);
  return r.random_delay;
}

void Deactivate(const std::string& site) {
  Registry& r = GetRegistry();
  MutexLock lock(r.mu);
  r.sites.erase(site);
  PublishActive(ActiveCount(r));
}

void DeactivateAll() {
  Registry& r = GetRegistry();
  MutexLock lock(r.mu);
  r.sites.clear();
  r.random_delay = false;
  r.hits.clear();
  PublishActive(0);
}

void InitFromEnv() {
  static std::once_flag once;
  std::call_once(once, [] {
    const char* env = std::getenv("NLIDB_FAILPOINTS");
    if (env == nullptr || env[0] == '\0') return;
    for (const std::string& token : Split(env, ',')) {
      const std::string t = Strip(token);
      if (t.empty()) continue;
      if (StartsWith(t, "random-delay:")) {
        Registry& r = GetRegistry();
        MutexLock lock(r.mu);
        r.random_delay = true;
        r.random_seed = std::strtoull(t.c_str() + 13, nullptr, 10);
        PublishActive(ActiveCount(r));
        NLIDB_LOG(Info) << "failpoint random-delay schedule, seed "
                        << r.random_seed;
        continue;
      }
      const size_t eq = t.find('=');
      if (eq == std::string::npos) {
        NLIDB_LOG(Warning) << "NLIDB_FAILPOINTS: ignoring token '" << t << "'";
        continue;
      }
      Status s = Activate(t.substr(0, eq), t.substr(eq + 1));
      if (!s.ok()) {
        NLIDB_LOG(Warning) << "NLIDB_FAILPOINTS: " << s.ToString();
      } else {
        NLIDB_LOG(Info) << "failpoint active: " << t;
      }
    }
  });
}

}  // namespace failpoint
}  // namespace nlidb
