#ifndef NLIDB_COMMON_THREAD_ANNOTATIONS_H_
#define NLIDB_COMMON_THREAD_ANNOTATIONS_H_

// Clang thread-safety-analysis attribute macros (DESIGN.md "Static
// contract architecture").
//
// Concurrency invariants that PR 1/PR 2 could only check at runtime
// (sanitizers must hit the bad interleaving) are declared here so the
// compiler proves them on every build:
//
//   class Queue {
//     Mutex mu_;
//     std::deque<int> items_ NLIDB_GUARDED_BY(mu_);
//     void PopLocked() NLIDB_EXCLUSIVE_LOCKS_REQUIRED(mu_);
//   };
//
// Under clang with -Wthread-safety (the NLIDB_ANALYZE=ON preset, which
// also adds -Werror) an access to `items_` without holding `mu_` is a
// compile error. On every other compiler the macros expand to nothing,
// so the annotations are pure documentation with zero cost.
//
// The attributes only fire for lock types that are themselves annotated;
// std::mutex is not, which is why the pool code locks through the
// annotated `nlidb::Mutex` / `nlidb::MutexLock` wrappers in
// common/mutex.h rather than std::lock_guard<std::mutex>.

#if defined(__clang__) && !defined(SWIG)
#define NLIDB_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define NLIDB_THREAD_ANNOTATION_(x)  // no-op outside clang
#endif

/// Declares a type as a lockable capability, e.g.
/// `class NLIDB_CAPABILITY("mutex") Mutex`.
#define NLIDB_CAPABILITY(x) NLIDB_THREAD_ANNOTATION_(capability(x))

/// Declares an RAII type that acquires a capability in its constructor
/// and releases it in its destructor (e.g. `MutexLock`).
#define NLIDB_SCOPED_CAPABILITY NLIDB_THREAD_ANNOTATION_(scoped_lockable)

/// Data member is protected by the given capability: reads require the
/// lock held (shared or exclusive), writes require it exclusive.
#define NLIDB_GUARDED_BY(x) NLIDB_THREAD_ANNOTATION_(guarded_by(x))

/// Pointer member whose *pointee* is protected by the given capability.
#define NLIDB_PT_GUARDED_BY(x) NLIDB_THREAD_ANNOTATION_(pt_guarded_by(x))

/// Function requires the listed capabilities held exclusively on entry
/// (and does not release them).
#define NLIDB_EXCLUSIVE_LOCKS_REQUIRED(...) \
  NLIDB_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))

/// Function requires the listed capabilities held at least shared.
#define NLIDB_SHARED_LOCKS_REQUIRED(...) \
  NLIDB_THREAD_ANNOTATION_(requires_shared_capability(__VA_ARGS__))

/// Function acquires the capability and holds it on return.
#define NLIDB_ACQUIRE(...) \
  NLIDB_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))

/// Function releases a held capability.
#define NLIDB_RELEASE(...) \
  NLIDB_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))

/// Function attempts to acquire the capability; the first argument is
/// the return value that signals success.
#define NLIDB_TRY_ACQUIRE(...) \
  NLIDB_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))

/// Caller must NOT hold the listed capabilities (deadlock prevention for
/// functions that acquire them internally).
#define NLIDB_LOCKS_EXCLUDED(...) \
  NLIDB_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

/// Function returns a reference to the given capability (lock accessors).
#define NLIDB_RETURN_CAPABILITY(x) \
  NLIDB_THREAD_ANNOTATION_(lock_returned(x))

/// Escape hatch: disables analysis for one function. Every use must
/// carry a comment explaining which invariant makes it safe.
#define NLIDB_NO_THREAD_SAFETY_ANALYSIS \
  NLIDB_THREAD_ANNOTATION_(no_thread_safety_analysis)

#endif  // NLIDB_COMMON_THREAD_ANNOTATIONS_H_
