#ifndef NLIDB_COMMON_METRICS_H_
#define NLIDB_COMMON_METRICS_H_

#include <atomic>
#include <cstdint>
#include <string>

namespace nlidb {
namespace metrics {

/// Dense 0-based id for the calling thread, assigned on first use in
/// arrival order. Used to shard counters and to stamp trace records;
/// ids are never reused within a process.
int DenseThreadId();

/// A process-lifetime counter sharded across cache lines so concurrent
/// increments from pool workers do not bounce a single line. All
/// operations use relaxed atomics: the counter conveys magnitude, not
/// ordering, and relaxed keeps it TSan-clean with zero fences on the
/// hot path.
class Counter {
 public:
  static constexpr int kShards = 8;

  void Increment(int64_t n = 1) {
    shards_[DenseThreadId() & (kShards - 1)].value.fetch_add(
        n, std::memory_order_relaxed);
  }

  /// Sum over shards. Concurrent increments may or may not be included;
  /// quiesce writers for an exact read.
  int64_t Value() const;

  void Reset();

 private:
  struct alignas(64) Shard {
    std::atomic<int64_t> value{0};
  };
  Shard shards_[kShards];
};

/// Tracks the maximum value ever reported (e.g. peak queue depth).
class MaxGauge {
 public:
  void Update(int64_t value);
  int64_t Value() const { return max_.load(std::memory_order_relaxed); }
  void Reset() { max_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> max_{0};
};

/// Fixed-bucket latency histogram over nanosecond durations.
///
/// Bucket b counts samples in [1µs·2^(b-1), 1µs·2^b); bucket 0 is
/// everything under 1µs and the last bucket catches the tail. Power-of-
/// two bounds make the bucket index a bit scan, and the fixed layout
/// means recording is wait-free: one relaxed fetch_add per sample plus
/// sum/count bookkeeping.
class Histogram {
 public:
  static constexpr int kNumBuckets = 24;  // 1µs .. ~4.2s, plus tail

  void Record(uint64_t ns);

  int64_t Count() const { return count_.load(std::memory_order_relaxed); }
  int64_t SumNs() const { return sum_ns_.load(std::memory_order_relaxed); }
  int64_t BucketCount(int b) const {
    return buckets_[b].load(std::memory_order_relaxed);
  }

  /// Exclusive upper bound of bucket `b` in ns (UINT64_MAX for the tail).
  static uint64_t BucketUpperBoundNs(int b);

  /// Linear interpolation within the bucket holding the p-quantile
  /// (p in [0,1]). Returns 0 on an empty histogram. Approximate by
  /// construction; adequate for dashboards and tests.
  uint64_t ApproxPercentileNs(double p) const;

  void Reset();

 private:
  std::atomic<int64_t> buckets_[kNumBuckets] = {};
  std::atomic<int64_t> count_{0};
  std::atomic<int64_t> sum_ns_{0};
};

/// Process-wide registry mapping dotted names ("gemm.dispatch.avx2") to
/// counters, gauges and histograms. Returned references are stable for
/// the process lifetime (instruments are never erased), so hot paths
/// cache them in function-local statics:
///
///   static Counter& c = MetricsRegistry::Global().GetCounter("x.y");
///   c.Increment();
class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  /// Finds or creates the named instrument. Same name → same instance.
  Counter& GetCounter(const std::string& name);
  MaxGauge& GetGauge(const std::string& name);
  Histogram& GetHistogram(const std::string& name);

  /// Human-readable dump of every instrument, sorted by name; skips
  /// zero-valued instruments unless `include_zero`.
  std::string RenderText(bool include_zero = false) const;

  /// Zeroes every registered instrument (bench/test isolation; the
  /// instruments themselves stay registered and references stay valid).
  void ResetAll();

 private:
  MetricsRegistry();
  ~MetricsRegistry() = delete;  // process-lifetime singleton
  struct Impl;
  Impl* impl_;
};

}  // namespace metrics
}  // namespace nlidb

#endif  // NLIDB_COMMON_METRICS_H_
