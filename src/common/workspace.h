#ifndef NLIDB_COMMON_WORKSPACE_H_
#define NLIDB_COMMON_WORKSPACE_H_

#include <cstddef>
#include <vector>

namespace nlidb {

/// A reusable bump arena for forward-pass float temporaries.
///
/// Inference code that needs short-lived staging buffers (stacked batch
/// inputs, score rows, influence profiles) acquires them with `Floats(n)`
/// and releases everything at once with `Reset()` at the start of the next
/// request. Blocks are retained across Reset, so after a warmup request
/// the arena serves every subsequent request without touching the
/// allocator. Alignment is 64 bytes (one cache line / one AVX-512 lane)
/// so arena buffers are as kernel-friendly as heap ones.
///
/// Thread-compatible, not thread-safe: a Workspace is owned by exactly
/// one thread and carries no lock — `ThreadLocal()` hands each thread
/// its own arena (pool workers each get their own, so kernel fan-outs
/// never contend). That single-owner contract is what PR 2's TSan runs
/// verify dynamically; statically it is encoded by this class having no
/// Mutex (the mutex-unguarded lint rule fires on any lock added here
/// without NLIDB_GUARDED_BY state) and by every cross-thread entry point
/// going through ThreadLocal().
class Workspace {
 public:
  Workspace() = default;
  Workspace(const Workspace&) = delete;
  Workspace& operator=(const Workspace&) = delete;

  /// A zero-initialized scratch buffer of `n` floats, valid until Reset()
  /// or the destruction of an enclosing Scope. Discarding the result
  /// leaks the reservation until Reset, so it is a compile error.
  [[nodiscard]] float* Floats(size_t n);

  /// RAII rewind point: buffers acquired inside the scope are released
  /// when it ends, buffers acquired before it stay live. Lets leaf
  /// helpers use the arena without coordinating a global Reset.
  /// Like the arena itself, a Scope is pinned to the constructing thread.
  class [[nodiscard]] Scope {
   public:
    explicit Scope(Workspace& ws);
    ~Scope();
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    Workspace* ws_;
    size_t block_;
    size_t used_;
    int live_;
  };

  /// Releases every buffer handed out since the last Reset. Capacity is
  /// retained: the high-water block set is kept for reuse.
  void Reset();

  /// Total floats currently reserved across all blocks (monotone under
  /// Reset; grows only when a request exceeds the high-water mark).
  size_t reserved() const;

  /// Buffers handed out since the last Reset.
  int live_buffers() const { return live_buffers_; }

  /// The calling thread's arena.
  static Workspace& ThreadLocal();

 private:
  // Each block is a single allocation serving many bump-allocated
  // buffers; a request larger than the default block gets its own block.
  static constexpr size_t kBlockFloats = 1 << 16;  // 256 KiB per block
  struct Block {
    std::vector<float> data;
    size_t used = 0;
  };
  std::vector<Block> blocks_;
  size_t active_block_ = 0;
  int live_buffers_ = 0;
};

}  // namespace nlidb

#endif  // NLIDB_COMMON_WORKSPACE_H_
