#ifndef NLIDB_COMMON_STRINGS_H_
#define NLIDB_COMMON_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace nlidb {

/// Splits `text` on `sep`, dropping empty pieces when `keep_empty` is false.
std::vector<std::string> Split(std::string_view text, char sep,
                               bool keep_empty = false);

/// Splits on runs of ASCII whitespace.
std::vector<std::string> SplitWhitespace(std::string_view text);

/// Joins `pieces` with `sep` between consecutive elements.
std::string Join(const std::vector<std::string>& pieces,
                 std::string_view sep);

/// Removes leading and trailing ASCII whitespace.
std::string Strip(std::string_view text);

/// ASCII lowercase copy.
std::string ToLower(std::string_view text);

/// True if `text` starts with / ends with `prefix` / `suffix`.
bool StartsWith(std::string_view text, std::string_view prefix);
bool EndsWith(std::string_view text, std::string_view suffix);

/// True if every character is an ASCII digit (and text is non-empty),
/// optionally after a leading '-' and allowing one '.'.
bool LooksNumeric(std::string_view text);

/// Removes one trailing '\r' in place, if present. Line-oriented loaders
/// call this after every getline so files saved on Windows (CRLF line
/// endings) parse identically to Unix ones.
void StripTrailingCr(std::string* line);

/// Replaces every occurrence of `from` in `text` with `to`.
std::string ReplaceAll(std::string_view text, std::string_view from,
                       std::string_view to);

/// 64-bit FNV-1a hash, the stable string hash used by the deterministic
/// embedding provider and hash-bucketed vocabularies.
uint64_t Fnv1aHash(std::string_view text);

}  // namespace nlidb

#endif  // NLIDB_COMMON_STRINGS_H_
