#include "common/rng.h"

#include <cmath>

namespace nlidb {

namespace {

uint64_t SplitMix64(uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(sm);
}

uint64_t Rng::NextUint64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextUint64(uint64_t bound) {
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = -bound % bound;
  for (;;) {
    uint64_t r = NextUint64();
    if (r >= threshold) return r % bound;
  }
}

int Rng::NextInt(int lo, int hi) {
  return lo + static_cast<int>(NextUint64(static_cast<uint64_t>(hi - lo) + 1));
}

float Rng::NextFloat() {
  return static_cast<float>(NextUint64() >> 40) * (1.0f / 16777216.0f);
}

float Rng::NextFloat(float lo, float hi) { return lo + (hi - lo) * NextFloat(); }

float Rng::NextGaussian() {
  if (has_spare_gaussian_) {
    has_spare_gaussian_ = false;
    return spare_gaussian_;
  }
  float u1 = 0.0f;
  do {
    u1 = NextFloat();
  } while (u1 <= 1e-12f);
  float u2 = NextFloat();
  float mag = std::sqrt(-2.0f * std::log(u1));
  float two_pi_u2 = 6.28318530717958647692f * u2;
  spare_gaussian_ = mag * std::sin(two_pi_u2);
  has_spare_gaussian_ = true;
  return mag * std::cos(two_pi_u2);
}

bool Rng::NextBool(float p) { return NextFloat() < p; }

size_t Rng::NextWeighted(const std::vector<float>& weights) {
  float total = 0.0f;
  for (float w : weights) total += w;
  float r = NextFloat() * total;
  float acc = 0.0f;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (r < acc) return i;
  }
  return weights.size() - 1;
}

}  // namespace nlidb
