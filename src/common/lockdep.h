#ifndef NLIDB_COMMON_LOCKDEP_H_
#define NLIDB_COMMON_LOCKDEP_H_

// Lock-discipline analyzer (DESIGN.md "Lock-discipline architecture").
//
// TSan only catches lock-order bugs on interleavings a run actually
// exercises; a lock-order *cycle* that never times out in tests can
// still hang a worker pool in production. This module detects those
// cycles from a single benign execution, lockdep-style:
//
//  - Every `nlidb::Mutex` belongs to a *lock class*, keyed by the name
//    registered at its declaration (`Mutex mu_{"serving.queue"};`).
//    Instances sharing a name share ordering history, so one ThreadPool
//    teaches the detector about every ThreadPool.
//  - Each thread keeps its held-lock set. Acquiring class B while
//    holding class A folds the edge A -> B into a process-global
//    lock-order graph; the first edge that closes a cycle is reported
//    immediately with BOTH acquisition stacks (the recorded stack that
//    established the opposite order, and the stack of the inverting
//    acquisition) — even if the timing never actually deadlocks.
//  - `CondVar::Wait` carries a stuck-wait watchdog: a wait that exceeds
//    the configured timeout is reported (once per mutex name) and then
//    resumes waiting, so a lost-notify hang surfaces in CI logs instead
//    of as a silent ctest timeout.
//  - Per-class held-time / wait-time histograms and a contention
//    counter go into the MetricsRegistry (`mutex.<name>.held_ns`,
//    `mutex.<name>.wait_ns`, `mutex.<name>.contended`), so serving
//    dashboards show which lock is hot.
//
// Cost contract: with the detector off (the default), `Mutex::Lock`
// pays exactly one relaxed atomic load before the underlying lock —
// the same discipline as trace::Enabled() and failpoint::AnyActive().
// Detection never changes results: it only observes acquisitions, so
// every bitwise gate (golden traces, serving equivalence) holds with
// the detector enabled.
//
// Activation: NLIDB_DEADLOCK=on|1 (or =fatal to abort the process on
// the first order inversion — the CI setting, so a cycle fails the
// job), read once at process start; -DNLIDB_DEADLOCK=ON flips the
// compiled-in default. `SetEnabled()` toggles programmatically for
// tests — only at quiescent points (no instrumented lock held), or the
// held-set bookkeeping goes stale. NLIDB_DEADLOCK_REPORT=<path> dumps
// `RenderReports()` at exit when any report fired (the CI artifact).
// NLIDB_CONDVAR_WATCHDOG_MS tunes the watchdog (default 30000; 0
// disables).
//
// Known blind spots (standard for name-keyed lockdep): edges between
// two instances of the SAME class are not recorded (a per-instance
// A1 -> A2 vs A2 -> A1 inversion is invisible), and unnamed mutexes
// all share one "<unnamed>" class — name every long-lived mutex.

#include <atomic>
#include <string>
#include <vector>

namespace nlidb {

class Mutex;

namespace lockdep {

/// One detector finding. Order inversions carry both stacks; stuck
/// waits carry the waiting mutex and the exceeded timeout.
struct Report {
  enum class Kind { kOrderInversion, kStuckWait };
  Kind kind = Kind::kOrderInversion;

  /// The class held while the inverting acquisition happened (order
  /// inversions), or the class the stuck CondVar waits on.
  std::string first_mutex;
  /// The class whose acquisition closed the cycle (order inversions).
  std::string second_mutex;
  /// Where `first_mutex` was acquired while `second_mutex` was held —
  /// the previously recorded opposite order (order inversions only).
  std::string first_stack;
  /// The acquisition that closed the cycle (order inversions), or the
  /// stuck Wait call (stuck waits).
  std::string second_stack;
  /// The full cycle, rendered "a -> b -> a" (order inversions only).
  std::string cycle;
  /// Human-readable one-line summary.
  std::string message;
};

namespace internal {

/// 0 = off, 1 = on, 2 = fatal (abort on the first order inversion).
/// Relaxed loads only; written at process start / by SetEnabled.
extern std::atomic<int> g_mode;

/// Grants lockdep.cc access to the wrapped std::mutex and identity of
/// a `Mutex` without widening the public surface.
struct MutexAccess;

/// Slow paths behind the Enabled() check in Mutex::Lock/Unlock/TryLock.
/// They perform the underlying lock operation themselves (so the fast
/// path stays a single branch) plus held-set, graph and metrics
/// bookkeeping. Re-entrant calls (metrics registry locks taken while a
/// hook runs) degrade to the plain operation via a thread-local guard.
void LockSlow(Mutex* mu);
void UnlockSlow(Mutex* mu);
void OnTryLockAcquired(Mutex* mu);

/// Records a stuck-wait report (deduplicated per mutex name) and
/// increments lockdep.stuck_waits. Called by CondVar's watchdog.
void ReportStuckWait(const char* mutex_name, int waited_ms);

}  // namespace internal

/// True when the detector is active. One relaxed atomic load — this is
/// the entire disabled-path cost inside Mutex::Lock.
inline bool Enabled() {
  return internal::g_mode.load(std::memory_order_relaxed) != 0;
}

/// True in fatal mode: an order inversion aborts the process after
/// printing the report (stuck waits never abort — an idle worker
/// legitimately waits forever).
bool FatalReports();

/// Programmatic toggle for tests. Call only while the calling thread
/// holds no instrumented lock; flipping mid-acquisition leaves stale
/// held-set entries behind.
void SetEnabled(bool on);

/// Watchdog timeout for CondVar waits, in milliseconds; <= 0 disables
/// the watchdog. Defaults to NLIDB_CONDVAR_WATCHDOG_MS or 30000.
int WatchdogTimeoutMs();
void SetWatchdogTimeoutMs(int ms);

/// Snapshot of every report fired so far, in detection order.
std::vector<Report> Reports();

/// Drops accumulated reports and per-name dedup state (test isolation).
/// The lock-order graph itself is retained: recorded orderings stay
/// true for the process lifetime.
void ClearReports();

/// Also forgets the lock-order graph and class registry (the metrics
/// instruments stay registered). For tests that seed deliberate
/// inversions and must not poison later no-false-positive assertions.
void ResetGraphForTest();

/// All reports rendered as a human-readable block (the
/// NLIDB_DEADLOCK_REPORT artifact format). Empty string when clean.
std::string RenderReports();

}  // namespace lockdep
}  // namespace nlidb

#endif  // NLIDB_COMMON_LOCKDEP_H_
