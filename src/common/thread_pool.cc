#include "common/thread_pool.h"

#include <atomic>
#include <cstdlib>
#include <memory>

#include "common/logging.h"
#include "common/metrics.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "common/trace.h"

namespace nlidb {

namespace {

// Set while a thread is executing pool jobs; nested ParallelFor calls on
// such a thread must run inline instead of enqueueing (see header).
thread_local bool tls_in_pool_worker = false;

}  // namespace

struct ThreadPool::LoopState {
  Mutex mu{"pool.loop"};
  CondVar done_cv;
  int remaining NLIDB_GUARDED_BY(mu) = 0;
  // One slot per chunk, written by the chunk that failed and read by the
  // calling thread after `remaining` hits zero.
  std::vector<std::exception_ptr> errors NLIDB_GUARDED_BY(mu);
};

ThreadPool::ThreadPool(int parallelism) {
  const int workers = std::max(parallelism, 1) - 1;
  workers_.reserve(workers);
  for (int i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    shutdown_ = true;
  }
  work_cv_.NotifyAll();
  for (auto& t : workers_) t.join();
}

void ThreadPool::WorkerLoop() {
  tls_in_pool_worker = true;
  for (;;) {
    Job job;
    {
      MutexLock lock(mu_);
      // WaitIdle: an empty queue is a legitimate steady state, not a
      // lost notify — the stuck-wait watchdog must not report it.
      while (!shutdown_ && queue_.empty()) work_cv_.WaitIdle(mu_);
      if (queue_.empty()) return;  // shutdown with drained queue
      job = queue_.front();
      queue_.pop_front();
    }
    RunJob(job);
  }
}

void ThreadPool::RunJob(const Job& job) {
  // Mark the thread as executing pool work for the duration of the body
  // (also for the calling thread running chunk 0), so nested ParallelFor
  // calls go inline.
  const bool was_worker = tls_in_pool_worker;
  tls_in_pool_worker = true;
  std::exception_ptr error;
  try {
    // Spans the body opens parent under the span that was current on the
    // enqueuing thread, keeping the per-request trace tree connected
    // across the fan-out.
    trace::ScopedParent trace_parent(job.trace_parent);
    (*job.body)(job.begin, job.end);
  } catch (...) {
    error = std::current_exception();
  }
  tls_in_pool_worker = was_worker;
  MutexLock lock(job.loop->mu);
  if (error) job.loop->errors[job.chunk] = error;
  if (--job.loop->remaining == 0) job.loop->done_cv.NotifyAll();
}

void ThreadPool::ParallelFor(int begin, int end,
                             const std::function<void(int, int)>& body) {
  static metrics::Counter& parallel_fors =
      metrics::MetricsRegistry::Global().GetCounter(
          "thread_pool.parallel_fors");
  static metrics::Counter& inline_runs =
      metrics::MetricsRegistry::Global().GetCounter(
          "thread_pool.inline_runs");
  static metrics::Counter& jobs_enqueued =
      metrics::MetricsRegistry::Global().GetCounter(
          "thread_pool.jobs_enqueued");
  static metrics::MaxGauge& queue_depth_peak =
      metrics::MetricsRegistry::Global().GetGauge(
          "thread_pool.queue_depth_peak");

  const int len = end - begin;
  if (len <= 0) return;
  const int chunks = std::min(parallelism(), len);
  if (chunks <= 1 || tls_in_pool_worker) {
    inline_runs.Increment();
    body(begin, end);
    return;
  }

  parallel_fors.Increment();
  jobs_enqueued.Increment(chunks - 1);
  const int trace_parent = trace::CurrentSpanId();
  LoopState loop;
  {
    // The loop state is not shared until the jobs are enqueued below,
    // but initializing under the lock keeps the guarded_by contract
    // unconditional.
    MutexLock lock(loop.mu);
    loop.remaining = chunks;
    loop.errors.resize(chunks);
  }
  {
    MutexLock lock(mu_);
    NLIDB_CHECK(!shutdown_) << "ParallelFor on a shut-down pool";
    // Chunk 0 runs on the calling thread below; enqueue the rest.
    for (int c = 1; c < chunks; ++c) {
      const int cb = begin + static_cast<int>(
                                 static_cast<long long>(len) * c / chunks);
      const int ce = begin + static_cast<int>(
                                 static_cast<long long>(len) * (c + 1) / chunks);
      queue_.push_back(Job{&body, cb, ce, c, &loop, trace_parent});
    }
    queue_depth_peak.Update(static_cast<int64_t>(queue_.size()));
  }
  work_cv_.NotifyAll();

  const int ce0 =
      begin + static_cast<int>(static_cast<long long>(len) / chunks);
  RunJob(Job{&body, begin, ce0, 0, &loop, trace_parent});

  MutexLock lock(loop.mu);
  while (loop.remaining != 0) loop.done_cv.Wait(loop.mu);
  // Deterministic error selection: lowest chunk index wins. Rethrowing
  // under the lock is fine; MutexLock releases during unwind.
  for (auto& e : loop.errors) {
    if (e) std::rethrow_exception(e);
  }
}

Status ThreadPool::ParallelFor(int begin, int end,
                               const std::function<void(int, int)>& body,
                               const CancelContext& ctx) {
  std::atomic<bool> skipped{false};
  const std::function<void(int, int)> guarded = [&](int b, int e) {
    if (ctx.Expired()) {
      skipped.store(true, std::memory_order_relaxed);
      return;
    }
    body(b, e);
  };
  ParallelFor(begin, end, guarded);
  if (skipped.load(std::memory_order_relaxed)) {
    return Status::DeadlineExceeded("deadline exceeded in ParallelFor");
  }
  return Status::Ok();
}

bool ThreadPool::InWorker() { return tls_in_pool_worker; }

int ThreadPool::DefaultParallelism() {
  if (const char* env = std::getenv("NLIDB_NUM_THREADS")) {
    const int n = std::atoi(env);
    if (n >= 1) return n;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw >= 1 ? static_cast<int>(hw) : 1;
}

namespace {
Mutex global_pool_mu{"pool.global"};
std::unique_ptr<ThreadPool> global_pool NLIDB_GUARDED_BY(global_pool_mu);
}  // namespace

ThreadPool& ThreadPool::Global() {
  MutexLock lock(global_pool_mu);
  if (!global_pool) {
    global_pool = std::make_unique<ThreadPool>(DefaultParallelism());
  }
  return *global_pool;
}

void ThreadPool::SetGlobalParallelism(int parallelism) {
  const int p = std::max(parallelism, 1);
  MutexLock lock(global_pool_mu);
  if (global_pool && global_pool->parallelism() == p) return;
  global_pool = std::make_unique<ThreadPool>(p);
}

}  // namespace nlidb
