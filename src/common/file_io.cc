#include "common/file_io.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <utility>

#include "common/failpoint.h"
#include "common/logging.h"
#include "common/metrics.h"

namespace nlidb {
namespace io {

namespace {

metrics::Counter& AtomicWrites() {
  static metrics::Counter& c =
      metrics::MetricsRegistry::Global().GetCounter("io.atomic_writes");
  return c;
}

metrics::Counter& AtomicWriteFailures() {
  static metrics::Counter& c =
      metrics::MetricsRegistry::Global().GetCounter("io.atomic_write_failures");
  return c;
}

std::string Errno() { return std::strerror(errno); }

// Best-effort directory durability: the rename itself is only durable
// once the parent directory entry is synced. Failure here (e.g. a
// filesystem that refuses O_DIRECTORY fsync) degrades durability, not
// correctness, so it is not surfaced as an error.
void FsyncParentDir(const std::string& path) {
  const std::string dir = std::filesystem::path(path).parent_path().string();
  const int fd = ::open(dir.empty() ? "." : dir.c_str(), O_RDONLY);
  if (fd < 0) return;
  ::fsync(fd);
  ::close(fd);
}

}  // namespace

uint32_t Crc32c(const void* data, size_t n, uint32_t crc) {
  // Software CRC32C (Castagnoli, reflected polynomial 0x82F63B78), the
  // same function hardware SSE4.2 crc32 instructions compute.
  static const uint32_t* table = [] {
    static uint32_t t[256];
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? (0x82F63B78u ^ (c >> 1)) : (c >> 1);
      }
      t[i] = c;
    }
    return t;
  }();
  const unsigned char* p = static_cast<const unsigned char*>(data);
  crc = ~crc;
  for (size_t i = 0; i < n; ++i) {
    crc = table[(crc ^ p[i]) & 0xFF] ^ (crc >> 8);
  }
  return ~crc;
}

AtomicFileWriter::AtomicFileWriter(std::string path,
                                   std::string failpoint_prefix)
    : path_(std::move(path)),
      temp_path_(path_ + ".tmp"),
      failpoint_prefix_(std::move(failpoint_prefix)) {
  failpoint::InitFromEnv();
}

AtomicFileWriter::~AtomicFileWriter() {
  if (!committed_ && !keep_temp_) std::remove(temp_path_.c_str());
}

Status AtomicFileWriter::Append(const void* data, size_t n) {
  if (committed_) {
    return Status::FailedPrecondition("Append after Commit: " + path_);
  }
  crc_ = Crc32c(data, n, crc_);
  buffer_.append(static_cast<const char*>(data), n);
  return Status::Ok();
}

Status AtomicFileWriter::Commit() {
  if (committed_) {
    return Status::FailedPrecondition("Commit called twice: " + path_);
  }
  bool torn = false;
  {
    const failpoint::Action a =
        failpoint::Fire((failpoint_prefix_ + "/commit").c_str());
    switch (a.kind) {
      case failpoint::ActionKind::kError:
        AtomicWriteFailures().Increment();
        return Status::IoError("injected failpoint error at " +
                               failpoint_prefix_ + "/commit");
      case failpoint::ActionKind::kCrash:
        NLIDB_LOG(Error) << "failpoint crash at " << failpoint_prefix_
                         << "/commit";
        std::_Exit(134);
      case failpoint::ActionKind::kTornWrite:
        torn = true;
        break;
      default:
        break;
    }
  }
  // A torn write models a crash after rename but before the data blocks
  // hit disk: half the payload, no fsync, rename proceeds. Readers must
  // catch it by checksum, never by trusting the file's presence.
  std::string_view payload(buffer_);
  if (torn) payload = payload.substr(0, payload.size() / 2);

  const int fd = ::open(temp_path_.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    AtomicWriteFailures().Increment();
    return Status::IoError("cannot open for write (" + Errno() +
                           "): " + temp_path_);
  }
  size_t off = 0;
  while (off < payload.size()) {
    const ssize_t n = ::write(fd, payload.data() + off, payload.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      const std::string err = Errno();
      ::close(fd);
      std::remove(temp_path_.c_str());
      AtomicWriteFailures().Increment();
      return Status::IoError("write failed (" + err + "): " + temp_path_);
    }
    off += static_cast<size_t>(n);
  }
  if (!torn && ::fsync(fd) != 0) {
    const std::string err = Errno();
    ::close(fd);
    std::remove(temp_path_.c_str());
    AtomicWriteFailures().Increment();
    return Status::IoError("fsync failed (" + err + "): " + temp_path_);
  }
  if (::close(fd) != 0) {
    std::remove(temp_path_.c_str());
    AtomicWriteFailures().Increment();
    return Status::IoError("close failed (" + Errno() + "): " + temp_path_);
  }
  {
    const failpoint::Action a =
        failpoint::Fire((failpoint_prefix_ + "/before_rename").c_str());
    switch (a.kind) {
      case failpoint::ActionKind::kError:
      case failpoint::ActionKind::kTornWrite:
        // Modeled death between temp-write and rename: the durable temp
        // file stays behind, the destination is untouched.
        keep_temp_ = true;
        AtomicWriteFailures().Increment();
        return Status::IoError("injected failpoint error at " +
                               failpoint_prefix_ + "/before_rename");
      case failpoint::ActionKind::kCrash:
        NLIDB_LOG(Error) << "failpoint crash at " << failpoint_prefix_
                         << "/before_rename";
        std::_Exit(134);
      default:
        break;
    }
  }
  if (std::rename(temp_path_.c_str(), path_.c_str()) != 0) {
    const std::string err = Errno();
    std::remove(temp_path_.c_str());
    AtomicWriteFailures().Increment();
    return Status::IoError("rename failed (" + err + "): " + path_);
  }
  committed_ = true;
  FsyncParentDir(path_);
  AtomicWrites().Increment();
  return Status::Ok();
}

Status WriteFileAtomic(const std::string& path, std::string_view contents,
                       const std::string& failpoint_prefix) {
  AtomicFileWriter writer(path, failpoint_prefix);
  NLIDB_RETURN_IF_ERROR(writer.Append(contents));
  return writer.Commit();
}

StatusOr<std::string> ReadFileToString(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open for read: " + path);
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  if (in.bad()) return Status::IoError("read failed: " + path);
  return contents;
}

}  // namespace io
}  // namespace nlidb
