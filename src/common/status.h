#ifndef NLIDB_COMMON_STATUS_H_
#define NLIDB_COMMON_STATUS_H_

#include <cstdlib>
#include <optional>
#include <ostream>
#include <string>
#include <utility>

namespace nlidb {

/// Error categories used across the library. Mirrors the small set of
/// conditions a database-facing library actually distinguishes.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kInternal,
  kUnimplemented,
  kIoError,
  kParseError,
  kDeadlineExceeded,
  kUnavailable,
};

/// Returns a stable human-readable name for `code` (e.g. "InvalidArgument").
const char* StatusCodeName(StatusCode code);

/// A lightweight success-or-error result, modeled after absl::Status.
///
/// The library does not throw exceptions across public API boundaries;
/// fallible operations return `Status` or `StatusOr<T>`.
///
/// The class-level [[nodiscard]] makes silently dropping a returned
/// Status a compile error under -Werror: every call site must propagate
/// it (NLIDB_RETURN_IF_ERROR), branch on it, or log it. Intentionally
/// fire-and-forget calls spell that out by assigning to a named
/// variable and passing it to `Status::IgnoreError()`.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  /// Explicitly discards `status`. The only sanctioned way to drop a
  /// Status on the floor; exists so the rare intentional cases are
  /// greppable instead of invisible.
  static void IgnoreError(const Status& status) { (void)status; }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

/// A value of type T or an error Status. Minimal StatusOr: access to
/// `value()` on an error status aborts (programming error), matching the
/// crash-on-misuse convention of absl::StatusOr.
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  /// Implicit conversions from both T and Status keep call sites terse,
  /// mirroring absl::StatusOr.
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT
  StatusOr(Status status) : status_(std::move(status)) {}  // NOLINT

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    CheckOk();
    return *value_;
  }
  T& value() & {
    CheckOk();
    return *value_;
  }
  T&& value() && {
    CheckOk();
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  void CheckOk() const {
    if (!status_.ok()) {
      std::abort();
    }
  }

  Status status_;
  std::optional<T> value_;
};

}  // namespace nlidb

/// Propagates a non-OK Status to the caller. Usage:
///   NLIDB_RETURN_IF_ERROR(DoThing());
#define NLIDB_RETURN_IF_ERROR(expr)             \
  do {                                          \
    ::nlidb::Status _status = (expr);           \
    if (!_status.ok()) return _status;          \
  } while (false)

#endif  // NLIDB_COMMON_STATUS_H_
