#include "common/trace.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>

#include "common/metrics.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace nlidb {
namespace trace {

namespace {

// Process epoch: captured on the first NowNs() call so span timestamps
// stay small. steady_clock is sanctioned here and nowhere else in src/
// (the raw-timing lint rule funnels all timing through this function).
std::chrono::steady_clock::time_point ProcessEpoch() {
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return epoch;
}

// Tracing toggles once per process at most (env init) plus explicit
// test-driven SetSink calls; the hot path only ever reads g_enabled.
std::atomic<bool> g_enabled{false};
std::atomic<int> g_next_span_id{1};

struct SinkState {
  Mutex mu{"trace.sink"};
  std::shared_ptr<TraceSink> sink NLIDB_GUARDED_BY(mu);
};

// Leaked so pool workers closing spans during process shutdown never
// touch a destroyed mutex; the env-installed sink is still flushed via
// the atexit hook registered in InitFromEnv.
SinkState& GlobalSinkState() {
  static SinkState* state = new SinkState;
  return *state;
}

// The span currently open on this thread; 0 = root. TraceSpan pushes
// itself here, ScopedParent re-installs an enqueuing span's id on pool
// workers.
thread_local int tls_current_parent = 0;

void FlushEnvSinkAtExit() { SetSink(nullptr); }

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - ProcessEpoch())
          .count());
}

bool Enabled() { return g_enabled.load(std::memory_order_relaxed); }

std::shared_ptr<TraceSink> SetSink(std::shared_ptr<TraceSink> sink) {
  SinkState& state = GlobalSinkState();
  MutexLock lock(state.mu);
  std::shared_ptr<TraceSink> previous = std::move(state.sink);
  state.sink = std::move(sink);
  g_enabled.store(state.sink != nullptr, std::memory_order_relaxed);
  return previous;
}

std::shared_ptr<TraceSink> CurrentSink() {
  SinkState& state = GlobalSinkState();
  MutexLock lock(state.mu);
  return state.sink;
}

void InitFromEnv() {
  static std::once_flag once;
  std::call_once(once, [] {
    const char* env = std::getenv("NLIDB_TRACE");
    if (env == nullptr || env[0] == '\0') return;
    if (CurrentSink() != nullptr) return;  // explicit sink wins
    if (std::string(env) == "stderr") {
      SetSink(std::make_shared<StderrSummarySink>());
    } else {
      auto sink = std::make_shared<JsonLinesSink>(env);
      if (!sink->ok()) {
        std::fprintf(stderr, "nlidb: NLIDB_TRACE: cannot open '%s'\n", env);
        return;
      }
      SetSink(std::move(sink));
    }
    // Static-destruction order is unreliable across TUs; flush the
    // env-installed sink explicitly before static teardown begins.
    std::atexit(FlushEnvSinkAtExit);
  });
}

int CurrentSpanId() { return tls_current_parent; }

ScopedParent::ScopedParent(int parent_id) : saved_(tls_current_parent) {
  tls_current_parent = parent_id;
}

ScopedParent::~ScopedParent() { tls_current_parent = saved_; }

TraceSpan::TraceSpan(const char* name) {
  InitFromEnv();
  active_ = Enabled();
  if (!active_) return;
  name_ = name;
  span_id_ = g_next_span_id.fetch_add(1, std::memory_order_relaxed);
  parent_id_ = tls_current_parent;
  tls_current_parent = span_id_;
  start_ns_ = NowNs();
}

TraceSpan::~TraceSpan() {
  if (!active_) return;
  const uint64_t end_ns = NowNs();
  tls_current_parent = parent_id_;
  std::shared_ptr<TraceSink> sink = CurrentSink();
  if (sink == nullptr) return;  // sink removed while the span was open
  SpanRecord record;
  record.name = name_;
  record.start_ns = start_ns_;
  record.duration_ns = end_ns - start_ns_;
  record.span_id = span_id_;
  record.parent_id = parent_id_;
  record.thread_id = metrics::DenseThreadId();
  record.annotations = std::move(annotations_);
  sink->OnSpanEnd(record);
}

void TraceSpan::Annotate(const char* key, std::string value) {
  if (!active_) return;
  annotations_.emplace_back(key, std::move(value));
}

void TraceSpan::Annotate(const char* key, int64_t value) {
  if (!active_) return;
  annotations_.emplace_back(key, std::to_string(value));
}

// ---------------------------------------------------------------------------
// JsonLinesSink

struct JsonLinesSink::Impl {
  Mutex mu{"trace.json_sink"};
  std::FILE* file NLIDB_GUARDED_BY(mu) = nullptr;
};

JsonLinesSink::JsonLinesSink(const std::string& path)
    : impl_(std::make_unique<Impl>()) {
  MutexLock lock(impl_->mu);
  impl_->file = std::fopen(path.c_str(), "w");
}

JsonLinesSink::~JsonLinesSink() {
  MutexLock lock(impl_->mu);
  if (impl_->file != nullptr) std::fclose(impl_->file);
}

bool JsonLinesSink::ok() const {
  MutexLock lock(impl_->mu);
  return impl_->file != nullptr;
}

void JsonLinesSink::OnSpanEnd(const SpanRecord& record) {
  MutexLock lock(impl_->mu);
  if (impl_->file == nullptr) return;
  std::fprintf(impl_->file,
               "{\"name\":\"%s\",\"span\":%d,\"parent\":%d,\"thread\":%d,"
               "\"start_ns\":%llu,\"duration_ns\":%llu",
               JsonEscape(record.name).c_str(), record.span_id,
               record.parent_id, record.thread_id,
               static_cast<unsigned long long>(record.start_ns),
               static_cast<unsigned long long>(record.duration_ns));
  if (!record.annotations.empty()) {
    std::fputs(",\"annotations\":{", impl_->file);
    for (size_t i = 0; i < record.annotations.size(); ++i) {
      std::fprintf(impl_->file, "%s\"%s\":\"%s\"", i == 0 ? "" : ",",
                   JsonEscape(record.annotations[i].first).c_str(),
                   JsonEscape(record.annotations[i].second).c_str());
    }
    std::fputc('}', impl_->file);
  }
  std::fputs("}\n", impl_->file);
}

// ---------------------------------------------------------------------------
// StderrSummarySink

struct StderrSummarySink::Impl {
  struct Agg {
    int64_t count = 0;
    uint64_t total_ns = 0;
  };
  Mutex mu{"trace.stderr_sink"};
  std::map<std::string, Agg> by_name NLIDB_GUARDED_BY(mu);
};

StderrSummarySink::StderrSummarySink() : impl_(std::make_unique<Impl>()) {}

StderrSummarySink::~StderrSummarySink() {
  MutexLock lock(impl_->mu);
  if (impl_->by_name.empty()) return;
  std::fprintf(stderr, "\n=== nlidb trace summary ===\n%-36s %10s %14s\n",
               "span", "count", "total_ms");
  for (const auto& [name, agg] : impl_->by_name) {
    std::fprintf(stderr, "%-36s %10lld %14.3f\n", name.c_str(),
                 static_cast<long long>(agg.count),
                 static_cast<double>(agg.total_ns) / 1e6);
  }
}

void StderrSummarySink::OnSpanEnd(const SpanRecord& record) {
  MutexLock lock(impl_->mu);
  Impl::Agg& agg = impl_->by_name[record.name];
  ++agg.count;
  agg.total_ns += record.duration_ns;
}

// ---------------------------------------------------------------------------
// InMemorySink

struct InMemorySink::Impl {
  mutable Mutex mu{"trace.mem_sink"};
  std::vector<SpanRecord> records NLIDB_GUARDED_BY(mu);
};

InMemorySink::InMemorySink() : impl_(std::make_unique<Impl>()) {}
InMemorySink::~InMemorySink() = default;

void InMemorySink::OnSpanEnd(const SpanRecord& record) {
  MutexLock lock(impl_->mu);
  impl_->records.push_back(record);
}

std::vector<SpanRecord> InMemorySink::Records() const {
  MutexLock lock(impl_->mu);
  return impl_->records;
}

void InMemorySink::Clear() {
  MutexLock lock(impl_->mu);
  impl_->records.clear();
}

}  // namespace trace
}  // namespace nlidb
