#include "common/lockdep.h"

#include <execinfo.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "common/file_io.h"
#include "common/metrics.h"
#include "common/mutex.h"
#include "common/trace.h"

namespace nlidb {
namespace lockdep {

namespace internal {

/// lockdep.cc is a friend of `Mutex`; everything else goes through the
/// public wrapper API.
struct MutexAccess {
  static std::mutex& Raw(Mutex* mu) { return mu->mu_; }
  static const char* Name(const Mutex* mu) { return mu->name_; }
  static const char* File(const Mutex* mu) { return mu->file_; }
  static int Line(const Mutex* mu) { return mu->line_; }
};

}  // namespace internal

namespace {

using internal::MutexAccess;

constexpr int kMaxStackDepth = 24;
constexpr char kUnnamed[] = "<unnamed>";

struct RawStack {
  void* frames[kMaxStackDepth] = {};
  int depth = 0;
};

RawStack CaptureStack() {
  RawStack s;
  s.depth = backtrace(s.frames, kMaxStackDepth);
  return s;
}

/// Symbolizes lazily — only when a report actually fires, never on the
/// per-acquisition path (backtrace_symbols allocates).
std::string SymbolizeStack(const RawStack& s) {
  if (s.depth <= 0) return "    <stack unavailable>\n";
  char** syms = backtrace_symbols(const_cast<void* const*>(s.frames), s.depth);
  if (syms == nullptr) return "    <stack unavailable>\n";
  std::ostringstream out;
  for (int i = 0; i < s.depth; ++i) {
    out << "    #" << i << " " << syms[i] << "\n";
  }
  std::free(syms);
  return out.str();
}

struct ClassInstruments {
  metrics::Histogram* held_ns = nullptr;
  metrics::Histogram* wait_ns = nullptr;
  metrics::Counter* contended = nullptr;
};

struct ClassInfo {
  std::string name;
  std::string site;  // "file:line" of the first-registered instance
  ClassInstruments instruments;
  std::set<int> out;  // recorded orderings: this class held -> edge target
};

/// The stacks evidencing a recorded ordering: where `to` was acquired
/// while `from` was held.
struct EdgeInfo {
  RawStack acquire_stack;
};

/// Process-global lock-order graph. `mu` is a LEAF lock: nothing that
/// can take another lock (MetricsRegistry in particular locks its own
/// Mutex) may be called while it is held — that would be an ABBA inside
/// the ABBA detector. Class registration is two-phase for this reason.
struct Graph {
  std::mutex mu;  // nlidb-lint: disable(mutex-unguarded)
  std::map<std::string, int> class_ids;
  std::vector<ClassInfo*> classes;
  std::map<std::pair<int, int>, EdgeInfo> edges;
  std::vector<Report> reports;
  std::set<std::pair<int, int>> reported_pairs;  // unordered-pair dedup
  std::set<std::string> reported_stuck;          // per-name dedup
};

Graph& G() {
  static Graph* g = new Graph;  // leaked: outlives every static mutex
  return *g;
}

/// One still-held acquisition in the calling thread's lock set.
struct HeldLock {
  const Mutex* mu = nullptr;
  int class_id = -1;
  uint64_t acquired_ns = 0;
  metrics::Histogram* held_hist = nullptr;
};

thread_local std::vector<HeldLock> tls_held;

/// Re-entrancy guard: locks taken *by the hooks themselves* (metrics
/// registry, allocator-internal paths) degrade to the plain operation
/// instead of recursing into the detector.
thread_local bool tls_in_hook = false;

std::atomic<int> g_watchdog_ms{30000};

int InitModeFromEnv() {
  const char* v = std::getenv("NLIDB_DEADLOCK");
  if (v == nullptr) {
#ifdef NLIDB_DEADLOCK_DEFAULT_ON
    return 1;
#else
    return 0;
#endif
  }
  const std::string s(v);
  if (s == "fatal") return 2;
  if (s == "on" || s == "1" || s == "true") return 1;
  return 0;
}

const char* g_report_path = nullptr;

void DumpReportsAtExit() {
  const std::string text = RenderReports();
  if (text.empty() || g_report_path == nullptr) return;
  const Status s = io::WriteFileAtomic(g_report_path, text, "lockdep");
  if (!s.ok()) {
    std::fprintf(stderr, "lockdep: failed to write report to %s\n",
                 g_report_path);
  }
}

struct EnvInit {
  EnvInit() {
    internal::g_mode.store(InitModeFromEnv(), std::memory_order_relaxed);
    if (const char* ms = std::getenv("NLIDB_CONDVAR_WATCHDOG_MS")) {
      g_watchdog_ms.store(std::atoi(ms), std::memory_order_relaxed);
    }
    g_report_path = std::getenv("NLIDB_DEADLOCK_REPORT");
    if (g_report_path != nullptr) std::atexit(DumpReportsAtExit);
  }
};
EnvInit g_env_init;

std::string SiteOf(const Mutex* mu) {
  const char* file = MutexAccess::File(mu);
  if (file == nullptr) return "<unknown site>";
  std::ostringstream out;
  out << file << ":" << MutexAccess::Line(mu);
  return out.str();
}

/// The detector's own counters, resolved once. Like ClassIdFor's
/// instrument creation, the first call locks the metrics registry — so
/// it must only ever run at a point where the calling thread does NOT
/// hold the mutex being instrumented (LockSlow resolves both *before*
/// acquiring the raw lock). Otherwise instrumenting the registry's own
/// `metrics.registry` mutex recurses into the held registry and
/// self-deadlocks.
struct GlobalCounters {
  metrics::Counter* acquisitions;
  metrics::Counter* inversions;
  metrics::Counter* stuck_waits;
};
GlobalCounters& Counters() {
  static GlobalCounters c = [] {
    metrics::MetricsRegistry& reg = metrics::MetricsRegistry::Global();
    return GlobalCounters{&reg.GetCounter("lockdep.acquisitions"),
                          &reg.GetCounter("lockdep.inversions"),
                          &reg.GetCounter("lockdep.stuck_waits")};
  }();
  return c;
}

/// Two-phase class lookup. Phase 1: id lookup under the graph lock.
/// Phase 2 (first sighting of a name only): create the metrics
/// instruments OUTSIDE the graph lock — MetricsRegistry locks its own
/// Mutex, and calling it under `G().mu` would record a false (and in
/// fatal mode, process-killing) registry<->graph ordering — then
/// double-checked insert. Callers must not hold the mutex being
/// classified (see GlobalCounters above); this relies on the registry
/// never acquiring another instrumented mutex while holding its own.
int ClassIdFor(Mutex* mu, ClassInstruments* instruments) {
  const char* n = MutexAccess::Name(mu);
  const std::string name = n != nullptr ? n : kUnnamed;
  Graph& g = G();
  {
    std::lock_guard<std::mutex> lock(g.mu);
    auto it = g.class_ids.find(name);
    if (it != g.class_ids.end()) {
      *instruments = g.classes[it->second]->instruments;
      return it->second;
    }
  }
  ClassInstruments created;
  metrics::MetricsRegistry& reg = metrics::MetricsRegistry::Global();
  created.held_ns = &reg.GetHistogram("mutex." + name + ".held_ns");
  created.wait_ns = &reg.GetHistogram("mutex." + name + ".wait_ns");
  created.contended = &reg.GetCounter("mutex." + name + ".contended");
  std::lock_guard<std::mutex> lock(g.mu);
  auto [it, inserted] =
      g.class_ids.try_emplace(name, static_cast<int>(g.classes.size()));
  if (inserted) {
    ClassInfo* info = new ClassInfo;
    info->name = name;
    info->site = SiteOf(mu);
    info->instruments = created;
    g.classes.push_back(info);
  }
  *instruments = g.classes[it->second]->instruments;
  return it->second;
}

/// DFS over recorded orderings: is `to` already able to reach `from`?
/// If so the about-to-be-added edge (from, to) closes a cycle; `path`
/// receives the class ids from `to` to `from` inclusive. Caller holds
/// the graph lock.
bool FindPath(const Graph& g, int to, int from, std::vector<int>* path) {
  std::map<int, int> parent;
  std::vector<int> stack{to};
  parent[to] = to;
  while (!stack.empty()) {
    const int node = stack.back();
    stack.pop_back();
    if (node == from) {
      for (int n = from; n != to; n = parent[n]) path->push_back(n);
      path->push_back(to);
      std::reverse(path->begin(), path->end());
      return true;
    }
    for (int next : g.classes[node]->out) {
      if (parent.emplace(next, node).second) stack.push_back(next);
    }
  }
  return false;
}

std::string RenderReportLocked(size_t index, const Report& r) {
  std::ostringstream out;
  out << "[" << index << "] "
      << (r.kind == Report::Kind::kOrderInversion ? "lock-order inversion"
                                                  : "condvar stuck wait")
      << "\n  " << r.message << "\n";
  if (r.kind == Report::Kind::kOrderInversion) {
    out << "  previously: '" << r.first_mutex << "' held, then '"
        << r.second_mutex << "' ... '" << r.first_mutex << "' acquired at:\n"
        << r.first_stack;
    out << "  now: '" << r.first_mutex << "' held, acquiring '"
        << r.second_mutex << "' at:\n"
        << r.second_stack;
  } else if (!r.second_stack.empty()) {
    out << "  waiting at:\n" << r.second_stack;
  }
  return out.str();
}

void EmitInversionReport(Graph& g, int held_id, int new_id,
                         const std::vector<int>& path,
                         const RawStack& prior_stack,
                         const RawStack& current_stack) {
  // Assembled outside the graph lock (symbolization allocates); the
  // dedup marker was already planted under the lock.
  Report r;
  r.kind = Report::Kind::kOrderInversion;
  r.first_mutex = g.classes[held_id]->name;
  r.second_mutex = g.classes[new_id]->name;
  r.first_stack = SymbolizeStack(prior_stack);
  r.second_stack = SymbolizeStack(current_stack);
  std::ostringstream cycle;
  cycle << g.classes[held_id]->name;
  for (int id : path) cycle << " -> " << g.classes[id]->name;
  r.cycle = cycle.str();
  std::ostringstream msg;
  msg << "potential deadlock: acquiring '" << r.second_mutex << "' ("
      << g.classes[new_id]->site << ") while holding '" << r.first_mutex
      << "' (" << g.classes[held_id]->site
      << ") inverts the recorded lock order; cycle: " << r.cycle;
  r.message = msg.str();

  // Counters() is already resolved: the LockSlow that found this cycle
  // called it before acquiring, so this is an atomic increment — safe
  // even though we may be holding the registry's own mutex right now.
  Counters().inversions->Increment();

  bool fatal = internal::g_mode.load(std::memory_order_relaxed) == 2;
  std::string rendered;
  {
    std::lock_guard<std::mutex> lock(g.mu);
    g.reports.push_back(r);
    if (fatal) rendered = RenderReportLocked(g.reports.size(), r);
  }
  if (fatal) {
    std::fprintf(stderr, "%s", rendered.c_str());
    std::fflush(stderr);
    DumpReportsAtExit();
    std::abort();
  }
}

/// Folds the acquisition of `new_id` (with `acquired` held-set context)
/// into the graph; fires a report when a new edge closes a cycle.
void RecordEdges(int new_id, const RawStack& current_stack) {
  Graph& g = G();
  for (const HeldLock& held : tls_held) {
    // Same-class edges are skipped: instances of one class share a
    // node, so A1->A2 would self-loop (documented blind spot).
    if (held.class_id == new_id) continue;
    bool report_cycle = false;
    std::vector<int> path;
    RawStack prior_stack;
    {
      std::lock_guard<std::mutex> lock(g.mu);
      ClassInfo& from = *g.classes[held.class_id];
      if (from.out.count(new_id) != 0) continue;  // known ordering
      if (FindPath(g, new_id, held.class_id, &path)) {
        const std::pair<int, int> key =
            std::minmax(held.class_id, new_id);
        if (g.reported_pairs.insert(key).second) {
          report_cycle = true;
          // The evidentiary prior edge is the one that enters the held
          // class on the found path: where `held` was acquired while
          // the previous class on the path was held.
          const int prev = path.size() >= 2 ? path[path.size() - 2] : new_id;
          auto it = g.edges.find({prev, held.class_id});
          if (it != g.edges.end()) prior_stack = it->second.acquire_stack;
        }
      }
      from.out.insert(new_id);
      g.edges.emplace(std::make_pair(held.class_id, new_id),
                      EdgeInfo{current_stack});
    }
    if (report_cycle) {
      EmitInversionReport(g, held.class_id, new_id, path, prior_stack,
                          current_stack);
    }
  }
}

}  // namespace

namespace internal {

std::atomic<int> g_mode{0};

void LockSlow(Mutex* mu) {
  std::mutex& raw = MutexAccess::Raw(mu);
  if (tls_in_hook) {
    raw.lock();
    return;
  }
  tls_in_hook = true;
  // All metrics-registry interaction happens BEFORE acquiring `raw`:
  // when `mu` is the registry's own mutex, creating its instruments (or
  // first-resolving the global counters) re-enters the registry, and
  // doing that while already holding `raw` would self-deadlock.
  ClassInstruments instruments;
  const int cid = ClassIdFor(mu, &instruments);
  GlobalCounters& counters = Counters();

  bool contended = false;
  uint64_t wait_ns = 0;
  if (!raw.try_lock()) {
    contended = true;
    const uint64_t t0 = trace::NowNs();
    raw.lock();
    wait_ns = trace::NowNs() - t0;
  }
  if (contended) {
    instruments.contended->Increment();
    instruments.wait_ns->Record(wait_ns);
  }
  counters.acquisitions->Increment();

  if (!tls_held.empty()) {
    // Stack capture only on nested acquisitions: single-lock sections
    // (the overwhelmingly common case) never pay for backtrace().
    RecordEdges(cid, CaptureStack());
  }
  tls_held.push_back(
      HeldLock{mu, cid, trace::NowNs(), instruments.held_ns});
  tls_in_hook = false;
}

void UnlockSlow(Mutex* mu) {
  std::mutex& raw = MutexAccess::Raw(mu);
  if (tls_in_hook) {
    raw.unlock();
    return;
  }
  tls_in_hook = true;
  for (auto it = tls_held.rbegin(); it != tls_held.rend(); ++it) {
    if (it->mu == mu) {
      if (it->held_hist != nullptr) {
        it->held_hist->Record(trace::NowNs() - it->acquired_ns);
      }
      tls_held.erase(std::next(it).base());
      break;
    }
    // No entry: acquired while the detector was off (or inside a hook);
    // nothing to unwind.
  }
  raw.unlock();
  tls_in_hook = false;
}

void OnTryLockAcquired(Mutex* mu) {
  if (tls_in_hook) return;
  tls_in_hook = true;
  // Unlike LockSlow, the raw lock is already held here (Mutex::TryLock
  // tries first, then notifies). That is safe only because the metrics
  // registry never TryLocks its own mutex — the one lock whose
  // instrument creation re-enters the registry.
  ClassInstruments instruments;
  const int cid = ClassIdFor(mu, &instruments);
  Counters().acquisitions->Increment();
  // No RecordEdges here: a try_lock never *waits*, so it cannot be the
  // blocked edge of a deadlock cycle — held-before-try orderings are
  // deliberately not folded into the graph (they would be false
  // positives). The acquisition still joins the held set: blocking
  // locks taken while this one is held do create edges from it.
  tls_held.push_back(
      HeldLock{mu, cid, trace::NowNs(), instruments.held_ns});
  tls_in_hook = false;
}

void ReportStuckWait(const char* mutex_name, int waited_ms) {
  const std::string name = mutex_name != nullptr ? mutex_name : kUnnamed;
  // The caller holds the mutex it waited on, never the registry's, so
  // first-resolving Counters() here cannot recurse into a held lock.
  Counters().stuck_waits->Increment();
  Graph& g = G();
  RawStack stack = CaptureStack();
  {
    std::lock_guard<std::mutex> lock(g.mu);
    if (!g.reported_stuck.insert(name).second) return;  // one per name
  }
  Report r;
  r.kind = Report::Kind::kStuckWait;
  r.first_mutex = name;
  r.second_stack = SymbolizeStack(stack);
  std::ostringstream msg;
  msg << "condvar wait on '" << name << "' exceeded " << waited_ms
      << "ms watchdog; possible lost notify or stuck producer "
         "(informational: idle waits are legitimate, never fatal)";
  r.message = msg.str();
  std::lock_guard<std::mutex> lock(g.mu);
  g.reports.push_back(std::move(r));
}

}  // namespace internal

bool FatalReports() {
  return internal::g_mode.load(std::memory_order_relaxed) == 2;
}

void SetEnabled(bool on) {
  internal::g_mode.store(on ? 1 : 0, std::memory_order_relaxed);
  if (!on) tls_held.clear();  // the caller is quiescent by contract
}

int WatchdogTimeoutMs() {
  return g_watchdog_ms.load(std::memory_order_relaxed);
}

void SetWatchdogTimeoutMs(int ms) {
  g_watchdog_ms.store(ms, std::memory_order_relaxed);
}

std::vector<Report> Reports() {
  Graph& g = G();
  std::lock_guard<std::mutex> lock(g.mu);
  return g.reports;
}

void ClearReports() {
  Graph& g = G();
  std::lock_guard<std::mutex> lock(g.mu);
  g.reports.clear();
  g.reported_pairs.clear();
  g.reported_stuck.clear();
}

void ResetGraphForTest() {
  Graph& g = G();
  std::lock_guard<std::mutex> lock(g.mu);
  g.class_ids.clear();
  for (ClassInfo* c : g.classes) delete c;
  g.classes.clear();
  g.edges.clear();
  g.reports.clear();
  g.reported_pairs.clear();
  g.reported_stuck.clear();
  tls_held.clear();
}

std::string RenderReports() {
  Graph& g = G();
  std::lock_guard<std::mutex> lock(g.mu);
  if (g.reports.empty()) return std::string();
  std::ostringstream out;
  out << "=== nlidb lockdep: " << g.reports.size() << " report(s) ===\n";
  for (size_t i = 0; i < g.reports.size(); ++i) {
    out << RenderReportLocked(i + 1, g.reports[i]);
  }
  return out.str();
}

}  // namespace lockdep
}  // namespace nlidb
